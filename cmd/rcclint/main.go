// Command rcclint runs the repo's static-analysis suite (internal/analysis)
// over the module source tree and exits non-zero on any finding, so CI
// fails closed.
//
// Usage:
//
//	rcclint [-root dir] [-only a,b] [-strict] [-json] [dir ...]
//
// With no directory arguments it analyzes internal and cmd under the module
// root. -only restricts the run to a comma-separated subset of analyzers;
// -strict additionally fails the run when the loader degraded anything — an
// import replaced by an empty placeholder, or a package that type-checked
// with errors — instead of silently falling back to syntactic analysis;
// -json emits the findings as a JSON array for tooling instead of
// file:line text.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"relaxedcc/internal/analysis"
)

func main() {
	root := flag.String("root", "", "module root (default: walk up from cwd to go.mod)")
	only := flag.String("only", "", "comma-separated analyzer subset to run")
	strict := flag.Bool("strict", false, "fail when the loader degrades a package (placeholder import or type errors)")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: rcclint [-root dir] [-only a,b] [-strict] [-json] [dir ...]\nanalyzers: %s\n",
			strings.Join(analysis.AnalyzerNames(), ", "))
		flag.PrintDefaults()
	}
	flag.Parse()

	if *root == "" {
		r, err := findModuleRoot()
		if err != nil {
			fatal(err)
		}
		*root = r
	}

	analyzers := analysis.Analyzers()
	if *only != "" {
		known := map[string]bool{}
		for _, name := range analysis.AnalyzerNames() {
			known[name] = true
		}
		var subset []*analysis.Analyzer
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			if !known[name] {
				fatal(fmt.Errorf("unknown analyzer %q (have %s)", name, strings.Join(analysis.AnalyzerNames(), ", ")))
			}
			for _, a := range analyzers {
				if a.Name == name {
					subset = append(subset, a)
				}
			}
		}
		analyzers = subset
	}

	dirs := flag.Args()
	if len(dirs) == 0 {
		dirs = []string{"internal", "cmd"}
	}

	start := time.Now()
	loader, err := analysis.NewLoader(*root)
	if err != nil {
		fatal(err)
	}
	pkgs, err := loader.LoadDirs(dirs...)
	if err != nil {
		fatal(err)
	}
	diags := analysis.Run(pkgs, analyzers)
	if *strict {
		diags = append(diags, analysis.StrictDiagnostics(loader, pkgs)...)
	}

	// Report positions relative to the module root for stable output.
	for i := range diags {
		if rel, err := filepath.Rel(*root, diags[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].File = rel
		}
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d.String())
		}
	}
	names := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		names = append(names, a.Name)
	}
	fmt.Fprintf(os.Stderr, "rcclint: %d finding(s) from %d package(s) in %v [%s]\n",
		len(diags), len(pkgs), time.Since(start).Round(time.Millisecond), strings.Join(names, ","))
	if len(diags) > 0 {
		os.Exit(1)
	}
}

func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("rcclint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rcclint:", err)
	os.Exit(2)
}
