// Command rccdemo runs a scripted tour of the system on the paper's TPC-D
// setup: it shows the optimizer's plan choices for the Section 4 query
// variants (Tables 4.2/4.3, Figure 4.1) and then executes each query,
// reporting where the answer came from and verifying it against the back
// end.
//
//	go run ./cmd/rccdemo [-sf 0.01]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"relaxedcc/internal/harness"
	"relaxedcc/internal/sqltypes"
)

func main() {
	sf := flag.Float64("sf", 0.01, "physical TPC-D scale factor")
	flag.Parse()

	sys, err := harness.NewSystem(harness.Config{ScaleFactor: *sf, Seed: 2004, ScaleStatsToPaper: true})
	if err != nil {
		fmt.Fprintln(os.Stderr, "rccdemo:", err)
		os.Exit(1)
	}
	harness.RunTable41(os.Stdout, sys)
	results, err := harness.RunPlanChoice(os.Stdout, sys)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rccdemo:", err)
		os.Exit(1)
	}

	fmt.Println("\n=== Executing each variant and verifying against the back end ===")
	for _, r := range results {
		res, err := sys.Query(r.Case.SQL)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rccdemo: %s: %v\n", r.Case.Name, err)
			os.Exit(1)
		}
		status := "matches back end"
		if !r.Plan.UsesLocal {
			status = "computed from master data"
		} else {
			// Verify the cached answer against the master, modulo staleness:
			// with no concurrent updates in this demo they must be equal.
			plain := r.Case.SQL
			back, err := sys.QueryBackend(plain)
			if err != nil {
				fmt.Fprintf(os.Stderr, "rccdemo: backend %s: %v\n", r.Case.Name, err)
				os.Exit(1)
			}
			if !sameRowSet(res.Rows, back.Rows) {
				status = "MISMATCH vs back end"
			}
		}
		fmt.Printf("%-4s %6d rows  local-views=%d remote-queries=%d  %s\n",
			r.Case.Name, len(res.Rows), len(res.LocalViews), res.RemoteQueries, status)
	}

	// EXPLAIN ANALYZE on a currency-guarded query: the trace tree shows
	// per-node time and rows, which branch the guard picked, and the
	// region's staleness at decision time.
	guarded := "SELECT c_name FROM Customer WHERE c_custkey = 17 CURRENCY 3600 ON (Customer)"
	fmt.Println("\n=== EXPLAIN ANALYZE of a currency-guarded query ===")
	fmt.Println("--", guarded)
	traced, err := sys.ExplainAnalyze(guarded)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rccdemo:", err)
		os.Exit(1)
	}
	fmt.Print(traced.Trace.String())
}

func sameRowSet(a, b []sqltypes.Row) bool {
	if len(a) != len(b) {
		return false
	}
	ka := make([]string, len(a))
	kb := make([]string, len(b))
	for i := range a {
		ka[i] = sqltypes.RowKey(a[i])
		kb[i] = sqltypes.RowKey(b[i])
	}
	sort.Strings(ka)
	sort.Strings(kb)
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}
