// Command rccsql is a small interactive SQL shell against a loaded
// back-end + MTCache pair. Statements execute at the cache with full C&C
// enforcement; DML forwards to the back end.
//
//	go run ./cmd/rccsql [-sf 0.005]
//
// Meta commands:
//
//	\run <duration>   advance simulated time (heartbeats + replication)
//	\regions          show currency regions and their staleness
//	\stats            show remote-link traffic counters
//	\metrics          dump the cache's metrics registry
//	\trace            show the last recorded execution trace
//	\tuner            show the autotuner's decision timeline (-autotune)
//	\plan <query>     show the chosen plan without executing
//	\q                quit
//
// EXPLAIN <query> prints the chosen plan; EXPLAIN ANALYZE <query> executes
// it and prints the annotated trace tree (per-node time and rows, guard
// verdicts, region staleness at decision time). With -obs ADDR (or the
// legacy alias -metrics) the shell also serves the full ops surface over
// HTTP: /metrics, /trace/last, /queries/recent, /queries/slow, /slo,
// /regions and /tuner. With -autotune the closed-loop currency autotuner
// runs during \run advances, retuning refresh intervals from the observed
// workload.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"relaxedcc/internal/harness"
	"relaxedcc/internal/obs"
	"relaxedcc/internal/opt"
	"relaxedcc/internal/sqlparser"
	"relaxedcc/internal/tuner"
)

func main() {
	sf := flag.Float64("sf", 0.005, "physical TPC-D scale factor")
	obsAddr := flag.String("obs", "",
		"serve the ops HTTP surface (/metrics /trace/last /queries/... /slo /regions /tuner) on this address (e.g. :8080)")
	metricsAddr := flag.String("metrics", "", "legacy alias for -obs")
	autotune := flag.Bool("autotune", false,
		"enable the closed-loop currency autotuner; inspect it with \\tuner or /tuner")
	flag.Parse()
	if *obsAddr == "" {
		*obsAddr = *metricsAddr
	}

	fmt.Printf("loading TPC-D at scale %.3f (%d customers, %d orders)...\n",
		*sf, int(150000**sf), int(1500000**sf))
	sys, err := harness.NewSystem(harness.Config{ScaleFactor: *sf, Seed: 2004, ScaleStatsToPaper: false})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	sess := sys.Cache.NewSession()
	epoch := sys.Clock.Now()
	if *autotune {
		sys.EnableAutotune(tuner.LoopConfig{})
		fmt.Println("closed-loop autotuning enabled; inspect with \\tuner")
	}
	if *obsAddr != "" {
		_, addr, err := obs.Serve(*obsAddr, sys.ObsHandler())
		if err != nil {
			fmt.Fprintln(os.Stderr, "obs:", err)
			os.Exit(1)
		}
		fmt.Printf("serving ops endpoints on http://%s/metrics (/trace/last, /queries/recent, /queries/slow, /slo, /regions, /tuner)\n", addr)
	}
	fmt.Println(`ready. tables: Customer, Orders; views: cust_prj (CR1), orders_prj (CR2).`)
	fmt.Println(`try: SELECT c_name FROM Customer WHERE c_custkey = 17 CURRENCY 60 ON (Customer)`)
	fmt.Println(`     EXPLAIN ANALYZE SELECT c_name FROM Customer WHERE c_custkey = 17 CURRENCY 60 ON (Customer)`)

	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("rcc> ")
		if !scanner.Scan() {
			break
		}
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		switch {
		case line == `\q` || line == "exit" || line == "quit":
			return
		case strings.HasPrefix(line, `\run `):
			d, err := time.ParseDuration(strings.TrimSpace(strings.TrimPrefix(line, `\run `)))
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			if err := sys.Run(d); err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Printf("advanced to t=%v\n", sys.Clock.Now().Format("15:04:05"))
		case line == `\regions`:
			now := sys.Clock.Now()
			for _, r := range sys.Cache.Catalog().Regions() {
				ts, ok := sys.Cache.LastSync(r.ID)
				stale := "never synced"
				if ok {
					stale = fmt.Sprintf("%v stale", now.Sub(ts))
				}
				interval := r.UpdateInterval
				if a := sys.Cache.Agent(r.ID); a != nil && a.Interval() != interval {
					// A live retune overrides the configured cadence.
					fmt.Printf("  CR%d %-16s interval=%v (configured %v) delay=%v  %s\n",
						r.ID, r.Name, a.Interval(), interval, r.UpdateDelay, stale)
					continue
				}
				fmt.Printf("  CR%d %-16s interval=%v delay=%v  %s\n",
					r.ID, r.Name, interval, r.UpdateDelay, stale)
			}
		case line == `\stats`:
			st := sys.Cache.Link().Stats()
			fmt.Printf("  remote queries=%d rows=%d bytes=%d\n", st.Queries, st.Rows, st.Bytes)
		case line == `\metrics`:
			sys.Cache.RefreshStalenessGauges()
			sys.Cache.Obs().Snapshot().WriteText(os.Stdout)
		case line == `\trace`:
			sql, root := sys.Cache.Traces().Last()
			if root == nil {
				fmt.Println("  no trace recorded yet; run EXPLAIN ANALYZE <query>")
				continue
			}
			if sql != "" {
				fmt.Println("--", sql)
			}
			root.Render(os.Stdout)
		case line == `\tuner`:
			loop := sys.Tuner()
			if loop == nil {
				fmt.Println("  autotuning is off; restart with -autotune")
				continue
			}
			harness.RenderTuner(os.Stdout, loop.Snapshot(), epoch)
		case strings.HasPrefix(line, `\plan `):
			sql := strings.TrimPrefix(line, `\plan `)
			sel, err := sqlparser.ParseSelect(sql)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			plan, q, err := sys.Cache.Plan(sel, opt.Options{})
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Printf("  constraint: %v\n  plan:       %s\n  est. cost:  %.3f ms\n  class:      %s\n",
				q.Constraint, plan.Shape, plan.Cost, harness.PlanLabel(plan))
		case strings.HasPrefix(line, `\`):
			fmt.Println("unknown meta command; try \\run 30s, \\regions, \\stats, \\metrics, \\trace, \\tuner, \\plan <q>, \\q")
		default:
			res, err := sess.Execute(line)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			if res.Trace != nil {
				res.Trace.Render(os.Stdout)
				continue
			}
			if res.Explained {
				fmt.Printf("  plan: %s  (est. cost %.3f ms)\n", res.Plan.Shape, res.Plan.Cost)
				continue
			}
			if res.Plan != nil {
				src := "back end"
				if len(res.LocalViews) > 0 && res.RemoteQueries == 0 {
					src = "local views"
				} else if len(res.LocalViews) > 0 {
					src = "local views + back end"
				}
				fmt.Printf("-- plan: %s  (answered from %s)\n", res.Plan.Shape, src)
			}
			if res.Schema != nil && len(res.Schema.Cols) > 0 {
				fmt.Println("  " + strings.Join(res.Schema.ColumnNames(), " | "))
			}
			for i, row := range res.Rows {
				if i == 25 {
					fmt.Printf("  ... (%d rows)\n", len(res.Rows))
					break
				}
				vals := make([]string, len(row))
				for j, v := range row {
					vals[j] = v.Display()
				}
				fmt.Println("  " + strings.Join(vals, " | "))
			}
			if res.ServedStale {
				fmt.Println("  (warning: served stale local data)")
			}
		}
	}
}
