// Command rccbench regenerates every table and figure from the paper's
// evaluation section (Section 4) against the Go reproduction:
//
//	rccbench [-sf 0.02] [-reps 200] [-raw-stats]
//
// Output goes to stdout; see EXPERIMENTS.md for the paper-vs-measured
// comparison. With -obs ADDR the run also serves the live ops surface
// (/metrics, /slo, /queries/recent, /queries/slow, /regions, /trace/last,
// /tuner); with -snapshot DIR the /slo, /queries/slow and /tuner payloads
// are written as JSON files when the run ends (the bench-smoke CI artifact).
// -chaos runs the fault-injection workload instead; -shift runs the
// workload bound-mix shift scenario that demonstrates closed-loop
// autotuning; -autotune enables the tuning loop on any scenario. -load runs
// the open-loop macro-benchmark (saturation sweep over multi-tenant
// sessions) and writes BENCH_load.json via -load-json; -load-short selects
// the CI smoke sweep and -wall paces arrivals in real time for demos.
// -audit enables the delivered-guarantee auditor on any scenario and
// appends its ledger (plus the /audit snapshot when -snapshot is set);
// -broken-guard swaps in the deliberately broken chaos schedule the
// auditor must flag.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"

	"relaxedcc/internal/core"
	"relaxedcc/internal/harness"
	"relaxedcc/internal/load"
	"relaxedcc/internal/obs"
	"relaxedcc/internal/tuner"
	"relaxedcc/internal/vclock"
)

func main() {
	cfg := harness.DefaultConfig()
	flag.Float64Var(&cfg.ScaleFactor, "sf", cfg.ScaleFactor,
		"physical TPC-D scale factor (1.0 = paper's 150k customers)")
	flag.IntVar(&cfg.Reps, "reps", cfg.Reps,
		"repetitions per timed measurement")
	rawStats := flag.Bool("raw-stats", false,
		"use physical statistics instead of scaling them to the paper's cardinalities")
	flag.BoolVar(&cfg.Extras, "extras", false,
		"also run extension experiments (back-end offload, region tuning)")
	flag.BoolVar(&cfg.Metrics, "metrics", false,
		"append a metrics-registry snapshot (guard picks, staleness gauges) to the report")
	flag.Int64Var(&cfg.Seed, "seed", cfg.Seed, "data generation seed")
	chaos := flag.Bool("chaos", false,
		"run the fault-injection workload instead: availability and served-staleness under link faults")
	shift := flag.Bool("shift", false,
		"run the workload bound-mix shift scenario: SLO budget recovery with vs without closed-loop autotuning")
	loadRun := flag.Bool("load", false,
		"run the open-loop macro-benchmark: throughput-vs-latency saturation sweep over multi-tenant sessions")
	loadShort := flag.Bool("load-short", false,
		"with -load: the short CI smoke sweep (3 steps, 2 virtual seconds each)")
	loadJSON := flag.String("load-json", "",
		"with -load: also write the machine-readable report (BENCH_load.json) to this path")
	wall := flag.Bool("wall", false,
		"with -load: pace arrivals in real time for demos (measurement stays on the virtual clock)")
	autotune := flag.Bool("autotune", false,
		"enable the closed-loop currency autotuner (tuner.Loop) for the run")
	auditOn := flag.Bool("audit", false,
		"enable the delivered-guarantee auditor and append its ledger to the report")
	brokenGuard := flag.Bool("broken-guard", false,
		"with -chaos: run the deliberately broken guard-lie schedule the auditor must catch")
	obsAddr := flag.String("obs", "",
		"serve the ops HTTP surface (/metrics /slo /queries/... /regions /tuner) on this address for the run")
	snapshotDir := flag.String("snapshot", "",
		"write /slo, /queries/slow and /tuner JSON snapshots into this directory when the run ends")
	flag.Parse()
	cfg.ScaleStatsToPaper = !*rawStats

	// attach enables autotuning (if requested), serves the ops endpoints
	// (if requested) and remembers the system so snapshots can be taken
	// after the run.
	var sys *core.System
	attach := func(s *core.System) {
		sys = s
		if *autotune && s.Tuner() == nil {
			s.EnableAutotune(tuner.LoopConfig{})
		}
		if *auditOn && s.Audit() == nil {
			s.EnableAudit()
		}
		if *obsAddr == "" {
			return
		}
		_, addr, err := obs.Serve(*obsAddr, s.ObsHandler())
		if err != nil {
			fmt.Fprintln(os.Stderr, "rccbench: obs:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "serving ops endpoints on http://%s/metrics (/slo, /queries/recent, /queries/slow, /regions, /trace/last, /tuner)\n", addr)
	}

	if *loadRun {
		lcfg := load.DefaultConfig()
		if *loadShort {
			lcfg = load.ShortConfig()
		}
		lcfg.Seed = cfg.Seed
		lcfg.OnSystem = attach
		if *wall {
			lcfg.Pace = vclock.Wall{}
		}
		if err := harness.RunLoadReport(os.Stdout, lcfg, *loadJSON); err != nil {
			fmt.Fprintln(os.Stderr, "rccbench:", err)
			os.Exit(1)
		}
	} else if *shift {
		scfg := harness.DefaultShiftConfig()
		scfg.Seed = cfg.Seed
		scfg.OnSystem = attach
		if err := harness.RunShiftReport(os.Stdout, scfg); err != nil {
			fmt.Fprintln(os.Stderr, "rccbench:", err)
			os.Exit(1)
		}
	} else if *chaos {
		ccfg := harness.DefaultChaosConfig()
		if *brokenGuard {
			ccfg = harness.BrokenGuardChaosConfig()
		}
		ccfg.Seed = cfg.Seed
		ccfg.OnSystem = attach
		if err := harness.RunChaosReport(os.Stdout, ccfg); err != nil {
			fmt.Fprintln(os.Stderr, "rccbench:", err)
			os.Exit(1)
		}
	} else {
		s, err := harness.NewSystem(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rccbench:", err)
			os.Exit(1)
		}
		attach(s)
		if err := harness.RunAllOn(os.Stdout, cfg, s); err != nil {
			fmt.Fprintln(os.Stderr, "rccbench:", err)
			os.Exit(1)
		}
	}

	if *auditOn && sys != nil {
		harness.RenderAudit(os.Stdout, sys.Audit())
	}

	if *snapshotDir != "" && sys != nil {
		if err := writeSnapshots(sys, *snapshotDir); err != nil {
			fmt.Fprintln(os.Stderr, "rccbench: snapshot:", err)
			os.Exit(1)
		}
	}
}

// writeSnapshots dumps the post-run /slo, /queries/slow, /tuner and /audit
// payloads as JSON files, exactly as the HTTP surface would serve them.
// /tuner and /audit are optional: on a run without the matching Enable*
// they 404 and no file is written.
func writeSnapshots(sys *core.System, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	h := sys.ObsHandler()
	for _, snap := range []struct {
		file, url string
		optional  bool
	}{
		{file: "slo.json", url: "/slo"},
		{file: "queries_slow.json", url: "/queries/slow?threshold=0s"},
		{file: "tuner.json", url: "/tuner", optional: true},
		{file: "audit.json", url: "/audit", optional: true},
	} {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, snap.url, nil))
		if snap.optional && rr.Code == http.StatusNotFound {
			continue
		}
		if rr.Code != http.StatusOK {
			return fmt.Errorf("GET %s: status %d", snap.url, rr.Code)
		}
		path := filepath.Join(dir, snap.file)
		if err := os.WriteFile(path, rr.Body.Bytes(), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}
	return nil
}
