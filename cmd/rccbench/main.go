// Command rccbench regenerates every table and figure from the paper's
// evaluation section (Section 4) against the Go reproduction:
//
//	rccbench [-sf 0.02] [-reps 200] [-raw-stats]
//
// Output goes to stdout; see EXPERIMENTS.md for the paper-vs-measured
// comparison.
package main

import (
	"flag"
	"fmt"
	"os"

	"relaxedcc/internal/harness"
)

func main() {
	cfg := harness.DefaultConfig()
	flag.Float64Var(&cfg.ScaleFactor, "sf", cfg.ScaleFactor,
		"physical TPC-D scale factor (1.0 = paper's 150k customers)")
	flag.IntVar(&cfg.Reps, "reps", cfg.Reps,
		"repetitions per timed measurement")
	rawStats := flag.Bool("raw-stats", false,
		"use physical statistics instead of scaling them to the paper's cardinalities")
	flag.BoolVar(&cfg.Extras, "extras", false,
		"also run extension experiments (back-end offload, region tuning)")
	flag.BoolVar(&cfg.Metrics, "metrics", false,
		"append a metrics-registry snapshot (guard picks, staleness gauges) to the report")
	flag.Int64Var(&cfg.Seed, "seed", cfg.Seed, "data generation seed")
	chaos := flag.Bool("chaos", false,
		"run the fault-injection workload instead: availability and served-staleness under link faults")
	flag.Parse()
	cfg.ScaleStatsToPaper = !*rawStats

	if *chaos {
		ccfg := harness.DefaultChaosConfig()
		ccfg.Seed = cfg.Seed
		if err := harness.RunChaosReport(os.Stdout, ccfg); err != nil {
			fmt.Fprintln(os.Stderr, "rccbench:", err)
			os.Exit(1)
		}
		return
	}

	if err := harness.RunAll(os.Stdout, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "rccbench:", err)
		os.Exit(1)
	}
}
