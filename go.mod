module relaxedcc

go 1.22
