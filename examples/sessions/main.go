// Sessions: timeline consistency (the paper's BEGIN/END TIMEORDERED,
// Section 2.3) and violation actions when the back end is unreachable.
//
// Without timeline consistency a user may not see their own committed
// change: a later relaxed query can legally read an older replica. Inside a
// TIMEORDERED bracket, time always moves forward — later statements never
// use data older than what earlier statements observed.
//
//	go run ./examples/sessions
package main

import (
	"fmt"
	"log"
	"time"

	"relaxedcc/internal/catalog"
	"relaxedcc/internal/core"
	"relaxedcc/internal/mtcache"
)

func main() {
	sys := core.NewSystem()
	sys.MustExec(`CREATE TABLE Accounts (
		a_id BIGINT NOT NULL PRIMARY KEY,
		a_owner VARCHAR(30) NOT NULL,
		a_balance DOUBLE NOT NULL)`)
	sys.MustExec("INSERT INTO Accounts VALUES (1, 'alice', 100.0), (2, 'bob', 250.0)")
	sys.Analyze()
	if err := sys.AddRegion(&catalog.Region{
		ID: 1, Name: "accounts-region",
		UpdateInterval:    20 * time.Second,
		UpdateDelay:       2 * time.Second,
		HeartbeatInterval: time.Second,
	}); err != nil {
		log.Fatal(err)
	}
	if err := sys.CreateView(&catalog.View{
		Name: "accounts_prj", BaseTable: "Accounts",
		Columns: []string{"a_id", "a_owner", "a_balance"}, RegionID: 1,
	}); err != nil {
		log.Fatal(err)
	}
	if err := sys.Run(25 * time.Second); err != nil {
		log.Fatal(err)
	}

	sess := sys.Cache.NewSession()
	run := func(sql string) *mtcache.QueryResult {
		res, err := sess.Execute(sql)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	balanceQuery := "SELECT a_balance FROM Accounts WHERE a_id = 1 CURRENCY 300 ON (Accounts)"

	fmt.Println("== Without TIMEORDERED: a relaxed read may miss your own write ==")
	run("UPDATE Accounts SET a_balance = 500.0 WHERE a_id = 1")
	res := run(balanceQuery)
	fmt.Printf("relaxed read after commit: balance = %v (from %s)\n",
		res.Rows[0][0], source(res))

	fmt.Println("\n== Inside TIMEORDERED: time moves forward ==")
	run("BEGIN TIMEORDERED")
	// A current read (no clause) raises the session's floor to 'now'.
	res = run("SELECT a_balance FROM Accounts WHERE a_id = 1")
	fmt.Printf("current read: balance = %v (floor raised to query time)\n", res.Rows[0][0])
	// The same relaxed query can no longer use the older replica.
	res = run(balanceQuery)
	fmt.Printf("relaxed read under the bracket: balance = %v (from %s)\n",
		res.Rows[0][0], source(res))
	run("END TIMEORDERED")

	fmt.Println("\n== After replication catches up, relaxed reads return to the cache ==")
	if err := sys.Run(25 * time.Second); err != nil {
		log.Fatal(err)
	}
	res = run(balanceQuery)
	fmt.Printf("relaxed read: balance = %v (from %s)\n", res.Rows[0][0], source(res))

	fmt.Println("\n== Violation actions: the back end goes down ==")
	sys.Cache.Link().SetDown(true)
	strict := "SELECT a_balance FROM Accounts WHERE a_id = 1"
	if _, err := sess.Execute(strict); err != nil {
		fmt.Printf("default action (error): %v\n", err)
	}
	sess.Action = mtcache.ActionServeStale
	res = run(strict)
	fmt.Printf("serve-stale action: balance = %v (served stale: %v)\n",
		res.Rows[0][0], res.ServedStale)
	sys.Cache.Link().SetDown(false)
}

func source(res *mtcache.QueryResult) string {
	if len(res.LocalViews) > 0 {
		return "local view"
	}
	return "back end"
}
