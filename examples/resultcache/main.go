// Resultcache: the paper's third motivating scenario — an application-level
// cache of query results that tracks how stale each cached result is and
// transparently recomputes results that no longer satisfy a caller's
// currency requirement.
//
//	go run ./examples/resultcache
package main

import (
	"fmt"
	"log"
	"time"

	"relaxedcc/internal/catalog"
	"relaxedcc/internal/core"
	"relaxedcc/internal/qcache"
)

func main() {
	sys := core.NewSystem()
	sys.MustExec(`CREATE TABLE Scores (
		s_id BIGINT NOT NULL PRIMARY KEY,
		s_team VARCHAR(20) NOT NULL,
		s_points BIGINT NOT NULL)`)
	for i := 1; i <= 8; i++ {
		sys.MustExec(fmt.Sprintf("INSERT INTO Scores VALUES (%d, 'team-%d', %d)", i, i, i*7))
	}
	sys.Analyze()
	if err := sys.AddRegion(&catalog.Region{
		ID: 1, Name: "scores", UpdateInterval: 10 * time.Second,
		UpdateDelay: time.Second, HeartbeatInterval: time.Second,
	}); err != nil {
		log.Fatal(err)
	}
	if err := sys.CreateView(&catalog.View{
		Name: "scores_prj", BaseTable: "Scores",
		Columns: []string{"s_id", "s_team", "s_points"}, RegionID: 1,
	}); err != nil {
		log.Fatal(err)
	}
	if err := sys.Run(12 * time.Second); err != nil {
		log.Fatal(err)
	}

	rc := qcache.New(sys.Clock, sys.Cache.NewSession(), 100)
	leaderboard := "SELECT s_team, s_points FROM Scores ORDER BY s_points DESC CURRENCY 30 ON (Scores)"

	ask := func(label, q string) {
		res, outcome, err := rc.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-34s -> %-7s top: %s %v\n",
			label, outcome, res.Rows[0][0].Display(), res.Rows[0][1])
	}

	fmt.Println("A leaderboard page asks the result cache; many requests, one computation:")
	ask("request 1 (cold)", leaderboard)
	ask("request 2", leaderboard)
	ask("request 3", leaderboard)

	fmt.Println("\nA score changes on the master; cached result ages past 30s:")
	if _, err := sys.Exec("UPDATE Scores SET s_points = 999 WHERE s_id = 3"); err != nil {
		log.Fatal(err)
	}
	if err := sys.Run(45 * time.Second); err != nil {
		log.Fatal(err)
	}
	ask("request 4 (entry too old)", leaderboard)
	ask("request 5", leaderboard)

	fmt.Println("\nA stricter caller (5s bound) and an unconstrained caller share the entry:")
	ask("request 6 (CURRENCY 5)",
		"SELECT s_team, s_points FROM Scores ORDER BY s_points DESC CURRENCY 5 ON (Scores)")
	ask("request 7 (CURRENCY 120)",
		"SELECT s_team, s_points FROM Scores ORDER BY s_points DESC CURRENCY 120 ON (Scores)")

	st := rc.Stats()
	fmt.Printf("\ncache stats: hits=%d misses=%d refreshes=%d\n", st.Hits, st.Misses, st.Refreshes)
}
