// Loadshift: a miniature of the paper's Figure 4.2 — how much of a query
// workload the cache absorbs as the application relaxes its currency bound,
// and how that share collapses when replication slows down.
//
//	go run ./examples/loadshift
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"relaxedcc/internal/cc"
	"relaxedcc/internal/harness"
)

func main() {
	fmt.Println("Local workload share vs currency bound (f=100s propagation interval)")
	fmt.Println("measured by sampling the replica's staleness across the propagation cycle;")
	fmt.Println("the analytic curve is the paper's formula p = clamp((B-d)/f, 0, 1).")

	delays := []time.Duration{1 * time.Second, 10 * time.Second}
	var bounds []time.Duration
	for b := 0; b <= 120; b += 15 {
		bounds = append(bounds, time.Duration(b)*time.Second)
	}
	byDelay, err := harness.WorkloadVsBound(delays, bounds, 40)
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range delays {
		fmt.Printf("\npropagation delay d = %v\n", d)
		fmt.Printf("%8s  %9s  %9s  %s\n", "bound", "measured", "analytic", "")
		for _, p := range byDelay[d] {
			bar := strings.Repeat("#", int(p.Measured*40+0.5))
			fmt.Printf("%8.0fs  %8.1f%%  %8.1f%%  %s\n",
				p.Bound.Seconds(), p.Measured*100, p.Analytic*100, bar)
		}
	}

	fmt.Println("\nWith a fixed 10s bound, slowing replication pushes work back to the server:")
	fmt.Printf("%10s  %9s  %9s\n", "interval", "measured", "analytic")
	intervals := []time.Duration{2 * time.Second, 5 * time.Second, 10 * time.Second,
		20 * time.Second, 50 * time.Second, 100 * time.Second}
	byD, err := harness.WorkloadVsInterval([]time.Duration{5 * time.Second}, intervals, 40)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range byD[5*time.Second] {
		fmt.Printf("%9.0fs  %8.1f%%  %8.1f%%\n",
			p.Interval.Seconds(), p.Measured*100, p.Analytic*100)
	}

	// Sanity check the formula's closed form at a few points.
	fmt.Println("\nformula spot checks:")
	for _, c := range []struct {
		b, d, f time.Duration
	}{
		{55 * time.Second, 5 * time.Second, 100 * time.Second},
		{10 * time.Second, 5 * time.Second, 0}, // continuous propagation
	} {
		fmt.Printf("  p(B=%v, d=%v, f=%v) = %.2f\n",
			c.b, c.d, c.f, cc.LocalProbability(c.b, c.d, c.f))
	}
}
