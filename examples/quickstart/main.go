// Quickstart: stand up a back end + MTCache pair, cache a table in a
// currency region, and watch C&C constraints steer queries between the
// local replica and the back end.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"relaxedcc/internal/catalog"
	"relaxedcc/internal/core"
)

func main() {
	// One back-end server plus one mid-tier cache on a shared virtual
	// clock; heartbeats and replication agents run deterministically.
	sys := core.NewSystem()

	// Schema and data live on the back end; the cache sees a shadow copy.
	sys.MustExec(`CREATE TABLE Products (
		p_id BIGINT NOT NULL PRIMARY KEY,
		p_name VARCHAR(40) NOT NULL,
		p_price DOUBLE NOT NULL)`)
	for i := 1; i <= 5; i++ {
		sys.MustExec(fmt.Sprintf(
			"INSERT INTO Products VALUES (%d, 'product-%d', %d.50)", i, i, i*10))
	}
	sys.Analyze()

	// A currency region: its distribution agent propagates committed
	// transactions every 10s with a 2s delay, so cached data is between 2s
	// and 12s stale (the paper's Figure 3.2 cycle).
	if err := sys.AddRegion(&catalog.Region{
		ID: 1, Name: "CR1",
		UpdateInterval:    10 * time.Second,
		UpdateDelay:       2 * time.Second,
		HeartbeatInterval: time.Second,
	}); err != nil {
		log.Fatal(err)
	}
	// Cache the whole table as a materialized view in that region.
	if err := sys.CreateView(&catalog.View{
		Name:      "products_prj",
		BaseTable: "Products",
		Columns:   []string{"p_id", "p_name", "p_price"},
		RegionID:  1,
	}); err != nil {
		log.Fatal(err)
	}
	// Let the region synchronize once.
	if err := sys.Run(15 * time.Second); err != nil {
		log.Fatal(err)
	}

	show := func(sql string) {
		res, err := sys.Query(sql)
		if err != nil {
			log.Fatal(err)
		}
		src := "remote (back end)"
		if len(res.LocalViews) > 0 {
			src = "local view"
		}
		fmt.Printf("\n%s\n  plan: %s\n  answered from: %s\n", sql, res.Plan.Shape, src)
		for _, row := range res.Rows {
			fmt.Printf("  %v\n", row)
		}
	}

	fmt.Println("== 1. No currency clause: traditional semantics, always current ==")
	show("SELECT p_name, p_price FROM Products WHERE p_id = 3")

	fmt.Println("\n== 2. Relaxed currency: 'data up to 60s old is good enough' ==")
	show("SELECT p_name, p_price FROM Products WHERE p_id = 3 CURRENCY 60 ON (Products)")

	fmt.Println("\n== 3. An update arrives; the relaxed query may lag, the strict one never does ==")
	if _, err := sys.Exec("UPDATE Products SET p_price = 99.99 WHERE p_id = 3"); err != nil {
		log.Fatal(err)
	}
	show("SELECT p_price FROM Products WHERE p_id = 3 CURRENCY 60 ON (Products)") // may show the old price
	show("SELECT p_price FROM Products WHERE p_id = 3")                           // always the new price

	fmt.Println("\n== 4. After replication catches up, the local view has the new price ==")
	if err := sys.Run(15 * time.Second); err != nil {
		log.Fatal(err)
	}
	show("SELECT p_price FROM Products WHERE p_id = 3 CURRENCY 60 ON (Products)")

	fmt.Println("\n== 5. A bound tighter than the replica can ever satisfy compiles to a pure remote plan ==")
	show("SELECT p_price FROM Products WHERE p_id = 3 CURRENCY 1 ON (Products)")
}
