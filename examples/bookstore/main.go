// Bookstore: the paper's running example (Section 2). Books and Reviews are
// cached in different currency regions, so queries that demand mutual
// consistency between them cannot be answered locally, while queries that
// relax consistency can — E1 vs E2 from Figure 2.1, plus the Q3 EXISTS
// pattern from Figure 2.2.
//
//	go run ./examples/bookstore
package main

import (
	"fmt"
	"log"
	"time"

	"relaxedcc/internal/catalog"
	"relaxedcc/internal/core"
	"relaxedcc/internal/sqltypes"
)

func main() {
	sys := core.NewSystem()
	sys.MustExec(`CREATE TABLE Books (
		isbn BIGINT NOT NULL PRIMARY KEY,
		title VARCHAR(60) NOT NULL,
		price DOUBLE NOT NULL)`)
	sys.MustExec(`CREATE TABLE Reviews (
		review_id BIGINT NOT NULL PRIMARY KEY,
		isbn BIGINT NOT NULL,
		rating BIGINT NOT NULL)`)
	sys.MustExec(`CREATE TABLE Sales (
		sale_id BIGINT NOT NULL PRIMARY KEY,
		isbn BIGINT NOT NULL,
		year BIGINT NOT NULL)`)

	titles := []string{"Transaction Processing", "Readings in Databases", "The Art of SQL"}
	const books = 6000 // enough rows that plan shapes matter
	var bookRows, reviewRows, saleRows []sqltypes.Row
	for i := 0; i < books; i++ {
		title := fmt.Sprintf("%s vol. %d", titles[i%len(titles)], i/len(titles)+1)
		bookRows = append(bookRows, sqltypes.Row{
			sqltypes.NewInt(int64(i + 1)), sqltypes.NewString(title), sqltypes.NewFloat(float64(20 + i%30)),
		})
		for r := 0; r < 3; r++ {
			reviewRows = append(reviewRows, sqltypes.Row{
				sqltypes.NewInt(int64(i*10 + r)), sqltypes.NewInt(int64(i + 1)), sqltypes.NewInt(int64(3 + r%3)),
			})
		}
		saleRows = append(saleRows, sqltypes.Row{
			sqltypes.NewInt(int64(10000 + i)), sqltypes.NewInt(int64(i + 1)), sqltypes.NewInt(int64(2000 + i%10)),
		})
	}
	must0 := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	must0(sys.Backend.LoadRows("Books", bookRows))
	must0(sys.Backend.LoadRows("Reviews", reviewRows))
	must0(sys.Backend.LoadRows("Sales", saleRows))
	sys.Analyze()

	// BooksCopy and ReviewsCopy refresh on different schedules — like the
	// paper's hourly-refresh example, scaled to seconds.
	for id, name := range map[int]string{1: "books-region", 2: "reviews-region"} {
		if err := sys.AddRegion(&catalog.Region{
			ID: id, Name: name,
			UpdateInterval:    time.Duration(10*id) * time.Second,
			UpdateDelay:       2 * time.Second,
			HeartbeatInterval: time.Second,
		}); err != nil {
			log.Fatal(err)
		}
	}
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	must(sys.CreateView(&catalog.View{
		Name: "BooksCopy", BaseTable: "Books",
		Columns: []string{"isbn", "title", "price"}, RegionID: 1,
	}))
	must(sys.CreateView(&catalog.View{
		Name: "ReviewsCopy", BaseTable: "Reviews",
		Columns: []string{"review_id", "isbn", "rating"}, RegionID: 2,
	}))
	must(sys.Run(30 * time.Second))

	show := func(label, sql string) {
		res, err := sys.Query(sql)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n-- %s\n%s\n  plan: %s (local views used: %d, remote queries: %d)\n",
			label, sql, res.Plan.Shape, len(res.LocalViews), res.RemoteQueries)
		for i, row := range res.Rows {
			if i == 3 {
				fmt.Printf("  ... (%d rows total)\n", len(res.Rows))
				break
			}
			fmt.Printf("  %v\n", row)
		}
	}

	show("E1: one consistency class — B and R must reflect the same snapshot.\n"+
		"   The copies live in different regions, so the DBMS answers remotely.",
		`SELECT B.title, R.rating FROM Books B JOIN Reviews R ON B.isbn = R.isbn
		 WHERE B.isbn = 1 CURRENCY 10 MIN ON (B, R)`)

	show("E2: separate classes — each copy only needs to be fresh on its own.\n"+
		"   Both local views qualify and the join runs at the cache.",
		`SELECT B.title, R.rating FROM Books B JOIN Reviews R ON B.isbn = R.isbn
		 WHERE B.isbn = 1 CURRENCY 10 MIN ON (B), 30 MIN ON (R)`)

	show("Q3 (Figure 2.2): EXISTS subquery with its own currency clause.\n"+
		"   Sales has no cached copy, so it is fetched remotely; Books stays local.",
		`SELECT B.title FROM Books B
		 WHERE EXISTS (SELECT 1 FROM Sales S WHERE S.isbn = B.isbn AND S.year = 2003
			CURRENCY 10 MIN ON (S))
		 CURRENCY 10 MIN ON (B)`)

	// The paper's reconfiguration scenario from the introduction: the
	// replication engine slows from 10s to 5min. Queries whose bounds no
	// longer fit switch to the back end automatically — no application
	// change, no silent staleness.
	fmt.Println("\n-- Reconfiguration: books-region now refreshes every 5 minutes.")
	sys.Cache.Catalog().Region(1).UpdateInterval = 5 * time.Minute
	must(sys.Run(6 * time.Minute))
	show("The 30s bound no longer holds mid-cycle; the guard routes remotely.",
		`SELECT B.title FROM Books B WHERE B.isbn = 2 CURRENCY 30 ON (B)`)
	show("A 10-minute bound is still satisfied by the slower replica.",
		`SELECT B.title FROM Books B WHERE B.isbn = 2 CURRENCY 10 MIN ON (B)`)
}
