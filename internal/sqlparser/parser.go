package sqlparser

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"relaxedcc/internal/sqltypes"
)

// Parse parses a single SQL statement.
func Parse(sql string) (Statement, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: sql}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	if p.peek().isPunct(";") {
		p.next()
	}
	if p.peek().kind != tokEOF {
		return nil, p.errorf("unexpected %s after statement", p.peek())
	}
	return stmt, nil
}

// ParseSelect parses a statement and requires it to be a SELECT.
func ParseSelect(sql string) (*SelectStmt, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("sql: expected SELECT statement")
	}
	return sel, nil
}

type parser struct {
	toks []token
	pos  int
	src  string
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) peek2() token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("sql: "+format+" (near offset %d)", append(args, p.peek().pos)...)
}

func (p *parser) expectKeyword(kw string) error {
	if !p.peek().isKeyword(kw) {
		return p.errorf("expected %s, found %s", kw, p.peek())
	}
	p.next()
	return nil
}

func (p *parser) expectPunct(s string) error {
	if !p.peek().isPunct(s) {
		return p.errorf("expected %q, found %s", s, p.peek())
	}
	p.next()
	return nil
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.peek().isKeyword(kw) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectIdent() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", p.errorf("expected identifier, found %s", t)
	}
	p.next()
	return t.text, nil
}

func (p *parser) parseStatement() (Statement, error) {
	t := p.peek()
	switch {
	case t.isKeyword("SELECT"):
		return p.parseSelect()
	case t.isKeyword("INSERT"):
		return p.parseInsert()
	case t.isKeyword("UPDATE"):
		return p.parseUpdate()
	case t.isKeyword("DELETE"):
		return p.parseDelete()
	case t.isKeyword("CREATE"):
		return p.parseCreate()
	case t.isKeyword("EXPLAIN"):
		p.next()
		analyze := p.acceptKeyword("ANALYZE")
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &ExplainStmt{Analyze: analyze, Stmt: sel}, nil
	case t.isKeyword("BEGIN"):
		p.next()
		if err := p.expectKeyword("TIMEORDERED"); err != nil {
			return nil, err
		}
		return &BeginTimeOrderedStmt{}, nil
	case t.isKeyword("END"):
		p.next()
		if err := p.expectKeyword("TIMEORDERED"); err != nil {
			return nil, err
		}
		return &EndTimeOrderedStmt{}, nil
	default:
		return nil, p.errorf("expected statement, found %s", t)
	}
}

// reservedAfterTable lists keywords that terminate a table reference, so a
// following identifier is not mistaken for an alias.
var reservedAfterTable = map[string]bool{
	"WHERE": true, "GROUP": true, "ORDER": true, "HAVING": true,
	"JOIN": true, "INNER": true, "ON": true, "CURRENCY": true,
	"AND": true, "OR": true, "SET": true, "VALUES": true, "AS": true,
	"BY": true, "UNION": true, "LEFT": true, "RIGHT": true,
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	sel := &SelectStmt{}
	if p.acceptKeyword("DISTINCT") {
		sel.Distinct = true
	}
	if p.acceptKeyword("TOP") {
		t := p.peek()
		if t.kind != tokNumber {
			return nil, p.errorf("expected row count after TOP")
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil || n < 0 {
			return nil, p.errorf("bad TOP count %q", t.text)
		}
		p.next()
		sel.Top = n
	}
	// Projection list.
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if !p.peek().isPunct(",") {
			break
		}
		p.next()
	}
	if p.acceptKeyword("FROM") {
		for {
			tr, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			sel.From = append(sel.From, tr)
			if !p.peek().isPunct(",") {
				break
			}
			p.next()
		}
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = e
	}
	if p.peek().isKeyword("GROUP") {
		p.next()
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if !p.peek().isPunct(",") {
				break
			}
			p.next()
		}
	}
	if p.acceptKeyword("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Having = e
	}
	if p.peek().isKeyword("ORDER") {
		p.next()
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !p.peek().isPunct(",") {
				break
			}
			p.next()
		}
	}
	if p.peek().isKeyword("CURRENCY") {
		cc, err := p.parseCurrencyClause()
		if err != nil {
			return nil, err
		}
		sel.Currency = cc
	}
	return sel, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.peek().isPunct("*") {
		p.next()
		return SelectItem{Star: true}, nil
	}
	// T.* form.
	if p.peek().kind == tokIdent && p.peek2().isPunct(".") {
		save := p.pos
		name := p.next().text
		p.next() // '.'
		if p.peek().isPunct("*") {
			p.next()
			return SelectItem{Star: true, StarTable: name}, nil
		}
		p.pos = save
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		alias, err := p.expectIdent()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = alias
	} else if t := p.peek(); t.kind == tokIdent && !reservedAfterTable[strings.ToUpper(t.text)] && !t.isKeyword("FROM") {
		item.Alias = p.next().text
	}
	return item, nil
}

// parseTableRef parses one FROM-list entry: a primary table factor followed
// by any number of JOIN ... ON ... suffixes (left associative).
func (p *parser) parseTableRef() (TableRef, error) {
	left, err := p.parseTableFactor()
	if err != nil {
		return nil, err
	}
	for {
		if p.peek().isKeyword("INNER") && p.peek2().isKeyword("JOIN") {
			p.next()
		}
		if !p.acceptKeyword("JOIN") {
			return left, nil
		}
		right, err := p.parseTableFactor()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		on, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		left = &JoinRef{Left: left, Right: right, On: on}
	}
}

func (p *parser) parseTableFactor() (TableRef, error) {
	if p.peek().isPunct("(") {
		p.next()
		if !p.peek().isKeyword("SELECT") {
			return nil, p.errorf("expected subquery after ( in FROM")
		}
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		p.acceptKeyword("AS")
		alias, err := p.expectIdent()
		if err != nil {
			return nil, fmt.Errorf("sql: derived table requires an alias: %w", err)
		}
		return &SubqueryRef{Select: sub, Alias: alias}, nil
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	tn := &TableName{Name: name}
	if p.acceptKeyword("AS") {
		alias, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		tn.Alias = alias
	} else if t := p.peek(); t.kind == tokIdent && !reservedAfterTable[strings.ToUpper(t.text)] {
		tn.Alias = p.next().text
	}
	return tn, nil
}

// parseCurrencyClause parses CURRENCY bound ON (tables) [BY cols] {, ...}.
func (p *parser) parseCurrencyClause() (*CurrencyClause, error) {
	if err := p.expectKeyword("CURRENCY"); err != nil {
		return nil, err
	}
	cc := &CurrencyClause{}
	for {
		triple, err := p.parseCurrencyTriple()
		if err != nil {
			return nil, err
		}
		cc.Triples = append(cc.Triples, triple)
		if p.peek().isPunct(",") && p.peek2().kind == tokNumber {
			p.next()
			continue
		}
		return cc, nil
	}
}

func (p *parser) parseCurrencyTriple() (CurrencyTriple, error) {
	t := p.peek()
	if t.kind != tokNumber {
		return CurrencyTriple{}, p.errorf("expected currency bound, found %s", t)
	}
	amount, err := strconv.ParseFloat(t.text, 64)
	if err != nil || amount < 0 {
		return CurrencyTriple{}, p.errorf("bad currency bound %q", t.text)
	}
	p.next()
	unit := time.Second
	if p.peek().kind == tokIdent && !p.peek().isKeyword("ON") {
		u, ok := parseUnit(p.peek().text)
		if !ok {
			return CurrencyTriple{}, p.errorf("unknown time unit %q", p.peek().text)
		}
		p.next()
		unit = u
	}
	triple := CurrencyTriple{Bound: time.Duration(amount * float64(unit))}
	if err := p.expectKeyword("ON"); err != nil {
		return CurrencyTriple{}, err
	}
	if err := p.expectPunct("("); err != nil {
		return CurrencyTriple{}, err
	}
	for {
		name, err := p.expectIdent()
		if err != nil {
			return CurrencyTriple{}, err
		}
		triple.Tables = append(triple.Tables, name)
		if p.peek().isPunct(",") {
			p.next()
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return CurrencyTriple{}, err
	}
	if p.acceptKeyword("BY") {
		for {
			col, err := p.parseColumnRef()
			if err != nil {
				return CurrencyTriple{}, err
			}
			triple.By = append(triple.By, *col)
			// A comma continues the BY list only if the element after it is
			// a column (not a new triple, which starts with a number).
			if p.peek().isPunct(",") && p.peek2().kind == tokIdent {
				p.next()
				continue
			}
			break
		}
	}
	return triple, nil
}

func parseUnit(s string) (time.Duration, bool) {
	switch strings.ToUpper(s) {
	case "MS", "MSEC", "MILLISECOND", "MILLISECONDS":
		return time.Millisecond, true
	case "S", "SEC", "SECOND", "SECONDS":
		return time.Second, true
	case "MIN", "MINUTE", "MINUTES":
		return time.Minute, true
	case "H", "HR", "HOUR", "HOURS":
		return time.Hour, true
	default:
		return 0, false
	}
}

// reservedWords may not be used as bare column names in expressions.
var reservedWords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true,
	"ORDER": true, "HAVING": true, "JOIN": true, "ON": true,
	"AND": true, "OR": true, "NOT": true, "BETWEEN": true, "IN": true,
	"IS": true, "CURRENCY": true, "INSERT": true, "UPDATE": true,
	"DELETE": true, "CREATE": true, "VALUES": true, "SET": true,
	"AS": true, "DISTINCT": true, "TOP": true, "INNER": true, "BY": true,
}

func (p *parser) parseColumnRef() (*ColumnRef, error) {
	if t := p.peek(); t.kind == tokIdent && reservedWords[strings.ToUpper(t.text)] {
		return nil, p.errorf("unexpected keyword %s in expression", t)
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if p.peek().isPunct(".") {
		p.next()
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &ColumnRef{Table: name, Column: col}, nil
	}
	return &ColumnRef{Column: name}, nil
}

// ---- DML / DDL ----

func (p *parser) parseInsert() (Statement, error) {
	p.next() // INSERT
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	ins := &InsertStmt{Table: table}
	if p.peek().isPunct("(") {
		p.next()
		for {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			ins.Columns = append(ins.Columns, col)
			if p.peek().isPunct(",") {
				p.next()
				continue
			}
			break
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.peek().isPunct(",") {
				p.next()
				continue
			}
			break
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if p.peek().isPunct(",") {
			p.next()
			continue
		}
		break
	}
	return ins, nil
}

func (p *parser) parseUpdate() (Statement, error) {
	p.next() // UPDATE
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	upd := &UpdateStmt{Table: table}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		upd.Set = append(upd.Set, Assignment{Column: col, Value: val})
		if p.peek().isPunct(",") {
			p.next()
			continue
		}
		break
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		upd.Where = e
	}
	return upd, nil
}

func (p *parser) parseDelete() (Statement, error) {
	p.next() // DELETE
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	del := &DeleteStmt{Table: table}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		del.Where = e
	}
	return del, nil
}

func (p *parser) parseCreate() (Statement, error) {
	p.next() // CREATE
	unique := p.acceptKeyword("UNIQUE")
	clustered := p.acceptKeyword("CLUSTERED")
	switch {
	case p.acceptKeyword("TABLE"):
		if unique || clustered {
			return nil, p.errorf("UNIQUE/CLUSTERED apply to indexes, not tables")
		}
		return p.parseCreateTable()
	case p.acceptKeyword("INDEX"):
		return p.parseCreateIndex(unique, clustered)
	default:
		return nil, p.errorf("expected TABLE or INDEX after CREATE")
	}
}

func (p *parser) parseCreateTable() (Statement, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	ct := &CreateTableStmt{Table: name}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	for {
		if p.peek().isKeyword("PRIMARY") {
			p.next()
			if err := p.expectKeyword("KEY"); err != nil {
				return nil, err
			}
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			for {
				col, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				ct.PrimaryKey = append(ct.PrimaryKey, col)
				if p.peek().isPunct(",") {
					p.next()
					continue
				}
				break
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
		} else {
			col, err := p.parseColumnDef()
			if err != nil {
				return nil, err
			}
			ct.Columns = append(ct.Columns, col)
		}
		if p.peek().isPunct(",") {
			p.next()
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return ct, nil
}

func (p *parser) parseColumnDef() (ColumnDef, error) {
	name, err := p.expectIdent()
	if err != nil {
		return ColumnDef{}, err
	}
	typeName, err := p.expectIdent()
	if err != nil {
		return ColumnDef{}, err
	}
	kind, ok := parseTypeName(typeName)
	if !ok {
		return ColumnDef{}, fmt.Errorf("sql: unknown type %q for column %s", typeName, name)
	}
	// Optional length/precision: VARCHAR(25), DECIMAL(12,2).
	if p.peek().isPunct("(") {
		p.next()
		for !p.peek().isPunct(")") {
			if p.peek().kind == tokEOF {
				return ColumnDef{}, fmt.Errorf("sql: unterminated type suffix for column %s", name)
			}
			p.next()
		}
		p.next()
	}
	def := ColumnDef{Name: name, Type: kind}
	for {
		switch {
		case p.peek().isKeyword("NOT"):
			p.next()
			if err := p.expectKeyword("NULL"); err != nil {
				return ColumnDef{}, err
			}
			def.NotNull = true
		case p.peek().isKeyword("PRIMARY"):
			p.next()
			if err := p.expectKeyword("KEY"); err != nil {
				return ColumnDef{}, err
			}
			def.PrimaryKey = true
			def.NotNull = true
		default:
			return def, nil
		}
	}
}

func parseTypeName(s string) (sqltypes.Kind, bool) {
	switch strings.ToUpper(s) {
	case "INT", "INTEGER", "BIGINT", "SMALLINT":
		return sqltypes.KindInt, true
	case "FLOAT", "DOUBLE", "REAL", "DECIMAL", "NUMERIC":
		return sqltypes.KindFloat, true
	case "VARCHAR", "CHAR", "TEXT", "STRING":
		return sqltypes.KindString, true
	case "TIMESTAMP", "DATETIME", "DATE":
		return sqltypes.KindTime, true
	case "BOOLEAN", "BOOL", "BIT":
		return sqltypes.KindBool, true
	default:
		return 0, false
	}
}

func (p *parser) parseCreateIndex(unique, clustered bool) (Statement, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	ci := &CreateIndexStmt{Name: name, Table: table, Unique: unique, Clustered: clustered}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		ci.Columns = append(ci.Columns, col)
		if p.peek().isPunct(",") {
			p.next()
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return ci, nil
}

// ---- Expressions ----

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: OpOr, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.peek().isKeyword("AND") {
		p.next()
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: OpAnd, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		inner, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &NotExpr{Inner: inner}, nil
	}
	return p.parseComparison()
}

var comparisonOps = map[string]BinOp{
	"=": OpEQ, "<>": OpNE, "<": OpLT, "<=": OpLE, ">": OpGT, ">=": OpGE,
}

func (p *parser) parseComparison() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind == tokPunct {
		if op, ok := comparisonOps[t.text]; ok {
			p.next()
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &BinaryExpr{Op: op, Left: left, Right: right}, nil
		}
	}
	not := false
	if t.isKeyword("NOT") && (p.peek2().isKeyword("BETWEEN") || p.peek2().isKeyword("IN")) {
		p.next()
		not = true
		t = p.peek()
	}
	switch {
	case t.isKeyword("BETWEEN"):
		p.next()
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{Expr: left, Lo: lo, Hi: hi, Not: not}, nil
	case t.isKeyword("IN"):
		p.next()
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		in := &InExpr{Expr: left, Not: not}
		if p.peek().isKeyword("SELECT") {
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			in.Subquery = sub
		} else {
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				in.List = append(in.List, e)
				if p.peek().isPunct(",") {
					p.next()
					continue
				}
				break
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return in, nil
	case t.isKeyword("IS"):
		p.next()
		isNot := p.acceptKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &IsNullExpr{Expr: left, Not: isNot}, nil
	default:
		if not {
			return nil, p.errorf("expected BETWEEN or IN after NOT")
		}
		return left, nil
	}
}

func (p *parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		var op BinOp
		switch {
		case t.isPunct("+"):
			op = OpAdd
		case t.isPunct("-"):
			op = OpSub
		default:
			return left, nil
		}
		p.next()
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		var op BinOp
		switch {
		case t.isPunct("*"):
			op = OpMul
		case t.isPunct("/"):
			op = OpDiv
		default:
			return left, nil
		}
		p.next()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.peek().isPunct("-") {
		p.next()
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if lit, ok := inner.(*Literal); ok { // fold -literal
			switch lit.Val.Kind() {
			case sqltypes.KindInt:
				return &Literal{Val: sqltypes.NewInt(-lit.Val.Int())}, nil
			case sqltypes.KindFloat:
				return &Literal{Val: sqltypes.NewFloat(-lit.Val.Float())}, nil
			}
		}
		return &NegExpr{Inner: inner}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.next()
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errorf("bad number %q", t.text)
			}
			return &Literal{Val: sqltypes.NewFloat(f)}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad number %q", t.text)
		}
		return &Literal{Val: sqltypes.NewInt(n)}, nil
	case tokString:
		p.next()
		return &Literal{Val: sqltypes.NewString(t.text)}, nil
	case tokParam:
		p.next()
		return &ParamRef{Name: t.text}, nil
	case tokPunct:
		if t.text == "(" {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		return nil, p.errorf("unexpected %s in expression", t)
	case tokIdent:
		switch {
		case t.isKeyword("NULL"):
			p.next()
			return &Literal{Val: sqltypes.Null}, nil
		case t.isKeyword("TRUE"):
			p.next()
			return &Literal{Val: sqltypes.NewBool(true)}, nil
		case t.isKeyword("FALSE"):
			p.next()
			return &Literal{Val: sqltypes.NewBool(false)}, nil
		case t.isKeyword("EXISTS"):
			p.next()
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return &ExistsExpr{Subquery: sub}, nil
		}
		// Function call?
		if p.peek2().isPunct("(") {
			name := strings.ToUpper(p.next().text)
			p.next() // '('
			fn := &FuncExpr{Name: name}
			if p.peek().isPunct("*") {
				p.next()
				fn.Star = true
			} else if !p.peek().isPunct(")") {
				for {
					e, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					fn.Args = append(fn.Args, e)
					if p.peek().isPunct(",") {
						p.next()
						continue
					}
					break
				}
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return fn, nil
		}
		return p.parseColumnRef()
	default:
		return nil, p.errorf("unexpected %s in expression", t)
	}
}

// Bind returns a copy of the statement with every $name parameter replaced
// by the corresponding literal. It fails if a parameter has no binding.
func Bind(stmt Statement, params map[string]sqltypes.Value) (Statement, error) {
	b := &binder{params: params}
	out := b.stmt(stmt)
	if b.err != nil {
		return nil, b.err
	}
	return out, nil
}

// BindSelect is Bind specialized to SELECT statements.
func BindSelect(sel *SelectStmt, params map[string]sqltypes.Value) (*SelectStmt, error) {
	out, err := Bind(sel, params)
	if err != nil {
		return nil, err
	}
	return out.(*SelectStmt), nil
}

type binder struct {
	params map[string]sqltypes.Value
	err    error
}

func (b *binder) stmt(s Statement) Statement {
	switch s := s.(type) {
	case *SelectStmt:
		return b.sel(s)
	case *InsertStmt:
		out := *s
		out.Rows = make([][]Expr, len(s.Rows))
		for i, row := range s.Rows {
			out.Rows[i] = make([]Expr, len(row))
			for j, e := range row {
				out.Rows[i][j] = b.expr(e)
			}
		}
		return &out
	case *UpdateStmt:
		out := *s
		out.Set = make([]Assignment, len(s.Set))
		for i, a := range s.Set {
			out.Set[i] = Assignment{Column: a.Column, Value: b.expr(a.Value)}
		}
		out.Where = b.expr(s.Where)
		return &out
	case *DeleteStmt:
		out := *s
		out.Where = b.expr(s.Where)
		return &out
	default:
		return s
	}
}

func (b *binder) sel(s *SelectStmt) *SelectStmt {
	if s == nil {
		return nil
	}
	out := *s
	out.Items = make([]SelectItem, len(s.Items))
	for i, item := range s.Items {
		out.Items[i] = item
		out.Items[i].Expr = b.expr(item.Expr)
	}
	out.From = make([]TableRef, len(s.From))
	for i, tr := range s.From {
		out.From[i] = b.tableRef(tr)
	}
	out.Where = b.expr(s.Where)
	out.GroupBy = make([]Expr, len(s.GroupBy))
	for i, g := range s.GroupBy {
		out.GroupBy[i] = b.expr(g)
	}
	if len(s.GroupBy) == 0 {
		out.GroupBy = nil
	}
	out.Having = b.expr(s.Having)
	out.OrderBy = make([]OrderItem, len(s.OrderBy))
	for i, o := range s.OrderBy {
		out.OrderBy[i] = OrderItem{Expr: b.expr(o.Expr), Desc: o.Desc}
	}
	if len(s.OrderBy) == 0 {
		out.OrderBy = nil
	}
	return &out
}

func (b *binder) tableRef(tr TableRef) TableRef {
	switch tr := tr.(type) {
	case *SubqueryRef:
		return &SubqueryRef{Select: b.sel(tr.Select), Alias: tr.Alias}
	case *JoinRef:
		return &JoinRef{Left: b.tableRef(tr.Left), Right: b.tableRef(tr.Right), On: b.expr(tr.On)}
	default:
		return tr
	}
}

func (b *binder) expr(e Expr) Expr {
	if e == nil {
		return nil
	}
	switch e := e.(type) {
	case *ParamRef:
		v, ok := b.params[e.Name]
		if !ok {
			if b.err == nil {
				b.err = fmt.Errorf("sql: unbound parameter $%s", e.Name)
			}
			return e
		}
		return &Literal{Val: v}
	case *BinaryExpr:
		return &BinaryExpr{Op: e.Op, Left: b.expr(e.Left), Right: b.expr(e.Right)}
	case *NotExpr:
		return &NotExpr{Inner: b.expr(e.Inner)}
	case *NegExpr:
		return &NegExpr{Inner: b.expr(e.Inner)}
	case *BetweenExpr:
		return &BetweenExpr{Expr: b.expr(e.Expr), Lo: b.expr(e.Lo), Hi: b.expr(e.Hi), Not: e.Not}
	case *InExpr:
		out := &InExpr{Expr: b.expr(e.Expr), Not: e.Not, Subquery: b.sel(e.Subquery)}
		for _, item := range e.List {
			out.List = append(out.List, b.expr(item))
		}
		return out
	case *ExistsExpr:
		return &ExistsExpr{Subquery: b.sel(e.Subquery), Not: e.Not}
	case *IsNullExpr:
		return &IsNullExpr{Expr: b.expr(e.Expr), Not: e.Not}
	case *FuncExpr:
		out := &FuncExpr{Name: e.Name, Star: e.Star}
		for _, a := range e.Args {
			out.Args = append(out.Args, b.expr(a))
		}
		return out
	default:
		return e
	}
}
