package sqlparser

import "testing"

func TestParseExplain(t *testing.T) {
	stmt, err := Parse("EXPLAIN SELECT c_name FROM Customer WHERE c_custkey = 1")
	if err != nil {
		t.Fatal(err)
	}
	ex, ok := stmt.(*ExplainStmt)
	if !ok {
		t.Fatalf("stmt = %T", stmt)
	}
	if ex.Analyze {
		t.Fatal("plain EXPLAIN must not set Analyze")
	}
	if ex.Stmt == nil || len(ex.Stmt.Items) != 1 {
		t.Fatalf("inner select = %+v", ex.Stmt)
	}
}

func TestParseExplainAnalyze(t *testing.T) {
	stmt, err := Parse("EXPLAIN ANALYZE SELECT c_name FROM Customer WHERE c_custkey = 1 CURRENCY 60 ON (Customer)")
	if err != nil {
		t.Fatal(err)
	}
	ex, ok := stmt.(*ExplainStmt)
	if !ok {
		t.Fatalf("stmt = %T", stmt)
	}
	if !ex.Analyze {
		t.Fatal("EXPLAIN ANALYZE must set Analyze")
	}
	if ex.Stmt.Currency == nil {
		t.Fatal("currency clause must survive")
	}
}

func TestParseExplainErrors(t *testing.T) {
	if _, err := Parse("EXPLAIN"); err == nil {
		t.Fatal("bare EXPLAIN must fail")
	}
	if _, err := Parse("EXPLAIN UPDATE Customer SET c_acctbal = 0"); err == nil {
		t.Fatal("EXPLAIN of non-SELECT must fail")
	}
}
