package sqlparser

import (
	"strings"
	"testing"
	"time"
)

// TestSQLRendering exercises every Expr.SQL / TableRef.SQL branch by
// rendering parsed statements back to text and re-parsing them.
func TestSQLRendering(t *testing.T) {
	queries := []string{
		"SELECT $param FROM t",
		"SELECT a FROM t WHERE x = 1 OR y = 2 OR z = 3",
		"SELECT a FROM t WHERE NOT (x = 1) AND -(y) > 0",
		"SELECT a FROM t WHERE x NOT BETWEEN 1 AND 2",
		"SELECT a FROM t WHERE x NOT IN (1, 2)",
		"SELECT a FROM t WHERE x IN (SELECT y FROM u)",
		"SELECT a FROM t WHERE x NOT IN (SELECT y FROM u WHERE u.z = t.a)",
		"SELECT a FROM t WHERE NOT EXISTS (SELECT 1 FROM u)",
		"SELECT a FROM t WHERE x IS NOT NULL AND y IS NULL",
		"SELECT COUNT(*), SUM(x), GETDATE() FROM t",
		"SELECT a FROM t1 JOIN t2 ON t1.x = t2.x JOIN t3 ON t2.y = t3.y",
		"SELECT a FROM (SELECT a FROM u) AS d WHERE d.a > 0",
		"SELECT t.* FROM t",
		"SELECT a FROM t CURRENCY 1.5 MIN ON (t) BY t.a, 500 MS ON (t)",
		"SELECT a b FROM t c",
	}
	for _, q := range queries {
		sel, err := ParseSelect(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		rendered := SelectSQL(sel)
		sel2, err := ParseSelect(rendered)
		if err != nil {
			t.Fatalf("re-parse %q (from %q): %v", rendered, q, err)
		}
		if again := SelectSQL(sel2); again != rendered {
			t.Fatalf("unstable rendering:\n  %s\n  %s", rendered, again)
		}
	}
}

func TestFormatBoundUnits(t *testing.T) {
	cases := map[time.Duration]string{
		0:                       "0 SEC",
		2 * time.Hour:           "2 HOUR",
		10 * time.Minute:        "10 MIN",
		45 * time.Second:        "45 SEC",
		1500 * time.Millisecond: "1500 MS",
	}
	for d, want := range cases {
		if got := formatBound(d); got != want {
			t.Errorf("formatBound(%v) = %q, want %q", d, got, want)
		}
	}
}

func TestCurrencyClauseSQLWithBy(t *testing.T) {
	sel, err := ParseSelect("SELECT 1 FROM B, R CURRENCY 10 MIN ON (B, R) BY R.isbn, B.isbn")
	if err != nil {
		t.Fatal(err)
	}
	got := sel.Currency.SQL()
	if !strings.Contains(got, "BY R.isbn, B.isbn") {
		t.Fatalf("clause SQL = %q", got)
	}
}

func TestBinOpStringAll(t *testing.T) {
	ops := map[BinOp]string{
		OpAnd: "AND", OpOr: "OR", OpEQ: "=", OpNE: "<>", OpLT: "<",
		OpLE: "<=", OpGT: ">", OpGE: ">=", OpAdd: "+", OpSub: "-",
		OpMul: "*", OpDiv: "/",
	}
	for op, want := range ops {
		if op.String() != want {
			t.Errorf("%v", op)
		}
	}
	if !strings.Contains(BinOp(99).String(), "BinOp") {
		t.Fatal("unknown op")
	}
}

func TestTokenString(t *testing.T) {
	toks, err := lex("abc 'str' $p ,")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].String() != `"abc"` {
		t.Fatalf("ident = %s", toks[0])
	}
	if toks[1].String() != `string "str"` {
		t.Fatalf("string = %s", toks[1])
	}
	if toks[2].String() != "$p" {
		t.Fatalf("param = %s", toks[2])
	}
	if toks[len(toks)-1].String() != "end of input" {
		t.Fatalf("eof = %s", toks[len(toks)-1])
	}
}

func TestIsAggregateNames(t *testing.T) {
	for _, name := range []string{"COUNT", "SUM", "AVG", "MIN", "MAX"} {
		if !(&FuncExpr{Name: name}).IsAggregate() {
			t.Errorf("%s should be aggregate", name)
		}
	}
	if (&FuncExpr{Name: "GETDATE"}).IsAggregate() {
		t.Fatal("GETDATE is not an aggregate")
	}
}
