package sqlparser

import (
	"strings"
	"testing"
	"time"

	"relaxedcc/internal/sqltypes"
)

func mustSelect(t *testing.T, sql string) *SelectStmt {
	t.Helper()
	sel, err := ParseSelect(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	return sel
}

func TestSimpleSelect(t *testing.T) {
	sel := mustSelect(t, "SELECT c_name, c_acctbal FROM Customer WHERE c_custkey = 42")
	if len(sel.Items) != 2 {
		t.Fatalf("items = %d", len(sel.Items))
	}
	tn := sel.From[0].(*TableName)
	if tn.Name != "Customer" || tn.Binding() != "Customer" {
		t.Fatalf("from = %+v", tn)
	}
	be := sel.Where.(*BinaryExpr)
	if be.Op != OpEQ {
		t.Fatalf("where op = %v", be.Op)
	}
	if be.Right.(*Literal).Val.Int() != 42 {
		t.Fatal("where literal")
	}
}

func TestSelectStarAndAliases(t *testing.T) {
	sel := mustSelect(t, "SELECT *, C.*, c_acctbal AS bal, c_name nm FROM Customer C")
	if !sel.Items[0].Star || sel.Items[0].StarTable != "" {
		t.Fatal("bare star")
	}
	if !sel.Items[1].Star || sel.Items[1].StarTable != "C" {
		t.Fatal("qualified star")
	}
	if sel.Items[2].Alias != "bal" || sel.Items[3].Alias != "nm" {
		t.Fatal("aliases")
	}
	if sel.From[0].(*TableName).Binding() != "C" {
		t.Fatal("table alias")
	}
}

func TestJoinParsing(t *testing.T) {
	sel := mustSelect(t, `SELECT C.c_name, O.o_totalprice
		FROM Customer C JOIN Orders O ON C.c_custkey = O.o_custkey
		WHERE O.o_totalprice > 100.5`)
	j := sel.From[0].(*JoinRef)
	if j.Left.(*TableName).Name != "Customer" || j.Right.(*TableName).Name != "Orders" {
		t.Fatalf("join = %+v", j)
	}
	on := j.On.(*BinaryExpr)
	if on.Left.(*ColumnRef).Table != "C" || on.Right.(*ColumnRef).Column != "o_custkey" {
		t.Fatal("on condition")
	}
	if sel.Where.(*BinaryExpr).Right.(*Literal).Val.Float() != 100.5 {
		t.Fatal("float literal")
	}
}

func TestInnerJoinAndCommaJoin(t *testing.T) {
	sel := mustSelect(t, "SELECT * FROM A INNER JOIN B ON A.x = B.x")
	if _, ok := sel.From[0].(*JoinRef); !ok {
		t.Fatal("INNER JOIN not parsed as join")
	}
	sel = mustSelect(t, "SELECT * FROM A, B WHERE A.x = B.x")
	if len(sel.From) != 2 {
		t.Fatal("comma join")
	}
}

func TestChainedJoins(t *testing.T) {
	sel := mustSelect(t, "SELECT * FROM A JOIN B ON A.x = B.x JOIN C ON B.y = C.y")
	outer := sel.From[0].(*JoinRef)
	inner := outer.Left.(*JoinRef)
	if inner.Left.(*TableName).Name != "A" || outer.Right.(*TableName).Name != "C" {
		t.Fatal("join associativity")
	}
}

func TestGroupByHavingOrderByTop(t *testing.T) {
	sel := mustSelect(t, `SELECT TOP 10 o_custkey, SUM(o_totalprice) AS total
		FROM Orders GROUP BY o_custkey HAVING COUNT(*) > 5
		ORDER BY total DESC, o_custkey`)
	if sel.Top != 10 {
		t.Fatal("TOP")
	}
	if len(sel.GroupBy) != 1 {
		t.Fatal("GROUP BY")
	}
	h := sel.Having.(*BinaryExpr)
	if fn := h.Left.(*FuncExpr); fn.Name != "COUNT" || !fn.Star {
		t.Fatal("HAVING COUNT(*)")
	}
	if len(sel.OrderBy) != 2 || !sel.OrderBy[0].Desc || sel.OrderBy[1].Desc {
		t.Fatal("ORDER BY")
	}
	if !sel.Items[1].Expr.(*FuncExpr).IsAggregate() {
		t.Fatal("IsAggregate")
	}
}

func TestBetweenInExists(t *testing.T) {
	sel := mustSelect(t, `SELECT * FROM Customer C WHERE c_acctbal BETWEEN 100 AND 200
		AND c_nationkey IN (1, 2, 3)
		AND EXISTS (SELECT 1 FROM Orders O WHERE O.o_custkey = C.c_custkey)
		AND c_name IS NOT NULL`)
	and1 := sel.Where.(*BinaryExpr)
	if and1.Op != OpAnd {
		t.Fatal("top AND")
	}
	if _, ok := and1.Right.(*IsNullExpr); !ok {
		t.Fatal("IS NOT NULL")
	}
	and2 := and1.Left.(*BinaryExpr)
	ex := and2.Right.(*ExistsExpr)
	if ex.Not || ex.Subquery == nil {
		t.Fatal("EXISTS")
	}
	and3 := and2.Left.(*BinaryExpr)
	if in := and3.Right.(*InExpr); len(in.List) != 3 || in.Not {
		t.Fatal("IN list")
	}
	if btw := and3.Left.(*BetweenExpr); btw.Not || btw.Lo.(*Literal).Val.Int() != 100 {
		t.Fatal("BETWEEN")
	}
}

func TestNotVariants(t *testing.T) {
	sel := mustSelect(t, "SELECT * FROM T WHERE x NOT BETWEEN 1 AND 2 AND y NOT IN (3) AND NOT (z = 4)")
	and1 := sel.Where.(*BinaryExpr)
	if _, ok := and1.Right.(*NotExpr); !ok {
		t.Fatal("NOT (expr)")
	}
	and2 := and1.Left.(*BinaryExpr)
	if !and2.Right.(*InExpr).Not {
		t.Fatal("NOT IN")
	}
	if !and2.Left.(*BetweenExpr).Not {
		t.Fatal("NOT BETWEEN")
	}
}

func TestInSubquery(t *testing.T) {
	sel := mustSelect(t, "SELECT * FROM Books B WHERE B.isbn IN (SELECT S.isbn FROM Sales S)")
	in := sel.Where.(*InExpr)
	if in.Subquery == nil || len(in.List) != 0 {
		t.Fatal("IN subquery")
	}
}

func TestDerivedTable(t *testing.T) {
	sel := mustSelect(t, `SELECT T.isbn FROM (SELECT isbn FROM Books) AS T WHERE T.isbn > 0`)
	sub := sel.From[0].(*SubqueryRef)
	if sub.Alias != "T" || sub.Select == nil {
		t.Fatal("derived table")
	}
	// Alias required.
	if _, err := ParseSelect("SELECT * FROM (SELECT 1)"); err == nil {
		t.Fatal("derived table without alias accepted")
	}
}

func TestArithmeticPrecedence(t *testing.T) {
	sel := mustSelect(t, "SELECT 1 + 2 * 3 - 4 / 2")
	// ((1 + (2*3)) - (4/2))
	top := sel.Items[0].Expr.(*BinaryExpr)
	if top.Op != OpSub {
		t.Fatal("top op")
	}
	add := top.Left.(*BinaryExpr)
	if add.Op != OpAdd || add.Right.(*BinaryExpr).Op != OpMul {
		t.Fatal("mul binds tighter")
	}
	if top.Right.(*BinaryExpr).Op != OpDiv {
		t.Fatal("div")
	}
}

func TestNegativeLiteralFolding(t *testing.T) {
	sel := mustSelect(t, "SELECT -5, -2.5, -(1+2)")
	if sel.Items[0].Expr.(*Literal).Val.Int() != -5 {
		t.Fatal("-int")
	}
	if sel.Items[1].Expr.(*Literal).Val.Float() != -2.5 {
		t.Fatal("-float")
	}
	if _, ok := sel.Items[2].Expr.(*NegExpr); !ok {
		t.Fatal("-(expr)")
	}
}

func TestLiterals(t *testing.T) {
	sel := mustSelect(t, "SELECT NULL, TRUE, FALSE, 'o''hare'")
	if !sel.Items[0].Expr.(*Literal).Val.IsNull() {
		t.Fatal("NULL")
	}
	if !sel.Items[1].Expr.(*Literal).Val.Bool() {
		t.Fatal("TRUE")
	}
	if sel.Items[3].Expr.(*Literal).Val.Str() != "o'hare" {
		t.Fatal("escaped quote")
	}
}

// TestCurrencyClauseE1 covers the paper's Figure 2.1 E1: a single bound over
// one consistency class.
func TestCurrencyClauseE1(t *testing.T) {
	sel := mustSelect(t, `SELECT B.title, R.rating FROM Books B JOIN Reviews R ON B.isbn = R.isbn
		CURRENCY 10 MIN ON (B, R)`)
	cc := sel.Currency
	if cc == nil || len(cc.Triples) != 1 {
		t.Fatalf("currency = %+v", cc)
	}
	tr := cc.Triples[0]
	if tr.Bound != 10*time.Minute {
		t.Fatalf("bound = %v", tr.Bound)
	}
	if len(tr.Tables) != 2 || tr.Tables[0] != "B" || tr.Tables[1] != "R" {
		t.Fatalf("tables = %v", tr.Tables)
	}
}

// TestCurrencyClauseE2 covers E2: different bounds, separate classes.
func TestCurrencyClauseE2(t *testing.T) {
	sel := mustSelect(t, `SELECT 1 FROM Books B, Reviews R
		CURRENCY 10 MIN ON (B), 30 MIN ON (R)`)
	cc := sel.Currency
	if len(cc.Triples) != 2 {
		t.Fatalf("triples = %d", len(cc.Triples))
	}
	if cc.Triples[1].Bound != 30*time.Minute || cc.Triples[1].Tables[0] != "R" {
		t.Fatalf("second triple = %+v", cc.Triples[1])
	}
}

// TestCurrencyClauseE3E4 covers grouping columns (BY phrases).
func TestCurrencyClauseE3E4(t *testing.T) {
	sel := mustSelect(t, `SELECT 1 FROM Books B, Reviews R
		CURRENCY 10 MIN ON (B) BY B.isbn, 30 MIN ON (R) BY R.isbn`)
	cc := sel.Currency
	if len(cc.Triples) != 2 {
		t.Fatalf("triples = %d: %+v", len(cc.Triples), cc)
	}
	if len(cc.Triples[0].By) != 1 || cc.Triples[0].By[0].Column != "isbn" || cc.Triples[0].By[0].Table != "B" {
		t.Fatalf("BY = %+v", cc.Triples[0].By)
	}
	// E4 shape: one class, grouped by key.
	sel = mustSelect(t, `SELECT 1 FROM Books B, Reviews R CURRENCY 10 MIN ON (B, R) BY B.isbn`)
	if len(sel.Currency.Triples) != 1 || len(sel.Currency.Triples[0].By) != 1 {
		t.Fatal("E4 shape")
	}
}

func TestCurrencyUnits(t *testing.T) {
	cases := map[string]time.Duration{
		"CURRENCY 500 MS ON (T)":  500 * time.Millisecond,
		"CURRENCY 10 SEC ON (T)":  10 * time.Second,
		"CURRENCY 10 ON (T)":      10 * time.Second, // default unit
		"CURRENCY 2 HOURS ON (T)": 2 * time.Hour,
		"CURRENCY 0 ON (T)":       0,
		"CURRENCY 1.5 MIN ON (T)": 90 * time.Second,
	}
	for clause, want := range cases {
		sel := mustSelect(t, "SELECT 1 FROM T "+clause)
		if got := sel.Currency.Triples[0].Bound; got != want {
			t.Errorf("%s: bound = %v, want %v", clause, got, want)
		}
	}
	if _, err := ParseSelect("SELECT 1 FROM T CURRENCY 10 PARSEC ON (T)"); err == nil {
		t.Fatal("bad unit accepted")
	}
}

// TestCurrencyInSubquery covers the paper's Q3 (Figure 2.2): a currency
// clause inside an EXISTS subquery referencing an outer table.
func TestCurrencyInSubquery(t *testing.T) {
	sel := mustSelect(t, `SELECT B.title FROM Books B JOIN Reviews R ON B.isbn = R.isbn
		WHERE EXISTS (SELECT 1 FROM Sales S WHERE S.isbn = B.isbn CURRENCY 10 MIN ON (S, B))
		CURRENCY 10 MIN ON (B, R)`)
	if sel.Currency == nil {
		t.Fatal("outer currency")
	}
	ex := sel.Where.(*ExistsExpr)
	if ex.Subquery.Currency == nil || len(ex.Subquery.Currency.Triples[0].Tables) != 2 {
		t.Fatal("inner currency")
	}
}

func TestInsertParsing(t *testing.T) {
	stmt, err := Parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
	if err != nil {
		t.Fatal(err)
	}
	ins := stmt.(*InsertStmt)
	if ins.Table != "t" || len(ins.Columns) != 2 || len(ins.Rows) != 2 {
		t.Fatalf("insert = %+v", ins)
	}
	if ins.Rows[1][1].(*Literal).Val.Str() != "y" {
		t.Fatal("row values")
	}
	// Without column list.
	stmt, err = Parse("INSERT INTO t VALUES (1)")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.(*InsertStmt).Columns) != 0 {
		t.Fatal("columns should be empty")
	}
}

func TestUpdateParsing(t *testing.T) {
	stmt, err := Parse("UPDATE t SET a = a + 1, b = 'z' WHERE id = 7")
	if err != nil {
		t.Fatal(err)
	}
	upd := stmt.(*UpdateStmt)
	if len(upd.Set) != 2 || upd.Set[0].Column != "a" || upd.Where == nil {
		t.Fatalf("update = %+v", upd)
	}
}

func TestDeleteParsing(t *testing.T) {
	stmt, err := Parse("DELETE FROM t WHERE id = 7")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.(*DeleteStmt).Table != "t" {
		t.Fatal("delete")
	}
	stmt, _ = Parse("DELETE FROM t")
	if stmt.(*DeleteStmt).Where != nil {
		t.Fatal("where should be nil")
	}
}

func TestCreateTableParsing(t *testing.T) {
	stmt, err := Parse(`CREATE TABLE Customer (
		c_custkey BIGINT NOT NULL PRIMARY KEY,
		c_name VARCHAR(25),
		c_acctbal DOUBLE,
		c_since TIMESTAMP,
		c_active BOOLEAN)`)
	if err != nil {
		t.Fatal(err)
	}
	ct := stmt.(*CreateTableStmt)
	if len(ct.Columns) != 5 {
		t.Fatalf("columns = %d", len(ct.Columns))
	}
	c0 := ct.Columns[0]
	if !c0.PrimaryKey || !c0.NotNull || c0.Type != sqltypes.KindInt {
		t.Fatalf("c0 = %+v", c0)
	}
	if ct.Columns[3].Type != sqltypes.KindTime || ct.Columns[4].Type != sqltypes.KindBool {
		t.Fatal("types")
	}
	// Table-level PK.
	stmt, err = Parse("CREATE TABLE t (a INT, b INT, PRIMARY KEY (a, b))")
	if err != nil {
		t.Fatal(err)
	}
	if pk := stmt.(*CreateTableStmt).PrimaryKey; len(pk) != 2 || pk[1] != "b" {
		t.Fatal("table-level PK")
	}
}

func TestCreateIndexParsing(t *testing.T) {
	stmt, err := Parse("CREATE UNIQUE CLUSTERED INDEX ix ON t (a, b)")
	if err != nil {
		t.Fatal(err)
	}
	ci := stmt.(*CreateIndexStmt)
	if !ci.Unique || !ci.Clustered || len(ci.Columns) != 2 {
		t.Fatalf("index = %+v", ci)
	}
	stmt, _ = Parse("CREATE INDEX ix2 ON t (a)")
	if stmt.(*CreateIndexStmt).Unique {
		t.Fatal("unique default")
	}
}

func TestTimeOrderedBrackets(t *testing.T) {
	if stmt, err := Parse("BEGIN TIMEORDERED"); err != nil {
		t.Fatal(err)
	} else if _, ok := stmt.(*BeginTimeOrderedStmt); !ok {
		t.Fatal("begin")
	}
	if stmt, err := Parse("END TIMEORDERED"); err != nil {
		t.Fatal(err)
	} else if _, ok := stmt.(*EndTimeOrderedStmt); !ok {
		t.Fatal("end")
	}
}

func TestParamBinding(t *testing.T) {
	sel := mustSelect(t, "SELECT * FROM Customer WHERE c_custkey = $K AND c_acctbal > $bal")
	bound, err := BindSelect(sel, map[string]sqltypes.Value{
		"K":   sqltypes.NewInt(42),
		"bal": sqltypes.NewFloat(10.5),
	})
	if err != nil {
		t.Fatal(err)
	}
	and := bound.Where.(*BinaryExpr)
	if and.Left.(*BinaryExpr).Right.(*Literal).Val.Int() != 42 {
		t.Fatal("bound $K")
	}
	// Original must be untouched.
	if _, ok := sel.Where.(*BinaryExpr).Left.(*BinaryExpr).Right.(*ParamRef); !ok {
		t.Fatal("Bind mutated the original AST")
	}
	if _, err := BindSelect(sel, nil); err == nil || !strings.Contains(err.Error(), "unbound") {
		t.Fatalf("unbound param err = %v", err)
	}
}

func TestGetdateFunction(t *testing.T) {
	sel := mustSelect(t, "SELECT 1 FROM Heartbeat_R WHERE TimeStamp > GETDATE() - 10")
	cmp := sel.Where.(*BinaryExpr)
	sub := cmp.Right.(*BinaryExpr)
	if fn := sub.Left.(*FuncExpr); fn.Name != "GETDATE" || len(fn.Args) != 0 {
		t.Fatal("GETDATE()")
	}
}

// TestRoundTrip verifies that SelectSQL output re-parses to the same SQL.
func TestRoundTrip(t *testing.T) {
	queries := []string{
		"SELECT c_name FROM Customer WHERE c_custkey = 42",
		"SELECT C.c_name, O.o_totalprice FROM Customer C JOIN Orders O ON C.c_custkey = O.o_custkey WHERE O.o_totalprice > 100",
		"SELECT TOP 5 o_custkey, SUM(o_totalprice) AS total FROM Orders GROUP BY o_custkey HAVING COUNT(*) > 2 ORDER BY total DESC",
		"SELECT * FROM Books B, Reviews R CURRENCY 10 MIN ON (B, R)",
		"SELECT 1 FROM T WHERE a BETWEEN 1 AND 2 AND b IN (1, 2) AND c IS NULL",
		"SELECT DISTINCT x FROM T WHERE NOT EXISTS (SELECT 1 FROM U WHERE U.x = T.x)",
		"SELECT T.a FROM (SELECT a FROM U CURRENCY 5 SEC ON (U)) T",
	}
	for _, q := range queries {
		sel1 := mustSelect(t, q)
		sql1 := SelectSQL(sel1)
		sel2 := mustSelect(t, sql1)
		sql2 := SelectSQL(sel2)
		if sql1 != sql2 {
			t.Errorf("round trip diverged:\n  %s\n  %s", sql1, sql2)
		}
	}
}

func TestLexErrors(t *testing.T) {
	bad := []string{
		"SELECT 'unterminated",
		"SELECT $ FROM t",
		"SELECT # FROM t",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("lex %q: expected error", q)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"FOO BAR",
		"SELECT FROM",
		"SELECT * FROM",
		"SELECT * FROM t WHERE",
		"SELECT * FROM t extra garbage ON",
		"SELECT * FROM t CURRENCY ON (t)",
		"SELECT * FROM t CURRENCY 10 MIN",
		"SELECT * FROM t CURRENCY 10 MIN ON ()",
		"INSERT INTO t",
		"UPDATE t",
		"DELETE t",
		"CREATE VIEW v",
		"CREATE UNIQUE TABLE t (a INT)",
		"CREATE TABLE t (a FANCYTYPE)",
		"BEGIN TRANSACTION",
		"SELECT a NOT 5 FROM t",
		"SELECT TOP x FROM t",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("parse %q: expected error", q)
		}
	}
}

func TestCommentsAndSemicolon(t *testing.T) {
	sel := mustSelect(t, "SELECT 1 -- trailing comment\nFROM T;")
	if len(sel.From) != 1 {
		t.Fatal("comment handling")
	}
}

func TestNotEqualsVariants(t *testing.T) {
	for _, q := range []string{"SELECT * FROM t WHERE a <> 1", "SELECT * FROM t WHERE a != 1"} {
		sel := mustSelect(t, q)
		if sel.Where.(*BinaryExpr).Op != OpNE {
			t.Errorf("%s: op", q)
		}
	}
}
