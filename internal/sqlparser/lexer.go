// Package sqlparser implements the SQL dialect used by both servers: a
// classic SELECT-FROM-WHERE core (joins, subqueries, grouping, ordering),
// DML, a little DDL — and the paper's extensions: the CURRENCY clause
// (Section 2) and BEGIN/END TIMEORDERED session brackets (Section 2.3).
package sqlparser

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokParam // $name query-schema parameter
	tokPunct // operators and punctuation, Text holds the lexeme
)

// token is one lexeme with its source position (for error messages).
type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokString:
		return fmt.Sprintf("string %q", t.text)
	case tokParam:
		return "$" + t.text
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// isKeyword reports whether the identifier token matches the (case-
// insensitive) keyword.
func (t token) isKeyword(kw string) bool {
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (t token) isPunct(p string) bool { return t.kind == tokPunct && t.text == p }

// lex splits input into tokens. SQL comments (-- to end of line) are
// skipped. It returns an error for unterminated strings or stray bytes.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && input[i+1] == '-':
			for i < n && input[i] != '\n' {
				i++
			}
		case isIdentStart(c):
			start := i
			for i < n && isIdentPart(input[i]) {
				i++
			}
			toks = append(toks, token{kind: tokIdent, text: input[start:i], pos: start})
		case c >= '0' && c <= '9' || (c == '.' && i+1 < n && input[i+1] >= '0' && input[i+1] <= '9'):
			start := i
			seenDot := false
			for i < n {
				d := input[i]
				if d == '.' && !seenDot {
					seenDot = true
					i++
					continue
				}
				if d < '0' || d > '9' {
					break
				}
				i++
			}
			toks = append(toks, token{kind: tokNumber, text: input[start:i], pos: start})
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("sql: unterminated string at offset %d", start)
			}
			toks = append(toks, token{kind: tokString, text: sb.String(), pos: start})
		case c == '$':
			start := i
			i++
			for i < n && isIdentPart(input[i]) {
				i++
			}
			if i == start+1 {
				return nil, fmt.Errorf("sql: bare $ at offset %d", start)
			}
			toks = append(toks, token{kind: tokParam, text: input[start+1 : i], pos: start})
		default:
			// Multi-char operators first.
			rest := input[i:]
			matched := ""
			for _, op := range []string{"<=", ">=", "<>", "!=", "="} {
				if strings.HasPrefix(rest, op) {
					matched = op
					break
				}
			}
			if matched == "" {
				if strings.ContainsRune("(),.*+-/<>;", rune(c)) {
					matched = string(c)
				} else {
					return nil, fmt.Errorf("sql: unexpected character %q at offset %d", c, i)
				}
			}
			adv := len(matched)
			if matched == "!=" {
				matched = "<>" // canonicalize
			}
			toks = append(toks, token{kind: tokPunct, text: matched, pos: i})
			i += adv
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: n})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || c >= '0' && c <= '9'
}
