package sqlparser

import (
	"fmt"
	"strings"
	"time"

	"relaxedcc/internal/sqltypes"
)

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// Expr is any scalar expression.
type Expr interface {
	expr()
	// SQL renders the expression back to SQL text (used to build remote
	// queries and for diagnostics).
	SQL() string
}

// SelectStmt is a Select-From-Where block, possibly with a currency clause
// (which, per the paper, occurs last in the block).
type SelectStmt struct {
	Distinct bool
	Top      int64 // 0 = no TOP
	Items    []SelectItem
	From     []TableRef
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Currency *CurrencyClause
}

func (*SelectStmt) stmt() {}

// SelectItem is one projection item. Star items select every column,
// optionally qualified (T.*).
type SelectItem struct {
	Star      bool
	StarTable string
	Expr      Expr
	Alias     string
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// TableRef is an entry in the FROM clause.
type TableRef interface {
	tableRef()
	// SQL renders the table reference back to SQL.
	SQL() string
}

// TableName references a base table or view, optionally aliased.
type TableName struct {
	Name  string
	Alias string
}

func (*TableName) tableRef() {}

// Binding returns the name the table is known by in the block: its alias if
// present, else the table name.
func (t *TableName) Binding() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// SQL implements TableRef.
func (t *TableName) SQL() string {
	if t.Alias != "" {
		return t.Name + " " + t.Alias
	}
	return t.Name
}

// SubqueryRef is a derived table in the FROM clause.
type SubqueryRef struct {
	Select *SelectStmt
	Alias  string
}

func (*SubqueryRef) tableRef() {}

// SQL implements TableRef.
func (s *SubqueryRef) SQL() string { return "(" + SelectSQL(s.Select) + ") " + s.Alias }

// JoinRef is an explicit JOIN with an ON condition.
type JoinRef struct {
	Left  TableRef
	Right TableRef
	On    Expr
}

func (*JoinRef) tableRef() {}

// SQL implements TableRef.
func (j *JoinRef) SQL() string {
	return j.Left.SQL() + " JOIN " + j.Right.SQL() + " ON " + j.On.SQL()
}

// CurrencyClause is the paper's proposed SQL extension: a list of triples,
// each giving a staleness bound for a consistency class of tables, with
// optional grouping columns ("BY R.isbn").
type CurrencyClause struct {
	Triples []CurrencyTriple
}

// CurrencyTriple is one (bound, consistency class, grouping columns) triple.
type CurrencyTriple struct {
	Bound  time.Duration
	Tables []string // table names or block-level aliases
	By     []ColumnRef
}

// SQL renders the clause.
func (c *CurrencyClause) SQL() string {
	var parts []string
	for _, t := range c.Triples {
		s := fmt.Sprintf("%s ON (%s)", formatBound(t.Bound), strings.Join(t.Tables, ", "))
		if len(t.By) > 0 {
			var cols []string
			for _, b := range t.By {
				cols = append(cols, b.SQL())
			}
			s += " BY " + strings.Join(cols, ", ")
		}
		parts = append(parts, s)
	}
	return "CURRENCY " + strings.Join(parts, ", ")
}

func formatBound(d time.Duration) string {
	switch {
	case d == 0:
		return "0 SEC"
	case d%time.Hour == 0:
		return fmt.Sprintf("%d HOUR", d/time.Hour)
	case d%time.Minute == 0:
		return fmt.Sprintf("%d MIN", d/time.Minute)
	case d%time.Second == 0:
		return fmt.Sprintf("%d SEC", d/time.Second)
	default:
		return fmt.Sprintf("%d MS", d/time.Millisecond)
	}
}

// InsertStmt is INSERT INTO t (cols) VALUES (...), (...).
type InsertStmt struct {
	Table   string
	Columns []string
	Rows    [][]Expr
}

func (*InsertStmt) stmt() {}

// Assignment is one SET column = expr pair.
type Assignment struct {
	Column string
	Value  Expr
}

// UpdateStmt is UPDATE t SET ... WHERE ...
type UpdateStmt struct {
	Table string
	Set   []Assignment
	Where Expr
}

func (*UpdateStmt) stmt() {}

// DeleteStmt is DELETE FROM t WHERE ...
type DeleteStmt struct {
	Table string
	Where Expr
}

func (*DeleteStmt) stmt() {}

// ColumnDef is one column in CREATE TABLE.
type ColumnDef struct {
	Name       string
	Type       sqltypes.Kind
	NotNull    bool
	PrimaryKey bool // column-level PRIMARY KEY shorthand
}

// CreateTableStmt is CREATE TABLE.
type CreateTableStmt struct {
	Table      string
	Columns    []ColumnDef
	PrimaryKey []string // table-level PRIMARY KEY(...)
}

func (*CreateTableStmt) stmt() {}

// CreateIndexStmt is CREATE [UNIQUE] [CLUSTERED] INDEX name ON t (cols).
type CreateIndexStmt struct {
	Name      string
	Table     string
	Columns   []string
	Unique    bool
	Clustered bool
}

func (*CreateIndexStmt) stmt() {}

// BeginTimeOrderedStmt opens a timeline-consistency bracket (Section 2.3).
type BeginTimeOrderedStmt struct{}

func (*BeginTimeOrderedStmt) stmt() {}

// EndTimeOrderedStmt closes a timeline-consistency bracket.
type EndTimeOrderedStmt struct{}

func (*EndTimeOrderedStmt) stmt() {}

// ExplainStmt wraps a SELECT for plan inspection. EXPLAIN shows the chosen
// plan without executing; EXPLAIN ANALYZE (Analyze true) runs the statement
// and reports the annotated trace — per-node time, rows, and currency-guard
// verdicts.
type ExplainStmt struct {
	Analyze bool
	Stmt    *SelectStmt
}

func (*ExplainStmt) stmt() {}

// ---- Expressions ----

// ColumnRef names a column, optionally qualified by table or alias.
type ColumnRef struct {
	Table  string
	Column string
}

func (*ColumnRef) expr() {}

// SQL implements Expr.
func (c *ColumnRef) SQL() string {
	if c.Table != "" {
		return c.Table + "." + c.Column
	}
	return c.Column
}

// Literal is a constant value.
type Literal struct {
	Val sqltypes.Value
}

func (*Literal) expr() {}

// SQL implements Expr.
func (l *Literal) SQL() string { return l.Val.String() }

// ParamRef is a $name query-schema parameter, replaced via Bind.
type ParamRef struct {
	Name string
}

func (*ParamRef) expr() {}

// SQL implements Expr.
func (p *ParamRef) SQL() string { return "$" + p.Name }

// BinOp enumerates binary operators.
type BinOp int

// Binary operators.
const (
	OpAnd BinOp = iota
	OpOr
	OpEQ
	OpNE
	OpLT
	OpLE
	OpGT
	OpGE
	OpAdd
	OpSub
	OpMul
	OpDiv
)

// String renders the operator as SQL.
func (op BinOp) String() string {
	switch op {
	case OpAnd:
		return "AND"
	case OpOr:
		return "OR"
	case OpEQ:
		return "="
	case OpNE:
		return "<>"
	case OpLT:
		return "<"
	case OpLE:
		return "<="
	case OpGT:
		return ">"
	case OpGE:
		return ">="
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	default:
		return fmt.Sprintf("BinOp(%d)", int(op))
	}
}

// BinaryExpr applies a binary operator.
type BinaryExpr struct {
	Op          BinOp
	Left, Right Expr
}

func (*BinaryExpr) expr() {}

// SQL implements Expr.
func (b *BinaryExpr) SQL() string {
	return "(" + b.Left.SQL() + " " + b.Op.String() + " " + b.Right.SQL() + ")"
}

// NotExpr is logical negation.
type NotExpr struct {
	Inner Expr
}

func (*NotExpr) expr() {}

// SQL implements Expr.
func (n *NotExpr) SQL() string { return "(NOT " + n.Inner.SQL() + ")" }

// NegExpr is arithmetic negation.
type NegExpr struct {
	Inner Expr
}

func (*NegExpr) expr() {}

// SQL implements Expr.
func (n *NegExpr) SQL() string { return "(-" + n.Inner.SQL() + ")" }

// BetweenExpr is x BETWEEN lo AND hi.
type BetweenExpr struct {
	Expr   Expr
	Lo, Hi Expr
	Not    bool
}

func (*BetweenExpr) expr() {}

// SQL implements Expr.
func (b *BetweenExpr) SQL() string {
	not := ""
	if b.Not {
		not = "NOT "
	}
	return "(" + b.Expr.SQL() + " " + not + "BETWEEN " + b.Lo.SQL() + " AND " + b.Hi.SQL() + ")"
}

// InExpr is x IN (list) or x IN (subquery).
type InExpr struct {
	Expr     Expr
	List     []Expr
	Subquery *SelectStmt
	Not      bool
}

func (*InExpr) expr() {}

// SQL implements Expr.
func (e *InExpr) SQL() string {
	not := ""
	if e.Not {
		not = "NOT "
	}
	if e.Subquery != nil {
		return "(" + e.Expr.SQL() + " " + not + "IN (" + SelectSQL(e.Subquery) + "))"
	}
	var parts []string
	for _, item := range e.List {
		parts = append(parts, item.SQL())
	}
	return "(" + e.Expr.SQL() + " " + not + "IN (" + strings.Join(parts, ", ") + "))"
}

// ExistsExpr is [NOT] EXISTS (subquery).
type ExistsExpr struct {
	Subquery *SelectStmt
	Not      bool
}

func (*ExistsExpr) expr() {}

// SQL implements Expr.
func (e *ExistsExpr) SQL() string {
	not := ""
	if e.Not {
		not = "NOT "
	}
	return "(" + not + "EXISTS (" + SelectSQL(e.Subquery) + "))"
}

// IsNullExpr is x IS [NOT] NULL.
type IsNullExpr struct {
	Expr Expr
	Not  bool
}

func (*IsNullExpr) expr() {}

// SQL implements Expr.
func (e *IsNullExpr) SQL() string {
	if e.Not {
		return "(" + e.Expr.SQL() + " IS NOT NULL)"
	}
	return "(" + e.Expr.SQL() + " IS NULL)"
}

// FuncExpr is a function call: aggregates (COUNT, SUM, AVG, MIN, MAX) or
// scalar functions (GETDATE).
type FuncExpr struct {
	Name string // upper-cased
	Args []Expr
	Star bool // COUNT(*)
}

func (*FuncExpr) expr() {}

// SQL implements Expr.
func (f *FuncExpr) SQL() string {
	if f.Star {
		return f.Name + "(*)"
	}
	var parts []string
	for _, a := range f.Args {
		parts = append(parts, a.SQL())
	}
	return f.Name + "(" + strings.Join(parts, ", ") + ")"
}

// IsAggregate reports whether the function is one of the aggregate
// functions.
func (f *FuncExpr) IsAggregate() bool {
	switch f.Name {
	case "COUNT", "SUM", "AVG", "MIN", "MAX":
		return true
	}
	return false
}

// SelectSQL renders a SELECT statement back to SQL text. The output re-parses
// to an equivalent statement; it is used to construct remote queries.
func SelectSQL(s *SelectStmt) string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	if s.Top > 0 {
		fmt.Fprintf(&b, "TOP %d ", s.Top)
	}
	for i, item := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		switch {
		case item.Star && item.StarTable != "":
			b.WriteString(item.StarTable + ".*")
		case item.Star:
			b.WriteString("*")
		default:
			b.WriteString(item.Expr.SQL())
			if item.Alias != "" {
				b.WriteString(" AS " + item.Alias)
			}
		}
	}
	if len(s.From) > 0 {
		b.WriteString(" FROM ")
		for i, tr := range s.From {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(tr.SQL())
		}
	}
	if s.Where != nil {
		b.WriteString(" WHERE " + s.Where.SQL())
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(g.SQL())
		}
	}
	if s.Having != nil {
		b.WriteString(" HAVING " + s.Having.SQL())
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.Expr.SQL())
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if s.Currency != nil {
		b.WriteString(" " + s.Currency.SQL())
	}
	return b.String()
}
