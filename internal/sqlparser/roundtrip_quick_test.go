package sqlparser

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"relaxedcc/internal/sqltypes"
)

// genExpr builds a random expression tree of bounded depth.
func genExpr(rng *rand.Rand, depth int) Expr {
	if depth <= 0 {
		switch rng.Intn(4) {
		case 0:
			return &Literal{Val: sqltypes.NewInt(int64(rng.Intn(1000)))}
		case 1:
			return &Literal{Val: sqltypes.NewFloat(float64(rng.Intn(100)) + 0.5)}
		case 2:
			return &Literal{Val: sqltypes.NewString("s")}
		default:
			return &ColumnRef{Table: "t", Column: colNames[rng.Intn(len(colNames))]}
		}
	}
	switch rng.Intn(8) {
	case 0:
		ops := []BinOp{OpAdd, OpSub, OpMul, OpDiv}
		return &BinaryExpr{Op: ops[rng.Intn(len(ops))], Left: genExpr(rng, depth-1), Right: genExpr(rng, depth-1)}
	case 1:
		ops := []BinOp{OpEQ, OpNE, OpLT, OpLE, OpGT, OpGE}
		return &BinaryExpr{Op: ops[rng.Intn(len(ops))], Left: genExpr(rng, depth-1), Right: genExpr(rng, depth-1)}
	case 2:
		ops := []BinOp{OpAnd, OpOr}
		return &BinaryExpr{Op: ops[rng.Intn(len(ops))], Left: genExpr(rng, depth-1), Right: genExpr(rng, depth-1)}
	case 3:
		return &NotExpr{Inner: genExpr(rng, depth-1)}
	case 4:
		return &BetweenExpr{Expr: genExpr(rng, depth-1), Lo: genExpr(rng, depth-1), Hi: genExpr(rng, depth-1), Not: rng.Intn(2) == 0}
	case 5:
		in := &InExpr{Expr: genExpr(rng, depth-1), Not: rng.Intn(2) == 0}
		for i := 0; i <= rng.Intn(3); i++ {
			in.List = append(in.List, genExpr(rng, depth-1))
		}
		return in
	case 6:
		return &IsNullExpr{Expr: genExpr(rng, depth-1), Not: rng.Intn(2) == 0}
	default:
		return &NegExpr{Inner: genExpr(rng, depth-1)}
	}
}

var colNames = []string{"a", "b", "c"}

// genSelect builds a random SELECT over table t.
func genSelect(rng *rand.Rand) *SelectStmt {
	sel := &SelectStmt{
		From: []TableRef{&TableName{Name: "t"}},
	}
	for i := 0; i <= rng.Intn(3); i++ {
		sel.Items = append(sel.Items, SelectItem{Expr: genExpr(rng, 2)})
	}
	if rng.Intn(2) == 0 {
		sel.Where = genExpr(rng, 3)
	}
	if rng.Intn(3) == 0 {
		sel.Top = int64(1 + rng.Intn(10))
	}
	if rng.Intn(3) == 0 {
		sel.Distinct = true
	}
	if rng.Intn(3) == 0 {
		sel.OrderBy = []OrderItem{{Expr: &ColumnRef{Table: "t", Column: "a"}, Desc: rng.Intn(2) == 0}}
	}
	if rng.Intn(3) == 0 {
		triple := CurrencyTriple{
			Bound:  time.Duration(rng.Intn(600)) * time.Second,
			Tables: []string{"t"},
		}
		if rng.Intn(2) == 0 {
			triple.By = []ColumnRef{{Table: "t", Column: "a"}}
		}
		sel.Currency = &CurrencyClause{Triples: []CurrencyTriple{triple}}
	}
	return sel
}

// TestQuickGeneratedASTRoundTrips: render a random AST to SQL and parse it
// back; the parsed form's rendering must be a fixed point of
// parse-and-render (the first round may canonicalize, e.g. folding
// -literal, but the second must be stable).
func TestQuickGeneratedASTRoundTrips(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sel := genSelect(rng)
		sql1 := SelectSQL(sel)
		parsed, err := ParseSelect(sql1)
		if err != nil {
			t.Logf("seed %d: %q does not parse: %v", seed, sql1, err)
			return false
		}
		sql2 := SelectSQL(parsed)
		parsed2, err := ParseSelect(sql2)
		if err != nil {
			t.Logf("seed %d: canonical %q does not parse: %v", seed, sql2, err)
			return false
		}
		sql3 := SelectSQL(parsed2)
		if sql2 != sql3 {
			t.Logf("seed %d: not a fixed point:\n  %s\n  %s", seed, sql2, sql3)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickLexerNeverPanics feeds random byte strings to the full parse
// pipeline; errors are fine, panics are not.
func TestQuickLexerNeverPanics(t *testing.T) {
	check := func(input string) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on %q: %v", input, r)
				ok = false
			}
		}()
		_, _ = Parse(input)
		_, _ = Parse("SELECT " + input)
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
