package mtcache

import (
	"testing"
	"time"

	"relaxedcc/internal/backend"
	"relaxedcc/internal/catalog"
	"relaxedcc/internal/opt"
	"relaxedcc/internal/sqlparser"
	"relaxedcc/internal/vclock"
)

func newPair(t *testing.T) (*Cache, *backend.Server, *vclock.Virtual) {
	t.Helper()
	clock := vclock.NewVirtual()
	b := backend.New(clock)
	if _, err := b.Exec("CREATE TABLE t (id BIGINT NOT NULL PRIMARY KEY, v VARCHAR(10), n BIGINT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Exec("INSERT INTO t VALUES (1, 'a', 10), (2, 'b', 20), (3, 'c', 30)"); err != nil {
		t.Fatal(err)
	}
	b.AnalyzeAll()
	c := New(clock, b)
	return c, b, clock
}

func addRegionAndView(t *testing.T, c *Cache) {
	t.Helper()
	agent, err := c.AddRegion(&catalog.Region{ID: 1, Name: "R", UpdateInterval: 10 * time.Second, UpdateDelay: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CreateView(&catalog.View{
		Name: "t_prj", BaseTable: "t", Columns: []string{"id", "v"}, RegionID: 1,
	}); err != nil {
		t.Fatal(err)
	}
	_ = agent
}

func TestShadowCatalogMirrorsBackend(t *testing.T) {
	c, b, _ := newPair(t)
	if c.Catalog().Table("t") == nil {
		t.Fatal("shadow table missing")
	}
	// DDL after attach is mirrored on demand.
	if _, err := b.Exec("CREATE TABLE u (id BIGINT NOT NULL PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Exec("CREATE INDEX ix_n ON t (n)"); err != nil {
		t.Fatal(err)
	}
	c.SyncShadowSchema()
	if c.Catalog().Table("u") == nil {
		t.Fatal("new table not mirrored")
	}
	if c.Catalog().Table("t").IndexOn("n") == nil {
		t.Fatal("new index not mirrored")
	}
}

func TestRefreshShadowStats(t *testing.T) {
	c, b, _ := newPair(t)
	addRegionAndView(t, c)
	b.Exec("INSERT INTO t VALUES (4, 'd', 40)")
	b.AnalyzeAll()
	c.RefreshShadowStats()
	if got := c.Catalog().Table("t").Stats.Rows(); got != 4 {
		t.Fatalf("shadow rows = %d", got)
	}
	if got := c.ViewData("t_prj").Def().Stats.Rows(); got != 4 {
		t.Fatalf("view stats rows = %d", got)
	}
}

func TestCreateViewPopulatesAndValidates(t *testing.T) {
	c, _, _ := newPair(t)
	addRegionAndView(t, c)
	if got := c.ViewData("t_prj").Len(); got != 3 {
		t.Fatalf("view rows = %d", got)
	}
	// Duplicate name.
	err := c.CreateView(&catalog.View{Name: "t_prj", BaseTable: "t", Columns: []string{"id"}, RegionID: 1})
	if err == nil {
		t.Fatal("duplicate view accepted")
	}
	// Unknown region.
	err = c.CreateView(&catalog.View{Name: "v2", BaseTable: "t", Columns: []string{"id"}, RegionID: 9})
	if err == nil {
		t.Fatal("unknown region accepted")
	}
	// Unknown base table.
	err = c.CreateView(&catalog.View{Name: "v3", BaseTable: "zz", Columns: []string{"id"}, RegionID: 1})
	if err == nil {
		t.Fatal("unknown base accepted")
	}
}

func TestCreateViewWithExtraIndex(t *testing.T) {
	c, _, _ := newPair(t)
	agent, err := c.AddRegion(&catalog.Region{ID: 1, Name: "R", UpdateInterval: 10 * time.Second, UpdateDelay: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	_ = agent
	if err := c.CreateView(
		&catalog.View{Name: "t_all", BaseTable: "t", Columns: []string{"id", "v", "n"}, RegionID: 1},
		&catalog.Index{Name: "ix_view_n", Columns: []string{"n"}},
	); err != nil {
		t.Fatal(err)
	}
	def := c.ViewData("t_all").Def()
	if def.IndexOn("n") == nil {
		t.Fatal("extra index missing on view")
	}
	if msg := c.ViewData("t_all").CheckIndexConsistency(); msg != "" {
		t.Fatal(msg)
	}
}

func TestHeartbeatTableUpserts(t *testing.T) {
	c, _, _ := newPair(t)
	ts1 := vclock.Epoch.Add(time.Second)
	ts2 := vclock.Epoch.Add(2 * time.Second)
	c.SetLastSync(1, ts1)
	got, ok := c.LastSync(1)
	if !ok || !got.Equal(ts1) {
		t.Fatalf("LastSync = %v, %v", got, ok)
	}
	c.SetLastSync(1, ts2)
	if got, _ := c.LastSync(1); !got.Equal(ts2) {
		t.Fatal("newer timestamp not applied")
	}
	// Regressions are ignored (replication applies in order anyway).
	c.SetLastSync(1, ts1)
	if got, _ := c.LastSync(1); !got.Equal(ts2) {
		t.Fatal("older timestamp overwrote newer")
	}
	if _, ok := c.LastSync(5); ok {
		t.Fatal("unknown region reported a sync")
	}
	if c.HeartbeatTable().Len() != 1 {
		t.Fatal("heartbeat table rows")
	}
}

func TestExecForwardsDMLOnly(t *testing.T) {
	c, b, _ := newPair(t)
	n, err := c.Exec("UPDATE t SET n = 99 WHERE id = 1")
	if err != nil || n != 1 {
		t.Fatalf("exec = %d, %v", n, err)
	}
	res, _ := b.Query("SELECT n FROM t WHERE id = 1")
	if res.Rows[0][0].Int() != 99 {
		t.Fatal("update did not reach the back end")
	}
	if _, err := c.Exec("CREATE TABLE x (id INT PRIMARY KEY)"); err == nil {
		t.Fatal("DDL through the cache accepted")
	}
	if _, err := c.Exec("SELECT 1"); err == nil {
		t.Fatal("SELECT through Exec accepted")
	}
}

func TestQueryNoCurrencyIsRemoteAndCorrect(t *testing.T) {
	c, _, _ := newPair(t)
	addRegionAndView(t, c)
	res, err := c.Query("SELECT v FROM t WHERE id = 2")
	if err != nil {
		t.Fatal(err)
	}
	if res.RemoteQueries == 0 || len(res.LocalViews) != 0 {
		t.Fatalf("result meta = %+v", res)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "b" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestSessionStatements(t *testing.T) {
	c, _, _ := newPair(t)
	addRegionAndView(t, c)
	sess := c.NewSession()
	if _, err := sess.Execute("BEGIN TIMEORDERED"); err != nil {
		t.Fatal(err)
	}
	if !sess.TimeOrdered() {
		t.Fatal("bracket not opened")
	}
	if _, err := sess.Execute("INSERT INTO t VALUES (9, 'z', 0)"); err != nil {
		t.Fatal(err)
	}
	res, err := sess.Execute("SELECT v FROM t WHERE id = 9")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatal("read own write through remote")
	}
	if _, err := sess.Execute("END TIMEORDERED"); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Execute("CREATE INDEX i ON t (v)"); err == nil {
		t.Fatal("DDL in session accepted")
	}
	if _, err := sess.Execute("garbage"); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestServeStaleRequiresMatchingView(t *testing.T) {
	c, _, _ := newPair(t)
	addRegionAndView(t, c)
	c.Link().SetDown(true)
	sess := c.NewSession()
	sess.Action = ActionServeStale
	// t_prj lacks column n: no matching view -> error even with serve-stale.
	if _, err := sess.Query("SELECT n FROM t WHERE id = 1"); err == nil {
		t.Fatal("serve-stale without a matching view should fail")
	}
	// With a matching view it answers stale.
	res, err := sess.Query("SELECT v FROM t WHERE id = 1")
	if err != nil {
		t.Fatal(err)
	}
	if !res.ServedStale {
		t.Fatal("not flagged stale")
	}
}

func TestPlanExposesOptions(t *testing.T) {
	c, _, clock := newPair(t)
	addRegionAndView(t, c)
	// Let the region sync.
	c.SetLastSync(1, clock.Now())
	sel, err := sqlparser.ParseSelect("SELECT v FROM t WHERE id = 1 CURRENCY 3600 ON (t)")
	if err != nil {
		t.Fatal(err)
	}
	plan, q, err := c.Plan(sel, opt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.UsesLocal || plan.Guards != 1 {
		t.Fatalf("plan = %s", plan.Shape)
	}
	if len(q.Constraint.Classes) != 1 {
		t.Fatalf("constraint = %v", q.Constraint)
	}
	// NoViews forces remote.
	plan, _, err = c.Plan(sel, opt.Options{NoViews: true})
	if err != nil {
		t.Fatal(err)
	}
	if plan.UsesLocal {
		t.Fatal("NoViews still used a view")
	}
}

// TestPlanCacheReusesAndRevalidates: default-option queries reuse cached
// plans; the dynamic plan's guard still re-decides freshness per execution;
// creating a view invalidates the cache.
func TestPlanCacheReusesAndRevalidates(t *testing.T) {
	c, _, clock := newPair(t)
	addRegionAndView(t, c)
	c.SetLastSync(1, clock.Now())
	q := "SELECT v FROM t WHERE id = 1 CURRENCY 10 ON (t)"

	res1, err := c.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res1.LocalViews) != 1 {
		t.Fatalf("first run should be local: %+v", res1.Plan.Shape)
	}
	if c.cachedPlan("SELECT v FROM t WHERE id = 1 CURRENCY 10 SEC ON (t)") == nil &&
		c.cachedPlan(q) == nil {
		// The cache key is the canonical rendering; at least one must hit.
		t.Log("note: canonical key differs from raw text (expected)")
	}
	// Same query again: plan reused (a plan-cache hit), and the guard
	// re-decides: age the region past the bound. Under the virtual clock
	// planning itself takes zero virtual time, so reuse is asserted via the
	// cache's own hit/miss counters rather than Setup.
	hitsBefore := c.obs.planHits.Value()
	clock.Advance(30 * time.Second)
	res2, err := c.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if c.obs.planHits.Value() != hitsBefore+1 {
		t.Fatal("second execution did not reuse the cached plan")
	}
	if len(res2.LocalViews) != 0 || res2.RemoteQueries == 0 {
		t.Fatal("cached plan's guard must re-decide freshness")
	}
	// Creating a view invalidates cached plans.
	if err := c.CreateView(&catalog.View{
		Name: "t_prj2", BaseTable: "t", Columns: []string{"id", "v", "n"}, RegionID: 1,
	}); err != nil {
		t.Fatal(err)
	}
	missesBefore := c.obs.planMisses.Value()
	if _, err := c.Query(q); err != nil {
		t.Fatal(err)
	}
	if c.obs.planMisses.Value() != missesBefore+1 {
		t.Fatal("plan cache not invalidated by CreateView")
	}
}

// A session's Tenant label must flow into the sampled trace records — the
// load generator's per-tenant attribution on /queries/recent.
func TestSessionTenantLabelsTraceRecords(t *testing.T) {
	c, _, _ := newPair(t)
	addRegionAndView(t, c)
	s := c.NewSession()
	s.Tenant = "gold"
	// The tracer samples 1-in-8 starting with the first query, so one query
	// is guaranteed to land in the ring.
	if _, err := s.Query("SELECT id, v FROM t WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	recs := c.Tracer().Ring().Snapshot()
	if len(recs) == 0 {
		t.Fatal("no sampled trace records")
	}
	if recs[0].Tenant != "gold" {
		t.Fatalf("trace record tenant = %q, want %q", recs[0].Tenant, "gold")
	}
	// Sessions without a tenant stay unattributed (field omitted in JSON).
	if _, err := c.NewSession().Query("SELECT id, v FROM t WHERE id = 2"); err != nil {
		t.Fatal(err)
	}
}
