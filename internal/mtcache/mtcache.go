// Package mtcache implements the mid-tier database cache — the paper's
// MTCache prototype (Section 3):
//
//  1. a shadow catalog cloned from the back end, with statistics reflecting
//     back-end data;
//  2. materialized views (selections/projections of back-end tables) kept
//     up to date by transactional replication, grouped into currency
//     regions;
//  3. a local heartbeat table per region bounding replica staleness;
//  4. a query pipeline that parses, normalizes C&C constraints, optimizes
//     cost-based across local views and remote queries, and executes
//     dynamic plans with currency guards;
//  5. transparent forwarding of all inserts/deletes/updates to the back
//     end;
//  6. sessions with timeline consistency (BEGIN/END TIMEORDERED) and
//     violation actions.
package mtcache

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"relaxedcc/internal/audit"
	"relaxedcc/internal/backend"
	"relaxedcc/internal/catalog"
	"relaxedcc/internal/exec"
	"relaxedcc/internal/obs"
	"relaxedcc/internal/opt"
	"relaxedcc/internal/remote"
	"relaxedcc/internal/repl"
	"relaxedcc/internal/sqlparser"
	"relaxedcc/internal/sqltypes"
	"relaxedcc/internal/storage"
	"relaxedcc/internal/vclock"
)

// Cache is one mid-tier database cache attached to a back-end server.
type Cache struct {
	clock vclock.Clock
	back  *backend.Server
	link  *remote.Client
	cat   *catalog.Catalog // shadow catalog

	mu     sync.RWMutex
	views  map[string]*storage.Table
	agents map[int]*repl.Agent
	// hb is the cache's local heartbeat table (cid, ts): one row per
	// region, written by replication and read by currency guards.
	hb *storage.Table

	// planMu guards the plan cache: optimized dynamic plans keyed by query
	// text. Dynamic plans are exactly what makes caching safe here — the
	// currency decision is re-taken by the guard at every execution, so a
	// cached plan never pins a staleness choice (Section 3.2: "this
	// approach requires re-optimization only if a view's consistency
	// properties change"). The cache is invalidated when views or regions
	// change.
	planMu    sync.Mutex
	planCache map[string]*opt.Plan

	// obs holds the cache's metrics registry, instruments and trace store
	// (see obs.go). Always non-nil; each cache owns its registry.
	obs *cacheObs

	// aud is the delivered-guarantee auditor, installed by EnableAudit (nil
	// until then). Atomic so the per-query fast path is one load; when the
	// auditor is absent or disabled the query path does no audit work and
	// allocates nothing.
	aud atomic.Pointer[audit.Auditor]

	// waitMu guards wait, the hook blocking sessions use to let replication
	// catch up between guard re-evaluations. Nil means advance the cache's
	// own clock (virtual) or sleep on it (wall); core.System installs a hook
	// that drives the replication coordinator so heartbeats and agents
	// actually fire during the wait.
	waitMu sync.Mutex
	wait   func(d time.Duration)
}

// New creates a cache over the back-end server, cloning its catalog as the
// shadow catalog (empty shadow tables, back-end statistics).
func New(clock vclock.Clock, back *backend.Server) *Cache {
	hbDef := &catalog.Table{
		Name: "Heartbeat_local",
		Columns: []catalog.Column{
			{Name: "cid", Type: sqltypes.KindInt, NotNull: true},
			{Name: "ts", Type: sqltypes.KindTime, NotNull: true},
		},
		PrimaryKey: []string{"cid"},
	}
	if err := catalog.New().AddTable(hbDef); err != nil {
		panic(err) // static definition cannot fail
	}
	co := newCacheObs(clock, obs.NewRegistry())
	link := remote.NewClient(back)
	// The link starts in passthrough mode (single attempt, no breaker) so
	// plain caches behave exactly like a direct connection; callers opt into
	// resilience with link.Configure(clock, remote.DefaultPolicy()) or
	// core.System.EnableResilience.
	link.Configure(clock, remote.PassthroughPolicy())
	link.Instrument(co.reg)
	link.SetTracer(co.tracer)
	return &Cache{
		clock:     clock,
		back:      back,
		link:      link,
		cat:       back.Catalog().Clone(),
		views:     map[string]*storage.Table{},
		agents:    map[int]*repl.Agent{},
		hb:        storage.NewTable(hbDef),
		planCache: map[string]*opt.Plan{},
		obs:       co,
	}
}

// maxCachedPlans bounds the plan cache (evicted wholesale when exceeded —
// plan texts in a workload are few).
const maxCachedPlans = 512

// cachedPlan returns a previously optimized plan for the exact query text,
// for default planning options.
func (c *Cache) cachedPlan(sql string) *opt.Plan {
	c.planMu.Lock()
	defer c.planMu.Unlock()
	return c.planCache[sql]
}

func (c *Cache) storePlan(sql string, p *opt.Plan) {
	c.planMu.Lock()
	defer c.planMu.Unlock()
	if len(c.planCache) >= maxCachedPlans {
		c.planCache = map[string]*opt.Plan{}
	}
	c.planCache[sql] = p
}

// InvalidatePlans drops all cached plans; called when the set of views or
// regions changes (a view's consistency properties changed — the paper's
// re-optimization trigger).
func (c *Cache) InvalidatePlans() {
	c.planMu.Lock()
	defer c.planMu.Unlock()
	c.planCache = map[string]*opt.Plan{}
}

// Catalog returns the cache's shadow catalog.
func (c *Cache) Catalog() *catalog.Catalog { return c.cat }

// Link returns the remote link (for stats and failure injection).
func (c *Cache) Link() *remote.Client { return c.link }

// SetWait installs the hook blocking sessions (ActionBlock) use to pass
// time between guard re-evaluations. core.System points it at the
// replication coordinator so heartbeats and agents run during the wait.
func (c *Cache) SetWait(fn func(d time.Duration)) {
	c.waitMu.Lock()
	c.wait = fn
	c.waitMu.Unlock()
}

// waitFor passes d of time through the configured wait hook, falling back
// to advancing a virtual clock directly or sleeping on a wall clock.
func (c *Cache) waitFor(d time.Duration) {
	c.waitMu.Lock()
	fn := c.wait
	c.waitMu.Unlock()
	if fn != nil {
		fn(d)
		return
	}
	if v, ok := c.clock.(*vclock.Virtual); ok {
		v.Advance(d)
		return
	}
	<-c.clock.After(d)
}

// Clock returns the cache's time source.
func (c *Cache) Clock() vclock.Clock { return c.clock }

// SyncShadowSchema mirrors any back-end tables and indexes created since the
// cache was attached into the shadow catalog (the paper's shadow database of
// empty tables with back-end statistics).
func (c *Cache) SyncShadowSchema() {
	for _, t := range c.back.Catalog().Tables() {
		shadow := c.cat.Table(t.Name)
		if shadow == nil {
			if err := c.cat.AddTable(t.Clone()); err == nil {
				continue
			}
			continue
		}
		for _, idx := range t.Indexes {
			found := false
			for _, have := range shadow.Indexes {
				if have.Name == idx.Name {
					found = true
					break
				}
			}
			if !found {
				ic := *idx
				ic.Columns = append([]string(nil), idx.Columns...)
				_ = c.cat.AddIndex(&ic)
			}
		}
	}
}

// RefreshShadowStats re-copies statistics from the back-end catalog into the
// shadow catalog (run after loading or ANALYZE on the back end).
func (c *Cache) RefreshShadowStats() {
	c.SyncShadowSchema()
	for _, t := range c.back.Catalog().Tables() {
		shadow := c.cat.Table(t.Name)
		if shadow == nil {
			continue
		}
		src := t.Stats
		cols := map[string]*catalog.ColumnStats{}
		for name, cs := range snapshotCols(src) {
			cols[name] = cs
		}
		shadow.Stats.Set(src.Rows(), src.RowBytes(), cols)
		// Views over this table share its statistics.
		for _, v := range c.cat.ViewsOf(t.Name) {
			c.mu.RLock()
			vt := c.views[v.Name]
			c.mu.RUnlock()
			if vt != nil {
				vt.Def().Stats.Set(src.Rows(), src.RowBytes(), cols)
			}
		}
	}
}

func snapshotCols(s *catalog.TableStats) map[string]*catalog.ColumnStats {
	out := map[string]*catalog.ColumnStats{}
	for _, name := range colNames(s) {
		cs := s.Column(name)
		cp := *cs
		cp.Histogram = append([]int64(nil), cs.Histogram...)
		out[name] = &cp
	}
	return out
}

func colNames(s *catalog.TableStats) []string {
	var out []string
	for name := range s.Columns {
		out = append(out, name)
	}
	return out
}

// AddRegion registers a currency region on both servers and creates its
// distribution agent.
func (c *Cache) AddRegion(r *catalog.Region) (*repl.Agent, error) {
	if err := c.back.RegisterRegion(r); err != nil {
		return nil, err
	}
	// Mirror into the shadow catalog.
	rc := *r
	if err := c.cat.AddRegion(&rc); err != nil {
		return nil, err
	}
	agent := repl.NewAgent(&rc, c.back.Log(), backend.HeartbeatTable, c)
	agent.Instrument(c.obs.reg)
	agent.SetTracer(c.obs.tracer)
	c.mu.Lock()
	c.agents[r.ID] = agent
	c.mu.Unlock()
	return agent, nil
}

// Agent returns the region's distribution agent.
func (c *Cache) Agent(regionID int) *repl.Agent {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.agents[regionID]
}

// Agents returns all distribution agents, ordered by region id.
func (c *Cache) Agents() []*repl.Agent {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ids := make([]int, 0, len(c.agents))
	for id := range c.agents {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]*repl.Agent, 0, len(ids))
	for _, id := range ids {
		out = append(out, c.agents[id])
	}
	return out
}

// SetLastSync implements repl.HeartbeatSink: the region's row in the local
// heartbeat table receives a replicated timestamp.
func (c *Cache) SetLastSync(regionID int, ts time.Time) {
	key := sqltypes.Row{sqltypes.NewInt(int64(regionID))}
	row := sqltypes.Row{key[0], sqltypes.NewTime(ts)}
	if old, ok := c.hb.Get(key); ok {
		if ts.After(old[1].Time()) {
			if _, err := c.hb.Update(row); err != nil {
				panic(err) // fixed schema; cannot fail
			}
		}
		return
	}
	if err := c.hb.Insert(row); err != nil {
		panic(err)
	}
}

// LastSync implements opt.RegionClock: the timestamp in the region's row of
// the local heartbeat table.
func (c *Cache) LastSync(regionID int) (time.Time, bool) {
	row, ok := c.hb.Get(sqltypes.Row{sqltypes.NewInt(int64(regionID))})
	if !ok {
		return time.Time{}, false
	}
	return row[1].Time(), true
}

// HeartbeatTable exposes the local heartbeat table (read by guards).
func (c *Cache) HeartbeatTable() *storage.Table { return c.hb }

// EnableAudit installs the delivered-guarantee auditor on this cache: every
// executed query's guard decisions are recorded as audit read events, and
// the base tables of all current subscriptions register as audited objects
// at their snapshot sequences (later CreateViews register as they land).
// The commit and replication taps are wired by core.System.EnableAudit.
func (c *Cache) EnableAudit(a *audit.Auditor) {
	c.aud.Store(a)
	for _, agent := range c.Agents() {
		for _, sub := range agent.Subscriptions() {
			a.RegisterObject(agent.Region.ID, sub.Base.Name, sub.StartSeq())
		}
	}
}

// Auditor returns the installed delivered-guarantee auditor, or nil.
func (c *Cache) Auditor() *audit.Auditor { return c.aud.Load() }

// auditReadEvent converts one guard decision into an audit read event,
// resolving the versions the local branch served (the region agent's
// applied commit sequence) and the heartbeat timestamp the guard trusted.
func (c *Cache) auditReadEvent(d exec.GuardDecision) audit.ReadEvent {
	ev := audit.ReadEvent{
		Label:          d.Label,
		Region:         d.Region,
		BoundNS:        int64(obs.NormalizeBound(d.Bound)),
		Chosen:         d.Chosen,
		Degraded:       d.Degraded,
		ServeTSNS:      c.clock.Now().UnixNano(),
		StalenessNS:    int64(d.Staleness),
		StalenessKnown: d.StalenessKnown,
	}
	if a := c.Agent(d.Region); a != nil {
		ev.SyncSeq = a.LastSeq()
	}
	if ts, ok := c.LastSync(d.Region); ok {
		ev.SyncTSNS = ts.UnixNano()
	}
	return ev
}

// CreateView defines a materialized view on the cache: it creates local
// storage with the given extra secondary indexes, registers the matching
// replication subscription with the region's agent, and populates the view
// from the current back-end state (the automatic subscription of the
// paper's step 3).
func (c *Cache) CreateView(view *catalog.View, extraIndexes ...*catalog.Index) error {
	c.SyncShadowSchema()
	base := c.cat.Table(view.BaseTable)
	if base == nil {
		return fmt.Errorf("mtcache: view %s: unknown base table %s", view.Name, view.BaseTable)
	}
	if err := c.cat.AddView(view); err != nil {
		return err
	}
	agent := c.Agent(view.RegionID)
	if agent == nil {
		return fmt.Errorf("mtcache: view %s: region %d has no agent", view.Name, view.RegionID)
	}
	// The view's stored layout: projected base columns, base primary key,
	// clustered index on the PK plus any extra indexes.
	def := &catalog.Table{Name: view.Name, PrimaryKey: append([]string(nil), base.PrimaryKey...)}
	for _, col := range view.Columns {
		def.Columns = append(def.Columns, *base.Column(col))
	}
	for _, idx := range extraIndexes {
		ic := *idx
		ic.Table = view.Name
		def.Indexes = append(def.Indexes, &ic)
	}
	tmp := catalog.New()
	if err := tmp.AddTable(def); err != nil { // validates and adds clustered PK index
		return err
	}
	def.Stats.Set(base.Stats.Rows(), base.Stats.RowBytes(), snapshotCols(base.Stats))
	target := storage.NewTable(def)

	sub, err := repl.NewSubscription(view, base, target)
	if err != nil {
		return err
	}
	baseData := c.back.Table(view.BaseTable)
	if baseData == nil {
		return fmt.Errorf("mtcache: back end has no table %s", view.BaseTable)
	}
	agent.Subscribe(sub)
	if err := agent.InitialSync(sub, baseData); err != nil {
		return err
	}
	if a := c.aud.Load(); a != nil {
		a.RegisterObject(view.RegionID, view.BaseTable, sub.StartSeq())
	}
	c.mu.Lock()
	c.views[view.Name] = target
	c.mu.Unlock()
	c.InvalidatePlans()
	return nil
}

// ViewData returns the local storage of a materialized view, or nil.
func (c *Cache) ViewData(name string) *storage.Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.views[name]
}

// planner builds a planner for the given per-query options.
func (c *Cache) planner(opts opt.Options) *opt.Planner {
	site := &opt.Site{
		Cat:        c.cat,
		LocalTable: func(string) *storage.Table { return nil }, // shadow tables are empty
		LocalView:  c.ViewData,
		Remote:     c.link,
		Regions:    c,
		Heartbeat:  c.hb,
		Clock:      c.clock,
	}
	return &opt.Planner{Site: site, Opts: opts}
}

// Plan optimizes a SELECT with the given options (exposed for benchmarks
// and the experiment harness).
func (c *Cache) Plan(sel *sqlparser.SelectStmt, opts opt.Options) (*opt.Plan, *opt.Query, error) {
	return c.planner(opts).PlanSelect(sel)
}

// QueryResult augments an execution result with plan and guard outcomes.
type QueryResult struct {
	*exec.Result
	// Plan is the executed plan.
	Plan *opt.Plan
	// LocalViews lists guards that chose their local branch, by label.
	LocalViews []string
	// RemoteQueries counts remote queries actually executed.
	RemoteQueries int
	// ServedStale is set when the violation action downgraded to stale
	// local data after a remote failure.
	ServedStale bool
	// Degraded is set when any guard served its local branch because the
	// remote fall-back was unavailable (ActionServeLocal).
	Degraded bool
	// Violations lists the degraded-mode warnings recorded during execution
	// — the paper's violation actions made visible to the client.
	Violations []exec.Violation
	// AsOf is a conservative bound on the snapshot time of the data used:
	// the minimum last-synchronized timestamp across the local sources that
	// answered (query start time when everything came from the master).
	// Zero only for statements that read nothing.
	AsOf time.Time
	// Trace is the annotated execution trace, set only for EXPLAIN ANALYZE.
	Trace *obs.TraceNode
	// Explained is set for plain EXPLAIN: the statement was planned but not
	// executed (Rows is empty, Plan describes the choice).
	Explained bool
}

// Query runs one SELECT outside any session (default options and actions).
func (c *Cache) Query(sql string) (*QueryResult, error) {
	return c.NewSession().Query(sql)
}

// ExplainAnalyze runs one SELECT outside any session with per-operator
// tracing enabled; the result carries the execution trace.
func (c *Cache) ExplainAnalyze(sql string) (*QueryResult, error) {
	return c.NewSession().ExplainAnalyze(sql)
}

// Exec forwards a DML statement transparently to the back-end server (the
// paper's step 5). DDL is rejected: cache contents are defined through
// CreateView.
func (c *Cache) Exec(sql string) (int, error) {
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return 0, err
	}
	switch stmt.(type) {
	case *sqlparser.InsertStmt, *sqlparser.UpdateStmt, *sqlparser.DeleteStmt:
		return c.back.ExecStmt(stmt)
	default:
		return 0, fmt.Errorf("mtcache: only DML is forwarded; use the cache API for definitions")
	}
}

// ViolationAction selects the session's behavior when a query's constraints
// cannot be met because the remote fall-back failed (Section 1 lists the
// options a system could take).
type ViolationAction int

// Violation actions.
const (
	// ActionError fails the query (default).
	ActionError ViolationAction = iota
	// ActionServeStale re-plans the whole query against local views with
	// currency checking disabled, marking the result ServedStale. It is the
	// coarsest degradation: staleness becomes unknown.
	ActionServeStale
	// ActionServeLocal degrades per guard: a SwitchUnion whose remote branch
	// is unavailable answers from its guarded local branch and records an
	// explicit staleness-violation warning (QueryResult.Violations). Unlike
	// ActionServeStale the result's staleness is still observed and bounded
	// by the heartbeat.
	ActionServeLocal
	// ActionBlock re-evaluates a failed currency guard on the region's
	// replication cadence until it passes or the session's wait budget
	// (MaxBlockWaits) runs out, trading latency for currency.
	ActionBlock
)

// DefaultBlockWaits bounds ActionBlock's guard re-evaluations when the
// session does not set MaxBlockWaits: enough for one full heartbeat →
// propagation cycle plus scheduling slack, small enough that an unhealable
// region fails the query rather than hanging the session.
const DefaultBlockWaits = 4

// Session is one client session: it carries timeline-consistency state and
// the violation action.
type Session struct {
	cache  *Cache
	Action ViolationAction
	// MaxBlockWaits bounds guard re-evaluations under ActionBlock; zero
	// means DefaultBlockWaits.
	MaxBlockWaits int
	// Tenant labels the session's queries with a tenant class in sampled
	// trace records (the load generator's multi-tenant attribution). Empty
	// means unattributed; the field is read-only once traffic flows.
	Tenant string

	mu          sync.Mutex
	timeOrdered bool
	floor       time.Time
}

// NewSession opens a session.
func (c *Cache) NewSession() *Session { return &Session{cache: c} }

// Obs returns the metrics registry of the cache this session talks to, so
// layers above the session (e.g. qcache) can register their instruments
// alongside the cache's.
func (s *Session) Obs() *obs.Registry { return s.cache.obs.reg }

// TimeOrdered reports whether the session is inside a TIMEORDERED bracket.
func (s *Session) TimeOrdered() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.timeOrdered
}

// Floor returns the current timeline-consistency floor.
func (s *Session) Floor() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.floor
}

// Execute runs any statement in the session: SELECTs are optimized and run
// with C&C enforcement; DML forwards to the back end (returning an empty
// result); BEGIN/END TIMEORDERED toggle timeline consistency.
func (s *Session) Execute(sql string) (*QueryResult, error) {
	parseStart := s.cache.clock.Now()
	stmt, err := sqlparser.Parse(sql)
	parse := s.cache.clock.Now().Sub(parseStart)
	if err != nil {
		return nil, err
	}
	switch stmt := stmt.(type) {
	case *sqlparser.BeginTimeOrderedStmt:
		s.mu.Lock()
		s.timeOrdered = true
		s.floor = time.Time{}
		s.mu.Unlock()
		return &QueryResult{Result: &exec.Result{}}, nil
	case *sqlparser.EndTimeOrderedStmt:
		s.mu.Lock()
		s.timeOrdered = false
		s.floor = time.Time{}
		s.mu.Unlock()
		return &QueryResult{Result: &exec.Result{}}, nil
	case *sqlparser.SelectStmt:
		return s.query(stmt, false, parse)
	case *sqlparser.ExplainStmt:
		if stmt.Analyze {
			return s.query(stmt.Stmt, true, parse)
		}
		return s.explain(stmt.Stmt)
	case *sqlparser.InsertStmt, *sqlparser.UpdateStmt, *sqlparser.DeleteStmt:
		n, err := s.cache.back.ExecStmt(stmt)
		if err != nil {
			return nil, err
		}
		_ = n
		return &QueryResult{Result: &exec.Result{}}, nil
	default:
		return nil, fmt.Errorf("mtcache: unsupported statement in session")
	}
}

// Query parses and runs one SELECT in the session.
func (s *Session) Query(sql string) (*QueryResult, error) {
	parseStart := s.cache.clock.Now()
	sel, err := sqlparser.ParseSelect(sql)
	parse := s.cache.clock.Now().Sub(parseStart)
	if err != nil {
		return nil, err
	}
	return s.query(sel, false, parse)
}

// ExplainAnalyze parses and runs one SELECT with execution tracing: the
// result carries the annotated plan tree (per-node time, rows, guard
// verdicts) in Trace, and the trace is retained in the cache's TraceStore
// for /trace/last.
func (s *Session) ExplainAnalyze(sql string) (*QueryResult, error) {
	parseStart := s.cache.clock.Now()
	sel, err := sqlparser.ParseSelect(sql)
	parse := s.cache.clock.Now().Sub(parseStart)
	if err != nil {
		return nil, err
	}
	return s.query(sel, true, parse)
}

// explain plans the SELECT without executing it (plain EXPLAIN).
func (s *Session) explain(sel *sqlparser.SelectStmt) (*QueryResult, error) {
	opts := opt.Options{}
	s.mu.Lock()
	if s.timeOrdered {
		opts.MinSync = s.floor
	}
	s.mu.Unlock()
	plan, _, err := s.cache.Plan(sel, opts)
	if err != nil {
		return nil, err
	}
	return &QueryResult{Result: &exec.Result{}, Plan: plan, Explained: true}, nil
}

func (s *Session) query(sel *sqlparser.SelectStmt, analyze bool, parse time.Duration) (*QueryResult, error) {
	opts := opt.Options{}
	s.mu.Lock()
	if s.timeOrdered {
		opts.MinSync = s.floor
	}
	s.mu.Unlock()

	// Plans for default options are cacheable: the currency guard re-takes
	// the freshness decision at every execution. Timeline sessions carry a
	// per-query MinSync floor baked into the guard, so they bypass the
	// cache.
	var plan *opt.Plan
	var err error
	cacheable := opts == (opt.Options{})
	key := sqlparser.SelectSQL(sel)
	// qt is nil on the unsampled path; every QueryTrace method is nil-safe,
	// so the hot path pays one atomic add and no allocation.
	qt := s.cache.obs.tracer.Begin(key)
	qt.Tenant(s.Tenant)
	qt.Parse(parse)
	var planStart time.Time
	if qt != nil {
		planStart = s.cache.clock.Now()
	}
	if cacheable {
		plan = s.cache.cachedPlan(key)
	}
	if plan == nil {
		s.cache.obs.planMisses.Inc()
		plan, _, err = s.cache.Plan(sel, opts)
		if err != nil {
			qt.Finish(true)
			return nil, err
		}
		if cacheable {
			s.cache.storePlan(key, plan)
		}
	} else {
		s.cache.obs.planHits.Inc()
		// Re-instantiate a fresh operator tree from the cached plan.
		root, buildErr := plan.Build()
		if buildErr != nil {
			qt.Finish(true)
			return nil, buildErr
		}
		reused := *plan
		reused.Root = root
		reused.Setup = 0
		plan = &reused
	}
	if qt != nil {
		qt.Plan(s.cache.clock.Now().Sub(planStart))
	}
	qr, err := s.run(plan, analyze, key, qt)
	if err != nil {
		if s.Action == ActionServeStale && remote.IsUnavailable(err) {
			return s.serveStale(sel, qt)
		}
		qt.Finish(true)
		return nil, err
	}
	qt.Finish(false)
	return qr, nil
}

// degradeMode maps the session's violation action onto the operator-level
// degraded mode applied inside SwitchUnion.
func (s *Session) degradeMode() exec.DegradeMode {
	switch s.Action {
	case ActionServeLocal:
		return exec.DegradeServeLocal
	case ActionBlock:
		return exec.DegradeBlock
	default:
		return exec.DegradeFail
	}
}

// guardRetry paces one blocked guard re-evaluation (EvalContext.GuardRetry):
// it waits one replication interval of the stale region so the next check
// sees fresher data, and cuts off at the session's wait budget.
func (s *Session) guardRetry(region, attempt int) bool {
	max := s.MaxBlockWaits
	if max <= 0 {
		max = DefaultBlockWaits
	}
	if attempt > max {
		return false
	}
	iv := time.Second
	if r := s.cache.cat.Region(region); r != nil && r.UpdateInterval > 0 {
		iv = r.UpdateInterval
	}
	s.cache.waitFor(iv)
	return true
}

// run executes a plan and updates the session's timeline floor from the
// sources actually used. With analyze set, the tree is instrumented and the
// result carries the annotated trace (retained in the cache's TraceStore
// under sql).
func (s *Session) run(plan *opt.Plan, analyze bool, sql string, qt *obs.QueryTrace) (*QueryResult, error) {
	now := s.cache.clock.Now()
	o := s.cache.obs
	o.queries.Inc()
	root := plan.Root
	var trace *obs.TraceNode
	if analyze {
		root, trace = exec.Instrument(root)
	}
	// Violations recorded by degraded guards during execution surface on the
	// result as warnings and feed the degraded-read metrics.
	var violations []exec.Violation
	ctx := &exec.EvalContext{
		Now:         now,
		Clock:       s.cache.clock,
		OnGuard:     o.onGuard,
		Degrade:     s.degradeMode(),
		Unavailable: remote.IsUnavailable,
		OnViolation: func(v exec.Violation) {
			violations = append(violations, v)
			o.onViolation(v)
		},
	}
	if qt != nil {
		// Sampled queries also fold the guard outcome into their lifecycle
		// record. SwitchUnion publishes the final (possibly degraded)
		// decision last, so the record keeps the decision that answered.
		ctx.OnGuard = func(d exec.GuardDecision) {
			o.onGuard(d)
			qt.Guard(guardObservation(d))
		}
	}
	// With the auditor enabled, every guard decision also becomes an audit
	// read event; disabled, this is one atomic load and no allocation.
	aud := s.cache.aud.Load()
	var audEvents []audit.ReadEvent
	if aud.Enabled() {
		prev := ctx.OnGuard
		ctx.OnGuard = func(d exec.GuardDecision) {
			prev(d)
			audEvents = append(audEvents, s.cache.auditReadEvent(d))
		}
	}
	if ctx.Degrade == exec.DegradeBlock {
		ctx.GuardRetry = s.guardRetry
	}
	var execStart time.Time
	var retriesBefore int64
	if qt != nil {
		retriesBefore = s.cache.link.Stats().Retries
		execStart = s.cache.clock.Now()
	}
	res, err := exec.Run(root, ctx, plan.Setup)
	if qt != nil {
		qt.Exec(s.cache.clock.Now().Sub(execStart))
		qt.Retries(s.cache.link.Stats().Retries - retriesBefore)
	}
	if err != nil {
		return nil, err
	}
	qr := &QueryResult{Result: res, Plan: plan, Trace: trace, Violations: violations}
	for _, v := range violations {
		if v.Action == "serve-local" {
			qr.Degraded = true
		}
	}
	if trace != nil {
		o.traces.Set(sql, trace)
	}
	observed := time.Time{} // newest source: the timeline floor
	oldest := time.Time{}   // oldest source: the conservative AsOf
	s.walkUsed(root, qr, &observed, &oldest, now)
	if qr.RemoteQueries > 0 {
		o.remoteQueries.Add(int64(qr.RemoteQueries))
	}
	qr.AsOf = oldest
	s.mu.Lock()
	if s.timeOrdered && observed.After(s.floor) {
		s.floor = observed
	}
	s.mu.Unlock()
	if len(audEvents) > 0 {
		aud.Reads(audEvents)
	}
	return qr, nil
}

// walkUsed visits the operators that actually executed (descending only
// into chosen SwitchUnion branches) to collect guard outcomes and the
// observed snapshot times.
func (s *Session) walkUsed(op exec.Operator, qr *QueryResult, observed, oldest *time.Time, now time.Time) {
	note := func(ts time.Time) {
		if ts.After(*observed) {
			*observed = ts
		}
		if oldest.IsZero() || ts.Before(*oldest) {
			*oldest = ts
		}
	}
	switch op := op.(type) {
	case *exec.Traced:
		s.walkUsed(op.Unwrap(), qr, observed, oldest, now)
	case *exec.SwitchUnion:
		chosen := op.ChosenIndex()
		if chosen == 0 {
			qr.LocalViews = append(qr.LocalViews, op.Label)
			if ts, ok := s.cache.LastSync(op.Region); ok {
				note(ts)
			}
		}
		s.walkUsed(op.Children[chosen], qr, observed, oldest, now)
	case *exec.Remote:
		qr.RemoteQueries++
		note(now)
	case *exec.Filter:
		s.walkUsed(op.Child, qr, observed, oldest, now)
	case *exec.Project:
		s.walkUsed(op.Child, qr, observed, oldest, now)
	case *exec.HashJoin:
		s.walkUsed(op.Left, qr, observed, oldest, now)
		s.walkUsed(op.Right, qr, observed, oldest, now)
	case *exec.IndexLoopJoin:
		s.walkUsed(op.Outer, qr, observed, oldest, now)
	case *exec.MergeJoin:
		s.walkUsed(op.Left, qr, observed, oldest, now)
		s.walkUsed(op.Right, qr, observed, oldest, now)
	case *exec.Sort:
		s.walkUsed(op.Child, qr, observed, oldest, now)
	case *exec.Limit:
		s.walkUsed(op.Child, qr, observed, oldest, now)
	case *exec.Distinct:
		s.walkUsed(op.Child, qr, observed, oldest, now)
	case *exec.Aggregate:
		s.walkUsed(op.Child, qr, observed, oldest, now)
	}
}

// serveStale is the ActionServeStale fall-back: answer from local views
// without currency checking, flagging the result. qt is the original query's
// lifecycle trace (nil on the unsampled path): the rerun executes guardless,
// so the record is finished here marked degraded instead of via a guard
// observation, and its staleness stays unknown.
func (s *Session) serveStale(sel *sqlparser.SelectStmt, qt *obs.QueryTrace) (*QueryResult, error) {
	plan, _, err := s.cache.Plan(sel, opt.Options{NoGuards: true, ForceLocal: true, IgnoreConstraints: true})
	if err != nil {
		qt.Finish(true)
		return nil, fmt.Errorf("mtcache: remote unavailable and no local data: %w", err)
	}
	if !plan.UsesLocal {
		qt.Finish(true)
		return nil, fmt.Errorf("mtcache: remote unavailable and no matching local view")
	}
	qr, err := s.run(plan, false, "", nil)
	if err != nil {
		qt.Finish(true)
		return nil, err
	}
	qr.ServedStale = true
	s.cache.obs.servedStale.Inc()
	qr.AsOf = time.Time{} // staleness unknown: no guard vouched for it
	if aud := s.cache.aud.Load(); aud.Enabled() {
		// The guardless rerun produced no read events; record the downgrade
		// itself as one disclosed serve (staleness unknown, promise waived).
		aud.Reads([]audit.ReadEvent{{
			ServedStale: true,
			ServeTSNS:   s.cache.clock.Now().UnixNano(),
		}})
	}
	qt.MarkDegraded()
	qt.Finish(false)
	return qr, nil
}
