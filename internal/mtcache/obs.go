package mtcache

import (
	"sort"
	"strconv"
	"sync"

	"relaxedcc/internal/exec"
	"relaxedcc/internal/obs"
	"relaxedcc/internal/vclock"
)

// cacheObs bundles the cache's metric instruments, resolved once at cache
// creation so per-query recording is atomic increments only.
//
// Metric names (see DESIGN.md "Observability"):
//
//	mtcache_queries_total             SELECTs executed through sessions
//	mtcache_remote_queries_total      remote fall-back queries actually run
//	mtcache_served_stale_total        results downgraded by ActionServeStale
//	mtcache_plan_cache_hits_total     plan-cache hits
//	mtcache_plan_cache_misses_total   plan-cache misses (fresh optimizations)
//	guard_local_total{region}         guard decisions that took the local branch
//	guard_remote_total{region}        guard decisions that fell back remote
//	guard_latency_ns                  selector evaluation time (the paper's c_cg)
//	guard_staleness_ns                region staleness observed at decision time
//	region_staleness_ns{region}       current staleness gauge per region
//	degraded_reads_total{region}      local branches served on remote failure
//	guard_block_waits_total           guard re-evaluations performed by blocking sessions
//	trace_sampled_total               queries sampled into the lifecycle ring
//	span_events_total{kind}           link retries, breaker transitions, repl applies
//	slo_within_bound_ratio{region}    fraction of serves within the session bound (ppm)
//	slo_error_budget{region}          remaining error budget in the SLO window (ppm)
//	slo_served_staleness_ns{region}   staleness of guard-approved local serves
//	tuner_retunes_total{region}       autotuner decisions that changed the interval
//	tuner_held_total{region}          autotuner decisions held by hysteresis
//	tuner_target_interval_ns{region}  autotuner's current target interval
//	audit_reads_checked_total         reads folded through the delivered-guarantee checker
//	audit_reads_ok_total              reads that kept their declared promise
//	audit_violations_total{class}     silent violations (currency, consistency)
//	audit_disclosed_total             broken-but-disclosed serves (degraded, served-stale)
//	audit_unbounded_total             reads with no finite bound to audit
//	audit_unchecked_total             reads outside the retained history window
//	audit_events_dropped_total{kind}  audit ring overwrites (commit, read, apply)
//	audit_excess_staleness_ns         delivered minus declared staleness on violations
//	audit_slack_ns                    declared minus delivered staleness on OK reads
//
// (the tuner_* instruments register from tuner.NewLoop when autotuning is
// enabled and the audit_* instruments from audit.New when the auditor is
// installed; they are listed here because they share this cache's registry.)
type cacheObs struct {
	reg    *obs.Registry
	clock  vclock.Clock
	traces *obs.TraceStore
	// tracer samples query lifecycles into the recent-query ring and counts
	// span events; slo folds every guard decision into per-region currency
	// SLO windows; workload aggregates the same decisions into the windowed
	// profiles the autotuner consumes. All are always non-nil on a cache's
	// obs.
	tracer   *obs.Tracer
	slo      *obs.SLOTracker
	workload *obs.WorkloadObserver

	queries       *obs.Counter
	remoteQueries *obs.Counter
	servedStale   *obs.Counter
	planHits      *obs.Counter
	planMisses    *obs.Counter

	guardLocal      *obs.CounterVec
	guardRemote     *obs.CounterVec
	guardLatency    *obs.Histogram
	guardStaleness  *obs.Histogram
	regionStaleness *obs.GaugeVec
	degradedReads   *obs.CounterVec
	blockWaits      *obs.Counter

	// regionLabels caches strconv results so the per-query guard hook does
	// not allocate a label string per decision.
	mu           sync.RWMutex
	regionLabels map[int]string
}

func newCacheObs(clock vclock.Clock, reg *obs.Registry) *cacheObs {
	return &cacheObs{
		reg:             reg,
		clock:           clock,
		traces:          &obs.TraceStore{},
		tracer:          obs.NewTracer(reg, obs.DefaultSampleEvery, obs.DefaultRingSize),
		slo:             obs.NewSLOTracker(reg, obs.DefaultSLOTarget, obs.DefaultSLOWindow),
		workload:        obs.NewWorkloadObserver(clock.Now()),
		queries:         reg.Counter("mtcache_queries_total"),
		remoteQueries:   reg.Counter("mtcache_remote_queries_total"),
		servedStale:     reg.Counter("mtcache_served_stale_total"),
		planHits:        reg.Counter("mtcache_plan_cache_hits_total"),
		planMisses:      reg.Counter("mtcache_plan_cache_misses_total"),
		guardLocal:      reg.CounterVec("guard_local_total", "region"),
		guardRemote:     reg.CounterVec("guard_remote_total", "region"),
		guardLatency:    reg.Histogram("guard_latency_ns"),
		guardStaleness:  reg.Histogram("guard_staleness_ns"),
		regionStaleness: reg.GaugeVec("region_staleness_ns", "region"),
		degradedReads:   reg.CounterVec("degraded_reads_total", "region"),
		blockWaits:      reg.Counter("guard_block_waits_total"),
		regionLabels:    map[int]string{},
	}
}

func (o *cacheObs) regionLabel(id int) string {
	o.mu.RLock()
	l, ok := o.regionLabels[id]
	o.mu.RUnlock()
	if ok {
		return l
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if l, ok := o.regionLabels[id]; ok {
		return l
	}
	l = strconv.Itoa(id)
	o.regionLabels[id] = l
	return l
}

// guardObservation converts an operator-level guard decision into the obs
// package's SLO/tracing observation (obs cannot import exec).
func guardObservation(d exec.GuardDecision) obs.GuardObservation {
	return obs.GuardObservation{
		Region:         d.Region,
		Chosen:         d.Chosen,
		Bound:          d.Bound,
		GuardTime:      d.GuardTime,
		Staleness:      d.Staleness,
		StalenessKnown: d.StalenessKnown,
		Degraded:       d.Degraded,
		BlockWaits:     d.BlockWaits,
	}
}

// onGuard records one SwitchUnion guard decision (EvalContext.OnGuard).
func (o *cacheObs) onGuard(d exec.GuardDecision) {
	label := o.regionLabel(d.Region)
	if d.Chosen == 0 {
		o.guardLocal.With(label).Inc()
	} else {
		o.guardRemote.With(label).Inc()
	}
	o.guardLatency.ObserveDuration(d.GuardTime)
	if d.StalenessKnown {
		o.guardStaleness.ObserveDuration(d.Staleness)
		o.regionStaleness.With(label).SetDuration(d.Staleness)
	}
	// Every serve — normal or degraded — lands in the region's SLO window
	// and the autotuner's workload window.
	g := guardObservation(d)
	o.slo.Observe(g)
	o.workload.Record(o.clock.Now(), g)
}

// onViolation records one degraded-mode event (EvalContext.OnViolation):
// local branches served despite a remote guard choice count as degraded
// reads per region, and blocking sessions account their guard waits.
func (o *cacheObs) onViolation(v exec.Violation) {
	switch v.Action {
	case "serve-local":
		o.degradedReads.With(o.regionLabel(v.Region)).Inc()
	case "block":
		o.blockWaits.Add(int64(v.Waits))
	}
}

// Obs returns the cache's metrics registry. Every cache has one; all
// session, guard, replication and plan-cache instruments register here.
func (c *Cache) Obs() *obs.Registry { return c.obs.reg }

// Traces returns the cache's last-trace store (filled by EXPLAIN ANALYZE).
func (c *Cache) Traces() *obs.TraceStore { return c.obs.traces }

// Tracer returns the cache's query-lifecycle tracer (sampled ring of recent
// query records plus span-event counters).
func (c *Cache) Tracer() *obs.Tracer { return c.obs.tracer }

// SLO returns the cache's per-region currency SLO tracker.
func (c *Cache) SLO() *obs.SLOTracker { return c.obs.slo }

// ConfigureSLO replaces the SLO tracker's target and window, resetting its
// accumulated observations (see obs.SLOTracker.Reconfigure). Harness
// scenarios size the window to the run length before traffic flows.
func (c *Cache) ConfigureSLO(target float64, window int) {
	c.obs.slo.Reconfigure(target, window)
}

// Workload returns the cache's workload observer: the per-region windowed
// bound-mix/arrival-rate/staleness profiles fed by every guard decision,
// consumed by the autotuning loop.
func (c *Cache) Workload() *obs.WorkloadObserver { return c.obs.workload }

// RegionStatuses reports one row per currency region for the ops surface:
// the region's replication parameters (the agent's effective cadence, so a
// live retune shows up immediately), its staleness right now (clock minus
// the local heartbeat), whether a heartbeat has ever arrived, and how many
// transactions its agent has applied.
func (c *Cache) RegionStatuses() []obs.RegionStatus {
	now := c.clock.Now()
	regions := c.cat.Regions()
	out := make([]obs.RegionStatus, 0, len(regions))
	for _, r := range regions {
		rs := obs.RegionStatus{
			ID:                  r.ID,
			Name:                r.Name,
			UpdateIntervalNS:    int64(r.UpdateInterval),
			UpdateDelayNS:       int64(r.UpdateDelay),
			HeartbeatIntervalNS: int64(r.HeartbeatInterval),
		}
		if ts, ok := c.LastSync(r.ID); ok {
			rs.Synced = true
			rs.StalenessNS = int64(now.Sub(ts))
		}
		if a := c.Agent(r.ID); a != nil {
			rs.TxnsApplied = a.TransactionsApplied()
			rs.UpdateIntervalNS = int64(a.Interval())
			rs.HeartbeatIntervalNS = int64(a.HeartbeatInterval())
		}
		out = append(out, rs)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// RefreshStalenessGauges recomputes every region's staleness gauge
// (region_staleness_ns) from the clock and the local heartbeat table, so a
// metrics snapshot reflects current staleness even between queries.
func (c *Cache) RefreshStalenessGauges() {
	now := c.clock.Now()
	for _, r := range c.cat.Regions() {
		if ts, ok := c.LastSync(r.ID); ok {
			c.obs.regionStaleness.With(c.obs.regionLabel(r.ID)).SetDuration(now.Sub(ts))
		}
	}
}
