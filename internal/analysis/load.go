package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed and (best-effort) type-checked package.
// Type information is advisory: when an import cannot be resolved (for
// example a cgo-only stdlib package) the checker records errors in
// TypeErrors and analyzers fall back to syntactic reasoning, so a partial
// toolchain never blocks the lint run.
type Package struct {
	ImportPath string
	Dir        string
	Name       string
	Fset       *token.FileSet
	Files      []*ast.File
	Filenames  []string // parallel to Files
	Types      *types.Package
	Info       *types.Info
	TypeErrors []error
}

// Loader walks a module tree, parses package directories and type-checks
// them with a chain importer: module-local imports resolve recursively
// through the loader itself, everything else goes through the stdlib source
// importer. No go/packages, no external dependencies.
type Loader struct {
	Fset       *token.FileSet
	ModulePath string
	Root       string

	pkgs    map[string]*Package // keyed by import path
	loading map[string]bool     // import-cycle guard
	std     types.Importer
	stdErr  map[string]*types.Package // placeholder packages for failed imports
}

// NewLoader creates a loader rooted at the module directory containing
// go.mod. The module path is read from go.mod's module directive.
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	mod, err := os.ReadFile(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("analysis: loader root must contain go.mod: %w", err)
	}
	modPath := ""
	for _, line := range strings.Split(string(mod), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("analysis: no module directive in %s/go.mod", abs)
	}
	fset := token.NewFileSet()
	l := &Loader{
		Fset:       fset,
		ModulePath: modPath,
		Root:       abs,
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
		stdErr:     map[string]*types.Package{},
	}
	l.std = importer.ForCompiler(fset, "source", nil)
	return l, nil
}

// LoadDirs walks each directory (relative to the module root) and loads
// every package found, skipping testdata, vendor and hidden directories.
// Packages are returned sorted by import path.
func (l *Loader) LoadDirs(dirs ...string) ([]*Package, error) {
	var out []*Package
	seen := map[string]bool{}
	for _, dir := range dirs {
		abs := dir
		if !filepath.IsAbs(abs) {
			abs = filepath.Join(l.Root, dir)
		}
		err := filepath.WalkDir(abs, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			base := filepath.Base(path)
			if path != abs && (base == "testdata" || base == "vendor" || strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_")) {
				return filepath.SkipDir
			}
			if !hasGoFiles(path) {
				return nil
			}
			pkg, perr := l.loadDir(path)
			if perr != nil {
				return perr
			}
			if pkg != nil && !seen[pkg.ImportPath] {
				seen[pkg.ImportPath] = true
				out = append(out, pkg)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// importPathFor maps a directory inside the module to its import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside module root %s", dir, l.Root)
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// loadDir parses and type-checks the package in one directory (non-test
// files only). Results are cached by import path.
func (l *Loader) loadDir(dir string) (*Package, error) {
	ip, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	if pkg, ok := l.pkgs[ip]; ok {
		return pkg, nil
	}
	if l.loading[ip] {
		return nil, fmt.Errorf("analysis: import cycle through %s", ip)
	}
	l.loading[ip] = true
	defer delete(l.loading, ip)

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{ImportPath: ip, Dir: dir, Fset: l.Fset}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		f, perr := parser.ParseFile(l.Fset, path, nil, parser.ParseComments)
		if perr != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %w", path, perr)
		}
		pkg.Files = append(pkg.Files, f)
		pkg.Filenames = append(pkg.Filenames, path)
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}
	pkg.Name = pkg.Files[0].Name.Name
	l.pkgs[ip] = pkg // publish before Check so self-referential walks terminate

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{
		Importer:         (*chainImporter)(l),
		FakeImportC:      true,
		IgnoreFuncBodies: false,
		Error: func(err error) {
			pkg.TypeErrors = append(pkg.TypeErrors, err)
		},
	}
	tpkg, _ := conf.Check(ip, l.Fset, pkg.Files, info) // errors collected above
	pkg.Types = tpkg
	pkg.Info = info
	return pkg, nil
}

// chainImporter resolves module-local import paths through the loader and
// everything else through the source importer, degrading to an empty
// placeholder package when an import cannot be type-checked (the analyzers
// then fall back to syntax for anything touching it).
type chainImporter Loader

func (c *chainImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(c)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		pkg, err := l.loadDir(filepath.Join(l.Root, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		if pkg == nil || pkg.Types == nil {
			return nil, fmt.Errorf("analysis: no package at %s", path)
		}
		return pkg.Types, nil
	}
	if p, ok := l.stdErr[path]; ok {
		return p, nil
	}
	p, err := l.std.Import(path)
	if err == nil {
		return p, nil
	}
	// Unresolvable import (cgo, missing source): hand the checker a complete
	// but empty package so checking continues with partial information.
	ph := types.NewPackage(path, pathBase(path))
	ph.MarkComplete()
	l.stdErr[path] = ph
	return ph, nil
}

// Placeholders returns the import paths the loader could not resolve and
// degraded to empty placeholder packages, sorted. A non-empty list means
// type information is partial: analyzers silently fell back to syntactic
// reasoning for anything touching these imports. rcclint -strict turns the
// list into findings instead of letting the degradation vanish.
func (l *Loader) Placeholders() []string {
	out := make([]string, 0, len(l.stdErr))
	for ip := range l.stdErr {
		out = append(out, ip)
	}
	sort.Strings(out)
	return out
}

func pathBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
