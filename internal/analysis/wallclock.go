package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// NewWallClock builds the wallclock analyzer with the repo's default
// allowlist.
//
// Contract: every headline guarantee this reproduction makes — byte-
// identical chaos reports, same-seed SLO and tuner timelines, the planned
// offline consistency checker — rests on deterministic behavior under the
// virtual clock. Deterministic packages (everything under internal/ except
// the explicit allowlist) therefore must not read wall-clock time or use
// the process-global math/rand source: time comes from an injected
// vclock.Clock, randomness from an explicitly seeded rand.New(
// rand.NewSource(seed)).
//
// The analyzer flags, in deterministic packages:
//
//   - direct calls to time.Now, Since, Until, Sleep, After, AfterFunc,
//     Tick, NewTimer and NewTicker;
//   - calls to the package-level math/rand (and math/rand/v2) functions,
//     which draw from the unseeded global source;
//   - calls to module-local helpers that transitively reach wall clock
//     through a non-deterministic package — reported at the deterministic
//     entry point, because that is where the contract is broken.
//
// internal/vclock is sanctioned: it is the one place wall clock is
// wrapped, so calls into it never taint callers. Packages named main (CLI
// entry points, demo mode) are exempt from the determinism contract but
// are not sanctioned — a deterministic package routing time through one of
// their helpers is still flagged. The handful of legitimately wall-clock
// sites inside deterministic packages (ops-surface timestamps, wall-bound
// test timeouts) carry //rcclint:ignore wallclock <reason>.
func NewWallClock() *Analyzer {
	return NewWallClockAllow()
}

// NewWallClockAllow builds the wallclock analyzer with extra allowlisted
// import-path fragments on top of the defaults (used by the fixture tests
// to mark testdata helper packages as exempt).
func NewWallClockAllow(extraAllow ...string) *Analyzer {
	wc := &wallClock{
		cg:        newCallGraph(),
		seeds:     map[string]token.Pos{},
		seedCalls: map[string]string{},
		detNodes:  map[string]bool{},
		allow:     append([]string{"internal/vclock"}, extraAllow...),
	}
	return &Analyzer{
		Name:   "wallclock",
		Doc:    "deterministic packages must take time from an injected vclock.Clock, not the wall clock or the global math/rand source",
		Run:    wc.run,
		Finish: wc.finish,
	}
}

// wallTimeFns are the time-package functions that read or schedule against
// the operating-system clock.
var wallTimeFns = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// globalRandFns are the math/rand (and math/rand/v2) package-level
// functions that draw from the process-global source. Explicit generators
// (rand.New, rand.NewSource, rand.NewPCG, rand.NewZipf) are fine: they are
// seeded by the caller.
var globalRandFns = map[string]bool{
	"Int": true, "Intn": true, "IntN": true, "Int31": true, "Int31n": true,
	"Int32": true, "Int32N": true, "Int63": true, "Int63n": true,
	"Int64": true, "Int64N": true, "Uint": true, "UintN": true,
	"Uint32": true, "Uint32N": true, "Uint64": true, "Uint64N": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true, "N": true,
}

type wallClock struct {
	cg *callGraph
	// seeds maps node ids with a direct wall-clock call to its position;
	// seedCalls remembers what was called there for the propagated message.
	seeds     map[string]token.Pos
	seedCalls map[string]string
	// detNodes marks nodes living in deterministic packages: their direct
	// findings are reported during run, and taint must not flow through
	// them (the finding would travel past its own report).
	detNodes map[string]bool
	allow    []string
	// detFuncs are the deterministic-package functions whose call sites are
	// checked against the taint set during finish.
	detFuncs []*cgNode
}

// exempt reports whether the package is excused from the determinism
// contract: allowlisted paths and main packages.
func (wc *wallClock) exempt(pkg *Package) bool {
	if pkg.Name == "main" {
		return true
	}
	for _, frag := range wc.allow {
		if strings.Contains(pkg.ImportPath, frag) {
			return true
		}
	}
	return false
}

// sanctioned reports whether the package is the trusted clock wrapper:
// calls into it never count as reaching wall clock.
func (wc *wallClock) sanctioned(importPath string) bool {
	return strings.Contains(importPath, "internal/vclock")
}

// deterministic reports whether the package must uphold the virtual-clock
// contract: module-internal and not exempt.
func (wc *wallClock) deterministic(pkg *Package) bool {
	return strings.Contains(pkg.ImportPath, "/internal/") && !wc.exempt(pkg)
}

// wallCallName classifies a call expression as a wall-clock primitive,
// returning a display name like "time.Now" or "math/rand.Intn". Detection
// is by imported package path (aliased imports included) with a syntactic
// fallback on the conventional names when type information is missing.
func wallCallName(pass *Pass, file *ast.File, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	path := ""
	if pass.Pkg.Info != nil {
		if pn, ok := pass.Pkg.Info.Uses[id].(*types.PkgName); ok {
			path = pn.Imported().Path()
		}
	}
	if path == "" {
		// Syntactic fallback: match the import spelling in this file.
		for _, imp := range file.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			name := pathBase(p)
			if imp.Name != nil {
				name = imp.Name.Name
			}
			if name == id.Name && (p == "time" || p == "math/rand" || p == "math/rand/v2") {
				path = p
				break
			}
		}
	}
	switch path {
	case "time":
		if wallTimeFns[sel.Sel.Name] {
			return "time." + sel.Sel.Name
		}
	case "math/rand", "math/rand/v2":
		if globalRandFns[sel.Sel.Name] {
			return path + "." + sel.Sel.Name
		}
	}
	return ""
}

func (wc *wallClock) run(pass *Pass) {
	det := wc.deterministic(pass.Pkg)
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			file := file
			node := wc.cg.addFunc(pass, fd, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				name := wallCallName(pass, file, call)
				if name == "" {
					return true
				}
				if det {
					pass.Reportf(call.Pos(), "%s in deterministic package %s: route time through the injected vclock.Clock (or suppress with an //rcclint:ignore reason)", name, pass.Pkg.ImportPath)
				}
				if _, ok := wc.seeds[funcID(pass.Pkg, fd)]; !ok {
					wc.seeds[funcID(pass.Pkg, fd)] = call.Pos()
					wc.seedCalls[funcID(pass.Pkg, fd)] = name
				}
				return true
			})
			if det {
				wc.detNodes[node.id] = true
				wc.detFuncs = append(wc.detFuncs, node)
			}
		}
	}
}

// finish propagates "reaches wall clock" backward through the call graph
// and reports deterministic call sites whose callee acquired the taint in
// a non-deterministic, non-sanctioned package (helpers in CLI mains or
// other exempt code). Direct calls inside deterministic packages were
// already reported in run; taint stops at deterministic and sanctioned
// nodes so each violation is reported exactly once, at the point where
// determinism is lost.
func (wc *wallClock) finish(r *Reporter) {
	barrier := func(n *cgNode) bool {
		return wc.sanctioned(n.pkg) || wc.detNodes[n.id]
	}
	tainted := wc.cg.propagate(wc.seeds, barrier)

	type finding struct {
		pos    token.Pos
		callee string
		via    string
	}
	var out []finding
	seen := map[token.Pos]bool{}
	for _, fn := range wc.detFuncs {
		for _, call := range fn.calls {
			for _, c := range call.callees {
				for _, callee := range wc.cg.resolve(c) {
					if _, ok := tainted[callee.id]; !ok {
						continue
					}
					if seen[call.pos] {
						continue
					}
					seen[call.pos] = true
					via := wc.seedCalls[callee.id]
					if via == "" {
						via = "wall clock"
					}
					out = append(out, finding{pos: call.pos, callee: shortLock(callee.id), via: via})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].pos < out[j].pos })
	for _, f := range out {
		r.Reportf(f.pos, "call to %s transitively reaches %s outside any sanctioned clock package; deterministic code must take time from the injected vclock.Clock", f.callee, f.via)
	}
}
