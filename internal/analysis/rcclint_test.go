package analysis

import (
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// The fixture tests load testdata packages through the real module loader
// and compare findings against `want:<analyzer>` markers on the flagged
// lines, so expectations live next to the code they describe.

var (
	testLoaderOnce sync.Once
	testLoader     *Loader
	testLoaderErr  error
)

func fixtureLoader(t *testing.T) *Loader {
	t.Helper()
	testLoaderOnce.Do(func() {
		testLoader, testLoaderErr = NewLoader("../..")
	})
	if testLoaderErr != nil {
		t.Fatal(testLoaderErr)
	}
	return testLoader
}

func loadFixture(t *testing.T, dir string) []*Package {
	t.Helper()
	pkgs, err := fixtureLoader(t).LoadDirs(filepath.Join("internal", "analysis", "testdata", "src", dir))
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no packages under testdata/src/%s", dir)
	}
	return pkgs
}

type finding struct {
	analyzer string
	file     string // base name
	line     int
}

var wantRe = regexp.MustCompile(`want:([a-z,]+)`)

func wantedFindings(t *testing.T, pkgs []*Package) map[finding]int {
	t.Helper()
	out := map[finding]int{}
	for _, pkg := range pkgs {
		for _, name := range pkg.Filenames {
			data, err := os.ReadFile(name)
			if err != nil {
				t.Fatal(err)
			}
			for i, line := range strings.Split(string(data), "\n") {
				for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
					for _, a := range strings.Split(m[1], ",") {
						out[finding{analyzer: a, file: filepath.Base(name), line: i + 1}]++
					}
				}
			}
		}
	}
	return out
}

func gotFindings(diags []Diagnostic) map[finding]int {
	out := map[finding]int{}
	for _, d := range diags {
		out[finding{analyzer: d.Analyzer, file: filepath.Base(d.File), line: d.Line}]++
	}
	return out
}

func checkFixture(t *testing.T, dir string, mk func() *Analyzer) {
	t.Helper()
	pkgs := loadFixture(t, dir)
	diags := Run(pkgs, []*Analyzer{mk()})
	want := wantedFindings(t, pkgs)
	got := gotFindings(diags)
	for f, n := range want {
		if got[f] != n {
			t.Errorf("%s:%d: want %d %s finding(s), got %d", f.file, f.line, n, f.analyzer, got[f])
		}
	}
	for f, n := range got {
		if want[f] == 0 {
			t.Errorf("%s:%d: unexpected %s finding (x%d)", f.file, f.line, f.analyzer, n)
		}
	}
	if t.Failed() {
		for _, d := range diags {
			t.Logf("finding: %s", d)
		}
	}
}

func TestFixtures(t *testing.T) {
	cases := []struct {
		dir string
		mk  func() *Analyzer
	}{
		{"operatorclose/bad", NewOperatorClose},
		{"operatorclose/good", NewOperatorClose},
		{"lockorder/bad", NewLockOrder},
		{"lockorder/good", NewLockOrder},
		{"lockorder/cycle", NewLockOrder},
		{"atomicmix/bad", NewAtomicMix},
		{"atomicmix/good", NewAtomicMix},
		{"metricnames/bad", NewMetricNames},
		{"metricnames/good", NewMetricNames},
		{"wallclock/bad", func() *Analyzer { return NewWallClockAllow("wallclock/bad/clockutil") }},
		{"wallclock/good", NewWallClock},
		{"selvec/bad", NewSelVec},
		{"selvec/good", NewSelVec},
		{"goownership/bad", func() *Analyzer { return NewGoOwnershipWith("testdata/src/goownership") }},
		{"goownership/good", func() *Analyzer { return NewGoOwnershipWith("testdata/src/goownership") }},
		{"ignore", NewAtomicMix},
	}
	for _, c := range cases {
		t.Run(strings.ReplaceAll(c.dir, "/", "_"), func(t *testing.T) {
			checkFixture(t, c.dir, c.mk)
		})
	}
}

// TestIgnoreDirectives pins the directive semantics beyond positions: a
// valid directive suppresses exactly the one finding on the next line, the
// identical finding elsewhere survives, and an unknown-analyzer directive
// is reported under the "rcclint" pseudo-analyzer.
func TestIgnoreDirectives(t *testing.T) {
	pkgs := loadFixture(t, "ignore")
	diags := Run(pkgs, []*Analyzer{NewAtomicMix()})
	var atomics, directives int
	for _, d := range diags {
		switch d.Analyzer {
		case "atomicmix":
			atomics++
		case "rcclint":
			directives++
			if !strings.Contains(d.Message, `unknown analyzer "nosuchanalyzer"`) {
				t.Errorf("unexpected directive finding message: %s", d.Message)
			}
		default:
			t.Errorf("unexpected analyzer %q: %s", d.Analyzer, d)
		}
	}
	// The fixture has three identical plain writes; one is suppressed.
	if atomics != 2 || directives != 1 {
		t.Fatalf("want 2 atomicmix + 1 rcclint finding(s), got %v", diags)
	}
}

// TestIgnoreAcrossAnalyzers runs the full analyzer suite over a fixture
// with one finding per analyzer, each suppressed by a directive naming
// it. It pins three interaction rules at once: every analyzer honors
// suppression, a directive silences only its own analyzer (the atomicmix
// finding sharing a line with a suppressed wallclock finding survives),
// and malformed directives — unknown analyzer, missing reason — are
// still reported under the "rcclint" pseudo-analyzer.
func TestIgnoreAcrossAnalyzers(t *testing.T) {
	pkgs := loadFixture(t, "ignoreall")
	all := []*Analyzer{
		NewOperatorClose(), NewLockOrder(), NewAtomicMix(), NewMetricNames(),
		NewWallClock(), NewSelVec(), NewGoOwnershipWith("testdata/src/ignoreall"),
	}
	diags := Run(pkgs, all)

	var rest []Diagnostic
	var badDirectives []string
	for _, d := range diags {
		if d.Analyzer == "rcclint" {
			badDirectives = append(badDirectives, d.Message)
			continue
		}
		rest = append(rest, d)
	}

	// Malformed directives survive no matter which analyzers ran.
	if len(badDirectives) != 2 {
		t.Fatalf("want 2 rcclint directive findings, got %v", diags)
	}
	for _, want := range []string{`unknown analyzer "nosuchpass"`, "missing reason"} {
		found := false
		for _, msg := range badDirectives {
			if strings.Contains(msg, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("no directive finding containing %q in %v", want, badDirectives)
		}
	}

	// Everything else must match the want markers exactly: one surviving
	// atomicmix finding on the line whose wallclock finding is suppressed,
	// and nothing from the six analyzers whose findings carry directives.
	want := wantedFindings(t, pkgs)
	got := gotFindings(rest)
	for f, n := range want {
		if got[f] != n {
			t.Errorf("%s:%d: want %d %s finding(s), got %d", f.file, f.line, n, f.analyzer, got[f])
		}
	}
	for f, n := range got {
		if want[f] == 0 {
			t.Errorf("%s:%d: unexpected %s finding (x%d)", f.file, f.line, f.analyzer, n)
		}
	}
	if t.Failed() {
		for _, d := range diags {
			t.Logf("finding: %s", d)
		}
	}
}

// TestMetricNamesZeroRegistrations checks the fail-closed behavior the old
// shell script had: analyzing packages with no registrations at all is
// itself a finding.
func TestMetricNamesZeroRegistrations(t *testing.T) {
	pkgs := loadFixture(t, "lockorder/good")
	diags := Run(pkgs, []*Analyzer{NewMetricNames()})
	if len(diags) != 1 {
		t.Fatalf("want exactly one finding, got %v", diags)
	}
	d := diags[0]
	if d.Analyzer != "metricnames" || !strings.Contains(d.Message, "no metric registrations") {
		t.Fatalf("unexpected finding: %s", d)
	}
}

// TestStrictDiagnostics pins -strict semantics: a package that parses but
// fails the type check is silently analyzed on partial information in a
// normal run, and becomes a positioned "strict" finding under -strict.
func TestStrictDiagnostics(t *testing.T) {
	pkgs := loadFixture(t, "strict/broken")
	if len(pkgs[0].TypeErrors) == 0 {
		t.Fatal("fixture should have type errors")
	}
	// A normal run stays silent: degradation must be opt-in to surface.
	if diags := Run(pkgs, []*Analyzer{NewAtomicMix()}); len(diags) != 0 {
		t.Fatalf("normal run should not report degradation: %v", diags)
	}
	diags := StrictDiagnostics(fixtureLoader(t), pkgs)
	var broken []Diagnostic
	for _, d := range diags {
		if d.Analyzer != "strict" {
			t.Fatalf("unexpected analyzer %q: %s", d.Analyzer, d)
		}
		if strings.Contains(d.File, "broken") {
			broken = append(broken, d)
		}
	}
	if len(broken) != 1 {
		t.Fatalf("want exactly one strict finding for the broken package, got %v", diags)
	}
	d := broken[0]
	if !strings.Contains(d.Message, "type-checked with 1 error(s)") || !strings.Contains(d.Message, "weight") {
		t.Errorf("finding should carry the error count and first message: %s", d)
	}
	if filepath.Base(d.File) != "broken.go" || d.Line == 0 {
		t.Errorf("finding should be positioned at the offending line: %s", d)
	}
}

// TestStrictCleanPackages checks that healthy packages produce no strict
// findings of the type-error kind (placeholder findings are loader-wide
// and depend on the environment's stdlib, so they are not asserted here).
func TestStrictCleanPackages(t *testing.T) {
	pkgs := loadFixture(t, "lockorder/good")
	for _, d := range StrictDiagnostics(fixtureLoader(t), pkgs) {
		if strings.Contains(d.Message, "type-checked") {
			t.Errorf("unexpected type-error finding for a healthy package: %s", d)
		}
	}
}

// TestDiagnosticJSON pins the -json field names tooling depends on.
func TestDiagnosticJSON(t *testing.T) {
	b, err := json.Marshal(Diagnostic{Analyzer: "lockorder", File: "x.go", Line: 3, Col: 7, Message: "m"})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"analyzer":"lockorder","file":"x.go","line":3,"col":7,"message":"m"}`
	if string(b) != want {
		t.Fatalf("got %s, want %s", b, want)
	}
}
