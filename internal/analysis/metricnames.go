package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// NewMetricNames builds the metricnames analyzer, the AST-accurate
// replacement for the old scripts/metrics_lint.sh grep: it finds every
// Registry.Counter/Gauge/Histogram/*Vec registration, resolves constant and
// concatenated name arguments (via go/types constant folding, with a
// syntactic fallback), and enforces:
//
//   - names and *Vec label keys are lowercase_snake ([a-z][a-z0-9_]*)
//   - Counter/CounterVec names end in _total (the convention every SLO and
//     span counter follows; a counter without it reads as a gauge)
//   - a name is registered from a single source file (the same literal in
//     two files means two subsystems fighting over one name)
//   - a name keeps a single instrument kind
//   - name arguments are compile-time constants (dynamic names cannot be
//     linted and defeat the single-registration-site rule)
func NewMetricNames() *Analyzer {
	mn := &metricNames{regs: map[string][]metricReg{}}
	return &Analyzer{
		Name:   "metricnames",
		Doc:    "metric names must be lowercase_snake constants registered from one file per name",
		Run:    mn.run,
		Finish: mn.finish,
	}
}

// metricKinds maps registration method name to argument count (name, or
// name+label for the one-label Vec families).
var metricKinds = map[string]int{
	"Counter": 1, "Gauge": 1, "Histogram": 1,
	"CounterVec": 2, "GaugeVec": 2, "HistogramVec": 2,
}

type metricReg struct {
	kind string
	file string
	pos  token.Pos
}

type metricNames struct {
	regs map[string][]metricReg
}

func (mn *metricNames) run(pass *Pass) {
	consts := packageStringConsts(pass.Pkg)
	for fi, f := range pass.Pkg.Files {
		file := pass.Pkg.Filenames[fi]
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			nargs, ok := metricKinds[sel.Sel.Name]
			if !ok || len(call.Args) < nargs {
				return true
			}
			if !isRegistryRecv(pass, sel.X) {
				return true
			}
			name, ok := stringConstOf(pass, call.Args[0], consts)
			if !ok {
				pass.Reportf(call.Args[0].Pos(), "metric name passed to %s is not a compile-time constant string; dynamic names defeat the single-registration-site rule (use a label)", sel.Sel.Name)
				return true
			}
			if !validMetricName(name) {
				pass.Reportf(call.Args[0].Pos(), "metric name %q is not lowercase_snake ([a-z][a-z0-9_]*)", name)
			} else if (sel.Sel.Name == "Counter" || sel.Sel.Name == "CounterVec") && !strings.HasSuffix(name, "_total") {
				pass.Reportf(call.Args[0].Pos(), "counter %q must end in _total; a counter without the suffix reads as a gauge", name)
			}
			if nargs == 2 {
				if label, ok := stringConstOf(pass, call.Args[1], consts); ok {
					if !validMetricName(label) {
						pass.Reportf(call.Args[1].Pos(), "metric label key %q is not lowercase_snake ([a-z][a-z0-9_]*)", label)
					}
				} else {
					pass.Reportf(call.Args[1].Pos(), "metric label key passed to %s is not a compile-time constant string", sel.Sel.Name)
				}
			}
			mn.regs[name] = append(mn.regs[name], metricReg{kind: sel.Sel.Name, file: file, pos: call.Args[0].Pos()})
			return true
		})
	}
}

func (mn *metricNames) finish(r *Reporter) {
	if len(mn.regs) == 0 {
		r.Reportf(token.NoPos, "no metric registrations found in the analyzed packages; the metrics layer or this analyzer is miswired")
		return
	}
	names := make([]string, 0, len(mn.regs))
	for name := range mn.regs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		regs := mn.regs[name]
		sort.Slice(regs, func(i, j int) bool { return regs[i].pos < regs[j].pos })
		first := regs[0]
		for _, reg := range regs[1:] {
			if reg.kind != first.kind {
				r.Reportf(reg.pos, "metric %q registered as %s here but as %s elsewhere; one name keeps one instrument kind", name, reg.kind, first.kind)
				continue
			}
			if reg.file != first.file {
				r.Reportf(reg.pos, "metric %q is also registered in %s; a name belongs to a single source file", name, first.file)
			}
		}
	}
}

// isRegistryRecv accepts the call when the receiver is (or cannot be proven
// not to be) an obs.Registry.
func isRegistryRecv(pass *Pass, x ast.Expr) bool {
	if pass.Pkg.Info == nil {
		return true
	}
	tv, ok := pass.Pkg.Info.Types[x]
	if !ok || tv.Type == nil {
		return true // unresolved: keep the old grep's behavior and match
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Name() == "Registry"
}

// stringConstOf resolves an expression to a string constant, preferring the
// type checker's constant folding and falling back to a syntactic fold over
// literals, +-concatenations and package-level consts.
func stringConstOf(pass *Pass, e ast.Expr, consts map[string]string) (string, bool) {
	if pass.Pkg.Info != nil {
		if tv, ok := pass.Pkg.Info.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
			return constant.StringVal(tv.Value), true
		}
	}
	return foldString(e, consts)
}

func foldString(e ast.Expr, consts map[string]string) (string, bool) {
	switch e := e.(type) {
	case *ast.BasicLit:
		if e.Kind != token.STRING {
			return "", false
		}
		s, err := strconv.Unquote(e.Value)
		return s, err == nil
	case *ast.Ident:
		s, ok := consts[e.Name]
		return s, ok
	case *ast.BinaryExpr:
		if e.Op != token.ADD {
			return "", false
		}
		l, ok := foldString(e.X, consts)
		if !ok {
			return "", false
		}
		r, ok := foldString(e.Y, consts)
		if !ok {
			return "", false
		}
		return l + r, true
	case *ast.ParenExpr:
		return foldString(e.X, consts)
	}
	return "", false
}

// packageStringConsts collects package-level string constants for the
// syntactic fallback folder.
func packageStringConsts(pkg *Package) map[string]string {
	out := map[string]string{}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i >= len(vs.Values) {
						break
					}
					if s, ok := foldString(vs.Values[i], out); ok {
						out[name.Name] = s
					}
				}
			}
		}
	}
	return out
}

// validMetricName reports lowercase_snake: [a-z][a-z0-9_]*.
func validMetricName(name string) bool {
	if name == "" || !(name[0] >= 'a' && name[0] <= 'z') {
		return false
	}
	for i := 1; i < len(name); i++ {
		c := name[i]
		if (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_' {
			continue
		}
		return false
	}
	return true
}
