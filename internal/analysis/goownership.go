package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// NewGoOwnership builds the goownership analyzer with the repo's default
// target set.
//
// Bug class (PR 4): a long-lived component spawns a goroutine with no join
// or shutdown path — the live-workload agent's first cut leaked its step
// loop past Close, so a finished scenario kept mutating the store while the
// next one set up, and the virtual clock's waiter count drifted between
// runs. The contract: in long-lived components every `go` statement must
// have a provable ownership story.
//
// Accepted ownership shapes, checked syntactically over the spawned body
// and its spawning function:
//
//   - WaitGroup: the body calls X.Done() (directly or deferred) and the
//     spawning function calls X.Add(...);
//   - shutdown channel: the body receives from (or selects on) a channel
//     named stop/done/quit/closing, from ctx.Done(), or from any .Done()
//     channel, or drains a channel with `for range ch` (joins when the
//     owner closes it);
//   - barrier: the body calls X.Wait() — the collector that outlives the
//     workers it joins;
//   - clock waiter: the body blocks on a Clock's .After(...) — registered
//     with the virtual clock and joined through vclock.AwaitWaiters;
//   - handoff: a non-literal spawn `go x.M(a, b)` where some argument is a
//     stop/done/quit channel (the callee owns its shutdown), checked by
//     type when available and by name otherwise.
//
// Anything else is flagged at the `go` statement. Genuinely fire-and-forget
// goroutines carry //rcclint:ignore goownership <reason>.
func NewGoOwnership() *Analyzer {
	return NewGoOwnershipWith()
}

// goTargetDefaults are the long-lived components under the ownership
// contract; short-lived CLI helpers are out of scope.
var goTargetDefaults = []string{
	"internal/repl",
	"internal/remote",
	"internal/exec",
	"internal/harness",
}

// NewGoOwnershipWith builds the goownership analyzer targeting the default
// packages plus extra import-path fragments (used by fixture tests).
func NewGoOwnershipWith(extra ...string) *Analyzer {
	targets := append(append([]string{}, goTargetDefaults...), extra...)
	return &Analyzer{
		Name: "goownership",
		Doc:  "goroutines in long-lived components must have a provable join or shutdown path",
		Run: func(pass *Pass) {
			runGoOwnership(pass, targets)
		},
	}
}

func runGoOwnership(pass *Pass, targets []string) {
	hit := false
	for _, frag := range targets {
		if strings.Contains(pass.Pkg.ImportPath, frag) {
			hit = true
			break
		}
	}
	if !hit {
		return
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// Receivers with an Add(...) call anywhere in the spawning
			// function; matched against Done() inside spawned bodies.
			adds := waitGroupAdds(fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if !goStmtOwned(pass, gs, adds) {
					pass.Reportf(gs.Pos(), "goroutine in long-lived component %s has no provable join or shutdown path (WaitGroup Add/Done, stop channel, Wait barrier, or clock-waiter registration)", pass.Pkg.ImportPath)
				}
				return true
			})
		}
	}
}

// waitGroupAdds collects the rendered receivers of X.Add(...) calls.
func waitGroupAdds(body *ast.BlockStmt) map[string]bool {
	out := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Add" {
			out[renderExpr(sel.X)] = true
		}
		return true
	})
	return out
}

// shutdownChanName matches conventional stop-channel identifiers.
func shutdownChanName(name string) bool {
	lower := strings.ToLower(name)
	for _, frag := range []string{"stop", "done", "quit", "closing", "shutdown"} {
		if strings.Contains(lower, frag) {
			return true
		}
	}
	return false
}

// recvIsShutdown reports whether a receive operand looks like a shutdown
// or completion signal: a conventionally named channel or a .Done() call.
func recvIsShutdown(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return shutdownChanName(e.Name)
	case *ast.SelectorExpr:
		return shutdownChanName(e.Sel.Name)
	case *ast.CallExpr:
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
			return sel.Sel.Name == "Done" || sel.Sel.Name == "After"
		}
	}
	return false
}

// isChanExpr reports whether an expression has channel type (requires type
// information; false without it, which errs toward reporting).
func isChanExpr(pass *Pass, e ast.Expr) bool {
	if pass.Pkg.Info == nil {
		return false
	}
	tv, ok := pass.Pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}

// goStmtOwned decides whether one `go` statement has an ownership story.
func goStmtOwned(pass *Pass, gs *ast.GoStmt, adds map[string]bool) bool {
	fl, isLit := gs.Call.Fun.(*ast.FuncLit)
	if !isLit {
		// Handoff spawn: go x.M(stop) — some argument carries the shutdown
		// signal into the callee.
		for _, arg := range gs.Call.Args {
			switch a := arg.(type) {
			case *ast.Ident:
				if shutdownChanName(a.Name) || a.Name == "ctx" || isChanExpr(pass, a) {
					return true
				}
			case *ast.SelectorExpr:
				if shutdownChanName(a.Sel.Name) || isChanExpr(pass, a) {
					return true
				}
			case *ast.CallExpr:
				if sel, ok := a.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
					return true
				}
			case *ast.ChanType:
				return true
			}
		}
		return false
	}
	owned := false
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if owned {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch sel.Sel.Name {
			case "Done":
				// X.Done() as a plain or deferred statement is a WaitGroup
				// countdown (a context's Done() only appears as a receive
				// operand, which the UnaryExpr case handles).
				if adds[renderExpr(sel.X)] {
					owned = true
				}
			case "Wait":
				owned = true // barrier: joins whatever it outlives
			case "After":
				owned = true // clock waiter, joined via vclock.AwaitWaiters
			}
		case *ast.UnaryExpr:
			// <-stop, <-ctx.Done(), <-clock.After(d)
			if n.Op.String() == "<-" && recvIsShutdown(n.X) {
				owned = true
			}
		case *ast.RangeStmt:
			// for v := range ch — drains until the owner closes the channel.
			// Ranging over a slice is not a join, so this needs the type.
			if isChanExpr(pass, n.X) {
				owned = true
			}
		}
		return true
	})
	return owned
}
