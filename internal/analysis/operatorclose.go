package analysis

import (
	"go/ast"
	"go/token"
)

// NewOperatorClose builds the operatorclose analyzer.
//
// Bug class (PR 1): an operator that stores child operators opened some of
// them and its Close released only the currently active one, leaking
// iterators when a guard re-evaluation switched branches or an error struck
// mid-open.
//
// The check: for every struct that stores exec.Operator/BatchOperator
// fields and calls Open on one of them, the struct's Close method must
// release that field on its default path — directly (field.Close()), by
// ranging over the field and closing elements, or by passing the field to a
// helper. Two escapes are recognized: a field whose value is also stored in
// another operator field (an alias, e.g. bchild = AsBatch(Child)) is
// covered by closing the alias; and a field handed to a method on the same
// receiver (e.g. s.track(s.active)) is treated as tracked elsewhere. A
// close that only happens under a conditional other than a nil-guard of the
// field itself is flagged as conditional.
func NewOperatorClose() *Analyzer {
	return &Analyzer{
		Name: "operatorclose",
		Doc:  "operator structs must propagate Close to every opened child operator field",
		Run:  runOperatorClose,
	}
}

// isOperatorType reports whether a field type expression names the operator
// interfaces (Operator/BatchOperator, possibly package-qualified, possibly
// a slice/array/pointer of them).
func isOperatorType(e ast.Expr) bool {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name == "Operator" || t.Name == "BatchOperator"
	case *ast.SelectorExpr:
		return isOperatorType(t.Sel)
	case *ast.ArrayType:
		return isOperatorType(t.Elt)
	case *ast.StarExpr:
		return isOperatorType(t.X)
	}
	return false
}

// opStruct is one struct type with operator-typed fields.
type opStruct struct {
	name    string
	pos     token.Pos
	fields  map[string]token.Pos // operator-typed field name -> decl pos
	opened  map[string]token.Pos // field -> first Open call position
	aliases map[string][]string  // field -> operator fields its value also flows into
	handed  map[string]bool      // field passed to a method on the same receiver
	closeFn *ast.FuncDecl
	closeRx string // receiver name inside Close
}

func runOperatorClose(pass *Pass) {
	structs := map[string]*opStruct{}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				fields := map[string]token.Pos{}
				for _, fld := range st.Fields.List {
					if !isOperatorType(fld.Type) {
						continue
					}
					for _, name := range fld.Names {
						fields[name.Name] = name.Pos()
					}
				}
				if len(fields) > 0 {
					structs[ts.Name.Name] = &opStruct{
						name:    ts.Name.Name,
						pos:     ts.Name.Pos(),
						fields:  fields,
						opened:  map[string]token.Pos{},
						aliases: map[string][]string{},
						handed:  map[string]bool{},
					}
				}
			}
		}
	}
	if len(structs) == 0 {
		return
	}

	// Scan every method of each tracked struct for opens, aliases, hand-offs
	// and the Close declaration.
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) == 0 {
				continue
			}
			tname := recvTypeName(fd.Recv.List[0].Type)
			os, ok := structs[tname]
			if !ok {
				continue
			}
			rx := ""
			if len(fd.Recv.List[0].Names) > 0 {
				rx = fd.Recv.List[0].Names[0].Name
			}
			if fd.Name.Name == "Close" {
				os.closeFn, os.closeRx = fd, rx
			}
			if fd.Body == nil || rx == "" {
				continue
			}
			scanOpMethod(os, rx, fd.Body)
		}
	}

	for _, os := range sortedStructs(structs) {
		checkOpStruct(pass, os)
	}
}

func sortedStructs(m map[string]*opStruct) []*opStruct {
	var out []*opStruct
	for _, v := range m {
		out = append(out, v)
	}
	// Report in declaration order for deterministic output.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].pos < out[j-1].pos; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// mentionsField reports whether expr contains the selector rx.field (or an
// index/slice of it).
func mentionsField(e ast.Expr, rx, field string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && sel.Sel.Name == field {
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == rx {
				found = true
				return false
			}
		}
		return !found
	})
	return found
}

// scanOpMethod records Open calls, field-to-field aliases, and hand-offs to
// receiver methods for one method body.
func scanOpMethod(os *opStruct, rx string, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if sel.Sel.Name == "Open" {
				for fld := range os.fields {
					if mentionsField(sel.X, rx, fld) {
						if _, seen := os.opened[fld]; !seen {
							os.opened[fld] = n.Pos()
						}
					}
				}
			}
			// s.helper(... s.F ...) hands F to another method of the same
			// receiver, which is trusted to track it for Close.
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == rx {
				for _, arg := range n.Args {
					for fld := range os.fields {
						if mentionsField(arg, rx, fld) {
							os.handed[fld] = true
						}
					}
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) && len(n.Rhs) != 1 {
					break
				}
				rhs := n.Rhs[min(i, len(n.Rhs)-1)]
				for dst := range os.fields {
					if !mentionsField(lhs, rx, dst) {
						continue
					}
					for src := range os.fields {
						if src != dst && mentionsField(rhs, rx, src) {
							os.aliases[src] = append(os.aliases[src], dst)
						}
					}
				}
			}
		}
		return true
	})
}

// closeKind classifies how a field shows up in Close.
type closeKind int

const (
	closeNone closeKind = iota
	closeConditional
	closeUnconditional
)

func checkOpStruct(pass *Pass, os *opStruct) {
	if len(os.opened) == 0 {
		return
	}
	if os.closeFn == nil {
		pass.Reportf(os.pos, "%s opens child operator fields but declares no Close method", os.name)
		return
	}
	kinds := map[string]closeKind{}
	for fld := range os.fields {
		kinds[fld] = closeOccurrence(os.closeFn.Body, os.closeRx, fld)
	}
	for _, fld := range sortedFields(os.opened) {
		group := aliasGroup(os, fld)
		best := closeNone
		handed := false
		for _, g := range group {
			if k := kinds[g]; k > best {
				best = k
			}
			if os.handed[g] {
				handed = true
			}
		}
		if handed || best == closeUnconditional {
			continue
		}
		pos := os.opened[fld]
		if best == closeConditional {
			pass.Reportf(pos, "(%s).Close closes child operator field %s only under a condition that is not a nil-guard; an early-exit path can leak the opened child", os.name, fld)
		} else {
			pass.Reportf(pos, "(%s).Close never closes child operator field %s, which this method opens; the child leaks on every execution", os.name, fld)
		}
	}
}

// aliasGroup returns fld plus every operator field its value flows into,
// transitively.
func aliasGroup(os *opStruct, fld string) []string {
	seen := map[string]bool{fld: true}
	queue := []string{fld}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, next := range os.aliases[cur] {
			if !seen[next] {
				seen[next] = true
				queue = append(queue, next)
			}
		}
	}
	out := make([]string, 0, len(seen))
	for f := range seen {
		out = append(out, f)
	}
	return out
}

func sortedFields(m map[string]token.Pos) []string {
	var out []string
	for f := range m {
		out = append(out, f)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && m[out[j]] < m[out[j-1]]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// closeOccurrence finds the strongest way Close releases the field: an
// unconditional close (top level, inside a loop, inside a defer, or inside
// an if that nil-guards the field itself) beats a conditional one.
func closeOccurrence(body *ast.BlockStmt, rx, fld string) closeKind {
	if body == nil || rx == "" {
		return closeNone
	}
	// Local aliases of the field inside Close (c := s.fld, including
	// if-statement init clauses) count as the field.
	aliasVars := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			if i >= len(as.Rhs) {
				break
			}
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			if mentionsField(as.Rhs[i], rx, fld) {
				aliasVars[id.Name] = true
			}
		}
		return true
	})
	mentions := func(e ast.Expr) bool {
		if mentionsField(e, rx, fld) {
			return true
		}
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && aliasVars[id.Name] {
				found = true
				return false
			}
			return !found
		})
		return found
	}

	best := closeNone
	var stack []ast.Node
	record := func(n ast.Node) {
		if guardedByForeignCondition(stack, n, mentions) {
			if best < closeConditional {
				best = closeConditional
			}
		} else {
			best = closeUnconditional
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Close" && mentions(sel.X) {
				record(n)
				return true
			}
			for _, arg := range n.Args {
				if mentions(arg) {
					record(n) // field handed to a closing helper
					return true
				}
			}
		case *ast.RangeStmt:
			if mentions(n.X) && containsCloseCall(n.Body) {
				record(n)
				return false // don't double-count the inner Close call
			}
		}
		return true
	})
	return best
}

func containsCloseCall(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Close" {
				found = true
				return false
			}
		}
		return !found
	})
	return found
}

// guardedByForeignCondition reports whether node sits inside an if/switch/
// select arm whose condition is unrelated to the field (mentions reports
// field relation). A nil-guard of the field itself (`if s.f != nil` or
// `if c := s.f; c != nil`) does not count as foreign.
func guardedByForeignCondition(stack []ast.Node, node ast.Node, mentions func(ast.Expr) bool) bool {
	for _, anc := range stack {
		switch s := anc.(type) {
		case *ast.IfStmt:
			if !within(s.Body, node) && (s.Else == nil || !within(s.Else, node)) {
				continue
			}
			if isNilGuard(s.Cond, mentions) {
				continue
			}
			return true
		case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			if s.Pos() <= node.Pos() && node.End() <= s.End() && s != node {
				return true
			}
		}
	}
	return false
}

func within(outer ast.Node, inner ast.Node) bool {
	if outer == nil {
		return false
	}
	return outer.Pos() <= inner.Pos() && inner.End() <= outer.End()
}

// isNilGuard matches `X != nil` (or `nil != X`) where X relates to the
// field being checked.
func isNilGuard(cond ast.Expr, mentions func(ast.Expr) bool) bool {
	be, ok := cond.(*ast.BinaryExpr)
	if !ok || be.Op != token.NEQ {
		return false
	}
	isNil := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == "nil"
	}
	switch {
	case isNil(be.X):
		return mentions(be.Y)
	case isNil(be.Y):
		return mentions(be.X)
	}
	return false
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
