// Package analysis is rcclint's static-analysis framework: a stdlib-only
// loader (go/parser + go/types with a chain importer, no go/packages) plus
// the analyzers that guard this repo's recurring concurrency bug classes —
// unclosed operator children, broken lock discipline, mixed atomic/plain
// field access, and metric-name hygiene.
//
// Findings carry file:line:col positions and fail the build (cmd/rcclint
// exits non-zero on any finding). Individual findings are suppressed with a
// comment on the flagged line or the line above it:
//
//	//rcclint:ignore <analyzer> <reason>
//
// The reason is mandatory and the analyzer name must be one of the known
// analyzers; a malformed or unknown-analyzer directive is itself a finding.
package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned at file:line:col.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.File, d.Line, d.Col, d.Message, d.Analyzer)
}

// Reporter accumulates diagnostics for one analyzer.
type Reporter struct {
	analyzer string
	fset     *token.FileSet
	diags    *[]Diagnostic
}

// Reportf records a finding at pos.
func (r *Reporter) Reportf(pos token.Pos, format string, args ...any) {
	p := r.fset.Position(pos)
	*r.diags = append(*r.diags, Diagnostic{
		Analyzer: r.analyzer,
		File:     p.Filename,
		Line:     p.Line,
		Col:      p.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Pass hands one package to one analyzer.
type Pass struct {
	*Reporter
	Pkg *Package
}

// Analyzer is one named check. Run is invoked once per package; Finish, if
// non-nil, once after every package has been seen (for cross-package checks
// such as lock-order cycles and duplicate metric registrations). Analyzers
// carry state between Run calls, so each lint run must use fresh instances
// (see Analyzers).
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
	// Finish runs after all packages; the Reporter positions findings with
	// token.Pos values captured during Run (the FileSet is shared).
	Finish func(*Reporter)
}

// Analyzers returns a fresh instance of every analyzer, in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		NewOperatorClose(),
		NewLockOrder(),
		NewAtomicMix(),
		NewMetricNames(),
		NewWallClock(),
		NewSelVec(),
		NewGoOwnership(),
	}
}

// AnalyzerNames returns the names of all known analyzers, used to validate
// -only flags and ignore directives even when only a subset is enabled.
func AnalyzerNames() []string {
	var out []string
	for _, a := range Analyzers() {
		out = append(out, a.Name)
	}
	return out
}

// ignoreDirective is one parsed //rcclint:ignore comment.
type ignoreDirective struct {
	analyzer string
	reason   string
	file     string
	line     int
	col      int
	bad      string // non-empty if the directive itself is malformed
}

const directivePrefix = "//rcclint:ignore"

// collectDirectives scans every file's comments for ignore directives.
func collectDirectives(pkgs []*Package, known map[string]bool) []ignoreDirective {
	var out []ignoreDirective
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, directivePrefix) {
						continue
					}
					p := pkg.Fset.Position(c.Pos())
					d := ignoreDirective{file: p.Filename, line: p.Line, col: p.Column}
					rest := strings.TrimPrefix(c.Text, directivePrefix)
					fields := strings.Fields(rest)
					switch {
					case len(fields) == 0:
						d.bad = "missing analyzer name and reason"
					case len(fields) == 1:
						d.analyzer = fields[0]
						d.bad = "missing reason"
					default:
						d.analyzer = fields[0]
						d.reason = strings.Join(fields[1:], " ")
					}
					if d.bad == "" && !known[d.analyzer] {
						d.bad = fmt.Sprintf("unknown analyzer %q", d.analyzer)
					}
					out = append(out, d)
				}
			}
		}
	}
	return out
}

// Run applies the analyzers to the packages, resolves ignore directives and
// returns the surviving findings sorted by position. A directive suppresses
// findings of its analyzer on the directive's own line or the line directly
// below it; malformed or unknown-analyzer directives become findings under
// the pseudo-analyzer name "rcclint".
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	if len(pkgs) == 0 {
		return diags
	}
	fset := pkgs[0].Fset
	reporters := make([]*Reporter, len(analyzers))
	for i, a := range analyzers {
		reporters[i] = &Reporter{analyzer: a.Name, fset: fset, diags: &diags}
		for _, pkg := range pkgs {
			a.Run(&Pass{Reporter: reporters[i], Pkg: pkg})
		}
	}
	for i, a := range analyzers {
		if a.Finish != nil {
			a.Finish(reporters[i])
		}
	}

	known := map[string]bool{}
	for _, name := range AnalyzerNames() {
		known[name] = true
	}
	directives := collectDirectives(pkgs, known)

	kept := diags[:0]
	for _, d := range diags {
		suppressed := false
		for _, dir := range directives {
			if dir.bad == "" && dir.analyzer == d.Analyzer && dir.file == d.File &&
				(dir.line == d.Line || dir.line == d.Line-1) {
				suppressed = true
				break
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	diags = kept
	for _, dir := range directives {
		if dir.bad != "" {
			diags = append(diags, Diagnostic{
				Analyzer: "rcclint",
				File:     dir.file,
				Line:     dir.line,
				Col:      dir.col,
				Message:  fmt.Sprintf("bad ignore directive: %s (want //rcclint:ignore <analyzer> <reason>)", dir.bad),
			})
		}
	}

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}
