package analysis

import (
	"go/ast"
	"go/token"
)

// NewSelVec builds the selvec analyzer.
//
// Bug class (PR 6): the columnar engine's selection vectors ([]int32) use
// nil to mean "all rows" and an empty non-nil slice to mean "no rows
// survive". A kernel that builds its output with `dst = dst[:0]` followed
// by conditional appends returns nil when the caller passed a nil dst and
// nothing matched — and the nil flips the meaning from "zero rows" to
// "every row", which is exactly the andKernel regression the PR 6 review
// caught.
//
// The check is an intra-procedural nil-flow analysis over selection-typed
// values. Each variable carries two bits: mayNil (could be nil on some
// path) and produced (this function constructed or resliced it, as opposed
// to passing a caller's value through). A finding fires when a value that
// is both mayNil and produced reaches a selection sink:
//
//   - a return at a []int32 result position whose accompanying error
//     result is nil or absent (error paths may return nil freely);
//   - an assignment or composite-literal key targeting a field named Sel.
//
// Pass-throughs (`return cand`, `b.Sel = in.Sel`) are not produced and
// stay legal; an explicit nil literal at a sink is an intentional
// "all rows" and is also not flagged. Results of calls to other functions
// are trusted non-nil, because their producers are lint-enforced under the
// same contract. The canonical fix is resetting through a non-nil empty
// selection (exec's emptySel) instead of `dst[:0]` on a possibly-nil dst.
func NewSelVec() *Analyzer {
	return &Analyzer{
		Name: "selvec",
		Doc:  "selection-vector producers must not return nil to mean \"no rows survive\" (nil reads as \"all rows\")",
		Run:  runSelVec,
	}
}

// selState is the per-variable dataflow state.
type selState struct {
	mayNil   bool
	produced bool
}

// selFlow analyzes one function body against one signature.
type selFlow struct {
	pass  *Pass
	ftype *ast.FuncType
	// selResults are the []int32 result positions; errResult the index of a
	// trailing error result, or -1.
	selResults []int
	errResult  int
}

// isSelTypeExpr reports whether a type expression denotes []int32 (the
// selection-vector spelling used across the columnar engine).
func isSelTypeExpr(e ast.Expr) bool {
	arr, ok := e.(*ast.ArrayType)
	if !ok || arr.Len != nil {
		return false
	}
	id, ok := arr.Elt.(*ast.Ident)
	return ok && id.Name == "int32"
}

func runSelVec(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// Analyze the declaration and every function literal inside it
			// (kernel constructors return closures; the closure body is where
			// the contract lives) as independent functions.
			analyzeSelFn(pass, fd.Type, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					analyzeSelFn(pass, fl.Type, fl.Body)
				}
				return true
			})
		}
	}
}

func analyzeSelFn(pass *Pass, ftype *ast.FuncType, body *ast.BlockStmt) {
	sf := &selFlow{pass: pass, ftype: ftype, errResult: -1}
	if ftype.Results != nil {
		pos := 0
		for _, field := range ftype.Results.List {
			n := len(field.Names)
			if n == 0 {
				n = 1
			}
			for i := 0; i < n; i++ {
				if isSelTypeExpr(field.Type) {
					sf.selResults = append(sf.selResults, pos)
				}
				if id, ok := field.Type.(*ast.Ident); ok && id.Name == "error" {
					sf.errResult = pos
				}
				pos++
			}
		}
	}

	state := map[string]selState{}
	if ftype.Params != nil {
		for _, field := range ftype.Params.List {
			if !isSelTypeExpr(field.Type) {
				continue
			}
			for _, name := range field.Names {
				// A caller's selection may be nil ("all rows"); passing it
				// through unchanged is legal, so produced stays false.
				state[name.Name] = selState{mayNil: true, produced: false}
			}
		}
	}
	sf.walkBlock(body.List, state)
}

// exprState evaluates the nil-flow state of an expression.
func (sf *selFlow) exprState(e ast.Expr, state map[string]selState) selState {
	switch e := e.(type) {
	case *ast.Ident:
		if e.Name == "nil" {
			return selState{mayNil: true, produced: true}
		}
		return state[e.Name]
	case *ast.ParenExpr:
		return sf.exprState(e.X, state)
	case *ast.SliceExpr:
		// Reslicing keeps the backing pointer: dst[:0] of a nil dst is nil.
		base := sf.exprState(e.X, state)
		return selState{mayNil: base.mayNil, produced: true}
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok {
			switch id.Name {
			case "append":
				if len(e.Args) == 0 {
					return selState{}
				}
				base := sf.exprState(e.Args[0], state)
				if len(e.Args) > 1 && e.Ellipsis == token.NoPos {
					// Appending at least one element allocates if needed.
					return selState{mayNil: false, produced: true}
				}
				// append(a, b...) with an empty b keeps a's nilness.
				return selState{mayNil: base.mayNil, produced: true}
			case "make":
				return selState{mayNil: false, produced: true}
			}
		}
		// Other calls: trust lint-enforced producers to return non-nil.
		return selState{}
	case *ast.CompositeLit:
		return selState{mayNil: false, produced: true}
	}
	return selState{}
}

func copySelState(state map[string]selState) map[string]selState {
	out := make(map[string]selState, len(state))
	for k, v := range state {
		out[k] = v
	}
	return out
}

// mergeSelState unions may-nil (and produced) over both branches.
func mergeSelState(dst, a, b map[string]selState) {
	names := map[string]bool{}
	for k := range a {
		names[k] = true
	}
	for k := range b {
		names[k] = true
	}
	for k := range names {
		sa, sb := a[k], b[k]
		dst[k] = selState{mayNil: sa.mayNil || sb.mayNil, produced: sa.produced || sb.produced}
	}
}

// terminates reports whether a block always leaves the enclosing scope
// (return, break/continue/goto, or panic) — its state does not flow past
// the statement that contains it.
func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch s := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// nilCheckVar matches `x == nil` / `x != nil` conditions on tracked idents,
// returning the variable name and whether equality means nil.
func nilCheckVar(cond ast.Expr) (name string, eqNil, ok bool) {
	bin, isBin := cond.(*ast.BinaryExpr)
	if !isBin || (bin.Op != token.EQL && bin.Op != token.NEQ) {
		return "", false, false
	}
	x, y := bin.X, bin.Y
	if id, isID := y.(*ast.Ident); isID && id.Name == "nil" {
		if v, isV := x.(*ast.Ident); isV {
			return v.Name, bin.Op == token.EQL, true
		}
	}
	if id, isID := x.(*ast.Ident); isID && id.Name == "nil" {
		if v, isV := y.(*ast.Ident); isV {
			return v.Name, bin.Op == token.EQL, true
		}
	}
	return "", false, false
}

func (sf *selFlow) walkBlock(stmts []ast.Stmt, state map[string]selState) {
	for _, stmt := range stmts {
		sf.walkStmt(stmt, state)
	}
}

func (sf *selFlow) walkStmt(stmt ast.Stmt, state map[string]selState) {
	// Composite-literal Sel: fields are a sink wherever they appear in this
	// statement (function literals have their own analysis).
	sf.checkSelKeys(stmt, state)

	switch s := stmt.(type) {
	case *ast.BlockStmt:
		sf.walkBlock(s.List, state)
	case *ast.AssignStmt:
		sf.walkAssign(s, state)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					switch {
					case i < len(vs.Values):
						state[name.Name] = sf.exprState(vs.Values[i], state)
					case isSelTypeExpr(vs.Type):
						// var dst []int32 — zero value is nil.
						state[name.Name] = selState{mayNil: true, produced: true}
					}
				}
			}
		}
	case *ast.IfStmt:
		if s.Init != nil {
			sf.walkStmt(s.Init, state)
		}
		thenState := copySelState(state)
		elseState := copySelState(state)
		if name, eqNil, ok := nilCheckVar(s.Cond); ok {
			if v, tracked := state[name]; tracked {
				if eqNil {
					elseState[name] = selState{mayNil: false, produced: v.produced}
				} else {
					thenState[name] = selState{mayNil: false, produced: v.produced}
				}
			}
		}
		sf.walkBlock(s.Body.List, thenState)
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			sf.walkBlock(e.List, elseState)
			switch {
			case terminates(s.Body.List):
				// Only the else branch falls through (or neither does, in
				// which case the post-state is unreachable anyway).
				mergeSelState(state, elseState, elseState)
			case terminates(e.List):
				mergeSelState(state, thenState, thenState)
			default:
				mergeSelState(state, thenState, elseState)
			}
		case *ast.IfStmt:
			sf.walkStmt(e, elseState)
			mergeSelState(state, thenState, elseState)
		default:
			if terminates(s.Body.List) {
				mergeSelState(state, elseState, elseState)
			} else {
				mergeSelState(state, thenState, elseState)
			}
		}
	case *ast.ForStmt:
		if s.Init != nil {
			sf.walkStmt(s.Init, state)
		}
		bodyState := copySelState(state)
		sf.walkBlock(s.Body.List, bodyState)
		if s.Post != nil {
			sf.walkStmt(s.Post, bodyState)
		}
		mergeSelState(state, state, bodyState)
	case *ast.RangeStmt:
		bodyState := copySelState(state)
		sf.walkBlock(s.Body.List, bodyState)
		mergeSelState(state, state, bodyState)
	case *ast.SwitchStmt:
		sf.walkCases(selCaseBodies(s.Body), state, switchHasDefault(s.Body))
	case *ast.TypeSwitchStmt:
		sf.walkCases(selCaseBodies(s.Body), state, switchHasDefault(s.Body))
	case *ast.SelectStmt:
		sf.walkCases(selCommBodies(s.Body), state, true)
	case *ast.ReturnStmt:
		sf.checkReturn(s, state)
	case *ast.LabeledStmt:
		sf.walkStmt(s.Stmt, state)
	}
}

func selCaseBodies(body *ast.BlockStmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			out = append(out, cc.Body)
		}
	}
	return out
}

func selCommBodies(body *ast.BlockStmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	for _, c := range body.List {
		if cc, ok := c.(*ast.CommClause); ok {
			out = append(out, cc.Body)
		}
	}
	return out
}

func switchHasDefault(body *ast.BlockStmt) bool {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

func (sf *selFlow) walkCases(bodies [][]ast.Stmt, state map[string]selState, hasDefault bool) {
	// Without a default clause the implicit empty case keeps the pre-switch
	// state live, so it participates in the merge from the start.
	merged := copySelState(state)
	first := hasDefault
	for _, body := range bodies {
		cs := copySelState(state)
		sf.walkBlock(body, cs)
		if terminates(body) {
			continue
		}
		if first {
			merged = cs
			first = false
		} else {
			mergeSelState(merged, merged, cs)
		}
	}
	for k, v := range merged {
		state[k] = v
	}
}

func (sf *selFlow) walkAssign(s *ast.AssignStmt, state map[string]selState) {
	multiCall := len(s.Rhs) == 1 && len(s.Lhs) > 1
	for i, lhs := range s.Lhs {
		var rhsState selState
		var rhs ast.Expr
		switch {
		case multiCall:
			// x, err := f(...): trust the lint-enforced producer.
			rhsState = selState{}
		case i < len(s.Rhs):
			rhs = s.Rhs[i]
			rhsState = sf.exprState(rhs, state)
		}
		switch l := lhs.(type) {
		case *ast.Ident:
			if l.Name == "_" {
				continue
			}
			state[l.Name] = rhsState
		case *ast.SelectorExpr:
			if l.Sel.Name != "Sel" {
				continue
			}
			// An explicit nil literal is an intentional "all rows".
			if id, ok := rhs.(*ast.Ident); ok && id.Name == "nil" {
				continue
			}
			if rhsState.mayNil && rhsState.produced {
				sf.pass.Reportf(lhs.Pos(), "possibly nil selection stored in %s.Sel: nil means \"all rows\"; reset through the canonical empty selection (emptySel) so zero survivors stay zero", renderExpr(l.X))
			}
		}
	}
}

// checkSelKeys flags Sel: fields in composite literals built from a
// possibly-nil produced selection (e.g. Batch{Sel: dst}).
func (sf *selFlow) checkSelKeys(stmt ast.Stmt, state map[string]selState) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // analyzed independently
		}
		// Nested statements are walked (and checked) on their own by
		// walkStmt; descending into them here would double-report.
		if sub, ok := n.(ast.Stmt); ok && sub != stmt {
			return false
		}
		kv, ok := n.(*ast.KeyValueExpr)
		if !ok {
			return true
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || key.Name != "Sel" {
			return true
		}
		id, ok := kv.Value.(*ast.Ident)
		if !ok {
			return true
		}
		if v := state[id.Name]; v.mayNil && v.produced {
			sf.pass.Reportf(kv.Pos(), "possibly nil selection stored in Sel: nil means \"all rows\"; reset through the canonical empty selection (emptySel) so zero survivors stay zero")
		}
		return true
	})
}

func (sf *selFlow) checkReturn(s *ast.ReturnStmt, state map[string]selState) {
	if len(sf.selResults) == 0 || len(s.Results) == 0 {
		return
	}
	// An error path may return whatever it likes in the data positions.
	if sf.errResult >= 0 && sf.errResult < len(s.Results) {
		if id, ok := s.Results[sf.errResult].(*ast.Ident); !ok || id.Name != "nil" {
			return
		}
	}
	for _, pos := range sf.selResults {
		if pos >= len(s.Results) {
			continue
		}
		id, ok := s.Results[pos].(*ast.Ident)
		if !ok || id.Name == "nil" {
			// Direct nil literal: an intentional "all rows".
			continue
		}
		if v := state[id.Name]; v.mayNil && v.produced {
			sf.pass.Reportf(s.Results[pos].Pos(), "possibly nil selection returned from a producer: nil means \"all rows\" under the selection contract; reset %s through the canonical empty selection (emptySel) before returning", id.Name)
		}
	}
}
