package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file holds the call-graph machinery shared by the cross-package
// analyzers: function identity (funcID), callee resolution with the
// bare-name fallback for interface calls (calleeCandidates), and a generic
// module-wide graph (callGraph) with a backward-reachability fixpoint
// (propagate). lockorder uses the identity/resolution helpers for its
// lock-acquisition graph; wallclock builds a callGraph to carry "reaches
// wall clock" taint from helpers to their deterministic entry points.

// funcID names a function or method uniquely across the module:
// importpath.F for functions, importpath.(T).M for methods.
func funcID(pkg *Package, fd *ast.FuncDecl) string {
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		if tn := recvTypeName(fd.Recv.List[0].Type); tn != "" {
			return pkg.ImportPath + ".(" + tn + ")." + fd.Name.Name
		}
	}
	return pkg.ImportPath + "." + fd.Name.Name
}

// recvTypeName extracts the bare receiver type name from a receiver type
// expression (*T, T, or a generic T[...]).
func recvTypeName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.StarExpr:
		return recvTypeName(t.X)
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr: // generic receiver
		return recvTypeName(t.X)
	}
	return ""
}

// calleeCandidates resolves x.M() to summary keys. With type information
// the receiver's named type gives an exact key; otherwise (or for interface
// receivers) the call is matched by bare method name across the module,
// signalled by a leading "?".
func calleeCandidates(pass *Pass, sel *ast.SelectorExpr) []string {
	name := sel.Sel.Name
	// Package-qualified call pkg.F().
	if id, ok := sel.X.(*ast.Ident); ok && pass.Pkg.Info != nil {
		if pn, ok := pass.Pkg.Info.Uses[id].(*types.PkgName); ok {
			return []string{pn.Imported().Path() + "." + name}
		}
	}
	if pass.Pkg.Info != nil {
		if tv, ok := pass.Pkg.Info.Types[sel.X]; ok && tv.Type != nil {
			t := tv.Type
			for {
				if p, ok := t.(*types.Pointer); ok {
					t = p.Elem()
					continue
				}
				break
			}
			if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
				// A named interface has no method bodies of its own; match
				// its calls by bare name against every implementation.
				if _, isIface := named.Underlying().(*types.Interface); isIface {
					return []string{"?" + name}
				}
				return []string{named.Obj().Pkg().Path() + ".(" + named.Obj().Name() + ")." + name}
			}
			if _, ok := t.(*types.Interface); ok {
				return []string{"?" + name}
			}
		}
	}
	return []string{"?" + name}
}

// renderExpr renders simple expressions (idents, selectors, index exprs)
// for stable diagnostic keys.
func renderExpr(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return renderExpr(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return renderExpr(e.X) + "[...]"
	case *ast.ParenExpr:
		return renderExpr(e.X)
	case *ast.StarExpr:
		return renderExpr(e.X)
	case *ast.CallExpr:
		return renderExpr(e.Fun) + "()"
	}
	return "?"
}

// cgCall is one outgoing call site recorded in a call-graph node.
type cgCall struct {
	callees []string // candidate node ids; leading "?" = bare-name match
	pos     token.Pos
}

// cgNode is one function in the module-wide call graph. Function literals
// fold into their enclosing declaration: for reachability properties a
// closure's body is part of the function that creates it.
type cgNode struct {
	id    string
	pkg   string // import path
	pos   token.Pos
	calls []cgCall
}

// callGraph accumulates function nodes across packages during an
// analyzer's Run phase and resolves call edges in Finish, once every
// package (and therefore every bare-name candidate) has been seen.
type callGraph struct {
	nodes  map[string]*cgNode
	byName map[string][]string // bare func/method name -> node ids
}

func newCallGraph() *callGraph {
	return &callGraph{nodes: map[string]*cgNode{}, byName: map[string][]string{}}
}

// addFunc records one function declaration as a graph node, collecting
// every call in its body (including inside nested function literals).
// visit, if non-nil, is invoked for each body node so the analyzer can
// piggyback its own per-function scan on the same walk; returning false
// prunes the subtree for both.
func (cg *callGraph) addFunc(pass *Pass, fd *ast.FuncDecl, visit func(ast.Node) bool) *cgNode {
	id := funcID(pass.Pkg, fd)
	node := &cgNode{id: id, pkg: pass.Pkg.ImportPath, pos: fd.Pos()}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if visit != nil && !visit(n) {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			node.calls = append(node.calls, cgCall{
				callees: []string{pass.Pkg.ImportPath + "." + fun.Name},
				pos:     call.Pos(),
			})
		case *ast.SelectorExpr:
			node.calls = append(node.calls, cgCall{
				callees: calleeCandidates(pass, fun),
				pos:     call.Pos(),
			})
		}
		return true
	})
	cg.nodes[id] = node
	cg.byName[fd.Name.Name] = append(cg.byName[fd.Name.Name], id)
	return node
}

// resolve maps one callee candidate to its graph nodes: exact ids resolve
// directly, "?name" candidates fan out to every function with that bare
// name anywhere in the module.
func (cg *callGraph) resolve(callee string) []*cgNode {
	if len(callee) > 0 && callee[0] == '?' {
		var out []*cgNode
		for _, id := range cg.byName[callee[1:]] {
			out = append(out, cg.nodes[id])
		}
		return out
	}
	if n, ok := cg.nodes[callee]; ok {
		return []*cgNode{n}
	}
	return nil
}

// propagate computes the backward-reachability fixpoint of a property:
// starting from the seeded node ids, a node acquires the property when any
// of its calls can reach a node that has it — unless barrier(node) is true,
// which stops the property from flowing through that node (used to model
// sanctioned wrappers such as internal/vclock). The returned map records,
// per tainted node id, the call position through which the property first
// arrived (the seed position for seeded nodes).
func (cg *callGraph) propagate(seeds map[string]token.Pos, barrier func(*cgNode) bool) map[string]token.Pos {
	tainted := map[string]token.Pos{}
	for id, pos := range seeds {
		if n, ok := cg.nodes[id]; ok && barrier != nil && barrier(n) {
			continue
		}
		tainted[id] = pos
	}
	for changed, rounds := true, 0; changed && rounds < 30; rounds++ {
		changed = false
		for _, n := range cg.nodes {
			if _, ok := tainted[n.id]; ok {
				continue
			}
			if barrier != nil && barrier(n) {
				continue
			}
			for _, call := range n.calls {
				for _, c := range call.callees {
					for _, callee := range cg.resolve(c) {
						if _, ok := tainted[callee.id]; ok {
							tainted[n.id] = call.pos
							changed = true
						}
					}
				}
			}
		}
	}
	return tainted
}
