package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file holds intra-procedural dataflow helpers shared by the
// analyzers: field-reference resolution (atomicmix, selvec) and the
// fresh-construction escape check (atomicmix). The selection-vector
// nil-flow engine builds on the same conventions in selvec.go.

// fieldRefOf resolves a selector x.f to (struct type in this package, f).
// Type information is preferred; the syntactic fallback handles method
// receivers when the checker could not resolve the expression.
func fieldRefOf(pass *Pass, fd *ast.FuncDecl, sel *ast.SelectorExpr) (fieldRef, bool) {
	if pass.Pkg.Info != nil {
		if tv, ok := pass.Pkg.Info.Types[sel.X]; ok && tv.Type != nil {
			t := tv.Type
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				if _, isStruct := named.Underlying().(*types.Struct); isStruct &&
					named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == pass.Pkg.ImportPath {
					return fieldRef{typeName: named.Obj().Name(), field: sel.Sel.Name}, true
				}
			}
			return fieldRef{}, false
		}
	}
	// Fallback: receiver selector in a method.
	if id, ok := sel.X.(*ast.Ident); ok && fd.Recv != nil && len(fd.Recv.List) > 0 {
		if len(fd.Recv.List[0].Names) > 0 && fd.Recv.List[0].Names[0].Name == id.Name {
			if tn := recvTypeName(fd.Recv.List[0].Type); tn != "" {
				return fieldRef{typeName: tn, field: sel.Sel.Name}, true
			}
		}
	}
	return fieldRef{}, false
}

// freshlyConstructed returns local variable names assigned from a composite
// literal in this function — values not yet visible to other goroutines,
// whose plain initialization is safe.
func freshlyConstructed(fd *ast.FuncDecl) map[string]bool {
	out := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE {
			return true
		}
		for i, lhs := range as.Lhs {
			if i >= len(as.Rhs) {
				break
			}
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			rhs := as.Rhs[i]
			if un, ok := rhs.(*ast.UnaryExpr); ok && un.Op == token.AND {
				rhs = un.X
			}
			if _, ok := rhs.(*ast.CompositeLit); ok {
				out[id.Name] = true
			}
		}
		return true
	})
	return out
}
