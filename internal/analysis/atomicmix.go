package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// NewAtomicMix builds the atomicmix analyzer.
//
// Bug class (PR 2): a struct field written with plain stores in one place
// and read through sync/atomic (or vice versa) elsewhere — mixed access
// gives none of the atomicity the atomic side was after, and is exactly the
// GuardTime/ChosenIndex race the guard-decision refactor fixed.
//
// The check: any field that appears as &x.f in a sync/atomic call is an
// "atomic field"; every other plain selector access to the same
// (struct, field) in the package is flagged. A plain access on a value
// freshly constructed in the same function (composite literal not yet
// shared) is exempt, since initialization before publication is safe.
func NewAtomicMix() *Analyzer {
	return &Analyzer{
		Name: "atomicmix",
		Doc:  "struct fields accessed through sync/atomic must not also be accessed plainly",
		Run:  runAtomicMix,
	}
}

// atomicFns is the set of sync/atomic functions whose first argument is the
// address of the protected word.
func isAtomicFnName(name string) bool {
	for _, prefix := range []string{"Load", "Store", "Add", "Swap", "CompareAndSwap", "And", "Or"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

type fieldRef struct {
	typeName string
	field    string
}

type fieldSite struct {
	ref fieldRef
	pos token.Pos
}

func runAtomicMix(pass *Pass) {
	// Name(s) the sync/atomic import goes by in each file.
	atomicNames := func(f *ast.File) map[string]bool {
		names := map[string]bool{}
		for _, imp := range f.Imports {
			if strings.Trim(imp.Path.Value, `"`) != "sync/atomic" {
				continue
			}
			if imp.Name != nil {
				names[imp.Name.Name] = true
			} else {
				names["atomic"] = true
			}
		}
		return names
	}

	atomicFields := map[fieldRef]token.Pos{} // first atomic site per field
	var atomicArgs []ast.Expr                // the &x.f operands themselves (excluded from plain sites)

	resolveRef := func(fd *ast.FuncDecl, sel *ast.SelectorExpr) (fieldRef, bool) {
		return fieldRefOf(pass, fd, sel)
	}

	// Pass 1: atomic call sites.
	for _, f := range pass.Pkg.Files {
		names := atomicNames(f)
		if len(names) == 0 {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				fun, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || !isAtomicFnName(fun.Sel.Name) {
					return true
				}
				pkgID, ok := fun.X.(*ast.Ident)
				if !ok || !names[pkgID.Name] {
					return true
				}
				for _, arg := range call.Args {
					un, ok := arg.(*ast.UnaryExpr)
					if !ok || un.Op != token.AND {
						continue
					}
					sel, ok := un.X.(*ast.SelectorExpr)
					if !ok {
						continue
					}
					if ref, ok := resolveRef(fd, sel); ok {
						if _, seen := atomicFields[ref]; !seen {
							atomicFields[ref] = sel.Pos()
						}
						atomicArgs = append(atomicArgs, sel)
					}
				}
				return true
			})
		}
	}
	if len(atomicFields) == 0 {
		return
	}
	isAtomicArg := func(sel ast.Expr) bool {
		for _, a := range atomicArgs {
			if a == sel {
				return true
			}
		}
		return false
	}

	// Pass 2: plain accesses to the same fields.
	var sites []fieldSite
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fresh := freshlyConstructed(fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || isAtomicArg(sel) {
					return true
				}
				ref, ok := resolveRef(fd, sel)
				if !ok {
					return true
				}
				if _, hot := atomicFields[ref]; !hot {
					return true
				}
				if base, ok := sel.X.(*ast.Ident); ok && fresh[base.Name] {
					return true // init before publication
				}
				sites = append(sites, fieldSite{ref: ref, pos: sel.Pos()})
				return true
			})
		}
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i].pos < sites[j].pos })
	for _, s := range sites {
		ap := pass.Pkg.Fset.Position(atomicFields[s.ref])
		pass.Reportf(s.pos, "field %s.%s is accessed with sync/atomic (%s) but plainly here; mixed access races",
			s.ref.typeName, s.ref.field, fmt.Sprintf("%s:%d", filepath.Base(ap.Filename), ap.Line))
	}
}

