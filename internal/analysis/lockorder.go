package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// NewLockOrder builds the lockorder analyzer.
//
// Per function it pairs Lock/Unlock (and RLock/RUnlock) calls on the same
// lock and flags: a lock with no unlock on any path, a non-deferred unlock
// with an early return between it and the lock, and a re-lock of a plain
// mutex already held. Across the module it builds a lock-acquisition graph
// — an edge A→B when some function acquires B (directly or through a call
// chain, including interface calls resolved by method name) while holding A
// — and flags cycles, the deadlock candidates between mtcache, repl and
// obs.
func NewLockOrder() *Analyzer {
	lo := &lockOrder{
		funcs:  map[string]*funcSummary{},
		byName: map[string][]string{},
	}
	return &Analyzer{
		Name:   "lockorder",
		Doc:    "locks must be released on every path and acquired in a cycle-free order",
		Run:    lo.run,
		Finish: lo.finish,
	}
}

const (
	opLock = iota
	opUnlock
)

const (
	classWrite = iota
	classRead
)

// lockEv is one Lock/Unlock call in a function body, in source order.
type lockEv struct {
	key      string
	class    int
	op       int
	pos      token.Pos
	deferred bool
}

// callEv is one function/method call with the set of locks held at it.
type callEv struct {
	held []string
	// callees lists candidate summary keys; a leading "?" entry means an
	// unresolved method call matched by bare name against every method in
	// the module (how interface calls like HeartbeatSink.SetLastSync reach
	// their implementations).
	callees []string
	pos     token.Pos
}

type funcSummary struct {
	id       string
	pkg      string
	acquires map[string]token.Pos // keys locked directly in this function
	calls    []callEv
	edges    []lockEdge // direct nesting: lock B taken while A held
	// may is the fixpoint "may acquire" set (filled during finish).
	may map[string]token.Pos
}

// lockEdge is one lock-acquisition-order edge: from is held while to is
// acquired; via describes the function (or call chain) responsible.
type lockEdge struct {
	from, to string
	pos      token.Pos
	via      string
}

type lockOrder struct {
	funcs  map[string]*funcSummary
	byName map[string][]string // bare method/func name -> summary ids
}

func (lo *lockOrder) run(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			id := funcID(pass.Pkg, fd)
			lo.analyzeFunc(pass, id, fd.Name.Name, fd, fd.Body)
			// Function literals get their own intra-function checks; they do
			// not join the call graph (nobody calls them by name).
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					pos := pass.Pkg.Fset.Position(lit.Pos())
					litID := fmt.Sprintf("%s.funclit@%d", id, pos.Line)
					lo.analyzeFunc(pass, litID, "", fd, lit.Body)
					return false
				}
				return true
			})
		}
	}
}

// analyzeFunc collects lock events and calls for one body, runs the
// intra-function checks, and records the summary for the cross-package
// phase.
func (lo *lockOrder) analyzeFunc(pass *Pass, id, bareName string, fd *ast.FuncDecl, body *ast.BlockStmt) {
	recvName := ""
	recvType := ""
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		recvType = recvTypeName(fd.Recv.List[0].Type)
		if len(fd.Recv.List[0].Names) > 0 {
			recvName = fd.Recv.List[0].Names[0].Name
		}
	}
	sum := &funcSummary{id: id, pkg: pass.Pkg.ImportPath, acquires: map[string]token.Pos{}}
	var events []lockEv

	held := func() []string {
		counts := map[string]int{}
		for _, ev := range events {
			if ev.op == opLock {
				counts[ev.key]++
			} else if !ev.deferred {
				counts[ev.key]--
			}
		}
		var out []string
		for k, c := range counts {
			if c > 0 {
				out = append(out, k)
			}
		}
		sort.Strings(out)
		return out
	}

	var walk func(n ast.Node, deferred bool)
	walk = func(n ast.Node, deferred bool) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false // analyzed separately
			case *ast.DeferStmt:
				if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
					walk(lit.Body, true)
					return false
				}
				walk(n.Call, true)
				return false
			case *ast.CallExpr:
				sel, ok := n.Fun.(*ast.SelectorExpr)
				if !ok {
					// Plain function call f(...): same-package candidate
					// (builtins and locals simply resolve to no summary).
					if fid, ok := n.Fun.(*ast.Ident); ok {
						sum.calls = append(sum.calls, callEv{
							held:    held(),
							callees: []string{pass.Pkg.ImportPath + "." + fid.Name},
							pos:     n.Pos(),
						})
					}
					return true
				}
				name := sel.Sel.Name
				if name == "Lock" || name == "Unlock" || name == "RLock" || name == "RUnlock" {
					key := lockKey(pass, sel.X, recvName, recvType)
					ev := lockEv{key: key, pos: n.Pos(), deferred: deferred}
					if name == "RLock" || name == "RUnlock" {
						ev.class = classRead
					}
					if name == "Lock" || name == "RLock" {
						ev.op = opLock
						if _, ok := sum.acquires[key]; !ok {
							sum.acquires[key] = n.Pos()
						}
						for _, h := range held() {
							if h == key {
								// Re-locking a plain mutex already held on
								// this path deadlocks immediately.
								if ev.class == classWrite {
									pass.Reportf(n.Pos(), "%s is locked again while already held on this path (self-deadlock)", key)
								}
							} else {
								sum.edges = append(sum.edges, lockEdge{from: h, to: key, pos: n.Pos(), via: id})
							}
						}
					} else {
						ev.op = opUnlock
					}
					events = append(events, ev)
					return true
				}
				// Method call x.M(...): resolve the receiver type when the
				// checker managed to, else match by bare method name.
				sum.calls = append(sum.calls, callEv{
					held:    held(),
					callees: calleeCandidates(pass, sel),
					pos:     n.Pos(),
				})
				return true
			}
			return true
		})
	}
	walk(body, false)

	lo.checkPairs(pass, body, events)

	if bareName != "" {
		lo.funcs[id] = sum
		lo.byName[bareName] = append(lo.byName[bareName], id)
	}
}

// lockKey names the lock a .Lock()/.Unlock() call targets, as stably as the
// available information allows: owning named type plus field path when the
// checker resolved it, else a receiver-type-qualified or package-qualified
// rendering of the expression.
func lockKey(pass *Pass, x ast.Expr, recvName, recvType string) string {
	if sel, ok := x.(*ast.SelectorExpr); ok {
		if pass.Pkg.Info != nil {
			if tv, ok := pass.Pkg.Info.Types[sel.X]; ok && tv.Type != nil {
				t := tv.Type
				if p, ok := t.(*types.Pointer); ok {
					t = p.Elem()
				}
				if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
					return named.Obj().Pkg().Path() + ".(" + named.Obj().Name() + ")." + sel.Sel.Name
				}
			}
		}
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == recvName && recvType != "" {
			return pass.Pkg.ImportPath + ".(" + recvType + ")." + sel.Sel.Name
		}
		return pass.Pkg.ImportPath + "." + renderExpr(x)
	}
	if id, ok := x.(*ast.Ident); ok {
		return pass.Pkg.ImportPath + "." + id.Name
	}
	return pass.Pkg.ImportPath + "." + renderExpr(x)
}

// checkPairs runs the intra-function lock/unlock pairing checks.
func (lo *lockOrder) checkPairs(pass *Pass, body *ast.BlockStmt, events []lockEv) {
	// Collect return positions outside nested function literals.
	var returns []token.Pos
	var skip []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			skip = append(skip, lit)
			return false
		}
		if r, ok := n.(*ast.ReturnStmt); ok {
			returns = append(returns, r.Pos())
		}
		return true
	})

	type pairClass struct {
		key   string
		class int
	}
	byKey := map[pairClass][]lockEv{}
	for _, ev := range events {
		pc := pairClass{ev.key, ev.class}
		byKey[pc] = append(byKey[pc], ev)
	}
	var keys []pairClass
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].key != keys[j].key {
			return keys[i].key < keys[j].key
		}
		return keys[i].class < keys[j].class
	})
	for _, pc := range keys {
		evs := byKey[pc]
		deferredUnlock := false
		for _, ev := range evs {
			if ev.op == opUnlock && ev.deferred {
				deferredUnlock = true
			}
		}
		usedUnlocks := map[int]bool{}
		verb := "Lock"
		if pc.class == classRead {
			verb = "RLock"
		}
		for _, ev := range evs {
			if ev.op != opLock {
				continue
			}
			if deferredUnlock {
				continue // defer covers every path after the Lock
			}
			// Match the nearest later, unused, non-deferred unlock.
			matched := -1
			for i, u := range evs {
				if u.op == opUnlock && !u.deferred && u.pos > ev.pos && !usedUnlocks[i] {
					matched = i
					break
				}
			}
			if matched < 0 {
				pass.Reportf(ev.pos, "%s.%s() has no matching unlock in this function; every path out leaks the lock", pc.key, verb)
				continue
			}
			usedUnlocks[matched] = true
			for _, rpos := range returns {
				if ev.pos < rpos && rpos < evs[matched].pos {
					pass.Reportf(rpos, "return between %s.%s() and its non-deferred unlock leaks the lock on this path (use defer)", pc.key, verb)
				}
			}
		}
	}
}

// finish builds the module-wide lock-acquisition graph and reports cycles.
func (lo *lockOrder) finish(r *Reporter) {
	// Fixpoint: may-acquire sets through the call graph.
	for _, s := range lo.funcs {
		s.may = map[string]token.Pos{}
		for k, p := range s.acquires {
			s.may[k] = p
		}
	}
	resolve := func(c string) []*funcSummary {
		if rest, ok := strings.CutPrefix(c, "?"); ok {
			var out []*funcSummary
			for _, id := range lo.byName[rest] {
				out = append(out, lo.funcs[id])
			}
			return out
		}
		if s, ok := lo.funcs[c]; ok {
			return []*funcSummary{s}
		}
		return nil
	}
	for changed, rounds := true, 0; changed && rounds < 20; rounds++ {
		changed = false
		for _, s := range lo.funcs {
			for _, call := range s.calls {
				for _, c := range call.callees {
					for _, callee := range resolve(c) {
						for k := range callee.may {
							if _, ok := s.may[k]; !ok {
								s.may[k] = call.pos
								changed = true
							}
						}
					}
				}
			}
		}
	}

	// Edges: held lock -> acquired lock (direct nesting plus call chains).
	edgeSet := map[string]lockEdge{}
	addEdge := func(e lockEdge) {
		if e.from == e.to {
			return // re-lock through a call chain; too imprecise to flag here
		}
		k := e.from + "\x00" + e.to
		if _, ok := edgeSet[k]; !ok {
			edgeSet[k] = e
		}
	}
	for _, s := range lo.funcs {
		for _, e := range s.edges {
			addEdge(e)
		}
		for _, call := range s.calls {
			if len(call.held) == 0 {
				continue
			}
			for _, c := range call.callees {
				for _, callee := range resolve(c) {
					for k2 := range callee.may {
						for _, h := range call.held {
							addEdge(lockEdge{from: h, to: k2, pos: call.pos, via: s.id + " -> " + callee.id})
						}
					}
				}
			}
		}
	}

	// Cycle detection over the edge graph.
	adj := map[string][]lockEdge{}
	var nodes []string
	seen := map[string]bool{}
	for _, e := range edgeSet {
		adj[e.from] = append(adj[e.from], e)
		for _, n := range []string{e.from, e.to} {
			if !seen[n] {
				seen[n] = true
				nodes = append(nodes, n)
			}
		}
	}
	sort.Strings(nodes)
	for _, es := range adj {
		sort.Slice(es, func(i, j int) bool { return es[i].to < es[j].to })
	}
	reported := map[string]bool{}
	var path []lockEdge
	onStack := map[string]bool{}
	var dfs func(n string)
	dfs = func(n string) {
		onStack[n] = true
		for _, e := range adj[n] {
			if onStack[e.to] {
				// Found a cycle: slice the path from e.to onward.
				var cyc []lockEdge
				start := 0
				for i, pe := range path {
					if pe.from == e.to {
						start = i
						break
					}
				}
				cyc = append(cyc, path[start:]...)
				cyc = append(cyc, e)
				lo.reportCycle(r, cyc, reported)
				continue
			}
			path = append(path, e)
			dfs(e.to)
			path = path[:len(path)-1]
		}
		onStack[n] = false
	}
	for _, n := range nodes {
		dfs(n)
	}
}

func (lo *lockOrder) reportCycle(r *Reporter, cyc []lockEdge, reported map[string]bool) {
	if len(cyc) == 0 {
		return
	}
	names := make([]string, 0, len(cyc))
	for _, e := range cyc {
		names = append(names, e.from)
	}
	canon := append([]string(nil), names...)
	sort.Strings(canon)
	sig := strings.Join(canon, "|")
	if reported[sig] {
		return
	}
	reported[sig] = true
	var desc strings.Builder
	for i, e := range cyc {
		if i > 0 {
			desc.WriteString(", then ")
		}
		fmt.Fprintf(&desc, "%s is held while acquiring %s (%s)", shortLock(e.from), shortLock(e.to), e.via)
	}
	r.Reportf(cyc[0].pos, "lock-order cycle (deadlock candidate): %s", desc.String())
}

// shortLock trims the module prefix from a lock key for readability.
func shortLock(k string) string {
	if i := strings.LastIndexByte(k, '/'); i >= 0 {
		return k[i+1:]
	}
	return k
}
