// Package bad holds operatorclose regression fixtures. SwitchUnion is the
// PR 1 bug shape: Open opens children that Close never releases.
package bad

// Operator mirrors exec.Operator for the fixture; operatorclose matches the
// interface by name.
type Operator interface {
	Open() error
	Next() (int, bool)
	Close() error
}

// SwitchUnion opens every child up front but its Close forgets them all —
// the exact leak the real SwitchUnion shipped with before PR 1 fixed it.
type SwitchUnion struct {
	Children []Operator
	idx      int
}

func (s *SwitchUnion) Open() error {
	for i := range s.Children {
		if err := s.Children[i].Open(); err != nil { // want:operatorclose
			return err
		}
	}
	return nil
}

func (s *SwitchUnion) Next() (int, bool) { return s.Children[s.idx].Next() }

func (s *SwitchUnion) Close() error { return nil }

// CondClose releases its child only under a state flag, so an early-exit
// path (done still false) leaks the opened child.
type CondClose struct {
	Child Operator
	done  bool
}

func (c *CondClose) Open() error { return c.Child.Open() } // want:operatorclose

func (c *CondClose) Next() (int, bool) { return c.Child.Next() }

func (c *CondClose) Close() error {
	if c.done {
		return c.Child.Close()
	}
	return nil
}

// NoClose opens a child but declares no Close method at all.
type NoClose struct { // want:operatorclose
	Child Operator
}

func (n *NoClose) Open() error { return n.Child.Open() }

// VecScan is the vectorized variant of the PR 1 leak: Close releases the
// pooled selection buffer but forgets the opened child operator.
type VecScan struct {
	Child Operator
	sel   []int32
}

func (v *VecScan) Open() error { return v.Child.Open() } // want:operatorclose

func (v *VecScan) Next() (int, bool) { return v.Child.Next() }

func (v *VecScan) Close() error {
	v.sel = nil
	return nil
}
