// Package good holds operator shapes that close correctly; operatorclose
// must report nothing here.
package good

type Operator interface {
	Open() error
	Close() error
}

type BatchOperator interface {
	Open() error
	Close() error
}

func AsBatch(op Operator) BatchOperator { return nil }

// Filter wraps its child in a batch adapter; closing the alias releases the
// underlying child too.
type Filter struct {
	Child  Operator
	bchild BatchOperator
}

func (f *Filter) Open() error {
	f.bchild = AsBatch(f.Child)
	return f.bchild.Open()
}

func (f *Filter) Close() error { return f.bchild.Close() }

// Union hands each opened child to a tracking method on the same receiver,
// and Close drains the tracked set.
type Union struct {
	Children []Operator
	active   Operator
	opened   []Operator
}

func (u *Union) track(op Operator) { u.opened = append(u.opened, op) }

func (u *Union) Open() error {
	u.active = u.Children[0]
	if err := u.active.Open(); err != nil {
		return err
	}
	u.track(u.active)
	return nil
}

func (u *Union) Close() error {
	var first error
	for _, op := range u.opened {
		if err := op.Close(); err != nil && first == nil {
			first = err
		}
	}
	u.opened = u.opened[:0]
	return nil
}

// Guarded closes under a nil-guard of the field itself, which is not a
// foreign condition.
type Guarded struct {
	Child Operator
}

func (g *Guarded) Open() error { return g.Child.Open() }

func (g *Guarded) Close() error {
	if g.Child != nil {
		return g.Child.Close()
	}
	return nil
}

// VecJoin is the vectorized hash-join shape: Close releases the pooled
// match-pair arena on its default path and still propagates Close to both
// children.
type VecJoin struct {
	Left  Operator
	Right Operator
	pairs []int32
}

func (j *VecJoin) Open() error {
	if err := j.Left.Open(); err != nil {
		return err
	}
	return j.Right.Open()
}

func (j *VecJoin) Close() error {
	j.pairs = nil // release the gather arena with the children
	if err := j.Left.Close(); err != nil {
		return err
	}
	return j.Right.Close()
}
