// Package ignoreall exercises //rcclint:ignore across every analyzer in
// the suite: each analyzer has exactly one finding here, suppressed by a
// directive naming it. It also pins the interaction rules — a directive
// only silences its own analyzer (the same line can keep another
// analyzer's finding alive), and malformed directives are findings.
package ignoreall

import (
	"sync"
	"sync/atomic"
	"time"
)

// Operator mirrors exec.Operator; operatorclose matches the interface by
// name.
type Operator interface {
	Open() error
	Next() (int, bool)
	Close() error
}

// PassThrough opens its child and never closes it; the scheduler owns the
// child lifecycle in this (fictional) shape, hence the suppression.
type PassThrough struct {
	Child Operator
}

//rcclint:ignore operatorclose child lifecycle owned by the scheduler in this fixture shape
func (p *PassThrough) Open() error { return p.Child.Open() }

func (p *PassThrough) Next() (int, bool) { return p.Child.Next() }

func (p *PassThrough) Close() error { return nil }

type box struct {
	mu sync.Mutex
	n  int
}

// leak holds the mutex past return; the (fictional) unlock happens on the
// caller's side.
func (b *box) leak() {
	//rcclint:ignore lockorder handed to the caller locked; released by unlockBox
	b.mu.Lock()
	b.n++
}

func (b *box) unlockBox() { b.mu.Unlock() }

type counter struct {
	v int64
}

func (c *counter) inc() { atomic.AddInt64(&c.v, 1) }

func (c *counter) reset() {
	//rcclint:ignore atomicmix init-time store before the counter is published
	c.v = 0
}

// stampReset pins directive isolation: the wallclock directive silences
// the time.Now on its line, but the atomicmix finding on the same line
// (plain store to an atomic field) survives.
func (c *counter) stampReset() {
	//rcclint:ignore wallclock wall timestamp is part of the exported snapshot
	c.v = time.Now().UnixNano() // want:atomicmix
}

type Registry struct{}

func (r *Registry) Counter(name string) *int { return new(int) }

func register(r *Registry) {
	r.Counter("queries_total")
	//rcclint:ignore metricnames legacy dashboard name kept for continuity
	r.Counter("LegacyCamel")
}

// filterPos is the selection-producer shape; this (fictional) helper's
// callers treat nil and empty alike.
func filterPos(cand, dst []int32) []int32 {
	dst = dst[:0]
	for _, r := range cand {
		if r > 0 {
			dst = append(dst, r)
		}
	}
	//rcclint:ignore selvec callers of this helper treat nil and empty alike
	return dst
}

func spawn() {
	//rcclint:ignore goownership fire-and-forget telemetry flush, exits on its own
	go func() {
		println("flush")
	}()
}

func misdirected() {
	//rcclint:ignore nosuchpass this analyzer does not exist
	println("x")
}

func reasonless() {
	//rcclint:ignore selvec
	println("y")
}
