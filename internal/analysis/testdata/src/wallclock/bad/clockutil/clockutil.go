// Package clockutil stands in for an exempt helper (a CLI main's util
// package): its own wall-clock use is allowed, but it is not sanctioned,
// so deterministic callers routing time through it are still flagged at
// their call site.
package clockutil

import "time"

func StampNow() int64 {
	return time.Now().UnixNano()
}
