// Package bad holds the wallclock fixtures: direct wall-clock reads and
// global-rand draws in a deterministic package, plus the call-graph shape
// where determinism leaks through an exempt helper package.
package bad

import (
	"math/rand"
	"time"

	"relaxedcc/internal/analysis/testdata/src/wallclock/bad/clockutil"
)

// Freshness is the paper's currency-bound check gone wrong: comparing
// against the OS clock makes replay diverge between runs.
func Freshness(stamp time.Time, bound time.Duration) bool {
	return time.Since(stamp) < bound // want:wallclock
}

func Deadline() time.Time {
	return time.Now().Add(time.Second) // want:wallclock
}

func Backoff() {
	time.Sleep(10 * time.Millisecond) // want:wallclock
	<-time.After(time.Millisecond)    // want:wallclock
}

func Timers() {
	t := time.NewTimer(time.Second) // want:wallclock
	defer t.Stop()
	tk := time.NewTicker(time.Second) // want:wallclock
	tk.Stop()
}

// Jitter draws from the process-global source; chaos schedules must come
// from a seeded generator instead.
func Jitter(n int) int {
	return rand.Intn(n) // want:wallclock
}

// Stamp reaches wall clock through an exempt helper package: reported
// here, where determinism is lost, not inside the helper.
func Stamp() int64 {
	return clockutil.StampNow() // want:wallclock
}

// localNow is reported at its own direct call; callers are not re-flagged
// (the taint barrier sits on deterministic nodes).
func localNow() time.Time {
	return time.Now() // want:wallclock
}

func UsesLocalNow() time.Time {
	return localNow()
}
