// Package good shows the sanctioned shapes: time through an injected
// vclock.Clock, randomness from an explicitly seeded source, and a
// justified wall-clock site suppressed with a reason.
package good

import (
	"math/rand"
	"time"

	"relaxedcc/internal/vclock"
)

type Sweeper struct {
	Clock vclock.Clock
	Bound time.Duration
}

// Fresh takes the currency decision from the injected clock, so replay
// under vclock.Virtual is byte-identical across runs.
func (s *Sweeper) Fresh(stamp time.Time) bool {
	return s.Clock.Now().Sub(stamp) < s.Bound
}

func (s *Sweeper) Pause(d time.Duration) {
	<-s.Clock.After(d)
}

// Jitter is fine: the caller owns the seed, so the draw sequence replays.
func Jitter(seed int64, n int) int {
	return rand.New(rand.NewSource(seed)).Intn(n)
}

// WallStamp is an ops-surface timestamp, intentionally wall-bound and
// excluded from replay; the directive records the justification.
func WallStamp() int64 {
	//rcclint:ignore wallclock ops-surface timestamp, excluded from replay
	return time.Now().UnixNano()
}
