// Package good holds atomic access patterns that are safe; atomicmix must
// report nothing here.
package good

import "sync/atomic"

type Counter struct {
	hits int64
}

func (c *Counter) Inc() { atomic.AddInt64(&c.hits, 1) }

func (c *Counter) Get() int64 { return atomic.LoadInt64(&c.hits) }

// NewCounter writes the field plainly, but on a freshly constructed value
// not yet visible to other goroutines (initialization before publication).
func NewCounter(seed int64) *Counter {
	c := &Counter{}
	c.hits = seed
	return c
}

// Deque is the work-stealing morsel queue: the packed lo<<32|hi range word
// is only ever touched through sync/atomic, by the owning worker (front)
// and thieves (back) alike; the constructor writes it plainly only before
// publication.
type Deque struct {
	rng uint64
}

func NewDeque(lo, hi uint32) *Deque {
	d := &Deque{}
	d.rng = uint64(lo)<<32 | uint64(hi)
	return d
}

func (d *Deque) PopFront() (uint32, bool) {
	for {
		cur := atomic.LoadUint64(&d.rng)
		lo, hi := uint32(cur>>32), uint32(cur)
		if lo >= hi {
			return 0, false
		}
		if atomic.CompareAndSwapUint64(&d.rng, cur, uint64(lo+1)<<32|uint64(hi)) {
			return lo, true
		}
	}
}

func (d *Deque) StealBack() (uint32, bool) {
	for {
		cur := atomic.LoadUint64(&d.rng)
		lo, hi := uint32(cur>>32), uint32(cur)
		if lo >= hi {
			return 0, false
		}
		if atomic.CompareAndSwapUint64(&d.rng, cur, uint64(lo)<<32|uint64(hi-1)) {
			return hi - 1, true
		}
	}
}
