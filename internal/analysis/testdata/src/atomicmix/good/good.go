// Package good holds atomic access patterns that are safe; atomicmix must
// report nothing here.
package good

import "sync/atomic"

type Counter struct {
	hits int64
}

func (c *Counter) Inc() { atomic.AddInt64(&c.hits, 1) }

func (c *Counter) Get() int64 { return atomic.LoadInt64(&c.hits) }

// NewCounter writes the field plainly, but on a freshly constructed value
// not yet visible to other goroutines (initialization before publication).
func NewCounter(seed int64) *Counter {
	c := &Counter{}
	c.hits = seed
	return c
}
