// Package bad holds the atomicmix regression fixture for the PR 2 bug
// class: GuardDecision fields read through sync/atomic on the hot path but
// written plainly during re-evaluation.
package bad

import "sync/atomic"

type GuardDecision struct {
	GuardTime   int64
	ChosenIndex int64
}

func (g *GuardDecision) Fresh(now int64) bool {
	return atomic.LoadInt64(&g.GuardTime) >= now
}

func (g *GuardDecision) Chosen() int64 {
	return atomic.LoadInt64(&g.ChosenIndex)
}

func (g *GuardDecision) Reeval(now, idx int64) {
	g.GuardTime = now   // want:atomicmix
	g.ChosenIndex = idx // want:atomicmix
}
