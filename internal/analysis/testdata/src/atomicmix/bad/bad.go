// Package bad holds the atomicmix regression fixture for the PR 2 bug
// class: GuardDecision fields read through sync/atomic on the hot path but
// written plainly during re-evaluation.
package bad

import "sync/atomic"

type GuardDecision struct {
	GuardTime   int64
	ChosenIndex int64
}

func (g *GuardDecision) Fresh(now int64) bool {
	return atomic.LoadInt64(&g.GuardTime) >= now
}

func (g *GuardDecision) Chosen() int64 {
	return atomic.LoadInt64(&g.ChosenIndex)
}

func (g *GuardDecision) Reeval(now, idx int64) {
	g.GuardTime = now   // want:atomicmix
	g.ChosenIndex = idx // want:atomicmix
}

// StealQueue is the work-stealing bug shape: thieves CAS the packed range
// word, but the owner pops with a plain read-modify-write on the same
// field, so a steal can race the pop and hand out the same morsel twice.
type StealQueue struct {
	rng uint64
}

func (q *StealQueue) Steal() (uint32, bool) {
	cur := atomic.LoadUint64(&q.rng)
	lo, hi := uint32(cur>>32), uint32(cur)
	if lo >= hi {
		return 0, false
	}
	if atomic.CompareAndSwapUint64(&q.rng, cur, uint64(lo)<<32|uint64(hi-1)) {
		return hi - 1, true
	}
	return 0, false
}

func (q *StealQueue) PopOwn() (uint32, bool) {
	cur := q.rng // want:atomicmix
	lo, hi := uint32(cur>>32), uint32(cur)
	if lo >= hi {
		return 0, false
	}
	q.rng = uint64(lo+1)<<32 | uint64(hi) // want:atomicmix
	return lo, true
}
