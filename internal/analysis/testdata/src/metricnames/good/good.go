// Package good registers metrics the approved way; metricnames must report
// nothing here.
package good

type Registry struct{}

func (r *Registry) Counter(name string) *int         { return new(int) }
func (r *Registry) GaugeVec(name, label string) *int { return new(int) }

const hitPrefix = "cache_"

func register(r *Registry) {
	r.Counter("cache_hits_total")
	r.Counter(hitPrefix + "misses_total")
	r.GaugeVec("cache_bytes", "shard")
}
