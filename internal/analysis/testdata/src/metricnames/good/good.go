// Package good registers metrics the approved way; metricnames must report
// nothing here.
package good

type Registry struct{}

func (r *Registry) Counter(name string) *int             { return new(int) }
func (r *Registry) CounterVec(name, label string) *int   { return new(int) }
func (r *Registry) GaugeVec(name, label string) *int     { return new(int) }
func (r *Registry) Histogram(name string) *int           { return new(int) }
func (r *Registry) HistogramVec(name, label string) *int { return new(int) }

const hitPrefix = "cache_"

func register(r *Registry) {
	r.Counter("cache_hits_total")
	r.Counter(hitPrefix + "misses_total")
	r.GaugeVec("cache_bytes", "shard")
	// The shapes the lifecycle tracer and SLO tracker register.
	r.Counter("trace_sampled_total")
	r.CounterVec("span_events_total", "kind")
	r.GaugeVec("slo_error_budget", "region")
	r.HistogramVec("slo_served_staleness_ns", "region")
	// The shapes the autotuning loop registers: counters carry _total, the
	// target interval is a gauge.
	r.CounterVec("tuner_retunes_total", "region")
	r.CounterVec("tuner_held_total", "region")
	r.GaugeVec("tuner_target_interval_ns", "region")
	// The shapes the delivered-guarantee auditor registers: classification
	// counters with labels, ns-suffixed slack/excess histograms.
	r.Counter("audit_reads_checked_total")
	r.CounterVec("audit_violations_total", "class")
	r.CounterVec("audit_events_dropped_total", "kind")
	r.Histogram("audit_excess_staleness_ns")
	r.Histogram("audit_slack_ns")
}
