// Package bad holds metricnames fixtures: bad casing, a constant that
// folds to a bad name, a kind conflict, a dynamic name, a bad label key,
// a counter missing the _total suffix, and (with bad2.go) a name
// registered from two files.
package bad

type Registry struct{}

func (r *Registry) Counter(name string) *int           { return new(int) }
func (r *Registry) Gauge(name string) *int             { return new(int) }
func (r *Registry) Histogram(name string) *int         { return new(int) }
func (r *Registry) CounterVec(name, label string) *int { return new(int) }

const badPrefix = "Query_"

func register(r *Registry, suffix string) {
	r.Counter("BadCamelCase")      // want:metricnames
	r.Counter(badPrefix + "total") // want:metricnames
	r.Gauge("dup_kind")
	r.Histogram("dup_kind")              // want:metricnames
	r.Counter("dyn_" + suffix)           // want:metricnames
	r.CounterVec("ok_total", "BadLabel") // want:metricnames
	r.Counter("queries_served")          // want:metricnames
	r.Counter("cross_file_total")
	// Tuner-name drift: a retune counter without the _total suffix, and the
	// target-interval gauge re-registered under another kind.
	r.CounterVec("tuner_retunes", "region") // want:metricnames
	r.Gauge("tuner_target_interval_ns")
	r.Histogram("tuner_target_interval_ns") // want:metricnames
	// Auditor-name drift: the violations counter without _total, a camel-case
	// ledger name, a label key that is not lowercase_snake, and the slack
	// histogram re-registered as a gauge.
	r.CounterVec("audit_violations", "class")      // want:metricnames
	r.Counter("audit_readsChecked_total")          // want:metricnames
	r.CounterVec("audit_dropped_total", "perKind") // want:metricnames
	r.Histogram("audit_slack_ns")
	r.Gauge("audit_slack_ns") // want:metricnames
}
