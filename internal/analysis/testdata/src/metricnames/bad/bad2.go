package bad

func registerMore(r *Registry) {
	r.Counter("cross_file_total") // want:metricnames
}
