package bad

func registerMore(r *Registry) {
	r.Counter("cross_file") // want:metricnames
}
