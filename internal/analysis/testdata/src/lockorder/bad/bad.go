// Package bad holds lockorder fixtures for the intra-function checks: a
// lock with no unlock, an early return spanning a non-deferred unlock, and
// a self-deadlocking re-lock.
package bad

import "sync"

type Box struct {
	mu sync.Mutex
	n  int
}

// Leak never releases the mutex.
func (b *Box) Leak() {
	b.mu.Lock() // want:lockorder
	b.n++
}

// Early returns between Lock and a non-deferred Unlock.
func (b *Box) Early(fail bool) int {
	b.mu.Lock()
	if fail {
		return -1 // want:lockorder
	}
	n := b.n
	b.mu.Unlock()
	return n
}

// Relock takes a plain mutex it already holds.
func (b *Box) Relock() {
	b.mu.Lock()
	b.mu.Lock() // want:lockorder
	b.mu.Unlock()
	b.mu.Unlock()
}
