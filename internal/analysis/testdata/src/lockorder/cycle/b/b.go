// Package b completes the cycle started in package a: Notify runs under
// Sink.mu and re-enters a.Hub, whose Publish holds Hub.mu across the
// Notify callback.
package b

import (
	"sync"

	a "relaxedcc/internal/analysis/testdata/src/lockorder/cycle/a"
)

type Sink struct {
	mu  sync.Mutex
	hub *a.Hub
}

func (s *Sink) Notify() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hub.Ack()
}
