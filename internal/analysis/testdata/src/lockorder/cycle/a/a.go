// Package a is half of a cross-package lock-order cycle: Hub.mu is held
// while an interface callback reaches package b, which locks Sink.mu and
// calls back into Hub.Ack.
package a

import "sync"

type Notifier interface {
	Notify()
}

type Hub struct {
	mu   sync.Mutex
	subs []Notifier
}

func (h *Hub) Subscribe(n Notifier) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.subs = append(h.subs, n)
}

func (h *Hub) Publish() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, s := range h.subs {
		s.Notify() // want:lockorder
	}
}

func (h *Hub) Ack() {
	h.mu.Lock()
	defer h.mu.Unlock()
}
