// Package good holds lock patterns the repo uses correctly; lockorder must
// report nothing here.
package good

import "sync"

type Box struct {
	mu sync.Mutex
	n  int
}

func (b *Box) Deferred() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.n
}

func (b *Box) Paired() {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
}

// RBox uses the read-then-upgrade double-check idiom from mtcache.
type RBox struct {
	mu sync.RWMutex
	n  int
}

func (b *RBox) Get() int {
	b.mu.RLock()
	n := b.n
	b.mu.RUnlock()
	if n == 0 {
		b.mu.Lock()
		defer b.mu.Unlock()
		b.n = 1
		return b.n
	}
	return n
}

// DeferredLit releases inside a deferred function literal.
func (b *Box) DeferredLit() int {
	b.mu.Lock()
	defer func() {
		b.mu.Unlock()
	}()
	return b.n
}
