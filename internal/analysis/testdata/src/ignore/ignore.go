// Package ignore exercises the //rcclint:ignore directive machinery: a
// valid directive suppresses exactly the finding on the next line, an
// identical finding elsewhere survives, and an unknown-analyzer directive
// is itself a finding.
package ignore

import "sync/atomic"

type Gauge struct {
	val int64
}

func (g *Gauge) Load() int64 { return atomic.LoadInt64(&g.val) }

func (g *Gauge) SetSuppressed(v int64) {
	//rcclint:ignore atomicmix single-goroutine benchmark writer
	g.val = v
}

func (g *Gauge) SetFlagged(v int64) {
	g.val = v // want:atomicmix
}

func (g *Gauge) SetBadDirective(v int64) {
	//rcclint:ignore nosuchanalyzer bogus target; want:rcclint
	g.val = v // want:atomicmix
}
