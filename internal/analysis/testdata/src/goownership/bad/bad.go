// Package bad holds the goownership fixtures: the PR 4 leak shapes —
// goroutines in a long-lived component with no join or shutdown path.
package bad

import "sync"

// Agent is the live-workload agent shape whose first cut leaked its step
// loop past Close: the spawned body neither counts down a WaitGroup nor
// watches a stop channel.
type Agent struct {
	mu    sync.Mutex
	steps int
}

func (a *Agent) step() {
	a.mu.Lock()
	a.steps++
	a.mu.Unlock()
}

func (a *Agent) Start() {
	go func() { // want:goownership
		for {
			a.step()
		}
	}()
}

// loop has no shutdown-capable parameters, so handing it to `go` is an
// unowned spawn.
func (a *Agent) loop(n int) {
	for i := 0; i < n; i++ {
		a.step()
	}
}

func (a *Agent) StartLoop() {
	go a.loop(100) // want:goownership
}

// StartWorkers has the Add without the Done: the body never counts down,
// so the WaitGroup evidence is missing where it matters.
func (a *Agent) StartWorkers(n int) *sync.WaitGroup {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() { // want:goownership
			a.step()
		}()
	}
	return &wg
}

// DrainSlice ranges over a slice, not a channel — iteration ends but the
// enclosing for keeps the goroutine alive with no owner.
func (a *Agent) DrainSlice(items []int) {
	go func() { // want:goownership
		for {
			for range items {
				a.step()
			}
		}
	}()
}
