// Package good holds the accepted goroutine-ownership shapes: WaitGroup
// join, stop-channel shutdown, collector barrier, clock-waiter
// registration, handoff spawns, and the justified fire-and-forget.
package good

import (
	"sync"
	"time"

	"relaxedcc/internal/vclock"
)

type Pool struct {
	wg    sync.WaitGroup
	tasks chan func()
	out   chan int
	stop  chan struct{}
	clock vclock.Clock
}

// StartWorkers is the parallel-scan shape: Add before spawn, deferred Done
// inside, and the body drains a channel the owner closes.
func (p *Pool) StartWorkers(n int) {
	for i := 0; i < n; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for t := range p.tasks {
				t()
			}
		}()
	}
}

// StartCollector is the barrier shape: the collector outlives the workers
// it joins, then closes the output.
func (p *Pool) StartCollector() {
	go func() {
		p.wg.Wait()
		close(p.out)
	}()
}

// StartTicker watches the stop channel in a select, the canonical
// long-lived loop shutdown.
func (p *Pool) StartTicker(period time.Duration) {
	go func() {
		for {
			select {
			case <-p.stop:
				return
			case <-p.clock.After(period):
			}
		}
	}()
}

// run owns its shutdown through the stop parameter, so handing it off to
// `go` transfers ownership with it.
func (p *Pool) run(stop <-chan struct{}) {
	<-stop
}

func (p *Pool) StartRun() {
	go p.run(p.stop)
}

// StartLogger is a genuinely fire-and-forget goroutine; the directive
// records why that is acceptable here.
func (p *Pool) StartLogger() {
	//rcclint:ignore goownership best-effort startup log line, exits on its own
	go func() {
		_ = len("started")
	}()
}
