// Package broken deliberately fails the type check (the identifier below
// is undefined) while still parsing, so the strict-mode tests can observe
// a package the loader degraded to syntactic-only analysis. Parse errors
// would abort loading outright; a type error is the silent kind -strict
// exists to surface.
package broken

func Sum(xs []int) int {
	total := 0
	for _, x := range xs {
		total += weight(x) // weight is undefined: a deliberate type error
	}
	return total
}
