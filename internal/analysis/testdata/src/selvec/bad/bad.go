// Package bad reproduces the PR 6 selection-contract regressions: kernels
// and helpers that can hand a nil selection to a caller for whom nil means
// "all rows".
package bad

// Batch is a stand-in for the columnar batch: Sel == nil selects all rows.
type Batch struct {
	N   int
	Sel []int32
}

// BoolKernel mirrors the exec kernel shape.
type BoolKernel func(cand, dst []int32) ([]int32, error)

// FilterEven is the andKernel regression shape: dst[:0] of a nil dst stays
// nil, and when no candidate matches, the nil return flips "zero rows"
// into "every row".
func FilterEven(cand, dst []int32) ([]int32, error) {
	dst = dst[:0]
	for _, r := range cand {
		if r%2 == 0 {
			dst = append(dst, r)
		}
	}
	return dst, nil // want:selvec
}

// CompileThreshold returns a closure; the contract lives in the closure
// body, which is analyzed as its own function.
func CompileThreshold(limit int32) BoolKernel {
	return func(cand, dst []int32) ([]int32, error) {
		dst = dst[:0]
		for _, r := range cand {
			if r < limit {
				dst = append(dst, r)
			}
		}
		return dst, nil // want:selvec
	}
}

// ZeroValue leaks the nil zero value of an unassigned declaration.
func ZeroValue(cand []int32) []int32 {
	var out []int32
	for _, r := range cand {
		if r > 0 {
			out = append(out, r)
		}
	}
	return out // want:selvec
}

// StoreSel writes a possibly-nil produced selection into the batch field.
func StoreSel(b *Batch, cand, dst []int32) {
	dst = dst[:0]
	for _, r := range cand {
		if r%3 == 0 {
			dst = append(dst, r)
		}
	}
	b.Sel = dst // want:selvec
}

// BuildBatch hits the composite-literal sink.
func BuildBatch(cand, dst []int32) Batch {
	dst = dst[:0]
	for _, r := range cand {
		if r != 0 {
			dst = append(dst, r)
		}
	}
	return Batch{N: len(dst), Sel: dst} // want:selvec
}
