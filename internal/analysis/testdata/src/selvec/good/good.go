// Package good holds the sanctioned selection shapes: the canonical
// non-nil empty reset, nil-guards, pass-throughs, explicit nil literals
// ("all rows"), and error paths.
package good

type Batch struct {
	N   int
	Sel []int32
}

// emptySel is the canonical non-nil "no rows survive" selection.
var emptySel = make([]int32, 0)

// resetSel is the PR fix shape: reslice when backed, emptySel when nil.
func resetSel(dst []int32) []int32 {
	if dst == nil {
		return emptySel
	}
	return dst[:0]
}

// FilterEven resets through resetSel, so the zero-match return is the
// canonical empty selection, never nil.
func FilterEven(cand, dst []int32) ([]int32, error) {
	dst = resetSel(dst)
	for _, r := range cand {
		if r%2 == 0 {
			dst = append(dst, r)
		}
	}
	return dst, nil
}

// GuardedReturn re-establishes non-nil with an explicit guard before the
// sink, the original andKernel review fix.
func GuardedReturn(cand, dst []int32) ([]int32, error) {
	dst = dst[:0]
	for _, r := range cand {
		if r > 0 {
			dst = append(dst, r)
		}
	}
	if dst == nil {
		dst = emptySel
	}
	return dst, nil
}

// PassThrough forwards the caller's selection unchanged: nil in means
// "all rows" in, and keeps meaning that on the way out.
func PassThrough(cand []int32) []int32 {
	return cand
}

// AllRows opts into the full batch with an explicit literal.
func AllRows(b *Batch) {
	b.Sel = nil
}

// CopySel forwards a field read — not produced here, so not this
// function's contract to enforce.
func CopySel(dst, src *Batch) {
	dst.Sel = src.Sel
}

// ErrorPath may return nil in the data position alongside a real error.
func ErrorPath(cand, dst []int32, fail error) ([]int32, error) {
	if fail != nil {
		return nil, fail
	}
	dst = resetSel(dst)
	return append(dst, cand...), nil
}
