package analysis

import (
	"fmt"
	"go/types"
)

// StrictDiagnostics converts silent loader degradation into findings, for
// rcclint -strict. Two degradation modes exist: an import the loader could
// not resolve at all (replaced by an empty placeholder package, loader-
// wide), and a package whose own type check reported errors (analysis
// continued on partial information). Both are invisible in a normal run —
// by design, so a partial toolchain never blocks linting — but under
// -strict each becomes a diagnostic with the pseudo-analyzer name
// "strict", and the run fails.
func StrictDiagnostics(l *Loader, pkgs []*Package) []Diagnostic {
	var out []Diagnostic
	for _, ip := range l.Placeholders() {
		out = append(out, Diagnostic{
			Analyzer: "strict",
			File:     ip,
			Message:  "import degraded to an empty placeholder package; type-aware checks were skipped for everything touching it",
		})
	}
	for _, pkg := range pkgs {
		if len(pkg.TypeErrors) == 0 {
			continue
		}
		d := Diagnostic{
			Analyzer: "strict",
			File:     pkg.ImportPath,
			Message: fmt.Sprintf("package type-checked with %d error(s); analyzers ran on partial type information (first: %v)",
				len(pkg.TypeErrors), pkg.TypeErrors[0]),
		}
		// types.Error carries a position; use it so the finding lands on
		// the offending line instead of the package.
		if te, ok := pkg.TypeErrors[0].(types.Error); ok && te.Fset != nil {
			p := te.Fset.Position(te.Pos)
			d.File, d.Line, d.Col = p.Filename, p.Line, p.Column
			d.Message = fmt.Sprintf("package %s type-checked with %d error(s); analyzers ran on partial type information (first: %s)",
				pkg.ImportPath, len(pkg.TypeErrors), te.Msg)
		}
		out = append(out, d)
	}
	return out
}
