package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// opsFixture builds a handler with one sampled slow query, one fast query,
// an SLO window, and a static region source.
func opsFixture() (Ops, *Tracer) {
	reg := NewRegistry()
	tr := NewTracer(reg, 1, 64)
	slo := NewSLOTracker(reg, 0.99, 32)

	fast := tr.Begin("SELECT fast")
	fast.Parse(1 * time.Millisecond)
	fast.Exec(2 * time.Millisecond)
	fast.Finish(false)
	slow := tr.Begin("SELECT slow")
	slow.Parse(2 * time.Millisecond)
	slow.Plan(3 * time.Millisecond)
	slow.Exec(95 * time.Millisecond)
	slow.Guard(GuardObservation{Region: 1, Chosen: 0, Bound: 5 * time.Second,
		Staleness: time.Second, StalenessKnown: true})
	slow.Finish(false)

	slo.Observe(GuardObservation{Region: 1, Chosen: 0, Bound: 5 * time.Second,
		Staleness: time.Second, StalenessKnown: true})
	slo.Observe(GuardObservation{Region: 1, Chosen: 0, Bound: 5 * time.Second,
		Staleness: 2 * time.Second, StalenessKnown: true, Degraded: true})

	return Ops{
		Registry: reg, Traces: &TraceStore{}, Tracer: tr, SLO: slo,
		Regions: func() []RegionStatus {
			return []RegionStatus{{
				ID: 1, Name: "CR1",
				UpdateIntervalNS:    int64(10 * time.Second),
				UpdateDelayNS:       int64(2 * time.Second),
				HeartbeatIntervalNS: int64(time.Second),
				StalenessNS:         int64(1500 * time.Millisecond),
				Synced:              true,
				TxnsApplied:         42,
			}}
		},
	}, tr
}

func getJSON(t *testing.T, o Ops, url string) map[string]any {
	t.Helper()
	rr := httptest.NewRecorder()
	NewHandler(o).ServeHTTP(rr, httptest.NewRequest("GET", url, nil))
	if rr.Code != 200 {
		t.Fatalf("GET %s = %d: %s", url, rr.Code, rr.Body.String())
	}
	if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("GET %s content type = %q", url, ct)
	}
	var v map[string]any
	if err := json.Unmarshal(rr.Body.Bytes(), &v); err != nil {
		t.Fatalf("GET %s: bad JSON: %v\n%s", url, err, rr.Body.String())
	}
	return v
}

// requireKeys asserts the JSON object exposes exactly the schema's keys —
// the golden-schema check that catches silent payload drift.
func requireKeys(t *testing.T, obj map[string]any, want ...string) {
	t.Helper()
	if len(obj) != len(want) {
		t.Fatalf("object has %d keys %v, want %v", len(obj), keysOf(obj), want)
	}
	for _, k := range want {
		if _, ok := obj[k]; !ok {
			t.Fatalf("missing key %q in %v", k, keysOf(obj))
		}
	}
}

func keysOf(m map[string]any) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

var queryRecordKeys = []string{
	"seq", "sql_hash", "sql", "bound_ns", "region", "branch", "degraded",
	"block_waits", "retries", "staleness_ns", "staleness_known", "failed",
	"parse_ns", "plan_ns", "guard_ns", "exec_ns", "total_ns",
}

func TestOpsQueriesRecentSchema(t *testing.T) {
	o, _ := opsFixture()
	v := getJSON(t, o, "/queries/recent")
	requireKeys(t, v, "sample_every", "queries")
	if v["sample_every"].(float64) != 1 {
		t.Fatalf("sample_every = %v", v["sample_every"])
	}
	qs := v["queries"].([]any)
	if len(qs) != 2 {
		t.Fatalf("got %d records, want 2", len(qs))
	}
	first := qs[0].(map[string]any)
	requireKeys(t, first, queryRecordKeys...)
	if first["sql"] != "SELECT slow" {
		t.Fatalf("newest-first violated: first = %v", first["sql"])
	}
	if first["total_ns"].(float64) != float64(100*time.Millisecond) {
		t.Fatalf("total_ns = %v", first["total_ns"])
	}
	// limit is honored.
	v = getJSON(t, o, "/queries/recent?limit=1")
	if qs := v["queries"].([]any); len(qs) != 1 {
		t.Fatalf("limit=1 returned %d records", len(qs))
	}
}

func TestOpsQueriesSlowSchema(t *testing.T) {
	o, _ := opsFixture()
	v := getJSON(t, o, "/queries/slow?threshold=50ms")
	requireKeys(t, v, "threshold_ns", "queries")
	if v["threshold_ns"].(float64) != float64(50*time.Millisecond) {
		t.Fatalf("threshold_ns = %v", v["threshold_ns"])
	}
	qs := v["queries"].([]any)
	if len(qs) != 1 {
		t.Fatalf("got %d slow records, want 1", len(qs))
	}
	rec := qs[0].(map[string]any)
	requireKeys(t, rec, queryRecordKeys...)
	if rec["sql"] != "SELECT slow" || rec["branch"] != "local" {
		t.Fatalf("slow record wrong: %v", rec)
	}
	// No threshold: both, slowest first.
	v = getJSON(t, o, "/queries/slow")
	qs = v["queries"].([]any)
	if len(qs) != 2 || qs[0].(map[string]any)["sql"] != "SELECT slow" {
		t.Fatalf("unfiltered slow list wrong: %v", qs)
	}
}

// TestOpsQueriesSlowBadThreshold: an unparsable or negative threshold is a
// 400 with a machine-readable JSON error naming the bad value, not a silent
// fall-back to zero.
func TestOpsQueriesSlowBadThreshold(t *testing.T) {
	o, _ := opsFixture()
	h := NewHandler(o)
	for _, bad := range []string{"nope", "-5ms", "10", "1h2x"} {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", "/queries/slow?threshold="+bad, nil))
		if rr.Code != 400 {
			t.Fatalf("threshold=%q = %d, want 400", bad, rr.Code)
		}
		if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
			t.Fatalf("threshold=%q content type = %q", bad, ct)
		}
		var body map[string]string
		if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
			t.Fatalf("threshold=%q: bad JSON error: %v\n%s", bad, err, rr.Body.String())
		}
		if !strings.Contains(body["error"], bad) {
			t.Fatalf("threshold=%q error does not name the value: %q", bad, body["error"])
		}
	}
	// An empty threshold stays the unfiltered default, not an error.
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/queries/slow?threshold=", nil))
	if rr.Code != 200 {
		t.Fatalf("empty threshold = %d, want 200", rr.Code)
	}
}

// TestOpsAuditEndpoint: /audit serves whatever the Audit closure yields as
// JSON, and 404s when the closure is missing or yields nil (auditor not
// enabled) — the same late-binding contract as /tuner.
func TestOpsAuditEndpoint(t *testing.T) {
	o, _ := opsFixture()
	o.Audit = func() any {
		return map[string]any{"enabled": true, "reads_checked": 7}
	}
	v := getJSON(t, o, "/audit")
	requireKeys(t, v, "enabled", "reads_checked")
	if v["reads_checked"].(float64) != 7 {
		t.Fatalf("payload = %v", v)
	}
	for _, o := range []Ops{{Registry: NewRegistry()},
		{Registry: NewRegistry(), Audit: func() any { return nil }}} {
		rr := httptest.NewRecorder()
		NewHandler(o).ServeHTTP(rr, httptest.NewRequest("GET", "/audit", nil))
		if rr.Code != 404 {
			t.Fatalf("GET /audit without auditor = %d, want 404", rr.Code)
		}
	}
}

func TestOpsSLOSchema(t *testing.T) {
	o, _ := opsFixture()
	refreshed := 0
	o.Refresh = func() { refreshed++ }
	v := getJSON(t, o, "/slo")
	requireKeys(t, v, "target", "window", "regions")
	if refreshed != 1 {
		t.Fatalf("refresh ran %d times", refreshed)
	}
	if v["target"].(float64) != 0.99 || v["window"].(float64) != 32 {
		t.Fatalf("target/window = %v/%v", v["target"], v["window"])
	}
	regions := v["regions"].([]any)
	if len(regions) != 1 {
		t.Fatalf("regions = %v", regions)
	}
	r := regions[0].(map[string]any)
	requireKeys(t, r, "region", "observations", "within", "degraded",
		"within_ratio", "error_budget",
		"staleness_p50_ns", "staleness_p95_ns", "staleness_p99_ns", "staleness_max_ns")
	if r["observations"].(float64) != 2 || r["within"].(float64) != 1 || r["degraded"].(float64) != 1 {
		t.Fatalf("slo counts wrong: %v", r)
	}
	if r["within_ratio"].(float64) != 0.5 {
		t.Fatalf("within_ratio = %v", r["within_ratio"])
	}
}

func TestOpsRegionsSchema(t *testing.T) {
	o, _ := opsFixture()
	v := getJSON(t, o, "/regions")
	requireKeys(t, v, "regions")
	regions := v["regions"].([]any)
	if len(regions) != 1 {
		t.Fatalf("regions = %v", regions)
	}
	r := regions[0].(map[string]any)
	requireKeys(t, r, "id", "name", "update_interval_ns", "update_delay_ns",
		"heartbeat_interval_ns", "staleness_ns", "synced", "txns_applied")
	if r["name"] != "CR1" || r["synced"] != true || r["txns_applied"].(float64) != 42 {
		t.Fatalf("region row wrong: %v", r)
	}
}

// TestOpsEndpointsDisabled: a partially wired Ops (no tracer/SLO/regions/
// tuner) serves 404s on the missing surfaces instead of panicking.
func TestOpsEndpointsDisabled(t *testing.T) {
	h := NewHandler(Ops{Registry: NewRegistry()})
	for _, url := range []string{"/queries/recent", "/queries/slow", "/slo", "/regions", "/tuner", "/audit"} {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", url, nil))
		if rr.Code != 404 {
			t.Fatalf("GET %s = %d, want 404", url, rr.Code)
		}
	}
}

// TestOpsTunerNilSnapshot: a wired Tuner closure that yields nil (autotune
// not enabled yet) still 404s rather than serving "null".
func TestOpsTunerNilSnapshot(t *testing.T) {
	h := NewHandler(Ops{Registry: NewRegistry(), Tuner: func() any { return nil }})
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/tuner", nil))
	if rr.Code != 404 {
		t.Fatalf("GET /tuner = %d, want 404", rr.Code)
	}
}

// TestTraceStoreCopyOnFinish pins the immutable-publication contract: a
// published tree no longer aliases the caller's nodes.
func TestTraceStoreCopyOnFinish(t *testing.T) {
	var ts TraceStore
	root := &TraceNode{Name: "SwitchUnion", Rows: 1,
		Guard:    &GuardTrace{Region: 1, Chosen: 0},
		Children: []*TraceNode{{Name: "Scan(v)", Rows: 1}}}
	ts.Set("SELECT 1", root)
	// Mutate the original tree as a later re-execution would.
	root.Rows = 999
	root.Guard.Chosen = 1
	root.Children[0].Name = "mutated"
	_, pub := ts.Last()
	if pub == root {
		t.Fatal("published tree aliases the caller's root")
	}
	if pub.Rows != 1 || pub.Guard.Chosen != 0 || pub.Children[0].Name != "Scan(v)" {
		t.Fatalf("published tree mutated: %+v", pub)
	}
	if !strings.Contains(pub.String(), "SwitchUnion") {
		t.Fatal("clone lost rendering")
	}
}
