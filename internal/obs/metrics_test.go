package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestValidName(t *testing.T) {
	valid := []string{"a", "queries_total", "guard_latency_ns", "x9", "a_1_b"}
	for _, n := range valid {
		if !ValidName(n) {
			t.Errorf("ValidName(%q) = false, want true", n)
		}
	}
	invalid := []string{"", "Queries", "9x", "_x", "guard-latency", "a.b", "a b", "añ"}
	for _, n := range invalid {
		if ValidName(n) {
			t.Errorf("ValidName(%q) = true, want false", n)
		}
	}
}

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	g := r.Gauge("g_now")
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Fatalf("gauge = %d, want 7", g.Value())
	}
	g.SetDuration(2 * time.Second)
	if g.Duration() != 2*time.Second {
		t.Fatalf("gauge duration = %v", g.Duration())
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("same_total") != r.Counter("same_total") {
		t.Fatal("re-registration must return the same counter")
	}
	if r.CounterVec("v_total", "region").With("1") != r.CounterVec("v_total", "region").With("1") {
		t.Fatal("re-registration must return the same labeled child")
	}
}

func TestRegistryPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	r := NewRegistry()
	mustPanic("invalid name", func() { r.Counter("Bad-Name") })
	r.Counter("taken")
	mustPanic("kind conflict", func() { r.Gauge("taken") })
	mustPanic("vec kind conflict", func() { r.CounterVec("taken", "l") })
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
	// 90 small observations and 10 large: p50 in the small bucket, p99 in
	// the large one. Log buckets make the estimate the bucket midpoint.
	for i := 0; i < 90; i++ {
		h.Observe(100) // bucket [64,128), mid 96
	}
	for i := 0; i < 10; i++ {
		h.Observe(100000) // bucket [65536,131072), mid 98304
	}
	if h.Count() != 100 || h.Sum() != 90*100+10*100000 {
		t.Fatalf("count=%d sum=%d", h.Count(), h.Sum())
	}
	if got := h.Quantile(0.50); got != 96 {
		t.Fatalf("p50 = %d, want 96", got)
	}
	if got := h.Quantile(0.99); got != 98304 {
		t.Fatalf("p99 = %d, want 98304", got)
	}
	// Negative observations clamp to zero (bucket 0).
	h.Observe(-5)
	if got := h.Quantile(0.001); got != 0 {
		t.Fatalf("min quantile = %d, want 0", got)
	}
}

func TestSnapshotText(t *testing.T) {
	r := NewRegistry()
	r.Counter("q_total").Add(3)
	r.Gauge("g_now").Set(9)
	r.Histogram("lat_ns").Observe(100)
	r.CounterVec("picks_total", "region").With("1").Add(2)
	r.GaugeVec("stale_ns", "region").With("2").Set(5)

	var buf bytes.Buffer
	if err := r.Snapshot().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	for _, want := range []string{
		"q_total 3\n",
		"g_now 9\n",
		"lat_ns_count 1\n",
		"lat_ns_p50 96\n",
		`picks_total{region="1"} 2` + "\n",
		`stale_ns{region="2"} 5` + "\n",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("snapshot text missing %q in:\n%s", want, got)
		}
	}
	// Lines must come out sorted.
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	for i := 1; i < len(lines); i++ {
		if lines[i-1] > lines[i] {
			t.Fatalf("lines not sorted: %q > %q", lines[i-1], lines[i])
		}
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("q_total").Inc()
	r.HistogramVec("lat_ns", "op").With("scan").Observe(7)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded Snapshot
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Counters["q_total"] != 1 {
		t.Fatalf("decoded counters = %v", decoded.Counters)
	}
	if decoded.Histograms[`lat_ns{op="scan"}`].Count != 1 {
		t.Fatalf("decoded histograms = %v", decoded.Histograms)
	}
}

func TestNames(t *testing.T) {
	r := NewRegistry()
	r.Gauge("zz")
	r.Counter("aa_total")
	r.HistogramVec("mm_ns", "k")
	got := r.Names()
	want := []string{"aa_total", "mm_ns", "zz"}
	if len(got) != len(want) {
		t.Fatalf("names = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("names = %v, want %v", got, want)
		}
	}
}

// TestConcurrency hammers registration and the hot path from many
// goroutines; run under -race this is the lock-freedom smoke test.
func TestConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared_total")
			h := r.Histogram("shared_ns")
			v := r.CounterVec("shared_vec_total", "k")
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(int64(j))
				v.With("a").Inc()
				if j%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared_total").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("shared_ns").Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
	if got := r.CounterVec("shared_vec_total", "k").With("a").Value(); got != 8000 {
		t.Fatalf("vec counter = %d, want 8000", got)
	}
}
