// Package obs is the observability subsystem: a lock-free metrics registry
// (counters, gauges, log-scale latency histograms, labeled families) with
// text/JSON snapshot encoders, per-query execution trace trees, and an
// expvar-style HTTP handler serving /metrics and /trace/last.
//
// Design constraints, in order:
//
//  1. The hot path (Counter.Inc, Counter.Add, Gauge.Set, Histogram.Observe)
//     is a single atomic op — no locks, no allocation — so operators can
//     record per-batch without perturbing what they measure.
//  2. Registration (Registry.Counter etc.) is get-or-create under a mutex
//     and meant for wiring time; callers cache the returned instrument.
//  3. Metric names are validated at registration: lowercase_snake
//     ([a-z][a-z0-9_]*), unique across instrument kinds. `make metrics-lint`
//     enforces the same rule statically over the source tree.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the value to stay monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value. Durations are stored as
// nanoseconds.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// SetDuration stores d as nanoseconds.
func (g *Gauge) SetDuration(d time.Duration) { g.v.Store(int64(d)) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Duration returns the current value interpreted as nanoseconds.
func (g *Gauge) Duration() time.Duration { return time.Duration(g.v.Load()) }

// histBuckets is one bucket per bit length of the observed value: bucket i
// holds values in [2^(i-1), 2^i), bucket 0 holds zero. 65 buckets cover the
// full non-negative int64 range, so nanosecond latencies from 1ns to ~292
// years land in log2-spaced buckets (resolution 2x, good enough for p50/p95/
// p99 of latency distributions spanning decades of magnitude).
const histBuckets = 65

// Histogram is a lock-free log-scale histogram of non-negative int64
// observations (by convention nanoseconds for latencies). Observe is a few
// atomic adds; quantiles are estimated from bucket boundaries on read.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one value. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bits.Len64(uint64(v))].Add(1)
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Quantile estimates the q-quantile (0 < q <= 1) as the midpoint of the
// bucket containing the q*count-th observation. Returns 0 for an empty
// histogram. Reads race benignly with concurrent writers: the estimate
// reflects some recent state.
func (h *Histogram) Quantile(q float64) int64 {
	var counts [histBuckets]int64
	var total int64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	target := int64(q * float64(total))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range counts {
		cum += c
		if cum >= target {
			return bucketMid(i)
		}
	}
	return bucketMid(histBuckets - 1)
}

// bucketMid returns the midpoint of bucket i's value range [2^(i-1), 2^i).
func bucketMid(i int) int64 {
	if i == 0 {
		return 0
	}
	if i == 1 {
		return 1
	}
	lo := int64(1) << (i - 1)
	hi := lo << 1
	if hi < lo { // top bucket: 2^63 overflows
		return lo
	}
	return (lo + hi) / 2
}

// CounterVec is a family of counters distinguished by one label (e.g.
// region id). With returns the child for a label value, creating it on
// first use; callers cache the child for hot paths.
type CounterVec struct {
	name, label string
	mu          sync.RWMutex
	kids        map[string]*Counter
}

// With returns the counter for the given label value.
func (v *CounterVec) With(value string) *Counter {
	v.mu.RLock()
	c := v.kids[value]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c := v.kids[value]; c != nil {
		return c
	}
	c = &Counter{}
	v.kids[value] = c
	return c
}

// GaugeVec is a family of gauges distinguished by one label.
type GaugeVec struct {
	name, label string
	mu          sync.RWMutex
	kids        map[string]*Gauge
}

// With returns the gauge for the given label value.
func (v *GaugeVec) With(value string) *Gauge {
	v.mu.RLock()
	g := v.kids[value]
	v.mu.RUnlock()
	if g != nil {
		return g
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if g := v.kids[value]; g != nil {
		return g
	}
	g = &Gauge{}
	v.kids[value] = g
	return g
}

// HistogramVec is a family of histograms distinguished by one label.
type HistogramVec struct {
	name, label string
	mu          sync.RWMutex
	kids        map[string]*Histogram
}

// With returns the histogram for the given label value.
func (v *HistogramVec) With(value string) *Histogram {
	v.mu.RLock()
	h := v.kids[value]
	v.mu.RUnlock()
	if h != nil {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h := v.kids[value]; h != nil {
		return h
	}
	h = &Histogram{}
	v.kids[value] = h
	return h
}

// ValidName reports whether a metric name is lowercase_snake:
// [a-z][a-z0-9_]*.
func ValidName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z':
		case i > 0 && (c == '_' || (c >= '0' && c <= '9')):
		default:
			return false
		}
	}
	return true
}

// Registry holds named instruments. Lookups are get-or-create: registering
// the same name with the same kind returns the existing instrument;
// registering it with a different kind, or with an invalid name, panics
// (registration is wiring-time code, like expvar.Publish).
type Registry struct {
	mu       sync.Mutex
	kinds    map[string]string
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	cvecs    map[string]*CounterVec
	gvecs    map[string]*GaugeVec
	hvecs    map[string]*HistogramVec
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		kinds:    map[string]string{},
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		cvecs:    map[string]*CounterVec{},
		gvecs:    map[string]*GaugeVec{},
		hvecs:    map[string]*HistogramVec{},
	}
}

func (r *Registry) claim(name, kind string) {
	if !ValidName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q (want lowercase_snake)", name))
	}
	if have, ok := r.kinds[name]; ok && have != kind {
		panic(fmt.Sprintf("obs: metric %q already registered as %s, not %s", name, have, kind))
	}
	r.kinds[name] = kind
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name, "counter")
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name, "gauge")
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name, "histogram")
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// CounterVec returns the named counter family with one label key.
func (r *Registry) CounterVec(name, label string) *CounterVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name, "counter_vec")
	v := r.cvecs[name]
	if v == nil {
		v = &CounterVec{name: name, label: label, kids: map[string]*Counter{}}
		r.cvecs[name] = v
	}
	return v
}

// GaugeVec returns the named gauge family with one label key.
func (r *Registry) GaugeVec(name, label string) *GaugeVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name, "gauge_vec")
	v := r.gvecs[name]
	if v == nil {
		v = &GaugeVec{name: name, label: label, kids: map[string]*Gauge{}}
		r.gvecs[name] = v
	}
	return v
}

// HistogramVec returns the named histogram family with one label key.
func (r *Registry) HistogramVec(name, label string) *HistogramVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name, "histogram_vec")
	v := r.hvecs[name]
	if v == nil {
		v = &HistogramVec{name: name, label: label, kids: map[string]*Histogram{}}
		r.hvecs[name] = v
	}
	return v
}

// Names returns every registered base metric name, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.kinds))
	for name := range r.kinds {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// HistogramSnapshot summarizes a histogram at snapshot time.
type HistogramSnapshot struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	P50   int64 `json:"p50"`
	P95   int64 `json:"p95"`
	P99   int64 `json:"p99"`
}

// Snapshot is a point-in-time copy of every instrument's value. Labeled
// children appear under `name{label="value"}` keys.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

func labeledKey(name, label, value string) string {
	return fmt.Sprintf("%s{%s=%q}", name, label, value)
}

func histSnap(h *Histogram) HistogramSnapshot {
	return HistogramSnapshot{
		Count: h.Count(),
		Sum:   h.Sum(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
}

// Snapshot copies the current value of every instrument.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = histSnap(h)
	}
	for name, v := range r.cvecs {
		v.mu.RLock()
		for lv, c := range v.kids {
			s.Counters[labeledKey(name, v.label, lv)] = c.Value()
		}
		v.mu.RUnlock()
	}
	for name, v := range r.gvecs {
		v.mu.RLock()
		for lv, g := range v.kids {
			s.Gauges[labeledKey(name, v.label, lv)] = g.Value()
		}
		v.mu.RUnlock()
	}
	for name, v := range r.hvecs {
		v.mu.RLock()
		for lv, h := range v.kids {
			s.Histograms[labeledKey(name, v.label, lv)] = histSnap(h)
		}
		v.mu.RUnlock()
	}
	return s
}

// WriteText renders the snapshot as sorted "name value" lines; histograms
// expand to _count, _sum, _p50, _p95, _p99 lines.
func (s Snapshot) WriteText(w io.Writer) error {
	lines := make([]string, 0, len(s.Counters)+len(s.Gauges)+5*len(s.Histograms))
	for name, v := range s.Counters {
		lines = append(lines, fmt.Sprintf("%s %d", name, v))
	}
	for name, v := range s.Gauges {
		lines = append(lines, fmt.Sprintf("%s %d", name, v))
	}
	for name, h := range s.Histograms {
		base, labels := name, ""
		if i := strings.IndexByte(name, '{'); i >= 0 {
			base, labels = name[:i], name[i:]
		}
		lines = append(lines,
			fmt.Sprintf("%s_count%s %d", base, labels, h.Count),
			fmt.Sprintf("%s_sum%s %d", base, labels, h.Sum),
			fmt.Sprintf("%s_p50%s %d", base, labels, h.P50),
			fmt.Sprintf("%s_p95%s %d", base, labels, h.P95),
			fmt.Sprintf("%s_p99%s %d", base, labels, h.P99))
	}
	sort.Strings(lines)
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
