package obs

import (
	"sync"
	"testing"
	"time"
)

func wlStart() time.Time {
	return time.Date(2004, 6, 13, 0, 0, 0, 0, time.UTC)
}

func TestWorkloadObserverProfiles(t *testing.T) {
	start := wlStart()
	w := NewWorkloadObserver(start)
	// Region 1: 3 local (one degraded), 1 remote, mixed bounds, one
	// unbounded (planner sentinel); region 2: idle until later.
	obs := []GuardObservation{
		{Region: 1, Chosen: 0, Bound: 4 * time.Second, Staleness: time.Second, StalenessKnown: true},
		{Region: 1, Chosen: 0, Bound: 4 * time.Second, Staleness: 3 * time.Second, StalenessKnown: true, Degraded: true},
		{Region: 1, Chosen: 1, Bound: 2 * time.Second},
		{Region: 1, Chosen: 0, Bound: time.Duration(1<<63 - 1)},
	}
	for i, g := range obs {
		w.Record(start.Add(time.Duration(i)*time.Second), g)
	}

	profs := w.Snapshot(start.Add(10 * time.Second))
	if len(profs) != 1 {
		t.Fatalf("got %d profiles, want 1", len(profs))
	}
	p := profs[0]
	if p.Region != 1 || p.Queries != 4 || p.Local != 3 || p.Remote != 1 ||
		p.Degraded != 1 || p.Unbounded != 1 {
		t.Fatalf("profile counts wrong: %+v", p)
	}
	if p.WindowNS != int64(10*time.Second) || p.QueriesPerSecond != 0.4 {
		t.Fatalf("window/rate wrong: %+v", p)
	}
	// Bound mix is sorted ascending and excludes the unbounded query.
	if len(p.Bounds) != 2 ||
		p.Bounds[0] != (BoundCount{BoundNS: int64(2 * time.Second), Count: 1}) ||
		p.Bounds[1] != (BoundCount{BoundNS: int64(4 * time.Second), Count: 2}) {
		t.Fatalf("bound mix wrong: %+v", p.Bounds)
	}
	// Staleness percentiles cover the two known local staleness samples.
	if p.StalenessP50NS != int64(time.Second) || p.StalenessMaxNS != int64(3*time.Second) {
		t.Fatalf("staleness percentiles wrong: %+v", p)
	}

	// Snapshot does not reset: a second snapshot is identical.
	again := w.Snapshot(start.Add(10 * time.Second))[0]
	if again.Queries != 4 {
		t.Fatalf("snapshot reset the window: %+v", again)
	}

	// Cut returns the window and resets it; the next window starts empty
	// with the new start.
	cut := w.Cut(start.Add(10 * time.Second))
	if cut[0].Queries != 4 {
		t.Fatalf("cut lost the window: %+v", cut[0])
	}
	if got := w.WindowStart(); !got.Equal(start.Add(10 * time.Second)) {
		t.Fatalf("window start = %v", got)
	}
	w.Record(start.Add(11*time.Second), GuardObservation{Region: 2, Chosen: 0, Bound: time.Second})
	next := w.Snapshot(start.Add(12 * time.Second))
	if len(next) != 2 {
		t.Fatalf("got %d profiles after cut, want 2 (reset region 1 + new region 2)", len(next))
	}
	if next[0].Region != 1 || next[0].Queries != 0 {
		t.Fatalf("region 1 not reset: %+v", next[0])
	}
	if next[1].Region != 2 || next[1].Queries != 1 || next[1].WindowNS != int64(2*time.Second) {
		t.Fatalf("region 2 window wrong: %+v", next[1])
	}
}

// TestWorkloadObserverBoundOverflow: once a region tracks workloadMaxBounds
// distinct bounds, further bounds fold deterministically into the nearest
// tracked one instead of growing the histogram.
func TestWorkloadObserverBoundOverflow(t *testing.T) {
	start := wlStart()
	w := NewWorkloadObserver(start)
	for i := 1; i <= workloadMaxBounds; i++ {
		w.Record(start, GuardObservation{Region: 1, Bound: time.Duration(i) * time.Minute})
	}
	// 90s is between the 1m and 2m buckets; the tie rule picks the smaller.
	w.Record(start, GuardObservation{Region: 1, Bound: 90 * time.Second})
	// 10h is beyond every bucket; it folds into the largest.
	w.Record(start, GuardObservation{Region: 1, Bound: 10 * time.Hour})
	p := w.Snapshot(start.Add(time.Second))[0]
	if len(p.Bounds) != workloadMaxBounds {
		t.Fatalf("histogram grew past the cap: %d bounds", len(p.Bounds))
	}
	if p.Bounds[0] != (BoundCount{BoundNS: int64(time.Minute), Count: 2}) {
		t.Fatalf("90s did not fold into 1m: %+v", p.Bounds[0])
	}
	last := p.Bounds[len(p.Bounds)-1]
	if last != (BoundCount{BoundNS: int64(workloadMaxBounds * int(time.Minute)), Count: 2}) {
		t.Fatalf("10h did not fold into the largest bucket: %+v", last)
	}
}

// TestWorkloadObserverNil: a nil observer ignores records (unwired callers
// stay safe).
func TestWorkloadObserverNil(t *testing.T) {
	var w *WorkloadObserver
	w.Record(wlStart(), GuardObservation{Region: 1}) // must not panic
}

// TestWorkloadObserverConcurrent is the -race hammer: concurrent Record
// against Snapshot and Cut, then a final consistency check that no
// observation was lost or double-counted across window cuts.
func TestWorkloadObserverConcurrent(t *testing.T) {
	start := wlStart()
	w := NewWorkloadObserver(start)
	const writers = 4
	const perWriter = 2000

	var wg sync.WaitGroup
	cuts := make(chan []WorkloadProfile, 64)
	stop := make(chan struct{})
	var cutter sync.WaitGroup
	cutter.Add(1)
	go func() {
		defer cutter.Done()
		i := 0
		for {
			select {
			case <-stop:
				close(cuts)
				return
			default:
			}
			i++
			w.Snapshot(start.Add(time.Duration(i) * time.Millisecond))
			cuts <- w.Cut(start.Add(time.Duration(i) * time.Millisecond))
		}
	}()

	var drained sync.WaitGroup
	var mu sync.Mutex
	var total int64
	drained.Add(1)
	go func() {
		defer drained.Done()
		for profs := range cuts {
			for _, p := range profs {
				mu.Lock()
				total += p.Queries
				mu.Unlock()
			}
		}
	}()

	for wr := 0; wr < writers; wr++ {
		wg.Add(1)
		go func(wr int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				w.Record(start, GuardObservation{
					Region:         wr % 2,
					Chosen:         i % 2,
					Bound:          time.Duration(1+i%8) * time.Second,
					Staleness:      time.Duration(i) * time.Millisecond,
					StalenessKnown: true,
				})
			}
		}(wr)
	}
	wg.Wait()
	// Writers are done; one final cut collects the remainder, then stop the
	// cutter.
	final := w.Cut(start.Add(time.Hour))
	close(stop)
	cutter.Wait()
	drained.Wait()
	for _, p := range final {
		total += p.Queries
	}
	// The cutter may have cut once more between our final cut and its stop
	// check; fold that in too.
	for _, p := range w.Cut(start.Add(2 * time.Hour)) {
		total += p.Queries
	}
	if want := int64(writers * perWriter); total != want {
		t.Fatalf("observations across cuts = %d, want %d", total, want)
	}
}
