package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerMetrics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("hits_total").Add(7)
	refreshed := 0
	var ts TraceStore
	h := Handler(reg, &ts, func() { refreshed++; reg.Gauge("derived_now").Set(42) })

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	body := rr.Body.String()
	if !strings.Contains(body, "hits_total 7") || !strings.Contains(body, "derived_now 42") {
		t.Fatalf("metrics body:\n%s", body)
	}
	if refreshed != 1 {
		t.Fatalf("refresh ran %d times", refreshed)
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics?format=json", nil))
	if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("json content type = %q", ct)
	}
	if !strings.Contains(rr.Body.String(), `"hits_total": 7`) {
		t.Fatalf("json body:\n%s", rr.Body.String())
	}
}

func TestHandlerTraceLast(t *testing.T) {
	reg := NewRegistry()
	var ts TraceStore
	h := Handler(reg, &ts, nil)

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/trace/last", nil))
	if !strings.Contains(rr.Body.String(), "no trace recorded") {
		t.Fatalf("empty trace body: %s", rr.Body.String())
	}

	ts.Set("SELECT 1", &TraceNode{Name: "Scan(T)", Opens: 1, Rows: 3})
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/trace/last", nil))
	body := rr.Body.String()
	if !strings.Contains(body, "-- SELECT 1") || !strings.Contains(body, "Scan(T)") {
		t.Fatalf("trace body:\n%s", body)
	}
}

func TestServe(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("up_total").Inc()
	srv, addr, err := Serve("127.0.0.1:0", Handler(reg, nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + addr.String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(b), "up_total 1") {
		t.Fatalf("served body: %s", b)
	}
}
