package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"time"
)

// RegionStatus is one currency region's row on the /regions endpoint:
// static cadence from the catalog plus the live staleness the guards see.
// Durations are nanoseconds for stable JSON.
type RegionStatus struct {
	ID                  int    `json:"id"`
	Name                string `json:"name"`
	UpdateIntervalNS    int64  `json:"update_interval_ns"`
	UpdateDelayNS       int64  `json:"update_delay_ns"`
	HeartbeatIntervalNS int64  `json:"heartbeat_interval_ns"`
	// StalenessNS is now minus the region's last replicated heartbeat;
	// valid only when Synced (a region that never synchronized has unknown
	// staleness).
	StalenessNS int64 `json:"staleness_ns"`
	Synced      bool  `json:"synced"`
	// TxnsApplied is the distribution agent's lifetime transaction count.
	TxnsApplied int64 `json:"txns_applied"`
}

// Ops bundles everything the ops HTTP surface serves. Nil fields disable
// their endpoints with 404s, so partial wiring (e.g. a registry with no
// tracer) still yields a working handler.
type Ops struct {
	Registry *Registry
	Traces   *TraceStore
	Tracer   *Tracer
	SLO      *SLOTracker
	// Refresh, when non-nil, runs before /metrics, /slo and /regions
	// snapshots so derived gauges (per-region staleness) are current.
	Refresh func()
	// Regions supplies the /regions rows.
	Regions func() []RegionStatus
	// Tuner supplies the /tuner payload (the autotuning loop's snapshot:
	// config, per-region state, decision timeline). Nil — or a non-nil
	// func returning nil — disables the endpoint with a 404, so a system
	// without EnableAutotune keeps a working surface.
	Tuner func() any
	// Audit supplies the /audit payload (the delivered-guarantee auditor's
	// ledger summary plus recent violations with evidence). Same nil
	// contract as Tuner.
	Audit func() any
}

// Handler serves the registry and trace store over HTTP — the PR 2 surface
// (/metrics, /trace/last). Kept for callers that have no tracer or SLO
// tracker; NewHandler is the full ops surface.
func Handler(reg *Registry, traces *TraceStore, refresh func()) http.Handler {
	return NewHandler(Ops{Registry: reg, Traces: traces, Refresh: refresh})
}

// NewHandler serves the full ops surface:
//
//	/metrics          text snapshot; ?format=json for the JSON encoding
//	/trace/last       the most recent EXPLAIN ANALYZE trace tree
//	/queries/recent   sampled query-lifecycle records, newest first
//	                  (?limit=N, default 50)
//	/queries/slow     records at or above a latency threshold, slowest
//	                  first (?threshold=10ms&limit=N)
//	/slo              per-region currency SLO snapshot (within-bound ratio,
//	                  error budget, served-staleness percentiles)
//	/regions          currency regions with cadence and live staleness
//	/tuner            autotuning loop snapshot (hysteresis config, per-region
//	                  intervals, full decision timeline)
//	/audit            delivered-guarantee audit ledger (classification
//	                  counts, recent violations with evidence)
func NewHandler(o Ops) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if o.Refresh != nil {
			o.Refresh()
		}
		if o.Registry == nil {
			http.Error(w, "no registry", http.StatusNotFound)
			return
		}
		snap := o.Registry.Snapshot()
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			_ = snap.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = snap.WriteText(w)
	})
	mux.HandleFunc("/trace/last", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if o.Traces == nil {
			http.Error(w, "no trace store", http.StatusNotFound)
			return
		}
		sql, root := o.Traces.Last()
		if root == nil {
			fmt.Fprintln(w, "no trace recorded; run EXPLAIN ANALYZE <query>")
			return
		}
		fmt.Fprintf(w, "-- %s\n", sql)
		root.Render(w)
	})
	mux.HandleFunc("/queries/recent", func(w http.ResponseWriter, r *http.Request) {
		if o.Tracer == nil {
			http.Error(w, "no tracer", http.StatusNotFound)
			return
		}
		recs := o.Tracer.Ring().Snapshot()
		if limit := queryLimit(r, 50); len(recs) > limit {
			recs = recs[:limit]
		}
		writeJSON(w, map[string]any{
			"sample_every": o.Tracer.SampleEvery(),
			"queries":      recs,
		})
	})
	mux.HandleFunc("/queries/slow", func(w http.ResponseWriter, r *http.Request) {
		if o.Tracer == nil {
			http.Error(w, "no tracer", http.StatusNotFound)
			return
		}
		threshold := time.Duration(0)
		if t := r.URL.Query().Get("threshold"); t != "" {
			d, err := time.ParseDuration(t)
			if err != nil || d < 0 {
				writeJSONError(w, http.StatusBadRequest,
					"bad threshold "+strconv.Quote(t)+": want a non-negative Go duration, e.g. 10ms")
				return
			}
			threshold = d
		}
		recs := o.Tracer.Ring().Snapshot()
		slow := recs[:0]
		for _, rec := range recs {
			if rec.TotalNS >= int64(threshold) {
				slow = append(slow, rec)
			}
		}
		// Slowest first; ties broken newest-first for a stable order.
		sortRecordsByTotal(slow)
		if limit := queryLimit(r, 50); len(slow) > limit {
			slow = slow[:limit]
		}
		writeJSON(w, map[string]any{
			"threshold_ns": int64(threshold),
			"queries":      slow,
		})
	})
	mux.HandleFunc("/slo", func(w http.ResponseWriter, r *http.Request) {
		if o.SLO == nil {
			http.Error(w, "no slo tracker", http.StatusNotFound)
			return
		}
		if o.Refresh != nil {
			o.Refresh()
		}
		writeJSON(w, o.SLO.Snapshot())
	})
	mux.HandleFunc("/tuner", func(w http.ResponseWriter, r *http.Request) {
		var snap any
		if o.Tuner != nil {
			snap = o.Tuner()
		}
		if snap == nil {
			http.Error(w, "no autotuner", http.StatusNotFound)
			return
		}
		if o.Refresh != nil {
			o.Refresh()
		}
		writeJSON(w, snap)
	})
	mux.HandleFunc("/audit", func(w http.ResponseWriter, r *http.Request) {
		var snap any
		if o.Audit != nil {
			snap = o.Audit()
		}
		if snap == nil {
			http.Error(w, "no auditor", http.StatusNotFound)
			return
		}
		writeJSON(w, snap)
	})
	mux.HandleFunc("/regions", func(w http.ResponseWriter, r *http.Request) {
		if o.Regions == nil {
			http.Error(w, "no region source", http.StatusNotFound)
			return
		}
		if o.Refresh != nil {
			o.Refresh()
		}
		regions := o.Regions()
		if regions == nil {
			regions = []RegionStatus{}
		}
		writeJSON(w, map[string]any{"regions": regions})
	})
	return mux
}

// queryLimit parses ?limit=N with a default; non-positive or unparsable
// values keep the default.
func queryLimit(r *http.Request, def int) int {
	if s := r.URL.Query().Get("limit"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return def
}

// sortRecordsByTotal orders records by TotalNS descending, then Seq
// descending (insertion sort: slow lists are short and already mostly
// ordered by recency).
func sortRecordsByTotal(recs []QueryRecord) {
	for i := 1; i < len(recs); i++ {
		for j := i; j > 0; j-- {
			a, b := &recs[j-1], &recs[j]
			if a.TotalNS > b.TotalNS || (a.TotalNS == b.TotalNS && a.Seq > b.Seq) {
				break
			}
			recs[j-1], recs[j] = recs[j], recs[j-1]
		}
	}
}

// writeJSONError writes a JSON error body ({"error": msg}) with the given
// status, so machine clients of the ops surface never have to sniff plain
// text on failures.
func writeJSONError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(map[string]string{"error": msg})
}

// writeJSON writes v indented with the JSON content type.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// Serve starts an HTTP server for the handler on addr in a background
// goroutine and returns the server plus its bound address (useful with
// ":0"). The caller owns shutdown via srv.Close.
func Serve(addr string, h http.Handler) (*http.Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: h}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr(), nil
}
