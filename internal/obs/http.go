package obs

import (
	"fmt"
	"net"
	"net/http"
)

// Handler serves the registry and trace store over HTTP:
//
//	/metrics        text snapshot (one "name value" line per metric);
//	                ?format=json returns the JSON encoding instead
//	/trace/last     the most recent EXPLAIN ANALYZE trace tree
//
// refresh, when non-nil, runs before each /metrics snapshot so callers can
// update derived gauges (e.g. per-region staleness computed from the clock).
func Handler(reg *Registry, traces *TraceStore, refresh func()) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if refresh != nil {
			refresh()
		}
		snap := reg.Snapshot()
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			_ = snap.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = snap.WriteText(w)
	})
	mux.HandleFunc("/trace/last", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if traces == nil {
			http.Error(w, "no trace store", http.StatusNotFound)
			return
		}
		sql, root := traces.Last()
		if root == nil {
			fmt.Fprintln(w, "no trace recorded; run EXPLAIN ANALYZE <query>")
			return
		}
		fmt.Fprintf(w, "-- %s\n", sql)
		root.Render(w)
	})
	return mux
}

// Serve starts an HTTP server for the handler on addr in a background
// goroutine and returns the server plus its bound address (useful with
// ":0"). The caller owns shutdown via srv.Close.
func Serve(addr string, h http.Handler) (*http.Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: h}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr(), nil
}
