package obs

import (
	"strings"
	"testing"
	"time"
)

func traceFixture() *TraceNode {
	return &TraceNode{
		Name:  "SwitchUnion Customer",
		Opens: 1, Open: 2 * time.Millisecond, Next: time.Millisecond, Rows: 1,
		Guard: &GuardTrace{
			Label: "Customer", Region: 1, Chosen: 0,
			Time: 40 * time.Microsecond, Staleness: 5 * time.Second, Known: true,
		},
		Children: []*TraceNode{
			{Name: "IndexScan(cust_prj.pk)", Opens: 1, Rows: 1, Next: time.Millisecond},
			{Name: "Remote(SELECT ...)"},
		},
	}
}

func TestTraceRender(t *testing.T) {
	got := traceFixture().String()
	for _, want := range []string{
		"SwitchUnion Customer",
		"rows=1",
		"[guard 40µs -> local branch, region 1, staleness 5s]",
		"├─ IndexScan(cust_prj.pk)",
		"└─ Remote(SELECT ...)  (not executed)",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("render missing %q in:\n%s", want, got)
		}
	}
}

func TestTraceShapeDeterministic(t *testing.T) {
	n := traceFixture()
	got := n.ShapeString()
	want := "SwitchUnion Customer  rows=1 [guard -> local branch, region 1, staleness 5s]\n" +
		"├─ IndexScan(cust_prj.pk)  rows=1\n" +
		"└─ Remote(SELECT ...)  (not executed)\n"
	if got != want {
		t.Fatalf("shape:\n%s\nwant:\n%s", got, want)
	}
	// Shape output must not depend on wall time.
	n.Next *= 100
	if n.ShapeString() != want {
		t.Fatal("shape changed with timings")
	}
}

func TestGuardBranch(t *testing.T) {
	if (&GuardTrace{Chosen: 0}).Branch() != "local" {
		t.Fatal("chosen 0 must be local")
	}
	if (&GuardTrace{Chosen: 1}).Branch() != "remote" {
		t.Fatal("chosen 1 must be remote")
	}
}

func TestTraceTotalAndUnknownStaleness(t *testing.T) {
	n := &TraceNode{Opens: 1, Open: 1 * time.Millisecond, Next: 2 * time.Millisecond, Close: 3 * time.Millisecond}
	if n.Total() != 6*time.Millisecond {
		t.Fatalf("total = %v", n.Total())
	}
	g := &TraceNode{Name: "SwitchUnion X", Opens: 1, Guard: &GuardTrace{Chosen: 1}}
	if s := g.ShapeString(); !strings.Contains(s, "staleness unknown") {
		t.Fatalf("unknown staleness not rendered: %s", s)
	}
}

func TestTraceStore(t *testing.T) {
	var ts TraceStore
	if _, root := ts.Last(); root != nil {
		t.Fatal("empty store must return nil")
	}
	n := &TraceNode{Name: "Scan(T)"}
	ts.Set("SELECT 1", n)
	sql, root := ts.Last()
	if sql != "SELECT 1" || root == nil || root.Name != "Scan(T)" {
		t.Fatalf("last = %q, %v", sql, root)
	}
	// Publication is by deep copy: the stored tree never aliases the
	// caller's nodes (see TestTraceStoreCopyOnFinish).
	if root == n {
		t.Fatal("stored trace aliases the caller's tree")
	}
}
