package obs

import (
	"sync/atomic"
	"time"
)

// Span-event kinds (span_events_total{kind}). Fixed strings: dynamic event
// names would defeat both the metric-name lint and the cardinality budget.
const (
	// EventRemoteRetry fires for every link retry attempt.
	EventRemoteRetry = "remote_retry"
	// EventBreakerOpen/HalfOpen/Closed fire on circuit-breaker transitions.
	EventBreakerOpen     = "breaker_open"
	EventBreakerHalfOpen = "breaker_half_open"
	EventBreakerClosed   = "breaker_closed"
	// EventReplApply fires for every replication propagation step that
	// applied at least one transaction.
	EventReplApply = "repl_apply"
)

// Defaults for the cache's always-on tracer.
const (
	// DefaultSampleEvery traces 1 query in 8: cheap enough to leave on,
	// frequent enough that /queries/recent is populated on any workload.
	DefaultSampleEvery = 8
	// DefaultRingSize is how many completed query records are retained.
	DefaultRingSize = 512
)

// GuardObservation is a currency-guard outcome in obs terms (the exec
// package owns GuardDecision; obs cannot import it without a cycle). Bound
// <= 0 means the query carried no finite currency bound.
type GuardObservation struct {
	Region         int
	Chosen         int
	Bound          time.Duration
	GuardTime      time.Duration
	Staleness      time.Duration
	StalenessKnown bool
	Degraded       bool
	BlockWaits     int
}

// Tracer is the always-on query-lifecycle tracer: a deterministic 1-in-N
// sampler over a monotone query counter (so seeded chaos and bench runs
// sample the same queries every time) feeding a lock-free ring of completed
// QueryRecords, plus span-event counters for link retries, breaker
// transitions and replication applies.
//
// The untraced hot path is a single atomic add — no allocation, no lock.
type Tracer struct {
	every uint64
	count atomic.Uint64
	ring  *QueryRing

	sampled *Counter    // trace_sampled_total
	events  *CounterVec // span_events_total{kind}
}

// NewTracer builds a tracer registering trace_sampled_total and
// span_events_total on reg. every <= 1 samples every query; ringSize <= 0
// selects DefaultRingSize.
func NewTracer(reg *Registry, every, ringSize int) *Tracer {
	if every < 1 {
		every = 1
	}
	if ringSize <= 0 {
		ringSize = DefaultRingSize
	}
	return &Tracer{
		every:   uint64(every),
		ring:    NewQueryRing(ringSize),
		sampled: reg.Counter("trace_sampled_total"),
		events:  reg.CounterVec("span_events_total", "kind"),
	}
}

// Ring exposes the completed-record ring (for the /queries endpoints).
func (t *Tracer) Ring() *QueryRing {
	if t == nil {
		return nil
	}
	return t.ring
}

// SampleEvery returns the sampling period N (1 = every query).
func (t *Tracer) SampleEvery() int {
	if t == nil {
		return 0
	}
	return int(t.every)
}

// Begin starts a lifecycle trace for one query, returning nil on the
// unsampled path (one atomic add, zero allocations). The first query is
// always sampled; thereafter every N-th by arrival order.
func (t *Tracer) Begin(sql string) *QueryTrace {
	if t == nil {
		return nil
	}
	n := t.count.Add(1)
	if (n-1)%t.every != 0 {
		return nil
	}
	t.sampled.Inc()
	qt := &QueryTrace{tr: t}
	qt.rec.SQL = sql
	qt.rec.SQLHash = HashSQL(sql)
	return qt
}

// Event counts one span event by kind; kind must be one of the Event*
// constants. Nil-safe so call sites need no tracer guard.
func (t *Tracer) Event(kind string) {
	if t == nil {
		return
	}
	t.events.With(kind).Inc()
}

// QueryTrace accumulates one sampled query's lifecycle record. All methods
// are nil-safe (the unsampled path passes a nil trace through the same call
// sites) and the record is published immutably on Finish.
type QueryTrace struct {
	tr  *Tracer
	rec QueryRecord
}

// Parse records the parse-phase duration.
func (q *QueryTrace) Parse(d time.Duration) {
	if q != nil {
		q.rec.ParseNS = int64(d)
	}
}

// Tenant labels the record with the session's tenant class (empty = no
// tenant attribution; the field is omitted from the JSON).
func (q *QueryTrace) Tenant(name string) {
	if q != nil && name != "" {
		q.rec.Tenant = name
	}
}

// Plan records the plan-phase duration (cache lookup or optimization).
func (q *QueryTrace) Plan(d time.Duration) {
	if q != nil {
		q.rec.PlanNS = int64(d)
	}
}

// Exec records the execution-phase duration.
func (q *QueryTrace) Exec(d time.Duration) {
	if q != nil {
		q.rec.ExecNS = int64(d)
	}
}

// Guard records the (last) currency-guard outcome of the query.
func (q *QueryTrace) Guard(g GuardObservation) {
	if q == nil {
		return
	}
	q.rec.Region = g.Region
	if g.Chosen == 0 {
		q.rec.Branch = "local"
	} else {
		q.rec.Branch = "remote"
	}
	if g.Bound > 0 {
		q.rec.BoundNS = int64(g.Bound)
	}
	q.rec.GuardNS += int64(g.GuardTime)
	q.rec.StalenessNS = int64(g.Staleness)
	q.rec.StalenessKnown = g.StalenessKnown
	q.rec.Degraded = g.Degraded
	q.rec.BlockWaits = g.BlockWaits
}

// MarkDegraded flags the record as a degraded serve independent of any
// guard outcome (the serve-stale whole-query fallback runs without guards).
func (q *QueryTrace) MarkDegraded() {
	if q != nil {
		q.rec.Degraded = true
	}
}

// Retries records how many link retry attempts the query paid for.
func (q *QueryTrace) Retries(n int64) {
	if q != nil {
		q.rec.Retries = n
	}
}

// Finish publishes the completed record into the tracer's ring. The record
// must not be touched afterwards.
func (q *QueryTrace) Finish(failed bool) {
	if q == nil {
		return
	}
	q.rec.Failed = failed
	q.rec.TotalNS = q.rec.ParseNS + q.rec.PlanNS + q.rec.ExecNS
	q.tr.ring.Push(&q.rec)
}
