package obs

import (
	"sort"
	"sync/atomic"
)

// QueryRecord is one completed query's lifecycle record, published into the
// tracer's ring buffer by the sampled tracing path. All durations are
// nanoseconds so the JSON encoding is stable integers, and the record is
// immutable once published (readers share the pointer, never the fields).
type QueryRecord struct {
	// Seq is the record's global publish sequence (monotone per tracer).
	Seq uint64 `json:"seq"`
	// SQLHash is the FNV-1a hash of the canonical query text, the stable
	// identity for aggregating repeated statements.
	SQLHash uint64 `json:"sql_hash"`
	// SQL is the canonical query text.
	SQL string `json:"sql"`
	// Tenant is the issuing session's tenant class, when the session set
	// one (multi-tenant load runs); empty otherwise.
	Tenant string `json:"tenant,omitempty"`
	// BoundNS is the session's currency bound on the guarded region in
	// nanoseconds; 0 means the query carried no (finite) currency bound.
	BoundNS int64 `json:"bound_ns"`
	// Region is the currency region of the guarded branch (0 when the plan
	// had no guard).
	Region int `json:"region"`
	// Branch is "local", "remote", or "" for unguarded plans.
	Branch string `json:"branch"`
	// Degraded is set when the answer came from the local branch only
	// because the remote fall-back was unavailable.
	Degraded bool `json:"degraded"`
	// BlockWaits counts guard re-evaluations a blocking session performed.
	BlockWaits int `json:"block_waits"`
	// Retries is how many link retry attempts the query paid for.
	Retries int64 `json:"retries"`
	// StalenessNS is the guarded region's staleness at decision time; valid
	// only when StalenessKnown.
	StalenessNS    int64 `json:"staleness_ns"`
	StalenessKnown bool  `json:"staleness_known"`
	// Failed is set when execution returned an error.
	Failed bool `json:"failed"`
	// Per-phase durations of the lifecycle: parse, plan (cache lookup or
	// optimization), guard (selector evaluation) and execution. TotalNS is
	// their sum (guard time is included in exec wall time, so the sum over
	// parse+plan+exec).
	ParseNS int64 `json:"parse_ns"`
	PlanNS  int64 `json:"plan_ns"`
	GuardNS int64 `json:"guard_ns"`
	ExecNS  int64 `json:"exec_ns"`
	TotalNS int64 `json:"total_ns"`
}

// QueryRing is a lock-free ring buffer of recently completed query records.
// Push is wait-free (one atomic add plus one atomic pointer store) and
// records are immutable after publication, so Snapshot never observes a
// half-written record. Capacity is rounded up to a power of two.
type QueryRing struct {
	mask  uint64
	pos   atomic.Uint64
	slots []atomic.Pointer[QueryRecord]
}

// NewQueryRing creates a ring holding the most recent `size` records
// (rounded up to a power of two, minimum 16).
func NewQueryRing(size int) *QueryRing {
	n := 16
	for n < size {
		n <<= 1
	}
	return &QueryRing{mask: uint64(n - 1), slots: make([]atomic.Pointer[QueryRecord], n)}
}

// Push publishes a completed record, assigning its sequence number. The
// record must not be mutated afterwards.
func (r *QueryRing) Push(rec *QueryRecord) {
	seq := r.pos.Add(1)
	rec.Seq = seq
	r.slots[(seq-1)&r.mask].Store(rec)
}

// Len returns how many records have ever been pushed.
func (r *QueryRing) Len() uint64 { return r.pos.Load() }

// Snapshot copies the ring's current records, newest first. Concurrent
// pushes may replace slots mid-walk; each observed record is still complete
// (immutability), just possibly from slightly different instants.
func (r *QueryRing) Snapshot() []QueryRecord {
	out := make([]QueryRecord, 0, len(r.slots))
	for i := range r.slots {
		if rec := r.slots[i].Load(); rec != nil {
			out = append(out, *rec)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq > out[j].Seq })
	return out
}

// fnvOffset/fnvPrime are the FNV-1a 64-bit parameters.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// HashSQL returns the FNV-1a 64-bit hash of the query text, allocation-free.
func HashSQL(sql string) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < len(sql); i++ {
		h ^= uint64(sql[i])
		h *= fnvPrime
	}
	return h
}
