package obs

import (
	"testing"
	"time"
)

func obsWithin(region int) GuardObservation {
	return GuardObservation{Region: region, Chosen: 0, Bound: 10 * time.Second,
		Staleness: time.Second, StalenessKnown: true}
}

func obsDegraded(region int) GuardObservation {
	return GuardObservation{Region: region, Chosen: 0, Bound: 10 * time.Second,
		Staleness: 30 * time.Second, StalenessKnown: true, Degraded: true}
}

func TestSLOWithinBoundSemantics(t *testing.T) {
	s := NewSLOTracker(NewRegistry(), 0.9, 16)
	// Guard-approved local serve inside the bound: within.
	s.Observe(obsWithin(1))
	// Remote serve: within by definition (master data).
	s.Observe(GuardObservation{Region: 1, Chosen: 1, Bound: time.Second})
	// Degraded serve: counts against budget even if staleness looks fine.
	s.Observe(GuardObservation{Region: 1, Chosen: 0, Bound: 10 * time.Second,
		Staleness: time.Second, StalenessKnown: true, Degraded: true})
	// Local serve with unknown staleness: the guard vouched, so within.
	s.Observe(GuardObservation{Region: 1, Chosen: 0, Bound: time.Second})
	// Local serve observed over the bound: not within.
	s.Observe(GuardObservation{Region: 1, Chosen: 0, Bound: time.Second,
		Staleness: 2 * time.Second, StalenessKnown: true})

	snap := s.Snapshot()
	if len(snap.Regions) != 1 {
		t.Fatalf("regions = %d, want 1", len(snap.Regions))
	}
	r := snap.Regions[0]
	if r.Observations != 5 || r.Within != 3 || r.Degraded != 1 {
		t.Fatalf("counts wrong: %+v", r)
	}
	if r.WithinRatio != 0.6 {
		t.Fatalf("within ratio = %v, want 0.6", r.WithinRatio)
	}
}

func TestSLOSlidingWindowEviction(t *testing.T) {
	s := NewSLOTracker(NewRegistry(), 0.99, 4)
	for i := 0; i < 4; i++ {
		s.Observe(obsDegraded(2))
	}
	for i := 0; i < 4; i++ {
		s.Observe(obsWithin(2))
	}
	r := s.Snapshot().Regions[0]
	if r.Observations != 4 || r.Within != 4 || r.Degraded != 0 {
		t.Fatalf("window did not evict: %+v", r)
	}
	if r.ErrorBudget != 1 {
		t.Fatalf("error budget = %v, want 1 after recovery", r.ErrorBudget)
	}
}

func TestSLOErrorBudgetMath(t *testing.T) {
	// target 0.9 over 10 observations allows 1 miss: one miss spends the
	// whole budget, more clamps at 0.
	s := NewSLOTracker(NewRegistry(), 0.9, 10)
	for i := 0; i < 9; i++ {
		s.Observe(obsWithin(1))
	}
	s.Observe(obsDegraded(1))
	r := s.Snapshot().Regions[0]
	if r.ErrorBudget != 0 {
		t.Fatalf("budget = %v, want 0 with the allowance exactly spent", r.ErrorBudget)
	}

	if got := errorBudget(0.9, 95, 100); got < 0.49 || got > 0.51 {
		t.Fatalf("half-spent budget = %v, want 0.5", got)
	}
	if got := errorBudget(0.9, 80, 100); got != 0 {
		t.Fatalf("overspent budget = %v, want clamped 0", got)
	}
	if got := errorBudget(1.0, 100, 100); got != 1 {
		t.Fatalf("perfect run at target 1.0 = %v, want 1", got)
	}
	if got := errorBudget(1.0, 99, 100); got != 0 {
		t.Fatalf("any miss at target 1.0 = %v, want 0", got)
	}
	if got := errorBudget(0.99, 0, 0); got != 1 {
		t.Fatalf("empty window budget = %v, want 1", got)
	}
}

func TestSLOSnapshotDeterministicOrderAndPercentiles(t *testing.T) {
	s := NewSLOTracker(NewRegistry(), 0.99, 64)
	for _, region := range []int{3, 1, 2} {
		for i := 1; i <= 4; i++ {
			s.Observe(GuardObservation{Region: region, Chosen: 0,
				Bound:     time.Minute,
				Staleness: time.Duration(i) * time.Second, StalenessKnown: true})
		}
	}
	snap := s.Snapshot()
	if len(snap.Regions) != 3 {
		t.Fatalf("regions = %d", len(snap.Regions))
	}
	for i, want := range []int{1, 2, 3} {
		if snap.Regions[i].Region != want {
			t.Fatalf("region order %v, want sorted by id", snap.Regions)
		}
	}
	r := snap.Regions[0]
	if r.StalenessP50NS != int64(2*time.Second) || r.StalenessMaxNS != int64(4*time.Second) {
		t.Fatalf("percentiles wrong: %+v", r)
	}
	if r.StalenessP95NS > r.StalenessP99NS || r.StalenessP99NS > r.StalenessMaxNS {
		t.Fatalf("percentiles not monotone: %+v", r)
	}
}

func TestSLOGaugesExported(t *testing.T) {
	reg := NewRegistry()
	s := NewSLOTracker(reg, 0.5, 8)
	s.Observe(obsWithin(7))
	s.Observe(obsDegraded(7))
	snap := reg.Snapshot()
	if got := snap.Gauges[`slo_within_bound_ratio{region="7"}`]; got != 500000 {
		t.Fatalf("ratio gauge = %d ppm, want 500000", got)
	}
	if got := snap.Gauges[`slo_error_budget{region="7"}`]; got != 0 {
		t.Fatalf("budget gauge = %d ppm, want 0 (1 miss of 1 allowed)", got)
	}
	if _, ok := snap.Histograms[`slo_served_staleness_ns{region="7"}`]; !ok {
		t.Fatal("served-staleness histogram missing")
	}
	var nilTracker *SLOTracker
	nilTracker.Observe(obsWithin(1)) // nil-safe
}

func TestNormalizeBound(t *testing.T) {
	if NormalizeBound(-1) != 0 || NormalizeBound(0) != 0 {
		t.Fatal("non-positive bounds must normalize to 0")
	}
	if NormalizeBound(time.Duration(1<<63-1)) != 0 {
		t.Fatal("the unconstrained sentinel must normalize to 0")
	}
	if NormalizeBound(time.Second) != time.Second {
		t.Fatal("finite bounds must pass through")
	}
}
