package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// GuardTrace records one SwitchUnion currency-guard decision: which branch
// the guard picked, how long the check took, and the region's observed
// staleness at decision time (query Now minus the local heartbeat).
type GuardTrace struct {
	Label  string        `json:"label"`
	Region int           `json:"region"`
	Chosen int           `json:"chosen"`
	Time   time.Duration `json:"guard_time_ns"`
	// Staleness is meaningful only when Known is true (a region that never
	// synchronized has unknown staleness).
	Staleness time.Duration `json:"staleness_ns"`
	Known     bool          `json:"staleness_known"`
	// Degraded is set when the guard picked the remote branch but the local
	// branch answered because the remote was unavailable (a recorded
	// staleness-violation warning).
	Degraded bool `json:"degraded,omitempty"`
	// BlockWaits is how many times a blocking session re-evaluated this
	// guard before it passed.
	BlockWaits int `json:"block_waits,omitempty"`
}

// Branch names the chosen branch: by convention child 0 is the local
// materialized view and child 1 the remote fall-back.
func (g *GuardTrace) Branch() string {
	if g.Chosen == 0 {
		return "local"
	}
	return "remote"
}

// TraceNode is one operator's record in a plan-shaped execution trace:
// inclusive wall time per iterator phase (a parent's Next time includes its
// children's), rows and batches produced, and the guard decision for
// SwitchUnion nodes. Children mirror the plan tree, including branches that
// were never opened (Opens == 0).
type TraceNode struct {
	Name     string        `json:"name"`
	Opens    int64         `json:"opens"`
	Open     time.Duration `json:"open_ns"`
	Next     time.Duration `json:"next_ns"`
	Close    time.Duration `json:"close_ns"`
	Rows     int64         `json:"rows"`
	Batches  int64         `json:"batches"`
	Guard    *GuardTrace   `json:"guard,omitempty"`
	Children []*TraceNode  `json:"children,omitempty"`
}

// Total returns the node's inclusive wall time across all phases.
func (n *TraceNode) Total() time.Duration { return n.Open + n.Next + n.Close }

// Render writes the trace as an indented plan tree with per-node timings —
// the EXPLAIN ANALYZE output.
func (n *TraceNode) Render(w io.Writer) {
	n.render(w, "", "", true)
}

// String renders the trace to a string.
func (n *TraceNode) String() string {
	var sb strings.Builder
	n.Render(&sb)
	return sb.String()
}

func (n *TraceNode) render(w io.Writer, prefix, childPrefix string, timings bool) {
	fmt.Fprintf(w, "%s%s", prefix, n.Name)
	if n.Opens == 0 {
		fmt.Fprintf(w, "  (not executed)")
	} else if timings {
		fmt.Fprintf(w, "  time=%s rows=%d", fmtDur(n.Total()), n.Rows)
		if n.Batches > 0 {
			fmt.Fprintf(w, " batches=%d", n.Batches)
		}
	} else {
		fmt.Fprintf(w, "  rows=%d", n.Rows)
	}
	if g := n.Guard; g != nil && n.Opens > 0 {
		stale := "unknown"
		if g.Known {
			stale = g.Staleness.String()
		}
		if timings {
			fmt.Fprintf(w, " [guard %s -> %s branch, region %d, staleness %s]",
				fmtDur(g.Time), g.Branch(), g.Region, stale)
		} else {
			fmt.Fprintf(w, " [guard -> %s branch, region %d, staleness %s]",
				g.Branch(), g.Region, stale)
		}
		if g.Degraded {
			fmt.Fprintf(w, " [DEGRADED: remote unavailable, served local]")
		}
		if g.BlockWaits > 0 {
			fmt.Fprintf(w, " [blocked %d wait(s)]", g.BlockWaits)
		}
	}
	fmt.Fprintln(w)
	for i, c := range n.Children {
		connector, indent := "├─ ", "│  "
		if i == len(n.Children)-1 {
			connector, indent = "└─ ", "   "
		}
		c.render(w, childPrefix+connector, childPrefix+indent, timings)
	}
}

// RenderShape writes the trace without wall-clock timings: node names, row
// counts and guard verdicts only. Under a virtual clock this rendering is
// fully deterministic, which is what the golden-output tests assert.
func (n *TraceNode) RenderShape(w io.Writer) {
	n.render(w, "", "", false)
}

// ShapeString returns the deterministic rendering as a string.
func (n *TraceNode) ShapeString() string {
	var sb strings.Builder
	n.RenderShape(&sb)
	return sb.String()
}

// fmtDur rounds a duration for display so trees stay readable.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	case d >= time.Microsecond:
		return d.Round(100 * time.Nanosecond).String()
	default:
		return d.String()
	}
}

// Clone deep-copies the trace tree, including guard records. Publication
// sites clone before sharing so a published tree is immutable: the original
// nodes stay wired into the instrumented operator tree (exec.Instrument
// wraps children in place), and any future re-execution of that tree would
// otherwise mutate counters under a concurrent /trace/last reader.
func (n *TraceNode) Clone() *TraceNode {
	if n == nil {
		return nil
	}
	cp := *n
	if n.Guard != nil {
		g := *n.Guard
		cp.Guard = &g
	}
	if n.Children != nil {
		cp.Children = make([]*TraceNode, len(n.Children))
		for i, c := range n.Children {
			cp.Children[i] = c.Clone()
		}
	}
	return &cp
}

// TraceStore retains the most recent execution trace, for the /trace/last
// endpoint and the shell's \trace meta command.
type TraceStore struct {
	mu   sync.Mutex
	sql  string
	root *TraceNode
}

// Set stores the latest trace with the statement that produced it. The tree
// is deep-copied on publication (copy-on-finish), so readers returned by
// Last can never observe mutations from a later run of the same
// instrumented operator tree.
func (t *TraceStore) Set(sql string, root *TraceNode) {
	root = root.Clone()
	t.mu.Lock()
	t.sql, t.root = sql, root
	t.mu.Unlock()
}

// Last returns the most recent trace, or nil if none was recorded.
func (t *TraceStore) Last() (string, *TraceNode) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sql, t.root
}
