package obs

import (
	"sync"
	"testing"
)

func TestQueryRingRoundsToPowerOfTwo(t *testing.T) {
	r := NewQueryRing(100)
	if len(r.slots) != 128 {
		t.Fatalf("ring size = %d, want 128", len(r.slots))
	}
	if NewQueryRing(0).slots == nil || len(NewQueryRing(0).slots) != 16 {
		t.Fatal("minimum ring size should be 16")
	}
}

func TestQueryRingNewestFirstAndEviction(t *testing.T) {
	r := NewQueryRing(16)
	for i := 0; i < 40; i++ {
		r.Push(&QueryRecord{TotalNS: int64(i)})
	}
	snap := r.Snapshot()
	if len(snap) != 16 {
		t.Fatalf("snapshot length = %d, want 16", len(snap))
	}
	if snap[0].Seq != 40 || snap[len(snap)-1].Seq != 25 {
		t.Fatalf("snapshot seq range = [%d, %d], want [40, 25]", snap[0].Seq, snap[len(snap)-1].Seq)
	}
	for i := 1; i < len(snap); i++ {
		if snap[i].Seq >= snap[i-1].Seq {
			t.Fatalf("snapshot not newest-first at %d", i)
		}
	}
	if r.Len() != 40 {
		t.Fatalf("Len = %d, want 40", r.Len())
	}
}

// TestQueryRingConcurrent hammers Push and Snapshot together; run under
// -race this pins the lock-free publication protocol.
func TestQueryRingConcurrent(t *testing.T) {
	r := NewQueryRing(64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				r.Push(&QueryRecord{SQLHash: uint64(i), TotalNS: int64(i)})
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		select {
		case <-done:
			if got := r.Len(); got != 8000 {
				t.Fatalf("Len = %d, want 8000", got)
			}
			return
		default:
			for _, rec := range r.Snapshot() {
				if rec.SQLHash != uint64(rec.TotalNS) {
					t.Fatalf("torn record: hash=%d total=%d", rec.SQLHash, rec.TotalNS)
				}
			}
		}
	}
}

func TestHashSQLStable(t *testing.T) {
	if HashSQL("SELECT 1") != HashSQL("SELECT 1") {
		t.Fatal("hash not stable")
	}
	if HashSQL("SELECT 1") == HashSQL("SELECT 2") {
		t.Fatal("hash does not discriminate")
	}
	if HashSQL("") != fnvOffset {
		t.Fatal("empty hash must be the FNV offset basis")
	}
}
