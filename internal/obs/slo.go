package obs

import (
	"sort"
	"strconv"
	"sync"
	"time"
)

// Defaults for the cache's currency-SLO tracker.
const (
	// DefaultSLOTarget is the objective fraction of answers served within
	// their session currency bound.
	DefaultSLOTarget = 0.99
	// DefaultSLOWindow is the sliding window length in guard observations.
	// Count-based (not time-based) windows keep the tracker fully
	// deterministic under the virtual clock.
	DefaultSLOWindow = 1024
)

// gaugeScale converts ratios in [0,1] to parts-per-million for the integer
// gauge registry (slo_within_bound_ratio / slo_error_budget).
const gaugeScale = 1e6

// SLOTracker tracks per-region currency SLOs over a sliding window of guard
// observations: the fraction of answers served within their session bound,
// and the remaining error budget against the target. DEGRADED serves (local
// answers forced by remote unavailability) always count against the budget —
// they are precisely the answers whose currency the guard could not vouch
// for.
//
// Exported metrics, all updated on every observation:
//
//	slo_within_bound_ratio{region}   within-bound fraction of the window, ppm
//	slo_error_budget{region}         remaining error budget fraction, ppm
//	slo_served_staleness_ns{region}  staleness of locally served answers
type SLOTracker struct {
	target float64
	window int

	ratio  *GaugeVec
	budget *GaugeVec
	stale  *HistogramVec

	mu      sync.Mutex
	regions map[int]*regionWindow
}

// sloSample is one guard observation in a region's window.
type sloSample struct {
	within      bool
	degraded    bool
	stalenessNS int64
	known       bool
}

// regionWindow is one region's ring of observations with its instruments
// pre-resolved (label strings are built once, keeping Observe alloc-free).
type regionWindow struct {
	samples  []sloSample
	pos      int
	count    int
	within   int
	degraded int

	ratioG  *Gauge
	budgetG *Gauge
	staleH  *Histogram
}

// NewSLOTracker builds a tracker registering the SLO gauges and histogram on
// reg. target outside (0,1] selects DefaultSLOTarget; window <= 0 selects
// DefaultSLOWindow.
func NewSLOTracker(reg *Registry, target float64, window int) *SLOTracker {
	if target <= 0 || target > 1 {
		target = DefaultSLOTarget
	}
	if window <= 0 {
		window = DefaultSLOWindow
	}
	return &SLOTracker{
		target:  target,
		window:  window,
		ratio:   reg.GaugeVec("slo_within_bound_ratio", "region"),
		budget:  reg.GaugeVec("slo_error_budget", "region"),
		stale:   reg.HistogramVec("slo_served_staleness_ns", "region"),
		regions: map[int]*regionWindow{},
	}
}

// Reconfigure replaces the tracker's target and window and resets every
// region's accumulated observations (mixed-window counts would be
// meaningless). target outside (0,1] selects DefaultSLOTarget; window <= 0
// selects DefaultSLOWindow. Harness scenarios use it to size the window to
// the run length before any traffic flows.
func (s *SLOTracker) Reconfigure(target float64, window int) {
	if target <= 0 || target > 1 {
		target = DefaultSLOTarget
	}
	if window <= 0 {
		window = DefaultSLOWindow
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.target = target
	s.window = window
	// Region windows are rebuilt lazily at their next observation; dropping
	// them here also resets the within/degraded counts.
	s.regions = map[int]*regionWindow{}
}

// Target returns the within-bound objective.
func (s *SLOTracker) Target() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.target
}

// Window returns the sliding-window length in observations.
func (s *SLOTracker) Window() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.window
}

// Observe feeds one guard outcome into the region's window and republishes
// the gauges. Within-bound semantics:
//
//   - degraded serve: NOT within bound (the guard wanted remote; counts
//     against the budget regardless of observed staleness);
//   - remote serve: within bound (master data is current by definition);
//   - local serve: within bound iff the observed staleness satisfies the
//     bound (unknown staleness or an unbounded query trusts the guard).
//
// Nil-safe; zero allocations after a region's first observation.
func (s *SLOTracker) Observe(g GuardObservation) {
	if s == nil {
		return
	}
	within := true
	switch {
	case g.Degraded:
		within = false
	case g.Chosen != 0:
		within = true
	case g.StalenessKnown && g.Bound > 0:
		within = g.Staleness <= g.Bound
	}

	s.mu.Lock()
	rw := s.regions[g.Region]
	if rw == nil {
		label := strconv.Itoa(g.Region)
		rw = &regionWindow{
			samples: make([]sloSample, s.window),
			ratioG:  s.ratio.With(label),
			budgetG: s.budget.With(label),
			staleH:  s.stale.With(label),
		}
		s.regions[g.Region] = rw
	}
	if rw.count == len(rw.samples) {
		old := rw.samples[rw.pos]
		if old.within {
			rw.within--
		}
		if old.degraded {
			rw.degraded--
		}
	} else {
		rw.count++
	}
	smp := sloSample{within: within, degraded: g.Degraded}
	if g.Chosen == 0 && g.StalenessKnown {
		smp.stalenessNS = int64(g.Staleness)
		smp.known = true
	}
	rw.samples[rw.pos] = smp
	rw.pos = (rw.pos + 1) % len(rw.samples)
	if within {
		rw.within++
	}
	if g.Degraded {
		rw.degraded++
	}
	rw.ratioG.Set(int64(float64(rw.within) / float64(rw.count) * gaugeScale))
	rw.budgetG.Set(int64(errorBudget(s.target, rw.within, rw.count) * gaugeScale))
	s.mu.Unlock()

	// Histogram observation outside the lock: the instrument is atomic.
	if smp.known {
		rw.staleH.Observe(smp.stalenessNS)
	}
}

// errorBudget returns the remaining error-budget fraction in [0,1]: 1 means
// untouched, 0 means spent (or overspent). With target t over a window of
// count observations, the budget allows (1-t)*count misses.
func errorBudget(target float64, within, count int) float64 {
	if count == 0 {
		return 1
	}
	allowed := (1 - target) * float64(count)
	missed := float64(count - within)
	if allowed <= 0 {
		if missed > 0 {
			return 0
		}
		return 1
	}
	rem := 1 - missed/allowed
	if rem < 0 {
		return 0
	}
	return rem
}

// RegionSLO is one region's SLO state in a snapshot.
type RegionSLO struct {
	Region       int     `json:"region"`
	Observations int     `json:"observations"`
	Within       int     `json:"within"`
	Degraded     int     `json:"degraded"`
	WithinRatio  float64 `json:"within_ratio"`
	ErrorBudget  float64 `json:"error_budget"`
	// Staleness percentiles (nearest-rank) over the locally served answers
	// in the window with known staleness.
	StalenessP50NS int64 `json:"staleness_p50_ns"`
	StalenessP95NS int64 `json:"staleness_p95_ns"`
	StalenessP99NS int64 `json:"staleness_p99_ns"`
	StalenessMaxNS int64 `json:"staleness_max_ns"`
}

// SLOSnapshot is the /slo endpoint's payload: fully deterministic under a
// virtual clock (count-based windows, no wall-clock fields, regions sorted
// by id).
type SLOSnapshot struct {
	Target  float64     `json:"target"`
	Window  int         `json:"window"`
	Regions []RegionSLO `json:"regions"`
}

// Snapshot returns the current per-region SLO state, sorted by region id.
func (s *SLOTracker) Snapshot() SLOSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := SLOSnapshot{Target: s.target, Window: s.window, Regions: []RegionSLO{}}
	ids := make([]int, 0, len(s.regions))
	for id := range s.regions {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		rw := s.regions[id]
		r := RegionSLO{
			Region:       id,
			Observations: rw.count,
			Within:       rw.within,
			Degraded:     rw.degraded,
			ErrorBudget:  errorBudget(s.target, rw.within, rw.count),
		}
		if rw.count > 0 {
			r.WithinRatio = float64(rw.within) / float64(rw.count)
		}
		var stale []int64
		for i := 0; i < rw.count; i++ {
			if smp := rw.samples[i]; smp.known {
				stale = append(stale, smp.stalenessNS)
			}
		}
		sort.Slice(stale, func(i, j int) bool { return stale[i] < stale[j] })
		r.StalenessP50NS = nearestRank(stale, 0.50)
		r.StalenessP95NS = nearestRank(stale, 0.95)
		r.StalenessP99NS = nearestRank(stale, 0.99)
		r.StalenessMaxNS = nearestRank(stale, 1.00)
		snap.Regions = append(snap.Regions, r)
	}
	return snap
}

// nearestRank returns the p-quantile of sorted samples (zero when empty).
func nearestRank(sorted []int64, p float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p*float64(len(sorted))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// NormalizeBound maps a planner bound to the normalization used across obs:
// durations <= 0 or the planner's "unconstrained" sentinel (max duration)
// mean no finite bound and return 0.
func NormalizeBound(d time.Duration) time.Duration {
	if d <= 0 || d == time.Duration(1<<63-1) {
		return 0
	}
	return d
}
