package obs

import (
	"sort"
	"sync"
	"time"
)

// Capacity limits for the workload observer's per-region state. Both exist
// to bound memory under adversarial workloads without losing determinism:
// overflow handling depends only on the values seen, never on map order or
// wall-clock time.
const (
	// workloadMaxBounds caps the distinct currency bounds tracked per
	// region; further bounds fold into the nearest tracked one.
	workloadMaxBounds = 32
	// workloadStalenessCap caps the per-region served-staleness sample ring;
	// older samples are overwritten in arrival order.
	workloadStalenessCap = 512
)

// BoundCount is one bar of a region's bound-mix histogram: how many queries
// in the window declared the given currency bound.
type BoundCount struct {
	BoundNS int64 `json:"bound_ns"`
	Count   int64 `json:"count"`
}

// WorkloadProfile is one region's observed workload over one window: the
// inputs the autotuning loop feeds into the paper's Section 6 cost model.
// Durations are nanoseconds for stable JSON.
type WorkloadProfile struct {
	Region int `json:"region"`
	// WindowNS is the observation window length (now minus the window
	// start).
	WindowNS int64 `json:"window_ns"`
	// Queries is the number of guard decisions observed in the window;
	// QueriesPerSecond is the derived arrival rate.
	Queries          int64   `json:"queries"`
	QueriesPerSecond float64 `json:"queries_per_second"`
	// Guard pick counts: Local and Remote partition the decisions by chosen
	// branch; Degraded counts local serves forced by remote unavailability
	// (a subset of Local).
	Local    int64 `json:"local"`
	Remote   int64 `json:"remote"`
	Degraded int64 `json:"degraded"`
	// Unbounded counts queries with no finite currency bound; they are
	// excluded from the bound mix.
	Unbounded int64 `json:"unbounded"`
	// Bounds is the bound-mix histogram, ascending by bound.
	Bounds []BoundCount `json:"bounds"`
	// Served-staleness percentiles (nearest-rank) over the window's local
	// serves with known staleness.
	StalenessP50NS int64 `json:"staleness_p50_ns"`
	StalenessP95NS int64 `json:"staleness_p95_ns"`
	StalenessMaxNS int64 `json:"staleness_max_ns"`
}

// WorkloadObserver aggregates every guard decision into per-region windowed
// workload profiles: bound-mix histogram, arrival rate, guard pick ratios
// and served-staleness distribution. It is the observation layer of the
// closed-loop autotuner — it only aggregates what the system already sees,
// and is fully deterministic under the virtual clock (windows are cut by
// the caller, never by wall-clock timers).
//
// Safe for concurrent use: Record is called from query sessions while
// Snapshot/Cut run from the tuner loop or the ops surface.
type WorkloadObserver struct {
	mu          sync.Mutex
	windowStart time.Time
	regions     map[int]*regionWorkload
}

// regionWorkload is one region's accumulation for the current window.
type regionWorkload struct {
	queries   int64
	local     int64
	remote    int64
	degraded  int64
	unbounded int64
	bounds    map[time.Duration]int64

	stale      [workloadStalenessCap]int64
	stalePos   int
	staleCount int
}

// NewWorkloadObserver starts an observer with its first window opening at
// start (the current virtual time).
func NewWorkloadObserver(start time.Time) *WorkloadObserver {
	return &WorkloadObserver{windowStart: start, regions: map[int]*regionWorkload{}}
}

// Record folds one guard decision into the region's current window.
// Nil-safe, so unwired callers can always invoke it.
func (w *WorkloadObserver) Record(now time.Time, g GuardObservation) {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	rw := w.regions[g.Region]
	if rw == nil {
		rw = &regionWorkload{bounds: map[time.Duration]int64{}}
		w.regions[g.Region] = rw
	}
	rw.queries++
	if g.Chosen == 0 {
		rw.local++
	} else {
		rw.remote++
	}
	if g.Degraded {
		rw.degraded++
	}
	if b := NormalizeBound(g.Bound); b == 0 {
		rw.unbounded++
	} else {
		rw.addBound(b)
	}
	if g.Chosen == 0 && g.StalenessKnown {
		rw.stale[rw.stalePos] = int64(g.Staleness)
		rw.stalePos = (rw.stalePos + 1) % workloadStalenessCap
		if rw.staleCount < workloadStalenessCap {
			rw.staleCount++
		}
	}
}

// addBound counts one occurrence of bound b, folding into the nearest
// tracked bound once the per-region cap is reached. Nearest is by absolute
// distance with ties to the smaller bound — a rule that depends only on the
// tracked values, keeping overflow deterministic.
func (rw *regionWorkload) addBound(b time.Duration) {
	if _, ok := rw.bounds[b]; ok || len(rw.bounds) < workloadMaxBounds {
		rw.bounds[b]++
		return
	}
	var nearest time.Duration
	bestDist := time.Duration(-1)
	for have := range rw.bounds {
		dist := have - b
		if dist < 0 {
			dist = -dist
		}
		if bestDist < 0 || dist < bestDist || (dist == bestDist && have < nearest) {
			nearest, bestDist = have, dist
		}
	}
	rw.bounds[nearest]++
}

// Snapshot returns the profiles of the current (still accumulating) window
// at time now, sorted by region id, without resetting anything.
func (w *WorkloadObserver) Snapshot(now time.Time) []WorkloadProfile {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.profilesLocked(now)
}

// Cut closes the current window at time now: it returns the window's
// profiles and starts a fresh window. The tuner loop calls it once per
// cadence tick so each decision sees exactly one window of traffic.
func (w *WorkloadObserver) Cut(now time.Time) []WorkloadProfile {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := w.profilesLocked(now)
	w.windowStart = now
	for _, rw := range w.regions {
		*rw = regionWorkload{bounds: map[time.Duration]int64{}}
	}
	return out
}

// WindowStart returns when the current window opened.
func (w *WorkloadObserver) WindowStart() time.Time {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.windowStart
}

func (w *WorkloadObserver) profilesLocked(now time.Time) []WorkloadProfile {
	window := now.Sub(w.windowStart)
	ids := make([]int, 0, len(w.regions))
	for id := range w.regions {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]WorkloadProfile, 0, len(ids))
	for _, id := range ids {
		rw := w.regions[id]
		p := WorkloadProfile{
			Region:    id,
			WindowNS:  int64(window),
			Queries:   rw.queries,
			Local:     rw.local,
			Remote:    rw.remote,
			Degraded:  rw.degraded,
			Unbounded: rw.unbounded,
			Bounds:    []BoundCount{},
		}
		if window > 0 {
			p.QueriesPerSecond = float64(rw.queries) / window.Seconds()
		}
		for b, n := range rw.bounds {
			p.Bounds = append(p.Bounds, BoundCount{BoundNS: int64(b), Count: n})
		}
		sort.Slice(p.Bounds, func(i, j int) bool { return p.Bounds[i].BoundNS < p.Bounds[j].BoundNS })
		if rw.staleCount > 0 {
			stale := append([]int64(nil), rw.stale[:rw.staleCount]...)
			sort.Slice(stale, func(i, j int) bool { return stale[i] < stale[j] })
			p.StalenessP50NS = nearestRank(stale, 0.50)
			p.StalenessP95NS = nearestRank(stale, 0.95)
			p.StalenessMaxNS = nearestRank(stale, 1.00)
		}
		out = append(out, p)
	}
	return out
}
