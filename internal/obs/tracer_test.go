package obs

import (
	"testing"
	"time"
)

// TestTracerDeterministicSampling pins the 1-in-N sampler: the first query
// is always sampled, then every N-th by arrival order — the property that
// keeps seeded chaos and bench runs byte-identical.
func TestTracerDeterministicSampling(t *testing.T) {
	tr := NewTracer(NewRegistry(), 4, 64)
	var sampled []int
	for i := 0; i < 12; i++ {
		if qt := tr.Begin("SELECT 1"); qt != nil {
			sampled = append(sampled, i)
			qt.Finish(false)
		}
	}
	want := []int{0, 4, 8}
	if len(sampled) != len(want) {
		t.Fatalf("sampled %v, want %v", sampled, want)
	}
	for i := range want {
		if sampled[i] != want[i] {
			t.Fatalf("sampled %v, want %v", sampled, want)
		}
	}
	if got := tr.Ring().Len(); got != 3 {
		t.Fatalf("ring has %d records, want 3", got)
	}
}

func TestTracerRecordLifecycle(t *testing.T) {
	tr := NewTracer(NewRegistry(), 1, 16)
	qt := tr.Begin("SELECT v FROM T")
	if qt == nil {
		t.Fatal("every=1 must sample every query")
	}
	qt.Parse(1 * time.Millisecond)
	qt.Plan(2 * time.Millisecond)
	qt.Exec(4 * time.Millisecond)
	qt.Guard(GuardObservation{
		Region: 1, Chosen: 0, Bound: 5 * time.Second,
		GuardTime: 10 * time.Microsecond,
		Staleness: 3 * time.Second, StalenessKnown: true,
		Degraded: true, BlockWaits: 2,
	})
	qt.Retries(3)
	qt.Finish(false)

	recs := tr.Ring().Snapshot()
	if len(recs) != 1 {
		t.Fatalf("ring has %d records, want 1", len(recs))
	}
	rec := recs[0]
	if rec.SQL != "SELECT v FROM T" || rec.SQLHash != HashSQL(rec.SQL) {
		t.Fatalf("sql/hash mismatch: %+v", rec)
	}
	if rec.Branch != "local" || rec.Region != 1 || !rec.Degraded || rec.BlockWaits != 2 {
		t.Fatalf("guard fields wrong: %+v", rec)
	}
	if rec.BoundNS != int64(5*time.Second) || rec.StalenessNS != int64(3*time.Second) || !rec.StalenessKnown {
		t.Fatalf("bound/staleness wrong: %+v", rec)
	}
	if rec.Retries != 3 || rec.Failed {
		t.Fatalf("retries/failed wrong: %+v", rec)
	}
	if rec.TotalNS != rec.ParseNS+rec.PlanNS+rec.ExecNS || rec.TotalNS != int64(7*time.Millisecond) {
		t.Fatalf("total wrong: %+v", rec)
	}
	if rec.GuardNS != int64(10*time.Microsecond) {
		t.Fatalf("guard time wrong: %+v", rec)
	}
}

// TestTracerNilSafety: a nil tracer and the nil (unsampled) trace must both
// swallow every call — the call sites thread them unconditionally.
func TestTracerNilSafety(t *testing.T) {
	var tr *Tracer
	if tr.Begin("x") != nil {
		t.Fatal("nil tracer must not sample")
	}
	tr.Event(EventRemoteRetry)
	var qt *QueryTrace
	qt.Parse(time.Second)
	qt.Plan(time.Second)
	qt.Exec(time.Second)
	qt.Guard(GuardObservation{})
	qt.Retries(1)
	qt.Finish(true)
}

func TestTracerEvents(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(reg, 8, 16)
	tr.Event(EventRemoteRetry)
	tr.Event(EventRemoteRetry)
	tr.Event(EventBreakerOpen)
	snap := reg.Snapshot()
	if got := snap.Counters[`span_events_total{kind="remote_retry"}`]; got != 2 {
		t.Fatalf("remote_retry events = %d, want 2", got)
	}
	if got := snap.Counters[`span_events_total{kind="breaker_open"}`]; got != 1 {
		t.Fatalf("breaker_open events = %d, want 1", got)
	}
}

// TestUntracedHotPathZeroAlloc is the acceptance-criteria assertion: the
// unsampled Begin path and the SLO observe path allocate nothing.
func TestUntracedHotPathZeroAlloc(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(reg, 1<<30, 16)
	tr.Begin("warm") // consume the always-sampled first slot
	slo := NewSLOTracker(reg, 0.99, 128)
	obsv := GuardObservation{Region: 1, Chosen: 0, Bound: time.Second,
		Staleness: time.Millisecond, StalenessKnown: true}
	slo.Observe(obsv) // resolve the region's instruments once
	if allocs := testing.AllocsPerRun(1000, func() {
		if qt := tr.Begin("SELECT v FROM T WHERE id = 1"); qt != nil {
			t.Fatal("sampling period overflowed")
		}
		slo.Observe(obsv)
		tr.Event(EventReplApply)
	}); allocs != 0 {
		t.Fatalf("untraced hot path allocated %.1f allocs/op; want 0", allocs)
	}
}
