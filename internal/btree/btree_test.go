package btree

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyTree(t *testing.T) {
	tr := New()
	if tr.Len() != 0 {
		t.Fatalf("Len() = %d, want 0", tr.Len())
	}
	if _, ok := tr.Get("x"); ok {
		t.Fatal("Get on empty tree returned ok")
	}
	if tr.Delete("x") {
		t.Fatal("Delete on empty tree returned true")
	}
	if _, _, ok := tr.Min(); ok {
		t.Fatal("Min on empty tree returned ok")
	}
	if _, _, ok := tr.Max(); ok {
		t.Fatal("Max on empty tree returned ok")
	}
	called := false
	tr.Ascend(func(string, any) bool { called = true; return true })
	if called {
		t.Fatal("Ascend on empty tree visited an entry")
	}
}

func TestSetGetSingle(t *testing.T) {
	tr := New()
	if !tr.Set("a", 1) {
		t.Fatal("first Set returned false")
	}
	if tr.Set("a", 2) {
		t.Fatal("overwrite Set returned true")
	}
	v, ok := tr.Get("a")
	if !ok || v.(int) != 2 {
		t.Fatalf("Get = %v,%v, want 2,true", v, ok)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
}

func TestInsertManyAscendSorted(t *testing.T) {
	tr := New()
	const n = 5000
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, i := range perm {
		tr.Set(fmt.Sprintf("%08d", i), i)
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	if msg := tr.CheckInvariants(); msg != "" {
		t.Fatalf("invariants: %s", msg)
	}
	want := 0
	tr.Ascend(func(k string, v any) bool {
		if v.(int) != want {
			t.Fatalf("ascend order: got %d, want %d", v.(int), want)
		}
		want++
		return true
	})
	if want != n {
		t.Fatalf("visited %d entries, want %d", want, n)
	}
}

func TestAscendRange(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		tr.Set(fmt.Sprintf("%03d", i), i)
	}
	var got []int
	tr.AscendRange("010", "020", func(k string, v any) bool {
		got = append(got, v.(int))
		return true
	})
	if len(got) != 10 || got[0] != 10 || got[9] != 19 {
		t.Fatalf("range [010,020) = %v", got)
	}
	// Early termination.
	count := 0
	tr.AscendRange("000", "", func(string, any) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early stop visited %d", count)
	}
	// Start beyond the end.
	visited := false
	tr.AscendRange("zzz", "", func(string, any) bool { visited = true; return true })
	if visited {
		t.Fatal("range past max visited entries")
	}
}

func TestAscendRangeStartEqualsSeparator(t *testing.T) {
	// Insert enough sequential keys to force splits, then scan starting at
	// every key; each scan must start exactly at its key.
	tr := New()
	const n = 1000
	for i := 0; i < n; i++ {
		tr.Set(fmt.Sprintf("%05d", i), i)
	}
	for i := 0; i < n; i += 7 {
		start := fmt.Sprintf("%05d", i)
		first := -1
		tr.AscendRange(start, "", func(k string, v any) bool {
			first = v.(int)
			return false
		})
		if first != i {
			t.Fatalf("scan from %s started at %d", start, first)
		}
	}
}

func TestAscendPrefix(t *testing.T) {
	tr := New()
	tr.Set("apple", 1)
	tr.Set("app", 2)
	tr.Set("banana", 3)
	tr.Set("applet", 4)
	var keys []string
	tr.AscendPrefix("app", func(k string, v any) bool {
		keys = append(keys, k)
		return true
	})
	want := []string{"app", "apple", "applet"}
	if len(keys) != len(want) {
		t.Fatalf("prefix scan = %v, want %v", keys, want)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("prefix scan = %v, want %v", keys, want)
		}
	}
}

func TestPrefixEndAllFF(t *testing.T) {
	if got := prefixEnd("\xff\xff"); got != "" {
		t.Fatalf("prefixEnd(0xffff) = %q, want empty", got)
	}
	if got := prefixEnd("a\xff"); got != "b" {
		t.Fatalf("prefixEnd = %q, want b", got)
	}
}

func TestDeleteAll(t *testing.T) {
	tr := New()
	const n = 3000
	rng := rand.New(rand.NewSource(7))
	keys := rng.Perm(n)
	for _, i := range keys {
		tr.Set(fmt.Sprintf("%08d", i), i)
	}
	del := rng.Perm(n)
	for step, i := range del {
		if !tr.Delete(fmt.Sprintf("%08d", i)) {
			t.Fatalf("Delete(%d) returned false", i)
		}
		if step%500 == 0 {
			if msg := tr.CheckInvariants(); msg != "" {
				t.Fatalf("after %d deletes: %s", step+1, msg)
			}
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len after delete-all = %d", tr.Len())
	}
	if msg := tr.CheckInvariants(); msg != "" {
		t.Fatalf("invariants after delete-all: %s", msg)
	}
}

func TestDeleteMissing(t *testing.T) {
	tr := New()
	for i := 0; i < 200; i++ {
		tr.Set(fmt.Sprintf("%03d", i), i)
	}
	if tr.Delete("999") {
		t.Fatal("Delete of missing key returned true")
	}
	if tr.Len() != 200 {
		t.Fatalf("Len changed after failed delete: %d", tr.Len())
	}
}

func TestMinMax(t *testing.T) {
	tr := New()
	for _, k := range []string{"m", "c", "z", "a", "q"} {
		tr.Set(k, k)
	}
	if k, _, _ := tr.Min(); k != "a" {
		t.Fatalf("Min = %q", k)
	}
	if k, _, _ := tr.Max(); k != "z" {
		t.Fatalf("Max = %q", k)
	}
}

// TestQuickAgainstMap property-tests the tree against a reference map under
// random interleaved inserts, overwrites and deletes.
func TestQuickAgainstMap(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := New()
		ref := map[string]int{}
		for op := 0; op < 2000; op++ {
			k := fmt.Sprintf("%04d", rng.Intn(500))
			switch rng.Intn(3) {
			case 0, 1:
				v := rng.Int()
				tr.Set(k, v)
				ref[k] = v
			case 2:
				gotDel := tr.Delete(k)
				_, had := ref[k]
				if gotDel != had {
					return false
				}
				delete(ref, k)
			}
		}
		if tr.Len() != len(ref) {
			return false
		}
		if tr.CheckInvariants() != "" {
			return false
		}
		// Full contents must match, in sorted order.
		keys := make([]string, 0, len(ref))
		for k := range ref {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		i := 0
		ok := true
		tr.Ascend(func(k string, v any) bool {
			if i >= len(keys) || k != keys[i] || v.(int) != ref[k] {
				ok = false
				return false
			}
			i++
			return true
		})
		return ok && i == len(keys)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInsert(b *testing.B) {
	keys := make([]string, 100000)
	for i := range keys {
		keys[i] = fmt.Sprintf("%08d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := New()
		for _, k := range keys {
			tr.Set(k, i)
		}
	}
}

func BenchmarkGet(b *testing.B) {
	tr := New()
	for i := 0; i < 100000; i++ {
		tr.Set(fmt.Sprintf("%08d", i), i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(fmt.Sprintf("%08d", i%100000))
	}
}
