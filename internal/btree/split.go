package btree

import "sort"

// SplitKeys returns up to parts-1 keys that partition the tree's key space
// into roughly equal-cardinality ranges, for use as half-open range
// boundaries (range i is [splits[i-1], splits[i])). It descends the tree
// level by level, collecting separator keys, until enough boundaries exist
// or the leaves are reached; because B+-tree nodes are at least half full,
// subtree sizes — and therefore the resulting ranges — are balanced within
// a small constant factor. Returns nil when the tree is too small to split.
func (t *Tree) SplitKeys(parts int) []string {
	if parts <= 1 || t.root == nil {
		return nil
	}
	var seps []string
	level := []*node{t.root}
	for len(seps) < parts-1 && !level[0].leaf {
		next := make([]*node, 0, len(level)*2)
		for _, n := range level {
			seps = append(seps, n.keys...)
			next = append(next, n.children...)
		}
		level = next
	}
	if len(seps) < parts-1 && level[0].leaf {
		// Small tree: fall back to the leaf keys themselves. Leaf keys
		// duplicate the separators above them (a separator is the first key
		// of the leaf to its right), so dedupe after sorting.
		for _, n := range level {
			seps = append(seps, n.keys...)
		}
	}
	sort.Strings(seps)
	seps = dedupeSorted(seps)
	return pickEven(seps, parts-1)
}

func dedupeSorted(keys []string) []string {
	out := keys[:0]
	for i, k := range keys {
		if i == 0 || k != keys[i-1] {
			out = append(out, k)
		}
	}
	return out
}

// pickEven selects up to k evenly spaced keys from the sorted candidates.
func pickEven(sorted []string, k int) []string {
	if k <= 0 || len(sorted) == 0 {
		return nil
	}
	if len(sorted) <= k {
		return append([]string(nil), sorted...)
	}
	out := make([]string, 0, k)
	for i := 1; i <= k; i++ {
		out = append(out, sorted[i*len(sorted)/(k+1)])
	}
	return out
}
