package btree

import (
	"fmt"
	"sort"
	"testing"
)

func splitTree(n int) *Tree {
	tr := New()
	for i := 0; i < n; i++ {
		tr.Set(fmt.Sprintf("%08d", i), i)
	}
	return tr
}

func TestSplitKeysPartitionsEvenly(t *testing.T) {
	const n = 10000
	tr := splitTree(n)
	for _, parts := range []int{2, 4, 16, 64} {
		seps := tr.SplitKeys(parts)
		if len(seps) == 0 {
			t.Fatalf("parts=%d: no separators", parts)
		}
		if len(seps) > parts-1 {
			t.Fatalf("parts=%d: %d separators, want <= %d", parts, len(seps), parts-1)
		}
		if !sort.StringsAreSorted(seps) {
			t.Fatalf("parts=%d: separators not sorted: %v", parts, seps)
		}
		for i := 1; i < len(seps); i++ {
			if seps[i] == seps[i-1] {
				t.Fatalf("parts=%d: duplicate separator %q", parts, seps[i])
			}
		}
		// Count keys per range and check coverage and rough balance.
		bounds := append(append([]string{""}, seps...), "")
		total := 0
		for i := 0; i+1 < len(bounds); i++ {
			cnt := 0
			tr.AscendRange(bounds[i], bounds[i+1], func(string, any) bool {
				cnt++
				return true
			})
			total += cnt
			// Half-full nodes bound subtree skew; 4x average is generous.
			if avg := n / (len(seps) + 1); cnt > 4*avg {
				t.Fatalf("parts=%d: range %d has %d keys (avg %d)", parts, i, cnt, avg)
			}
		}
		if total != n {
			t.Fatalf("parts=%d: ranges cover %d keys, want %d", parts, total, n)
		}
	}
}

func TestSplitKeysSmallTrees(t *testing.T) {
	if got := New().SplitKeys(4); got != nil {
		t.Fatalf("empty tree: %v", got)
	}
	if got := splitTree(1).SplitKeys(1); got != nil {
		t.Fatalf("parts=1: %v", got)
	}
	// A single-node tree still yields usable separators from leaf keys.
	tr := splitTree(10)
	seps := tr.SplitKeys(4)
	if len(seps) == 0 || len(seps) > 3 {
		t.Fatalf("small tree separators = %v", seps)
	}
	total := 0
	bounds := append(append([]string{""}, seps...), "")
	for i := 0; i+1 < len(bounds); i++ {
		tr.AscendRange(bounds[i], bounds[i+1], func(string, any) bool {
			total++
			return true
		})
	}
	if total != 10 {
		t.Fatalf("coverage = %d", total)
	}
}
