// Package btree implements an in-memory B+-tree keyed by order-preserving
// byte-string keys (see sqltypes.Key).
//
// The tree stores one payload per key in its leaves; leaves are linked for
// fast range scans. It backs both clustered and secondary indexes in
// internal/storage. The implementation is a textbook B+-tree with node
// splitting on the way down and rebalancing (borrow/merge) on delete.
//
// The tree is not safe for concurrent mutation; callers synchronize (tables
// hold an RWMutex).
package btree

import "sort"

// degree is the maximum number of children of an interior node. Leaves hold
// up to degree-1 entries.
const degree = 64

// Tree is a B+-tree mapping string keys to arbitrary payloads.
// The zero value is an empty tree ready for use.
type Tree struct {
	root   *node
	length int
}

type node struct {
	// keys holds the entry keys in a leaf, or the separator keys in an
	// interior node (len(children) == len(keys)+1).
	keys     []string
	vals     []any   // leaf only
	children []*node // interior only
	next     *node   // leaf only: right sibling
	leaf     bool
}

// New returns an empty tree.
func New() *Tree { return &Tree{} }

// Len returns the number of entries.
func (t *Tree) Len() int { return t.length }

// Get returns the payload stored under key, if any.
func (t *Tree) Get(key string) (any, bool) {
	n := t.root
	if n == nil {
		return nil, false
	}
	for !n.leaf {
		n = n.children[childIndex(n.keys, key)]
	}
	i := sort.SearchStrings(n.keys, key)
	if i < len(n.keys) && n.keys[i] == key {
		return n.vals[i], true
	}
	return nil, false
}

// Set stores val under key, replacing any existing payload.
// It reports whether the key was newly inserted.
func (t *Tree) Set(key string, val any) bool {
	if t.root == nil {
		t.root = &node{leaf: true}
	}
	if t.root.full() {
		old := t.root
		t.root = &node{children: []*node{old}}
		t.root.splitChild(0)
	}
	inserted := t.root.insert(key, val)
	if inserted {
		t.length++
	}
	return inserted
}

func (n *node) full() bool { return len(n.keys) >= degree-1 }

// childIndex returns the child slot to descend into for key.
func childIndex(keys []string, key string) int {
	// Separator keys[i] is the smallest key in children[i+1].
	return sort.Search(len(keys), func(i int) bool { return keys[i] > key })
}

func (n *node) insert(key string, val any) bool {
	if n.leaf {
		i := sort.SearchStrings(n.keys, key)
		if i < len(n.keys) && n.keys[i] == key {
			n.vals[i] = val
			return false
		}
		n.keys = append(n.keys, "")
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = key
		n.vals = append(n.vals, nil)
		copy(n.vals[i+1:], n.vals[i:])
		n.vals[i] = val
		return true
	}
	i := childIndex(n.keys, key)
	if n.children[i].full() {
		n.splitChild(i)
		if key >= n.keys[i] {
			i++
		}
	}
	return n.children[i].insert(key, val)
}

// splitChild splits the full child at index i, promoting a separator.
func (n *node) splitChild(i int) {
	child := n.children[i]
	mid := len(child.keys) / 2
	var sep string
	right := &node{leaf: child.leaf}
	if child.leaf {
		right.keys = append(right.keys, child.keys[mid:]...)
		right.vals = append(right.vals, child.vals[mid:]...)
		child.keys = child.keys[:mid:mid]
		child.vals = child.vals[:mid:mid]
		right.next = child.next
		child.next = right
		sep = right.keys[0]
	} else {
		sep = child.keys[mid]
		right.keys = append(right.keys, child.keys[mid+1:]...)
		right.children = append(right.children, child.children[mid+1:]...)
		child.keys = child.keys[:mid:mid]
		child.children = child.children[: mid+1 : mid+1]
	}
	n.keys = append(n.keys, "")
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = sep
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
}

// Delete removes key from the tree, reporting whether it was present.
func (t *Tree) Delete(key string) bool {
	if t.root == nil {
		return false
	}
	deleted := t.root.delete(key)
	if deleted {
		t.length--
	}
	if !t.root.leaf && len(t.root.children) == 1 {
		t.root = t.root.children[0]
	}
	if t.length == 0 {
		t.root = nil
	}
	return deleted
}

const minKeys = (degree - 1) / 2

func (n *node) delete(key string) bool {
	if n.leaf {
		i := sort.SearchStrings(n.keys, key)
		if i >= len(n.keys) || n.keys[i] != key {
			return false
		}
		n.keys = append(n.keys[:i], n.keys[i+1:]...)
		n.vals = append(n.vals[:i], n.vals[i+1:]...)
		return true
	}
	i := childIndex(n.keys, key)
	child := n.children[i]
	if len(child.keys) <= minKeys {
		n.rebalance(i)
		i = childIndex(n.keys, key)
		child = n.children[i]
	}
	return child.delete(key)
}

// rebalance ensures children[i] has more than minKeys entries by borrowing
// from a sibling or merging with one.
func (n *node) rebalance(i int) {
	child := n.children[i]
	if i > 0 && len(n.children[i-1].keys) > minKeys {
		left := n.children[i-1]
		if child.leaf {
			k := len(left.keys) - 1
			child.keys = append([]string{left.keys[k]}, child.keys...)
			child.vals = append([]any{left.vals[k]}, child.vals...)
			left.keys = left.keys[:k]
			left.vals = left.vals[:k]
			n.keys[i-1] = child.keys[0]
		} else {
			k := len(left.keys) - 1
			child.keys = append([]string{n.keys[i-1]}, child.keys...)
			child.children = append([]*node{left.children[k+1]}, child.children...)
			n.keys[i-1] = left.keys[k]
			left.keys = left.keys[:k]
			left.children = left.children[:k+1]
		}
		return
	}
	if i < len(n.children)-1 && len(n.children[i+1].keys) > minKeys {
		right := n.children[i+1]
		if child.leaf {
			child.keys = append(child.keys, right.keys[0])
			child.vals = append(child.vals, right.vals[0])
			right.keys = right.keys[1:]
			right.vals = right.vals[1:]
			n.keys[i] = right.keys[0]
		} else {
			child.keys = append(child.keys, n.keys[i])
			child.children = append(child.children, right.children[0])
			n.keys[i] = right.keys[0]
			right.keys = right.keys[1:]
			right.children = right.children[1:]
		}
		return
	}
	// Merge child with a sibling.
	if i == len(n.children)-1 {
		i--
		child = n.children[i]
	}
	right := n.children[i+1]
	if child.leaf {
		child.keys = append(child.keys, right.keys...)
		child.vals = append(child.vals, right.vals...)
		child.next = right.next
	} else {
		child.keys = append(child.keys, n.keys[i])
		child.keys = append(child.keys, right.keys...)
		child.children = append(child.children, right.children...)
	}
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.children = append(n.children[:i+1], n.children[i+2:]...)
}

// Ascend calls fn for every entry in ascending key order until fn returns
// false.
func (t *Tree) Ascend(fn func(key string, val any) bool) {
	t.AscendRange("", "", fn)
}

// AscendRange calls fn for entries with start <= key < end in ascending
// order, until fn returns false. An empty start means from the beginning; an
// empty end means to the end.
func (t *Tree) AscendRange(start, end string, fn func(key string, val any) bool) {
	n := t.root
	if n == nil {
		return
	}
	for !n.leaf {
		n = n.children[childIndex(n.keys, start)]
	}
	// The descent can land one leaf early when start equals a separator;
	// scan forward within the linked leaves.
	i := sort.SearchStrings(n.keys, start)
	for n != nil {
		for ; i < len(n.keys); i++ {
			if end != "" && n.keys[i] >= end {
				return
			}
			if !fn(n.keys[i], n.vals[i]) {
				return
			}
		}
		n = n.next
		i = 0
	}
}

// AscendLeaves calls fn once per leaf with the keys and payloads falling in
// [start, end), in ascending order, until fn returns false. The slices alias
// leaf storage and must not be retained or mutated. It is the bulk
// counterpart of AscendRange: batch consumers avoid the per-entry callback
// and amortize traversal to one call per leaf.
func (t *Tree) AscendLeaves(start, end string, fn func(keys []string, vals []any) bool) {
	n := t.root
	if n == nil {
		return
	}
	for !n.leaf {
		n = n.children[childIndex(n.keys, start)]
	}
	i := sort.SearchStrings(n.keys, start)
	for n != nil {
		j := len(n.keys)
		if end != "" && j > 0 && n.keys[j-1] >= end {
			j = sort.SearchStrings(n.keys, end)
		}
		if i < j {
			if !fn(n.keys[i:j], n.vals[i:j]) {
				return
			}
		}
		if j < len(n.keys) {
			return // end bound fell inside this leaf
		}
		n = n.next
		i = 0
	}
}

// AscendPrefix calls fn for every entry whose key begins with prefix.
func (t *Tree) AscendPrefix(prefix string, fn func(key string, val any) bool) {
	if prefix == "" {
		t.Ascend(fn)
		return
	}
	t.AscendRange(prefix, prefixEnd(prefix), fn)
}

// PrefixEnd returns the smallest string greater than every string with the
// given prefix, or "" if there is none (all 0xFF). It is exported for range
// construction by callers that build composite index keys.
func PrefixEnd(prefix string) string { return prefixEnd(prefix) }

// prefixEnd returns the smallest string greater than every string with the
// given prefix, or "" if there is none (all 0xFF).
func prefixEnd(prefix string) string {
	b := []byte(prefix)
	for i := len(b) - 1; i >= 0; i-- {
		if b[i] != 0xFF {
			b[i]++
			return string(b[:i+1])
		}
	}
	return ""
}

// Min returns the smallest key and its payload.
func (t *Tree) Min() (key string, val any, ok bool) {
	n := t.root
	if n == nil {
		return "", nil, false
	}
	for !n.leaf {
		n = n.children[0]
	}
	if len(n.keys) == 0 {
		return "", nil, false
	}
	return n.keys[0], n.vals[0], true
}

// Max returns the largest key and its payload.
func (t *Tree) Max() (key string, val any, ok bool) {
	n := t.root
	if n == nil {
		return "", nil, false
	}
	for !n.leaf {
		n = n.children[len(n.children)-1]
	}
	if len(n.keys) == 0 {
		return "", nil, false
	}
	return n.keys[len(n.keys)-1], n.vals[len(n.keys)-1], true
}

// CheckInvariants walks the tree verifying structural invariants; it is used
// by tests (including property-based tests). It returns a non-empty string
// describing the first violation found, or "" if the tree is well-formed.
func (t *Tree) CheckInvariants() string {
	if t.root == nil {
		if t.length != 0 {
			return "nil root with nonzero length"
		}
		return ""
	}
	count, _, _, msg := t.root.check(true)
	if msg != "" {
		return msg
	}
	if count != t.length {
		return "length mismatch"
	}
	// All leaves must be reachable via next-pointers in sorted order.
	n := t.root
	for !n.leaf {
		n = n.children[0]
	}
	seen := 0
	prev := ""
	first := true
	for ; n != nil; n = n.next {
		for _, k := range n.keys {
			if !first && k <= prev {
				return "leaf chain out of order"
			}
			prev, first = k, false
			seen++
		}
	}
	if seen != t.length {
		return "leaf chain misses entries"
	}
	return ""
}

func (n *node) check(isRoot bool) (count int, min, max string, msg string) {
	if n.leaf {
		if len(n.vals) != len(n.keys) {
			return 0, "", "", "leaf keys/vals length mismatch"
		}
		for i := 1; i < len(n.keys); i++ {
			if n.keys[i-1] >= n.keys[i] {
				return 0, "", "", "leaf keys out of order"
			}
		}
		if len(n.keys) == 0 && !isRoot {
			return 0, "", "", "empty non-root leaf"
		}
		if len(n.keys) == 0 {
			return 0, "", "", ""
		}
		return len(n.keys), n.keys[0], n.keys[len(n.keys)-1], ""
	}
	if len(n.children) != len(n.keys)+1 {
		return 0, "", "", "interior child count mismatch"
	}
	if !isRoot && len(n.keys) < minKeys {
		return 0, "", "", "interior underflow"
	}
	for i, c := range n.children {
		cc, cmin, cmax, cmsg := c.check(false)
		if cmsg != "" {
			return 0, "", "", cmsg
		}
		count += cc
		if i > 0 && cmin < n.keys[i-1] {
			return 0, "", "", "child min below separator"
		}
		if i < len(n.keys) && cmax >= n.keys[i] {
			return 0, "", "", "child max not below separator"
		}
		if i == 0 {
			min = cmin
		}
		if i == len(n.children)-1 {
			max = cmax
		}
	}
	return count, min, max, ""
}
