// Package vclock provides an injectable clock abstraction.
//
// The paper's evaluation (Section 4) depends on the relationships among the
// heartbeat interval, the replication propagation interval f, the propagation
// delay d, and the query start time. Reproducing those relationships with
// wall-clock sleeps would be slow and flaky, so all components in this
// repository take a Clock. Tests and benchmarks use Virtual, a manually
// advanced clock with a waiter queue; demos may use Wall.
package vclock

import (
	"container/heap"
	"sync"
	"time"
)

// Clock is the time source used by every component in the system.
//
// Sleep-like waiting is expressed with After so that a Virtual clock can
// release waiters exactly when simulated time passes their deadline.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// After returns a channel that receives the (then-current) time once
	// d has elapsed on this clock.
	After(d time.Duration) <-chan time.Time
}

// Wall is a Clock backed by the operating system clock.
type Wall struct{}

// Now implements Clock.
func (Wall) Now() time.Time { return time.Now() }

// After implements Clock.
func (Wall) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Virtual is a deterministic, manually advanced Clock.
//
// The zero value is not ready to use; call NewVirtual. Advance moves time
// forward and fires any waiters whose deadlines have been reached, in
// deadline order. Virtual is safe for concurrent use.
type Virtual struct {
	mu      sync.Mutex
	now     time.Time
	waiters waiterHeap
	seq     int64 // tie-break counter for waiters
	// arrived signals AwaitWaiters when After registers a waiter; created
	// lazily under mu.
	arrived *sync.Cond
}

type waiter struct {
	deadline time.Time
	ch       chan time.Time
	seq      int64 // tie-break so equal deadlines fire FIFO
}

type waiterHeap []*waiter

func (h waiterHeap) Len() int { return len(h) }
func (h waiterHeap) Less(i, j int) bool {
	if h[i].deadline.Equal(h[j].deadline) {
		return h[i].seq < h[j].seq
	}
	return h[i].deadline.Before(h[j].deadline)
}
func (h waiterHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *waiterHeap) Push(x any)   { *h = append(*h, x.(*waiter)) }
func (h *waiterHeap) Pop() (popped any) {
	old := *h
	n := len(old)
	popped = old[n-1]
	*h = old[:n-1]
	return
}

// Epoch is the default start time for virtual clocks: an arbitrary fixed
// instant so that test output is reproducible.
var Epoch = time.Date(2004, time.June, 13, 0, 0, 0, 0, time.UTC)

// NewVirtual returns a Virtual clock starting at Epoch.
func NewVirtual() *Virtual { return NewVirtualAt(Epoch) }

// NewVirtualAt returns a Virtual clock starting at start.
func NewVirtualAt(start time.Time) *Virtual { return &Virtual{now: start} }

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// After implements Clock. The returned channel has capacity 1, so Advance
// never blocks delivering to it.
func (v *Virtual) After(d time.Duration) <-chan time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	ch := make(chan time.Time, 1)
	if d <= 0 {
		ch <- v.now
		return ch
	}
	v.seq++
	heap.Push(&v.waiters, &waiter{deadline: v.now.Add(d), ch: ch, seq: v.seq})
	if v.arrived != nil {
		v.arrived.Broadcast()
	}
	return ch
}

// Advance moves the clock forward by d, firing all waiters whose deadlines
// fall within the advanced window in deadline order.
func (v *Virtual) Advance(d time.Duration) {
	if d < 0 {
		panic("vclock: Advance with negative duration")
	}
	v.mu.Lock()
	target := v.now.Add(d)
	var fired []*waiter
	for v.waiters.Len() > 0 && !v.waiters[0].deadline.After(target) {
		w := heap.Pop(&v.waiters).(*waiter)
		v.now = w.deadline
		fired = append(fired, w)
	}
	v.now = target
	v.mu.Unlock()
	for _, w := range fired {
		w.ch <- w.deadline
	}
}

// AdvanceTo moves the clock forward to t. It panics if t is in the past.
func (v *Virtual) AdvanceTo(t time.Time) {
	v.mu.Lock()
	now := v.now
	v.mu.Unlock()
	if t.Before(now) {
		panic("vclock: AdvanceTo into the past")
	}
	v.Advance(t.Sub(now))
}

// PendingWaiters reports how many After waiters have not yet fired.
func (v *Virtual) PendingWaiters() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.waiters.Len()
}

// AwaitWaiters blocks until at least n After waiters are pending on the
// clock, reporting whether that happened before the wall-clock timeout.
// It is the synchronization primitive for tests that drive goroutines off
// a Virtual clock: "wait until the goroutine has armed its timer, then
// Advance" replaces sleep-and-poll loops.
func (v *Virtual) AwaitWaiters(n int, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.arrived == nil {
		v.arrived = sync.NewCond(&v.mu)
	}
	for v.waiters.Len() < n {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return false
		}
		// Cond has no timed wait; a one-shot timer broadcasts so the loop
		// re-checks the deadline.
		wake := time.AfterFunc(remaining, func() {
			v.mu.Lock()
			v.arrived.Broadcast()
			v.mu.Unlock()
		})
		v.arrived.Wait()
		wake.Stop()
	}
	return true
}
