package vclock

import (
	"testing"
	"time"
)

func TestVirtualNowStartsAtEpoch(t *testing.T) {
	v := NewVirtual()
	if !v.Now().Equal(Epoch) {
		t.Fatalf("Now = %v, want %v", v.Now(), Epoch)
	}
}

func TestVirtualAdvance(t *testing.T) {
	v := NewVirtual()
	v.Advance(5 * time.Second)
	if got := v.Now().Sub(Epoch); got != 5*time.Second {
		t.Fatalf("advanced %v, want 5s", got)
	}
	v.AdvanceTo(Epoch.Add(10 * time.Second))
	if got := v.Now().Sub(Epoch); got != 10*time.Second {
		t.Fatalf("AdvanceTo landed at +%v", got)
	}
}

func TestVirtualAdvanceNegativePanics(t *testing.T) {
	v := NewVirtual()
	defer func() {
		if recover() == nil {
			t.Fatal("negative Advance did not panic")
		}
	}()
	v.Advance(-time.Second)
}

func TestVirtualAdvanceToPastPanics(t *testing.T) {
	v := NewVirtual()
	v.Advance(time.Minute)
	defer func() {
		if recover() == nil {
			t.Fatal("AdvanceTo the past did not panic")
		}
	}()
	v.AdvanceTo(Epoch)
}

func TestAfterFiresAtDeadline(t *testing.T) {
	v := NewVirtual()
	ch := v.After(10 * time.Second)
	select {
	case <-ch:
		t.Fatal("fired before deadline")
	default:
	}
	v.Advance(9 * time.Second)
	select {
	case <-ch:
		t.Fatal("fired 1s early")
	default:
	}
	v.Advance(time.Second)
	select {
	case at := <-ch:
		if got := at.Sub(Epoch); got != 10*time.Second {
			t.Fatalf("fired at +%v, want +10s", got)
		}
	default:
		t.Fatal("did not fire at deadline")
	}
}

func TestAfterZeroFiresImmediately(t *testing.T) {
	v := NewVirtual()
	select {
	case <-v.After(0):
	default:
		t.Fatal("After(0) did not fire immediately")
	}
}

func TestAfterOrderingAcrossOneAdvance(t *testing.T) {
	v := NewVirtual()
	c1 := v.After(3 * time.Second)
	c2 := v.After(1 * time.Second)
	c3 := v.After(2 * time.Second)
	v.Advance(10 * time.Second)
	t1 := <-c1
	t2 := <-c2
	t3 := <-c3
	if !t2.Before(t3) || !t3.Before(t1) {
		t.Fatalf("deadlines delivered as %v %v %v", t1, t2, t3)
	}
	if v.PendingWaiters() != 0 {
		t.Fatalf("%d waiters left", v.PendingWaiters())
	}
}

func TestPendingWaiters(t *testing.T) {
	v := NewVirtual()
	v.After(time.Second)
	v.After(2 * time.Second)
	if v.PendingWaiters() != 2 {
		t.Fatalf("PendingWaiters = %d, want 2", v.PendingWaiters())
	}
	v.Advance(time.Second)
	if v.PendingWaiters() != 1 {
		t.Fatalf("PendingWaiters = %d, want 1", v.PendingWaiters())
	}
}

func TestWallClock(t *testing.T) {
	var c Clock = Wall{}
	before := time.Now()
	got := c.Now()
	if got.Before(before.Add(-time.Minute)) {
		t.Fatal("Wall.Now is implausible")
	}
	select {
	case <-c.After(time.Millisecond):
	case <-time.After(5 * time.Second):
		t.Fatal("Wall.After never fired")
	}
}

func TestAwaitWaiters(t *testing.T) {
	v := NewVirtual()
	// Already satisfied: returns immediately.
	_ = v.After(time.Second)
	if !v.AwaitWaiters(1, time.Second) {
		t.Fatal("AwaitWaiters false with a waiter already pending")
	}
	// Not satisfiable: times out.
	if v.AwaitWaiters(2, 10*time.Millisecond) {
		t.Fatal("AwaitWaiters true without a second waiter")
	}
	// Satisfied by a concurrent After.
	done := make(chan bool, 1)
	go func() { done <- v.AwaitWaiters(2, 5*time.Second) }()
	_ = v.After(time.Second)
	if !<-done {
		t.Fatal("AwaitWaiters never saw the concurrent waiter")
	}
}
