// Package txn provides the back-end commit path: monotonically increasing
// commit timestamps and the commit log that feeds transactional replication.
//
// Following the paper's model (Appendix 8.1), update transactions run only
// against the master database and are assigned integer ids — timestamps — in
// increasing order as they commit; the history H_n is the sequence of
// committed transactions. The Log below *is* that history: each CommitRecord
// carries the transaction's sequence number, its commit time on the master
// clock, and the row-level changes it made. Distribution agents read the log
// in order and apply records one transaction at a time, which is what makes
// all views maintained by one agent mutually snapshot-consistent.
package txn

import (
	"sync"
	"time"

	"relaxedcc/internal/sqltypes"
)

// Op is the kind of row change within a transaction.
type Op int

// Row-change kinds.
const (
	OpInsert Op = iota
	OpDelete
	OpUpdate
)

// String names the operation.
func (o Op) String() string {
	switch o {
	case OpInsert:
		return "INSERT"
	case OpDelete:
		return "DELETE"
	case OpUpdate:
		return "UPDATE"
	default:
		return "Op(?)"
	}
}

// Change is one row modification. Old is the before-image (DELETE, UPDATE);
// New is the after-image (INSERT, UPDATE).
type Change struct {
	Table string
	Op    Op
	Old   sqltypes.Row
	New   sqltypes.Row
}

// Timestamp identifies a committed transaction: its position in the master
// history (Seq, the paper's integer transaction id) and its commit time.
type Timestamp struct {
	Seq int64
	At  time.Time
}

// Before reports whether t committed before u in the master history.
func (t Timestamp) Before(u Timestamp) bool { return t.Seq < u.Seq }

// CommitRecord is one committed transaction in the log.
type CommitRecord struct {
	TS      Timestamp
	Changes []Change
}

// Log is the master commit history. It is append-only and safe for
// concurrent use. Sequence numbers start at 1; Seq 0 means "the initial
// (empty) snapshot".
type Log struct {
	mu      sync.RWMutex
	records []CommitRecord
	// observer, when set, is invoked synchronously under the log's lock for
	// every Append, in commit order — the delivered-guarantee auditor's
	// history tap. It must be fast and must not call back into the log.
	observer func(CommitRecord)
}

// NewLog returns an empty commit log.
func NewLog() *Log { return &Log{} }

// SetObserver installs (or clears, with nil) the commit observer. Install
// during quiesced setup: commits racing with the installation may be
// missed.
func (l *Log) SetObserver(fn func(CommitRecord)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.observer = fn
}

// Append atomically appends a transaction's changes, assigning the next
// sequence number, and returns the commit timestamp.
func (l *Log) Append(at time.Time, changes []Change) Timestamp {
	l.mu.Lock()
	defer l.mu.Unlock()
	ts := Timestamp{Seq: int64(len(l.records)) + 1, At: at}
	l.records = append(l.records, CommitRecord{TS: ts, Changes: changes})
	if l.observer != nil {
		l.observer(l.records[len(l.records)-1])
	}
	return ts
}

// Since returns all records with sequence numbers strictly greater than seq,
// in commit order. The returned slice aliases the log's storage; callers
// must treat it as read-only.
func (l *Log) Since(seq int64) []CommitRecord {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if seq < 0 {
		seq = 0
	}
	if int(seq) >= len(l.records) {
		return nil
	}
	return l.records[seq:]
}

// SinceUntil returns records with seq < record.Seq and record.At <= cutoff —
// i.e. the transactions a distribution agent propagates when it wakes up at
// time cutoff having already applied everything up to seq.
func (l *Log) SinceUntil(seq int64, cutoff time.Time) []CommitRecord {
	recs := l.Since(seq)
	for i, r := range recs {
		if r.TS.At.After(cutoff) {
			return recs[:i]
		}
	}
	return recs
}

// LastSeq returns the sequence number of the most recent commit (0 if none).
func (l *Log) LastSeq() int64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return int64(len(l.records))
}

// LastCommit returns the timestamp of the most recent commit and whether the
// log is non-empty.
func (l *Log) LastCommit() (Timestamp, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if len(l.records) == 0 {
		return Timestamp{}, false
	}
	return l.records[len(l.records)-1].TS, true
}

// SeqAt returns the sequence number of the latest transaction committed at
// or before t (0 if none) — the snapshot the master exposed at time t.
func (l *Log) SeqAt(t time.Time) int64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	lo, hi := 0, len(l.records)
	for lo < hi {
		mid := (lo + hi) / 2
		if l.records[mid].TS.At.After(t) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return int64(lo)
}
