package txn

import (
	"sync"
	"testing"
	"time"

	"relaxedcc/internal/sqltypes"
)

var t0 = time.Date(2004, 6, 13, 0, 0, 0, 0, time.UTC)

func chg(table string) []Change {
	return []Change{{Table: table, Op: OpInsert, New: sqltypes.Row{sqltypes.NewInt(1)}}}
}

func TestAppendAssignsIncreasingSeqs(t *testing.T) {
	l := NewLog()
	ts1 := l.Append(t0, chg("a"))
	ts2 := l.Append(t0.Add(time.Second), chg("b"))
	if ts1.Seq != 1 || ts2.Seq != 2 {
		t.Fatalf("seqs = %d, %d", ts1.Seq, ts2.Seq)
	}
	if !ts1.Before(ts2) || ts2.Before(ts1) {
		t.Fatal("Before")
	}
	if l.LastSeq() != 2 {
		t.Fatalf("LastSeq = %d", l.LastSeq())
	}
	last, ok := l.LastCommit()
	if !ok || last.Seq != 2 {
		t.Fatalf("LastCommit = %+v, %v", last, ok)
	}
}

func TestEmptyLog(t *testing.T) {
	l := NewLog()
	if l.LastSeq() != 0 {
		t.Fatal("LastSeq on empty log")
	}
	if _, ok := l.LastCommit(); ok {
		t.Fatal("LastCommit on empty log")
	}
	if got := l.Since(0); got != nil {
		t.Fatal("Since(0) on empty log")
	}
	if got := l.SeqAt(t0); got != 0 {
		t.Fatalf("SeqAt = %d", got)
	}
}

func TestSince(t *testing.T) {
	l := NewLog()
	for i := 0; i < 5; i++ {
		l.Append(t0.Add(time.Duration(i)*time.Second), chg("t"))
	}
	if got := len(l.Since(0)); got != 5 {
		t.Fatalf("Since(0) = %d records", got)
	}
	recs := l.Since(3)
	if len(recs) != 2 || recs[0].TS.Seq != 4 {
		t.Fatalf("Since(3) = %+v", recs)
	}
	if got := l.Since(5); got != nil {
		t.Fatal("Since(last) should be empty")
	}
	if got := l.Since(-7); len(got) != 5 {
		t.Fatal("Since(negative) should return all")
	}
}

func TestSinceUntil(t *testing.T) {
	l := NewLog()
	for i := 0; i < 5; i++ {
		l.Append(t0.Add(time.Duration(i)*time.Second), chg("t"))
	}
	// Agent wakes at +2.5s having applied through seq 1: sees seqs 2,3.
	recs := l.SinceUntil(1, t0.Add(2500*time.Millisecond))
	if len(recs) != 2 || recs[0].TS.Seq != 2 || recs[1].TS.Seq != 3 {
		t.Fatalf("SinceUntil = %+v", recs)
	}
	// Cutoff before everything remaining.
	if got := l.SinceUntil(4, t0); len(got) != 0 {
		t.Fatalf("SinceUntil past cutoff = %d", len(got))
	}
	// Cutoff exactly at a commit time is inclusive.
	recs = l.SinceUntil(0, t0)
	if len(recs) != 1 {
		t.Fatalf("inclusive cutoff = %d records", len(recs))
	}
}

func TestSeqAt(t *testing.T) {
	l := NewLog()
	for i := 0; i < 4; i++ {
		l.Append(t0.Add(time.Duration(i*10)*time.Second), chg("t"))
	}
	cases := []struct {
		at   time.Duration
		want int64
	}{
		{-time.Second, 0},
		{0, 1},
		{5 * time.Second, 1},
		{10 * time.Second, 2},
		{35 * time.Second, 4},
		{time.Hour, 4},
	}
	for _, c := range cases {
		if got := l.SeqAt(t0.Add(c.at)); got != c.want {
			t.Errorf("SeqAt(+%v) = %d, want %d", c.at, got, c.want)
		}
	}
}

func TestOpString(t *testing.T) {
	if OpInsert.String() != "INSERT" || OpDelete.String() != "DELETE" || OpUpdate.String() != "UPDATE" {
		t.Fatal("Op.String")
	}
}

func TestObserverSeesEveryCommitInOrder(t *testing.T) {
	l := NewLog()
	l.Append(t0, chg("before")) // predates the observer: not delivered
	var seen []CommitRecord
	l.SetObserver(func(rec CommitRecord) { seen = append(seen, rec) })
	l.Append(t0.Add(time.Second), chg("a"))
	l.Append(t0.Add(2*time.Second), chg("b"))
	if len(seen) != 2 || seen[0].TS.Seq != 2 || seen[1].TS.Seq != 3 {
		t.Fatalf("observer saw %+v", seen)
	}
	if seen[1].Changes[0].Table != "b" {
		t.Fatalf("observer changes = %+v", seen[1].Changes)
	}
	l.SetObserver(nil)
	l.Append(t0.Add(3*time.Second), chg("c"))
	if len(seen) != 2 {
		t.Fatal("cleared observer still invoked")
	}
}

func TestObserverOrderedUnderConcurrency(t *testing.T) {
	l := NewLog()
	var mu sync.Mutex
	var seqs []int64
	l.SetObserver(func(rec CommitRecord) {
		// The observer runs under the log's lock, so a plain slice would do;
		// the extra mutex keeps the race detector focused on the log itself.
		mu.Lock()
		seqs = append(seqs, rec.TS.Seq)
		mu.Unlock()
	})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				l.Append(t0, chg("t"))
			}
		}()
	}
	wg.Wait()
	if len(seqs) != 400 {
		t.Fatalf("observer saw %d commits", len(seqs))
	}
	for i, s := range seqs {
		if s != int64(i)+1 {
			t.Fatalf("observation %d has seq %d: not in commit order", i, s)
		}
	}
}

func TestConcurrentAppend(t *testing.T) {
	l := NewLog()
	var wg sync.WaitGroup
	const writers, per = 8, 100
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				l.Append(t0, chg("t"))
			}
		}()
	}
	wg.Wait()
	if l.LastSeq() != writers*per {
		t.Fatalf("LastSeq = %d", l.LastSeq())
	}
	recs := l.Since(0)
	for i, r := range recs {
		if r.TS.Seq != int64(i)+1 {
			t.Fatalf("record %d has seq %d", i, r.TS.Seq)
		}
	}
}
