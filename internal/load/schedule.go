package load

import (
	"math/rand"
	"sort"
	"time"

	"relaxedcc/internal/tpcd"
)

// arrival is one scheduled query: its offset from step start and the
// already-drawn tenant/kind/key, so the schedule is fixed before any query
// runs (an open-loop generator does not re-plan under pressure).
type arrival struct {
	at     time.Duration
	tenant int
	kind   tpcd.QueryKind
	key    int64
}

// buildSchedule draws one step's arrival schedule: target-QPS arrival
// times (uniform gaps, or exponential gaps for a Poisson process), a
// weighted tenant per arrival, a Zipf-skewed key and a query kind. All
// draws come from the step's seeded rng and sampler, so the schedule is a
// pure function of (config, step index).
func buildSchedule(cfg Config, rng *rand.Rand, keys *tpcd.KeySampler, qps float64) []arrival {
	n := int(qps * cfg.StepDuration.Seconds())
	if n < 1 {
		n = 1
	}
	mix := tpcd.Mix{PointWeight: cfg.PointWeight, JoinWeight: cfg.JoinWeight}
	weights, total := tenantWeights(cfg.Tenants)
	out := make([]arrival, 0, n)
	var at time.Duration
	gap := time.Duration(float64(time.Second) / qps)
	for i := 0; i < n; i++ {
		if cfg.Poisson {
			at += time.Duration(rng.ExpFloat64() * float64(gap))
		} else {
			at = time.Duration(i) * gap
		}
		if at >= cfg.StepDuration {
			break
		}
		out = append(out, arrival{
			at:     at,
			tenant: pickWeighted(rng, weights, total),
			kind:   mix.Pick(rng),
			key:    keys.Next(),
		})
	}
	return out
}

// tenantWeights flattens class weights for the weighted draw.
func tenantWeights(tenants []Class) ([]int, int) {
	weights := make([]int, len(tenants))
	total := 0
	for i, c := range tenants {
		w := c.Weight
		if w < 1 {
			w = 1
		}
		weights[i] = w
		total += w
	}
	return weights, total
}

func pickWeighted(rng *rand.Rand, weights []int, total int) int {
	if total <= 0 {
		return 0
	}
	d := rng.Intn(total)
	for i, w := range weights {
		if d < w {
			return i
		}
		d -= w
	}
	return len(weights) - 1
}

// workerPool is the open-loop service model: W channels, each busy until
// its current query's completion. Dispatch assigns an arrival to the
// earliest-free worker; the returned completion time is
// max(arrival, workerFree) + service. Latency charged against the
// *scheduled* arrival — not the dispatch — is the coordinated-omission
// correction: a wedged worker bills every query queued behind it for the
// full wait.
type workerPool struct {
	freeAt []time.Time
}

func newWorkerPool(n int, start time.Time) *workerPool {
	if n < 1 {
		n = 1
	}
	free := make([]time.Time, n)
	for i := range free {
		free[i] = start
	}
	return &workerPool{freeAt: free}
}

// dispatch serves one arrival with the given service time and returns its
// completion instant.
func (p *workerPool) dispatch(arrival time.Time, service time.Duration) time.Time {
	w := 0
	for i := 1; i < len(p.freeAt); i++ {
		if p.freeAt[i].Before(p.freeAt[w]) {
			w = i
		}
	}
	start := arrival
	if p.freeAt[w].After(start) {
		start = p.freeAt[w]
	}
	done := start.Add(service)
	p.freeAt[w] = done
	return done
}

// openLoop runs a pure bookkeeping simulation: arrivals (offsets from a
// common origin) served by `workers` channels, each query's service time
// supplied by svc(i) in arrival order. It returns per-query latencies
// measured from scheduled arrival. This is the unit the coordinated-
// omission test drives directly.
func openLoop(arrivals []time.Duration, workers int, svc func(i int) time.Duration) []time.Duration {
	origin := time.Time{}.Add(time.Hour) // any fixed origin; only differences matter
	pool := newWorkerPool(workers, origin)
	out := make([]time.Duration, len(arrivals))
	for i, at := range arrivals {
		t := origin.Add(at)
		done := pool.dispatch(t, svc(i))
		out[i] = done.Sub(t)
	}
	return out
}

// findKnee marks saturated steps in place and returns the highest offered
// QPS whose step stayed unsaturated (0 when every step saturated).
func findKnee(steps []Step, p99Cap time.Duration, minAchieved float64) float64 {
	knee := 0.0
	for i := range steps {
		s := &steps[i]
		s.Saturated = time.Duration(s.LatencyP99NS) > p99Cap ||
			s.AchievedQPS < minAchieved*s.OfferedQPS
		if !s.Saturated && s.OfferedQPS > knee {
			knee = s.OfferedQPS
		}
	}
	return knee
}

// percentileDur returns the exact p-quantile (nearest-rank) of samples,
// zero for an empty set. Staleness percentiles use this — the sample sets
// are small and exactness keeps them comparable with the chaos report.
func percentileDur(samples []time.Duration, p float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(p*float64(len(s))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}
