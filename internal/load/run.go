package load

import (
	"fmt"
	"math/rand"
	"time"

	"relaxedcc/internal/core"
	"relaxedcc/internal/fault"
	"relaxedcc/internal/mtcache"
	"relaxedcc/internal/obs"
	"relaxedcc/internal/remote"
	"relaxedcc/internal/tpcd"
)

// blockVisible is the threshold separating ordinary service time from a
// replication block: local and remote serves cost milliseconds of virtual
// time, a blocked guard waits a full replication interval (10-15s). Queries
// above it count in TenantStep.BlockWaits.
const blockVisible = time.Second

// stepSeedStride decorrelates per-step rng streams; any odd constant works,
// a large prime keeps adjacent steps far apart in seed space.
const stepSeedStride = 1000003

// Run executes the load sweep and returns the report. Deterministic under
// the virtual clock: two runs with the same Config produce identical
// reports.
func Run(cfg Config) (*Report, error) {
	cfg = normalize(cfg)

	sys, err := tpcd.NewLoadedSystem(tpcd.Config{ScaleFactor: cfg.ScaleFactor, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	sys.EnableResilience(remote.Policy{})
	inj := fault.New(cfg.Seed)
	inj.SetLatency(cfg.Latency, cfg.LatencyJitter)
	inj.SetErrorRate(cfg.ErrorRate)
	sys.InjectFaults(inj)

	// Size the count-based SLO window to the whole sweep so the final
	// snapshot covers every serve.
	expected := 0
	for _, qps := range cfg.Steps {
		expected += int(qps * cfg.StepDuration.Seconds())
	}
	sys.Cache.ConfigureSLO(cfg.SLOTarget, expected)

	if cfg.OnSystem != nil {
		cfg.OnSystem(sys)
	}

	sessions := make([]*mtcache.Session, len(cfg.Tenants))
	for i, c := range cfg.Tenants {
		s := sys.Cache.NewSession()
		s.Action = c.Action
		s.MaxBlockWaits = c.MaxBlockWaits
		s.Tenant = c.Name
		sessions[i] = s
	}

	keys := tpcd.Config{ScaleFactor: cfg.ScaleFactor}.Customers()

	rep := &Report{
		Seed:        cfg.Seed,
		Arrival:     "uniform",
		Workers:     cfg.Workers,
		StepSeconds: cfg.StepDuration.Seconds(),
		ZipfS:       cfg.ZipfS,
		ZipfKeys:    int64(keys),
		SLOTarget:   cfg.SLOTarget,
		Steps:       make([]Step, 0, len(cfg.Steps)),
	}
	if cfg.Poisson {
		rep.Arrival = "poisson"
	}

	// Open a fresh workload window so step 0's region profiles do not
	// include warm-up traffic.
	sys.Cache.Workload().Cut(sys.Clock.Now())

	for i, qps := range cfg.Steps {
		step, err := runStep(cfg, sys, inj, sessions, keys, i, qps)
		if err != nil {
			return nil, err
		}
		rep.Steps = append(rep.Steps, *step)
		if cfg.StepGap > 0 {
			if err := sys.Run(cfg.StepGap); err != nil {
				return nil, err
			}
			sys.Cache.Workload().Cut(sys.Clock.Now())
		}
	}

	rep.KneeQPS = findKnee(rep.Steps, cfg.KneeP99, cfg.KneeMinAchieved)
	rep.SLO = sys.Cache.SLO().Snapshot()
	return rep, nil
}

// normalize fills defaulted Config fields so Run and the schedule builder
// never see zeros.
func normalize(cfg Config) Config {
	def := DefaultConfig()
	if cfg.ScaleFactor <= 0 {
		cfg.ScaleFactor = def.ScaleFactor
	}
	if len(cfg.Steps) == 0 {
		cfg.Steps = def.Steps
	}
	if cfg.StepDuration <= 0 {
		cfg.StepDuration = def.StepDuration
	}
	if cfg.Workers < 1 {
		cfg.Workers = def.Workers
	}
	if cfg.LocalService <= 0 {
		cfg.LocalService = def.LocalService
	}
	if cfg.JoinServiceFactor < 1 {
		cfg.JoinServiceFactor = def.JoinServiceFactor
	}
	if cfg.ZipfS == 0 {
		cfg.ZipfS = tpcd.DefaultZipfS
	}
	if cfg.ZipfV == 0 {
		cfg.ZipfV = tpcd.DefaultZipfV
	}
	if len(cfg.Tenants) == 0 {
		cfg.Tenants = DefaultTenants()
	}
	if cfg.PointWeight <= 0 && cfg.JoinWeight <= 0 {
		cfg.PointWeight, cfg.JoinWeight = def.PointWeight, def.JoinWeight
	}
	if cfg.SLOTarget <= 0 {
		cfg.SLOTarget = def.SLOTarget
	}
	if cfg.KneeP99 <= 0 {
		cfg.KneeP99 = def.KneeP99
	}
	if cfg.KneeMinAchieved <= 0 {
		cfg.KneeMinAchieved = def.KneeMinAchieved
	}
	return cfg
}

// clampNS caps a histogram quantile estimate at the exact observed maximum.
func clampNS(est int64, max time.Duration) int64 {
	if est > int64(max) {
		return int64(max)
	}
	return est
}

// tenantTally accumulates one tenant class's step slice.
type tenantTally struct {
	hist       obs.Histogram
	queries    int
	failed     int
	within     int
	blockWaits int
}

// runStep offers one QPS level for one step duration and measures it.
func runStep(cfg Config, sys *core.System, inj *fault.Injector, sessions []*mtcache.Session, keys, idx int, qps float64) (*Step, error) {
	seed := cfg.Seed + int64(idx+1)*stepSeedStride
	rng := rand.New(rand.NewSource(seed))
	sampler := tpcd.NewKeySampler(seed, keys, cfg.ZipfS, cfg.ZipfV)
	schedule := buildSchedule(cfg, rng, sampler, qps)

	stepStart := sys.Clock.Now()
	stepEnd := stepStart.Add(cfg.StepDuration)
	if cfg.PartitionStep == idx && cfg.PartitionDur > 0 {
		inj.PartitionUntil(stepStart.Add(cfg.PartitionDur))
	}

	pool := newWorkerPool(cfg.Workers, stepStart)
	lat := &obs.Histogram{}
	tenants := make([]tenantTally, len(cfg.Tenants))
	var staleness []time.Duration
	var maxLat time.Duration
	step := &Step{OfferedQPS: qps, Queries: len(schedule)}
	inWindow := 0

	var paceStart time.Time
	if cfg.Pace != nil {
		paceStart = cfg.Pace.Now()
	}

	for _, a := range schedule {
		arrive := stepStart.Add(a.at)
		// Let replication, heartbeats and watchdogs catch up to the arrival
		// instant. Query execution itself advances the clock (remote link
		// latency, block waits), so the target may already be in the past —
		// the coordinator treats that as a no-op.
		if arrive.After(sys.Clock.Now()) {
			if err := sys.RunTo(arrive); err != nil {
				return nil, err
			}
		}
		if cfg.Pace != nil {
			// Demo pacing: hold real time to the virtual schedule. Strictly
			// presentational — nothing measured below reads this clock.
			if wait := a.at - cfg.Pace.Now().Sub(paceStart); wait > 0 {
				<-cfg.Pace.After(wait)
			}
		}

		class := cfg.Tenants[a.tenant]
		tally := &tenants[a.tenant]
		tally.queries++
		sql := tpcd.Query(a.kind, a.key, class.Bound)

		execStart := sys.Clock.Now()
		res, err := sessions[a.tenant].Query(sql)
		now := sys.Clock.Now()
		vdelta := now.Sub(execStart)

		// Open-loop service time: the synthetic local CPU cost plus whatever
		// virtual time the query actually consumed (link latency, retries,
		// replication block waits).
		svc := cfg.LocalService
		if a.kind == tpcd.KindJoin {
			svc *= time.Duration(cfg.JoinServiceFactor)
		}
		svc += vdelta
		done := pool.dispatch(arrive, svc)
		latency := done.Sub(arrive)
		lat.ObserveDuration(latency)
		tally.hist.ObserveDuration(latency)
		if latency > maxLat {
			maxLat = latency
		}
		if !done.After(stepEnd) {
			inWindow++
		}
		if vdelta >= blockVisible && class.Action == mtcache.ActionBlock {
			tally.blockWaits++
		}

		if err != nil {
			step.Failed++
			tally.failed++
			continue
		}
		step.Answered++
		if len(res.LocalViews) > 0 {
			step.Local++
		}
		if res.RemoteQueries > 0 {
			step.Remote++
		}
		degraded := res.Degraded || res.ServedStale
		if degraded {
			step.Degraded++
		}
		if len(res.LocalViews) > 0 && !res.AsOf.IsZero() {
			if st := now.Sub(res.AsOf); st > 0 {
				staleness = append(staleness, st)
			}
		}
		// Within-bound rule (mirrors obs.SLOTracker): remote serves are
		// current by definition; degraded answers never count; local serves
		// count iff the observed staleness fits the class bound.
		within := !degraded
		if within && class.Bound > 0 && !res.AsOf.IsZero() {
			within = now.Sub(res.AsOf) <= class.Bound
		}
		if within {
			tally.within++
		}
	}

	// Drain: run virtual time to the step boundary so the next step starts
	// on schedule even if the last arrivals finished early.
	if stepEnd.After(sys.Clock.Now()) {
		if err := sys.RunTo(stepEnd); err != nil {
			return nil, err
		}
	}

	step.AchievedQPS = float64(inWindow) / cfg.StepDuration.Seconds()
	// Histogram quantiles are bucket-bound estimates and can overshoot the
	// true extremum; clamping to the exact max keeps p999 <= max invariant.
	step.LatencyP50NS = clampNS(lat.Quantile(0.50), maxLat)
	step.LatencyP99NS = clampNS(lat.Quantile(0.99), maxLat)
	step.LatencyP999NS = clampNS(lat.Quantile(0.999), maxLat)
	step.LatencyMaxNS = int64(maxLat)
	step.GuardLocalRatio = ratio(step.Local, step.Answered)
	step.DegradedRatio = ratio(step.Degraded, step.Answered)
	step.StalenessP50NS = int64(percentileDur(staleness, 0.50))
	step.StalenessP95NS = int64(percentileDur(staleness, 0.95))
	step.StalenessP99NS = int64(percentileDur(staleness, 0.99))
	step.StalenessMaxNS = int64(percentileDur(staleness, 1.0))

	step.Tenants = make([]TenantStep, len(cfg.Tenants))
	for i, c := range cfg.Tenants {
		t := &tenants[i]
		step.Tenants[i] = TenantStep{
			Class:          c.Name,
			Action:         ActionName(c.Action),
			BoundNS:        int64(c.Bound),
			Queries:        t.queries,
			Failed:         t.failed,
			Within:         t.within,
			SLOWithinRatio: ratio(t.within, t.queries),
			SLOErrorBudget: errorBudget(cfg.SLOTarget, t.within, t.queries),
			LatencyP50NS:   t.hist.Quantile(0.50),
			LatencyP99NS:   t.hist.Quantile(0.99),
			LatencyP999NS:  t.hist.Quantile(0.999),
			BlockWaits:     t.blockWaits,
		}
	}

	for _, p := range sys.Cache.Workload().Cut(sys.Clock.Now()) {
		step.Regions = append(step.Regions, RegionStep{
			Region:           p.Region,
			Queries:          p.Queries,
			QueriesPerSecond: p.QueriesPerSecond,
			Local:            p.Local,
			Remote:           p.Remote,
			Degraded:         p.Degraded,
			DistinctBounds:   len(p.Bounds),
			StalenessP50NS:   p.StalenessP50NS,
			StalenessMaxNS:   p.StalenessMaxNS,
		})
	}
	if step.Queries == 0 {
		return nil, fmt.Errorf("load: step %d (%.0f qps) scheduled no arrivals", idx, qps)
	}
	return step, nil
}
