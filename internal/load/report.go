package load

import "encoding/json"

// JSON renders the report as the BENCH_load.json payload: indented, stable
// field order (struct order), trailing newline. Same-seed virtual-clock
// runs produce byte-identical output.
func (r *Report) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
