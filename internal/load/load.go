// Package load is the open-loop macro-benchmark: latency under sustained
// concurrent load, key skew and multi-tenancy over the TPC-D workload.
//
// Everything BENCH_exec.json reports is a closed-loop microbench — the next
// query waits for the previous one, so a slow server conveniently slows the
// load down and the tail disappears. This package measures the opposite
// regime, the one the paper's cost model is ultimately about: queries
// arrive on a fixed target-QPS schedule whether or not the server keeps up
// (open loop), and every query's latency is charged from its *scheduled*
// arrival, not from when a worker finally dispatched it. A stalled worker
// therefore inflates the tail of every query queued behind it — the
// coordinated-omission correction.
//
// The generator sweeps a list of offered-QPS steps over a multi-tenant
// session mix (heterogeneous currency bounds and violation actions) with
// Zipf-skewed key selection, records latencies in log2 histograms, and
// reports throughput-vs-latency curves (p50/p99/p999), guard pick ratios,
// served-staleness percentiles and per-tenant SLO budgets per step, plus
// the saturation knee. Under the virtual clock a run is fully deterministic:
// same seed, same report, byte for byte.
package load

import (
	"time"

	"relaxedcc/internal/core"
	"relaxedcc/internal/mtcache"
	"relaxedcc/internal/obs"
	"relaxedcc/internal/vclock"
)

// Class is one tenant class: a share of the traffic with its own currency
// bound and violation action, issued through its own cache session.
type Class struct {
	// Name labels the class in reports and on the session (obs ring).
	Name string
	// Weight is the class's relative share of arrivals.
	Weight int
	// Bound is the class's currency bound (0 = unbounded).
	Bound time.Duration
	// Action is the session's violation action when remote fall-back fails.
	Action mtcache.ViolationAction
	// MaxBlockWaits bounds ActionBlock's guard re-evaluations (0 = cache
	// default). Classes that block should keep this small: each wait is one
	// full replication interval of virtual time.
	MaxBlockWaits int
}

// ActionName renders the violation action for reports.
func ActionName(a mtcache.ViolationAction) string {
	switch a {
	case mtcache.ActionServeStale:
		return "serve-stale"
	case mtcache.ActionServeLocal:
		return "serve-local"
	case mtcache.ActionBlock:
		return "block"
	default:
		return "error"
	}
}

// Config scripts one load run. The zero value is not runnable; start from
// DefaultConfig or ShortConfig.
type Config struct {
	Seed int64
	// ScaleFactor is the physical TPC-D scale of the backing data.
	ScaleFactor float64

	// Steps are the offered-QPS levels of the saturation sweep, ascending.
	Steps []float64
	// StepDuration is the virtual time each step offers load for.
	StepDuration time.Duration
	// StepGap is idle virtual time between steps (regions settle, the
	// previous step's backlog drains out of the bookkeeping).
	StepGap time.Duration

	// Workers models the server's concurrency: the number of service
	// channels draining the arrival queue. Open-loop latency is queueing
	// delay on these workers plus service time.
	Workers int
	// LocalService is the synthetic CPU cost of a local point serve; joins
	// cost JoinServiceFactor times as much. Remote fetches additionally pay
	// the injected link latency in virtual time.
	LocalService time.Duration
	// JoinServiceFactor scales LocalService for join queries (default 3).
	JoinServiceFactor int

	// Poisson selects exponentially distributed inter-arrival gaps; the
	// default is a uniform (fixed-gap) schedule.
	Poisson bool

	// Zipf key skew over the customer population.
	ZipfS float64
	ZipfV float64

	// Tenants is the traffic mix; empty selects DefaultTenants.
	Tenants []Class
	// Mix weights point lookups vs cross-region joins per arrival.
	PointWeight int
	JoinWeight  int

	// SLOTarget is the per-tenant within-bound objective used for the
	// error-budget columns (and the cache SLO tracker's target).
	SLOTarget float64

	// Link model: every remote call pays Latency plus uniform jitter, and
	// fails transiently with ErrorRate probability (retried by the
	// resilient link).
	Latency       time.Duration
	LatencyJitter time.Duration
	ErrorRate     float64

	// PartitionStep, when >= 0, cuts the remote link for PartitionDur at
	// the start of that step (0-indexed) — the latency-under-failure
	// scenario. Blocking tenants wedge workers for a replication interval,
	// which is exactly what the omission correction must surface.
	PartitionStep int
	PartitionDur  time.Duration

	// KneeP99 is the saturation criterion: a step whose p99 exceeds it (or
	// whose achieved throughput falls below KneeMinAchieved of offered) is
	// saturated; the knee is the highest unsaturated offered QPS.
	KneeP99         time.Duration
	KneeMinAchieved float64

	// Pace, when non-nil, paces arrivals in real time on this clock (demo
	// mode: watch the ops surface move). Measurement stays on the virtual
	// clock, so pacing changes presentation, never results.
	Pace vclock.Clock

	// OnSystem, if set, receives the fully wired system before any virtual
	// time passes (same contract as harness.ChaosConfig.OnSystem).
	OnSystem func(sys *core.System)
}

// DefaultTenants is the standard three-class mix: a strict tier that blocks
// for currency, a standard tier that degrades to guarded-local serves, and
// a batch tier that tolerates stale data outright.
func DefaultTenants() []Class {
	return []Class{
		{Name: "gold", Weight: 2, Bound: 2 * time.Second, Action: mtcache.ActionBlock, MaxBlockWaits: 1},
		{Name: "silver", Weight: 3, Bound: 15 * time.Second, Action: mtcache.ActionServeLocal},
		{Name: "bronze", Weight: 5, Bound: 2 * time.Minute, Action: mtcache.ActionServeStale},
	}
}

// DefaultConfig is the full sweep: five offered-QPS steps sized so the top
// step sits past the modeled capacity knee (2 workers at ~3-4ms mean
// service saturate around 500-600 QPS).
func DefaultConfig() Config {
	return Config{
		Seed:              2004,
		ScaleFactor:       0.005,
		Steps:             []float64{50, 100, 200, 400, 800},
		StepDuration:      15 * time.Second,
		StepGap:           2 * time.Second,
		Workers:           2,
		LocalService:      2 * time.Millisecond,
		JoinServiceFactor: 3,
		ZipfS:             0, // sampler defaults
		ZipfV:             0,
		PointWeight:       9,
		JoinWeight:        1,
		SLOTarget:         0.95,
		Latency:           2 * time.Millisecond,
		LatencyJitter:     2 * time.Millisecond,
		ErrorRate:         0.02,
		PartitionStep:     -1,
		KneeP99:           250 * time.Millisecond,
		KneeMinAchieved:   0.95,
	}
}

// ShortConfig is the CI smoke sweep: three steps, two virtual seconds each
// — a few hundred queries, fast enough for PR CI while still exercising
// every reporting path (the load-smoke job's schema gates run against it).
func ShortConfig() Config {
	cfg := DefaultConfig()
	cfg.Steps = []float64{40, 80, 160}
	cfg.StepDuration = 2 * time.Second
	cfg.StepGap = time.Second
	return cfg
}

// TenantStep is one tenant class's slice of one step.
type TenantStep struct {
	Class   string `json:"class"`
	Action  string `json:"action"`
	BoundNS int64  `json:"bound_ns"`
	Queries int    `json:"queries"`
	Failed  int    `json:"failed"`
	// Within counts answers within the class's currency bound (remote
	// serves are current by definition; degraded and serve-stale answers
	// never count; local serves count iff observed staleness fits).
	Within         int     `json:"within"`
	SLOWithinRatio float64 `json:"slo_within_ratio"`
	// SLOErrorBudget is the remaining error budget against SLOTarget over
	// the step's serves: 1 = untouched, 0 = spent.
	SLOErrorBudget float64 `json:"slo_error_budget"`
	LatencyP50NS   int64   `json:"latency_p50_ns"`
	LatencyP99NS   int64   `json:"latency_p99_ns"`
	LatencyP999NS  int64   `json:"latency_p999_ns"`
	BlockWaits     int     `json:"block_waits"`
}

// RegionStep is one currency region's workload profile over one step,
// tapped from the cache's obs.WorkloadObserver window.
type RegionStep struct {
	Region           int     `json:"region"`
	Queries          int64   `json:"queries"`
	QueriesPerSecond float64 `json:"queries_per_second"`
	Local            int64   `json:"local"`
	Remote           int64   `json:"remote"`
	Degraded         int64   `json:"degraded"`
	DistinctBounds   int     `json:"distinct_bounds"`
	StalenessP50NS   int64   `json:"staleness_p50_ns"`
	StalenessMaxNS   int64   `json:"staleness_max_ns"`
}

// Step is one offered-QPS level of the sweep.
type Step struct {
	OfferedQPS float64 `json:"offered_qps"`
	Queries    int     `json:"queries"`
	Answered   int     `json:"answered"`
	Failed     int     `json:"failed"`
	// AchievedQPS counts completions inside the step window over the step
	// duration; under saturation it flattens below OfferedQPS.
	AchievedQPS float64 `json:"achieved_qps"`
	// Open-loop latency percentiles (charged from scheduled arrival),
	// estimated from a 65-bucket log2 histogram.
	LatencyP50NS  int64 `json:"latency_p50_ns"`
	LatencyP99NS  int64 `json:"latency_p99_ns"`
	LatencyP999NS int64 `json:"latency_p999_ns"`
	LatencyMaxNS  int64 `json:"latency_max_ns"`
	// Guard outcome mix over answered queries.
	Local           int     `json:"local"`
	Degraded        int     `json:"degraded"`
	Remote          int     `json:"remote"`
	GuardLocalRatio float64 `json:"guard_local_ratio"`
	DegradedRatio   float64 `json:"degraded_ratio"`
	// Served-staleness percentiles (nearest-rank, exact) over answers that
	// used local views.
	StalenessP50NS int64 `json:"staleness_p50_ns"`
	StalenessP95NS int64 `json:"staleness_p95_ns"`
	StalenessP99NS int64 `json:"staleness_p99_ns"`
	StalenessMaxNS int64 `json:"staleness_max_ns"`
	// Saturated marks the step as past the knee (p99 over KneeP99 or
	// achieved under KneeMinAchieved of offered).
	Saturated bool         `json:"saturated"`
	Tenants   []TenantStep `json:"tenants"`
	Regions   []RegionStep `json:"regions"`
}

// Report is one load run: the BENCH_load.json payload.
type Report struct {
	Seed        int64   `json:"seed"`
	Arrival     string  `json:"arrival"` // "uniform" or "poisson"
	Workers     int     `json:"workers"`
	StepSeconds float64 `json:"step_seconds"`
	ZipfS       float64 `json:"zipf_s"`
	ZipfKeys    int64   `json:"zipf_keys"`
	SLOTarget   float64 `json:"slo_target"`
	Steps       []Step  `json:"steps"`
	// KneeQPS is the highest offered QPS whose step stayed unsaturated
	// (0 when even the first step saturated).
	KneeQPS float64 `json:"knee_qps"`
	// SLO is the cache's cumulative per-region currency-SLO snapshot at the
	// end of the run.
	SLO obs.SLOSnapshot `json:"slo"`
}

// errorBudget mirrors the obs.SLOTracker budget rule for the per-tenant
// columns: with target t over n serves the budget allows (1-t)*n misses;
// the return value is the unspent fraction in [0,1].
func errorBudget(target float64, within, count int) float64 {
	if count == 0 {
		return 1
	}
	allowed := (1 - target) * float64(count)
	missed := float64(count - within)
	if allowed <= 0 {
		if missed > 0 {
			return 0
		}
		return 1
	}
	rem := 1 - missed/allowed
	if rem < 0 {
		return 0
	}
	return rem
}

// ratio is a NaN-safe division for the report's JSON (json.Marshal rejects
// NaN, and an empty step must still serialize).
func ratio(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}
