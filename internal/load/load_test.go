package load

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"relaxedcc/internal/obs"
	"relaxedcc/internal/tpcd"
)

// tinyConfig is the smallest sweep that still exercises every reporting
// path: three steps, one virtual second each.
func tinyConfig() Config {
	cfg := DefaultConfig()
	cfg.ScaleFactor = 0.002
	cfg.Steps = []float64{20, 40, 80}
	cfg.StepDuration = time.Second
	cfg.StepGap = 500 * time.Millisecond
	return cfg
}

// The coordinated-omission property: when one query stalls a worker, every
// query scheduled behind it is charged its full queueing delay from its
// *scheduled* arrival. A closed-loop (or dispatch-timed) measurement would
// record ~1ms for all of them and hide the stall entirely; the open-loop
// p999 must surface it.
func TestCoordinatedOmissionCharged(t *testing.T) {
	// 1000 arrivals at 1ms spacing on a single worker; query 100 stalls for
	// one second, every later query costs 1ms of service.
	arrivals := make([]time.Duration, 1000)
	for i := range arrivals {
		arrivals[i] = time.Duration(i) * time.Millisecond
	}
	const stall = time.Second
	lats := openLoop(arrivals, 1, func(i int) time.Duration {
		if i == 100 {
			return stall
		}
		return time.Millisecond
	})

	// The stalled query itself.
	if lats[100] < stall {
		t.Fatalf("stalled query charged %v, want >= %v", lats[100], stall)
	}
	// The next query arrived 1ms later but could not start until the stall
	// cleared: it must be charged the remaining wait, not its 1ms service.
	if lats[101] < stall-10*time.Millisecond {
		t.Fatalf("query behind the stall charged %v — latency measured from dispatch, not scheduled arrival", lats[101])
	}
	// Queue drains at (1ms service / 1ms arrival): the backlog never
	// shrinks, so even the last query still carries most of the stall.
	if last := lats[len(lats)-1]; last < stall/2 {
		t.Fatalf("tail query charged %v, backlog should persist", last)
	}

	// And the histogram percentiles reflect it: p999 over the same samples
	// sits near the stall, p50 stays near service time.
	h := &obs.Histogram{}
	for _, l := range lats {
		h.ObserveDuration(l)
	}
	if p999 := h.Quantile(0.999); time.Duration(p999) < stall/2 {
		t.Errorf("p999 %v does not reflect the stall", time.Duration(p999))
	}
	if p50 := h.Quantile(0.50); time.Duration(p50) > stall {
		t.Errorf("p50 %v blown past the stall — pool bookkeeping broken", time.Duration(p50))
	}
}

// Without stalls an under-utilized pool charges roughly service time.
func TestOpenLoopUnloaded(t *testing.T) {
	arrivals := []time.Duration{0, 10 * time.Millisecond, 20 * time.Millisecond}
	lats := openLoop(arrivals, 2, func(int) time.Duration { return time.Millisecond })
	for i, l := range lats {
		if l != time.Millisecond {
			t.Errorf("query %d: latency %v, want 1ms (no queueing at low load)", i, l)
		}
	}
}

func TestBuildScheduleDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Tenants = DefaultTenants()
	cfg.StepDuration = 2 * time.Second
	mk := func() []arrival {
		rng := rand.New(rand.NewSource(7))
		ks := tpcd.NewKeySampler(7, 300, cfg.ZipfS, cfg.ZipfV)
		return buildSchedule(cfg, rng, ks, 100)
	}
	a, b := mk(), mk()
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("schedule lengths differ or empty: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Uniform arrivals must be evenly spaced and inside the step.
	for i := 1; i < len(a); i++ {
		if a[i].at <= a[i-1].at {
			t.Fatalf("arrivals not monotone at %d", i)
		}
	}
	if last := a[len(a)-1].at; last >= cfg.StepDuration {
		t.Fatalf("arrival past step end: %v", last)
	}
	// Weighted tenants: every class must receive traffic.
	seen := map[int]int{}
	for _, ar := range a {
		seen[ar.tenant]++
	}
	for i := range cfg.Tenants {
		if seen[i] == 0 {
			t.Errorf("tenant %d drew no traffic in %d arrivals", i, len(a))
		}
	}
}

func TestFindKnee(t *testing.T) {
	steps := []Step{
		{OfferedQPS: 50, AchievedQPS: 50, LatencyP99NS: int64(10 * time.Millisecond)},
		{OfferedQPS: 100, AchievedQPS: 99, LatencyP99NS: int64(20 * time.Millisecond)},
		{OfferedQPS: 200, AchievedQPS: 140, LatencyP99NS: int64(400 * time.Millisecond)},
	}
	knee := findKnee(steps, 250*time.Millisecond, 0.95)
	if knee != 100 {
		t.Fatalf("knee = %v, want 100", knee)
	}
	if steps[2].Saturated != true || steps[0].Saturated || steps[1].Saturated {
		t.Fatalf("saturation flags wrong: %+v", steps)
	}
}

// The acceptance criterion: two same-seed virtual-clock runs produce
// byte-identical BENCH_load.json payloads.
func TestSameSeedByteIdentical(t *testing.T) {
	run := func() []byte {
		rep, err := Run(tinyConfig())
		if err != nil {
			t.Fatal(err)
		}
		b, err := rep.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("same-seed reports differ:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
}

// The report must satisfy the schema gates check_load.sh enforces in CI.
func TestReportSanity(t *testing.T) {
	rep, err := Run(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Steps) < 3 {
		t.Fatalf("want >= 3 steps, got %d", len(rep.Steps))
	}
	prevQPS := 0.0
	for i, s := range rep.Steps {
		if s.OfferedQPS <= prevQPS {
			t.Errorf("step %d: offered qps not monotone (%v after %v)", i, s.OfferedQPS, prevQPS)
		}
		prevQPS = s.OfferedQPS
		if s.Queries == 0 || s.Answered == 0 {
			t.Errorf("step %d: no traffic (%d scheduled, %d answered)", i, s.Queries, s.Answered)
		}
		if s.LatencyP50NS > s.LatencyP99NS || s.LatencyP99NS > s.LatencyP999NS {
			t.Errorf("step %d: percentiles not ordered: p50=%d p99=%d p999=%d",
				i, s.LatencyP50NS, s.LatencyP99NS, s.LatencyP999NS)
		}
		if s.GuardLocalRatio < 0 || s.GuardLocalRatio > 1 {
			t.Errorf("step %d: guard_local_ratio out of range: %v", i, s.GuardLocalRatio)
		}
		if len(s.Tenants) != 3 {
			t.Fatalf("step %d: want 3 tenant classes, got %d", i, len(s.Tenants))
		}
		for _, tn := range s.Tenants {
			if tn.SLOWithinRatio < 0 || tn.SLOWithinRatio > 1 {
				t.Errorf("step %d tenant %s: slo_within_ratio out of range: %v", i, tn.Class, tn.SLOWithinRatio)
			}
			if tn.SLOErrorBudget < 0 || tn.SLOErrorBudget > 1 {
				t.Errorf("step %d tenant %s: slo_error_budget out of range: %v", i, tn.Class, tn.SLOErrorBudget)
			}
			if tn.Queries == 0 {
				t.Errorf("step %d tenant %s: no traffic", i, tn.Class)
			}
		}
		if len(s.Regions) == 0 {
			t.Errorf("step %d: no region profiles", i)
		}
	}
	if rep.SLO.Target != tinyConfig().SLOTarget {
		t.Errorf("SLO snapshot target %v, want %v", rep.SLO.Target, tinyConfig().SLOTarget)
	}
}
