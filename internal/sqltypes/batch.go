package sqltypes

// Batch is an ordered slice of rows handed between batch-at-a-time executor
// operators.
//
// Ownership contract: a batch returned by a producer is read-only for the
// consumer and valid only until the consumer's next call into the producer
// (NextBatch or Close). Producers are free to return subslices of internal
// state or to reuse an output buffer across calls; consumers that need rows
// beyond that window must copy the slice header (the rows themselves are
// shared and immutable, as everywhere in the executor).
type Batch []Row
