package sqltypes

import (
	"testing"
	"time"
)

func testRows() Batch {
	return Batch{
		{NewInt(1), NewFloat(1.5), NewString("a"), NewBool(true)},
		{NewInt(2), NewFloat(2.5), NewString("b"), NewBool(false)},
		{NewInt(3), NewFloat(3.5), NewString("c"), NewBool(true)},
		{NewInt(4), NewFloat(4.5), NewString("d"), NewBool(false)},
	}
}

func TestColBatchTransposesTypedColumns(t *testing.T) {
	rows := testRows()
	var b ColBatch
	b.ResetRows(rows, 4)

	if b.Len() != 4 || b.NumActive() != 4 || b.Width() != 4 {
		t.Fatalf("Len=%d NumActive=%d Width=%d, want 4/4/4", b.Len(), b.NumActive(), b.Width())
	}
	ints := b.Col(0)
	if ints.Kind != KindInt || len(ints.I64) != 4 {
		t.Fatalf("col 0: kind=%v len(I64)=%d, want KindInt/4", ints.Kind, len(ints.I64))
	}
	for i, want := range []int64{1, 2, 3, 4} {
		if ints.I64[i] != want {
			t.Fatalf("col 0 row %d: got %d, want %d", i, ints.I64[i], want)
		}
	}
	floats := b.Col(1)
	if floats.Kind != KindFloat || floats.F64[2] != 3.5 {
		t.Fatalf("col 1: kind=%v F64[2]=%v", floats.Kind, floats.F64)
	}
	strs := b.Col(2)
	if strs.Kind != KindString || strs.Str[1] != "b" {
		t.Fatalf("col 2: kind=%v Str=%v", strs.Kind, strs.Str)
	}
	bools := b.Col(3)
	if bools.Kind != KindBool || bools.I64[0] != 1 || bools.I64[1] != 0 {
		t.Fatalf("col 3: kind=%v I64=%v", bools.Kind, bools.I64)
	}
	// Round-trip through the generic accessor.
	for i, r := range rows {
		for j := range r {
			if got := b.Col(j).Value(i); !got.Equal(r[j]) {
				t.Fatalf("Value(%d,%d) = %v, want %v", i, j, got, r[j])
			}
		}
	}
}

func TestColBatchSelection(t *testing.T) {
	rows := testRows()
	var b ColBatch
	b.ResetRows(rows, 4)
	b.Sel = []int32{1, 3}

	if b.NumActive() != 2 {
		t.Fatalf("NumActive = %d, want 2", b.NumActive())
	}
	got := b.AppendRows(nil)
	if len(got) != 2 || !got[0].Equal(rows[1]) || !got[1].Equal(rows[3]) {
		t.Fatalf("AppendRows with Sel = %v", got)
	}
	// Row-backed batches hand out shared references, not copies.
	if &got[0][0] != &rows[1][0] {
		t.Fatal("AppendRows copied a row instead of sharing the reference")
	}
}

func TestVecNullTracking(t *testing.T) {
	rows := Batch{
		{Null},
		{NewInt(7)},
		{Null},
		{NewInt(9)},
	}
	var v Vec
	v.FillFromRows(rows, 0)
	if v.Kind != KindInt {
		t.Fatalf("kind = %v, want KindInt", v.Kind)
	}
	wantNull := []bool{true, false, true, false}
	for i, wn := range wantNull {
		if v.IsNull(i) != wn {
			t.Fatalf("IsNull(%d) = %v, want %v", i, v.IsNull(i), wn)
		}
	}
	if v.I64[1] != 7 || v.I64[3] != 9 {
		t.Fatalf("I64 = %v", v.I64)
	}
	if got := v.Value(0); !got.IsNull() {
		t.Fatalf("Value(0) = %v, want NULL", got)
	}
	if got := v.Value(3); got.Int() != 9 {
		t.Fatalf("Value(3) = %v, want 9", got)
	}
}

// TestVecNullBackingReuse: refilling a vector must reuse the null-lane
// backing array from the previous batch (stashed while Null is nil) instead
// of reallocating it, so nullable columns stay allocation-free in steady
// state — while Null stays exactly nil for batches without NULLs.
func TestVecNullBackingReuse(t *testing.T) {
	withNulls := Batch{{Null}, {NewInt(7)}, {Null}, {NewInt(9)}}
	noNulls := Batch{{NewInt(1)}, {NewInt(2)}, {NewInt(3)}, {NewInt(4)}}
	var v Vec
	v.FillFromRows(withNulls, 0)
	if v.Null == nil {
		t.Fatal("null lane missing after first fill")
	}
	backing := &v.Null[0]

	v.FillFromRows(noNulls, 0)
	if v.Null != nil {
		t.Fatalf("Null = %v, want nil for a batch without NULLs", v.Null)
	}

	v.FillFromRows(withNulls, 0)
	if v.Null == nil || &v.Null[0] != backing {
		t.Fatal("null lane reallocated instead of reusing the stashed backing")
	}
	for i, wn := range []bool{true, false, true, false} {
		if v.IsNull(i) != wn {
			t.Fatalf("IsNull(%d) = %v, want %v", i, v.IsNull(i), wn)
		}
	}

	// GatherFrom reuses the same stashed backing.
	var dst Vec
	dst.GatherFrom(&v, []int32{0, 1, 3})
	gb := &dst.Null[0]
	dst.GatherFrom(&v, []int32{1, 3})
	if dst.IsNull(0) || dst.IsNull(1) {
		t.Fatalf("gather of non-NULL values tracked nulls: %v", dst.Null)
	}
	dst.GatherFrom(&v, []int32{2, 0})
	if dst.Null == nil || &dst.Null[0] != gb {
		t.Fatal("GatherFrom reallocated the null lane instead of reusing it")
	}
	if !dst.IsNull(0) || !dst.IsNull(1) {
		t.Fatalf("gathered nulls wrong: %v", dst.Null)
	}
}

func TestVecAllNullAndMixedKindDegrade(t *testing.T) {
	var v Vec
	v.FillFromRows(Batch{{Null}, {Null}}, 0)
	if len(v.Any) != 2 || !v.Value(0).IsNull() || !v.Value(1).IsNull() {
		t.Fatalf("all-NULL column: Any=%v", v.Any)
	}

	mixed := Batch{{NewInt(1)}, {NewString("x")}, {Null}}
	v.FillFromRows(mixed, 0)
	if v.Kind != KindNull || len(v.Any) != 3 {
		t.Fatalf("mixed column: kind=%v Any=%v", v.Kind, v.Any)
	}
	for i, r := range mixed {
		if got := v.Value(i); !got.Equal(r[0]) {
			t.Fatalf("mixed Value(%d) = %v, want %v", i, got, r[0])
		}
	}
}

func TestVecTimeColumn(t *testing.T) {
	t0 := time.Date(2004, 6, 15, 0, 0, 0, 0, time.UTC)
	rows := Batch{{NewTime(t0)}, {NewTime(t0.Add(time.Hour))}}
	var v Vec
	v.FillFromRows(rows, 0)
	if v.Kind != KindTime || v.I64[1]-v.I64[0] != int64(time.Hour) {
		t.Fatalf("time column: kind=%v I64=%v", v.Kind, v.I64)
	}
	if !v.Value(0).Equal(NewTime(t0)) {
		t.Fatalf("Value(0) = %v", v.Value(0))
	}
}

func TestColBatchReuseResetsState(t *testing.T) {
	var b ColBatch
	b.ResetRows(Batch{{Null}, {NewInt(1)}}, 1)
	_ = b.Col(0) // materialize with a NULL present
	b.Sel = []int32{0}

	// Reuse for a second, smaller window: columns and Sel must reset.
	b.ResetRows(Batch{{NewInt(5)}}, 1)
	if b.Sel != nil || b.NumActive() != 1 {
		t.Fatalf("stale Sel after reset: %v", b.Sel)
	}
	c := b.Col(0)
	if c.Kind != KindInt || c.IsNull(0) || c.I64[0] != 5 {
		t.Fatalf("stale column after reset: kind=%v null=%v I64=%v", c.Kind, c.Null, c.I64)
	}
}

func TestColBatchPurelyColumnar(t *testing.T) {
	var v Vec
	v.FillFromRows(Batch{{NewInt(10)}, {NewInt(20)}}, 0)
	var b ColBatch
	b.ResetCols(1, 2)
	b.SetCol(0, &v)
	b.Sel = []int32{1}
	got := b.AppendRows(nil)
	if len(got) != 1 || got[0][0].Int() != 20 {
		t.Fatalf("columnar AppendRows = %v", got)
	}
}

func TestVecGatherFrom(t *testing.T) {
	// Typed source with NULLs: gathered values and null flags must follow
	// the index list, including duplicates and out-of-order picks.
	var src Vec
	src.FillFromRows(Batch{
		{NewInt(10)}, {Null}, {NewInt(30)}, {NewInt(40)},
	}, 0)

	var dst Vec
	dst.GatherFrom(&src, []int32{3, 1, 0, 0})
	if dst.Len() != 4 || dst.Kind != KindInt {
		t.Fatalf("dst: len=%d kind=%v, want 4/KindInt", dst.Len(), dst.Kind)
	}
	wantVals := []Value{NewInt(40), Null, NewInt(10), NewInt(10)}
	for i, want := range wantVals {
		if got := dst.Value(i); got.Compare(want) != 0 || got.Kind() != want.Kind() {
			t.Fatalf("dst[%d] = %v, want %v", i, got, want)
		}
	}

	// String source without NULLs: Null must stay nil on the destination.
	var ssrc Vec
	ssrc.FillFromRows(Batch{{NewString("x")}, {NewString("y")}}, 0)
	dst.GatherFrom(&ssrc, []int32{1, 0, 1})
	if dst.Kind != KindString || dst.Null != nil {
		t.Fatalf("string gather: kind=%v null=%v, want KindString/nil", dst.Kind, dst.Null)
	}
	for i, want := range []string{"y", "x", "y"} {
		if dst.Str[i] != want {
			t.Fatalf("dst.Str[%d] = %q, want %q", i, dst.Str[i], want)
		}
	}

	// Mixed-kind source degrades to Any; the gather must carry the values
	// verbatim.
	var asrc Vec
	asrc.FillFromRows(Batch{{NewInt(1)}, {NewString("two")}}, 0)
	dst.GatherFrom(&asrc, []int32{1, 1, 0})
	if dst.Len() != 3 {
		t.Fatalf("any gather: len=%d, want 3", dst.Len())
	}
	for i, want := range []Value{NewString("two"), NewString("two"), NewInt(1)} {
		if got := dst.Value(i); got.Compare(want) != 0 || got.Kind() != want.Kind() {
			t.Fatalf("any dst[%d] = %v, want %v", i, got, want)
		}
	}

	// Empty index list on a typed source.
	dst.GatherFrom(&src, nil)
	if dst.Len() != 0 {
		t.Fatalf("empty gather: len=%d, want 0", dst.Len())
	}
}
