// Package sqltypes defines the typed values (datums) flowing through the
// engine: NULL, 64-bit integers, floats, strings, booleans and timestamps.
//
// Values are small immutable structs. Comparison follows SQL ordering with
// NULL sorting first (as in index keys); numeric kinds compare across
// INT/FLOAT. Key encodes composite keys into order-preserving byte strings so
// they can double as hash-map keys in joins and aggregation.
package sqltypes

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Kind identifies the dynamic type of a Value.
type Kind uint8

// The supported value kinds.
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
	KindTime
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindBool:
		return "BOOLEAN"
	case KindInt:
		return "BIGINT"
	case KindFloat:
		return "DOUBLE"
	case KindString:
		return "VARCHAR"
	case KindTime:
		return "TIMESTAMP"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a single SQL datum. The zero Value is NULL.
type Value struct {
	kind Kind
	i    int64 // KindInt; KindBool (0/1); KindTime (ns since Unix epoch, UTC)
	f    float64
	s    string
}

// Null is the SQL NULL value.
var Null = Value{}

// NewInt returns an integer value.
func NewInt(i int64) Value { return Value{kind: KindInt, i: i} }

// NewFloat returns a floating-point value.
func NewFloat(f float64) Value { return Value{kind: KindFloat, f: f} }

// NewString returns a string value.
func NewString(s string) Value { return Value{kind: KindString, s: s} }

// NewBool returns a boolean value.
func NewBool(b bool) Value {
	if b {
		return Value{kind: KindBool, i: 1}
	}
	return Value{kind: KindBool}
}

// NewTime returns a timestamp value (stored with nanosecond precision, UTC).
func NewTime(t time.Time) Value { return Value{kind: KindTime, i: t.UTC().UnixNano()} }

// Kind returns the value's dynamic type.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is SQL NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Int returns the integer contents. It panics on non-integer kinds.
func (v Value) Int() int64 {
	if v.kind != KindInt {
		panic("sqltypes: Int() on " + v.kind.String())
	}
	return v.i
}

// Float returns the value as float64, converting from integer if needed.
func (v Value) Float() float64 {
	switch v.kind {
	case KindFloat:
		return v.f
	case KindInt:
		return float64(v.i)
	default:
		panic("sqltypes: Float() on " + v.kind.String())
	}
}

// Str returns the string contents. It panics on non-string kinds.
func (v Value) Str() string {
	if v.kind != KindString {
		panic("sqltypes: Str() on " + v.kind.String())
	}
	return v.s
}

// Bool returns the boolean contents. It panics on non-boolean kinds.
func (v Value) Bool() bool {
	if v.kind != KindBool {
		panic("sqltypes: Bool() on " + v.kind.String())
	}
	return v.i != 0
}

// Time returns the timestamp contents. It panics on non-timestamp kinds.
func (v Value) Time() time.Time {
	if v.kind != KindTime {
		panic("sqltypes: Time() on " + v.kind.String())
	}
	return time.Unix(0, v.i).UTC()
}

// IsNumeric reports whether the value is INT or FLOAT.
func (v Value) IsNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// String renders the value for display. Strings are quoted; NULL prints as
// NULL.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindBool:
		if v.i != 0 {
			return "TRUE"
		}
		return "FALSE"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return "'" + strings.ReplaceAll(v.s, "'", "''") + "'"
	case KindTime:
		return v.Time().Format("'2006-01-02 15:04:05.000000000'")
	default:
		return fmt.Sprintf("Value(kind=%d)", v.kind)
	}
}

// Display renders the value for result output: like String but without
// quoting strings.
func (v Value) Display() string {
	if v.kind == KindString {
		return v.s
	}
	if v.kind == KindTime {
		return v.Time().Format("2006-01-02 15:04:05")
	}
	return v.String()
}

// Compare orders two values: -1 if v < w, 0 if equal, +1 if v > w.
//
// NULL sorts before every non-NULL value (index-key order). INT and FLOAT
// compare numerically across kinds. Comparing other mixed kinds orders by
// Kind, which keeps sorting total; predicate evaluation rejects such
// comparisons before reaching here.
func (v Value) Compare(w Value) int {
	if v.kind == KindNull || w.kind == KindNull {
		switch {
		case v.kind == w.kind:
			return 0
		case v.kind == KindNull:
			return -1
		default:
			return 1
		}
	}
	if v.IsNumeric() && w.IsNumeric() {
		if v.kind == KindInt && w.kind == KindInt {
			return cmpInt(v.i, w.i)
		}
		return cmpFloat(v.Float(), w.Float())
	}
	if v.kind != w.kind {
		return cmpInt(int64(v.kind), int64(w.kind))
	}
	switch v.kind {
	case KindBool, KindTime:
		return cmpInt(v.i, w.i)
	case KindString:
		return strings.Compare(v.s, w.s)
	default:
		return 0
	}
}

// Equal reports whether the two values compare equal. NULL equals NULL here
// (useful for grouping); SQL three-valued equality lives in the expression
// evaluator.
func (v Value) Equal(w Value) bool { return v.Compare(w) == 0 }

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Row is a tuple of values.
type Row []Value

// Clone returns a copy of the row with its own backing array.
func (r Row) Clone() Row {
	if r == nil {
		return nil
	}
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Equal reports element-wise equality of two rows.
func (r Row) Equal(s Row) bool {
	if len(r) != len(s) {
		return false
	}
	for i := range r {
		if !r[i].Equal(s[i]) {
			return false
		}
	}
	return true
}

// String renders the row as a parenthesized value list.
func (r Row) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range r {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Key encodes a composite key into an order-preserving byte string:
// comparing two encoded keys with bytes.Compare (or using them as map keys
// for equality) agrees with element-wise Value.Compare. INT and FLOAT values
// encode identically when numerically equal.
func Key(vals ...Value) string {
	var b []byte
	for _, v := range vals {
		b = appendKey(b, v)
	}
	return string(b)
}

// RowKey is Key applied to a whole row.
func RowKey(r Row) string { return Key(r...) }

func appendKey(b []byte, v Value) []byte {
	switch v.kind {
	case KindNull:
		return append(b, 0x00)
	case KindBool:
		return append(b, 0x01, byte(v.i))
	case KindInt, KindFloat:
		// Shared numeric tag so 1 and 1.0 encode identically.
		b = append(b, 0x02)
		return appendFloatKey(b, v.Float())
	case KindString:
		b = append(b, 0x03)
		// Escape 0x00 so the terminator is unambiguous.
		for i := 0; i < len(v.s); i++ {
			c := v.s[i]
			if c == 0x00 {
				b = append(b, 0x00, 0xFF)
			} else {
				b = append(b, c)
			}
		}
		return append(b, 0x00, 0x00)
	case KindTime:
		b = append(b, 0x04)
		return appendUint64(b, uint64(v.i)^(1<<63))
	default:
		panic("sqltypes: Key on unknown kind")
	}
}

func appendFloatKey(b []byte, f float64) []byte {
	u := math.Float64bits(f)
	if u&(1<<63) != 0 {
		u = ^u // negative: flip all bits
	} else {
		u ^= 1 << 63 // positive: flip sign bit
	}
	return appendUint64(b, u)
}

func appendUint64(b []byte, u uint64) []byte {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], u)
	return append(b, buf[:]...)
}
