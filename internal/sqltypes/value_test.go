package sqltypes

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull: "NULL", KindBool: "BOOLEAN", KindInt: "BIGINT",
		KindFloat: "DOUBLE", KindString: "VARCHAR", KindTime: "TIMESTAMP",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestAccessors(t *testing.T) {
	if NewInt(42).Int() != 42 {
		t.Error("Int accessor")
	}
	if NewFloat(2.5).Float() != 2.5 {
		t.Error("Float accessor")
	}
	if NewInt(3).Float() != 3.0 {
		t.Error("Float on int")
	}
	if NewString("hi").Str() != "hi" {
		t.Error("Str accessor")
	}
	if !NewBool(true).Bool() || NewBool(false).Bool() {
		t.Error("Bool accessor")
	}
	ts := time.Date(2004, 6, 13, 10, 0, 0, 0, time.UTC)
	if !NewTime(ts).Time().Equal(ts) {
		t.Error("Time accessor")
	}
	if !Null.IsNull() || NewInt(0).IsNull() {
		t.Error("IsNull")
	}
}

func TestAccessorPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("Int on string", func() { NewString("x").Int() })
	mustPanic("Str on int", func() { NewInt(1).Str() })
	mustPanic("Bool on int", func() { NewInt(1).Bool() })
	mustPanic("Time on int", func() { NewInt(1).Time() })
	mustPanic("Float on string", func() { NewString("x").Float() })
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewInt(1), NewFloat(1.5), -1},
		{NewFloat(1.0), NewInt(1), 0},
		{NewFloat(2.5), NewInt(2), 1},
		{NewString("a"), NewString("b"), -1},
		{NewString("b"), NewString("b"), 0},
		{Null, NewInt(0), -1},
		{NewInt(0), Null, 1},
		{Null, Null, 0},
		{NewBool(false), NewBool(true), -1},
		{NewTime(time.Unix(1, 0)), NewTime(time.Unix(2, 0)), -1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareAntisymmetric(t *testing.T) {
	vals := sampleValues()
	for _, a := range vals {
		for _, b := range vals {
			if a.Compare(b) != -b.Compare(a) {
				t.Fatalf("Compare not antisymmetric: %v vs %v", a, b)
			}
		}
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null, "NULL"},
		{NewBool(true), "TRUE"},
		{NewBool(false), "FALSE"},
		{NewInt(-7), "-7"},
		{NewFloat(2.5), "2.5"},
		{NewString("o'hare"), "'o''hare'"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.v.Kind(), got, c.want)
		}
	}
	if NewString("x").Display() != "x" {
		t.Error("Display should not quote strings")
	}
}

func TestRowCloneEqual(t *testing.T) {
	r := Row{NewInt(1), NewString("a")}
	c := r.Clone()
	if !r.Equal(c) {
		t.Fatal("clone not equal")
	}
	c[0] = NewInt(2)
	if r.Equal(c) {
		t.Fatal("clone shares storage")
	}
	if r.Equal(Row{NewInt(1)}) {
		t.Fatal("rows of different length compared equal")
	}
	var nilRow Row
	if nilRow.Clone() != nil {
		t.Fatal("Clone(nil) != nil")
	}
	if r.String() != "(1, 'a')" {
		t.Fatalf("Row.String = %s", r.String())
	}
}

// TestKeyOrderPreserving is the core property: bytes.Compare on encoded keys
// must agree with Value.Compare, for single values and composites.
func TestKeyOrderPreserving(t *testing.T) {
	vals := sampleValues()
	for _, a := range vals {
		for _, b := range vals {
			ka, kb := Key(a), Key(b)
			want := a.Compare(b)
			got := bytes.Compare([]byte(ka), []byte(kb))
			if sign(got) != sign(want) {
				t.Errorf("key order mismatch: %v vs %v: Compare=%d bytes=%d", a, b, want, got)
			}
		}
	}
}

func TestKeyCompositeOrder(t *testing.T) {
	a := Key(NewString("ab"), NewInt(5))
	b := Key(NewString("ab"), NewInt(6))
	c := Key(NewString("abc"), NewInt(0))
	if !(a < b) {
		t.Error("composite int order")
	}
	if !(a < c) {
		t.Error("prefix string must sort before longer string")
	}
	// A string containing 0x00 must not be confused with a terminator.
	d := Key(NewString("a\x00b"), NewInt(1))
	e := Key(NewString("a"), NewInt(200))
	if d <= e {
		t.Error("embedded NUL ordering")
	}
}

func TestKeyIntFloatEqual(t *testing.T) {
	if Key(NewInt(7)) != Key(NewFloat(7.0)) {
		t.Error("Key(7) != Key(7.0): numeric keys must unify")
	}
}

func TestKeyQuickInts(t *testing.T) {
	f := func(a, b int64) bool {
		ka, kb := Key(NewInt(a)), Key(NewInt(b))
		return sign(bytes.Compare([]byte(ka), []byte(kb))) == sign(cmpInt(a, b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKeyQuickFloats(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		ka, kb := Key(NewFloat(a)), Key(NewFloat(b))
		return sign(bytes.Compare([]byte(ka), []byte(kb))) == sign(cmpFloat(a, b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKeyQuickStrings(t *testing.T) {
	f := func(a, b string) bool {
		ka, kb := Key(NewString(a)), Key(NewString(b))
		want := bytes.Compare([]byte(a), []byte(b))
		return sign(bytes.Compare([]byte(ka), []byte(kb))) == sign(want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRowKey(t *testing.T) {
	r := Row{NewInt(1), NewString("x")}
	if RowKey(r) != Key(NewInt(1), NewString("x")) {
		t.Error("RowKey disagrees with Key")
	}
}

func sampleValues() []Value {
	rng := rand.New(rand.NewSource(42))
	vals := []Value{
		Null, NewBool(false), NewBool(true),
		NewInt(math.MinInt64), NewInt(-1), NewInt(0), NewInt(1), NewInt(math.MaxInt64),
		NewFloat(math.Inf(-1)), NewFloat(-1.5), NewFloat(0), NewFloat(1.5), NewFloat(math.Inf(1)),
		NewString(""), NewString("a"), NewString("a\x00"), NewString("zz"),
		NewTime(time.Unix(0, 0)), NewTime(time.Unix(1e6, 999)),
	}
	for i := 0; i < 20; i++ {
		vals = append(vals, NewInt(rng.Int63()-rng.Int63()), NewFloat(rng.NormFloat64()*1e6))
	}
	return vals
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	default:
		return 0
	}
}
