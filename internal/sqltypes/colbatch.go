package sqltypes

// This file defines the columnar batch layout the vectorized executor runs
// on. The storage engine is row-major (stored rows are []Value), so the
// design is late-materializing: a ColBatch usually starts life as a window
// of row references straight off a B+-tree leaf walk, and individual
// columns are transposed into typed vectors only when a kernel touches
// them. Predicates narrow a batch by refining its selection vector —
// survivors are carried as indexes, never copied — and purely columnar
// batches (no row backing) appear where an operator produces columns
// directly, e.g. a projection of column references.
//
// Ownership contract (extends the Batch contract): a *ColBatch returned by
// a producer is read-only for the consumer and valid only until the
// consumer's next call into the producer (NextVec, NextBatch or Close).
// The selection vector and any materialized column vectors are owned by
// the producer and may be overwritten on the next call; rows reachable
// through the batch are shared and immutable, as everywhere in the
// executor. Consumers that need data beyond the validity window must copy
// it out (AppendRows copies row headers; the rows themselves stay valid
// forever).

// Vec is one column of a ColBatch: up to n values of a single kind stored
// in a typed array, with NULLs tracked in a side slice. Columns whose
// values do not share one kind degrade to the Any representation, which
// keeps kernels correct (value-at-a-time) without losing the
// column-at-a-time loop structure.
type Vec struct {
	// Kind is the common kind of all non-NULL values, or KindNull when the
	// column is mixed-kind (then Any holds the values verbatim).
	Kind Kind
	// Null[i] reports whether value i is NULL. Nil when no value is NULL.
	Null []bool
	// I64 holds KindInt values, KindBool as 0/1, and KindTime as
	// nanoseconds since the Unix epoch.
	I64 []int64
	// F64 holds KindFloat values.
	F64 []float64
	// Str holds KindString values.
	Str []string
	// Any is the fallback representation for mixed-kind columns.
	Any []Value

	n int
	// nullBuf retains the null-lane backing array while Null is nil (Null
	// must be exactly nil when no value is NULL), so nullable columns stay
	// allocation-free across batches.
	nullBuf []bool
}

// Len returns the number of values in the vector.
func (v *Vec) Len() int { return v.n }

// IsNull reports whether value i is NULL.
func (v *Vec) IsNull(i int) bool { return v.Null != nil && v.Null[i] }

// Value reconstructs value i. It is the slow accessor — kernels should
// switch on Kind and read the typed array directly.
func (v *Vec) Value(i int) Value {
	if v.IsNull(i) {
		return Null
	}
	switch v.Kind {
	case KindInt:
		return Value{kind: KindInt, i: v.I64[i]}
	case KindBool:
		return Value{kind: KindBool, i: v.I64[i]}
	case KindTime:
		return Value{kind: KindTime, i: v.I64[i]}
	case KindFloat:
		return Value{kind: KindFloat, f: v.F64[i]}
	case KindString:
		return Value{kind: KindString, s: v.Str[i]}
	default:
		return v.Any[i]
	}
}

// reset prepares the vector to hold n values of the given kind, reusing
// backing arrays across batches.
func (v *Vec) reset(kind Kind, n int) {
	v.Kind = kind
	v.n = n
	v.dropNulls()
	v.I64 = v.I64[:0]
	v.F64 = v.F64[:0]
	v.Str = v.Str[:0]
	v.Any = v.Any[:0]
}

// dropNulls clears the null lane, stashing its backing array in nullBuf so
// the next batch with NULLs reuses it instead of reallocating.
func (v *Vec) dropNulls() {
	if v.Null != nil {
		v.nullBuf = v.Null[:0]
		v.Null = nil
	}
}

// degradeToAny switches the vector to the fallback representation,
// rebuilding all values verbatim from the row backing. Called when a
// column turns out mixed-kind.
func (v *Vec) degradeToAny(rows Batch, col int) {
	v.Any = v.Any[:0]
	for _, r := range rows {
		v.Any = append(v.Any, r[col])
	}
	v.Kind = KindNull
	v.dropNulls()
	v.I64 = v.I64[:0]
	v.F64 = v.F64[:0]
	v.Str = v.Str[:0]
}

// FillFromRows transposes column col of rows into the vector. The column
// kind is sniffed from the first non-NULL value (a prepass that normally
// inspects one row); a later kind mismatch degrades the whole column to
// Any. Backing arrays are reused across calls.
func (v *Vec) FillFromRows(rows Batch, col int) {
	n := len(rows)
	v.reset(KindNull, n)
	kind := KindNull
	for _, r := range rows {
		if k := r[col].kind; k != KindNull {
			kind = k
			break
		}
	}
	if kind == KindNull {
		// All-NULL (or empty) column: represent via Any.
		for i := 0; i < n; i++ {
			v.Any = append(v.Any, Null)
		}
		return
	}
	v.Kind = kind
	for i, r := range rows {
		val := r[col]
		if val.kind == KindNull {
			if v.Null == nil {
				v.Null = growNulls(v.nullBuf, i)
			}
			v.Null = append(v.Null, true)
			v.appendZero(kind)
			continue
		}
		if val.kind != kind {
			v.degradeToAny(rows, col)
			return
		}
		if v.Null != nil {
			v.Null = append(v.Null, false)
		}
		switch kind {
		case KindInt, KindBool, KindTime:
			v.I64 = append(v.I64, val.i)
		case KindFloat:
			v.F64 = append(v.F64, val.f)
		case KindString:
			v.Str = append(v.Str, val.s)
		}
	}
}

// Append adds one value to the vector, choosing the typed representation
// from the first non-NULL value and degrading to Any on a kind mismatch (or
// when the column leads with NULLs, where no kind can be committed yet).
// Producers that build columns incrementally — join output gathering, for
// example — pair this with ColBatch.BuildCol to reuse backing arrays across
// batches.
func (v *Vec) Append(val Value) {
	if v.n > 0 && v.Kind == KindNull {
		// Any mode: values land verbatim.
		v.Any = append(v.Any, val)
		v.n++
		return
	}
	if val.kind == KindNull {
		if v.n == 0 {
			v.Any = append(v.Any, val)
			v.n++
			return
		}
		if v.Null == nil {
			v.Null = growNulls(v.nullBuf, v.n)
		}
		v.Null = append(v.Null, true)
		v.appendZero(v.Kind)
		v.n++
		return
	}
	if v.n == 0 {
		v.Kind = val.kind
	}
	if val.kind != v.Kind {
		v.migrateToAny()
		v.Any = append(v.Any, val)
		v.n++
		return
	}
	if v.Null != nil {
		v.Null = append(v.Null, false)
	}
	switch v.Kind {
	case KindInt, KindBool, KindTime:
		v.I64 = append(v.I64, val.i)
	case KindFloat:
		v.F64 = append(v.F64, val.f)
	case KindString:
		v.Str = append(v.Str, val.s)
	}
	v.n++
}

// GatherFromRows transposes column col of the rows selected by idxs into
// the vector — the indexed counterpart of FillFromRows, used by operators
// that emit a gather of their inputs (join output columns). Kind sniffing
// and the mixed-kind Any degrade match FillFromRows; backing arrays are
// reused across calls.
func (v *Vec) GatherFromRows(rows Batch, idxs []int32, col int) {
	n := len(idxs)
	v.reset(KindNull, n)
	kind := KindNull
	for _, r := range idxs {
		if k := rows[r][col].kind; k != KindNull {
			kind = k
			break
		}
	}
	if kind == KindNull {
		for i := 0; i < n; i++ {
			v.Any = append(v.Any, Null)
		}
		return
	}
	v.Kind = kind
	for i, r := range idxs {
		val := rows[r][col]
		if val.kind == KindNull {
			if v.Null == nil {
				v.Null = growNulls(v.nullBuf, i)
			}
			v.Null = append(v.Null, true)
			v.appendZero(kind)
			continue
		}
		if val.kind != kind {
			v.degradeToAnyIdx(rows, idxs, col)
			return
		}
		if v.Null != nil {
			v.Null = append(v.Null, false)
		}
		switch kind {
		case KindInt, KindBool, KindTime:
			v.I64 = append(v.I64, val.i)
		case KindFloat:
			v.F64 = append(v.F64, val.f)
		case KindString:
			v.Str = append(v.Str, val.s)
		}
	}
}

// GatherFrom fills the vector with src's values at idxs — the
// vector-to-vector counterpart of GatherFromRows, for producers whose
// source column is already transposed (the hash join transposes its build
// side once per Open and gathers from it for every output batch). Typed
// lanes copy array elements directly, skipping the per-value kind dispatch.
func (v *Vec) GatherFrom(src *Vec, idxs []int32) {
	n := len(idxs)
	if src.Kind == KindNull {
		// Any-mode or all-NULL source: values land verbatim.
		v.reset(KindNull, n)
		for _, r := range idxs {
			v.Any = append(v.Any, src.Any[r])
		}
		return
	}
	v.reset(src.Kind, n)
	switch src.Kind {
	case KindInt, KindBool, KindTime:
		for _, r := range idxs {
			v.I64 = append(v.I64, src.I64[r])
		}
	case KindFloat:
		for _, r := range idxs {
			v.F64 = append(v.F64, src.F64[r])
		}
	case KindString:
		for _, r := range idxs {
			v.Str = append(v.Str, src.Str[r])
		}
	}
	if src.Null != nil {
		nulls := v.nullBuf[:0]
		for _, r := range idxs {
			nulls = append(nulls, src.Null[r])
		}
		v.Null = nulls
	}
}

// degradeToAnyIdx is degradeToAny for an indexed gather.
func (v *Vec) degradeToAnyIdx(rows Batch, idxs []int32, col int) {
	v.Any = v.Any[:0]
	for _, r := range idxs {
		v.Any = append(v.Any, rows[r][col])
	}
	v.Kind = KindNull
	v.dropNulls()
	v.I64 = v.I64[:0]
	v.F64 = v.F64[:0]
	v.Str = v.Str[:0]
}

// migrateToAny rebuilds the vector's values in the Any representation when
// an Append reveals the column is mixed-kind.
func (v *Vec) migrateToAny() {
	any := v.Any[:0]
	for i := 0; i < v.n; i++ {
		any = append(any, v.Value(i))
	}
	v.Kind = KindNull
	v.dropNulls()
	v.I64, v.F64, v.Str = v.I64[:0], v.F64[:0], v.Str[:0]
	v.Any = any
}

func (v *Vec) appendZero(kind Kind) {
	switch kind {
	case KindInt, KindBool, KindTime:
		v.I64 = append(v.I64, 0)
	case KindFloat:
		v.F64 = append(v.F64, 0)
	case KindString:
		v.Str = append(v.Str, "")
	}
}

// growNulls returns a null slice of length n (all false), reusing capacity.
func growNulls(nulls []bool, n int) []bool {
	nulls = nulls[:0]
	for i := 0; i < n; i++ {
		nulls = append(nulls, false)
	}
	return nulls
}

// ColBatch is a columnar batch with a selection vector. Len counts the
// rows physically present; Sel, when non-nil, lists the indexes of the
// rows that are logically active (in order). Operators narrow a batch by
// shrinking Sel instead of copying survivors.
type ColBatch struct {
	// Rows is the optional row-major backing: scans emit leaf windows here
	// and columns are transposed on demand. Nil for purely columnar
	// batches.
	Rows Batch
	// Sel lists active row indexes in ascending order; nil means all Len()
	// rows are active.
	Sel []int32

	n     int
	cols  []Vec
	colOK []bool
}

// ResetRows (re)initializes the batch around a row window of the given
// arity, invalidating any materialized columns and clearing the selection.
// Column vectors and bookkeeping are reused across calls.
func (b *ColBatch) ResetRows(rows Batch, width int) {
	b.Rows = rows
	b.n = len(rows)
	b.Sel = nil
	b.ensureWidth(width)
}

// ResetCols (re)initializes the batch as purely columnar with the given
// width and logical length; columns must then be set with SetCol.
func (b *ColBatch) ResetCols(width, n int) {
	b.Rows = nil
	b.n = n
	b.Sel = nil
	b.ensureWidth(width)
}

func (b *ColBatch) ensureWidth(width int) {
	if cap(b.cols) < width {
		b.cols = make([]Vec, width)
		b.colOK = make([]bool, width)
		return
	}
	b.cols = b.cols[:width]
	b.colOK = b.colOK[:width]
	for i := range b.colOK {
		b.colOK[i] = false
	}
}

// Width returns the number of columns.
func (b *ColBatch) Width() int { return len(b.cols) }

// Len returns the number of physical rows (before selection).
func (b *ColBatch) Len() int { return b.n }

// NumActive returns the number of logically active rows.
func (b *ColBatch) NumActive() int {
	if b.Sel != nil {
		return len(b.Sel)
	}
	return b.n
}

// Col returns column j, transposing it from the row backing on first
// access. The returned vector covers all Len() rows; kernels apply Sel
// themselves.
func (b *ColBatch) Col(j int) *Vec {
	if !b.colOK[j] {
		b.cols[j].FillFromRows(b.Rows, j)
		b.colOK[j] = true
	}
	return &b.cols[j]
}

// BuildCol returns column j's vector emptied for incremental Appends,
// reusing its backing arrays. The caller must append exactly Len() values
// before the batch is handed to a consumer.
func (b *ColBatch) BuildCol(j int) *Vec {
	b.cols[j].reset(KindNull, 0)
	b.colOK[j] = true
	return &b.cols[j]
}

// SetCol installs a materialized vector as column j (purely columnar
// producers). The vector is copied by value; its backing arrays are shared.
func (b *ColBatch) SetCol(j int, v *Vec) {
	b.cols[j] = *v
	b.colOK[j] = true
}

// Row materializes active row i (an index into the physical rows, i.e.
// already resolved through Sel by the caller). With a row backing this is
// a zero-copy reference; purely columnar batches allocate a fresh row.
func (b *ColBatch) Row(i int) Row {
	if b.Rows != nil {
		return b.Rows[i]
	}
	out := make(Row, len(b.cols))
	for j := range b.cols {
		out[j] = b.Col(j).Value(i)
	}
	return out
}

// AppendRows appends every active row to dst and returns it. Row-backed
// batches append shared row references (header copies only); purely
// columnar batches materialize fresh rows from the vectors.
func (b *ColBatch) AppendRows(dst Batch) Batch {
	if b.Rows != nil {
		if b.Sel == nil {
			return append(dst, b.Rows...)
		}
		for _, i := range b.Sel {
			dst = append(dst, b.Rows[i])
		}
		return dst
	}
	w := len(b.cols)
	if b.Sel == nil {
		for i := 0; i < b.n; i++ {
			dst = append(dst, b.rowAt(i, w))
		}
		return dst
	}
	for _, i := range b.Sel {
		dst = append(dst, b.rowAt(int(i), w))
	}
	return dst
}

func (b *ColBatch) rowAt(i, w int) Row {
	out := make(Row, w)
	for j := 0; j < w; j++ {
		out[j] = b.Col(j).Value(i)
	}
	return out
}
