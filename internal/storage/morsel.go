package storage

import (
	"relaxedcc/internal/sqltypes"
)

// Morsel is a half-open range [Start, End) of encoded clustered-index keys:
// the unit of work a parallel scan worker claims. An empty Start means from
// the beginning of the range; an empty End means to the end.
type Morsel struct {
	Start, End string
}

// Morsels partitions the clustered primary-key range described by lo/hi
// (same bound semantics as ScanIndex on a clustered index) into up to parts
// contiguous morsels of roughly equal cardinality, using the B+-tree's
// separator keys as boundaries. It always returns at least one morsel
// covering the whole range, so callers can fan out workers unconditionally.
func (t *Table) Morsels(lo, hi Bound, parts int) []Morsel {
	t.mu.RLock()
	defer t.mu.RUnlock()
	start, end := rangeKeys(lo, hi)
	morsels := make([]Morsel, 0, parts)
	cur := start
	for _, s := range t.primary.SplitKeys(parts) {
		if s <= cur {
			continue // splits are sorted; skip those before the range
		}
		if end != "" && s >= end {
			break
		}
		morsels = append(morsels, Morsel{Start: cur, End: s})
		cur = s
	}
	return append(morsels, Morsel{Start: cur, End: end})
}

// ScanChunk reads up to limit clustered-index rows with encoded keys in
// [start, end) — "" meaning unbounded — calling fn with each. It returns the
// encoded key at which the next chunk resumes and whether rows may remain;
// the resume row itself has not been passed to fn. Like ScanMorsel it
// acquires the read latch per call, so a chunked scan interleaves with
// writers at chunk granularity. It is the storage feed of the batched
// executor's streaming clustered scan.
func (t *Table) ScanChunk(start, end string, limit int, fn func(sqltypes.Row) bool) (next string, more bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := 0
	t.primary.AscendRange(start, end, func(k string, val any) bool {
		if n >= limit {
			next, more = k, true
			return false
		}
		n++
		return fn(val.(sqltypes.Row))
	})
	return next, more
}

// ChunkRows bulk-appends up to limit clustered-index rows with encoded keys
// in [start, end) — "" meaning unbounded — onto dst, walking whole leaves
// instead of invoking a callback per row. It returns the grown batch, the
// encoded key at which the next chunk resumes, and whether rows may remain.
// Latching matches ScanChunk: one short read latch per call.
func (t *Table) ChunkRows(start, end string, limit int, dst sqltypes.Batch) (sqltypes.Batch, string, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var next string
	more := false
	t.primary.AscendLeaves(start, end, func(keys []string, vals []any) bool {
		if room := limit - len(dst); len(vals) > room {
			for _, v := range vals[:room] {
				dst = append(dst, v.(sqltypes.Row))
			}
			next, more = keys[room], true
			return false
		}
		for _, v := range vals {
			dst = append(dst, v.(sqltypes.Row))
		}
		return true
	})
	return dst, next, more
}

// ScanMorsel scans the clustered primary index over the morsel's key range,
// calling fn with each stored row until fn returns false. Rows passed to fn
// are the stored rows; callers must not mutate them. Each morsel scan
// acquires the table's read latch independently, so a long parallel scan
// interleaves with writers at morsel granularity — each morsel sees a
// committed state, matching the read-committed view Scan provides.
func (t *Table) ScanMorsel(m Morsel, fn func(sqltypes.Row) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.primary.AscendRange(m.Start, m.End, func(_ string, val any) bool {
		return fn(val.(sqltypes.Row))
	})
}
