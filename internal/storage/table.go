// Package storage implements the in-memory row store used by both the
// back-end server and the cache's materialized views: a clustered B+-tree on
// the primary key plus any number of secondary indexes.
//
// Mutations return the before-image so the transaction layer can write the
// commit log that feeds replication. Tables are safe for concurrent use; a
// table-level RWMutex stands in for the paper's strict-2PL assumption (the
// paper assumes writers are serialized on the master; readers see committed
// states only).
package storage

import (
	"fmt"
	"sync"

	"relaxedcc/internal/btree"
	"relaxedcc/internal/catalog"
	"relaxedcc/internal/sqltypes"
)

// Table stores rows for one base table or materialized view.
type Table struct {
	def *catalog.Table

	mu        sync.RWMutex
	primary   *btree.Tree            // Key(pk) -> sqltypes.Row
	secondary map[string]*btree.Tree // index name -> Key(idx cols..., pk cols...) -> Key(pk)
	secOrds   map[string][]int       // index name -> key-column ordinals
	pkOrds    []int
}

// NewTable creates an empty table for the given definition.
func NewTable(def *catalog.Table) *Table {
	t := &Table{
		def:       def,
		primary:   btree.New(),
		secondary: map[string]*btree.Tree{},
		secOrds:   map[string][]int{},
		pkOrds:    def.PKOrdinals(),
	}
	for _, idx := range def.Indexes {
		if !idx.Clustered {
			t.secondary[idx.Name] = btree.New()
			ords, err := t.ordinals(idx.Columns)
			if err != nil {
				panic(err) // definition validated by the catalog
			}
			t.secOrds[idx.Name] = ords
		}
	}
	return t
}

// Def returns the table definition.
func (t *Table) Def() *catalog.Table { return t.def }

// Len returns the number of rows.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.primary.Len()
}

// AddIndex creates and populates a new secondary index.
func (t *Table) AddIndex(idx *catalog.Index) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.secondary[idx.Name]; ok {
		return fmt.Errorf("storage: index %s already exists on %s", idx.Name, t.def.Name)
	}
	ords, err := t.ordinals(idx.Columns)
	if err != nil {
		return err
	}
	tree := btree.New()
	t.primary.Ascend(func(pkKey string, val any) bool {
		row := val.(sqltypes.Row)
		tree.Set(t.indexKeyLocked(ords, row, pkKey), pkKey)
		return true
	})
	t.secondary[idx.Name] = tree
	t.secOrds[idx.Name] = ords
	return nil
}

func (t *Table) ordinals(cols []string) ([]int, error) {
	ords := make([]int, len(cols))
	for i, c := range cols {
		o := t.def.ColumnIndex(c)
		if o < 0 {
			return nil, fmt.Errorf("storage: table %s has no column %s", t.def.Name, c)
		}
		ords[i] = o
	}
	return ords, nil
}

// pkKey returns the encoded primary key of row.
func (t *Table) pkKey(row sqltypes.Row) string {
	vals := make([]sqltypes.Value, len(t.pkOrds))
	for i, o := range t.pkOrds {
		vals[i] = row[o]
	}
	return sqltypes.Key(vals...)
}

func (t *Table) indexKeyLocked(ords []int, row sqltypes.Row, pkKey string) string {
	vals := make([]sqltypes.Value, len(ords))
	for i, o := range ords {
		vals[i] = row[o]
	}
	return sqltypes.Key(vals...) + pkKey
}

// Insert adds a row. It fails on arity mismatch, NOT NULL violation or
// duplicate primary key. The stored row is a clone; the caller keeps
// ownership of row.
func (t *Table) Insert(row sqltypes.Row) error {
	if len(row) != len(t.def.Columns) {
		return fmt.Errorf("storage: %s: insert arity %d, want %d", t.def.Name, len(row), len(t.def.Columns))
	}
	for i, col := range t.def.Columns {
		if col.NotNull && row[i].IsNull() {
			return fmt.Errorf("storage: %s: NULL in NOT NULL column %s", t.def.Name, col.Name)
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	pk := t.pkKey(row)
	if _, exists := t.primary.Get(pk); exists {
		return fmt.Errorf("storage: %s: duplicate primary key %s", t.def.Name, pkString(t, row))
	}
	stored := row.Clone()
	t.primary.Set(pk, stored)
	for name, tree := range t.secondary {
		tree.Set(t.indexKeyLocked(t.secOrds[name], stored, pk), pk)
	}
	return nil
}

func pkString(t *Table, row sqltypes.Row) string {
	vals := make([]sqltypes.Value, len(t.pkOrds))
	for i, o := range t.pkOrds {
		vals[i] = row[o]
	}
	return sqltypes.Row(vals).String()
}

func (t *Table) findIndex(name string) *catalog.Index {
	for _, idx := range t.def.Indexes {
		if idx.Name == name {
			return idx
		}
	}
	return nil
}

// Delete removes the row with the given primary-key values, returning the
// removed row (the before-image) if one existed.
func (t *Table) Delete(pkVals sqltypes.Row) (sqltypes.Row, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	pk := sqltypes.Key(pkVals...)
	val, ok := t.primary.Get(pk)
	if !ok {
		return nil, false
	}
	old := val.(sqltypes.Row)
	t.primary.Delete(pk)
	for name, tree := range t.secondary {
		tree.Delete(t.indexKeyLocked(t.secOrds[name], old, pk))
	}
	return old, true
}

// Update replaces the row identified by newRow's primary key with newRow,
// returning the before-image. It fails if no such row exists. Changing
// primary-key columns must be expressed as Delete+Insert by the caller.
func (t *Table) Update(newRow sqltypes.Row) (sqltypes.Row, error) {
	if len(newRow) != len(t.def.Columns) {
		return nil, fmt.Errorf("storage: %s: update arity %d, want %d", t.def.Name, len(newRow), len(t.def.Columns))
	}
	for i, col := range t.def.Columns {
		if col.NotNull && newRow[i].IsNull() {
			return nil, fmt.Errorf("storage: %s: NULL in NOT NULL column %s", t.def.Name, col.Name)
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	pk := t.pkKey(newRow)
	val, ok := t.primary.Get(pk)
	if !ok {
		return nil, fmt.Errorf("storage: %s: update of missing key", t.def.Name)
	}
	old := val.(sqltypes.Row)
	stored := newRow.Clone()
	t.primary.Set(pk, stored)
	for name, tree := range t.secondary {
		ords := t.secOrds[name]
		oldKey := t.indexKeyLocked(ords, old, pk)
		newKey := t.indexKeyLocked(ords, stored, pk)
		if oldKey != newKey {
			tree.Delete(oldKey)
			tree.Set(newKey, pk)
		}
	}
	return old, nil
}

// Get returns the row with the given primary-key values.
func (t *Table) Get(pkVals sqltypes.Row) (sqltypes.Row, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	val, ok := t.primary.Get(sqltypes.Key(pkVals...))
	if !ok {
		return nil, false
	}
	return val.(sqltypes.Row).Clone(), true
}

// Scan calls fn with every row in primary-key order until fn returns false.
// Rows passed to fn are the stored rows; callers must not mutate them.
func (t *Table) Scan(fn func(sqltypes.Row) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.primary.Ascend(func(_ string, val any) bool {
		return fn(val.(sqltypes.Row))
	})
}

// Bound describes one end of an index range. A nil Vals means unbounded.
type Bound struct {
	Vals      sqltypes.Row
	Inclusive bool
}

// ScanIndex range-scans the named index (or the clustered primary index if
// idxName matches a clustered index) between lo and hi, calling fn with each
// matching row until fn returns false. The bounds apply to a prefix of the
// index key columns.
func (t *Table) ScanIndex(idxName string, lo, hi Bound, fn func(sqltypes.Row) bool) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	idx := t.findIndex(idxName)
	if idx == nil {
		return fmt.Errorf("storage: table %s has no index %s", t.def.Name, idxName)
	}
	start, end := rangeKeys(lo, hi)
	if idx.Clustered {
		t.primary.AscendRange(start, end, func(_ string, val any) bool {
			return fn(val.(sqltypes.Row))
		})
		return nil
	}
	tree := t.secondary[idxName]
	cont := true
	tree.AscendRange(start, end, func(_ string, val any) bool {
		pk := val.(string)
		rowVal, ok := t.primary.Get(pk)
		if !ok { // index and heap out of sync: structural bug
			panic("storage: dangling index entry in " + idxName)
		}
		cont = fn(rowVal.(sqltypes.Row))
		return cont
	})
	return nil
}

// rangeKeys converts bounds on key-column prefixes to encoded key-range
// endpoints for AscendRange (start inclusive, end exclusive).
func rangeKeys(lo, hi Bound) (start, end string) {
	if lo.Vals != nil {
		k := sqltypes.Key(lo.Vals...)
		if lo.Inclusive {
			start = k
		} else {
			start = btree.PrefixEnd(k)
		}
	}
	if hi.Vals != nil {
		k := sqltypes.Key(hi.Vals...)
		if hi.Inclusive {
			end = btree.PrefixEnd(k)
		} else {
			end = k
		}
	}
	return start, end
}

// Clear removes all rows (used when (re)initializing a replica).
func (t *Table) Clear() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.primary = btree.New()
	for name := range t.secondary {
		t.secondary[name] = btree.New()
	}
}

// CheckIndexConsistency verifies that every secondary-index entry points at
// a live row and that every row is indexed; used by tests. It returns "" if
// consistent.
func (t *Table) CheckIndexConsistency() string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for name, tree := range t.secondary {
		if tree.Len() != t.primary.Len() {
			return fmt.Sprintf("index %s has %d entries, table has %d rows", name, tree.Len(), t.primary.Len())
		}
		ords := t.secOrds[name]
		bad := ""
		tree.Ascend(func(key string, val any) bool {
			pk := val.(string)
			rowVal, ok := t.primary.Get(pk)
			if !ok {
				bad = fmt.Sprintf("index %s entry points at missing row", name)
				return false
			}
			if want := t.indexKeyLocked(ords, rowVal.(sqltypes.Row), pk); want != key {
				bad = fmt.Sprintf("index %s entry key mismatch", name)
				return false
			}
			return true
		})
		if bad != "" {
			return bad
		}
	}
	return ""
}
