package storage

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"relaxedcc/internal/catalog"
	"relaxedcc/internal/sqltypes"
)

func newTestTable(t *testing.T) *Table {
	t.Helper()
	c := catalog.New()
	def := &catalog.Table{
		Name: "t",
		Columns: []catalog.Column{
			{Name: "id", Type: sqltypes.KindInt, NotNull: true},
			{Name: "name", Type: sqltypes.KindString},
			{Name: "bal", Type: sqltypes.KindFloat},
		},
		PrimaryKey: []string{"id"},
	}
	if err := c.AddTable(def); err != nil {
		t.Fatal(err)
	}
	if err := c.AddIndex(&catalog.Index{Name: "ix_bal", Table: "t", Columns: []string{"bal"}}); err != nil {
		t.Fatal(err)
	}
	return NewTable(c.Table("t"))
}

func row(id int64, name string, bal float64) sqltypes.Row {
	return sqltypes.Row{sqltypes.NewInt(id), sqltypes.NewString(name), sqltypes.NewFloat(bal)}
}

func TestInsertGet(t *testing.T) {
	tbl := newTestTable(t)
	if err := tbl.Insert(row(1, "a", 10)); err != nil {
		t.Fatal(err)
	}
	got, ok := tbl.Get(sqltypes.Row{sqltypes.NewInt(1)})
	if !ok || got[1].Str() != "a" {
		t.Fatalf("Get = %v, %v", got, ok)
	}
	if _, ok := tbl.Get(sqltypes.Row{sqltypes.NewInt(2)}); ok {
		t.Fatal("Get of missing row")
	}
	if tbl.Len() != 1 {
		t.Fatal("Len")
	}
}

func TestInsertErrors(t *testing.T) {
	tbl := newTestTable(t)
	if err := tbl.Insert(sqltypes.Row{sqltypes.NewInt(1)}); err == nil || !strings.Contains(err.Error(), "arity") {
		t.Fatalf("arity err = %v", err)
	}
	if err := tbl.Insert(sqltypes.Row{sqltypes.Null, sqltypes.NewString("x"), sqltypes.NewFloat(0)}); err == nil || !strings.Contains(err.Error(), "NOT NULL") {
		t.Fatalf("notnull err = %v", err)
	}
	if err := tbl.Insert(row(1, "a", 10)); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(row(1, "b", 20)); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("dup err = %v", err)
	}
}

func TestInsertClonesRow(t *testing.T) {
	tbl := newTestTable(t)
	r := row(1, "a", 10)
	if err := tbl.Insert(r); err != nil {
		t.Fatal(err)
	}
	r[1] = sqltypes.NewString("mutated")
	got, _ := tbl.Get(sqltypes.Row{sqltypes.NewInt(1)})
	if got[1].Str() != "a" {
		t.Fatal("stored row aliases caller's slice")
	}
}

func TestDelete(t *testing.T) {
	tbl := newTestTable(t)
	tbl.Insert(row(1, "a", 10))
	old, ok := tbl.Delete(sqltypes.Row{sqltypes.NewInt(1)})
	if !ok || old[1].Str() != "a" {
		t.Fatalf("Delete = %v, %v", old, ok)
	}
	if _, ok := tbl.Delete(sqltypes.Row{sqltypes.NewInt(1)}); ok {
		t.Fatal("second delete succeeded")
	}
	if tbl.Len() != 0 {
		t.Fatal("Len after delete")
	}
	if msg := tbl.CheckIndexConsistency(); msg != "" {
		t.Fatal(msg)
	}
}

func TestUpdate(t *testing.T) {
	tbl := newTestTable(t)
	tbl.Insert(row(1, "a", 10))
	old, err := tbl.Update(row(1, "a2", 99))
	if err != nil || old[1].Str() != "a" {
		t.Fatalf("Update = %v, %v", old, err)
	}
	got, _ := tbl.Get(sqltypes.Row{sqltypes.NewInt(1)})
	if got[1].Str() != "a2" || got[2].Float() != 99 {
		t.Fatalf("after update: %v", got)
	}
	if _, err := tbl.Update(row(2, "x", 0)); err == nil {
		t.Fatal("update of missing row succeeded")
	}
	if _, err := tbl.Update(sqltypes.Row{sqltypes.NewInt(1)}); err == nil {
		t.Fatal("bad arity update succeeded")
	}
	if msg := tbl.CheckIndexConsistency(); msg != "" {
		t.Fatal(msg)
	}
}

func TestScanOrder(t *testing.T) {
	tbl := newTestTable(t)
	for _, id := range []int64{5, 1, 3, 2, 4} {
		tbl.Insert(row(id, fmt.Sprint(id), float64(10-id)))
	}
	var ids []int64
	tbl.Scan(func(r sqltypes.Row) bool {
		ids = append(ids, r[0].Int())
		return true
	})
	for i, id := range ids {
		if id != int64(i+1) {
			t.Fatalf("scan order = %v", ids)
		}
	}
	// Early stop.
	n := 0
	tbl.Scan(func(sqltypes.Row) bool { n++; return n < 2 })
	if n != 2 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestScanIndexRange(t *testing.T) {
	tbl := newTestTable(t)
	for i := int64(1); i <= 100; i++ {
		tbl.Insert(row(i, fmt.Sprint(i), float64(i)))
	}
	var got []float64
	err := tbl.ScanIndex("ix_bal",
		Bound{Vals: sqltypes.Row{sqltypes.NewFloat(10)}, Inclusive: true},
		Bound{Vals: sqltypes.Row{sqltypes.NewFloat(20)}, Inclusive: false},
		func(r sqltypes.Row) bool {
			got = append(got, r[2].Float())
			return true
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 || got[0] != 10 || got[9] != 19 {
		t.Fatalf("index range [10,20) = %v", got)
	}
	// Exclusive lower bound.
	got = nil
	tbl.ScanIndex("ix_bal",
		Bound{Vals: sqltypes.Row{sqltypes.NewFloat(10)}, Inclusive: false},
		Bound{Vals: sqltypes.Row{sqltypes.NewFloat(12)}, Inclusive: true},
		func(r sqltypes.Row) bool { got = append(got, r[2].Float()); return true })
	if len(got) != 2 || got[0] != 11 || got[1] != 12 {
		t.Fatalf("index range (10,12] = %v", got)
	}
	// Unbounded scan over clustered index.
	count := 0
	tbl.ScanIndex("pk_t", Bound{}, Bound{}, func(sqltypes.Row) bool { count++; return true })
	if count != 100 {
		t.Fatalf("clustered scan visited %d", count)
	}
	if err := tbl.ScanIndex("nope", Bound{}, Bound{}, func(sqltypes.Row) bool { return true }); err == nil {
		t.Fatal("scan of missing index succeeded")
	}
}

func TestScanIndexDuplicateKeys(t *testing.T) {
	tbl := newTestTable(t)
	// Many rows share bal=7; the index key is made unique by the PK suffix.
	for i := int64(1); i <= 20; i++ {
		tbl.Insert(row(i, "x", 7))
	}
	n := 0
	tbl.ScanIndex("ix_bal",
		Bound{Vals: sqltypes.Row{sqltypes.NewFloat(7)}, Inclusive: true},
		Bound{Vals: sqltypes.Row{sqltypes.NewFloat(7)}, Inclusive: true},
		func(sqltypes.Row) bool { n++; return true })
	if n != 20 {
		t.Fatalf("dup-key scan visited %d, want 20", n)
	}
}

func TestAddIndexBackfills(t *testing.T) {
	tbl := newTestTable(t)
	for i := int64(1); i <= 50; i++ {
		tbl.Insert(row(i, fmt.Sprint(i), float64(i%5)))
	}
	idx := &catalog.Index{Name: "ix_name", Table: "t", Columns: []string{"name"}}
	if err := tbl.AddIndex(idx); err != nil {
		t.Fatal(err)
	}
	if err := tbl.AddIndex(idx); err == nil {
		t.Fatal("duplicate AddIndex succeeded")
	}
	tbl.Def().Indexes = append(tbl.Def().Indexes, idx)
	n := 0
	tbl.ScanIndex("ix_name",
		Bound{Vals: sqltypes.Row{sqltypes.NewString("7")}, Inclusive: true},
		Bound{Vals: sqltypes.Row{sqltypes.NewString("7")}, Inclusive: true},
		func(sqltypes.Row) bool { n++; return true })
	if n != 1 {
		t.Fatalf("backfilled index scan found %d", n)
	}
	if msg := tbl.CheckIndexConsistency(); msg != "" {
		t.Fatal(msg)
	}
}

func TestClear(t *testing.T) {
	tbl := newTestTable(t)
	for i := int64(1); i <= 10; i++ {
		tbl.Insert(row(i, "x", 1))
	}
	tbl.Clear()
	if tbl.Len() != 0 {
		t.Fatal("Clear left rows")
	}
	if msg := tbl.CheckIndexConsistency(); msg != "" {
		t.Fatal(msg)
	}
	if err := tbl.Insert(row(1, "y", 2)); err != nil {
		t.Fatal(err)
	}
}

// TestQuickIndexConsistency property-tests that secondary indexes stay in
// sync with the heap under random insert/update/delete interleavings.
func TestQuickIndexConsistency(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := catalog.New()
		def := &catalog.Table{
			Name: "t",
			Columns: []catalog.Column{
				{Name: "id", Type: sqltypes.KindInt, NotNull: true},
				{Name: "name", Type: sqltypes.KindString},
				{Name: "bal", Type: sqltypes.KindFloat},
			},
			PrimaryKey: []string{"id"},
		}
		c.AddTable(def)
		c.AddIndex(&catalog.Index{Name: "ix_bal", Table: "t", Columns: []string{"bal"}})
		c.AddIndex(&catalog.Index{Name: "ix_name", Table: "t", Columns: []string{"name", "bal"}})
		tbl := NewTable(c.Table("t"))
		live := map[int64]bool{}
		for op := 0; op < 600; op++ {
			id := int64(rng.Intn(100))
			switch rng.Intn(3) {
			case 0:
				err := tbl.Insert(row(id, fmt.Sprint(rng.Intn(10)), float64(rng.Intn(50))))
				if (err == nil) != !live[id] {
					return false
				}
				live[id] = true
			case 1:
				_, err := tbl.Update(row(id, fmt.Sprint(rng.Intn(10)), float64(rng.Intn(50))))
				if (err == nil) != live[id] {
					return false
				}
			case 2:
				_, ok := tbl.Delete(sqltypes.Row{sqltypes.NewInt(id)})
				if ok != live[id] {
					return false
				}
				delete(live, id)
			}
		}
		return tbl.CheckIndexConsistency() == "" && tbl.Len() == len(live)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
