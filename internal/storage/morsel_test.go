package storage

import (
	"fmt"
	"testing"

	"relaxedcc/internal/catalog"
	"relaxedcc/internal/sqltypes"
)

func morselTable(t *testing.T, n int) *Table {
	t.Helper()
	c := catalog.New()
	def := &catalog.Table{
		Name: "m",
		Columns: []catalog.Column{
			{Name: "id", Type: sqltypes.KindInt, NotNull: true},
			{Name: "v", Type: sqltypes.KindString},
		},
		PrimaryKey: []string{"id"},
	}
	if err := c.AddTable(def); err != nil {
		t.Fatal(err)
	}
	tbl := NewTable(c.Table("m"))
	for i := 1; i <= n; i++ {
		row := sqltypes.Row{sqltypes.NewInt(int64(i)), sqltypes.NewString(fmt.Sprint(i))}
		if err := tbl.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func collectMorsels(tbl *Table, ms []Morsel) []sqltypes.Row {
	var out []sqltypes.Row
	for _, m := range ms {
		tbl.ScanMorsel(m, func(r sqltypes.Row) bool {
			out = append(out, r)
			return true
		})
	}
	return out
}

// TestMorselsCoverFullRange partitions the whole table and checks the
// morsels are contiguous, half-open and jointly equivalent to a full scan.
func TestMorselsCoverFullRange(t *testing.T) {
	const n = 2000
	tbl := morselTable(t, n)
	var want []sqltypes.Row
	tbl.Scan(func(r sqltypes.Row) bool { want = append(want, r); return true })

	for _, parts := range []int{1, 4, 16, 64} {
		ms := tbl.Morsels(Bound{}, Bound{}, parts)
		if len(ms) == 0 {
			t.Fatalf("parts=%d: no morsels", parts)
		}
		if ms[0].Start != "" || ms[len(ms)-1].End != "" {
			t.Fatalf("parts=%d: outer bounds not open (%q, %q)", parts, ms[0].Start, ms[len(ms)-1].End)
		}
		for i := 0; i+1 < len(ms); i++ {
			if ms[i].End != ms[i+1].Start {
				t.Fatalf("parts=%d: gap between morsel %d and %d (%q vs %q)",
					parts, i, i+1, ms[i].End, ms[i+1].Start)
			}
			if ms[i].End == "" {
				t.Fatalf("parts=%d: interior morsel %d unbounded", parts, i)
			}
		}
		got := collectMorsels(tbl, ms)
		if len(got) != len(want) {
			t.Fatalf("parts=%d: morsel union = %d rows, scan = %d", parts, len(got), len(want))
		}
		// Ascending within and across contiguous morsels means the union is
		// in clustered order: compare positionally.
		for i := range got {
			if got[i][0].Int() != want[i][0].Int() {
				t.Fatalf("parts=%d: row %d = %v, want %v", parts, i, got[i], want[i])
			}
		}
	}
}

// TestMorselsRespectBounds compares the union of bounded morsels against the
// primary-index range scan.
func TestMorselsRespectBounds(t *testing.T) {
	tbl := morselTable(t, 1500)
	lo := Bound{Vals: sqltypes.Row{sqltypes.NewInt(300)}, Inclusive: true}
	hi := Bound{Vals: sqltypes.Row{sqltypes.NewInt(900)}, Inclusive: true}

	var want []sqltypes.Row
	if err := tbl.ScanIndex("pk_m", lo, hi, func(r sqltypes.Row) bool {
		want = append(want, r)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(want) != 601 {
		t.Fatalf("range scan = %d rows", len(want))
	}

	ms := tbl.Morsels(lo, hi, 8)
	got := collectMorsels(tbl, ms)
	if len(got) != len(want) {
		t.Fatalf("morsel union = %d rows, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i][0].Int() != want[i][0].Int() {
			t.Fatalf("row %d = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestMorselsSmallTable: tiny tables still yield at least one morsel and
// lose no rows however many parts are requested.
func TestMorselsSmallTable(t *testing.T) {
	for _, n := range []int{0, 1, 3} {
		tbl := morselTable(t, n)
		ms := tbl.Morsels(Bound{}, Bound{}, 8)
		if len(ms) == 0 {
			t.Fatalf("n=%d: no morsels", n)
		}
		if got := collectMorsels(tbl, ms); len(got) != n {
			t.Fatalf("n=%d: morsel union = %d rows", n, len(got))
		}
	}
}
