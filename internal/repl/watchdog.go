package repl

import (
	"strconv"
	"sync"
	"time"

	"relaxedcc/internal/obs"
)

// Watchdog supervises one distribution agent: scheduled on the coordinator
// (or any periodic driver), it measures how long the agent has gone without
// completing a propagation step, exports that lag, and restarts the agent
// when the lag crosses the stall threshold. Without it a wedged agent lets
// region staleness grow silently until every currency guard falls back to
// the remote server — the failure mode the paper's bounded-staleness
// promise cannot tolerate.
type Watchdog struct {
	agent *Agent
	// threshold is the no-progress duration that triggers a restart; zero
	// means DefaultStallFactor times the region's update interval, re-read
	// every check so reconfiguration takes effect live.
	threshold time.Duration

	mu       sync.Mutex
	baseline time.Time // first-check fallback when the agent never stepped

	// Metrics, bound by Instrument; nil means the watchdog runs unmetered.
	mRestarts *obs.Counter // repl_agent_restarts_total{region}
	mLag      *obs.Gauge   // repl_agent_lag_ns{region}
}

// DefaultStallFactor is how many update intervals of silence count as a
// stall when no explicit threshold is configured: one missed wake-up is
// scheduling noise, three is a wedged agent.
const DefaultStallFactor = 3

// NewWatchdog supervises agent. threshold zero selects the default
// (DefaultStallFactor × the region's update interval).
func NewWatchdog(agent *Agent, threshold time.Duration) *Watchdog {
	return &Watchdog{agent: agent, threshold: threshold}
}

// Instrument binds the watchdog's metrics to a registry: per-region restart
// counter and propagation-lag gauge.
func (w *Watchdog) Instrument(reg *obs.Registry) {
	label := strconv.Itoa(w.agent.Region.ID)
	w.mu.Lock()
	defer w.mu.Unlock()
	w.mRestarts = reg.CounterVec("repl_agent_restarts_total", "region").With(label)
	w.mLag = reg.GaugeVec("repl_agent_lag_ns", "region").With(label)
}

// Agent returns the supervised agent.
func (w *Watchdog) Agent() *Agent { return w.agent }

// stallThreshold resolves the restart threshold at check time from the
// agent's effective interval, so a retuned agent is judged against the
// cadence it is actually running at.
func (w *Watchdog) stallThreshold() time.Duration {
	if w.threshold > 0 {
		return w.threshold
	}
	if iv := w.agent.Interval(); iv > 0 {
		return DefaultStallFactor * iv
	}
	return DefaultStallFactor * time.Second
}

// Check is one supervision wake-up at time now: it updates the lag gauge
// and, when the agent has made no progress for the stall threshold,
// restarts it and immediately runs a catch-up propagation step. Schedule it
// on the coordinator with Coordinator.AddPeriodic(interval, w.Check).
func (w *Watchdog) Check(now time.Time) error {
	last := w.agent.LastProgress()
	w.mu.Lock()
	if last.IsZero() {
		// The agent has never stepped; measure from the first check so a
		// freshly wired system is not declared stalled at t=0.
		if w.baseline.IsZero() {
			w.baseline = now
		}
		last = w.baseline
	}
	mLag, mRestarts := w.mLag, w.mRestarts
	w.mu.Unlock()

	lag := now.Sub(last)
	if mLag != nil {
		mLag.SetDuration(lag)
	}
	if lag < w.stallThreshold() {
		return nil
	}
	w.agent.Restart(now)
	if mRestarts != nil {
		mRestarts.Inc()
	}
	// Catch up immediately: a restarted agent's first act is a propagation
	// step, which also resets the lag signal.
	if err := w.agent.Step(now); err != nil {
		return err
	}
	if mLag != nil {
		mLag.SetDuration(now.Sub(w.agent.LastProgress()))
	}
	return nil
}
