package repl

import (
	"testing"
	"time"

	"relaxedcc/internal/obs"
	"relaxedcc/internal/vclock"
)

// TestSetIntervalClearsOverride: the override falls back to the catalog
// value when cleared, and the catalog region itself is never mutated.
func TestSetIntervalClearsOverride(t *testing.T) {
	f := newFixture(t, nil)
	if got := f.agent.Interval(); got != 10*time.Second {
		t.Fatalf("configured interval = %s", got)
	}
	f.agent.SetInterval(2 * time.Second)
	if got := f.agent.Interval(); got != 2*time.Second {
		t.Fatalf("override = %s", got)
	}
	if f.agent.Region.UpdateInterval != 10*time.Second {
		t.Fatal("SetInterval mutated the catalog region")
	}
	f.agent.SetInterval(0)
	if got := f.agent.Interval(); got != 10*time.Second {
		t.Fatalf("cleared override = %s, want catalog 10s", got)
	}
	f.agent.SetHeartbeatInterval(250 * time.Millisecond)
	if got := f.agent.HeartbeatInterval(); got != 250*time.Millisecond {
		t.Fatalf("hb override = %s", got)
	}
	f.agent.SetHeartbeatInterval(-1)
	if got := f.agent.HeartbeatInterval(); got != f.agent.Region.HeartbeatInterval {
		t.Fatalf("cleared hb override = %s", got)
	}
}

// TestSetIntervalTakesEffectNextTick: a retune reshapes the coordinator's
// very next wake-up — shrinking pulls the pending wake-up forward (clamped
// to now, never into the past), growing pushes it out.
func TestSetIntervalTakesEffectNextTick(t *testing.T) {
	f := newFixture(t, nil)
	clock := vclock.NewVirtual()
	coord := NewCoordinator(clock)
	coord.AddAgent(f.agent)

	// Configured cadence: first step at t=10s.
	if err := coord.Advance(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := f.agent.LastProgress(); !got.Equal(t0.Add(10 * time.Second)) {
		t.Fatalf("first step at %v", got)
	}

	// Shrink to 2s: next step lands at 12s, not 20s.
	f.agent.SetInterval(2 * time.Second)
	if err := coord.Advance(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := f.agent.LastProgress(); !got.Equal(t0.Add(12 * time.Second)) {
		t.Fatalf("post-shrink step at %v, want 12s", got)
	}

	// Grow to 30s: nothing fires until 42s.
	f.agent.SetInterval(30 * time.Second)
	if err := coord.Advance(20 * time.Second); err != nil { // t=32s
		t.Fatal(err)
	}
	if got := f.agent.LastProgress(); !got.Equal(t0.Add(12 * time.Second)) {
		t.Fatalf("grown interval fired early at %v", got)
	}
	if err := coord.Advance(10 * time.Second); err != nil { // t=42s
		t.Fatal(err)
	}
	if got := f.agent.LastProgress(); !got.Equal(t0.Add(42 * time.Second)) {
		t.Fatalf("post-grow step at %v, want 42s", got)
	}

	// Shrink mid-wait below the time already elapsed: the overdue wake-up
	// runs at the current instant (no time travel), then resumes cadence.
	f.agent.SetInterval(200 * time.Second)
	if err := coord.Advance(5 * time.Second); err != nil { // t=47s, no step
		t.Fatal(err)
	}
	f.agent.SetInterval(time.Second) // due 43s — already past
	if err := coord.Advance(time.Second); err != nil { // t=48s
		t.Fatal(err)
	}
	if got := f.agent.LastProgress(); !got.Equal(t0.Add(48 * time.Second)) {
		t.Fatalf("overdue retune stepped last at %v, want 48s", got)
	}
}

// TestWatchdogThresholdFollowsRetune: the stall threshold is derived from
// the agent's effective interval at check time, so growing the interval
// does not cause spurious restarts and shrinking it tightens supervision.
func TestWatchdogThresholdFollowsRetune(t *testing.T) {
	f := newFixture(t, nil)
	wd := NewWatchdog(f.agent, 0)
	reg := obs.NewRegistry()
	wd.Instrument(reg)

	if err := f.agent.Step(t0.Add(10 * time.Second)); err != nil {
		t.Fatal(err)
	}

	// Configured 10s interval -> 30s threshold; 25s of lag is fine.
	if err := wd.Check(t0.Add(35 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if f.agent.Restarts() != 0 {
		t.Fatal("restarted under the default threshold")
	}

	// Grown to 60s the same 90s of lag is within the 180s threshold — a lag
	// that would have tripped the old 30s threshold three times over.
	f.agent.SetInterval(60 * time.Second)
	if err := wd.Check(t0.Add(100 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if f.agent.Restarts() != 0 {
		t.Fatal("spurious restart after growing the interval")
	}
	if got := reg.Snapshot().Gauges[`repl_agent_lag_ns{region="1"}`]; got != int64(90*time.Second) {
		t.Fatalf("lag gauge = %s, want 90s", time.Duration(got))
	}

	// Shrunk to 2s the threshold is 6s: the same silence is now a stall. The
	// restart runs a catch-up step that re-bases progress.
	f.agent.SetInterval(2 * time.Second)
	if err := wd.Check(t0.Add(104 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if f.agent.Restarts() != 1 {
		t.Fatalf("restarts = %d, want 1 under the shrunk threshold", f.agent.Restarts())
	}
	if got := f.agent.LastProgress(); !got.Equal(t0.Add(104 * time.Second)) {
		t.Fatalf("catch-up step progress = %v", got)
	}
	if got := reg.Snapshot().Counters[`repl_agent_restarts_total{region="1"}`]; got != 1 {
		t.Fatalf("restart counter = %d", got)
	}

	// Freshly restarted, the next check is quiet again.
	if err := wd.Check(t0.Add(105 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if f.agent.Restarts() != 1 {
		t.Fatal("re-restarted immediately after recovery")
	}
}

// TestRunRetuneNoWaiterLeak drives a live Run loop through repeated retunes:
// each cycle re-reads the effective interval when re-arming, exactly one
// clock waiter is ever pending, and shutdown leaves nothing behind.
func TestRunRetuneNoWaiterLeak(t *testing.T) {
	f := newFixture(t, nil)
	f.agent.Region.UpdateDelay = 0
	clock := vclock.NewVirtual()
	stop := make(chan struct{})
	errs := make(chan error, 1)
	done := make(chan struct{})
	go func() {
		f.agent.Run(clock, stop, errs)
		close(done)
	}()

	// Each round: wait for the armed sleep (taken at the previous interval),
	// retune, fire the old sleep, and confirm the step landed where the
	// *old* interval put it — the retune only shapes the next arm.
	intervals := []time.Duration{2 * time.Second, 30 * time.Second, 500 * time.Millisecond, 0}
	armed := f.agent.Interval() // 10s configured
	now := t0
	for _, next := range intervals {
		if !clock.AwaitWaiters(1, 5*time.Second) {
			t.Fatal("agent never armed its wake-up")
		}
		if got := clock.PendingWaiters(); got != 1 {
			t.Fatalf("%d waiters pending, want exactly 1", got)
		}
		f.agent.SetInterval(next)
		clock.Advance(armed)
		now = now.Add(armed)
		// The agent re-arms only after its Step completed, so awaiting the
		// next waiter makes reading LastProgress race-free.
		if !clock.AwaitWaiters(1, 5*time.Second) {
			t.Fatal("agent never completed its step")
		}
		if got := f.agent.LastProgress(); !got.Equal(now) {
			t.Fatalf("step at %v, want %v", got, now)
		}
		armed = f.agent.Interval()
	}
	// The final SetInterval(0) cleared the override: the live loop armed the
	// configured cadence again.
	if armed != f.agent.Region.UpdateInterval {
		t.Fatalf("cleared override armed %s", armed)
	}

	close(stop)
	<-done
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	// The exited loop left one armed timer; firing it drains the clock —
	// repeated retunes accumulated no extra waiters.
	clock.Advance(armed)
	if got := clock.PendingWaiters(); got != 0 {
		t.Fatalf("%d waiters leaked after shutdown", got)
	}
}
