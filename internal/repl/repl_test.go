package repl

import (
	"testing"
	"time"

	"relaxedcc/internal/catalog"
	"relaxedcc/internal/sqltypes"
	"relaxedcc/internal/storage"
	"relaxedcc/internal/txn"
	"relaxedcc/internal/vclock"
)

var t0 = vclock.Epoch

// fixture: base table T(id, grp, val); view projects (id, val) with
// selection grp >= 10.
type fixture struct {
	base    *catalog.Table
	baseTbl *storage.Table
	view    *catalog.View
	viewTbl *storage.Table
	log     *txn.Log
	agent   *Agent
	sub     *Subscription
	syncs   map[int]time.Time
}

func (f *fixture) SetLastSync(regionID int, ts time.Time) { f.syncs[regionID] = ts }

func newFixture(t *testing.T, preds []catalog.SimplePred) *fixture {
	t.Helper()
	f := &fixture{log: txn.NewLog(), syncs: map[int]time.Time{}}
	cat := catalog.New()
	f.base = &catalog.Table{
		Name: "T",
		Columns: []catalog.Column{
			{Name: "id", Type: sqltypes.KindInt, NotNull: true},
			{Name: "grp", Type: sqltypes.KindInt},
			{Name: "val", Type: sqltypes.KindString},
		},
		PrimaryKey: []string{"id"},
	}
	if err := cat.AddTable(f.base); err != nil {
		t.Fatal(err)
	}
	f.baseTbl = storage.NewTable(f.base)
	f.view = &catalog.View{Name: "v", BaseTable: "T", Columns: []string{"id", "val"}, Preds: preds, RegionID: 1}
	viewDef := &catalog.Table{
		Name: "v",
		Columns: []catalog.Column{
			{Name: "id", Type: sqltypes.KindInt, NotNull: true},
			{Name: "val", Type: sqltypes.KindString},
		},
		PrimaryKey: []string{"id"},
	}
	if err := catalog.New().AddTable(viewDef); err != nil {
		t.Fatal(err)
	}
	f.viewTbl = storage.NewTable(viewDef)
	region := &catalog.Region{ID: 1, UpdateInterval: 10 * time.Second, UpdateDelay: 2 * time.Second}
	f.agent = NewAgent(region, f.log, "HB", f)
	sub, err := NewSubscription(f.view, f.base, f.viewTbl)
	if err != nil {
		t.Fatal(err)
	}
	f.sub = sub
	f.agent.Subscribe(sub)
	if err := f.agent.InitialSync(sub, f.baseTbl); err != nil {
		t.Fatal(err)
	}
	return f
}

func baseRow(id, grp int64, val string) sqltypes.Row {
	return sqltypes.Row{sqltypes.NewInt(id), sqltypes.NewInt(grp), sqltypes.NewString(val)}
}

// commit applies changes to the base table and appends them to the log.
func (f *fixture) commit(t *testing.T, at time.Time, changes ...txn.Change) {
	t.Helper()
	for _, ch := range changes {
		switch ch.Op {
		case txn.OpInsert:
			if err := f.baseTbl.Insert(ch.New); err != nil {
				t.Fatal(err)
			}
		case txn.OpDelete:
			f.baseTbl.Delete(sqltypes.Row{ch.Old[0]})
		case txn.OpUpdate:
			if _, err := f.baseTbl.Update(ch.New); err != nil {
				t.Fatal(err)
			}
		}
	}
	f.log.Append(at, changes)
}

func TestInitialSyncPopulatesView(t *testing.T) {
	f := newFixture(t, nil)
	if f.viewTbl.Len() != 0 {
		t.Fatal("empty base should give empty view")
	}
	// Load data then re-sync.
	f.baseTbl.Insert(baseRow(1, 5, "a"))
	f.baseTbl.Insert(baseRow(2, 15, "b"))
	if err := f.agent.InitialSync(f.sub, f.baseTbl); err != nil {
		t.Fatal(err)
	}
	if f.viewTbl.Len() != 2 {
		t.Fatalf("view rows = %d", f.viewTbl.Len())
	}
	row, ok := f.viewTbl.Get(sqltypes.Row{sqltypes.NewInt(2)})
	if !ok || row[1].Str() != "b" {
		t.Fatalf("projected row = %v", row)
	}
}

func TestInitialSyncAppliesSelection(t *testing.T) {
	f := newFixture(t, []catalog.SimplePred{{Column: "grp", Op: catalog.OpGE, Value: sqltypes.NewInt(10)}})
	f.baseTbl.Insert(baseRow(1, 5, "out"))
	f.baseTbl.Insert(baseRow(2, 15, "in"))
	if err := f.agent.InitialSync(f.sub, f.baseTbl); err != nil {
		t.Fatal(err)
	}
	if f.viewTbl.Len() != 1 {
		t.Fatalf("selected rows = %d", f.viewTbl.Len())
	}
}

func TestStepAppliesCommittedChangesInOrder(t *testing.T) {
	f := newFixture(t, nil)
	f.commit(t, t0.Add(1*time.Second), txn.Change{Table: "T", Op: txn.OpInsert, New: baseRow(1, 1, "a")})
	f.commit(t, t0.Add(2*time.Second), txn.Change{Table: "T", Op: txn.OpUpdate,
		Old: baseRow(1, 1, "a"), New: baseRow(1, 1, "a2")})
	// Step at t=5 with delay 2: both commits (<=3s) apply.
	if err := f.agent.Step(t0.Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	row, ok := f.viewTbl.Get(sqltypes.Row{sqltypes.NewInt(1)})
	if !ok || row[1].Str() != "a2" {
		t.Fatalf("view row = %v, %v", row, ok)
	}
	if f.agent.LastSeq() != 2 || f.agent.TransactionsApplied() != 2 {
		t.Fatalf("seq=%d applied=%d", f.agent.LastSeq(), f.agent.TransactionsApplied())
	}
}

func TestStepHonorsPropagationDelay(t *testing.T) {
	f := newFixture(t, nil)
	f.commit(t, t0.Add(4*time.Second), txn.Change{Table: "T", Op: txn.OpInsert, New: baseRow(1, 1, "a")})
	// At t=5 with delay 2, cutoff is t=3: nothing applies.
	if err := f.agent.Step(t0.Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if f.viewTbl.Len() != 0 {
		t.Fatal("commit inside the delay window must not propagate yet")
	}
	if err := f.agent.Step(t0.Add(7 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if f.viewTbl.Len() != 1 {
		t.Fatal("commit must propagate once past the delay")
	}
}

func TestSelectionTransitions(t *testing.T) {
	f := newFixture(t, []catalog.SimplePred{{Column: "grp", Op: catalog.OpGE, Value: sqltypes.NewInt(10)}})
	// Insert outside selection: filtered.
	f.commit(t, t0.Add(time.Second), txn.Change{Table: "T", Op: txn.OpInsert, New: baseRow(1, 5, "a")})
	// Update moves it inside: view insert.
	f.commit(t, t0.Add(2*time.Second), txn.Change{Table: "T", Op: txn.OpUpdate,
		Old: baseRow(1, 5, "a"), New: baseRow(1, 20, "a")})
	if err := f.agent.Step(t0.Add(10 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if f.viewTbl.Len() != 1 {
		t.Fatalf("rows after move-in = %d", f.viewTbl.Len())
	}
	// Update moves it outside: view delete.
	f.commit(t, t0.Add(11*time.Second), txn.Change{Table: "T", Op: txn.OpUpdate,
		Old: baseRow(1, 20, "a"), New: baseRow(1, 3, "a")})
	if err := f.agent.Step(t0.Add(20 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if f.viewTbl.Len() != 0 {
		t.Fatal("row should have left the view")
	}
	// Delete of an out-of-view row is a no-op.
	f.commit(t, t0.Add(21*time.Second), txn.Change{Table: "T", Op: txn.OpDelete, Old: baseRow(1, 3, "a")})
	if err := f.agent.Step(t0.Add(30 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if f.viewTbl.Len() != 0 {
		t.Fatal("view should stay empty")
	}
}

func TestHeartbeatRouting(t *testing.T) {
	f := newFixture(t, nil)
	hb := func(cid int64, at time.Time) txn.Change {
		return txn.Change{Table: "HB", Op: txn.OpUpdate,
			New: sqltypes.Row{sqltypes.NewInt(cid), sqltypes.NewTime(at)}}
	}
	f.log.Append(t0.Add(1*time.Second), []txn.Change{hb(1, t0.Add(1*time.Second))})
	f.log.Append(t0.Add(2*time.Second), []txn.Change{hb(2, t0.Add(2*time.Second))}) // other region
	f.log.Append(t0.Add(3*time.Second), []txn.Change{hb(1, t0.Add(3*time.Second))})
	if err := f.agent.Step(t0.Add(10 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if got := f.syncs[1]; !got.Equal(t0.Add(3 * time.Second)) {
		t.Fatalf("region 1 sync = %v", got)
	}
	if _, ok := f.syncs[2]; ok {
		t.Fatal("agent must ignore other regions' heartbeats")
	}
}

func TestStartSeqSkipsSnapshottedTransactions(t *testing.T) {
	f := newFixture(t, nil)
	// Commit before the (second) initial sync; snapshot includes it.
	f.commit(t, t0.Add(time.Second), txn.Change{Table: "T", Op: txn.OpInsert, New: baseRow(1, 1, "a")})
	if err := f.agent.InitialSync(f.sub, f.baseTbl); err != nil {
		t.Fatal(err)
	}
	if f.viewTbl.Len() != 1 {
		t.Fatal("snapshot should include the row")
	}
	// Stepping must not re-apply the insert (would be a duplicate PK).
	if err := f.agent.Step(t0.Add(time.Minute)); err != nil {
		t.Fatalf("replay over snapshot: %v", err)
	}
	if f.viewTbl.Len() != 1 {
		t.Fatalf("rows = %d", f.viewTbl.Len())
	}
}

func TestCoordinatorOrdering(t *testing.T) {
	clock := vclock.NewVirtual()
	coord := NewCoordinator(clock)
	var events []string
	coord.AddHeartbeat(1, 2*time.Second, func(int) error {
		events = append(events, "beat@"+clock.Now().Sub(t0).String())
		return nil
	})
	coord.AddPeriodic(3*time.Second, func(now time.Time) error {
		events = append(events, "tick@"+now.Sub(t0).String())
		return nil
	})
	if err := coord.Advance(6 * time.Second); err != nil {
		t.Fatal(err)
	}
	want := []string{"beat@2s", "tick@3s", "beat@4s", "beat@6s", "tick@6s"}
	if len(events) != len(want) {
		t.Fatalf("events = %v", events)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("events = %v, want %v", events, want)
		}
	}
	if !clock.Now().Equal(t0.Add(6 * time.Second)) {
		t.Fatalf("clock = %v", clock.Now())
	}
}

func TestCoordinatorAgentAfterHeartbeatAtSameInstant(t *testing.T) {
	clock := vclock.NewVirtual()
	coord := NewCoordinator(clock)
	var order []string
	region := &catalog.Region{ID: 1, UpdateInterval: 2 * time.Second, UpdateDelay: 0}
	agent := NewAgent(region, txn.NewLog(), "HB", nil)
	coord.AddHeartbeat(1, 2*time.Second, func(int) error {
		order = append(order, "beat")
		return nil
	})
	coord.AddAgent(agent)
	// Wrap the agent in a periodic to observe ordering at the shared instant.
	coord.AddPeriodic(2*time.Second, func(time.Time) error {
		order = append(order, "other")
		return nil
	})
	if err := coord.Advance(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if order[0] != "beat" {
		t.Fatalf("heartbeat must fire before same-instant events: %v", order)
	}
}

func TestCoordinatorPropagatesErrors(t *testing.T) {
	clock := vclock.NewVirtual()
	coord := NewCoordinator(clock)
	coord.AddPeriodic(time.Second, func(time.Time) error {
		return errTest
	})
	if err := coord.Advance(2 * time.Second); err == nil {
		t.Fatal("expected error")
	}
}

var errTest = &testError{}

type testError struct{}

func (*testError) Error() string { return "boom" }
