package repl

import (
	"testing"
	"time"

	"relaxedcc/internal/sqltypes"
	"relaxedcc/internal/txn"
	"relaxedcc/internal/vclock"
)

// TestAgentRunLiveClock drives Agent.Run with a virtual clock advanced from
// the test goroutine — the deployment mode where agents are long-running
// goroutines rather than coordinator events.
func TestAgentRunLiveClock(t *testing.T) {
	f := newFixture(t, nil)
	f.agent.Region.UpdateDelay = 0
	clock := vclock.NewVirtual()
	stop := make(chan struct{})
	errs := make(chan error, 1)
	go f.agent.Run(clock, stop, errs)
	defer close(stop)

	f.commit(t, t0.Add(time.Second), txn.Change{Table: "T", Op: txn.OpInsert, New: baseRow(1, 1, "a")})
	// Each round: wait (race-free) for the agent to arm its timer, fire it,
	// then wait for the re-arm — which the agent only does after its Step
	// completed, so checking the view between rounds never races.
	for rounds := 0; f.viewTbl.Len() == 0; rounds++ {
		if rounds > 10 {
			t.Fatal("agent never applied the commit")
		}
		if !clock.AwaitWaiters(1, 5*time.Second) {
			t.Fatal("agent never armed its wake-up")
		}
		clock.Advance(f.agent.Region.UpdateInterval)
		if !clock.AwaitWaiters(1, 5*time.Second) {
			t.Fatal("agent never completed its step")
		}
	}
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	row, ok := f.viewTbl.Get(sqltypes.Row{sqltypes.NewInt(1)})
	if !ok || row[1].Str() != "a" {
		t.Fatalf("replicated row = %v, %v", row, ok)
	}
}

// TestAgentRunReportsErrors: a poisoned subscription (duplicate rows) makes
// Step fail; Run must surface the error and exit.
func TestAgentRunReportsErrors(t *testing.T) {
	f := newFixture(t, nil)
	f.agent.Region.UpdateDelay = 0
	// Poison: pre-insert the row the log will replay.
	if err := f.viewTbl.Insert(sqltypes.Row{sqltypes.NewInt(1), sqltypes.NewString("poison")}); err != nil {
		t.Fatal(err)
	}
	f.log.Append(t0.Add(time.Second), []txn.Change{{Table: "T", Op: txn.OpInsert, New: baseRow(1, 1, "a")}})
	clock := vclock.NewVirtual()
	stop := make(chan struct{})
	errs := make(chan error, 1)
	done := make(chan struct{})
	go func() {
		f.agent.Run(clock, stop, errs)
		close(done)
	}()
	defer close(stop)
	if !clock.AwaitWaiters(1, 5*time.Second) {
		t.Fatal("agent never armed its timer")
	}
	clock.Advance(f.agent.Region.UpdateInterval)
	select {
	case err := <-errs:
		if err == nil {
			t.Fatal("nil error")
		}
	//rcclint:ignore wallclock wall-bound failsafe so a hung agent fails the test instead of the suite
	case <-time.After(5 * time.Second):
		t.Fatal("error never surfaced")
	}
	<-done
}
