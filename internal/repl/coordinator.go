package repl

import (
	"sort"
	"time"

	"relaxedcc/internal/vclock"
)

// Beater triggers a region's heartbeat on the back end (backend.Server.Beat
// satisfies it via a closure).
type Beater func(regionID int) error

// Coordinator drives the periodic activities of the replication fabric —
// back-end heartbeats and agent propagation wake-ups — deterministically
// against a virtual clock. AdvanceTo executes every due event in timestamp
// order, advancing the clock to each event time, so tests and benchmarks
// replay the exact cycle of the paper's Figure 3.2 with no goroutine races.
type Coordinator struct {
	clock  *vclock.Virtual
	events []*event
	// advancing guards against reentrant AdvanceTo: an event handler (or a
	// link backoff wired to Advance) that tries to drive the coordinator
	// while it is already draining events would corrupt the drain loop, so
	// nested calls fall through to a plain clock advance instead.
	advancing bool
}

type event struct {
	at       time.Time
	interval time.Duration
	// intervalFn, when set, is consulted at every reschedule so interval
	// changes (e.g. replication reconfiguration) take effect live.
	intervalFn func() time.Duration
	run        func(now time.Time) error
	name       string
	seq        int
}

// NewCoordinator creates a coordinator over the virtual clock.
func NewCoordinator(clock *vclock.Virtual) *Coordinator {
	return &Coordinator{clock: clock}
}

var eventSeq int

// AddHeartbeat schedules a region's heart to beat every interval.
func (c *Coordinator) AddHeartbeat(regionID int, interval time.Duration, beat Beater) {
	eventSeq++
	c.events = append(c.events, &event{
		at:       c.clock.Now().Add(interval),
		interval: interval,
		run:      func(time.Time) error { return beat(regionID) },
		name:     "heartbeat",
		seq:      eventSeq,
	})
}

// AddAgent schedules a distribution agent's wake-ups at its region's update
// interval. The interval is re-read from the region at every wake-up, so
// reconfiguring the region (the paper's 30s -> 5min scenario) takes effect
// at the next propagation.
func (c *Coordinator) AddAgent(a *Agent) {
	eventSeq++
	c.events = append(c.events, &event{
		at:         c.clock.Now().Add(a.Region.UpdateInterval),
		interval:   a.Region.UpdateInterval,
		intervalFn: func() time.Duration { return a.Region.UpdateInterval },
		run:        a.Step,
		name:       "agent",
		seq:        eventSeq,
	})
}

// AddPeriodic schedules an arbitrary periodic task (e.g. an update workload
// generator).
func (c *Coordinator) AddPeriodic(interval time.Duration, run func(now time.Time) error) {
	eventSeq++
	c.events = append(c.events, &event{
		at:       c.clock.Now().Add(interval),
		interval: interval,
		run:      run,
		name:     "periodic",
		seq:      eventSeq,
	})
}

// AdvanceTo runs all events due at or before target in time order (FIFO
// among ties), advancing the virtual clock through each event time and
// finally to target.
func (c *Coordinator) AdvanceTo(target time.Time) error {
	if c.advancing {
		// Reentrant call from inside an event handler or a wait hook: just
		// move the clock; the outer drain loop keeps running due events.
		if target.After(c.clock.Now()) {
			c.clock.AdvanceTo(target)
		}
		return nil
	}
	c.advancing = true
	defer func() { c.advancing = false }()
	for {
		ev := c.nextDue(target)
		if ev == nil {
			break
		}
		// An event handler may itself have advanced the clock (a resilient
		// link paying backoff in virtual time does); never move it backwards.
		if ev.at.After(c.clock.Now()) {
			c.clock.AdvanceTo(ev.at)
		}
		if err := ev.run(ev.at); err != nil {
			return err
		}
		if ev.intervalFn != nil {
			ev.interval = ev.intervalFn()
		}
		ev.at = ev.at.Add(ev.interval)
	}
	if target.After(c.clock.Now()) {
		c.clock.AdvanceTo(target)
	}
	return nil
}

// Advance runs events for the next d of virtual time.
func (c *Coordinator) Advance(d time.Duration) error {
	return c.AdvanceTo(c.clock.Now().Add(d))
}

func (c *Coordinator) nextDue(target time.Time) *event {
	var due []*event
	for _, ev := range c.events {
		if !ev.at.After(target) {
			due = append(due, ev)
		}
	}
	if len(due) == 0 {
		return nil
	}
	sort.Slice(due, func(i, j int) bool {
		if !due[i].at.Equal(due[j].at) {
			return due[i].at.Before(due[j].at)
		}
		// Heartbeats fire before agents at the same instant, so a
		// propagation at time t ships the beat from time t (minus delay).
		if due[i].name != due[j].name {
			return due[i].name == "heartbeat"
		}
		return due[i].seq < due[j].seq
	})
	return due[0]
}

// Clock returns the coordinator's virtual clock.
func (c *Coordinator) Clock() *vclock.Virtual { return c.clock }
