package repl

import (
	"sort"
	"time"

	"relaxedcc/internal/vclock"
)

// Beater triggers a region's heartbeat on the back end (backend.Server.Beat
// satisfies it via a closure).
type Beater func(regionID int) error

// Coordinator drives the periodic activities of the replication fabric —
// back-end heartbeats and agent propagation wake-ups — deterministically
// against a virtual clock. AdvanceTo executes every due event in timestamp
// order, advancing the clock to each event time, so tests and benchmarks
// replay the exact cycle of the paper's Figure 3.2 with no goroutine races.
type Coordinator struct {
	clock  *vclock.Virtual
	events []*event
	// advancing guards against reentrant AdvanceTo: an event handler (or a
	// link backoff wired to Advance) that tries to drive the coordinator
	// while it is already draining events would corrupt the drain loop, so
	// nested calls fall through to a plain clock advance instead.
	advancing bool
}

// event is one periodic activity. Its due time is computed lazily as
// last + interval so that live interval changes (SetInterval retunes, region
// reconfiguration) take effect at the very next drain: shrinking an interval
// pulls the pending wake-up forward, growing it pushes it out.
type event struct {
	last     time.Time
	interval time.Duration
	// intervalFn, when set, is consulted at every due-time computation so
	// interval changes take effect live.
	intervalFn func() time.Duration
	run        func(now time.Time) error
	name       string
	seq        int
}

// due resolves the event's next fire time from its last run and its current
// interval.
func (ev *event) due() time.Time {
	iv := ev.interval
	if ev.intervalFn != nil {
		if v := ev.intervalFn(); v > 0 {
			iv = v
		}
	}
	return ev.last.Add(iv)
}

// NewCoordinator creates a coordinator over the virtual clock.
func NewCoordinator(clock *vclock.Virtual) *Coordinator {
	return &Coordinator{clock: clock}
}

var eventSeq int

// AddHeartbeat schedules a region's heart to beat every interval.
func (c *Coordinator) AddHeartbeat(regionID int, interval time.Duration, beat Beater) {
	c.AddHeartbeatFn(regionID, func() time.Duration { return interval }, beat)
}

// AddHeartbeatFn schedules a region's heartbeat with the cadence re-read
// from intervalFn at every due-time computation, so heartbeat retunes (the
// autotuner adjusts cadence alongside the propagation interval) take effect
// immediately.
func (c *Coordinator) AddHeartbeatFn(regionID int, intervalFn func() time.Duration, beat Beater) {
	eventSeq++
	c.events = append(c.events, &event{
		last:       c.clock.Now(),
		interval:   intervalFn(),
		intervalFn: intervalFn,
		run:        func(time.Time) error { return beat(regionID) },
		name:       "heartbeat",
		seq:        eventSeq,
	})
}

// AddAgent schedules a distribution agent's wake-ups at its effective update
// interval. The interval is re-read at every due-time computation, so
// reconfiguring the region (the paper's 30s -> 5min scenario) or a live
// SetInterval retune takes effect at the next drain.
func (c *Coordinator) AddAgent(a *Agent) {
	eventSeq++
	c.events = append(c.events, &event{
		last:       c.clock.Now(),
		interval:   a.Interval(),
		intervalFn: a.Interval,
		run:        a.Step,
		name:       "agent",
		seq:        eventSeq,
	})
}

// AddPeriodic schedules an arbitrary periodic task (e.g. an update workload
// generator).
func (c *Coordinator) AddPeriodic(interval time.Duration, run func(now time.Time) error) {
	eventSeq++
	c.events = append(c.events, &event{
		last:     c.clock.Now(),
		interval: interval,
		run:      run,
		name:     "periodic",
		seq:      eventSeq,
	})
}

// AddPeriodicFn schedules a periodic task whose cadence is re-read from
// intervalFn at every due-time computation (e.g. a watchdog following its
// agent's retuned propagation interval).
func (c *Coordinator) AddPeriodicFn(intervalFn func() time.Duration, run func(now time.Time) error) {
	eventSeq++
	c.events = append(c.events, &event{
		last:       c.clock.Now(),
		interval:   intervalFn(),
		intervalFn: intervalFn,
		run:        run,
		name:       "periodic",
		seq:        eventSeq,
	})
}

// AdvanceTo runs all events due at or before target in time order (FIFO
// among ties), advancing the virtual clock through each event time and
// finally to target.
func (c *Coordinator) AdvanceTo(target time.Time) error {
	if c.advancing {
		// Reentrant call from inside an event handler or a wait hook: just
		// move the clock; the outer drain loop keeps running due events.
		if target.After(c.clock.Now()) {
			c.clock.AdvanceTo(target)
		}
		return nil
	}
	c.advancing = true
	defer func() { c.advancing = false }()
	for {
		ev, at := c.nextDue(target)
		if ev == nil {
			break
		}
		// An event handler may itself have advanced the clock (a resilient
		// link paying backoff in virtual time does); never move it backwards.
		if at.After(c.clock.Now()) {
			c.clock.AdvanceTo(at)
		}
		// A due time in the past (the interval shrank mid-cycle) still runs
		// "now" but re-bases from its scheduled slot, preserving cadence.
		if err := ev.run(at); err != nil {
			return err
		}
		ev.last = at
	}
	if target.After(c.clock.Now()) {
		c.clock.AdvanceTo(target)
	}
	return nil
}

// Advance runs events for the next d of virtual time.
func (c *Coordinator) Advance(d time.Duration) error {
	return c.AdvanceTo(c.clock.Now().Add(d))
}

// nextDue returns the earliest event due at or before target, with its due
// time. Due times never run before the clock's current position: an event
// whose interval shrank below the time already elapsed fires at the current
// instant rather than in the past.
func (c *Coordinator) nextDue(target time.Time) (*event, time.Time) {
	now := c.clock.Now()
	type duePair struct {
		ev *event
		at time.Time
	}
	var due []duePair
	for _, ev := range c.events {
		at := ev.due()
		if at.Before(now) {
			at = now
		}
		if !at.After(target) {
			due = append(due, duePair{ev, at})
		}
	}
	if len(due) == 0 {
		return nil, time.Time{}
	}
	sort.Slice(due, func(i, j int) bool {
		if !due[i].at.Equal(due[j].at) {
			return due[i].at.Before(due[j].at)
		}
		// Heartbeats fire before agents at the same instant, so a
		// propagation at time t ships the beat from time t (minus delay).
		if due[i].ev.name != due[j].ev.name {
			return due[i].ev.name == "heartbeat"
		}
		return due[i].ev.seq < due[j].ev.seq
	})
	return due[0].ev, due[0].at
}

// Clock returns the coordinator's virtual clock.
func (c *Coordinator) Clock() *vclock.Virtual { return c.clock }
