// Package repl implements transactional replication from the back end to
// the cache: the stand-in for SQL Server's replication in the paper's
// prototype (Section 3.1).
//
// A distribution Agent serves one currency region. It wakes at the region's
// update interval and applies committed transactions from the back-end log
// to its subscribed materialized views — one transaction at a time, in
// commit order — which is what guarantees that all views in the region are
// mutually consistent and always reflect a committed state. The propagation
// delay d is modeled by the agent only applying transactions that committed
// at least d before its wake-up time: immediately after propagation the
// region's data is exactly d stale, growing to d+f until the next wake-up
// (the paper's Figure 3.2 cycle).
//
// The region's row of the back-end heartbeat table replicates through the
// same log, so the timestamp in the cache's local heartbeat table bounds the
// region's staleness.
package repl

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"relaxedcc/internal/catalog"
	"relaxedcc/internal/obs"
	"relaxedcc/internal/sqltypes"
	"relaxedcc/internal/storage"
	"relaxedcc/internal/txn"
	"relaxedcc/internal/vclock"
)

// Subscription maps one back-end base table into one cached materialized
// view (a selection/projection, per the prototype's view class).
type Subscription struct {
	View   *catalog.View
	Base   *catalog.Table
	Target *storage.Table

	projOrds []int // base-column ordinal for each view column
	pkOrds   []int // base-column ordinals of the primary key
	preds    []catalog.SimplePred
	// startSeq is the commit sequence the initial snapshot reflects; the
	// agent only replays transactions after it into this subscription.
	startSeq int64
}

// NewSubscription prepares a subscription; Target must use the view's
// column layout.
func NewSubscription(view *catalog.View, base *catalog.Table, target *storage.Table) (*Subscription, error) {
	sub := &Subscription{View: view, Base: base, Target: target, preds: view.Preds}
	for _, col := range view.Columns {
		o := base.ColumnIndex(col)
		if o < 0 {
			return nil, fmt.Errorf("repl: view %s column %s not on base %s", view.Name, col, base.Name)
		}
		sub.projOrds = append(sub.projOrds, o)
	}
	for _, pk := range base.PrimaryKey {
		o := base.ColumnIndex(pk)
		if o < 0 {
			return nil, fmt.Errorf("repl: base %s primary key %s missing", base.Name, pk)
		}
		sub.pkOrds = append(sub.pkOrds, o)
	}
	return sub, nil
}

// covers reports whether a base row falls inside the view's selection.
func (s *Subscription) covers(baseRow sqltypes.Row) bool {
	for _, p := range s.preds {
		o := s.Base.ColumnIndex(p.Column)
		v := baseRow[o]
		if v.IsNull() {
			return false
		}
		c := v.Compare(p.Value)
		ok := false
		switch p.Op {
		case catalog.OpEQ:
			ok = c == 0
		case catalog.OpLT:
			ok = c < 0
		case catalog.OpLE:
			ok = c <= 0
		case catalog.OpGT:
			ok = c > 0
		case catalog.OpGE:
			ok = c >= 0
		}
		if !ok {
			return false
		}
	}
	return true
}

// project maps a base row to the view's layout.
func (s *Subscription) project(baseRow sqltypes.Row) sqltypes.Row {
	out := make(sqltypes.Row, len(s.projOrds))
	for i, o := range s.projOrds {
		out[i] = baseRow[o]
	}
	return out
}

func (s *Subscription) pkOf(baseRow sqltypes.Row) sqltypes.Row {
	out := make(sqltypes.Row, len(s.pkOrds))
	for i, o := range s.pkOrds {
		out[i] = baseRow[o]
	}
	return out
}

// viewPK extracts the primary-key values from a *view-layout* row.
func (s *Subscription) viewPK(viewRow sqltypes.Row) sqltypes.Row {
	out := make(sqltypes.Row, 0, len(s.Base.PrimaryKey))
	for _, pk := range s.Base.PrimaryKey {
		out = append(out, viewRow[s.View.ColumnIndex(pk)])
	}
	return out
}

// apply replays one base-table change into the view.
func (s *Subscription) apply(ch txn.Change) error {
	switch ch.Op {
	case txn.OpInsert:
		if !s.covers(ch.New) {
			return nil
		}
		return s.Target.Insert(s.project(ch.New))
	case txn.OpDelete:
		if !s.covers(ch.Old) {
			return nil
		}
		_, _ = s.Target.Delete(s.pkOf(ch.Old))
		return nil
	case txn.OpUpdate:
		inOld, inNew := s.covers(ch.Old), s.covers(ch.New)
		switch {
		case inOld && inNew:
			oldPK, newPK := s.pkOf(ch.Old), s.pkOf(ch.New)
			if oldPK.Equal(newPK) {
				_, err := s.Target.Update(s.project(ch.New))
				return err
			}
			s.Target.Delete(oldPK)
			return s.Target.Insert(s.project(ch.New))
		case inOld:
			s.Target.Delete(s.pkOf(ch.Old))
			return nil
		case inNew:
			return s.Target.Insert(s.project(ch.New))
		default:
			return nil
		}
	}
	return nil
}

// HeartbeatSink receives the region's replicated heartbeat timestamp.
type HeartbeatSink interface {
	// SetLastSync records that the region's local heartbeat table now holds
	// the given timestamp.
	SetLastSync(regionID int, ts time.Time)
}

// StallProbe lets a fault injector wedge an agent: a stalled agent's
// wake-ups run but make no progress, so region staleness grows silently —
// the failure mode the Watchdog exists to catch. fault.Injector implements
// it.
type StallProbe interface {
	// AgentStalled reports whether the region's agent is currently wedged.
	AgentStalled(regionID int) bool
	// AgentRestarted notifies the injector that a supervisor restarted the
	// agent (soft wedges clear; hard ones persist).
	AgentRestarted(regionID int)
}

// Agent is the distribution agent for one currency region.
type Agent struct {
	Region *catalog.Region

	// interval and hbInterval are live overrides of the region's configured
	// cadence, set by the autotuning loop via SetInterval /
	// SetHeartbeatInterval. Zero means "use the catalog value"; the catalog
	// region itself is never mutated, so the configured baseline stays
	// readable and the overrides are race-free against planner reads.
	interval   atomic.Int64
	hbInterval atomic.Int64

	log        *txn.Log
	hbTable    string
	hbSink     HeartbeatSink
	mu         sync.Mutex
	subs       []*Subscription
	lastSeq    int64
	applied    int64 // transactions applied, for stats
	lastSynced time.Time
	// stall is the fault hook that can wedge this agent; nil means healthy.
	stall StallProbe
	// lastProgress is when the agent last completed a propagation step
	// (stalled wake-ups do not count); the Watchdog's staleness signal.
	lastProgress time.Time
	// clock stamps the instrumentation timings (apply-latency histogram).
	// NewAgent defaults to the wall clock; Run rebinds to its driving
	// clock so simulated runs stay deterministic. Guarded by mu.
	clock vclock.Clock
	// restarts counts supervisor-initiated restarts.
	restarts int64

	// Built-in instrumentation, bound by Instrument; nil fields mean the
	// agent runs unmetered.
	mTxns  *obs.Counter   // repl_txns_applied_total{region}
	mRows  *obs.Counter   // repl_rows_applied_total{region}
	mApply *obs.Histogram // repl_apply_latency_ns
	mHbAge *obs.Gauge     // repl_heartbeat_age_ns{region}

	// tracer receives a repl_apply span event per propagation step that
	// applied transactions; nil means untraced.
	tracer *obs.Tracer

	// applySink, when set, receives (region, applied-through seq, step time)
	// after every propagation step that applied transactions — the
	// delivered-guarantee auditor's replication tap. Nil costs nothing.
	applySink func(region int, throughSeq int64, at time.Time)
}

// NewAgent creates an agent reading the given commit log. hbTable names the
// back-end heartbeat table whose rows for this region are routed to sink.
func NewAgent(region *catalog.Region, log *txn.Log, hbTable string, sink HeartbeatSink) *Agent {
	return &Agent{Region: region, log: log, hbTable: hbTable, hbSink: sink, clock: vclock.Wall{}}
}

// Instrument binds the agent's built-in metrics to a registry: per-region
// transactions/rows applied, apply latency, and heartbeat age at apply time
// (the propagation delay the region actually experienced).
func (a *Agent) Instrument(reg *obs.Registry) {
	label := strconv.Itoa(a.Region.ID)
	a.mu.Lock()
	defer a.mu.Unlock()
	a.mTxns = reg.CounterVec("repl_txns_applied_total", "region").With(label)
	a.mRows = reg.CounterVec("repl_rows_applied_total", "region").With(label)
	a.mApply = reg.Histogram("repl_apply_latency_ns")
	a.mHbAge = reg.GaugeVec("repl_heartbeat_age_ns", "region").With(label)
}

// SetTracer attaches lifecycle tracing to the agent: each propagation step
// that applies transactions emits a repl_apply span event.
func (a *Agent) SetTracer(t *obs.Tracer) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.tracer = t
}

// Interval returns the agent's effective propagation interval: the live
// override when one is set, the region's configured update interval
// otherwise.
func (a *Agent) Interval() time.Duration {
	if v := a.interval.Load(); v > 0 {
		return time.Duration(v)
	}
	return a.Region.UpdateInterval
}

// SetInterval overrides the agent's propagation interval (the paper's f)
// live; d <= 0 clears the override back to the configured value. The change
// takes effect at the next virtual-clock tick: the Coordinator recomputes
// every event's due time from the interval on each drain, so the next
// wake-up already honors the new cadence (a live Run loop finishes its
// currently armed sleep first).
func (a *Agent) SetInterval(d time.Duration) {
	if d < 0 {
		d = 0
	}
	a.interval.Store(int64(d))
}

// HeartbeatInterval returns the effective heartbeat cadence: the live
// override when set, the region's configured value otherwise.
func (a *Agent) HeartbeatInterval() time.Duration {
	if v := a.hbInterval.Load(); v > 0 {
		return time.Duration(v)
	}
	return a.Region.HeartbeatInterval
}

// SetHeartbeatInterval overrides the region's heartbeat cadence live;
// d <= 0 clears the override. The heartbeat bounds how precisely guards can
// observe staleness, so the autotuner retunes it alongside the propagation
// interval.
func (a *Agent) SetHeartbeatInterval(d time.Duration) {
	if d < 0 {
		d = 0
	}
	a.hbInterval.Store(int64(d))
}

// SetApplySink installs (or clears, with nil) the propagation-progress tap.
func (a *Agent) SetApplySink(fn func(region int, throughSeq int64, at time.Time)) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.applySink = fn
}

// Subscriptions returns a snapshot of the agent's subscriptions.
func (a *Agent) Subscriptions() []*Subscription {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]*Subscription(nil), a.subs...)
}

// Subscribe adds a view to the region. The caller must populate the target
// by calling InitialSync (or guarantee emptiness of the base table).
func (a *Agent) Subscribe(sub *Subscription) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.subs = append(a.subs, sub)
}

// InitialSync populates a subscription's target from a snapshot of the base
// table and aligns the agent's log position to that snapshot. In the real
// system the snapshot and the log position are taken atomically; here the
// caller must guarantee no concurrent commits (callers run it during
// quiesced setup).
func (a *Agent) InitialSync(sub *Subscription, baseData *storage.Table) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	sub.Target.Clear()
	var err error
	baseData.Scan(func(r sqltypes.Row) bool {
		if sub.covers(r) {
			if e := sub.Target.Insert(sub.project(r)); e != nil {
				err = e
				return false
			}
		}
		return true
	})
	if err != nil {
		return err
	}
	sub.startSeq = a.log.LastSeq()
	return nil
}

// StartSeq returns the commit sequence the subscription's initial snapshot
// reflects (set by InitialSync during quiesced setup).
func (s *Subscription) StartSeq() int64 { return s.startSeq }

// SetStallProbe installs (or clears, with nil) the fault hook that can
// wedge this agent.
func (a *Agent) SetStallProbe(p StallProbe) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.stall = p
}

// LastProgress returns when the agent last completed a propagation step;
// zero if it never has.
func (a *Agent) LastProgress() time.Time {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.lastProgress
}

// Restarts returns how many times a supervisor has restarted the agent.
func (a *Agent) Restarts() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.restarts
}

// Restart simulates killing and re-execing the agent process at time now:
// progress is re-based so the watchdog does not re-fire immediately, and
// the fault injector is told so soft wedges (a stuck process) clear while
// hard ones persist. Replication state (the applied log position) survives,
// exactly as it would in a process restart.
func (a *Agent) Restart(now time.Time) {
	a.mu.Lock()
	a.lastProgress = now
	a.restarts++
	probe := a.stall
	a.mu.Unlock()
	if probe != nil {
		probe.AgentRestarted(a.Region.ID)
	}
}

// Step performs one propagation wake-up at time now: it applies, in commit
// order, every transaction that committed at or before now - delay. A
// wake-up while the agent is wedged (StallProbe) returns immediately
// without progress.
func (a *Agent) Step(now time.Time) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.stall != nil && a.stall.AgentStalled(a.Region.ID) {
		return nil
	}
	var applyStart time.Time
	if a.mApply != nil {
		applyStart = a.clock.Now()
	}
	cutoff := now.Add(-a.Region.UpdateDelay)
	records := a.log.SinceUntil(a.lastSeq, cutoff)
	var rowsApplied int64
	for _, rec := range records {
		for _, ch := range rec.Changes {
			if ch.Table == a.hbTable {
				a.applyHeartbeat(ch, now)
				continue
			}
			for _, sub := range a.subs {
				if sub.Base.Name != ch.Table || rec.TS.Seq <= sub.startSeq {
					continue
				}
				if err := sub.apply(ch); err != nil {
					return fmt.Errorf("repl: region %d applying seq %d: %w", a.Region.ID, rec.TS.Seq, err)
				}
				rowsApplied++
			}
		}
		a.lastSeq = rec.TS.Seq
		a.applied++
	}
	if a.mApply != nil && len(records) > 0 {
		a.mApply.ObserveDuration(a.clock.Now().Sub(applyStart))
		a.mTxns.Add(int64(len(records)))
		a.mRows.Add(rowsApplied)
	}
	if len(records) > 0 {
		a.tracer.Event(obs.EventReplApply)
		if a.applySink != nil {
			a.applySink(a.Region.ID, a.lastSeq, now)
		}
	}
	a.lastProgress = now
	return nil
}

func (a *Agent) applyHeartbeat(ch txn.Change, now time.Time) {
	row := ch.New
	if row == nil {
		return
	}
	cid := int(row[0].Int())
	if cid != a.Region.ID {
		return // another region's heartbeat row
	}
	ts := row[1].Time()
	a.lastSynced = ts
	if a.mHbAge != nil {
		// Heartbeat age at apply time: how long the beat spent in flight
		// (simulated clock), i.e. the propagation delay the region saw.
		a.mHbAge.SetDuration(now.Sub(ts))
	}
	if a.hbSink != nil {
		a.hbSink.SetLastSync(cid, ts)
	}
}

// LastSeq returns the last applied commit sequence number.
func (a *Agent) LastSeq() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.lastSeq
}

// TransactionsApplied returns how many commits the agent has replayed.
func (a *Agent) TransactionsApplied() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.applied
}

// Run drives the agent against a live clock: it sleeps the agent's
// effective update interval (re-read every cycle so reconfiguration and
// SetInterval retunes take effect), performs one propagation Step, and
// repeats until stop is closed. Errors are
// delivered to errs if non-nil. Use the Coordinator instead for
// deterministic virtual-time simulations.
func (a *Agent) Run(clock vclock.Clock, stop <-chan struct{}, errs chan<- error) {
	a.mu.Lock()
	a.clock = clock
	a.mu.Unlock()
	for {
		select {
		case <-stop:
			return
		case now := <-clock.After(a.Interval()):
			if err := a.Step(now); err != nil {
				if errs != nil {
					select {
					case errs <- err:
					default:
					}
				}
				return
			}
		}
	}
}
