package harness

import (
	"strings"
	"testing"
	"time"

	"relaxedcc/internal/audit"
	"relaxedcc/internal/core"
)

// runAuditedChaos runs cfg with the auditor enabled and returns its summary
// plus the rendered report section.
func runAuditedChaos(t *testing.T, cfg ChaosConfig) (audit.Summary, string) {
	t.Helper()
	var aud *audit.Auditor
	prev := cfg.OnSystem
	cfg.OnSystem = func(s *core.System) {
		aud = s.EnableAudit()
		if prev != nil {
			prev(s)
		}
	}
	if _, err := RunChaos(cfg); err != nil {
		t.Fatal(err)
	}
	if aud == nil {
		t.Fatal("OnSystem never ran")
	}
	var b strings.Builder
	RenderAudit(&b, aud)
	return aud.Summary(), b.String()
}

// TestChaosHonestRunAuditsClean: the default chaos schedule — partitions,
// transient errors, a watchdog-recovered stall, ongoing writes — breaks
// promises only in disclosed ways, so the auditor reports zero silent
// violations and the offline replay agrees.
func TestChaosHonestRunAuditsClean(t *testing.T) {
	cfg := DefaultChaosConfig()
	cfg.Duration = 60 * time.Second
	s, section := runAuditedChaos(t, cfg)
	if s.ReadsChecked == 0 {
		t.Fatal("auditor checked nothing")
	}
	if s.ViolationsTotal != 0 || len(s.RecentViolations) != 0 {
		t.Fatalf("honest chaos flagged %d violations: %+v",
			s.ViolationsTotal, s.RecentViolations)
	}
	if s.Disclosed == 0 {
		t.Error("no disclosed serves despite forced degradation")
	}
	if s.Commits == 0 || s.Applies == 0 {
		t.Errorf("history not recorded: %d commits, %d applies", s.Commits, s.Applies)
	}
	if !strings.Contains(section, "violations              0") {
		t.Errorf("report section does not show zero violations:\n%s", section)
	}
	if !strings.Contains(section, "offline replay          agrees with online ledger") {
		t.Errorf("offline replay disagreed:\n%s", section)
	}
}

// TestChaosBrokenGuardIsCaught: the deliberately broken schedule — agent
// hard-wedged while the heartbeat is forged fresh — must produce silent
// currency violations with evidence naming the object, the declared bound
// and the delivered staleness.
func TestChaosBrokenGuardIsCaught(t *testing.T) {
	s, section := runAuditedChaos(t, BrokenGuardChaosConfig())
	if s.CurrencyViolations == 0 || len(s.RecentViolations) == 0 {
		t.Fatalf("broken guard not caught: %+v", s.Tally)
	}
	v := s.RecentViolations[len(s.RecentViolations)-1]
	if v.Object != "T" || v.Region != 1 || v.Class != audit.ClassViolationCurrency {
		t.Fatalf("evidence = %+v", v)
	}
	if v.DeliveredNS <= v.BoundNS || v.ExcessNS != v.DeliveredNS-v.BoundNS {
		t.Fatalf("bound/delivered/excess inconsistent: %+v", v)
	}
	// The lie itself is in evidence: the guard saw ~0 staleness while the
	// delivered staleness ran far past the bound.
	if v.GuardStalenessNS >= v.BoundNS {
		t.Fatalf("guard staleness %s not under the bound: the heartbeat forge did not take",
			time.Duration(v.GuardStalenessNS))
	}
	if !strings.Contains(section, "violation q") || !strings.Contains(section, "[currency] T region 1") {
		t.Errorf("report section missing violation evidence:\n%s", section)
	}
}

// TestChaosAuditDeterministic: the audit section, violations and all, is
// byte-identical across same-seed runs — the property the CI smoke gates on.
func TestChaosAuditDeterministic(t *testing.T) {
	cfg := BrokenGuardChaosConfig()
	cfg.Duration = 60 * time.Second
	cfg.GuardLieStart = 20 * time.Second
	s1, sec1 := runAuditedChaos(t, cfg)
	s2, sec2 := runAuditedChaos(t, cfg)
	if sec1 != sec2 {
		t.Errorf("audit section differs across same-seed runs:\n%s\nvs\n%s", sec1, sec2)
	}
	if s1.Tally != s2.Tally {
		t.Errorf("tallies differ: %+v vs %+v", s1.Tally, s2.Tally)
	}
	if s1.ViolationsTotal == 0 {
		t.Error("determinism fixture produced no violations to compare")
	}
}

// TestChaosAuditOffEqualsSeedReport: enabling the auditor must not perturb
// the run itself — the chaos report (availability, staleness percentiles,
// SLO text) stays identical with and without it.
func TestChaosAuditOffEqualsSeedReport(t *testing.T) {
	cfg := DefaultChaosConfig()
	cfg.Duration = 60 * time.Second
	plain, err := RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	audited := cfg
	audited.OnSystem = func(s *core.System) { s.EnableAudit() }
	withAudit, err := RunChaos(audited)
	if err != nil {
		t.Fatal(err)
	}
	if *plain != *withAudit {
		t.Errorf("auditor perturbed the run:\nplain=%+v\naudited=%+v", plain, withAudit)
	}
}

// TestRenderAuditNilAuditor: the report section degrades gracefully when the
// run was not audited.
func TestRenderAuditNilAuditor(t *testing.T) {
	var b strings.Builder
	RenderAudit(&b, nil)
	if !strings.Contains(b.String(), "auditor not enabled") {
		t.Errorf("nil-auditor section:\n%s", b.String())
	}
}
