package harness

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"relaxedcc/internal/opt"
	"relaxedcc/internal/tuner"
)

func testConfig() Config {
	return Config{ScaleFactor: 0.002, Seed: 7, Reps: 14, ScaleStatsToPaper: true}
}

// TestPlanChoiceReproducesPaper is the headline reproduction check: every
// query variant of Tables 4.2/4.3 must land on the paper's plan.
func TestPlanChoiceReproducesPaper(t *testing.T) {
	sys, err := NewSystem(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	results, err := RunPlanChoice(&buf, sys)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Case.Expected != 0 && r.Got != r.Case.Expected {
			t.Errorf("%s: got plan %d (%s), paper chose plan %d",
				r.Case.Name, r.Got, r.Plan.Shape, r.Case.Expected)
		}
	}
}

func TestScaleStatsToPaper(t *testing.T) {
	sys, err := NewSystem(Config{ScaleFactor: 0.002, Seed: 7, ScaleStatsToPaper: true})
	if err != nil {
		t.Fatal(err)
	}
	stats := sys.Cache.Catalog().Table("Customer").Stats
	if got := stats.Rows(); got < 140000 || got > 160000 {
		t.Fatalf("scaled customer rows = %d", got)
	}
	if got := sys.Cache.Catalog().Table("Orders").Stats.Rows(); got < 1400000 {
		t.Fatalf("scaled orders rows = %d", got)
	}
	// NDV of the key column scales; low-cardinality nation key does not.
	if ndv := stats.Column("c_custkey").NDV; ndv < 140000 {
		t.Fatalf("c_custkey NDV = %d", ndv)
	}
	if ndv := stats.Column("c_nationkey").NDV; ndv > 25 {
		t.Fatalf("c_nationkey NDV = %d", ndv)
	}
	// The back end keeps physical stats (it executes the real data).
	if got := sys.Backend.Catalog().Table("Customer").Stats.Rows(); got != 300 {
		t.Fatalf("backend rows = %d", got)
	}
}

// TestWorkloadShiftMatchesFormula checks Figure 4.2: measured local
// fractions must track the analytic formula within sampling error.
func TestWorkloadShiftMatchesFormula(t *testing.T) {
	delays := []time.Duration{5 * time.Second}
	bounds := []time.Duration{0, 20 * time.Second, 55 * time.Second, 105 * time.Second, 120 * time.Second}
	pts, err := WorkloadVsBound(delays, bounds, 40)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts[5*time.Second] {
		diff := p.Analytic - p.Measured
		if diff < 0 {
			diff = -diff
		}
		if diff > 0.08 {
			t.Errorf("bound %v: analytic %.3f vs measured %.3f", p.Bound, p.Analytic, p.Measured)
		}
	}
	// Monotone in the bound.
	series := pts[5*time.Second]
	for i := 1; i < len(series); i++ {
		if series[i].Measured < series[i-1].Measured {
			t.Fatal("measured fraction not monotone in bound")
		}
	}
}

func TestWorkloadVsIntervalShape(t *testing.T) {
	delays := []time.Duration{5 * time.Second}
	intervals := []time.Duration{5 * time.Second, 20 * time.Second, 50 * time.Second}
	pts, err := WorkloadVsInterval(delays, intervals, 30)
	if err != nil {
		t.Fatal(err)
	}
	series := pts[5*time.Second]
	// Local share falls as the refresh interval grows (paper 4.2(b)).
	if !(series[0].Measured >= series[1].Measured && series[1].Measured >= series[2].Measured) {
		t.Fatalf("series not decreasing: %+v", series)
	}
	if series[0].Measured != 1.0 {
		t.Fatalf("f <= B-d should be always-local, got %v", series[0].Measured)
	}
}

// TestGuardOverheadShape verifies Table 4.4/4.5's qualitative findings:
// guards always pick the right branch; local guard overhead is positive for
// point queries; the ideal floor is below the total overhead.
func TestGuardOverheadShape(t *testing.T) {
	sys, err := NewSystem(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	measured, err := MeasureGuardOverhead(sys, 70)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{"Q1", "Q2", "Q3"} {
		if measured[q]["local"].Rows != measured[q]["remote"].Rows {
			t.Errorf("%s: row counts differ across branches", q)
		}
		if measured[q]["local"].GuardEval <= 0 {
			t.Errorf("%s: guard evaluation time not recorded", q)
		}
	}
	if measured["Q1"]["local"].Rows != 1 || measured["Q2"]["local"].Rows != 10 {
		t.Fatalf("row counts: Q1=%d Q2=%d",
			measured["Q1"]["local"].Rows, measured["Q2"]["local"].Rows)
	}
}

func TestRunAllProducesEveryTable(t *testing.T) {
	if testing.Short() {
		t.Skip("full report in -short mode")
	}
	var buf bytes.Buffer
	cfg := testConfig()
	if err := RunAll(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Table 4.1", "Tables 4.2/4.3", "Figure 4.2(a)", "Figure 4.2(b)",
		"Table 4.4", "Table 4.5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestPlanNumberClassification(t *testing.T) {
	cases := []struct {
		plan *opt.Plan
		want int
	}{
		{&opt.Plan{Shape: "Remote"}, 1},
		{&opt.Plan{Shape: "HashJoin(Remote(A), Remote(B))", RemoteLeaves: 2}, 2},
		{&opt.Plan{Shape: "mixed", LocalLeaves: 1, RemoteLeaves: 1}, 4},
		{&opt.Plan{Shape: "local", LocalLeaves: 2}, 5},
	}
	for _, c := range cases {
		if got := PlanNumber(c.plan); got != c.want {
			t.Errorf("PlanNumber(%s) = %d, want %d", c.plan.Shape, got, c.want)
		}
	}
	if !strings.Contains(PlanLabel(cases[0].plan), "plan 1") {
		t.Fatal("PlanLabel")
	}
}

// TestWorkloadByExecutionMatchesFormula re-runs one Figure 4.2(a) point by
// actually executing guarded queries (not sampling staleness): the guard's
// real decisions must track the analytic formula.
func TestWorkloadByExecutionMatchesFormula(t *testing.T) {
	cases := []struct {
		bound time.Duration
		want  float64
	}{
		{55 * time.Second, 0.50}, // (55-5)/100
		{5 * time.Second, 0.0},   // at the delay: never local
		{105 * time.Second, 1.0}, // beyond d+f: always local
	}
	for _, c := range cases {
		got, err := MeasureWorkloadByExecution(100*time.Second, 5*time.Second, c.bound, 40)
		if err != nil {
			t.Fatal(err)
		}
		diff := got - c.want
		if diff < 0 {
			diff = -diff
		}
		if diff > 0.06 {
			t.Errorf("B=%v: executed local fraction %.3f, want ~%.2f", c.bound, got, c.want)
		}
	}
}

// TestTunerPredictionMatchesSimulation cross-validates the region tuner
// (internal/tuner): at its recommended interval, the actually executed
// local fraction matches its analytic prediction.
func TestTunerPredictionMatchesSimulation(t *testing.T) {
	w := tuner.Workload{
		QueriesPerSecond: 10,
		Bounds:           []tuner.BoundShare{{Bound: 30 * time.Second, Weight: 1}},
	}
	d := 2 * time.Second
	res, err := tuner.Tune(w, tuner.Costs{RefreshCost: 5, RemotePenalty: 0.2}, d)
	if err != nil {
		t.Fatal(err)
	}
	got, err := MeasureWorkloadByExecution(res.Interval, d, 30*time.Second, 40)
	if err != nil {
		t.Fatal(err)
	}
	diff := got - res.LocalFraction
	if diff < 0 {
		diff = -diff
	}
	if diff > 0.08 {
		t.Fatalf("tuned f=%v: predicted local %.3f, simulated %.3f",
			res.Interval, res.LocalFraction, got)
	}
}

// TestOffloadIncreasesWithBound checks the extension experiment: relaxing
// the currency bound monotonically offloads the back end, reaching 100%
// local past d+f and 0% at bound 0 (traditional semantics).
func TestOffloadIncreasesWithBound(t *testing.T) {
	sys, err := NewSystem(Config{ScaleFactor: 0.002, Seed: 3, ScaleStatsToPaper: true})
	if err != nil {
		t.Fatal(err)
	}
	pts, err := MeasureOffload(sys, []time.Duration{
		0, 10 * time.Second, 25 * time.Second,
	}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].LocalFraction != 0 {
		t.Fatalf("bound 0 must always hit the back end: %+v", pts[0])
	}
	if pts[0].BackendQueries == 0 {
		t.Fatal("link stats not recorded")
	}
	if pts[2].LocalFraction != 1.0 {
		t.Fatalf("bound beyond d+f must be fully local: %+v", pts[2])
	}
	if pts[2].BackendQueries != 0 {
		t.Fatal("fully local workload still shipped queries")
	}
	if !(pts[0].LocalFraction <= pts[1].LocalFraction && pts[1].LocalFraction <= pts[2].LocalFraction) {
		t.Fatalf("offload not monotone: %+v", pts)
	}
}
