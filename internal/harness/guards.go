package harness

import (
	"fmt"
	"io"
	"time"

	"relaxedcc/internal/core"
	"relaxedcc/internal/exec"
	"relaxedcc/internal/opt"
	"relaxedcc/internal/sqlparser"
	"relaxedcc/internal/tpcd"
	"relaxedcc/internal/vclock"
)

// GuardQuery is one of the Table 4.4 queries.
type GuardQuery struct {
	Name  string
	Plain string // without currency clause
	// Fresh and Stale carry currency clauses: Fresh's bound always admits
	// the local branch at the measurement instant; Stale's bound is above
	// the region delay (so the guarded plan compiles) but below the
	// region's staleness at the measurement instant, so the guard falls
	// back to the remote branch.
	Fresh string
	Stale string
}

// GuardQueries reconstructs Table 4.4's Q1 (clustered-index lookup), Q2
// (indexed nested-loop join, ~10 rows) and Q3 (range scan, ~4% of
// Customer).
func GuardQueries() []GuardQuery {
	return []GuardQuery{
		{
			Name:  "Q1",
			Plain: tpcd.PointQuery(17, ""),
			Fresh: tpcd.PointQuery(17, "CURRENCY 3600 ON (Customer)"),
			Stale: tpcd.PointQuery(17, "CURRENCY 5.5 SEC ON (Customer)"),
		},
		{
			Name:  "Q2",
			Plain: tpcd.CustomerOrdersQuery(17, ""),
			Fresh: tpcd.CustomerOrdersQuery(17, "CURRENCY 3600 ON (C), 3600 ON (O)"),
			Stale: tpcd.CustomerOrdersQuery(17, "CURRENCY 5.5 SEC ON (C), 5.5 SEC ON (O)"),
		},
		{
			Name:  "Q3",
			Plain: tpcd.RangeQuery(0, 440, ""),
			Fresh: tpcd.RangeQuery(0, 440, "CURRENCY 3600 ON (Customer)"),
			Stale: tpcd.RangeQuery(0, 440, "CURRENCY 5.5 SEC ON (Customer)"),
		},
	}
}

// GuardMeasurement compares a guarded plan with its exact unguarded twin
// (the same operator tree with every SwitchUnion replaced by the branch the
// guard takes) — the paper's "plans with and without currency checking".
type GuardMeasurement struct {
	Query      string
	Branch     string // "local" or "remote"
	Rows       int
	Guarded    exec.PhaseTimes
	Plain      exec.PhaseTimes
	Delta      exec.PhaseTimes // median of per-round (guarded - plain)
	GuardEval  time.Duration   // average selector evaluation time
	GuardCount int             // SwitchUnions in the plan
}

// Overhead returns the median per-phase overhead across paired rounds.
func (m *GuardMeasurement) Overhead() exec.PhaseTimes { return m.Delta }

// OverheadTotal returns the total elapsed overhead.
func (m *GuardMeasurement) OverheadTotal() time.Duration {
	return m.Delta.Total()
}

// OverheadPercent returns the relative overhead.
func (m *GuardMeasurement) OverheadPercent() float64 {
	if m.Plain.Total() <= 0 {
		return 0
	}
	return 100 * float64(m.OverheadTotal()) / float64(m.Plain.Total())
}

// stripGuards replaces every SwitchUnion in the tree with its child at
// branch, producing the traditional plan without currency checking.
func stripGuards(op exec.Operator, branch int) exec.Operator {
	switch op := op.(type) {
	case *exec.SwitchUnion:
		return stripGuards(op.Children[branch], branch)
	case *exec.Filter:
		op.Child = stripGuards(op.Child, branch)
	case *exec.Project:
		op.Child = stripGuards(op.Child, branch)
	case *exec.HashJoin:
		op.Left = stripGuards(op.Left, branch)
		op.Right = stripGuards(op.Right, branch)
	case *exec.IndexLoopJoin:
		op.Outer = stripGuards(op.Outer, branch)
	case *exec.Sort:
		op.Child = stripGuards(op.Child, branch)
	case *exec.Limit:
		op.Child = stripGuards(op.Child, branch)
	case *exec.Distinct:
		op.Child = stripGuards(op.Child, branch)
	case *exec.Aggregate:
		op.Child = stripGuards(op.Child, branch)
	}
	return op
}

// timePhases measures averaged per-phase times over iters executions of a
// plan: setup is the (batched) cost of instantiating the executable tree;
// run and shutdown come from the executor's own phase clocks.
func timePhases(plan *opt.Plan, transform func(exec.Operator) exec.Operator, ctx *exec.EvalContext, iters int) (exec.PhaseTimes, int, time.Duration, error) {
	var root exec.Operator
	var err error
	// The guard-overhead experiment measures real microseconds (the paper's
	// Table 4.5); the explicit wall clock here — and the one injected into
	// ctx by measureGuardedVsPlain — is the point, not an oversight.
	wall := vclock.Wall{}
	start := wall.Now()
	for i := 0; i < iters; i++ {
		root, err = plan.Build()
		if err != nil {
			return exec.PhaseTimes{}, 0, 0, err
		}
		if transform != nil {
			root = transform(root)
		}
	}
	setup := wall.Now().Sub(start) / time.Duration(iters)
	var total exec.PhaseTimes
	var guardEval time.Duration
	rows := 0
	for i := 0; i < iters; i++ {
		res, err := exec.Run(root, ctx, 0)
		if err != nil {
			return exec.PhaseTimes{}, 0, 0, err
		}
		total.Add(res.Phases)
		rows = len(res.Rows)
	}
	for _, su := range exec.CollectSwitchUnions(root) {
		guardEval += su.GuardTime()
	}
	avg := total.Scale(iters)
	avg.Setup = setup
	return avg, rows, guardEval, nil
}

// measureGuardedVsPlain compares the guarded plan for sql against its
// traditional twin without currency checking: the same operator tree with
// every SwitchUnion replaced by the branch the guard takes at the
// measurement instant (the paper generated the equivalent traditional local
// and remote plans). Rounds are interleaved and per-phase medians of the
// paired deltas suppress scheduling noise.
func measureGuardedVsPlain(sys *core.System, sql string, wantLocal bool, reps int) (*GuardMeasurement, error) {
	sel, err := sqlparser.ParseSelect(sql)
	if err != nil {
		return nil, err
	}
	guarded, _, err := sys.Cache.Plan(sel, opt.Options{ForceLocal: true})
	if err != nil {
		return nil, err
	}
	if guarded.Guards == 0 {
		return nil, fmt.Errorf("harness: plan for %q has no currency guard", sql)
	}
	branch := 1
	if wantLocal {
		branch = 0
	}
	strip := func(op exec.Operator) exec.Operator { return stripGuards(op, branch) }
	// Wall clock on purpose: run/shutdown phases must measure real elapsed
	// time for the overhead comparison, whatever clock the system runs on.
	ctx := &exec.EvalContext{Now: sys.Clock.Now(), Clock: vclock.Wall{}}
	// Verify the guard takes the expected branch.
	root, err := guarded.Build()
	if err != nil {
		return nil, err
	}
	if _, err := exec.Run(root, ctx, 0); err != nil {
		return nil, err
	}
	for _, su := range exec.CollectSwitchUnions(root) {
		if chosen := su.ChosenIndex(); (chosen == 0) != wantLocal {
			return nil, fmt.Errorf("harness: guard chose branch %d, want local=%v", chosen, wantLocal)
		}
	}
	m := &GuardMeasurement{
		GuardCount: guarded.Guards,
		Branch:     map[bool]string{true: "local", false: "remote"}[wantLocal],
	}
	const rounds = 7
	iters := reps / rounds
	if iters < 1 {
		iters = 1
	}
	var gs, ps []exec.PhaseTimes
	for r := 0; r < rounds; r++ {
		g, rows, guardEval, err := timePhases(guarded, nil, ctx, iters)
		if err != nil {
			return nil, err
		}
		p, _, _, err := timePhases(guarded, strip, ctx, iters)
		if err != nil {
			return nil, err
		}
		m.Rows = rows
		gs = append(gs, g)
		ps = append(ps, p)
		if m.GuardEval == 0 || guardEval < m.GuardEval {
			m.GuardEval = guardEval
		}
	}
	m.Guarded = medianPhases(gs)
	m.Plain = medianPhases(ps)
	deltas := make([]exec.PhaseTimes, rounds)
	for r := range gs {
		deltas[r] = exec.PhaseTimes{
			Setup:    gs[r].Setup - ps[r].Setup,
			Run:      gs[r].Run - ps[r].Run,
			Shutdown: gs[r].Shutdown - ps[r].Shutdown,
		}
	}
	m.Delta = medianPhases(deltas)
	if m.GuardCount > 0 {
		m.GuardEval /= time.Duration(m.GuardCount)
	}
	return m, nil
}

// medianPhases takes the per-phase median of a sample of phase timings.
func medianPhases(xs []exec.PhaseTimes) exec.PhaseTimes {
	med := func(pick func(exec.PhaseTimes) time.Duration) time.Duration {
		vals := make([]time.Duration, len(xs))
		for i, x := range xs {
			vals[i] = pick(x)
		}
		for i := 1; i < len(vals); i++ {
			for j := i; j > 0 && vals[j] < vals[j-1]; j-- {
				vals[j], vals[j-1] = vals[j-1], vals[j]
			}
		}
		return vals[len(vals)/2]
	}
	return exec.PhaseTimes{
		Setup:    med(func(p exec.PhaseTimes) time.Duration { return p.Setup }),
		Run:      med(func(p exec.PhaseTimes) time.Duration { return p.Run }),
		Shutdown: med(func(p exec.PhaseTimes) time.Duration { return p.Shutdown }),
	}
}

// MeasureGuardOverhead produces the measurements behind Tables 4.4 and 4.5:
// for each query, the guarded plan executed down its local branch and down
// its remote branch, each against its unguarded twin.
func MeasureGuardOverhead(sys *core.System, reps int) (map[string]map[string]*GuardMeasurement, error) {
	out := map[string]map[string]*GuardMeasurement{}
	for _, q := range GuardQueries() {
		local, err := measureGuardedVsPlain(sys, q.Fresh, true, reps)
		if err != nil {
			return nil, fmt.Errorf("%s local: %w", q.Name, err)
		}
		local.Query = q.Name
		rem, err := measureGuardedVsPlain(sys, q.Stale, false, reps)
		if err != nil {
			return nil, fmt.Errorf("%s remote: %w", q.Name, err)
		}
		rem.Query = q.Name
		out[q.Name] = map[string]*GuardMeasurement{"local": local, "remote": rem}
	}
	return out, nil
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// RunGuardOverhead prints Table 4.4: absolute and relative currency-guard
// overhead for local and remote execution of Q1-Q3.
func RunGuardOverhead(w io.Writer, sys *core.System, reps int) (map[string]map[string]*GuardMeasurement, error) {
	measured, err := MeasureGuardOverhead(sys, reps)
	if err != nil {
		return nil, err
	}
	section(w, "Table 4.4: overhead of currency guards")
	fmt.Fprintf(w, "%-12s %10s %10s %10s %10s %10s %10s\n",
		"", "Q1", "Q2", "Q3", "Q1(rem)", "Q2(rem)", "Q3(rem)")
	fmt.Fprintf(w, "%-12s", "cost (ms)")
	for _, branch := range []string{"local", "remote"} {
		for _, q := range []string{"Q1", "Q2", "Q3"} {
			fmt.Fprintf(w, " %10.4f", ms(measured[q][branch].OverheadTotal()))
		}
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-12s", "cost (%)")
	for _, branch := range []string{"local", "remote"} {
		for _, q := range []string{"Q1", "Q2", "Q3"} {
			fmt.Fprintf(w, " %10.2f", measured[q][branch].OverheadPercent())
		}
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-12s", "# rows")
	for _, branch := range []string{"local", "remote"} {
		for _, q := range []string{"Q1", "Q2", "Q3"} {
			fmt.Fprintf(w, " %10d", measured[q][branch].Rows)
		}
	}
	fmt.Fprintln(w)
	return measured, nil
}

// RunGuardPhases prints Table 4.5: the local-execution guard overhead split
// into setup / run / shutdown phases, plus the "ideal" floor (guard
// predicate evaluation alone, plus shutdown).
func RunGuardPhases(w io.Writer, measured map[string]map[string]*GuardMeasurement) {
	section(w, "Table 4.5: local currency-guard overhead by phase")
	fmt.Fprintf(w, "%-4s %12s %12s %12s %12s\n", "", "setup(ms)", "run(ms)", "shutdown(ms)", "ideal(ms)")
	for _, q := range []string{"Q1", "Q2", "Q3"} {
		m := measured[q]["local"]
		ov := m.Overhead()
		ideal := m.GuardEval*time.Duration(m.GuardCount) + ov.Shutdown
		fmt.Fprintf(w, "%-4s %12.4f %12.4f %12.4f %12.4f\n",
			q, ms(ov.Setup), ms(ov.Run), ms(ov.Shutdown), ms(ideal))
	}
}
