package harness

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"relaxedcc/internal/catalog"
	"relaxedcc/internal/core"
	"relaxedcc/internal/fault"
	"relaxedcc/internal/mtcache"
	"relaxedcc/internal/obs"
	"relaxedcc/internal/remote"
	"relaxedcc/internal/sqltypes"
)

// ChaosConfig scripts one deterministic chaos run: a single-region cache
// under a currency-bounded point-query workload while the injector imposes
// link latency, transient errors, a hard partition window, and a wedged
// distribution agent. Everything is driven by the virtual clock and one
// seed, so the same config replays the same run.
type ChaosConfig struct {
	Seed int64
	// Duration is the total virtual time of the run.
	Duration time.Duration
	// QueryInterval is the virtual time between queries.
	QueryInterval time.Duration

	// Region cadence.
	UpdateInterval    time.Duration
	UpdateDelay       time.Duration
	HeartbeatInterval time.Duration
	// Bound is the queries' currency bound. With a bound between delay and
	// delay+interval the guard's choice oscillates across the propagation
	// cycle, exercising both branches.
	Bound time.Duration

	// Link faults: base latency plus jitter on every call, transient-error
	// probability per call, and one hard partition window.
	Latency        time.Duration
	LatencyJitter  time.Duration
	ErrorRate      float64
	PartitionStart time.Duration
	PartitionDur   time.Duration

	// StallStart wedges the region's agent at that offset (zero disables);
	// the watchdog is expected to catch and restart it.
	StallStart time.Duration

	// WriteInterval issues a single-row UPDATE directly against the master
	// at this cadence (zero disables), so the commit history keeps moving
	// after setup and the delivered-guarantee auditor has real staleness to
	// measure. The writes bypass the faulted link and never change the
	// guard's heartbeat signal, so reports stay byte-identical with the
	// write-free runs of earlier revisions.
	WriteInterval time.Duration

	// GuardLieStart is the deliberately broken fault schedule the auditor
	// must catch: from that offset (zero disables) the region's agent is
	// hard-wedged (stall survives watchdog restarts) while the local
	// heartbeat is forged fresh before every query, so currency guards see
	// staleness ~0 and keep approving local serves of data that is in fact
	// arbitrarily stale. No honest component behaves this way — it exists
	// to prove the auditor detects real violations with evidence.
	GuardLieStart time.Duration

	// Policy is the link's resilience policy; zero selects the system
	// default (retry/backoff, deadline, breaker on heartbeat cadence).
	Policy remote.Policy

	// OnSystem, if set, receives the fully wired system right after fault
	// injection and resilience are enabled, before any virtual time passes.
	// Callers use it to stash the system (e.g. to scrape its ObsHandler
	// endpoints after the run) or to add extra instrumentation. It must not
	// advance the clock or run queries, or determinism is lost.
	OnSystem func(*core.System)
}

// DefaultChaosConfig is a two-virtual-minute run sized so every fault class
// fires: ~1/3 of the timeline partitioned, a mid-run agent stall, and
// enough queries on both sides of the guard's oscillation.
func DefaultChaosConfig() ChaosConfig {
	return ChaosConfig{
		Seed:              2004,
		Duration:          120 * time.Second,
		QueryInterval:     500 * time.Millisecond,
		UpdateInterval:    10 * time.Second,
		UpdateDelay:       2 * time.Second,
		HeartbeatInterval: 1 * time.Second,
		Bound:             5 * time.Second,
		Latency:           2 * time.Millisecond,
		LatencyJitter:     3 * time.Millisecond,
		ErrorRate:         0.10,
		PartitionStart:    40 * time.Second,
		PartitionDur:      25 * time.Second,
		StallStart:        80 * time.Second,
		WriteInterval:     2 * time.Second,
	}
}

// BrokenGuardChaosConfig is the negative fixture for the auditor: the
// guard-lie schedule on an otherwise fault-free run, so every violation the
// auditor reports is attributable to the lie alone. Honest runs of the
// default config must audit clean; this one must not.
func BrokenGuardChaosConfig() ChaosConfig {
	cfg := DefaultChaosConfig()
	cfg.ErrorRate = 0
	cfg.PartitionDur = 0
	cfg.StallStart = 0
	cfg.GuardLieStart = 30 * time.Second
	return cfg
}

// ChaosReport is the outcome of one chaos run.
type ChaosReport struct {
	Queries  int
	Answered int
	Failed   int
	// Local counts answers served from the local view with the guard's
	// blessing; Degraded counts local answers served because the remote
	// fall-back was unavailable (each carries a violation warning); Remote
	// counts answers fetched from the back end.
	Local    int
	Degraded int
	Remote   int

	// Availability is Answered/Queries.
	Availability float64
	// ServedStaleness aggregates the staleness of every locally served
	// answer (guard-approved and degraded alike), percentiles over the run.
	StalenessP50 time.Duration
	StalenessP95 time.Duration
	StalenessP99 time.Duration
	StalenessMax time.Duration

	// Link and fabric counters.
	Retries       int64
	LinkFailures  int64
	BreakerTrips  int64
	AgentRestarts int64
	Injected      fault.Stats

	// SLO is the pre-rendered per-region currency-SLO section (within-bound
	// ratio, remaining error budget, staleness percentiles), taken from the
	// cache's SLO tracker when the run ends. Storing the rendered text keeps
	// the report comparable with == (TestChaosDeterministic relies on that)
	// and makes the byte-identical determinism guarantee directly checkable.
	SLO string
}

// RunChaos executes the scripted chaos run and reports availability and
// served-staleness percentiles. The session uses ActionServeLocal, so the
// expected availability under partitions is 100%: every query the guard
// would have sent remote degrades to the local view with a warning.
func RunChaos(cfg ChaosConfig) (*ChaosReport, error) {
	sys := core.NewSystem()
	sys.MustExec("CREATE TABLE T (id BIGINT NOT NULL PRIMARY KEY, v BIGINT)")
	if err := sys.AddRegion(&catalog.Region{
		ID: 1, Name: "R",
		UpdateInterval:    cfg.UpdateInterval,
		UpdateDelay:       cfg.UpdateDelay,
		HeartbeatInterval: cfg.HeartbeatInterval,
	}); err != nil {
		return nil, err
	}
	if err := sys.CreateView(&catalog.View{
		Name: "t_prj", BaseTable: "T", Columns: []string{"id", "v"}, RegionID: 1,
	}); err != nil {
		return nil, err
	}
	if err := sys.Backend.LoadRows("T", []sqltypes.Row{{sqltypes.NewInt(1), sqltypes.NewInt(1)}}); err != nil {
		return nil, err
	}
	sys.Analyze()

	inj := fault.New(cfg.Seed)
	inj.SetLatency(cfg.Latency, cfg.LatencyJitter)
	inj.SetErrorRate(cfg.ErrorRate)
	sys.InjectFaults(inj)
	sys.EnableResilience(cfg.Policy)
	if cfg.OnSystem != nil {
		cfg.OnSystem(sys)
	}

	// Warm up one full propagation cycle before faults matter, so the
	// region has synchronized at least once.
	if err := sys.Run(cfg.UpdateInterval + cfg.UpdateDelay + 2*cfg.HeartbeatInterval); err != nil {
		return nil, err
	}

	sess := sys.Cache.NewSession()
	sess.Action = mtcache.ActionServeLocal
	q := fmt.Sprintf("SELECT v FROM T WHERE id = 1 CURRENCY %d MS ON (T)", cfg.Bound.Milliseconds())

	start := sys.Clock.Now()
	partitionOn := false
	stallOn := cfg.StallStart <= 0
	lieOn := false
	nextWrite := cfg.WriteInterval
	writeVal := int64(1)
	rep := &ChaosReport{}
	var served []time.Duration

	for off := time.Duration(0); off < cfg.Duration; off += cfg.QueryInterval {
		if err := sys.RunTo(start.Add(off)); err != nil {
			return nil, err
		}
		if !partitionOn && cfg.PartitionDur > 0 && off >= cfg.PartitionStart {
			partitionOn = true
			inj.PartitionUntil(start.Add(cfg.PartitionStart + cfg.PartitionDur))
		}
		if !stallOn && off >= cfg.StallStart {
			stallOn = true
			inj.StallAgent(1, true)
		}
		if cfg.WriteInterval > 0 && off >= nextWrite {
			nextWrite += cfg.WriteInterval
			writeVal++
			if _, err := sys.Backend.Exec(fmt.Sprintf("UPDATE T SET v = %d WHERE id = 1", writeVal)); err != nil {
				return nil, err
			}
		}
		if !lieOn && cfg.GuardLieStart > 0 && off >= cfg.GuardLieStart {
			lieOn = true
			inj.SetStallSurvivesRestart(true)
			inj.StallAgent(1, true)
		}
		if lieOn {
			// The lie: replication is wedged, but the heartbeat claims the
			// region synchronized this instant.
			sys.Cache.SetLastSync(1, sys.Clock.Now())
		}

		rep.Queries++
		res, err := sess.Query(q)
		if err != nil {
			rep.Failed++
			continue
		}
		rep.Answered++
		switch {
		case res.Degraded:
			rep.Degraded++
		case len(res.LocalViews) > 0:
			rep.Local++
		default:
			rep.Remote++
		}
		if res.Degraded || len(res.LocalViews) > 0 {
			if ts, ok := sys.Cache.LastSync(1); ok {
				served = append(served, sys.Clock.Now().Sub(ts))
			}
		}
	}

	if rep.Queries > 0 {
		rep.Availability = float64(rep.Answered) / float64(rep.Queries)
	}
	rep.StalenessP50 = percentileDur(served, 0.50)
	rep.StalenessP95 = percentileDur(served, 0.95)
	rep.StalenessP99 = percentileDur(served, 0.99)
	rep.StalenessMax = percentileDur(served, 1.00)

	stats := sys.Cache.Link().Stats()
	rep.Retries = stats.Retries
	rep.LinkFailures = stats.Failures
	rep.BreakerTrips = sys.Cache.Link().Breaker().Trips()
	for _, wd := range sys.Watchdogs {
		rep.AgentRestarts += wd.Agent().Restarts()
	}
	rep.Injected = inj.Stats()
	rep.SLO = renderSLO(sys.Cache.SLO().Snapshot())
	return rep, nil
}

// renderSLO formats an SLO snapshot as the report's currency-SLO section.
// The text is fully deterministic for a seeded run: every number derives
// from the virtual clock and guard-decision counts.
func renderSLO(snap obs.SLOSnapshot) string {
	var b strings.Builder
	fmt.Fprintf(&b, "target %.1f%% within bound over a window of %d serves\n",
		snap.Target*100, snap.Window)
	for _, r := range snap.Regions {
		fmt.Fprintf(&b, "region %d: within bound %.2f%% (%d/%d, %d degraded), error budget %.0f%% left\n",
			r.Region, r.WithinRatio*100, r.Within, r.Observations, r.Degraded, r.ErrorBudget*100)
		fmt.Fprintf(&b, "region %d: served staleness p50/p95/p99/max %s / %s / %s / %s\n",
			r.Region,
			time.Duration(r.StalenessP50NS), time.Duration(r.StalenessP95NS),
			time.Duration(r.StalenessP99NS), time.Duration(r.StalenessMaxNS))
	}
	return b.String()
}

// percentileDur returns the p-quantile (nearest-rank) of samples; zero for
// an empty set.
func percentileDur(samples []time.Duration, p float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(p*float64(len(s))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// RunChaosReport runs the default chaos workload and prints the report.
func RunChaosReport(w io.Writer, cfg ChaosConfig) error {
	rep, err := RunChaos(cfg)
	if err != nil {
		return err
	}
	section(w, "Chaos: availability under link faults (serve-local degradation)")
	fmt.Fprintf(w, "queries                 %d\n", rep.Queries)
	fmt.Fprintf(w, "availability            %.2f%% (%d answered, %d failed)\n",
		rep.Availability*100, rep.Answered, rep.Failed)
	fmt.Fprintf(w, "answered local/degraded/remote   %d / %d / %d\n",
		rep.Local, rep.Degraded, rep.Remote)
	fmt.Fprintf(w, "served staleness p50/p95/p99/max %s / %s / %s / %s\n",
		rep.StalenessP50, rep.StalenessP95, rep.StalenessP99, rep.StalenessMax)
	fmt.Fprintf(w, "link retries/failures   %d / %d\n", rep.Retries, rep.LinkFailures)
	fmt.Fprintf(w, "breaker trips           %d\n", rep.BreakerTrips)
	fmt.Fprintf(w, "agent restarts          %d\n", rep.AgentRestarts)
	fmt.Fprintf(w, "injected                %d transient, %d partition denial(s), %d stalled wake-up(s)\n",
		rep.Injected.Transients, rep.Injected.PartitionDenials, rep.Injected.Stalls)
	section(w, "Currency SLO (sliding window of guard decisions)")
	fmt.Fprint(w, rep.SLO)
	return nil
}
