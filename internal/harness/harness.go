// Package harness regenerates the paper's evaluation (Section 4): every
// table and figure has a runner that prints the same rows or series the
// paper reports.
//
// Scale note: the paper ran TPC-D scale 1.0 (150,000 customers, 1,500,000
// orders) on a 2004 SQL Server testbed. The harness loads a physically
// smaller database but scales the cache's *shadow statistics* up to the
// paper's cardinalities, so the optimizer faces exactly the paper's
// cost-model decisions while execution stays laptop-sized. Absolute times
// therefore differ; plan choices, crossovers and curve shapes are the
// reproduction targets.
package harness

import (
	"fmt"
	"io"

	"relaxedcc/internal/catalog"
	"relaxedcc/internal/core"
	"relaxedcc/internal/opt"
	"relaxedcc/internal/tpcd"
)

// Config tunes experiment scale and effort.
type Config struct {
	// ScaleFactor is the physical TPC-D scale (1.0 = paper size).
	ScaleFactor float64
	// Seed for data generation.
	Seed int64
	// Reps is how many times timed queries are executed per measurement.
	Reps int
	// ScaleStatsToPaper scales shadow statistics to the paper's scale-1.0
	// cardinalities so optimizer decisions match the paper's setting.
	ScaleStatsToPaper bool
	// Extras also runs the extension experiments (offload, region tuning)
	// beyond the paper's tables and figures.
	Extras bool
	// Metrics appends a snapshot of the cache's metrics registry (guard
	// picks, staleness gauges, replication throughput) to the report.
	Metrics bool
}

// DefaultConfig is sized for a laptop run of every experiment.
func DefaultConfig() Config {
	return Config{ScaleFactor: 0.02, Seed: 2004, Reps: 200, ScaleStatsToPaper: true}
}

// NewSystem builds the standard experimental system for the config.
func NewSystem(cfg Config) (*core.System, error) {
	sys, err := tpcd.NewLoadedSystem(tpcd.Config{ScaleFactor: cfg.ScaleFactor, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	if cfg.ScaleStatsToPaper {
		ScaleStatsToPaper(sys, cfg.ScaleFactor)
	}
	return sys, nil
}

// ScaleStatsToPaper multiplies the cache's shadow statistics so the
// optimizer sees the paper's scale-1.0 cardinalities regardless of the
// physically loaded scale.
func ScaleStatsToPaper(sys *core.System, physicalScale float64) {
	if physicalScale <= 0 || physicalScale == 1.0 {
		return
	}
	factor := 1.0 / physicalScale
	cat := sys.Cache.Catalog()
	for _, name := range []string{"Customer", "Orders"} {
		t := cat.Table(name)
		if t == nil {
			continue
		}
		scaleTableStats(t.Stats, factor)
		for _, v := range cat.ViewsOf(name) {
			if vd := sys.Cache.ViewData(v.Name); vd != nil {
				scaleTableStats(vd.Def().Stats, factor)
			}
		}
	}
}

func scaleTableStats(s *catalog.TableStats, factor float64) {
	rows := int64(float64(s.Rows()) * factor)
	cols := map[string]*catalog.ColumnStats{}
	for name := range s.Columns {
		cs := s.Column(name)
		cp := *cs
		cp.NDV = int64(float64(cs.NDV) * factor)
		if cp.NDV > rows {
			cp.NDV = rows
		}
		if cs.NDV <= 32 { // low-cardinality columns (e.g. nation) do not grow
			cp.NDV = cs.NDV
		}
		cp.NullCount = int64(float64(cs.NullCount) * factor)
		cp.Histogram = make([]int64, len(cs.Histogram))
		for i, h := range cs.Histogram {
			cp.Histogram[i] = int64(float64(h) * factor)
		}
		cols[name] = &cp
	}
	s.Set(rows, s.RowBytes(), cols)
}

// PlanNumber classifies a plan into the paper's Figure 4.1 plan numbers:
// 1 = whole query remote; 2 = local join of remote fetches; 4 = mixed
// (some leaves local, some remote); 5 = all leaves local (guarded).
// Single-table guarded-local plans report 5 as well.
func PlanNumber(p *opt.Plan) int {
	switch {
	case p.Shape == "Remote":
		return 1
	case p.LocalLeaves == 0:
		return 2
	case p.RemoteLeaves > 0:
		return 4
	default:
		return 5
	}
}

// PlanLabel renders the paper-style plan description.
func PlanLabel(p *opt.Plan) string {
	return fmt.Sprintf("plan %d: %s", PlanNumber(p), p.Shape)
}

// section prints a table header.
func section(w io.Writer, title string) {
	fmt.Fprintf(w, "\n=== %s ===\n", title)
}
