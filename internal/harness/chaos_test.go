package harness

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"relaxedcc/internal/core"
)

// TestChaosAvailability is the headline chaos property: with serve-local
// degradation the cache answers every query of a run whose timeline is one
// third partition, 10% transient errors, and a wedged agent — and the
// fault machinery (retries, breaker, watchdog) all actually fired.
func TestChaosAvailability(t *testing.T) {
	rep, err := RunChaos(DefaultChaosConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Queries == 0 {
		t.Fatal("chaos run issued no queries")
	}
	if rep.Availability != 1.0 {
		t.Errorf("availability = %.4f (%d/%d answered), want 1.0",
			rep.Availability, rep.Answered, rep.Queries)
	}
	if rep.Degraded == 0 {
		t.Error("no degraded reads: the partition never forced serve-local")
	}
	if rep.Remote == 0 {
		t.Error("no remote reads: the guard never chose the remote branch")
	}
	if rep.Retries == 0 {
		t.Error("no link retries despite a 10% transient error rate")
	}
	if rep.BreakerTrips == 0 {
		t.Error("breaker never tripped despite a 25s partition")
	}
	if rep.AgentRestarts == 0 {
		t.Error("watchdog never restarted the wedged agent")
	}
	if rep.Injected.PartitionDenials == 0 || rep.Injected.Transients == 0 || rep.Injected.Stalls == 0 {
		t.Errorf("injector idle: %+v", rep.Injected)
	}
	if rep.StalenessMax <= 0 {
		t.Error("served-staleness percentiles empty: no local answers recorded")
	}
	if rep.StalenessP50 > rep.StalenessP95 || rep.StalenessP95 > rep.StalenessMax {
		t.Errorf("percentiles not monotone: p50=%s p95=%s max=%s",
			rep.StalenessP50, rep.StalenessP95, rep.StalenessMax)
	}
}

// TestChaosDeterministic replays the same config twice and expects
// identical reports — the property that makes chaos tests CI-safe.
func TestChaosDeterministic(t *testing.T) {
	cfg := DefaultChaosConfig()
	cfg.Duration = 60 * time.Second
	a, err := RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Errorf("same seed, different runs:\n a=%+v\n b=%+v", a, b)
	}
}

// TestChaosSLOSection asserts the report carries a rendered currency-SLO
// section that reflects the run: degraded serves must have spent budget.
func TestChaosSLOSection(t *testing.T) {
	cfg := DefaultChaosConfig()
	cfg.Duration = 60 * time.Second
	rep, err := RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SLO == "" {
		t.Fatal("report has no SLO section")
	}
	for _, want := range []string{"region 1:", "within bound", "error budget", "degraded"} {
		if !strings.Contains(rep.SLO, want) {
			t.Errorf("SLO section missing %q:\n%s", want, rep.SLO)
		}
	}
}

// TestChaosSLOSnapshotDeterministic runs the same seeded chaos config twice,
// scraping /slo through each run's own ObsHandler (captured via OnSystem),
// and expects byte-identical JSON — the ops surface inherits the virtual
// clock's determinism.
func TestChaosSLOSnapshotDeterministic(t *testing.T) {
	cfg := DefaultChaosConfig()
	cfg.Duration = 60 * time.Second
	scrape := func() (string, string) {
		var sys *core.System
		c := cfg
		c.OnSystem = func(s *core.System) { sys = s }
		if _, err := RunChaos(c); err != nil {
			t.Fatal(err)
		}
		if sys == nil {
			t.Fatal("OnSystem never ran")
		}
		h := sys.ObsHandler()
		get := func(url string) string {
			rr := httptest.NewRecorder()
			h.ServeHTTP(rr, httptest.NewRequest("GET", url, nil))
			if rr.Code != 200 {
				t.Fatalf("GET %s = %d", url, rr.Code)
			}
			return rr.Body.String()
		}
		return get("/slo"), get("/regions")
	}
	slo1, regions1 := scrape()
	slo2, regions2 := scrape()
	if slo1 != slo2 {
		t.Errorf("/slo differs across same-seed runs:\n%s\nvs\n%s", slo1, slo2)
	}
	if regions1 != regions2 {
		t.Errorf("/regions differs across same-seed runs:\n%s\nvs\n%s", regions1, regions2)
	}
	if !strings.Contains(slo1, `"regions"`) || !strings.Contains(slo1, `"error_budget"`) {
		t.Errorf("/slo payload missing expected fields:\n%s", slo1)
	}
}

func TestPercentileDur(t *testing.T) {
	s := []time.Duration{4, 1, 3, 2}
	if got := percentileDur(s, 0.5); got != 2 {
		t.Errorf("p50 = %d, want 2", got)
	}
	if got := percentileDur(s, 1.0); got != 4 {
		t.Errorf("max = %d, want 4", got)
	}
	if got := percentileDur(nil, 0.5); got != 0 {
		t.Errorf("empty = %d, want 0", got)
	}
}
