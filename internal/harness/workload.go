package harness

import (
	"fmt"
	"io"
	"time"

	"relaxedcc/internal/catalog"
	"relaxedcc/internal/cc"
	"relaxedcc/internal/core"
	"relaxedcc/internal/sqltypes"
)

// WorkloadPoint is one point of a Figure 4.2 curve.
type WorkloadPoint struct {
	Bound    time.Duration
	Interval time.Duration
	Delay    time.Duration
	Analytic float64 // formula (1) from Section 3.2.4
	Measured float64 // fraction of sampled query starts that run locally
}

// measureStaleness builds a single-region system with the given propagation
// interval f and delay d and samples the region's staleness (now - local
// heartbeat timestamp) at n uniformly spread phases of the propagation
// cycle. The measured local fraction for a bound B is then the fraction of
// samples <= B — exactly the guard's decision rule.
func measureStaleness(f, d time.Duration, n int) ([]time.Duration, error) {
	sys := core.NewSystem()
	sys.MustExec("CREATE TABLE T (id BIGINT NOT NULL PRIMARY KEY, v BIGINT)")
	hb := f / 50
	if hb < 100*time.Millisecond {
		hb = 100 * time.Millisecond
	}
	if err := sys.AddRegion(&catalog.Region{
		ID: 1, Name: "R", UpdateInterval: f, UpdateDelay: d, HeartbeatInterval: hb,
	}); err != nil {
		return nil, err
	}
	if err := sys.CreateView(&catalog.View{
		Name: "t_prj", BaseTable: "T", Columns: []string{"id", "v"}, RegionID: 1,
	}); err != nil {
		return nil, err
	}
	if err := sys.Backend.LoadRows("T", []sqltypes.Row{{sqltypes.NewInt(1), sqltypes.NewInt(1)}}); err != nil {
		return nil, err
	}
	// Warm up: several full cycles (plus the delay) so heartbeats have
	// propagated even when the delay exceeds the interval.
	if err := sys.Run(3*f + 2*d + 2*time.Second); err != nil {
		return nil, err
	}
	start := sys.Clock.Now()
	samples := make([]time.Duration, 0, n)
	for k := 0; k < n; k++ {
		// One sample per cycle, sweeping the phase across the cycle.
		phase := time.Duration((float64(k) + 0.5) / float64(n) * float64(f))
		target := start.Add(time.Duration(k)*f + phase)
		if err := sys.RunTo(target); err != nil {
			return nil, err
		}
		ts, ok := sys.Cache.LastSync(1)
		if !ok {
			return nil, fmt.Errorf("harness: region never synchronized")
		}
		samples = append(samples, sys.Clock.Now().Sub(ts))
	}
	return samples, nil
}

func localFraction(samples []time.Duration, bound time.Duration) float64 {
	n := 0
	for _, s := range samples {
		if s <= bound {
			n++
		}
	}
	return float64(n) / float64(len(samples))
}

// WorkloadVsBound computes Figure 4.2(a): local workload fraction as the
// currency bound grows, for f=100s and each delay.
func WorkloadVsBound(delays []time.Duration, bounds []time.Duration, samples int) (map[time.Duration][]WorkloadPoint, error) {
	const f = 100 * time.Second
	out := map[time.Duration][]WorkloadPoint{}
	for _, d := range delays {
		st, err := measureStaleness(f, d, samples)
		if err != nil {
			return nil, err
		}
		for _, b := range bounds {
			out[d] = append(out[d], WorkloadPoint{
				Bound:    b,
				Interval: f,
				Delay:    d,
				Analytic: cc.LocalProbability(b, d, f),
				Measured: localFraction(st, b),
			})
		}
	}
	return out, nil
}

// WorkloadVsInterval computes Figure 4.2(b): local workload fraction as the
// refresh interval grows, for B=10s and each delay.
func WorkloadVsInterval(delays []time.Duration, intervals []time.Duration, samples int) (map[time.Duration][]WorkloadPoint, error) {
	const b = 10 * time.Second
	out := map[time.Duration][]WorkloadPoint{}
	for _, d := range delays {
		for _, f := range intervals {
			st, err := measureStaleness(f, d, samples)
			if err != nil {
				return nil, err
			}
			out[d] = append(out[d], WorkloadPoint{
				Bound:    b,
				Interval: f,
				Delay:    d,
				Analytic: cc.LocalProbability(b, d, f),
				Measured: localFraction(st, b),
			})
		}
	}
	return out, nil
}

// MeasureWorkloadByExecution cross-validates the staleness-sampling method
// with real query executions: it runs n point queries with the given bound,
// one per propagation cycle at sweeping phases, and counts how many were
// actually answered from the local view (by the currency guard's decision,
// not by staleness arithmetic).
func MeasureWorkloadByExecution(f, d, bound time.Duration, n int) (float64, error) {
	sys := core.NewSystem()
	sys.MustExec("CREATE TABLE T (id BIGINT NOT NULL PRIMARY KEY, v BIGINT)")
	hb := f / 50
	if hb < 100*time.Millisecond {
		hb = 100 * time.Millisecond
	}
	if err := sys.AddRegion(&catalog.Region{
		ID: 1, Name: "R", UpdateInterval: f, UpdateDelay: d, HeartbeatInterval: hb,
	}); err != nil {
		return 0, err
	}
	if err := sys.CreateView(&catalog.View{
		Name: "t_prj", BaseTable: "T", Columns: []string{"id", "v"}, RegionID: 1,
	}); err != nil {
		return 0, err
	}
	if err := sys.Backend.LoadRows("T", []sqltypes.Row{{sqltypes.NewInt(1), sqltypes.NewInt(1)}}); err != nil {
		return 0, err
	}
	sys.Analyze()
	if err := sys.Run(3*f + 2*d + 2*time.Second); err != nil {
		return 0, err
	}
	q := fmt.Sprintf("SELECT v FROM T WHERE id = 1 CURRENCY %d MS ON (T)", bound.Milliseconds())
	start := sys.Clock.Now()
	local := 0
	for k := 0; k < n; k++ {
		phase := time.Duration((float64(k) + 0.5) / float64(n) * float64(f))
		if err := sys.RunTo(start.Add(time.Duration(k)*f + phase)); err != nil {
			return 0, err
		}
		res, err := sys.Query(q)
		if err != nil {
			return 0, err
		}
		if len(res.LocalViews) > 0 {
			local++
		}
	}
	return float64(local) / float64(n), nil
}

// RunWorkloadShift prints both panels of Figure 4.2.
func RunWorkloadShift(w io.Writer, samples int) error {
	section(w, "Figure 4.2(a): local workload %% vs currency bound (f=100s)")
	delays := []time.Duration{1 * time.Second, 5 * time.Second, 10 * time.Second}
	var bounds []time.Duration
	for b := 0; b <= 120; b += 10 {
		bounds = append(bounds, time.Duration(b)*time.Second)
	}
	byBound, err := WorkloadVsBound(delays, bounds, samples)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-8s", "bound")
	for _, d := range delays {
		fmt.Fprintf(w, "  d=%-3.0fs(ana/meas)", d.Seconds())
	}
	fmt.Fprintln(w)
	for i := range bounds {
		fmt.Fprintf(w, "%-8.0f", bounds[i].Seconds())
		for _, d := range delays {
			p := byBound[d][i]
			fmt.Fprintf(w, "  %5.1f%% / %5.1f%%", p.Analytic*100, p.Measured*100)
		}
		fmt.Fprintln(w)
	}

	section(w, "Figure 4.2(b): local workload %% vs refresh interval (B=10s)")
	delaysB := []time.Duration{1 * time.Second, 5 * time.Second, 8 * time.Second}
	var intervals []time.Duration
	for _, f := range []int{2, 5, 10, 20, 40, 60, 80, 100} {
		intervals = append(intervals, time.Duration(f)*time.Second)
	}
	byInterval, err := WorkloadVsInterval(delaysB, intervals, samples)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-10s", "interval")
	for _, d := range delaysB {
		fmt.Fprintf(w, "  d=%-3.0fs(ana/meas)", d.Seconds())
	}
	fmt.Fprintln(w)
	for i := range intervals {
		fmt.Fprintf(w, "%-10.0f", intervals[i].Seconds())
		for _, d := range delaysB {
			p := byInterval[d][i]
			fmt.Fprintf(w, "  %5.1f%% / %5.1f%%", p.Analytic*100, p.Measured*100)
		}
		fmt.Fprintln(w)
	}
	return nil
}
