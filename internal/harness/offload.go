package harness

import (
	"fmt"
	"io"
	"time"

	"relaxedcc/internal/core"
	"relaxedcc/internal/tpcd"
)

// OffloadPoint is one row of the back-end offload experiment.
type OffloadPoint struct {
	Bound time.Duration
	// LocalFraction of queries answered without touching the back end.
	LocalFraction float64
	// BackendQueries actually shipped across the link.
	BackendQueries int64
	// BytesShipped across the link.
	BytesShipped int64
}

// MeasureOffload quantifies the paper's motivation — "to reduce the query
// load, we replicate part of the database to other database servers that
// act as caches" — by running the same point-lookup workload at increasing
// currency bounds and recording how much traffic still reaches the back
// end. Queries are spread across the CR1 propagation cycle.
func MeasureOffload(sys *core.System, bounds []time.Duration, queriesPerBound int) ([]OffloadPoint, error) {
	region := sys.Cache.Catalog().Region(tpcd.RegionCR1)
	if region == nil {
		return nil, fmt.Errorf("harness: system lacks the standard CR1 region")
	}
	f := region.UpdateInterval
	var out []OffloadPoint
	for _, b := range bounds {
		sys.Cache.Link().ResetStats()
		local := 0
		start := sys.Clock.Now()
		for k := 0; k < queriesPerBound; k++ {
			phase := time.Duration((float64(k) + 0.5) / float64(queriesPerBound) * float64(f))
			if err := sys.RunTo(start.Add(time.Duration(k)*f + phase)); err != nil {
				return nil, err
			}
			key := int64(1 + k%100)
			clause := ""
			if b > 0 {
				clause = fmt.Sprintf("CURRENCY %d MS ON (Customer)", b.Milliseconds())
			}
			res, err := sys.Query(tpcd.PointQuery(key, clause))
			if err != nil {
				return nil, err
			}
			if res.RemoteQueries == 0 {
				local++
			}
		}
		st := sys.Cache.Link().Stats()
		out = append(out, OffloadPoint{
			Bound:          b,
			LocalFraction:  float64(local) / float64(queriesPerBound),
			BackendQueries: st.Queries,
			BytesShipped:   st.Bytes,
		})
	}
	return out, nil
}

// RunOffload prints the offload experiment.
func RunOffload(w io.Writer, sys *core.System, queriesPerBound int) error {
	section(w, "Back-end offload vs. currency bound (extension; CR1: f=15s, d=5s)")
	bounds := []time.Duration{
		0, 5 * time.Second, 10 * time.Second, 15 * time.Second,
		20 * time.Second, 30 * time.Second, 60 * time.Second,
	}
	pts, err := MeasureOffload(sys, bounds, queriesPerBound)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-10s %10s %16s %14s\n", "bound", "local %", "backend queries", "bytes shipped")
	for _, p := range pts {
		fmt.Fprintf(w, "%-10s %9.1f%% %16d %14d\n",
			p.Bound, p.LocalFraction*100, p.BackendQueries, p.BytesShipped)
	}
	return nil
}
