package harness

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"relaxedcc/internal/core"
	"relaxedcc/internal/tuner"
)

// shiftTestConfig is a compact shift scenario (about half the default run)
// that still burns and fully recovers the budget; tests use it to keep the
// suite fast under -race.
func shiftTestConfig() ShiftConfig {
	cfg := DefaultShiftConfig()
	cfg.Duration = 160 * time.Second
	cfg.ShiftAt = 60 * time.Second
	cfg.UpdateInterval = 30 * time.Second
	cfg.SLOWindow = 128
	cfg.Tuner = tuner.LoopConfig{Cadence: 10 * time.Second}
	return cfg
}

// TestShiftRecoveryWithAutotune is the acceptance property of the closed
// loop: after the bound-mix shift (with the remote fall-back partitioned
// away), the region's SLO error budget recovers to at least its pre-shift
// level with zero manual interval changes — purely from the tuner's
// observed-workload retunes.
func TestShiftRecoveryWithAutotune(t *testing.T) {
	cfg := DefaultShiftConfig()
	cfg.Autotune = true
	rep, err := RunShift(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Recovered {
		t.Fatalf("budget never recovered: final %.3f vs pre-shift %.3f\n%s",
			rep.FinalBudget, rep.PreShiftBudget, rep.Tuner)
	}
	if rep.FinalBudget < rep.PreShiftBudget {
		t.Errorf("final budget %.3f below pre-shift %.3f", rep.FinalBudget, rep.PreShiftBudget)
	}
	if rep.Retunes < 2 {
		t.Errorf("retunes = %d, want >= 2 (one down-shift round cannot cross a 4x step cap)", rep.Retunes)
	}
	if rep.FinalInterval >= cfg.UpdateInterval {
		t.Errorf("final interval %s not below the configured %s", rep.FinalInterval, cfg.UpdateInterval)
	}
	if rep.FinalInterval+cfg.UpdateDelay+rep.FinalHeartbeat > cfg.TightBound {
		t.Errorf("final cadence %s+%s+%s cannot hold the %s bound",
			rep.FinalInterval, cfg.UpdateDelay, rep.FinalHeartbeat, cfg.TightBound)
	}
	if rep.Degraded == 0 {
		t.Error("no degraded serves: the shift never hurt, so recovery proves nothing")
	}
	for _, want := range []string{"applied", "held:dead-band", "budget recovery:", "region 1:"} {
		if !strings.Contains(rep.Tuner, want) {
			t.Errorf("tuner section missing %q:\n%s", want, rep.Tuner)
		}
	}
}

// TestShiftNoRecoveryWithoutAutotune is the control arm: the same seed with
// the loop disabled leaves the interval at its configured value and the
// budget exhausted.
func TestShiftNoRecoveryWithoutAutotune(t *testing.T) {
	cfg := DefaultShiftConfig()
	cfg.Autotune = false
	rep, err := RunShift(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Recovered {
		t.Error("budget recovered without autotuning; the scenario no longer needs the loop")
	}
	if rep.FinalBudget != 0 {
		t.Errorf("final budget %.3f, want 0 (exhausted)", rep.FinalBudget)
	}
	if rep.Retunes != 0 || rep.Held != 0 {
		t.Errorf("tuner activity (%d retunes, %d held) with autotuning off", rep.Retunes, rep.Held)
	}
	if rep.FinalInterval != cfg.UpdateInterval {
		t.Errorf("interval moved to %s with autotuning off", rep.FinalInterval)
	}
	if rep.Tuner != "" {
		t.Errorf("tuner section rendered with autotuning off:\n%s", rep.Tuner)
	}
}

// TestShiftDeterministic replays both arms from the same seed and expects
// identical reports — including the rendered tuner timeline byte for byte.
func TestShiftDeterministic(t *testing.T) {
	for _, autotune := range []bool{true, false} {
		cfg := shiftTestConfig()
		cfg.Autotune = autotune
		a, err := RunShift(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunShift(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if *a != *b {
			t.Errorf("autotune=%v: same seed, different runs:\n a=%+v\n b=%+v", autotune, a, b)
		}
	}
}

// TestShiftTunerEndpointDeterministic scrapes /tuner (and /regions, which
// carries the retuned cadence) through each run's own ObsHandler and
// expects byte-identical JSON across same-seed runs, with the decision
// timeline present.
func TestShiftTunerEndpointDeterministic(t *testing.T) {
	cfg := shiftTestConfig()
	cfg.Autotune = true
	scrape := func() (string, string) {
		var sys *core.System
		c := cfg
		c.OnSystem = func(s *core.System) { sys = s }
		if _, err := RunShift(c); err != nil {
			t.Fatal(err)
		}
		if sys == nil {
			t.Fatal("OnSystem never ran")
		}
		h := sys.ObsHandler()
		get := func(url string) string {
			rr := httptest.NewRecorder()
			h.ServeHTTP(rr, httptest.NewRequest("GET", url, nil))
			if rr.Code != 200 {
				t.Fatalf("GET %s = %d", url, rr.Code)
			}
			return rr.Body.String()
		}
		return get("/tuner"), get("/regions")
	}
	tuner1, regions1 := scrape()
	tuner2, regions2 := scrape()
	if tuner1 != tuner2 {
		t.Errorf("/tuner differs across same-seed runs:\n%s\nvs\n%s", tuner1, tuner2)
	}
	if regions1 != regions2 {
		t.Errorf("/regions differs across same-seed runs:\n%s\nvs\n%s", regions1, regions2)
	}
	for _, want := range []string{`"decisions"`, `"reason"`, `"applied_interval_ns"`, `"cadence_ns"`} {
		if !strings.Contains(tuner1, want) {
			t.Errorf("/tuner payload missing %s:\n%s", want, tuner1)
		}
	}
}
