package harness

import (
	"fmt"
	"io"
	"strings"
	"time"

	"relaxedcc/internal/catalog"
	"relaxedcc/internal/core"
	"relaxedcc/internal/fault"
	"relaxedcc/internal/mtcache"
	"relaxedcc/internal/remote"
	"relaxedcc/internal/sqltypes"
	"relaxedcc/internal/tuner"
)

// ShiftConfig scripts the workload bound-mix shift scenario: a single-region
// cache starts under loose currency bounds (the configured 60s refresh
// interval is plenty), then the workload flips to tight bounds at the same
// moment a partition cuts the remote fall-back. Without retuning, every
// query degrades and the region's SLO error budget stays exhausted; with
// the autotuning loop enabled, the observer sees the new bound mix, the
// loop steps the refresh interval down, and the budget recovers — with zero
// manual interval changes. Everything is driven by the virtual clock and
// one seed, so the same config replays the same run byte for byte.
type ShiftConfig struct {
	Seed int64
	// Duration is the total measured virtual time; ShiftAt is the offset of
	// the bound-mix flip (and partition start).
	Duration time.Duration
	ShiftAt  time.Duration
	// QueryInterval is the virtual time between queries.
	QueryInterval time.Duration

	// Region cadence as configured — the baseline the autotuner retunes.
	UpdateInterval    time.Duration
	UpdateDelay       time.Duration
	HeartbeatInterval time.Duration

	// LooseBound is the pre-shift currency bound (comfortably above the
	// configured staleness), TightBound the post-shift one (far below it).
	LooseBound time.Duration
	TightBound time.Duration

	// SLO window sizing; the window is in serves, so it also sets how much
	// clean traffic a recovery needs (window/rate seconds).
	SLOTarget float64
	SLOWindow int

	// Link faults: base latency plus jitter on every remote call. The
	// partition itself always runs from ShiftAt to the end of the run.
	Latency       time.Duration
	LatencyJitter time.Duration

	// Autotune enables the closed loop; Tuner parameterizes it (zero fields
	// select the tuner.LoopConfig defaults).
	Autotune bool
	Tuner    tuner.LoopConfig

	// OnSystem, if set, receives the fully wired system before any virtual
	// time passes (same contract as ChaosConfig.OnSystem).
	OnSystem func(*core.System)
}

// DefaultShiftConfig sizes the scenario so the budget burns for several
// observation windows and still has room to recover fully: a 5-virtual-
// minute run, the shift at 100s, a 60s configured interval against a 4s
// post-shift bound, and an SLO window one fifth of the post-shift traffic.
func DefaultShiftConfig() ShiftConfig {
	return ShiftConfig{
		Seed:              2004,
		Duration:          300 * time.Second,
		ShiftAt:           100 * time.Second,
		QueryInterval:     250 * time.Millisecond,
		UpdateInterval:    60 * time.Second,
		UpdateDelay:       500 * time.Millisecond,
		HeartbeatInterval: 1 * time.Second,
		LooseBound:        300 * time.Second,
		TightBound:        4 * time.Second,
		SLOTarget:         0.99,
		SLOWindow:         256,
		Latency:           1 * time.Millisecond,
		LatencyJitter:     1 * time.Millisecond,
		Tuner:             tuner.LoopConfig{Cadence: 15 * time.Second},
	}
}

// ShiftReport is the outcome of one shift run. All fields are values (the
// sections are pre-rendered strings), so reports compare with == and the
// byte-identical determinism guarantee is directly checkable.
type ShiftReport struct {
	Autotune bool

	Queries  int
	Answered int
	Failed   int
	Local    int
	Degraded int
	Remote   int

	// PreShiftBudget is the region's SLO error budget the moment the shift
	// happens; FinalBudget is the budget when the run ends. Recovered means
	// the budget returned to at least the pre-shift level after having
	// dropped below it, RecoveryAfter how long past the shift that took.
	PreShiftBudget float64
	FinalBudget    float64
	Recovered      bool
	RecoveryAfter  time.Duration

	// Post-shift serve quality: how many queries after the shift were
	// within bound (degraded serves never are; remote serves always are;
	// local serves iff staleness fits the tight bound).
	PostShiftQueries     int
	PostShiftWithin      int
	PostShiftWithinRatio float64

	// Tuner activity (zero when autotuning is off).
	Retunes        int64
	Held           int64
	FinalInterval  time.Duration
	FinalHeartbeat time.Duration

	// Tuner is the pre-rendered per-region tuner section (decision timeline
	// with offsets from the measurement start, plus budget recovery time);
	// SLO is the pre-rendered currency-SLO section.
	Tuner string
	SLO   string
}

// RunShift executes the scripted workload-shift run.
func RunShift(cfg ShiftConfig) (*ShiftReport, error) {
	sys := core.NewSystem()
	sys.MustExec("CREATE TABLE T (id BIGINT NOT NULL PRIMARY KEY, v BIGINT)")
	if err := sys.AddRegion(&catalog.Region{
		ID: 1, Name: "R",
		UpdateInterval:    cfg.UpdateInterval,
		UpdateDelay:       cfg.UpdateDelay,
		HeartbeatInterval: cfg.HeartbeatInterval,
	}); err != nil {
		return nil, err
	}
	if err := sys.CreateView(&catalog.View{
		Name: "t_prj", BaseTable: "T", Columns: []string{"id", "v"}, RegionID: 1,
	}); err != nil {
		return nil, err
	}
	if err := sys.Backend.LoadRows("T", []sqltypes.Row{{sqltypes.NewInt(1), sqltypes.NewInt(1)}}); err != nil {
		return nil, err
	}
	sys.Analyze()
	sys.Cache.ConfigureSLO(cfg.SLOTarget, cfg.SLOWindow)

	inj := fault.New(cfg.Seed)
	inj.SetLatency(cfg.Latency, cfg.LatencyJitter)
	sys.InjectFaults(inj)
	sys.EnableResilience(remote.Policy{})
	if cfg.Autotune {
		sys.EnableAutotune(cfg.Tuner)
	}
	if cfg.OnSystem != nil {
		cfg.OnSystem(sys)
	}

	// Warm up one full propagation cycle so the region has synchronized at
	// least once before measurement starts.
	if err := sys.Run(cfg.UpdateInterval + cfg.UpdateDelay + 2*cfg.HeartbeatInterval); err != nil {
		return nil, err
	}

	sess := sys.Cache.NewSession()
	sess.Action = mtcache.ActionServeLocal
	loose := fmt.Sprintf("SELECT v FROM T WHERE id = 1 CURRENCY %d MS ON (T)", cfg.LooseBound.Milliseconds())
	tight := fmt.Sprintf("SELECT v FROM T WHERE id = 1 CURRENCY %d MS ON (T)", cfg.TightBound.Milliseconds())

	start := sys.Clock.Now()
	rep := &ShiftReport{Autotune: cfg.Autotune, PreShiftBudget: 1}
	budget := func() float64 {
		snap := sys.Cache.SLO().Snapshot()
		for _, r := range snap.Regions {
			if r.Region == 1 {
				return r.ErrorBudget
			}
		}
		return 1
	}

	shifted, burned := false, false
	for off := time.Duration(0); off < cfg.Duration; off += cfg.QueryInterval {
		if err := sys.RunTo(start.Add(off)); err != nil {
			return nil, err
		}
		if !shifted && off >= cfg.ShiftAt {
			shifted = true
			rep.PreShiftBudget = budget()
			inj.PartitionUntil(start.Add(cfg.Duration))
		}
		q := loose
		if shifted {
			q = tight
		}

		rep.Queries++
		res, err := sess.Query(q)
		if err != nil {
			rep.Failed++
			continue
		}
		rep.Answered++
		within := true
		switch {
		case res.Degraded:
			rep.Degraded++
			within = false
		case len(res.LocalViews) > 0:
			rep.Local++
			if ts, ok := sys.Cache.LastSync(1); ok {
				within = sys.Clock.Now().Sub(ts) <= cfg.TightBound
			}
		default:
			rep.Remote++
		}
		if shifted {
			rep.PostShiftQueries++
			if within {
				rep.PostShiftWithin++
			}
			b := budget()
			if b < rep.PreShiftBudget {
				burned = true
			}
			if burned && !rep.Recovered && b >= rep.PreShiftBudget {
				rep.Recovered = true
				rep.RecoveryAfter = off - cfg.ShiftAt
			}
		}
	}

	rep.FinalBudget = budget()
	if rep.PostShiftQueries > 0 {
		rep.PostShiftWithinRatio = float64(rep.PostShiftWithin) / float64(rep.PostShiftQueries)
	}
	if a := sys.Cache.Agent(1); a != nil {
		rep.FinalInterval = a.Interval()
		rep.FinalHeartbeat = a.HeartbeatInterval()
	}
	if loop := sys.Tuner(); loop != nil {
		snap := loop.Snapshot()
		for _, r := range snap.Regions {
			rep.Retunes += r.Retunes
			rep.Held += r.Held
		}
		rep.Tuner = renderTunerTimeline(snap, start, rep)
	}
	rep.SLO = renderSLO(sys.Cache.SLO().Snapshot())
	return rep, nil
}

// renderTunerTimeline formats a tuner snapshot as the report's per-region
// section: effective state, budget recovery time, and the full decision
// timeline with offsets from the measurement start. Fully deterministic for
// a seeded run.
func renderTunerTimeline(snap tuner.Snapshot, origin time.Time, rep *ShiftReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "loop: cadence %s, dead-band %.0f%%, max step %.0fx, min samples %d\n",
		time.Duration(snap.CadenceNS), snap.DeadBand*100, snap.MaxStep, snap.MinSamples)
	for _, r := range snap.Regions {
		fmt.Fprintf(&b, "region %d: interval %s, heartbeat %s, delay %s, %d retunes, %d held\n",
			r.Region, time.Duration(r.IntervalNS), time.Duration(r.HeartbeatNS),
			time.Duration(r.DelayNS), r.Retunes, r.Held)
	}
	if rep != nil {
		if rep.Recovered {
			fmt.Fprintf(&b, "budget recovery: %s after the shift (to %.2f)\n",
				rep.RecoveryAfter, rep.PreShiftBudget)
		} else {
			fmt.Fprintf(&b, "budget recovery: none within the run\n")
		}
	}
	for _, d := range snap.Decisions {
		off := time.Unix(0, d.AtNS).Sub(origin)
		if d.Applied {
			fmt.Fprintf(&b, "  [%+v] region %d: %s -> %s (solved %s, hb %s, qps %.1f, local %.0f%%, %s)\n",
				off, d.Region,
				time.Duration(d.PrevIntervalNS), time.Duration(d.AppliedIntervalNS),
				time.Duration(d.SolvedIntervalNS), time.Duration(d.HeartbeatNS),
				d.QueriesPerSecond, d.LocalRatio*100, d.Reason)
		} else {
			fmt.Fprintf(&b, "  [%+v] region %d: %s (interval %s, qps %.1f, local %.0f%%)\n",
				off, d.Region, d.Reason,
				time.Duration(d.PrevIntervalNS), d.QueriesPerSecond, d.LocalRatio*100)
		}
	}
	return b.String()
}

// RenderTuner formats a tuner snapshot with decision offsets from origin —
// the report renderer, exported for the CLIs' \tuner views.
func RenderTuner(w io.Writer, snap tuner.Snapshot, origin time.Time) {
	fmt.Fprint(w, renderTunerTimeline(snap, origin, nil))
}

// RunShiftReport runs the shift scenario twice from the same seed — with
// and without autotuning — and prints the comparison plus the tuner
// decision timeline that explains the recovery. cfg.Autotune is ignored;
// cfg.OnSystem (if set) receives the autotuned arm's system.
func RunShiftReport(w io.Writer, cfg ShiftConfig) error {
	onCfg := cfg
	onCfg.Autotune = true
	offCfg := cfg
	offCfg.Autotune = false
	offCfg.OnSystem = nil
	on, err := RunShift(onCfg)
	if err != nil {
		return err
	}
	off, err := RunShift(offCfg)
	if err != nil {
		return err
	}

	section(w, "Chaos: workload bound-mix shift (closed-loop autotuning)")
	fmt.Fprintf(w, "shift at %s: bounds %s -> %s, partition until end of run\n",
		cfg.ShiftAt, cfg.LooseBound, cfg.TightBound)
	fmt.Fprintf(w, "%-32s %14s %14s\n", "", "autotune=on", "autotune=off")
	row := func(label, a, b string) { fmt.Fprintf(w, "%-32s %14s %14s\n", label, a, b) }
	row("queries", fmt.Sprintf("%d", on.Queries), fmt.Sprintf("%d", off.Queries))
	row("local/degraded/remote",
		fmt.Sprintf("%d/%d/%d", on.Local, on.Degraded, on.Remote),
		fmt.Sprintf("%d/%d/%d", off.Local, off.Degraded, off.Remote))
	row("pre-shift error budget", fmt.Sprintf("%.2f", on.PreShiftBudget), fmt.Sprintf("%.2f", off.PreShiftBudget))
	row("final error budget", fmt.Sprintf("%.2f", on.FinalBudget), fmt.Sprintf("%.2f", off.FinalBudget))
	rec := func(r *ShiftReport) string {
		if r.Recovered {
			return fmt.Sprintf("%s", r.RecoveryAfter)
		}
		return "never"
	}
	row("budget recovered after", rec(on), rec(off))
	row("post-shift within bound",
		fmt.Sprintf("%.1f%%", on.PostShiftWithinRatio*100),
		fmt.Sprintf("%.1f%%", off.PostShiftWithinRatio*100))
	row("retunes / held", fmt.Sprintf("%d/%d", on.Retunes, on.Held), fmt.Sprintf("%d/%d", off.Retunes, off.Held))
	row("final interval", on.FinalInterval.String(), off.FinalInterval.String())
	row("final heartbeat", on.FinalHeartbeat.String(), off.FinalHeartbeat.String())

	section(w, "Tuner decisions (autotune=on)")
	fmt.Fprint(w, on.Tuner)
	section(w, "Currency SLO (autotune=on)")
	fmt.Fprint(w, on.SLO)
	section(w, "Currency SLO (autotune=off)")
	fmt.Fprint(w, off.SLO)
	return nil
}
