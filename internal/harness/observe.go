package harness

import (
	"fmt"
	"io"
	"strings"

	"relaxedcc/internal/core"
)

// RunObservability executes the Table 4.2/4.3 query set once through the
// cache's full session pipeline and then dumps the metrics registry: guard
// branch picks and latency, per-region staleness gauges, replication agent
// throughput and cache activity. This is the same snapshot the /metrics
// HTTP endpoint serves.
func RunObservability(w io.Writer, sys *core.System) error {
	section(w, "Metrics registry snapshot (built-in observability)")
	for _, c := range PlanChoiceCases() {
		if _, err := sys.Query(c.SQL); err != nil {
			return fmt.Errorf("observability workload %s: %w", c.Name, err)
		}
	}
	sys.Cache.RefreshStalenessGauges()
	snap := sys.Cache.Obs().Snapshot()

	var sb strings.Builder
	snap.WriteText(&sb)
	for _, line := range strings.Split(strings.TrimRight(sb.String(), "\n"), "\n") {
		fmt.Fprintf(w, "  %s\n", line)
	}

	// Guard pick ratio across all regions, the key signal for validating
	// the optimizer's p (probability of local currency) against reality.
	var local, remoteN int64
	for key, v := range snap.Counters {
		switch {
		case strings.HasPrefix(key, "guard_local_total"):
			local += v
		case strings.HasPrefix(key, "guard_remote_total"):
			remoteN += v
		}
	}
	if total := local + remoteN; total > 0 {
		fmt.Fprintf(w, "\n  guard picks: %d local / %d remote (%.1f%% local)\n",
			local, remoteN, 100*float64(local)/float64(total))
	}
	return nil
}
