package harness

import (
	"fmt"
	"io"
	"time"

	"relaxedcc/internal/audit"
)

// RenderAudit prints the delivered-guarantee audit section of a harness
// report: the online checker's classification ledger, every retained
// violation with its evidence, and whether the offline replay of the
// recorded rings reproduces the online ledger. All numbers derive from the
// virtual clock and recorded events, so for a seeded run the section is
// byte-identical across replays (CI diffs it).
func RenderAudit(w io.Writer, a *audit.Auditor) {
	section(w, "Delivered-guarantee audit (serves checked against the formal semantics)")
	if a == nil {
		fmt.Fprintln(w, "auditor not enabled (run with -audit)")
		return
	}
	s := a.Summary()
	fmt.Fprintf(w, "reads checked           %d\n", s.ReadsChecked)
	fmt.Fprintf(w, "ok / disclosed          %d / %d\n", s.OK, s.Disclosed)
	fmt.Fprintf(w, "violations              %d (%d currency, %d consistency)\n",
		s.ViolationsTotal, s.CurrencyViolations, s.ConsistencyViolations)
	fmt.Fprintf(w, "unbounded / unchecked   %d / %d\n", s.Unbounded, s.Unchecked)
	fmt.Fprintf(w, "history recorded        %d commits, %d applies (dropped %d/%d/%d commit/read/apply)\n",
		s.Commits, s.Applies, s.DroppedCommits, s.DroppedReads, s.DroppedApplies)
	for _, v := range s.RecentViolations {
		fmt.Fprintf(w, "violation q%d [%s] %s region %d %q: bound %s, delivered %s (excess %s; guard saw %s, repl lag %s)\n",
			v.Query, v.Class, v.Object, v.Region, v.Label,
			time.Duration(v.BoundNS), time.Duration(v.DeliveredNS), time.Duration(v.ExcessNS),
			time.Duration(v.GuardStalenessNS), time.Duration(v.ReplLagNS))
	}
	rep := a.Replay()
	agree := rep.Tally == s.Tally && len(rep.RecentViolations) == len(s.RecentViolations)
	if s.DroppedCommits+s.DroppedReads+s.DroppedApplies > 0 {
		// Overwritten rings mean replay coverage is partial by construction;
		// report it as such rather than as disagreement.
		fmt.Fprintln(w, "offline replay          partial (ring drops); online ledger is authoritative")
	} else if agree {
		fmt.Fprintln(w, "offline replay          agrees with online ledger")
	} else {
		fmt.Fprintf(w, "offline replay          DISAGREES: replayed %d checked, %d violations (online %d / %d)\n",
			rep.ReadsChecked, rep.ViolationsTotal, s.ReadsChecked, s.ViolationsTotal)
	}
}
