package harness

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunObservability drives the plan-choice workload through the cache
// session and checks the metrics snapshot surfaces what the acceptance
// criteria demand: per-region staleness gauges and guard pick counters, the
// same content /metrics serves.
func TestRunObservability(t *testing.T) {
	sys, err := NewSystem(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RunObservability(&buf, sys); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`guard_local_total{region="1"}`,
		`region_staleness_ns{region="1"}`,
		`region_staleness_ns{region="2"}`,
		"guard_latency_ns_count",
		"guard_staleness_ns_p50",
		"mtcache_queries_total",
		"guard picks: ",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("observability report missing %q in:\n%s", want, out)
		}
	}
	// The workload must actually have executed guarded queries.
	if strings.Contains(out, "mtcache_queries_total 0") {
		t.Fatal("no queries recorded")
	}
}
