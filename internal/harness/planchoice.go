package harness

import (
	"fmt"
	"io"

	"relaxedcc/internal/core"
	"relaxedcc/internal/opt"
	"relaxedcc/internal/sqlparser"
	"relaxedcc/internal/tpcd"
)

// RunTable41 prints the currency-region settings (Table 4.1).
func RunTable41(w io.Writer, sys *core.System) {
	section(w, "Table 4.1: Currency region settings")
	fmt.Fprintf(w, "%-5s %-10s %-8s %s\n", "cid", "interval", "delay", "views")
	cat := sys.Cache.Catalog()
	for _, r := range cat.Regions() {
		var views string
		for _, v := range cat.Views() {
			if v.RegionID == r.ID {
				if views != "" {
					views += ", "
				}
				views += v.Name
			}
		}
		fmt.Fprintf(w, "CR%-3d %-10s %-8s %s\n", r.ID, r.UpdateInterval, r.UpdateDelay, views)
	}
}

// PlanChoiceCase is one row of the Table 4.2/4.3 experiment.
type PlanChoiceCase struct {
	Name     string
	SQL      string
	Expected int // paper plan number; 0 = no expectation
	Note     string
}

// PlanChoiceCases reconstructs the query variants of Tables 4.2/4.3 plus
// the Q6/Q7 cost-based pair. The join predicate parameter uses c_acctbal so
// result sizes track the paper's selectivities at any physical scale.
func PlanChoiceCases() []PlanChoiceCase {
	return []PlanChoiceCase{
		{
			Name:     "Q1",
			SQL:      tpcd.JoinQuery("C.c_custkey = 17", ""),
			Expected: 1,
			Note:     "no currency clause, highly selective -> whole query remote",
		},
		{
			Name:     "Q2",
			SQL:      tpcd.JoinQuery("", ""),
			Expected: 2,
			Note:     "no currency clause, join result 10x inputs -> local join of remote fetches",
		},
		{
			Name:     "Q3",
			SQL:      tpcd.JoinQuery("C.c_custkey = 17", "CURRENCY 10 ON (C, O)"),
			Expected: 1,
			Note:     "bounds satisfiable but single consistency class spans regions -> remote",
		},
		{
			Name:     "Q4",
			SQL:      tpcd.JoinQuery("C.c_acctbal >= 0", "CURRENCY 3 ON (C), 30 ON (O)"),
			Expected: 4,
			Note:     "Customer bound below its region delay -> mixed plan",
		},
		{
			Name:     "Q5",
			SQL:      tpcd.JoinQuery("C.c_acctbal >= 0", "CURRENCY 30 ON (C), 30 ON (O)"),
			Expected: 5,
			Note:     "both bounds relaxed -> both views local (guarded)",
		},
		{
			Name:     "Q6",
			SQL:      tpcd.RangeQuery(0, 3.85, "CURRENCY 10 ON (Customer)"),
			Expected: 1,
			Note:     "selective range: back-end secondary index beats local view scan",
		},
		{
			Name:     "Q7",
			SQL:      tpcd.RangeQuery(0, 1000, "CURRENCY 10 ON (Customer)"),
			Expected: 5,
			Note:     "wide range: shipping cost dominates, local view wins",
		},
	}
}

// PlanChoiceResult captures the optimizer's decision for one case.
type PlanChoiceResult struct {
	Case PlanChoiceCase
	Plan *opt.Plan
	Got  int
}

// RunPlanChoice optimizes every Table 4.2/4.3 variant and prints the chosen
// plans (Figure 4.1).
func RunPlanChoice(w io.Writer, sys *core.System) ([]PlanChoiceResult, error) {
	section(w, "Tables 4.2/4.3 + Figure 4.1: plan choice vs. C&C constraints")
	fmt.Fprintf(w, "%-4s %-8s %-10s %s\n", "q", "plan", "cost", "shape")
	var out []PlanChoiceResult
	for _, c := range PlanChoiceCases() {
		sel, err := sqlparser.ParseSelect(c.SQL)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.Name, err)
		}
		plan, _, err := sys.Cache.Plan(sel, opt.Options{})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.Name, err)
		}
		got := PlanNumber(plan)
		marker := ""
		if c.Expected != 0 && got != c.Expected {
			marker = fmt.Sprintf("  [paper: plan %d]", c.Expected)
		}
		fmt.Fprintf(w, "%-4s plan %-3d %-10.2f %s%s\n", c.Name, got, plan.Cost, plan.Shape, marker)
		fmt.Fprintf(w, "     %s\n", c.Note)
		out = append(out, PlanChoiceResult{Case: c, Plan: plan, Got: got})
	}
	return out, nil
}
