package harness

import (
	"fmt"
	"io"
	"os"
	"time"

	"relaxedcc/internal/load"
)

// RunLoadReport runs the open-loop load sweep, prints the human-readable
// report and, when jsonPath is non-empty, writes the BENCH_load.json
// payload there. Under the virtual clock the whole output — text and JSON —
// is a pure function of cfg.
func RunLoadReport(w io.Writer, cfg load.Config, jsonPath string) error {
	rep, err := load.Run(cfg)
	if err != nil {
		return err
	}

	section(w, "Load: open-loop saturation sweep (latency from scheduled arrival)")
	fmt.Fprintf(w, "arrival %s, %d workers, %.0fs steps, zipf s=%.2f over %d keys\n",
		rep.Arrival, rep.Workers, rep.StepSeconds, rep.ZipfS, rep.ZipfKeys)
	fmt.Fprintf(w, "%8s %9s %10s %10s %10s %7s %7s %10s %4s\n",
		"offered", "achieved", "p50", "p99", "p999", "local", "degr", "stale-p95", "sat")
	for _, s := range rep.Steps {
		sat := ""
		if s.Saturated {
			sat = "SAT"
		}
		fmt.Fprintf(w, "%8.0f %9.1f %10s %10s %10s %6.1f%% %6.1f%% %10s %4s\n",
			s.OfferedQPS, s.AchievedQPS,
			time.Duration(s.LatencyP50NS), time.Duration(s.LatencyP99NS),
			time.Duration(s.LatencyP999NS),
			s.GuardLocalRatio*100, s.DegradedRatio*100,
			time.Duration(s.StalenessP95NS), sat)
	}
	fmt.Fprintf(w, "knee: %.0f qps (highest unsaturated offered step)\n", rep.KneeQPS)

	section(w, "Load: per-tenant SLO by offered step")
	fmt.Fprintf(w, "%8s %-8s %-11s %8s %7s %7s %8s %7s %10s %6s\n",
		"offered", "class", "action", "bound", "queries", "failed", "within", "budget", "p99", "blocks")
	for _, s := range rep.Steps {
		for _, t := range s.Tenants {
			fmt.Fprintf(w, "%8.0f %-8s %-11s %8s %7d %7d %7.1f%% %6.0f%% %10s %6d\n",
				s.OfferedQPS, t.Class, t.Action, time.Duration(t.BoundNS),
				t.Queries, t.Failed, t.SLOWithinRatio*100, t.SLOErrorBudget*100,
				time.Duration(t.LatencyP99NS), t.BlockWaits)
		}
	}

	section(w, "Currency SLO (cumulative, per region)")
	fmt.Fprint(w, renderSLO(rep.SLO))

	if jsonPath != "" {
		payload, err := rep.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, payload, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nwrote %s\n", jsonPath)
	}
	return nil
}
