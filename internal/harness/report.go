package harness

import (
	"fmt"
	"io"
	"time"

	"relaxedcc/internal/core"
	"relaxedcc/internal/tuner"
)

// RunAll regenerates every table and figure of the paper's evaluation in
// order, writing the report to w.
func RunAll(w io.Writer, cfg Config) error {
	sys, err := NewSystem(cfg)
	if err != nil {
		return err
	}
	return RunAllOn(w, cfg, sys)
}

// RunAllOn is RunAll against a caller-built system, so callers can keep a
// handle on it — e.g. to serve its ops HTTP endpoints during and after the
// run (rccbench -obs / -snapshot).
func RunAllOn(w io.Writer, cfg Config, sys *core.System) error {
	fmt.Fprintf(w, "Relaxed Currency & Consistency — experiment reproduction\n")
	fmt.Fprintf(w, "physical scale factor %.3f (%d customers, %d orders); stats scaled to paper: %v\n",
		cfg.ScaleFactor,
		int(150000*cfg.ScaleFactor), int(1500000*cfg.ScaleFactor),
		cfg.ScaleStatsToPaper)

	RunTable41(w, sys)
	if _, err := RunPlanChoice(w, sys); err != nil {
		return err
	}
	if err := RunWorkloadShift(w, 40); err != nil {
		return err
	}
	measured, err := RunGuardOverhead(w, sys, cfg.Reps)
	if err != nil {
		return err
	}
	RunGuardPhases(w, measured)
	if cfg.Extras {
		// Extension experiments beyond the paper's evaluation.
		if err := RunOffload(w, sys, 30); err != nil {
			return err
		}
		RunTuner(w)
	}
	if cfg.Metrics {
		if err := RunObservability(w, sys); err != nil {
			return err
		}
	}
	return nil
}

// RunTuner prints the region-tuner extension: recommended refresh intervals
// for a few workload shapes against the standard CR1 delay.
func RunTuner(w io.Writer) {
	section(w, "Region tuning from workload bound distributions (extension)")
	d := 5 * time.Second
	cases := []struct {
		name string
		wl   tuner.Workload
	}{
		{"uniform 30s bounds", tuner.Workload{
			QueriesPerSecond: 50,
			Bounds:           []tuner.BoundShare{{Bound: 30 * time.Second, Weight: 1}},
		}},
		{"mixed 10s/10min", tuner.Workload{
			QueriesPerSecond: 50,
			Bounds: []tuner.BoundShare{
				{Bound: 10 * time.Second, Weight: 0.5},
				{Bound: 10 * time.Minute, Weight: 0.5},
			},
		}},
		{"loose hourly reports", tuner.Workload{
			QueriesPerSecond: 2,
			Bounds:           []tuner.BoundShare{{Bound: time.Hour, Weight: 1}},
		}},
	}
	fmt.Fprintf(w, "%-24s %14s %10s %12s\n", "workload", "interval", "local %", "cost rate")
	for _, c := range cases {
		res, err := tuner.Tune(c.wl, tuner.Costs{RefreshCost: 10, RemotePenalty: 1}, d)
		if err != nil {
			fmt.Fprintf(w, "%-24s error: %v\n", c.name, err)
			continue
		}
		fmt.Fprintf(w, "%-24s %14s %9.1f%% %12.3f\n",
			c.name, res.Interval, res.LocalFraction*100, res.CostRate)
	}
}
