package backend

import (
	"strings"
	"testing"
	"time"

	"relaxedcc/internal/catalog"
	"relaxedcc/internal/sqltypes"
	"relaxedcc/internal/vclock"
)

func newServer(t *testing.T) (*Server, *vclock.Virtual) {
	t.Helper()
	clock := vclock.NewVirtual()
	s := New(clock)
	if _, err := s.Exec(`CREATE TABLE t (id BIGINT NOT NULL PRIMARY KEY, name VARCHAR(20), bal DOUBLE)`); err != nil {
		t.Fatal(err)
	}
	return s, clock
}

func TestCreateTableAndInsert(t *testing.T) {
	s, _ := newServer(t)
	n, err := s.Exec("INSERT INTO t (id, name, bal) VALUES (1, 'a', 10.5), (2, 'b', 20)")
	if err != nil || n != 2 {
		t.Fatalf("insert = %d, %v", n, err)
	}
	res, err := s.Query("SELECT name FROM t WHERE id = 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "b" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestInsertWithoutColumnList(t *testing.T) {
	s, _ := newServer(t)
	if _, err := s.Exec("INSERT INTO t VALUES (1, 'a', 1.0)"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("INSERT INTO t VALUES (2)"); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestInsertDuplicateRollsBackStatement(t *testing.T) {
	s, _ := newServer(t)
	if _, err := s.Exec("INSERT INTO t (id, name, bal) VALUES (1, 'a', 1)"); err != nil {
		t.Fatal(err)
	}
	seq := s.Log().LastSeq()
	// Multi-row insert where the second row conflicts: whole statement out.
	if _, err := s.Exec("INSERT INTO t (id, name, bal) VALUES (5, 'x', 1), (1, 'dup', 2)"); err == nil {
		t.Fatal("duplicate accepted")
	}
	res, _ := s.Query("SELECT id FROM t WHERE id = 5")
	if len(res.Rows) != 0 {
		t.Fatal("failed statement left partial changes")
	}
	if s.Log().LastSeq() != seq {
		t.Fatal("failed statement appended to the log")
	}
}

func TestUpdate(t *testing.T) {
	s, _ := newServer(t)
	s.Exec("INSERT INTO t VALUES (1, 'a', 1), (2, 'b', 2), (3, 'c', 3)")
	n, err := s.Exec("UPDATE t SET bal = bal + 10 WHERE id >= 2")
	if err != nil || n != 2 {
		t.Fatalf("update = %d, %v", n, err)
	}
	res, _ := s.Query("SELECT bal FROM t WHERE id = 3")
	if res.Rows[0][0].Float() != 13 {
		t.Fatalf("bal = %v", res.Rows[0][0])
	}
	// Update of the primary key is delete+insert under the hood.
	if _, err := s.Exec("UPDATE t SET id = 30 WHERE id = 3"); err != nil {
		t.Fatal(err)
	}
	res, _ = s.Query("SELECT bal FROM t WHERE id = 30")
	if len(res.Rows) != 1 || res.Rows[0][0].Float() != 13 {
		t.Fatalf("moved row = %v", res.Rows)
	}
}

func TestDelete(t *testing.T) {
	s, _ := newServer(t)
	s.Exec("INSERT INTO t VALUES (1, 'a', 1), (2, 'b', 2)")
	n, err := s.Exec("DELETE FROM t WHERE id = 1")
	if err != nil || n != 1 {
		t.Fatalf("delete = %d, %v", n, err)
	}
	res, _ := s.Query("SELECT COUNT(*) FROM t")
	if res.Rows[0][0].Int() != 1 {
		t.Fatal("count after delete")
	}
	// Unqualified delete removes everything.
	if _, err := s.Exec("DELETE FROM t"); err != nil {
		t.Fatal(err)
	}
	res, _ = s.Query("SELECT COUNT(*) FROM t")
	if res.Rows[0][0].Int() != 0 {
		t.Fatal("count after delete all")
	}
}

func TestCommitLogRecordsChanges(t *testing.T) {
	s, clock := newServer(t)
	base := s.Log().LastSeq()
	clock.Advance(5 * time.Second)
	s.Exec("INSERT INTO t VALUES (1, 'a', 1)")
	clock.Advance(5 * time.Second)
	s.Exec("UPDATE t SET name = 'z' WHERE id = 1")
	s.Exec("DELETE FROM t WHERE id = 1")
	recs := s.Log().Since(base)
	if len(recs) != 3 {
		t.Fatalf("records = %d", len(recs))
	}
	if recs[0].Changes[0].Op.String() != "INSERT" || recs[1].Changes[0].Op.String() != "UPDATE" {
		t.Fatal("ops")
	}
	if recs[1].Changes[0].Old[1].Str() != "a" || recs[1].Changes[0].New[1].Str() != "z" {
		t.Fatal("before/after images")
	}
	if !recs[0].TS.At.Equal(vclock.Epoch.Add(5 * time.Second)) {
		t.Fatalf("commit time = %v", recs[0].TS.At)
	}
}

func TestCreateIndexAndUseIt(t *testing.T) {
	s, _ := newServer(t)
	for i := 1; i <= 100; i++ {
		s.Exec("INSERT INTO t VALUES (" + itoa(i) + ", 'x', " + itoa(i) + ".0)")
	}
	if _, err := s.Exec("CREATE INDEX ix_bal ON t (bal)"); err != nil {
		t.Fatal(err)
	}
	s.AnalyzeAll()
	res, err := s.Query("SELECT id FROM t WHERE bal BETWEEN 10 AND 15")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if _, err := s.Exec("CREATE INDEX ix2 ON missing (x)"); err == nil {
		t.Fatal("index on missing table accepted")
	}
}

func itoa(i int) string {
	return sqltypes.NewInt(int64(i)).String()
}

func TestTrivialSelect(t *testing.T) {
	s, _ := newServer(t)
	res, err := s.Query("SELECT 1 + 1 AS two, 'x'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 2 || res.Rows[0][1].Str() != "x" {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Schema.Cols[0].Name != "two" {
		t.Fatal("alias")
	}
}

func TestHeartbeatLifecycle(t *testing.T) {
	s, clock := newServer(t)
	if err := s.RegisterRegion(&catalog.Region{ID: 1, Name: "CR1"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Beat(99); err == nil {
		t.Fatal("beat of unknown region accepted")
	}
	clock.Advance(7 * time.Second)
	if err := s.Beat(1); err != nil {
		t.Fatal(err)
	}
	row, ok := s.Table(HeartbeatTable).Get(sqltypes.Row{sqltypes.NewInt(1)})
	if !ok || !row[1].Time().Equal(clock.Now()) {
		t.Fatalf("heartbeat row = %v", row)
	}
	// The beat is an ordinary logged transaction.
	recs := s.Log().Since(0)
	last := recs[len(recs)-1]
	if last.Changes[0].Table != HeartbeatTable {
		t.Fatal("beat not logged")
	}
}

func TestStatementErrors(t *testing.T) {
	s, _ := newServer(t)
	bad := []string{
		"INSERT INTO missing VALUES (1)",
		"UPDATE missing SET x = 1",
		"DELETE FROM missing",
		"UPDATE t SET nope = 1",
		"INSERT INTO t (nope) VALUES (1)",
		"CREATE TABLE t (id INT PRIMARY KEY)", // duplicate
		"BEGIN TIMEORDERED",                   // session statements not for the back end
	}
	for _, sql := range bad {
		if _, err := s.Exec(sql); err == nil {
			t.Errorf("%q accepted", sql)
		}
	}
	if _, err := s.Query("SELECT * FROM missing"); err == nil {
		t.Fatal("query of missing table accepted")
	}
	if _, err := s.Query("not sql at all"); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestLoadRows(t *testing.T) {
	s, _ := newServer(t)
	rows := []sqltypes.Row{
		{sqltypes.NewInt(1), sqltypes.NewString("a"), sqltypes.NewFloat(1)},
		{sqltypes.NewInt(2), sqltypes.NewString("b"), sqltypes.NewFloat(2)},
	}
	if err := s.LoadRows("t", rows); err != nil {
		t.Fatal(err)
	}
	if err := s.LoadRows("missing", rows); err == nil {
		t.Fatal("LoadRows into missing table accepted")
	}
	// Duplicate load rolls back entirely.
	if err := s.LoadRows("t", rows); err == nil {
		t.Fatal("duplicate LoadRows accepted")
	}
	res, _ := s.Query("SELECT COUNT(*) FROM t")
	if res.Rows[0][0].Int() != 2 {
		t.Fatal("rollback failed")
	}
}

func TestAnalyzeAll(t *testing.T) {
	s, _ := newServer(t)
	for i := 1; i <= 50; i++ {
		s.Exec("INSERT INTO t VALUES (" + itoa(i) + ", 'n', 1.0)")
	}
	s.AnalyzeAll()
	stats := s.Catalog().Table("t").Stats
	if stats.Rows() != 50 {
		t.Fatalf("rows = %d", stats.Rows())
	}
	if cs := stats.Column("id"); cs == nil || cs.NDV != 50 {
		t.Fatalf("id stats = %+v", cs)
	}
}

func TestAggregationAndArithmetic(t *testing.T) {
	s, _ := newServer(t)
	s.Exec("INSERT INTO t VALUES (1, 'a', 10), (2, 'a', 20), (3, 'b', 30)")
	res, err := s.Query(`SELECT name, COUNT(*) AS n, SUM(bal) AS total, MIN(bal), MAX(bal), AVG(bal)
		FROM t GROUP BY name ORDER BY name`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("groups = %d", len(res.Rows))
	}
	a := res.Rows[0]
	if a[0].Str() != "a" || a[1].Int() != 2 || a[2].Float() != 30 || a[3].Float() != 10 || a[4].Float() != 20 || a[5].Float() != 15 {
		t.Fatalf("group a = %v", a)
	}
}

func TestQueryWithCurrencyClauseAtBackend(t *testing.T) {
	// The back end accepts currency clauses and satisfies them trivially.
	s, _ := newServer(t)
	s.Exec("INSERT INTO t VALUES (1, 'a', 1)")
	res, err := s.Query("SELECT id FROM t CURRENCY 10 MIN ON (t)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatal("rows")
	}
}

func TestUnsupportedStatement(t *testing.T) {
	s, _ := newServer(t)
	if _, err := s.ExecStmt(nil); err == nil || !strings.Contains(err.Error(), "unsupported") {
		t.Fatalf("err = %v", err)
	}
}
