// Package backend implements the master database server: the single site
// where update transactions run (the paper's model, Appendix 8.1). It owns
// the authoritative tables, assigns commit timestamps, exposes the commit
// log that transactional replication ships to caches, and maintains the
// global heartbeat table (Section 3.1) whose per-region rows replicate into
// each currency region.
package backend

import (
	"fmt"
	"sync"
	"time"

	"relaxedcc/internal/catalog"
	"relaxedcc/internal/exec"
	"relaxedcc/internal/opt"
	"relaxedcc/internal/sqlparser"
	"relaxedcc/internal/sqltypes"
	"relaxedcc/internal/storage"
	"relaxedcc/internal/txn"
	"relaxedcc/internal/vclock"
)

// HeartbeatTable is the name of the global heartbeat table: one row per
// currency region, its timestamp advanced by Beat. Updates to it flow
// through the ordinary commit log, so each region's distribution agent
// replicates its own row — exactly the paper's design.
const HeartbeatTable = "Heartbeat"

// Server is the back-end DBMS.
type Server struct {
	clock   vclock.Clock
	cat     *catalog.Catalog
	log     *txn.Log
	planner *opt.Planner

	mu     sync.Mutex // serializes writers (strict-2PL stand-in) and DDL
	tables map[string]*storage.Table
}

// New creates a back-end server with an empty catalog plus the heartbeat
// table.
func New(clock vclock.Clock) *Server {
	s := &Server{
		clock:  clock,
		cat:    catalog.New(),
		log:    txn.NewLog(),
		tables: map[string]*storage.Table{},
	}
	s.planner = opt.NewPlanner(&opt.Site{
		Cat:        s.cat,
		LocalTable: s.Table,
		LocalView:  func(string) *storage.Table { return nil },
		Clock:      clock,
	})
	hb := &catalog.Table{
		Name: HeartbeatTable,
		Columns: []catalog.Column{
			{Name: "cid", Type: sqltypes.KindInt, NotNull: true},
			{Name: "ts", Type: sqltypes.KindTime, NotNull: true},
		},
		PrimaryKey: []string{"cid"},
	}
	if err := s.cat.AddTable(hb); err != nil {
		panic(err) // fresh catalog cannot collide
	}
	s.tables[HeartbeatTable] = storage.NewTable(hb)
	return s
}

// Catalog returns the server's catalog.
func (s *Server) Catalog() *catalog.Catalog { return s.cat }

// Log returns the commit log read by distribution agents.
func (s *Server) Log() *txn.Log { return s.log }

// Clock returns the server's time source.
func (s *Server) Clock() vclock.Clock { return s.clock }

// Table returns local storage for a table, or nil.
func (s *Server) Table(name string) *storage.Table {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tables[name]
}

// Exec runs a DDL or DML statement, returning the number of affected rows.
func (s *Server) Exec(sql string) (int, error) {
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return 0, err
	}
	return s.ExecStmt(stmt)
}

// ExecStmt runs a parsed DDL or DML statement.
func (s *Server) ExecStmt(stmt sqlparser.Statement) (int, error) {
	switch stmt := stmt.(type) {
	case *sqlparser.CreateTableStmt:
		return 0, s.createTable(stmt)
	case *sqlparser.CreateIndexStmt:
		return 0, s.createIndex(stmt)
	case *sqlparser.InsertStmt:
		return s.insert(stmt)
	case *sqlparser.UpdateStmt:
		return s.update(stmt)
	case *sqlparser.DeleteStmt:
		return s.delete(stmt)
	default:
		return 0, fmt.Errorf("backend: unsupported statement %T", stmt)
	}
}

// Query plans and executes a SELECT, returning the materialized result.
// Data at the master is always current, so C&C constraints are trivially
// satisfied here.
func (s *Server) Query(sql string) (*exec.Result, error) {
	sel, err := sqlparser.ParseSelect(sql)
	if err != nil {
		return nil, err
	}
	return s.QuerySelect(sel)
}

// QuerySelect executes a parsed SELECT.
func (s *Server) QuerySelect(sel *sqlparser.SelectStmt) (*exec.Result, error) {
	plan, err := s.Plan(sel)
	if err != nil {
		return nil, err
	}
	return exec.Run(plan.Root, &exec.EvalContext{Now: s.clock.Now()}, plan.Setup)
}

// Plan exposes planning separately (used by benchmarks that re-execute one
// plan many times).
func (s *Server) Plan(sel *sqlparser.SelectStmt) (*opt.Plan, error) {
	if len(sel.From) == 0 {
		return trivialPlan(sel)
	}
	plan, _, err := s.planner.PlanSelect(sel)
	return plan, err
}

// trivialPlan evaluates a FROM-less SELECT (e.g. SELECT 1).
func trivialPlan(sel *sqlparser.SelectStmt) (*opt.Plan, error) {
	empty := exec.NewSchema()
	cols := make([]exec.Col, len(sel.Items))
	exprs := make([]exec.Compiled, len(sel.Items))
	for i, item := range sel.Items {
		if item.Star {
			return nil, fmt.Errorf("backend: SELECT * requires FROM")
		}
		c, err := exec.Compile(item.Expr, empty)
		if err != nil {
			return nil, err
		}
		exprs[i] = c
		name := item.Alias
		if name == "" {
			name = fmt.Sprintf("col%d", i+1)
		}
		cols[i] = exec.Col{Name: name}
	}
	build := func() (exec.Operator, error) {
		return &exec.Project{
			Child: exec.NewValues(empty, []sqltypes.Row{{}}),
			Exprs: exprs,
			Out:   exec.NewSchema(cols...),
		}, nil
	}
	root, _ := build()
	return &opt.Plan{Root: root, Build: build, Shape: "Values"}, nil
}

func (s *Server) createTable(stmt *sqlparser.CreateTableStmt) error {
	def := &catalog.Table{Name: stmt.Table}
	var pk []string
	for _, col := range stmt.Columns {
		def.Columns = append(def.Columns, catalog.Column{Name: col.Name, Type: col.Type, NotNull: col.NotNull})
		if col.PrimaryKey {
			pk = append(pk, col.Name)
		}
	}
	if len(stmt.PrimaryKey) > 0 {
		pk = stmt.PrimaryKey
	}
	def.PrimaryKey = pk
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.cat.AddTable(def); err != nil {
		return err
	}
	s.tables[stmt.Table] = storage.NewTable(def)
	return nil
}

func (s *Server) createIndex(stmt *sqlparser.CreateIndexStmt) error {
	idx := &catalog.Index{
		Name:      stmt.Name,
		Table:     stmt.Table,
		Columns:   stmt.Columns,
		Unique:    stmt.Unique,
		Clustered: stmt.Clustered,
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	tbl, ok := s.tables[stmt.Table]
	if !ok {
		return fmt.Errorf("backend: no table %s", stmt.Table)
	}
	if err := tbl.AddIndex(idx); err != nil {
		return err
	}
	return s.cat.AddIndex(idx)
}

func (s *Server) insert(stmt *sqlparser.InsertStmt) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	tbl, ok := s.tables[stmt.Table]
	if !ok {
		return 0, fmt.Errorf("backend: no table %s", stmt.Table)
	}
	def := tbl.Def()
	ords, err := insertOrdinals(def, stmt.Columns)
	if err != nil {
		return 0, err
	}
	empty := exec.NewSchema()
	var changes []txn.Change
	for _, exprRow := range stmt.Rows {
		if len(exprRow) != len(ords) {
			return 0, fmt.Errorf("backend: INSERT arity mismatch")
		}
		row := make(sqltypes.Row, len(def.Columns))
		for i, e := range exprRow {
			c, err := exec.Compile(e, empty)
			if err != nil {
				return 0, err
			}
			v, err := c(&exec.EvalContext{Now: s.clock.Now()}, nil)
			if err != nil {
				return 0, err
			}
			row[ords[i]] = v
		}
		if err := tbl.Insert(row); err != nil {
			s.rollback(tbl, changes)
			return 0, err
		}
		changes = append(changes, txn.Change{Table: def.Name, Op: txn.OpInsert, New: row.Clone()})
	}
	s.log.Append(s.clock.Now(), changes)
	return len(changes), nil
}

// rollback undoes already-applied changes of a failed statement, keeping
// the statement atomic.
func (s *Server) rollback(tbl *storage.Table, changes []txn.Change) {
	pkOrds := tbl.Def().PKOrdinals()
	for i := len(changes) - 1; i >= 0; i-- {
		ch := changes[i]
		switch ch.Op {
		case txn.OpInsert:
			tbl.Delete(pkVals(ch.New, pkOrds))
		case txn.OpDelete:
			tbl.Insert(ch.Old)
		case txn.OpUpdate:
			tbl.Update(ch.Old)
		}
	}
}

func pkVals(row sqltypes.Row, ords []int) sqltypes.Row {
	out := make(sqltypes.Row, len(ords))
	for i, o := range ords {
		out[i] = row[o]
	}
	return out
}

func insertOrdinals(def *catalog.Table, cols []string) ([]int, error) {
	if len(cols) == 0 {
		out := make([]int, len(def.Columns))
		for i := range out {
			out[i] = i
		}
		return out, nil
	}
	out := make([]int, len(cols))
	for i, c := range cols {
		o := def.ColumnIndex(c)
		if o < 0 {
			return nil, fmt.Errorf("backend: table %s has no column %s", def.Name, c)
		}
		out[i] = o
	}
	return out, nil
}

func (s *Server) update(stmt *sqlparser.UpdateStmt) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	tbl, ok := s.tables[stmt.Table]
	if !ok {
		return 0, fmt.Errorf("backend: no table %s", stmt.Table)
	}
	def := tbl.Def()
	schema := tableSchema(def)
	evalCtx := &exec.EvalContext{Now: s.clock.Now()}
	var where exec.Compiled
	if stmt.Where != nil {
		c, err := exec.Compile(stmt.Where, schema)
		if err != nil {
			return 0, err
		}
		where = c
	}
	type setOp struct {
		ord  int
		expr exec.Compiled
	}
	var sets []setOp
	for _, a := range stmt.Set {
		ord := def.ColumnIndex(a.Column)
		if ord < 0 {
			return 0, fmt.Errorf("backend: table %s has no column %s", def.Name, a.Column)
		}
		c, err := exec.Compile(a.Value, schema)
		if err != nil {
			return 0, err
		}
		sets = append(sets, setOp{ord: ord, expr: c})
	}
	// Collect matching rows first (cannot mutate under Scan).
	var matched []sqltypes.Row
	var scanErr error
	tbl.Scan(func(r sqltypes.Row) bool {
		if where != nil {
			ok, err := exec.PredicateTrue(where, evalCtx, r)
			if err != nil {
				scanErr = err
				return false
			}
			if !ok {
				return true
			}
		}
		matched = append(matched, r.Clone())
		return true
	})
	if scanErr != nil {
		return 0, scanErr
	}
	pkOrds := def.PKOrdinals()
	var changes []txn.Change
	for _, old := range matched {
		updated := old.Clone()
		for _, st := range sets {
			v, err := st.expr(evalCtx, old)
			if err != nil {
				s.rollback(tbl, changes)
				return 0, err
			}
			updated[st.ord] = v
		}
		pkChanged := !pkVals(old, pkOrds).Equal(pkVals(updated, pkOrds))
		if pkChanged {
			if _, ok := tbl.Delete(pkVals(old, pkOrds)); !ok {
				s.rollback(tbl, changes)
				return 0, fmt.Errorf("backend: row vanished during update")
			}
			if err := tbl.Insert(updated); err != nil {
				tbl.Insert(old)
				s.rollback(tbl, changes)
				return 0, err
			}
		} else if _, err := tbl.Update(updated); err != nil {
			s.rollback(tbl, changes)
			return 0, err
		}
		changes = append(changes, txn.Change{Table: def.Name, Op: txn.OpUpdate, Old: old, New: updated.Clone()})
	}
	s.log.Append(s.clock.Now(), changes)
	return len(changes), nil
}

func (s *Server) delete(stmt *sqlparser.DeleteStmt) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	tbl, ok := s.tables[stmt.Table]
	if !ok {
		return 0, fmt.Errorf("backend: no table %s", stmt.Table)
	}
	def := tbl.Def()
	schema := tableSchema(def)
	evalCtx := &exec.EvalContext{Now: s.clock.Now()}
	var where exec.Compiled
	if stmt.Where != nil {
		c, err := exec.Compile(stmt.Where, schema)
		if err != nil {
			return 0, err
		}
		where = c
	}
	var matched []sqltypes.Row
	var scanErr error
	tbl.Scan(func(r sqltypes.Row) bool {
		if where != nil {
			ok, err := exec.PredicateTrue(where, evalCtx, r)
			if err != nil {
				scanErr = err
				return false
			}
			if !ok {
				return true
			}
		}
		matched = append(matched, r.Clone())
		return true
	})
	if scanErr != nil {
		return 0, scanErr
	}
	pkOrds := def.PKOrdinals()
	var changes []txn.Change
	for _, old := range matched {
		if _, ok := tbl.Delete(pkVals(old, pkOrds)); ok {
			changes = append(changes, txn.Change{Table: def.Name, Op: txn.OpDelete, Old: old})
		}
	}
	s.log.Append(s.clock.Now(), changes)
	return len(changes), nil
}

func tableSchema(def *catalog.Table) *exec.Schema {
	cols := make([]exec.Col, len(def.Columns))
	for i, c := range def.Columns {
		cols[i] = exec.Col{Binding: def.Name, Name: c.Name, Kind: c.Type}
	}
	return exec.NewSchema(cols...)
}

// RegisterRegion adds a currency region and its heartbeat row.
func (s *Server) RegisterRegion(r *catalog.Region) error {
	if err := s.cat.AddRegion(r); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	tbl := s.tables[HeartbeatTable]
	row := sqltypes.Row{sqltypes.NewInt(int64(r.ID)), sqltypes.NewTime(s.clock.Now())}
	if err := tbl.Insert(row); err != nil {
		return err
	}
	s.log.Append(s.clock.Now(), []txn.Change{{Table: HeartbeatTable, Op: txn.OpInsert, New: row}})
	return nil
}

// Beat advances the region's heartbeat: an ordinary committed transaction
// updating the region's row, so it replicates through the region's agent.
func (s *Server) Beat(regionID int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	tbl := s.tables[HeartbeatTable]
	key := sqltypes.Row{sqltypes.NewInt(int64(regionID))}
	old, ok := tbl.Get(key)
	if !ok {
		return fmt.Errorf("backend: no heartbeat row for region %d", regionID)
	}
	now := s.clock.Now()
	updated := sqltypes.Row{key[0], sqltypes.NewTime(now)}
	if _, err := tbl.Update(updated); err != nil {
		return err
	}
	s.log.Append(now, []txn.Change{{Table: HeartbeatTable, Op: txn.OpUpdate, Old: old, New: updated}})
	return nil
}

// AnalyzeAll recomputes optimizer statistics for every table by scanning
// storage.
func (s *Server) AnalyzeAll() {
	s.mu.Lock()
	tables := make(map[string]*storage.Table, len(s.tables))
	for n, t := range s.tables {
		tables[n] = t
	}
	s.mu.Unlock()
	for name, tbl := range tables {
		def := s.cat.Table(name)
		stats := catalog.BuildStats(def, func(yield func(sqltypes.Row)) {
			tbl.Scan(func(r sqltypes.Row) bool {
				yield(r)
				return true
			})
		})
		def.Stats.Set(stats.RowCount, stats.AvgRowBytes, stats.Columns)
	}
}

// LoadRows bulk-inserts rows as one transaction, bypassing SQL parsing (used
// by workload generators).
func (s *Server) LoadRows(table string, rows []sqltypes.Row) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	tbl, ok := s.tables[table]
	if !ok {
		return fmt.Errorf("backend: no table %s", table)
	}
	changes := make([]txn.Change, 0, len(rows))
	for _, r := range rows {
		if err := tbl.Insert(r); err != nil {
			s.rollback(tbl, changes)
			return err
		}
		changes = append(changes, txn.Change{Table: table, Op: txn.OpInsert, New: r.Clone()})
	}
	s.log.Append(s.clock.Now(), changes)
	return nil
}

// RunBeater drives a region's heartbeat against a live clock, beating every
// interval until stop is closed. Use the repl.Coordinator instead for
// deterministic virtual-time simulations.
func (s *Server) RunBeater(regionID int, interval time.Duration, stop <-chan struct{}) {
	for {
		select {
		case <-stop:
			return
		case <-s.clock.After(interval):
			if err := s.Beat(regionID); err != nil {
				return
			}
		}
	}
}
