package exec

import (
	"fmt"
	"time"

	"relaxedcc/internal/sqlparser"
	"relaxedcc/internal/sqltypes"
	"relaxedcc/internal/vclock"
)

// EvalContext carries per-execution state for expression evaluation.
type EvalContext struct {
	// Now is the query start time, returned by GETDATE(). Fixing it per
	// execution keeps currency-guard evaluation consistent within a plan.
	Now time.Time
	// Clock is the time source for the executor's own measurements — phase
	// timings, guard-wait accounting, trace instrumentation. Nil falls back
	// to the wall clock; deterministic harnesses inject a vclock.Virtual so
	// timings replay byte-identically.
	Clock vclock.Clock
	// BatchSize overrides DefaultBatchSize for batch-at-a-time operators.
	// Zero means the default.
	BatchSize int
	// MaxDOP caps the worker count of parallel operators (ParallelScan).
	// Zero means GOMAXPROCS.
	MaxDOP int
	// OnGuard, when non-nil, receives every SwitchUnion guard decision taken
	// during this execution — the hook metrics and tracing layers use to
	// observe branch picks and staleness without touching operator state.
	OnGuard func(GuardDecision)
	// Degrade selects the SwitchUnion behavior when the remote branch it
	// picked turns out to be unavailable (the paper's violation actions):
	// fail fast, serve the local branch with a staleness warning, or block
	// until the currency guard can pass.
	Degrade DegradeMode
	// Unavailable classifies an error as link-level unavailability (the
	// condition degraded modes react to). Sessions wire it to
	// remote.IsUnavailable; nil disables degraded handling.
	Unavailable func(error) bool
	// OnViolation, when non-nil, receives every degraded-mode event — a
	// remote failure absorbed by the local branch, a blocked guard, or a
	// fail-fast — so sessions can surface warnings and count metrics.
	OnViolation func(Violation)
	// GuardRetry paces DegradeBlock: called before the attempt-th guard
	// re-evaluation for the given region, it waits for replication to make
	// progress and reports whether to keep blocking. Returning false gives
	// up and proceeds with the guard's last choice.
	GuardRetry func(region, attempt int) bool
}

// clock returns the injected time source, defaulting to the wall clock, so
// measurement sites never have to nil-check. Safe on a nil context (trace
// instrumentation may wrap operators that are opened without one).
func (ctx *EvalContext) clock() vclock.Clock {
	if ctx == nil || ctx.Clock == nil {
		return vclock.Wall{}
	}
	return ctx.Clock
}

// Compiled is an expression compiled against a schema: it evaluates on one
// input row.
type Compiled func(ctx *EvalContext, row sqltypes.Row) (sqltypes.Value, error)

// Compile resolves column references in the AST expression against the
// schema and returns an evaluator. Aggregate function calls are rejected —
// they must be planned into an Aggregate operator first.
func Compile(e sqlparser.Expr, schema *Schema) (Compiled, error) {
	switch e := e.(type) {
	case *sqlparser.Literal:
		v := e.Val
		return func(*EvalContext, sqltypes.Row) (sqltypes.Value, error) { return v, nil }, nil

	case *sqlparser.ColumnRef:
		idx := schema.Lookup(e.Table, e.Column)
		if idx == -2 {
			return nil, ErrAmbiguous(e.Column)
		}
		if idx < 0 {
			return nil, ErrNoColumn(e.Table, e.Column)
		}
		return func(_ *EvalContext, row sqltypes.Row) (sqltypes.Value, error) {
			return row[idx], nil
		}, nil

	case *sqlparser.ParamRef:
		return nil, fmt.Errorf("exec: unbound parameter $%s", e.Name)

	case *sqlparser.BinaryExpr:
		left, err := Compile(e.Left, schema)
		if err != nil {
			return nil, err
		}
		right, err := Compile(e.Right, schema)
		if err != nil {
			return nil, err
		}
		return compileBinary(e.Op, left, right)

	case *sqlparser.NotExpr:
		inner, err := Compile(e.Inner, schema)
		if err != nil {
			return nil, err
		}
		return func(ctx *EvalContext, row sqltypes.Row) (sqltypes.Value, error) {
			v, err := inner(ctx, row)
			if err != nil || v.IsNull() {
				return sqltypes.Null, err
			}
			return sqltypes.NewBool(!truthy(v)), nil
		}, nil

	case *sqlparser.NegExpr:
		inner, err := Compile(e.Inner, schema)
		if err != nil {
			return nil, err
		}
		return func(ctx *EvalContext, row sqltypes.Row) (sqltypes.Value, error) {
			v, err := inner(ctx, row)
			if err != nil || v.IsNull() {
				return sqltypes.Null, err
			}
			switch v.Kind() {
			case sqltypes.KindInt:
				return sqltypes.NewInt(-v.Int()), nil
			case sqltypes.KindFloat:
				return sqltypes.NewFloat(-v.Float()), nil
			default:
				return sqltypes.Null, fmt.Errorf("exec: cannot negate %s", v.Kind())
			}
		}, nil

	case *sqlparser.BetweenExpr:
		x, err := Compile(e.Expr, schema)
		if err != nil {
			return nil, err
		}
		lo, err := Compile(e.Lo, schema)
		if err != nil {
			return nil, err
		}
		hi, err := Compile(e.Hi, schema)
		if err != nil {
			return nil, err
		}
		not := e.Not
		return func(ctx *EvalContext, row sqltypes.Row) (sqltypes.Value, error) {
			xv, err := x(ctx, row)
			if err != nil {
				return sqltypes.Null, err
			}
			lov, err := lo(ctx, row)
			if err != nil {
				return sqltypes.Null, err
			}
			hiv, err := hi(ctx, row)
			if err != nil {
				return sqltypes.Null, err
			}
			if xv.IsNull() || lov.IsNull() || hiv.IsNull() {
				return sqltypes.Null, nil
			}
			in := xv.Compare(lov) >= 0 && xv.Compare(hiv) <= 0
			return sqltypes.NewBool(in != not), nil
		}, nil

	case *sqlparser.InExpr:
		if e.Subquery != nil {
			return nil, fmt.Errorf("exec: IN subquery must be planned as a join")
		}
		x, err := Compile(e.Expr, schema)
		if err != nil {
			return nil, err
		}
		items := make([]Compiled, len(e.List))
		for i, it := range e.List {
			items[i], err = Compile(it, schema)
			if err != nil {
				return nil, err
			}
		}
		not := e.Not
		return func(ctx *EvalContext, row sqltypes.Row) (sqltypes.Value, error) {
			xv, err := x(ctx, row)
			if err != nil {
				return sqltypes.Null, err
			}
			if xv.IsNull() {
				return sqltypes.Null, nil
			}
			sawNull := false
			for _, item := range items {
				iv, err := item(ctx, row)
				if err != nil {
					return sqltypes.Null, err
				}
				if iv.IsNull() {
					sawNull = true
					continue
				}
				if xv.Compare(iv) == 0 {
					return sqltypes.NewBool(!not), nil
				}
			}
			if sawNull {
				return sqltypes.Null, nil // SQL three-valued IN
			}
			return sqltypes.NewBool(not), nil
		}, nil

	case *sqlparser.ExistsExpr:
		return nil, fmt.Errorf("exec: EXISTS must be planned as a semi-join")

	case *sqlparser.IsNullExpr:
		x, err := Compile(e.Expr, schema)
		if err != nil {
			return nil, err
		}
		not := e.Not
		return func(ctx *EvalContext, row sqltypes.Row) (sqltypes.Value, error) {
			v, err := x(ctx, row)
			if err != nil {
				return sqltypes.Null, err
			}
			return sqltypes.NewBool(v.IsNull() != not), nil
		}, nil

	case *sqlparser.FuncExpr:
		if e.IsAggregate() {
			return nil, fmt.Errorf("exec: aggregate %s outside an Aggregate operator", e.Name)
		}
		switch e.Name {
		case "GETDATE", "NOW", "CURRENT_TIMESTAMP":
			if len(e.Args) != 0 {
				return nil, fmt.Errorf("exec: %s takes no arguments", e.Name)
			}
			return func(ctx *EvalContext, _ sqltypes.Row) (sqltypes.Value, error) {
				return sqltypes.NewTime(ctx.Now), nil
			}, nil
		case "ABS":
			if len(e.Args) != 1 {
				return nil, fmt.Errorf("exec: ABS takes one argument")
			}
			arg, err := Compile(e.Args[0], schema)
			if err != nil {
				return nil, err
			}
			return func(ctx *EvalContext, row sqltypes.Row) (sqltypes.Value, error) {
				v, err := arg(ctx, row)
				if err != nil || v.IsNull() {
					return sqltypes.Null, err
				}
				switch v.Kind() {
				case sqltypes.KindInt:
					if v.Int() < 0 {
						return sqltypes.NewInt(-v.Int()), nil
					}
					return v, nil
				case sqltypes.KindFloat:
					if v.Float() < 0 {
						return sqltypes.NewFloat(-v.Float()), nil
					}
					return v, nil
				default:
					return sqltypes.Null, fmt.Errorf("exec: ABS of %s", v.Kind())
				}
			}, nil
		default:
			return nil, fmt.Errorf("exec: unknown function %s", e.Name)
		}

	default:
		return nil, fmt.Errorf("exec: cannot compile %T", e)
	}
}

func compileBinary(op sqlparser.BinOp, left, right Compiled) (Compiled, error) {
	switch op {
	case sqlparser.OpAnd:
		return func(ctx *EvalContext, row sqltypes.Row) (sqltypes.Value, error) {
			lv, err := left(ctx, row)
			if err != nil {
				return sqltypes.Null, err
			}
			if !lv.IsNull() && !truthy(lv) {
				return sqltypes.NewBool(false), nil
			}
			rv, err := right(ctx, row)
			if err != nil {
				return sqltypes.Null, err
			}
			if !rv.IsNull() && !truthy(rv) {
				return sqltypes.NewBool(false), nil
			}
			if lv.IsNull() || rv.IsNull() {
				return sqltypes.Null, nil
			}
			return sqltypes.NewBool(true), nil
		}, nil
	case sqlparser.OpOr:
		return func(ctx *EvalContext, row sqltypes.Row) (sqltypes.Value, error) {
			lv, err := left(ctx, row)
			if err != nil {
				return sqltypes.Null, err
			}
			if !lv.IsNull() && truthy(lv) {
				return sqltypes.NewBool(true), nil
			}
			rv, err := right(ctx, row)
			if err != nil {
				return sqltypes.Null, err
			}
			if !rv.IsNull() && truthy(rv) {
				return sqltypes.NewBool(true), nil
			}
			if lv.IsNull() || rv.IsNull() {
				return sqltypes.Null, nil
			}
			return sqltypes.NewBool(false), nil
		}, nil
	case sqlparser.OpEQ, sqlparser.OpNE, sqlparser.OpLT, sqlparser.OpLE, sqlparser.OpGT, sqlparser.OpGE:
		return func(ctx *EvalContext, row sqltypes.Row) (sqltypes.Value, error) {
			lv, err := left(ctx, row)
			if err != nil {
				return sqltypes.Null, err
			}
			rv, err := right(ctx, row)
			if err != nil {
				return sqltypes.Null, err
			}
			if lv.IsNull() || rv.IsNull() {
				return sqltypes.Null, nil
			}
			if err := comparable(lv, rv); err != nil {
				return sqltypes.Null, err
			}
			c := lv.Compare(rv)
			var out bool
			switch op {
			case sqlparser.OpEQ:
				out = c == 0
			case sqlparser.OpNE:
				out = c != 0
			case sqlparser.OpLT:
				out = c < 0
			case sqlparser.OpLE:
				out = c <= 0
			case sqlparser.OpGT:
				out = c > 0
			case sqlparser.OpGE:
				out = c >= 0
			}
			return sqltypes.NewBool(out), nil
		}, nil
	case sqlparser.OpAdd, sqlparser.OpSub, sqlparser.OpMul, sqlparser.OpDiv:
		return func(ctx *EvalContext, row sqltypes.Row) (sqltypes.Value, error) {
			lv, err := left(ctx, row)
			if err != nil {
				return sqltypes.Null, err
			}
			rv, err := right(ctx, row)
			if err != nil {
				return sqltypes.Null, err
			}
			return arith(op, lv, rv)
		}, nil
	default:
		return nil, fmt.Errorf("exec: unsupported binary operator %v", op)
	}
}

// arith applies an arithmetic operator with SQL NULL propagation. Timestamp
// minus a numeric value treats the number as seconds (matching the paper's
// "getdate() - B" currency-guard predicate).
func arith(op sqlparser.BinOp, lv, rv sqltypes.Value) (sqltypes.Value, error) {
	if lv.IsNull() || rv.IsNull() {
		return sqltypes.Null, nil
	}
	if lv.Kind() == sqltypes.KindTime && rv.IsNumeric() {
		secs := rv.Float()
		d := time.Duration(secs * float64(time.Second))
		switch op {
		case sqlparser.OpAdd:
			return sqltypes.NewTime(lv.Time().Add(d)), nil
		case sqlparser.OpSub:
			return sqltypes.NewTime(lv.Time().Add(-d)), nil
		}
		return sqltypes.Null, fmt.Errorf("exec: bad timestamp arithmetic %v", op)
	}
	if !lv.IsNumeric() || !rv.IsNumeric() {
		return sqltypes.Null, fmt.Errorf("exec: arithmetic on %s and %s", lv.Kind(), rv.Kind())
	}
	if lv.Kind() == sqltypes.KindInt && rv.Kind() == sqltypes.KindInt && op != sqlparser.OpDiv {
		a, b := lv.Int(), rv.Int()
		switch op {
		case sqlparser.OpAdd:
			return sqltypes.NewInt(a + b), nil
		case sqlparser.OpSub:
			return sqltypes.NewInt(a - b), nil
		case sqlparser.OpMul:
			return sqltypes.NewInt(a * b), nil
		}
	}
	a, b := lv.Float(), rv.Float()
	switch op {
	case sqlparser.OpAdd:
		return sqltypes.NewFloat(a + b), nil
	case sqlparser.OpSub:
		return sqltypes.NewFloat(a - b), nil
	case sqlparser.OpMul:
		return sqltypes.NewFloat(a * b), nil
	case sqlparser.OpDiv:
		if b == 0 {
			return sqltypes.Null, fmt.Errorf("exec: division by zero")
		}
		return sqltypes.NewFloat(a / b), nil
	}
	return sqltypes.Null, fmt.Errorf("exec: bad arithmetic operator %v", op)
}

// comparable rejects cross-kind comparisons that SQL would type-error on.
func comparable(a, b sqltypes.Value) error {
	if a.Kind() == b.Kind() {
		return nil
	}
	if a.IsNumeric() && b.IsNumeric() {
		return nil
	}
	return fmt.Errorf("exec: cannot compare %s with %s", a.Kind(), b.Kind())
}

// truthy interprets a value as a boolean predicate result.
func truthy(v sqltypes.Value) bool {
	switch v.Kind() {
	case sqltypes.KindBool:
		return v.Bool()
	case sqltypes.KindInt:
		return v.Int() != 0
	case sqltypes.KindFloat:
		return v.Float() != 0
	default:
		return false
	}
}

// PredicateTrue reports whether a compiled predicate evaluates to TRUE on
// the row (NULL and FALSE both reject, per SQL WHERE semantics).
func PredicateTrue(p Compiled, ctx *EvalContext, row sqltypes.Row) (bool, error) {
	v, err := p(ctx, row)
	if err != nil {
		return false, err
	}
	return !v.IsNull() && truthy(v), nil
}
