package exec

import (
	"math"

	"relaxedcc/internal/sqltypes"
)

// This file implements the vectorized hash join. The previous
// implementation keyed a Go map with order-preserving key strings and kept
// a []Row match slice per key — one string encoding plus several
// allocations per build row, and a fresh row allocation per output row,
// ~400k allocations per join on the benchmark tables. The rebuild keeps
// the same operator surface (NewHashJoin signature, Left/Right fields,
// inner/semi/anti kinds, residual) and replaces the internals:
//
//   - Join keys are normalized into columnar scratch arrays (class tag +
//     64-bit payload) batch-at-a-time — no per-row Key() strings. The
//     normalization preserves sqltypes.Key equality exactly: INT and FLOAT
//     collapse to one numeric class compared as float64, NULL never joins.
//   - The build side is one open-addressed table over precomputed 64-bit
//     key hashes: slot arrays plus an intrusive chain through row indexes,
//     no per-key map entries or match slices.
//   - The columnar path (NextVec) emits the join output as typed column
//     vectors gathered from the probe and build rows, reusing the vector
//     backing across batches — steady-state zero allocation. The batch
//     path (NextBatch) still materializes rows, carved out of a per-batch
//     arena: one []Value allocation per output batch instead of one per
//     row. Arenas are never reused — emitted rows are immutable forever
//     per the batch ownership contract.

// Key class codes for normalized join keys. INT and FLOAT share keyNum
// (payload compared as float64 bits with -0 normalized to +0) because
// sqltypes.Key encodes them identically when numerically equal; the other
// classes never compare equal across kinds, matching the encoding's
// distinct tags.
const (
	keyNull uint8 = iota
	keyNum        // float64 bits, -0 normalized to +0
	keyBool       // 0 or 1
	keyTime       // nanoseconds since the epoch
	keyStr        // payload in str
)

// joinKeys holds normalized key columns for a set of rows: one class array
// plus a 64-bit payload array (and a string array for keyStr) per key
// column, index-aligned with the rows. Payload bits are chosen so that
// bit equality within a class is key equality, which keeps the hash and
// the comparison consistent.
type joinKeys struct {
	cls  [][]uint8
	bits [][]uint64
	str  [][]string
}

func newJoinKeys(ncols int) *joinKeys {
	return &joinKeys{
		cls:  make([][]uint8, ncols),
		bits: make([][]uint64, ncols),
		str:  make([][]string, ncols),
	}
}

// reset truncates all columns, keeping capacity.
func (k *joinKeys) reset() {
	for c := range k.cls {
		k.cls[c] = k.cls[c][:0]
		k.bits[c] = k.bits[c][:0]
		k.str[c] = k.str[c][:0]
	}
}

// appendVal normalizes one key value into column c. All payload arrays
// advance in lockstep so row indexes stay aligned.
func (k *joinKeys) appendVal(c int, v sqltypes.Value) {
	var (
		cls uint8
		nb  uint64
		ns  string
	)
	switch v.Kind() {
	case sqltypes.KindNull:
		cls = keyNull
	case sqltypes.KindInt, sqltypes.KindFloat:
		f := v.Float()
		if f == 0 {
			f = 0 // normalize -0 so bit equality matches float equality
		}
		cls, nb = keyNum, math.Float64bits(f)
	case sqltypes.KindBool:
		cls = keyBool
		if v.Bool() {
			nb = 1
		}
	case sqltypes.KindTime:
		cls, nb = keyTime, uint64(v.Time().UnixNano())
	case sqltypes.KindString:
		cls, ns = keyStr, v.Str()
	}
	k.cls[c] = append(k.cls[c], cls)
	k.bits[c] = append(k.bits[c], nb)
	k.str[c] = append(k.str[c], ns)
}

// appendCol normalizes column ord of every row in rows into key column c —
// the bulk counterpart of appendVal for the column-ordinal fast path, with
// the per-column slice headers hoisted out of the per-row loop.
func (k *joinKeys) appendCol(c, ord int, rows sqltypes.Batch) {
	cls, bits, str := k.cls[c], k.bits[c], k.str[c]
	for _, row := range rows {
		v := row[ord]
		var (
			cl uint8
			nb uint64
			ns string
		)
		switch v.Kind() {
		case sqltypes.KindNull:
			cl = keyNull
		case sqltypes.KindInt, sqltypes.KindFloat:
			f := v.Float()
			if f == 0 {
				f = 0 // normalize -0 so bit equality matches float equality
			}
			cl, nb = keyNum, math.Float64bits(f)
		case sqltypes.KindBool:
			cl = keyBool
			if v.Bool() {
				nb = 1
			}
		case sqltypes.KindTime:
			cl, nb = keyTime, uint64(v.Time().UnixNano())
		case sqltypes.KindString:
			cl, ns = keyStr, v.Str()
		}
		cls = append(cls, cl)
		bits = append(bits, nb)
		str = append(str, ns)
	}
	k.cls[c], k.bits[c], k.str[c] = cls, bits, str
}

// appendBatch normalizes the keys of every row in rows: column-at-a-time
// when cols gives the key ordinals, row-at-a-time through the compiled key
// closures otherwise.
func (k *joinKeys) appendBatch(keys []Compiled, cols []int, ctx *EvalContext, rows sqltypes.Batch) error {
	if cols != nil {
		for c, ord := range cols {
			k.appendCol(c, ord, rows)
		}
		return nil
	}
	for _, row := range rows {
		if err := k.appendRow(keys, nil, ctx, row); err != nil {
			return err
		}
	}
	return nil
}

// appendRow evaluates the key expressions on row and appends the
// normalized values. When cols is non-nil the keys are plain column
// references and the closure evaluation is skipped.
func (k *joinKeys) appendRow(keys []Compiled, cols []int, ctx *EvalContext, row sqltypes.Row) error {
	if cols != nil {
		for c, ord := range cols {
			k.appendVal(c, row[ord])
		}
		return nil
	}
	for c, ke := range keys {
		v, err := ke(ctx, row)
		if err != nil {
			return err
		}
		k.appendVal(c, v)
	}
	return nil
}

// hasNull reports whether any key column of row r is NULL (NULL keys never
// join).
func (k *joinKeys) hasNull(r int) bool {
	for c := range k.cls {
		if k.cls[c][r] == keyNull {
			return true
		}
	}
	return false
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// hash mixes the class tags and payloads of row r into a 64-bit hash.
func (k *joinKeys) hash(r int) uint64 {
	h := uint64(fnvOffset)
	for c := range k.cls {
		cls := k.cls[c][r]
		h = (h ^ uint64(cls)) * fnvPrime
		bits := k.bits[c][r]
		if cls == keyStr {
			sh := uint64(fnvOffset)
			s := k.str[c][r]
			for i := 0; i < len(s); i++ {
				sh = (sh ^ uint64(s[i])) * fnvPrime
			}
			bits = sh
		}
		h = (h ^ bits) * fnvPrime
	}
	// Finalize: FNV's low-bit diffusion is weak for small integer keys and
	// the table masks with low bits.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

// keysEqual compares row ra of a with row rb of b, column-wise. NaN keys
// compare equal here (same bits) where float == would not; sqltypes.Key
// treated NaN the same way, so join behavior is unchanged.
func keysEqual(a *joinKeys, ra int, b *joinKeys, rb int) bool {
	for c := range a.cls {
		ca, cb := a.cls[c][ra], b.cls[c][rb]
		if ca != cb {
			return false
		}
		if ca == keyStr {
			if a.str[c][ra] != b.str[c][rb] {
				return false
			}
			continue
		}
		if a.bits[c][ra] != b.bits[c][rb] {
			return false
		}
	}
	return true
}

// HashJoin is an equi-join: it builds a hash table on the right (build)
// input and probes it with left (probe) rows. For semi/anti joins the
// output schema is the left schema.
type HashJoin struct {
	Left, Right         Operator
	LeftKeys, RightKeys []Compiled
	// LeftKeyCols/RightKeyCols, when non-nil, give the key expressions'
	// column ordinals: the planner sets them for plain column-reference
	// keys so probing reads values directly instead of calling closures.
	LeftKeyCols, RightKeyCols []int
	Residual                  Compiled // extra non-equi condition, may be nil
	Kind                      JoinKind

	schema *Schema
	ctx    *EvalContext

	// Build side: row references plus normalized keys and the
	// open-addressed table (power-of-two capacity, linear probing, chains
	// threaded through row indexes).
	buildRows sqltypes.Batch
	bcols     sqltypes.ColBatch // lazily transposed build columns
	buildKeys *joinKeys
	slotHead  []int32 // head build-row index per slot, -1 = empty
	slotHash  []uint64
	chainNext []int32 // next build row with the same hash, -1 = end
	mask      uint64

	// Probe state shared by the row, batch and columnar paths. probe is the
	// current child batch (valid until we pull the next one); chain is the
	// build row the inner-join emission resumes from.
	bleft     BatchOperator
	probe     sqltypes.Batch
	pi        int
	probeDone bool
	probeKeys *joinKeys
	probeHash []uint64
	cur       sqltypes.Row
	chain     int32
	scratch   sqltypes.Row    // reusable joined-row buffer for residual tests
	out       *sqltypes.Batch // pooled output batch container
	// Columnar output state: match pair buffers (probe index, build row
	// index) and the reusable output batch whose vectors are gathered from
	// the pair lists.
	pr, pm []int32
	vsel   []int32
	vout   sqltypes.ColBatch
}

// NewHashJoin builds a hash join; key lists must be equal length.
func NewHashJoin(left, right Operator, leftKeys, rightKeys []Compiled, residual Compiled, kind JoinKind) *HashJoin {
	hj := &HashJoin{Left: left, Right: right, LeftKeys: leftKeys, RightKeys: rightKeys, Residual: residual, Kind: kind}
	if kind == JoinInner {
		hj.schema = Concat(left.Schema(), right.Schema())
	} else {
		hj.schema = left.Schema()
	}
	return hj
}

// Schema implements Operator.
func (h *HashJoin) Schema() *Schema { return h.schema }

// Open implements Operator: it drains the build side batch-at-a-time,
// normalizes and hashes the keys, and assembles the open-addressed table.
func (h *HashJoin) Open(ctx *EvalContext) error {
	h.ctx = ctx
	h.buildRows = h.buildRows[:0]
	h.cur, h.chain = nil, -1
	h.probe, h.pi, h.probeDone = nil, 0, false
	if h.buildKeys == nil {
		h.buildKeys = newJoinKeys(len(h.RightKeys))
		h.probeKeys = newJoinKeys(len(h.LeftKeys))
	}
	h.buildKeys.reset()
	if err := h.Right.Open(ctx); err != nil {
		return err
	}
	bright := AsBatch(h.Right)
	for {
		b, ok, err := bright.NextBatch()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		if err := h.buildKeys.appendBatch(h.RightKeys, h.RightKeyCols, ctx, b); err != nil {
			return err
		}
		h.buildRows = append(h.buildRows, b...)
	}
	if err := bright.Close(); err != nil {
		return err
	}
	h.buildTable()
	// The columnar output path gathers build columns from this transposed
	// view of the build rows; transposition is lazy per column, so semi and
	// anti joins (which never gather) pay nothing for it.
	h.bcols.ResetRows(h.buildRows, len(h.Right.Schema().Cols))
	return h.Left.Open(ctx)
}

// buildTable sizes the slot arrays to twice the build cardinality (load
// factor <= 0.5) and inserts rows in reverse so each hash chain iterates in
// build order — preserving the match order of the previous implementation.
func (h *HashJoin) buildTable() {
	n := len(h.buildRows)
	capacity := 16
	for capacity < 2*n {
		capacity <<= 1
	}
	h.mask = uint64(capacity - 1)
	if cap(h.slotHead) < capacity {
		h.slotHead = make([]int32, capacity)
		h.slotHash = make([]uint64, capacity)
	}
	h.slotHead = h.slotHead[:capacity]
	h.slotHash = h.slotHash[:capacity]
	for i := range h.slotHead {
		h.slotHead[i] = -1
	}
	if cap(h.chainNext) < n {
		h.chainNext = make([]int32, n)
	}
	h.chainNext = h.chainNext[:n]
	for r := n - 1; r >= 0; r-- {
		if h.buildKeys.hasNull(r) {
			continue
		}
		hash := h.buildKeys.hash(r)
		i := hash & h.mask
		for {
			if h.slotHead[i] < 0 {
				h.slotHead[i], h.slotHash[i] = int32(r), hash
				h.chainNext[r] = -1
				break
			}
			if h.slotHash[i] == hash {
				h.chainNext[r] = h.slotHead[i]
				h.slotHead[i] = int32(r)
				break
			}
			i = (i + 1) & h.mask
		}
	}
}

// lookup returns the head of the chain for hash, or -1.
func (h *HashJoin) lookup(hash uint64) int32 {
	if len(h.buildRows) == 0 {
		return -1
	}
	i := hash & h.mask
	for {
		if h.slotHead[i] < 0 {
			return -1
		}
		if h.slotHash[i] == hash {
			return h.slotHead[i]
		}
		i = (i + 1) & h.mask
	}
}

// probeBatch normalizes and hashes the keys of one probe batch into the
// reusable scratch columns.
func (h *HashJoin) probeBatch(b sqltypes.Batch) error {
	h.probeKeys.reset()
	h.probeHash = h.probeHash[:0]
	if err := h.probeKeys.appendBatch(h.LeftKeys, h.LeftKeyCols, h.ctx, b); err != nil {
		return err
	}
	for r := range b {
		if h.probeKeys.hasNull(r) {
			h.probeHash = append(h.probeHash, 0)
			continue
		}
		h.probeHash = append(h.probeHash, h.probeKeys.hash(r))
	}
	return nil
}

// matchesFor returns the chain head for probe row r of the current batch
// (-1 for NULL keys or no match).
func (h *HashJoin) matchesFor(r int) int32 {
	if h.probeKeys.hasNull(r) {
		return -1
	}
	return h.lookup(h.probeHash[r])
}

// residualTrue evaluates the residual over a joined row.
func (h *HashJoin) residualTrue(joined sqltypes.Row) (bool, error) {
	if h.Residual == nil {
		return true, nil
	}
	return PredicateTrue(h.Residual, h.ctx, joined)
}

// anyMatch walks a chain checking key equality and the residual, for
// semi/anti probes. scratch is reused across rows — never emitted.
func (h *HashJoin) anyMatch(r int, row sqltypes.Row, scratch *sqltypes.Row) (bool, error) {
	for m := h.matchesFor(r); m >= 0; m = h.chainNext[m] {
		if !keysEqual(h.probeKeys, r, h.buildKeys, int(m)) {
			continue
		}
		if h.Residual == nil {
			return true, nil
		}
		*scratch = append(append((*scratch)[:0], row...), h.buildRows[m]...)
		ok, err := PredicateTrue(h.Residual, h.ctx, *scratch)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

// nextProbe pulls and preprocesses the next probe batch. ok is false when
// the probe side is exhausted.
func (h *HashJoin) nextProbe() (bool, error) {
	if h.bleft == nil {
		h.bleft = AsBatch(h.Left)
	}
	if h.probeDone {
		return false, nil
	}
	b, ok, err := h.bleft.NextBatch()
	if err != nil {
		return false, err
	}
	if !ok {
		h.probeDone = true
		return false, nil
	}
	if err := h.probeBatch(b); err != nil {
		return false, err
	}
	h.probe, h.pi = b, 0
	return true, nil
}

// NextBatch implements BatchOperator: the row-materializing probe loop.
// Inner joins carve output rows out of a fresh per-batch arena (the arena
// is not reused — emitted rows stay valid forever); semi/anti joins emit
// shared probe-row references.
func (h *HashJoin) NextBatch() (sqltypes.Batch, bool, error) {
	if h.out == nil {
		h.out = getBatchBuf()
	}
	n := batchSizeOf(h.ctx)
	out := (*h.out)[:0]
	var arena []sqltypes.Value
	for len(out) < n {
		// Resume the current probe row's chain (inner joins).
		if h.chain >= 0 {
			r := h.pi - 1
			for h.chain >= 0 && len(out) < n {
				m := h.chain
				h.chain = h.chainNext[m]
				if !keysEqual(h.probeKeys, r, h.buildKeys, int(m)) {
					continue
				}
				if arena == nil {
					arena = make([]sqltypes.Value, 0, n*(len(h.cur)+len(h.buildRows[m])))
				}
				start := len(arena)
				arena = append(arena, h.cur...)
				arena = append(arena, h.buildRows[m]...)
				joined := sqltypes.Row(arena[start:len(arena):len(arena)])
				ok, err := h.residualTrue(joined)
				if err != nil {
					return nil, false, err
				}
				if !ok {
					arena = arena[:start]
					continue
				}
				out = append(out, joined)
			}
			if h.chain >= 0 {
				break // batch full with matches still pending
			}
			continue
		}
		if h.pi >= len(h.probe) {
			ok, err := h.nextProbe()
			if err != nil {
				return nil, false, err
			}
			if !ok {
				break
			}
			continue
		}
		r := h.pi
		row := h.probe[r]
		h.pi++
		switch h.Kind {
		case JoinInner:
			h.cur, h.chain = row, h.matchesFor(r)
		case JoinSemi, JoinAnti:
			found, err := h.anyMatch(r, row, &h.scratch)
			if err != nil {
				return nil, false, err
			}
			if found == (h.Kind == JoinSemi) {
				out = append(out, row)
			}
		}
	}
	*h.out = out
	if len(out) == 0 {
		return nil, false, nil
	}
	return out, true, nil
}

// NextVec implements VecOperator. Without a residual, inner joins emit the
// output as typed column vectors gathered from the matched probe and build
// rows — the vector backing is reused across batches, so the steady state
// allocates nothing — and semi/anti joins emit the probe batch with a
// selection vector (zero copy). Residual joins fall back to wrapping the
// row-materializing batch path, whose joined rows the residual needs
// anyway.
func (h *HashJoin) NextVec() (*sqltypes.ColBatch, bool, error) {
	if h.Residual != nil {
		b, ok, err := h.NextBatch()
		if err != nil || !ok {
			return nil, false, err
		}
		h.vout.ResetRows(b, len(h.schema.Cols))
		return &h.vout, true, nil
	}
	switch h.Kind {
	case JoinSemi, JoinAnti:
		return h.nextVecSemiAnti()
	default:
		return h.nextVecInner()
	}
}

// nextVecInner collects up to a batch of (probe, build) match pairs from
// the current probe batch and gathers them column-wise into the reusable
// output vectors.
func (h *HashJoin) nextVecInner() (*sqltypes.ColBatch, bool, error) {
	n := batchSizeOf(h.ctx)
	for {
		if h.chain >= 0 || h.pi < len(h.probe) {
			if h.collectPairs(n) > 0 {
				h.gatherPairs()
				return &h.vout, true, nil
			}
			continue
		}
		ok, err := h.nextProbe()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			return nil, false, nil
		}
	}
}

// collectPairs fills pr/pm with up to n match pairs from the current probe
// batch, resuming and leaving chain state exactly like the batch path.
func (h *HashJoin) collectPairs(n int) int {
	h.pr, h.pm = h.pr[:0], h.pm[:0]
	for len(h.pr) < n {
		if h.chain >= 0 {
			r := h.pi - 1
			for h.chain >= 0 && len(h.pr) < n {
				m := h.chain
				h.chain = h.chainNext[m]
				if keysEqual(h.probeKeys, r, h.buildKeys, int(m)) {
					h.pr = append(h.pr, int32(r))
					h.pm = append(h.pm, m)
				}
			}
			continue
		}
		if h.pi >= len(h.probe) {
			break
		}
		r := h.pi
		h.pi++
		h.chain = h.matchesFor(r)
	}
	return len(h.pr)
}

// gatherPairs builds the output batch from the pair lists: left columns
// gather from the probe batch, right columns from the build rows.
func (h *HashJoin) gatherPairs() {
	lw := len(h.Left.Schema().Cols)
	w := len(h.schema.Cols)
	h.vout.ResetCols(w, len(h.pr))
	for j := 0; j < lw; j++ {
		h.vout.BuildCol(j).GatherFromRows(h.probe, h.pr, j)
	}
	for j := lw; j < w; j++ {
		// Build columns gather vector-to-vector: the build side was
		// transposed once at Open, so the per-value kind dispatch of a row
		// gather is replaced by typed array copies.
		h.vout.BuildCol(j).GatherFrom(h.bcols.Col(j-lw), h.pm)
	}
}

// nextVecSemiAnti emits each probe batch narrowed by a selection vector of
// the rows that do (semi) or do not (anti) have a build match.
func (h *HashJoin) nextVecSemiAnti() (*sqltypes.ColBatch, bool, error) {
	want := h.Kind == JoinSemi
	for {
		ok, err := h.nextProbe()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			return nil, false, nil
		}
		sel := h.vsel[:0]
		if sel == nil {
			sel = make([]int32, 0, len(h.probe))
		}
		for r := range h.probe {
			found, err := h.anyMatch(r, h.probe[r], &h.scratch)
			if err != nil {
				return nil, false, err
			}
			if found == want {
				sel = append(sel, int32(r))
			}
		}
		h.vsel = sel
		if len(sel) == 0 {
			continue
		}
		h.vout.ResetRows(h.probe, len(h.schema.Cols))
		h.vout.Sel = sel
		return &h.vout, true, nil
	}
}

// Next implements Operator: row-at-a-time probing against the same table.
func (h *HashJoin) Next() (sqltypes.Row, bool, error) {
	for {
		if h.chain >= 0 {
			r := h.pi - 1
			for h.chain >= 0 {
				m := h.chain
				h.chain = h.chainNext[m]
				if !keysEqual(h.probeKeys, r, h.buildKeys, int(m)) {
					continue
				}
				joined := append(append(make(sqltypes.Row, 0, len(h.cur)+len(h.buildRows[m])), h.cur...), h.buildRows[m]...)
				ok, err := h.residualTrue(joined)
				if err != nil {
					return nil, false, err
				}
				if ok {
					return joined, true, nil
				}
			}
			continue
		}
		if h.pi >= len(h.probe) {
			ok, err := h.nextProbe()
			if err != nil || !ok {
				return nil, false, err
			}
			continue
		}
		r := h.pi
		row := h.probe[r]
		h.pi++
		switch h.Kind {
		case JoinInner:
			h.cur, h.chain = row, h.matchesFor(r)
		case JoinSemi, JoinAnti:
			found, err := h.anyMatch(r, row, &h.scratch)
			if err != nil {
				return nil, false, err
			}
			if found == (h.Kind == JoinSemi) {
				return row, true, nil
			}
		}
	}
}

// Close implements Operator. The build side is normally closed at the end
// of Open's build phase; closing it again here is a no-op on that path but
// releases it when Open failed mid-build (Close is idempotent per the
// Operator contract). Build-side state is released here — the arena-backed
// output rows already emitted are independent allocations and stay valid.
func (h *HashJoin) Close() error {
	h.buildRows = nil
	h.bcols.ResetRows(nil, 0)
	h.slotHead, h.slotHash, h.chainNext = nil, nil, nil
	h.probe = nil
	h.cur, h.chain = nil, -1
	putBatchBuf(h.out)
	h.out = nil
	errR := h.Right.Close()
	var errL error
	if c := h.bleft; c != nil {
		h.bleft = nil
		errL = c.Close()
	} else {
		errL = h.Left.Close()
	}
	if errR != nil {
		return errR
	}
	return errL
}
