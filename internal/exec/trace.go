package exec

import (
	"fmt"

	"relaxedcc/internal/obs"
	"relaxedcc/internal/sqltypes"
	"relaxedcc/internal/vclock"
)

// Instrument wraps every operator in the tree with a timing shim and
// returns the wrapped root plus the matching plan-shaped trace tree. Each
// node records inclusive open/next/close wall time, rows and batches
// produced; SwitchUnion nodes additionally capture the guard decision
// (branch, latency, region staleness) after Open. Both branches of a
// SwitchUnion appear in the tree — the one the guard rejected shows
// "(not executed)".
//
// The shim implements BatchOperator, so instrumenting never degrades a
// batch-capable tree to row-at-a-time execution. Per-call time stamping
// costs two clock reads per batch (amortized over up to DefaultBatchSize
// rows); instrumentation is opt-in per execution (EXPLAIN ANALYZE), not
// part of the normal query path.
func Instrument(root Operator) (Operator, *obs.TraceNode) {
	node := &obs.TraceNode{Name: describe(root)}
	wrapChildren(root, node)
	t := &Traced{child: root, node: node, clk: vclock.Wall{}}
	if su, ok := root.(*SwitchUnion); ok {
		t.su = su
	}
	return t, node
}

// wrapChildren replaces each child of op with its instrumented wrapper,
// appending the child trace nodes to node in plan order.
func wrapChildren(op Operator, node *obs.TraceNode) {
	wrap := func(c Operator) Operator {
		w, cn := Instrument(c)
		node.Children = append(node.Children, cn)
		return w
	}
	switch op := op.(type) {
	case *SwitchUnion:
		for i, c := range op.Children {
			op.Children[i] = wrap(c)
		}
	case *Filter:
		op.Child = wrap(op.Child)
	case *Project:
		op.Child = wrap(op.Child)
	case *HashJoin:
		op.Left = wrap(op.Left)
		op.Right = wrap(op.Right)
	case *MergeJoin:
		op.Left = wrap(op.Left)
		op.Right = wrap(op.Right)
	case *IndexLoopJoin:
		op.Outer = wrap(op.Outer)
	case *Sort:
		op.Child = wrap(op.Child)
	case *Limit:
		op.Child = wrap(op.Child)
	case *Distinct:
		op.Child = wrap(op.Child)
	case *Aggregate:
		op.Child = wrap(op.Child)
	case *BatchAdapter:
		op.Child = wrap(op.Child)
	case *RowAdapter:
		w, cn := Instrument(op.Child)
		node.Children = append(node.Children, cn)
		op.Child = w.(BatchOperator)
	}
}

// describe names an operator for the trace tree, using whatever identifying
// detail the operator exports.
func describe(op Operator) string {
	switch op := op.(type) {
	case *Scan:
		if op.Index != "" {
			return fmt.Sprintf("IndexScan(%s.%s)", op.Table.Def().Name, op.Index)
		}
		return fmt.Sprintf("Scan(%s)", op.Table.Def().Name)
	case *ParallelScan:
		return fmt.Sprintf("ParallelScan(%s)", op.Table.Def().Name)
	case *SwitchUnion:
		if op.Label != "" {
			return fmt.Sprintf("SwitchUnion %s", op.Label)
		}
		return "SwitchUnion"
	case *Remote:
		return fmt.Sprintf("Remote(%s)", op.SQL)
	case *Filter:
		return "Filter"
	case *Project:
		return "Project"
	case *HashJoin:
		return "HashJoin"
	case *MergeJoin:
		return "MergeJoin"
	case *IndexLoopJoin:
		return fmt.Sprintf("IndexLoopJoin(%s.%s)", op.Inner.Def().Name, op.Index)
	case *Sort:
		return "Sort"
	case *Limit:
		return "Limit"
	case *Distinct:
		return "Distinct"
	case *Aggregate:
		return "Aggregate"
	case *Values:
		return "Values"
	case *BatchAdapter:
		return "BatchAdapter"
	case *RowAdapter:
		return "RowAdapter"
	case *VecAdapter:
		return "VecAdapter"
	default:
		return fmt.Sprintf("%T", op)
	}
}

// Traced is the instrumentation shim around one operator. It passes rows
// and batches through unchanged while accumulating phase timings into its
// trace node. Tree walkers unwrap it via Unwrap.
type Traced struct {
	child  Operator
	bchild BatchOperator
	vchild VecOperator
	su     *SwitchUnion // non-nil when child is a SwitchUnion
	node   *obs.TraceNode
	// clk stamps the shim's timings: the wall clock until Open, then the
	// execution's injected clock so traces replay under vclock.Virtual.
	clk vclock.Clock
}

// Unwrap returns the operator the shim wraps.
func (t *Traced) Unwrap() Operator { return t.child }

// Node returns the shim's trace node.
func (t *Traced) Node() *obs.TraceNode { return t.node }

// Schema implements Operator.
func (t *Traced) Schema() *Schema { return t.child.Schema() }

// Open implements Operator, timing the child's Open and capturing the guard
// decision for SwitchUnion children.
func (t *Traced) Open(ctx *EvalContext) error {
	t.clk = ctx.clock()
	start := t.clk.Now()
	err := t.child.Open(ctx)
	t.node.Open += t.clk.Now().Sub(start)
	t.node.Opens++
	t.bchild = nil
	t.vchild = nil
	if t.su != nil {
		if d, ok := t.su.LastDecision(); ok {
			t.node.Guard = &obs.GuardTrace{
				Label:      d.Label,
				Region:     d.Region,
				Chosen:     d.Chosen,
				Time:       d.GuardTime,
				Staleness:  d.Staleness,
				Known:      d.StalenessKnown,
				Degraded:   d.Degraded,
				BlockWaits: d.BlockWaits,
			}
		}
	}
	return err
}

// Next implements Operator.
func (t *Traced) Next() (sqltypes.Row, bool, error) {
	start := t.clk.Now()
	row, ok, err := t.child.Next()
	t.node.Next += t.clk.Now().Sub(start)
	if ok {
		t.node.Rows++
	}
	return row, ok, err
}

// NextBatch implements BatchOperator, preserving the child's batch path.
func (t *Traced) NextBatch() (sqltypes.Batch, bool, error) {
	if t.bchild == nil {
		t.bchild = AsBatch(t.child)
	}
	start := t.clk.Now()
	batch, ok, err := t.bchild.NextBatch()
	t.node.Next += t.clk.Now().Sub(start)
	if ok {
		t.node.Rows += int64(len(batch))
		t.node.Batches++
	}
	return batch, ok, err
}

// NextVec implements VecOperator, preserving the child's columnar path so
// instrumenting never forces materialization. Row counts use the batch's
// active (post-selection) cardinality.
func (t *Traced) NextVec() (*sqltypes.ColBatch, bool, error) {
	if t.vchild == nil {
		t.vchild = AsVec(t.child)
	}
	start := t.clk.Now()
	cb, ok, err := t.vchild.NextVec()
	t.node.Next += t.clk.Now().Sub(start)
	if ok {
		t.node.Rows += int64(cb.NumActive())
		t.node.Batches++
	}
	return cb, ok, err
}

// Close implements Operator.
func (t *Traced) Close() error {
	start := t.clk.Now()
	err := t.child.Close()
	t.node.Close += t.clk.Now().Sub(start)
	return err
}
