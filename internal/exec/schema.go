// Package exec implements the physical query operators shared by the
// back-end server and the cache DBMS: scans, filters, projections, joins,
// sorting, aggregation — and the paper's SwitchUnion operator with a
// currency guard, the run-time half of C&C enforcement (Section 3.2.3).
//
// Execution follows the classic open/next/close iterator model. A Plan
// wraps the operator tree and reports per-phase timings (setup, run,
// shutdown) matching the phases profiled in the paper's Table 4.5.
package exec

import (
	"fmt"
	"strings"

	"relaxedcc/internal/sqltypes"
)

// Col describes one output column of an operator: the binding (table alias
// or derived-table name) it belongs to, its name, and its type.
type Col struct {
	Binding string
	Name    string
	Kind    sqltypes.Kind
}

// Schema is an ordered list of output columns.
type Schema struct {
	Cols []Col
}

// NewSchema builds a schema from columns.
func NewSchema(cols ...Col) *Schema { return &Schema{Cols: cols} }

// Lookup resolves a column reference to its ordinal. If binding is empty the
// name must be unambiguous across bindings. It returns -1 when not found and
// -2 when ambiguous.
func (s *Schema) Lookup(binding, name string) int {
	found := -1
	for i, c := range s.Cols {
		if !strings.EqualFold(c.Name, name) {
			continue
		}
		if binding != "" {
			if c.Binding == binding {
				return i
			}
			continue
		}
		if found >= 0 {
			return -2
		}
		found = i
	}
	return found
}

// Clone returns a deep copy of the schema.
func (s *Schema) Clone() *Schema {
	return &Schema{Cols: append([]Col(nil), s.Cols...)}
}

// Rebind returns a copy of the schema with every column's binding replaced,
// as when a derived table gives its output a new alias.
func (s *Schema) Rebind(binding string) *Schema {
	out := s.Clone()
	for i := range out.Cols {
		out.Cols[i].Binding = binding
	}
	return out
}

// Concat returns the schema of a join output: left columns then right.
func Concat(a, b *Schema) *Schema {
	out := &Schema{Cols: make([]Col, 0, len(a.Cols)+len(b.Cols))}
	out.Cols = append(out.Cols, a.Cols...)
	out.Cols = append(out.Cols, b.Cols...)
	return out
}

// String renders the schema for diagnostics.
func (s *Schema) String() string {
	parts := make([]string, len(s.Cols))
	for i, c := range s.Cols {
		if c.Binding != "" {
			parts[i] = c.Binding + "." + c.Name
		} else {
			parts[i] = c.Name
		}
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// ColumnNames returns the bare column names in order.
func (s *Schema) ColumnNames() []string {
	out := make([]string, len(s.Cols))
	for i, c := range s.Cols {
		out[i] = c.Name
	}
	return out
}

// ErrAmbiguous reports an ambiguous column reference.
func ErrAmbiguous(name string) error {
	return fmt.Errorf("exec: ambiguous column reference %q", name)
}

// ErrNoColumn reports an unresolvable column reference.
func ErrNoColumn(binding, name string) error {
	if binding != "" {
		return fmt.Errorf("exec: no column %s.%s", binding, name)
	}
	return fmt.Errorf("exec: no column %s", name)
}
