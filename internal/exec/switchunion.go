package exec

import (
	"fmt"
	"time"

	"relaxedcc/internal/sqltypes"
)

// Selector decides which SwitchUnion input to execute. It is evaluated once
// when the operator is opened and must return an index in [0, n).
type Selector func(ctx *EvalContext) (int, error)

// SwitchUnion is the paper's dynamic-plan operator (Section 3): it has N
// input expressions plus a selector; on open the selector picks exactly one
// input, the others are never touched. The cache uses it with a *currency
// guard* selector that checks at run time whether a local materialized view
// is fresh enough for the query's currency bound, falling back to a remote
// query otherwise.
type SwitchUnion struct {
	Children []Operator
	Selector Selector
	// Label names the guard for diagnostics (e.g. "guard(cust_prj)").
	Label string
	// Region is planner metadata: the currency region whose freshness the
	// guard checks for the local branch (child 0). Sessions use it to track
	// timeline consistency.
	Region int

	chosen int
	active Operator
	// opened tracks every child this operator has opened and not yet
	// closed, so Close can release them all even if a guard re-evaluation
	// across re-opens chose different branches or an error struck mid-open.
	opened  []Operator
	bactive BatchOperator
	// GuardTime records how long the selector evaluation took; ChosenIndex
	// records its decision. Both are observable after Open for the
	// guard-overhead experiments (Tables 4.4/4.5).
	GuardTime   time.Duration
	ChosenIndex int
}

// Schema implements Operator. All children must share a schema shape; the
// first child's schema is reported.
func (s *SwitchUnion) Schema() *Schema { return s.Children[0].Schema() }

// Open implements Operator: it evaluates the selector, then opens only the
// chosen child.
func (s *SwitchUnion) Open(ctx *EvalContext) error {
	start := time.Now()
	idx, err := s.Selector(ctx)
	s.GuardTime = time.Since(start)
	if err != nil {
		return err
	}
	if idx < 0 || idx >= len(s.Children) {
		return fmt.Errorf("exec: SwitchUnion selector returned %d of %d", idx, len(s.Children))
	}
	s.chosen = idx
	s.ChosenIndex = idx
	s.active = s.Children[idx]
	s.bactive = nil
	// Record the child before opening it: a failed Open may still have
	// acquired resources that only Close releases.
	s.track(s.active)
	return s.active.Open(ctx)
}

func (s *SwitchUnion) track(op Operator) {
	for _, o := range s.opened {
		if o == op {
			return
		}
	}
	s.opened = append(s.opened, op)
}

// Next implements Operator: rows stream through from the chosen child (the
// per-row SwitchUnion overhead the paper measures in its run phase).
func (s *SwitchUnion) Next() (sqltypes.Row, bool, error) {
	return s.active.Next()
}

// NextBatch implements BatchOperator: batches stream through from the chosen
// child, so a guard adds zero per-row overhead on the batch path.
func (s *SwitchUnion) NextBatch() (sqltypes.Batch, bool, error) {
	if s.bactive == nil {
		s.bactive = AsBatch(s.active)
	}
	return s.bactive.NextBatch()
}

// Close implements Operator: it closes every child that was ever opened (not
// just the currently chosen one), so an error mid-open or a branch switch
// across re-opens cannot leak iterators. The first error wins.
func (s *SwitchUnion) Close() error {
	var first error
	for _, op := range s.opened {
		if err := op.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.opened = s.opened[:0]
	s.active = nil
	s.bactive = nil
	return first
}

// Remote executes a query against the back-end server through the
// cache/back-end link and streams the resulting rows. Fetch is bound by the
// planner to the remote client; SQL records the shipped query text.
type Remote struct {
	SQL   string
	Fetch func(ctx *EvalContext) ([]sqltypes.Row, error)
	Out   *Schema

	rows []sqltypes.Row
	pos  int
}

// Schema implements Operator.
func (r *Remote) Schema() *Schema { return r.Out }

// Open implements Operator: it ships the query and buffers the reply,
// modeling a one-round-trip remote cursor.
func (r *Remote) Open(ctx *EvalContext) error {
	rows, err := r.Fetch(ctx)
	if err != nil {
		return err
	}
	r.rows = rows
	r.pos = 0
	return nil
}

// Next implements Operator.
func (r *Remote) Next() (sqltypes.Row, bool, error) {
	if r.pos >= len(r.rows) {
		return nil, false, nil
	}
	row := r.rows[r.pos]
	r.pos++
	return row, true, nil
}

// NextBatch implements BatchOperator: zero-copy subslices of the buffered
// reply.
func (r *Remote) NextBatch() (sqltypes.Batch, bool, error) {
	return sliceBatch(r.rows, &r.pos, DefaultBatchSize)
}

// Close implements Operator.
func (r *Remote) Close() error { r.rows = nil; return nil }
