package exec

import (
	"fmt"
	"sync/atomic"
	"time"

	"relaxedcc/internal/sqltypes"
)

// Selector decides which SwitchUnion input to execute. It is evaluated once
// when the operator is opened and must return an index in [0, n).
type Selector func(ctx *EvalContext) (int, error)

// DegradeMode is the session's violation action applied inside SwitchUnion
// when the remote branch it picked is unavailable (Section 1 of the paper
// lists the options a system could take when a currency constraint cannot
// be met).
type DegradeMode int

// Degraded modes.
const (
	// DegradeFail propagates the remote failure (default: the query errors).
	DegradeFail DegradeMode = iota
	// DegradeServeLocal answers from the local branch, surfacing an explicit
	// staleness-violation warning instead of an error.
	DegradeServeLocal
	// DegradeBlock re-evaluates a failed currency guard on the replication
	// cadence (paced by EvalContext.GuardRetry) until it passes or the wait
	// budget runs out, trading latency for currency.
	DegradeBlock
)

// Violation records one degraded-mode event: the paper's violation-action
// table made observable. Sessions collect them as per-query warnings and
// feed them to metrics.
type Violation struct {
	// Label is the guard's diagnostic name.
	Label string
	// Region is the currency region of the guarded local branch.
	Region int
	// Action is what the operator did: "serve-local" (answered from the
	// local branch despite the guard's remote choice), "block" (waited for
	// the guard to pass), or "fail" (propagated the failure).
	Action string
	// Err is the remote failure that triggered the violation (nil for
	// "block", which is triggered by the guard itself).
	Err error
	// Staleness is the region's staleness when the violation was recorded;
	// valid only when StalenessKnown is true.
	Staleness      time.Duration
	StalenessKnown bool
	// Waits is how many guard re-evaluations a "block" performed.
	Waits int
}

// GuardDecision records one SwitchUnion guard evaluation: the decision, its
// cost, and the guarded region's observed staleness at decision time. It is
// published atomically per Open (replacing the old mutable GuardTime/
// ChosenIndex fields, which raced with observers under plan reuse) and
// delivered to EvalContext.OnGuard for metrics and tracing.
type GuardDecision struct {
	// Label is the guard's diagnostic name (SwitchUnion.Label).
	Label string
	// Region is the currency region the guard checked.
	Region int
	// Chosen is the selected branch: 0 is the local branch, by convention.
	Chosen int
	// Bound is the query's currency bound on the guarded region, carried
	// from the planner for SLO accounting; 0 means unbounded.
	Bound time.Duration
	// GuardTime is how long the selector evaluation took (summed across
	// re-evaluations in block mode).
	GuardTime time.Duration
	// Staleness is the region's staleness at decision time (query Now minus
	// the last replicated heartbeat); valid only when StalenessKnown is true.
	Staleness      time.Duration
	StalenessKnown bool
	// Degraded is set when the guard picked the remote branch but the local
	// branch answered because the remote was unavailable (DegradeServeLocal).
	Degraded bool
	// BlockWaits is how many guard re-evaluations DegradeBlock performed
	// before this decision settled.
	BlockWaits int
}

// SwitchUnion is the paper's dynamic-plan operator (Section 3): it has N
// input expressions plus a selector; on open the selector picks exactly one
// input, the others are never touched. The cache uses it with a *currency
// guard* selector that checks at run time whether a local materialized view
// is fresh enough for the query's currency bound, falling back to a remote
// query otherwise.
type SwitchUnion struct {
	Children []Operator
	Selector Selector
	// Label names the guard for diagnostics (e.g. "guard(cust_prj)").
	Label string
	// Region is planner metadata: the currency region whose freshness the
	// guard checks for the local branch (child 0). Sessions use it to track
	// timeline consistency.
	Region int
	// Staleness optionally observes the guarded region's staleness at
	// decision time (query Now minus last heartbeat), for tracing and
	// metrics. Set by the planner; nil means staleness is unknown.
	Staleness func(ctx *EvalContext) (time.Duration, bool)
	// Bound is planner metadata: the query's currency bound on the guarded
	// region, normalized so 0 means unbounded. Carried into GuardDecision
	// for SLO accounting.
	Bound time.Duration

	active Operator
	// opened tracks every child this operator has opened and not yet
	// closed, so Close can release them all even if a guard re-evaluation
	// across re-opens chose different branches or an error struck mid-open.
	opened  []Operator
	bactive BatchOperator
	// decision is the guard outcome of the most recent Open, published
	// atomically so observers (harness, session bookkeeping, monitoring
	// goroutines) can read it without racing a concurrent re-open.
	decision atomic.Pointer[GuardDecision]
}

// Schema implements Operator. All children must share a schema shape; the
// first child's schema is reported.
func (s *SwitchUnion) Schema() *Schema { return s.Children[0].Schema() }

// Open implements Operator: it evaluates the selector, then opens only the
// chosen child. Degraded modes (EvalContext.Degrade) apply when the chosen
// branch is not the local one: DegradeBlock re-evaluates a failed guard on
// the replication cadence before opening anything, and DegradeServeLocal
// falls back to the local branch — recording a Violation warning — when the
// remote branch's Open reports link unavailability.
func (s *SwitchUnion) Open(ctx *EvalContext) error {
	clk := ctx.clock()
	start := clk.Now()
	idx, err := s.Selector(ctx)
	guardTime := clk.Now().Sub(start)
	if err != nil {
		return err
	}
	if idx < 0 || idx >= len(s.Children) {
		return fmt.Errorf("exec: SwitchUnion selector returned %d of %d", idx, len(s.Children))
	}

	// Block mode: the guard rejected the local branch; wait for replication
	// to catch up and re-check, bounded by the session's GuardRetry pacing.
	waits := 0
	if ctx.Degrade == DegradeBlock && idx != 0 && ctx.GuardRetry != nil {
		for attempt := 1; idx != 0; attempt++ {
			if !ctx.GuardRetry(s.Region, attempt) {
				break
			}
			waits++
			st := clk.Now()
			idx, err = s.Selector(ctx)
			guardTime += clk.Now().Sub(st)
			if err != nil {
				return err
			}
			if idx < 0 || idx >= len(s.Children) {
				return fmt.Errorf("exec: SwitchUnion selector returned %d of %d", idx, len(s.Children))
			}
		}
	}

	d := &GuardDecision{Label: s.Label, Region: s.Region, Chosen: idx, Bound: s.Bound, GuardTime: guardTime, BlockWaits: waits}
	if s.Staleness != nil {
		if st, ok := s.Staleness(ctx); ok {
			d.Staleness, d.StalenessKnown = st, true
		}
	}
	s.decision.Store(d)
	if waits > 0 && ctx.OnViolation != nil {
		ctx.OnViolation(Violation{
			Label: s.Label, Region: s.Region, Action: "block",
			Staleness: d.Staleness, StalenessKnown: d.StalenessKnown, Waits: waits,
		})
	}

	s.active = s.Children[idx]
	s.bactive = nil
	// Record the child before opening it: a failed Open may still have
	// acquired resources that only Close releases.
	s.track(s.active)
	err = s.active.Open(ctx)
	if err != nil && idx != 0 && ctx.Unavailable != nil && ctx.Unavailable(err) {
		v := Violation{
			Label: s.Label, Region: s.Region, Err: err,
			Staleness: d.Staleness, StalenessKnown: d.StalenessKnown, Waits: waits,
		}
		if ctx.Degrade == DegradeServeLocal {
			// The remote branch is down: serve the guarded local branch and
			// surface the currency violation as a warning, not an error.
			v.Action = "serve-local"
			dd := *d
			dd.Chosen = 0
			dd.Degraded = true
			s.decision.Store(&dd)
			s.active = s.Children[0]
			s.bactive = nil
			s.track(s.active)
			if e := s.active.Open(ctx); e != nil {
				// The local branch failed too; report the original failure.
				if ctx.OnGuard != nil {
					ctx.OnGuard(dd)
				}
				return err
			}
			if ctx.OnViolation != nil {
				ctx.OnViolation(v)
			}
			if ctx.OnGuard != nil {
				ctx.OnGuard(dd)
			}
			return nil
		}
		v.Action = "fail"
		if ctx.OnViolation != nil {
			ctx.OnViolation(v)
		}
	}
	if ctx.OnGuard != nil {
		ctx.OnGuard(*d)
	}
	return err
}

// LastDecision returns the guard outcome of the most recent Open; ok is
// false if the operator was never opened. Safe to call from any goroutine.
func (s *SwitchUnion) LastDecision() (GuardDecision, bool) {
	d := s.decision.Load()
	if d == nil {
		return GuardDecision{}, false
	}
	return *d, true
}

// ChosenIndex returns the branch picked by the most recent Open (0 if never
// opened).
func (s *SwitchUnion) ChosenIndex() int {
	if d := s.decision.Load(); d != nil {
		return d.Chosen
	}
	return 0
}

// GuardTime returns the selector evaluation time of the most recent Open —
// the guard cost measured by the Tables 4.4/4.5 experiments.
func (s *SwitchUnion) GuardTime() time.Duration {
	if d := s.decision.Load(); d != nil {
		return d.GuardTime
	}
	return 0
}

func (s *SwitchUnion) track(op Operator) {
	for _, o := range s.opened {
		if o == op {
			return
		}
	}
	s.opened = append(s.opened, op)
}

// Next implements Operator: rows stream through from the chosen child (the
// per-row SwitchUnion overhead the paper measures in its run phase).
func (s *SwitchUnion) Next() (sqltypes.Row, bool, error) {
	return s.active.Next()
}

// NextBatch implements BatchOperator: batches stream through from the chosen
// child, so a guard adds zero per-row overhead on the batch path.
func (s *SwitchUnion) NextBatch() (sqltypes.Batch, bool, error) {
	if s.bactive == nil {
		s.bactive = AsBatch(s.active)
	}
	return s.bactive.NextBatch()
}

// Close implements Operator: it closes every child that was ever opened (not
// just the currently chosen one), so an error mid-open or a branch switch
// across re-opens cannot leak iterators. The first error wins.
func (s *SwitchUnion) Close() error {
	var first error
	for _, op := range s.opened {
		if err := op.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.opened = s.opened[:0]
	s.active = nil
	s.bactive = nil
	return first
}

// Remote executes a query against the back-end server through the
// cache/back-end link and streams the resulting rows. Fetch is bound by the
// planner to the remote client; SQL records the shipped query text.
type Remote struct {
	SQL   string
	Fetch func(ctx *EvalContext) ([]sqltypes.Row, error)
	Out   *Schema

	rows []sqltypes.Row
	pos  int
}

// Schema implements Operator.
func (r *Remote) Schema() *Schema { return r.Out }

// Open implements Operator: it ships the query and buffers the reply,
// modeling a one-round-trip remote cursor.
func (r *Remote) Open(ctx *EvalContext) error {
	rows, err := r.Fetch(ctx)
	if err != nil {
		return err
	}
	r.rows = rows
	r.pos = 0
	return nil
}

// Next implements Operator.
func (r *Remote) Next() (sqltypes.Row, bool, error) {
	if r.pos >= len(r.rows) {
		return nil, false, nil
	}
	row := r.rows[r.pos]
	r.pos++
	return row, true, nil
}

// NextBatch implements BatchOperator: zero-copy subslices of the buffered
// reply.
func (r *Remote) NextBatch() (sqltypes.Batch, bool, error) {
	return sliceBatch(r.rows, &r.pos, DefaultBatchSize)
}

// Close implements Operator.
func (r *Remote) Close() error { r.rows = nil; return nil }
