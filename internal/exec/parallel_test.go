package exec

import (
	"fmt"
	"runtime"
	"testing"

	"relaxedcc/internal/catalog"
	"relaxedcc/internal/sqltypes"
	"relaxedcc/internal/storage"
)

// parallelTable builds a clustered table with n rows so a split of the
// B+-tree yields many morsels.
func parallelTable(t testing.TB, n int) *storage.Table {
	t.Helper()
	c := catalog.New()
	def := &catalog.Table{
		Name: "t",
		Columns: []catalog.Column{
			{Name: "id", Type: sqltypes.KindInt, NotNull: true},
			{Name: "name", Type: sqltypes.KindString},
			{Name: "bal", Type: sqltypes.KindFloat},
		},
		PrimaryKey: []string{"id"},
	}
	if err := c.AddTable(def); err != nil {
		t.Fatal(err)
	}
	tbl := storage.NewTable(c.Table("t"))
	for i := 1; i <= n; i++ {
		row := sqltypes.Row{
			sqltypes.NewInt(int64(i)),
			sqltypes.NewString(fmt.Sprint(i % 3)),
			sqltypes.NewFloat(float64(i)),
		}
		if err := tbl.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

// TestParallelScanMatchesSerialScan compares a morsel-parallel scan against
// the serial Scan as a multiset, across worker counts and batch sizes.
func TestParallelScanMatchesSerialScan(t *testing.T) {
	const n = 5000
	tbl := parallelTable(t, n)
	s := testSchema("t")
	want := drain(t, NewScan(tbl, s))
	if len(want) != n {
		t.Fatalf("serial scan = %d rows", len(want))
	}
	for _, dop := range []int{1, 2, 4} {
		for _, bs := range []int{1, 64, 1024} {
			ps := NewParallelScan(tbl, s)
			ps.DOP = dop
			res, err := Run(ps, &EvalContext{Now: testNow, BatchSize: bs}, 0)
			if err != nil {
				t.Fatalf("dop=%d bs=%d: %v", dop, bs, err)
			}
			assertSameRows(t, fmt.Sprintf("dop=%d bs=%d", dop, bs), res.Rows, want, false)
			if got := ps.RowsScanned(); got != n {
				t.Fatalf("dop=%d bs=%d: RowsScanned = %d, want %d", dop, bs, got, n)
			}
		}
	}
}

// TestParallelScanBounds restricts the scan to a clustered key range and
// compares against a serial primary-index range scan.
func TestParallelScanBounds(t *testing.T) {
	tbl := parallelTable(t, 3000)
	s := testSchema("t")
	lo := storage.Bound{Vals: sqltypes.Row{intv(1000)}, Inclusive: true}
	hi := storage.Bound{Vals: sqltypes.Row{intv(2000)}, Inclusive: true}

	serial := NewScan(tbl, s)
	serial.Index = "pk_t"
	serial.Lo, serial.Hi = lo, hi
	want := drain(t, serial)
	if len(want) != 1001 {
		t.Fatalf("serial range = %d rows", len(want))
	}

	ps := NewParallelScan(tbl, s)
	ps.Lo, ps.Hi = lo, hi
	ps.DOP = 4
	res, err := Run(ps, ctx(), 0)
	if err != nil {
		t.Fatal(err)
	}
	assertSameRows(t, "bounded parallel scan", res.Rows, want, false)
}

// TestParallelScanFilter pushes a residual predicate into the workers.
func TestParallelScanFilter(t *testing.T) {
	const n = 3000
	tbl := parallelTable(t, n)
	s := testSchema("t")
	serial := NewScan(tbl, s)
	serial.Filter = compile(t, "name = '0'", s)
	want := drain(t, serial)

	ps := NewParallelScan(tbl, s)
	ps.Filter = compile(t, "name = '0'", s)
	ps.DOP = 4
	res, err := Run(ps, ctx(), 0)
	if err != nil {
		t.Fatal(err)
	}
	assertSameRows(t, "filtered parallel scan", res.Rows, want, false)
	if got := ps.RowsScanned(); got != n {
		t.Fatalf("RowsScanned = %d, want %d (filter applies after the read)", got, n)
	}
}

// TestParallelScanAndKernelEmptyChunks is a regression test for the
// nil-selection bug in the workers' kernel path: with an AND FilterKernel
// whose first conjunct rejects entire chunks, a worker's first filtered
// chunk ran the second conjunct over all rows (nil survivors read as "all
// rows") and emitted rows failing the first predicate. Exercised at DOP 1
// (the serial arm's scratch) and DOP 4 (every worker's scratch).
func TestParallelScanAndKernelEmptyChunks(t *testing.T) {
	const n = 3000
	tbl := parallelTable(t, n)
	s := testSchema("t")

	serial := NewScan(tbl, s)
	serial.Filter = compile(t, "id > 2990 AND bal < 2995", s)
	want := drain(t, serial)
	if len(want) != 4 { // ids 2991..2994
		t.Fatalf("serial = %d rows, want 4", len(want))
	}

	for _, dop := range []int{1, 4} {
		ps := NewParallelScan(tbl, s)
		ps.Filter = compile(t, "id > 2990 AND bal < 2995", s)
		ps.FilterKernel = kernelFor(t, "id > 2990 AND bal < 2995", s)
		ps.DOP = dop
		res, err := Run(ps, &EvalContext{Now: testNow, BatchSize: 64}, 0)
		if err != nil {
			t.Fatalf("dop=%d: %v", dop, err)
		}
		assertSameRows(t, fmt.Sprintf("and-kernel dop=%d", dop), res.Rows, want, false)
	}
}

// TestParallelScanEarlyClose closes the scan after one batch: workers must
// unwind without deadlocking, and the operator must be reusable.
func TestParallelScanEarlyClose(t *testing.T) {
	tbl := parallelTable(t, 5000)
	s := testSchema("t")
	ps := NewParallelScan(tbl, s)
	ps.DOP = 4
	for i := 0; i < 3; i++ {
		if err := ps.Open(&EvalContext{Now: testNow, BatchSize: 16}); err != nil {
			t.Fatal(err)
		}
		if _, ok, err := ps.NextBatch(); err != nil || !ok {
			t.Fatalf("pass %d: first batch ok=%v err=%v", i, ok, err)
		}
		if err := ps.Close(); err != nil {
			t.Fatal(err)
		}
		// Double Close must be safe.
		if err := ps.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestParallelScanFilterError propagates a worker-side evaluation error to
// the consumer and still tears down cleanly.
func TestParallelScanFilterError(t *testing.T) {
	tbl := parallelTable(t, 2000)
	s := testSchema("t")
	ps := NewParallelScan(tbl, s)
	ps.Filter = compile(t, "id / 0 > 1", s)
	ps.DOP = 4
	if _, err := Run(ps, ctx(), 0); err == nil {
		t.Fatal("worker error not propagated")
	}
}

// TestParallelScanRowMode drains the exchange through the row interface.
func TestParallelScanRowMode(t *testing.T) {
	const n = 2000
	tbl := parallelTable(t, n)
	s := testSchema("t")
	want := drain(t, NewScan(tbl, s))
	ps := NewParallelScan(tbl, s)
	ps.DOP = 2
	res, err := RunRows(ps, ctx(), 0)
	if err != nil {
		t.Fatal(err)
	}
	assertSameRows(t, "row-mode parallel scan", res.Rows, want, false)
}

// TestParallelScanSmallInputClampsDOP: the effective worker count must never
// exceed the number of morsels, so tiny tables run inline instead of paying
// goroutine and exchange setup for work one worker finishes first.
func TestParallelScanSmallInputClampsDOP(t *testing.T) {
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)

	tbl := parallelTable(t, 50) // well under one morsel's row floor
	s := testSchema("t")
	ps := NewParallelScan(tbl, s)
	ps.DOP = 8
	res, err := Run(ps, ctx(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := ps.EffectiveDOP(); got != 1 {
		t.Fatalf("EffectiveDOP = %d, want 1 for a 50-row table", got)
	}
	if len(res.Rows) != 50 {
		t.Fatalf("rows = %d, want 50", len(res.Rows))
	}

	// A table with plenty of rows keeps the requested parallelism.
	big := parallelTable(t, 40000)
	ps2 := NewParallelScan(big, s)
	ps2.DOP = 4
	res2, err := Run(ps2, ctx(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := ps2.EffectiveDOP(); got != 4 {
		t.Fatalf("EffectiveDOP = %d, want 4 for a 40k-row table", got)
	}
	if len(res2.Rows) != 40000 {
		t.Fatalf("rows = %d, want 40000", len(res2.Rows))
	}
}

// TestParallelScanWorkStealing forces real multi-worker execution (GOMAXPROCS
// raised above the host's core count if needed) and checks the stealing
// scheduler covers every morsel exactly once, with and without a residual.
func TestParallelScanWorkStealing(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	const n = 30000
	tbl := parallelTable(t, n)
	s := testSchema("t")
	want := drain(t, NewScan(tbl, s))

	for _, bs := range []int{16, 1024} {
		ps := NewParallelScan(tbl, s)
		ps.DOP = 4
		res, err := Run(ps, &EvalContext{Now: testNow, BatchSize: bs}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if ps.EffectiveDOP() < 2 {
			t.Fatalf("bs=%d: EffectiveDOP = %d, want multi-worker", bs, ps.EffectiveDOP())
		}
		assertSameRows(t, fmt.Sprintf("stealing bs=%d", bs), res.Rows, want, false)
		if got := ps.RowsScanned(); got != n {
			t.Fatalf("bs=%d: RowsScanned = %d, want %d", bs, got, n)
		}
	}

	// Residual through the vectorized kernel inside the workers.
	fs := NewScan(tbl, s)
	fs.Filter = compile(t, "name = '0'", s)
	fwant := drain(t, fs)

	ps := NewParallelScan(tbl, s)
	ps.Filter = compile(t, "name = '0'", s)
	ps.FilterKernel = kernelFor(t, "name = '0'", s)
	ps.DOP = 4
	res, err := Run(ps, ctx(), 0)
	if err != nil {
		t.Fatal(err)
	}
	assertSameRows(t, "stealing filtered", res.Rows, fwant, false)
	if got := ps.RowsScanned(); got != n {
		t.Fatalf("filtered: RowsScanned = %d, want %d", got, n)
	}
}
