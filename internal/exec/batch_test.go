package exec

import (
	"errors"
	"fmt"
	"sort"
	"testing"

	"relaxedcc/internal/sqltypes"
)

// renderRows projects rows to strings so multisets can be compared.
func renderRows(rows []sqltypes.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = fmt.Sprint([]sqltypes.Value(r))
	}
	return out
}

func assertSameRows(t *testing.T, name string, got, want []sqltypes.Row, ordered bool) {
	t.Helper()
	g, w := renderRows(got), renderRows(want)
	if !ordered {
		sort.Strings(g)
		sort.Strings(w)
	}
	if len(g) != len(w) {
		t.Fatalf("%s: %d rows, want %d", name, len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("%s: row %d = %s, want %s", name, i, g[i], w[i])
		}
	}
}

// TestBatchRowEquivalence runs every operator shape through both execution
// paths — Run (batch-at-a-time) and RunRows (row-at-a-time) — at batch sizes
// 1, 3 and the default, and requires identical results.
func TestBatchRowEquivalence(t *testing.T) {
	tbl := storageTable(t)
	s := testSchema("t")
	join := func(kind JoinKind) func() Operator {
		return func() Operator {
			left := NewValues(testSchema("L"), testRows(50))
			right := NewValues(testSchema("R"), testRows(20))
			return NewHashJoin(left, right,
				[]Compiled{compileItem(t, "L.id", left.Schema())},
				[]Compiled{compileItem(t, "R.id", right.Schema())},
				nil, kind)
		}
	}
	trees := []struct {
		name    string
		ordered bool
		build   func() Operator
	}{
		{"values", true, func() Operator { return NewValues(s, testRows(10)) }},
		{"scan", true, func() Operator { return NewScan(tbl, s) }},
		{"scan-filtered", true, func() Operator {
			sc := NewScan(tbl, s)
			sc.Filter = compile(t, "name = '0'", s)
			return sc
		}},
		{"filter", true, func() Operator {
			return &Filter{Child: NewValues(s, testRows(50)), Pred: compile(t, "id > 10", s)}
		}},
		{"filter-empty", true, func() Operator {
			return &Filter{Child: NewValues(s, testRows(50)), Pred: compile(t, "id > 999", s)}
		}},
		{"project", true, func() Operator {
			return &Project{
				Child: NewValues(s, testRows(10)),
				Exprs: []Compiled{compileItem(t, "id * 2", s)},
				Out:   NewSchema(Col{Name: "d", Kind: sqltypes.KindInt}),
			}
		}},
		{"hashjoin-inner", true, join(JoinInner)},
		{"hashjoin-semi", true, join(JoinSemi)},
		{"hashjoin-anti", true, join(JoinAnti)},
		{"mergejoin", true, func() Operator {
			l := NewValues(testSchema("L"), testRows(30))
			r := NewValues(testSchema("R"), testRows(12))
			return NewMergeJoin(l, r,
				[]Compiled{compileItem(t, "L.id", l.Schema())},
				[]Compiled{compileItem(t, "R.id", r.Schema())},
				nil, JoinInner)
		}},
		{"sort-limit", true, func() Operator {
			sorted := &Sort{
				Child: NewValues(s, testRows(20)),
				Keys:  []Compiled{compileItem(t, "bal", s)},
				Desc:  []bool{true},
			}
			return &Limit{Child: sorted, N: 5}
		}},
		{"limit", true, func() Operator {
			return &Limit{Child: NewValues(s, testRows(20)), N: 7}
		}},
		{"aggregate", false, func() Operator {
			return &Aggregate{
				Child:   NewValues(s, testRows(30)),
				GroupBy: []Compiled{compileItem(t, "name", s)},
				Aggs:    []AggSpec{{Func: "COUNT", Star: true}},
				Out: NewSchema(
					Col{Name: "name", Kind: sqltypes.KindString},
					Col{Name: "cnt", Kind: sqltypes.KindInt},
				),
			}
		}},
		{"switchunion", true, func() Operator {
			return &SwitchUnion{
				Children: []Operator{NewValues(s, testRows(3)), NewValues(s, testRows(8))},
				Selector: func(*EvalContext) (int, error) { return 1, nil },
			}
		}},
	}
	for _, tc := range trees {
		want, err := RunRows(tc.build(), ctx(), 0)
		if err != nil {
			t.Fatalf("%s: row path: %v", tc.name, err)
		}
		for _, bs := range []int{1, 3, DefaultBatchSize} {
			c := &EvalContext{Now: testNow, BatchSize: bs}
			got, err := Run(tc.build(), c, 0)
			if err != nil {
				t.Fatalf("%s bs=%d: batch path: %v", tc.name, bs, err)
			}
			assertSameRows(t, fmt.Sprintf("%s bs=%d", tc.name, bs), got.Rows, want.Rows, tc.ordered)
		}
	}
}

// TestAdaptersCompose checks the RowAdapter/BatchAdapter pair round-trips
// rows without loss in either direction.
func TestAdaptersCompose(t *testing.T) {
	s := testSchema("t")
	want := testRows(2500) // several default batches plus a partial one

	// BatchAdapter over a row operator, drained by batches.
	ba := &BatchAdapter{Child: NewValues(s, want)}
	res, err := Run(ba, ctx(), 0)
	if err != nil {
		t.Fatal(err)
	}
	assertSameRows(t, "batch-adapter", res.Rows, want, true)

	// RowAdapter over a batch operator, drained row-at-a-time.
	ra := &RowAdapter{Child: NewValues(s, want)}
	res, err = RunRows(ra, ctx(), 0)
	if err != nil {
		t.Fatal(err)
	}
	assertSameRows(t, "row-adapter", res.Rows, want, true)

	// Both stacked: row -> batch -> row.
	stack := &RowAdapter{Child: &BatchAdapter{Child: NewValues(s, want)}}
	res, err = RunRows(stack, ctx(), 0)
	if err != nil {
		t.Fatal(err)
	}
	assertSameRows(t, "stacked", res.Rows, want, true)
}

// TestScanReopenAfterClose ensures the pooled snapshot buffers are
// re-acquired cleanly across Open/Close cycles.
func TestScanReopenAfterClose(t *testing.T) {
	tbl := storageTable(t)
	s := NewScan(tbl, testSchema("t"))
	for i := 0; i < 3; i++ {
		res, err := Run(s, ctx(), 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 100 {
			t.Fatalf("pass %d: %d rows", i, len(res.Rows))
		}
	}
	// Double Close must be safe.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// closeProbe counts Open/Close calls, optionally failing Open (with openErr
// when set, so tests can model classified failures).
type closeProbe struct {
	*Values
	opens, closes int
	failOpen      bool
	openErr       error
}

func (c *closeProbe) Open(ctx *EvalContext) error {
	c.opens++
	if c.failOpen {
		if c.openErr != nil {
			return c.openErr
		}
		return errors.New("open failed")
	}
	return c.Values.Open(ctx)
}

func (c *closeProbe) Close() error {
	c.closes++
	return c.Values.Close()
}

// TestSwitchUnionCloseClosesAllOpenedBranches is the regression test for the
// leak where Close only released the currently chosen child: if the currency
// guard picks different branches across re-opens, every branch that was ever
// opened must be closed.
func TestSwitchUnionCloseClosesAllOpenedBranches(t *testing.T) {
	s := testSchema("t")
	a := &closeProbe{Values: NewValues(s, testRows(2))}
	b := &closeProbe{Values: NewValues(s, testRows(3))}
	branch := 0
	su := &SwitchUnion{
		Children: []Operator{a, b},
		Selector: func(*EvalContext) (int, error) { return branch, nil },
	}
	if err := su.Open(ctx()); err != nil {
		t.Fatal(err)
	}
	// The guard flips before the first branch was closed (re-execution of a
	// cached plan after the region fell stale).
	branch = 1
	if err := su.Open(ctx()); err != nil {
		t.Fatal(err)
	}
	if err := su.Close(); err != nil {
		t.Fatal(err)
	}
	if a.closes != 1 || b.closes != 1 {
		t.Fatalf("closes = (%d, %d), want both branches closed once", a.closes, b.closes)
	}
	// A second Close must not double-close anything.
	if err := su.Close(); err != nil {
		t.Fatal(err)
	}
	if a.closes != 1 || b.closes != 1 {
		t.Fatalf("second Close re-closed children: (%d, %d)", a.closes, b.closes)
	}
}

// TestSwitchUnionCloseAfterFailedOpen: a child whose Open fails may still
// hold resources; Close must reach it.
func TestSwitchUnionCloseAfterFailedOpen(t *testing.T) {
	s := testSchema("t")
	c := &closeProbe{Values: NewValues(s, nil), failOpen: true}
	su := &SwitchUnion{
		Children: []Operator{c},
		Selector: func(*EvalContext) (int, error) { return 0, nil },
	}
	if err := su.Open(ctx()); err == nil {
		t.Fatal("Open should have failed")
	}
	if err := su.Close(); err != nil {
		t.Fatal(err)
	}
	if c.closes != 1 {
		t.Fatalf("failed-open child closed %d times, want 1", c.closes)
	}
}

// TestSwitchUnionBatchPath drains a SwitchUnion through NextBatch and checks
// the guard still ran exactly once.
func TestSwitchUnionBatchPath(t *testing.T) {
	s := testSchema("t")
	calls := 0
	su := &SwitchUnion{
		Children: []Operator{NewValues(s, testRows(5)), NewValues(s, testRows(9))},
		Selector: func(*EvalContext) (int, error) { calls++; return 1, nil },
	}
	res, err := Run(su, &EvalContext{Now: testNow, BatchSize: 4}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 9 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if calls != 1 {
		t.Fatalf("selector evaluated %d times, want once per open", calls)
	}
}
