package exec

import (
	"fmt"
	"testing"

	"relaxedcc/internal/sqlparser"
	"relaxedcc/internal/sqltypes"
)

// kernelFor compiles sql into a BoolKernel, failing the test when the
// expression has no vectorized form.
func kernelFor(t *testing.T, sql string, schema *Schema) BoolKernel {
	t.Helper()
	sel, err := sqlparser.ParseSelect("SELECT 1 FROM x WHERE " + sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	k, ok := CompileKernel(sel.Where, schema)
	if !ok {
		t.Fatalf("CompileKernel(%q): no kernel", sql)
	}
	return k
}

// TestKernelMatchesRowPredicate checks every kernelizable comparison shape
// against the row-at-a-time Compiled evaluation over the same rows,
// including NULLs and mixed numeric kinds.
func TestKernelMatchesRowPredicate(t *testing.T) {
	s := testSchema("t")
	rows := testRows(40)
	rows[5][2] = sqltypes.Null  // bal NULL
	rows[11][1] = sqltypes.Null // name NULL
	rows[17][2] = intv(17)        // bal as INT: mixed numeric column
	preds := []string{
		"id > 10",
		"10 > id",
		"id >= 10 AND id <= 30",
		"id BETWEEN 10 AND 30",
		"bal > 5.5",
		"bal <= 20",
		"name = '1'",
		"name <> '1'",
		"id > 5 AND name = '2' AND bal < 30",
		"id = 999",
		"bal >= 17 AND bal <= 17",
	}
	cb := &sqltypes.ColBatch{}
	cb.ResetRows(rows, len(s.Cols))
	c := ctx()
	for _, sql := range preds {
		k := kernelFor(t, sql, s)
		pred := compile(t, sql, s)
		sel, err := k(c, cb, nil, nil)
		if err != nil {
			t.Fatalf("%q: kernel: %v", sql, err)
		}
		var want []int32
		for i, r := range rows {
			ok, err := PredicateTrue(pred, c, r)
			if err != nil {
				t.Fatalf("%q: row eval: %v", sql, err)
			}
			if ok {
				want = append(want, int32(i))
			}
		}
		if fmt.Sprint(sel) != fmt.Sprint(want) {
			t.Fatalf("%q: kernel sel %v, row path %v", sql, sel, want)
		}
	}
}

// TestKernelCandidateRefinement checks in-place AND-style narrowing: the
// kernel must honor the candidate list and may write into its backing array.
func TestKernelCandidateRefinement(t *testing.T) {
	s := testSchema("t")
	rows := testRows(30)
	cb := &sqltypes.ColBatch{}
	cb.ResetRows(rows, len(s.Cols))
	c := ctx()

	first := kernelFor(t, "id > 10", s)
	second := kernelFor(t, "name = '0'", s)
	sel, err := first(c, cb, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	sel, err = second(c, cb, sel, sel[:0]) // sanctioned in-place refinement
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range sel {
		id := rows[i][0].Int()
		if id <= 10 || id%3 != 0 {
			t.Fatalf("row %d (id=%d) should not survive", i, id)
		}
	}
	if len(sel) != 7 { // ids 12,15,...,30
		t.Fatalf("got %d survivors, want 7", len(sel))
	}
}

// TestAndKernelEmptyFirstConjunct is a regression test: when an AND kernel
// runs with a nil dst and the first conjunct rejects every row, the first
// kernel's survivor slice is nil — which the second conjunct must not
// misread as the nil "all rows" candidate list. The bug emitted rows that
// satisfied only the second conjunct.
func TestAndKernelEmptyFirstConjunct(t *testing.T) {
	s := testSchema("t")
	rows := testRows(20) // ids 1..20: nothing exceeds 100, everything has bal < 30
	cb := &sqltypes.ColBatch{}
	cb.ResetRows(rows, len(s.Cols))
	c := ctx()
	for _, sql := range []string{
		"id > 100 AND bal < 30",
		"id BETWEEN 200 AND 300", // compiles to the same AND chain
		"id > 100 AND id < 5 AND bal < 30",
	} {
		sel, err := kernelFor(t, sql, s)(c, cb, nil, nil)
		if err != nil {
			t.Fatalf("%q: %v", sql, err)
		}
		if len(sel) != 0 {
			t.Fatalf("%q: sel = %v, want empty — second conjunct ran over all rows", sql, sel)
		}
		if sel == nil {
			t.Fatalf("%q: kernel returned nil selection; nil means all rows to chained kernels", sql)
		}
	}
}

// TestFilterAndKernelEmptyFirstBatch drives the same regression end to end
// through Filter.NextVec: the first batches contain no row matching the AND
// kernel's first conjunct, and the filter starts with a nil selection buffer.
func TestFilterAndKernelEmptyFirstBatch(t *testing.T) {
	tbl := storageTable(t) // ids 1..100
	s := testSchema("t")
	build := func() Operator {
		return &Filter{
			Child:  NewScan(tbl, s),
			Pred:   compile(t, "id > 90 AND bal < 95", s),
			Kernel: kernelFor(t, "id > 90 AND bal < 95", s),
		}
	}
	want, err := RunRows(build(), ctx(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Rows) != 4 { // ids 91..94
		t.Fatalf("row path = %d rows, want 4", len(want.Rows))
	}
	// Small batches so early batches are rejected wholesale by "id > 90".
	got, err := Run(build(), &EvalContext{Now: testNow, BatchSize: 8}, 0)
	if err != nil {
		t.Fatal(err)
	}
	assertSameRows(t, "and-kernel empty first batch", got.Rows, want.Rows, true)
}

// TestKernelNonVectorizable ensures CompileKernel declines expressions
// outside its fragment rather than guessing.
func TestKernelNonVectorizable(t *testing.T) {
	s := testSchema("t")
	for _, sql := range []string{
		"id > 10 OR id < 3",      // OR is not fused
		"id + 1 > 10",            // arithmetic operand
		"id NOT BETWEEN 3 AND 5", // negated between
		"name LIKE '1%'",         // no LIKE kernel
	} {
		sel, err := sqlparser.ParseSelect("SELECT 1 FROM x WHERE " + sql)
		if err != nil {
			continue // dialect may reject; fine either way
		}
		if _, ok := CompileKernel(sel.Where, s); ok {
			t.Fatalf("CompileKernel(%q) unexpectedly succeeded", sql)
		}
	}
}

// TestScanFilteredEmptyPrefix is a regression test: batches whose selection
// comes up empty before the first match ever allocates the selection buffer
// must not be emitted as "all rows active" (nil Sel). Batch size 1 makes
// every batch a single row, so any leak shows up in the count.
func TestScanFilteredEmptyPrefix(t *testing.T) {
	tbl := storageTable(t)
	s := testSchema("t")
	sc := NewScan(tbl, s)
	sc.Filter = compile(t, "id > 90", s) // 90 leading non-matching rows
	res, err := Run(sc, &EvalContext{Now: testNow, BatchSize: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("got %d rows, want 10", len(res.Rows))
	}
}

// TestScanKernelMatchesRowFilter runs the same pushed-down predicate through
// the FilterKernel path and the row-at-a-time Filter path.
func TestScanKernelMatchesRowFilter(t *testing.T) {
	tbl := storageTable(t)
	s := testSchema("t")

	slow := NewScan(tbl, s)
	slow.Filter = compile(t, "id > 20 AND name = '1'", s)
	want, err := RunRows(slow, ctx(), 0)
	if err != nil {
		t.Fatal(err)
	}

	for _, bs := range []int{1, 7, DefaultBatchSize} {
		fast := NewScan(tbl, s)
		fast.Filter = compile(t, "id > 20 AND name = '1'", s)
		fast.FilterKernel = kernelFor(t, "id > 20 AND name = '1'", s)
		got, err := Run(fast, &EvalContext{Now: testNow, BatchSize: bs}, 0)
		if err != nil {
			t.Fatal(err)
		}
		assertSameRows(t, fmt.Sprintf("kernel bs=%d", bs), got.Rows, want.Rows, true)
	}
}

// TestFilterKernelOverScan stacks a Filter (kernel) on a filtered Scan so the
// Filter refines an incoming selection vector rather than starting fresh.
func TestFilterKernelOverScan(t *testing.T) {
	tbl := storageTable(t)
	s := testSchema("t")
	build := func() Operator {
		sc := NewScan(tbl, s)
		sc.Filter = compile(t, "id > 10", s)
		return &Filter{
			Child:  sc,
			Pred:   compile(t, "bal < 50", s),
			Kernel: kernelFor(t, "bal < 50", s),
		}
	}
	want, err := RunRows(build(), ctx(), 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(build(), &EvalContext{Now: testNow, BatchSize: 16}, 0)
	if err != nil {
		t.Fatal(err)
	}
	assertSameRows(t, "filter-over-scan", got.Rows, want.Rows, true)
}

// TestProjectColumnGather checks the zero-materialization ordinal gather
// against the expression path.
func TestProjectColumnGather(t *testing.T) {
	s := testSchema("t")
	out := NewSchema(
		Col{Name: "bal", Kind: sqltypes.KindFloat},
		Col{Name: "id", Kind: sqltypes.KindInt},
	)
	build := func(cols []int) Operator {
		return &Project{
			Child: NewValues(s, testRows(25)),
			Exprs: []Compiled{compileItem(t, "bal", s), compileItem(t, "id", s)},
			Out:   out,
			Cols:  cols,
		}
	}
	want, err := RunRows(build(nil), ctx(), 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(build([]int{2, 0}), &EvalContext{Now: testNow, BatchSize: 4}, 0)
	if err != nil {
		t.Fatal(err)
	}
	assertSameRows(t, "project-gather", got.Rows, want.Rows, true)
}

// TestHashJoinNumericKeyCollapse verifies INT and FLOAT keys join across
// kinds exactly as the order-preserving Key() encoding did: 2 joins 2.0.
func TestHashJoinNumericKeyCollapse(t *testing.T) {
	ls, rs := testSchema("L"), testSchema("R")
	lrows := []sqltypes.Row{
		{intv(1), strv("a"), floatv(1)},
		{intv(2), strv("b"), floatv(2)},
		{sqltypes.Null, strv("n"), floatv(0)},
	}
	rrows := []sqltypes.Row{
		{floatv(2.0), strv("x"), floatv(9)}, // FLOAT 2.0 must match INT 2
		{floatv(3.5), strv("y"), floatv(9)},
		{sqltypes.Null, strv("z"), floatv(9)}, // NULL never joins
	}
	j := NewHashJoin(NewValues(ls, lrows), NewValues(rs, rrows),
		[]Compiled{compileItem(t, "L.id", ls)},
		[]Compiled{compileItem(t, "R.id", rs)},
		nil, JoinInner)
	rows := drain(t, j)
	if len(rows) != 1 {
		t.Fatalf("rows = %v, want exactly the 2/2.0 match", rows)
	}
	if rows[0][0].Int() != 2 || rows[0][4].Str() != "x" {
		t.Fatalf("joined row = %v", rows[0])
	}
}

// TestHashJoinDuplicateBuildOrder checks that probe matches against
// duplicate build keys come out in build order, as the previous map-of-slices
// implementation produced.
func TestHashJoinDuplicateBuildOrder(t *testing.T) {
	ls, rs := testSchema("L"), testSchema("R")
	lrows := []sqltypes.Row{{intv(7), strv("p"), floatv(0)}}
	rrows := []sqltypes.Row{
		{intv(7), strv("first"), floatv(1)},
		{intv(7), strv("second"), floatv(2)},
		{intv(7), strv("third"), floatv(3)},
	}
	j := NewHashJoin(NewValues(ls, lrows), NewValues(rs, rrows),
		[]Compiled{compileItem(t, "L.id", ls)},
		[]Compiled{compileItem(t, "R.id", rs)},
		nil, JoinInner)
	rows := drain(t, j)
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	for i, want := range []string{"first", "second", "third"} {
		if rows[i][4].Str() != want {
			t.Fatalf("match %d = %q, want %q", i, rows[i][4].Str(), want)
		}
	}
}

// TestHashJoinLargeBuild pushes the open-addressed table through several
// growth doublings and checks counts for inner/semi/anti against the
// row-at-a-time expectation.
func TestHashJoinLargeBuild(t *testing.T) {
	ls, rs := testSchema("L"), testSchema("R")
	for _, kind := range []JoinKind{JoinInner, JoinSemi, JoinAnti} {
		build := func() Operator {
			return NewHashJoin(
				NewValues(ls, testRowsBound(ls, 2000)),
				NewValues(rs, testRowsBound(rs, 700)),
				[]Compiled{compileItem(t, "L.id", ls)},
				[]Compiled{compileItem(t, "R.id", rs)},
				nil, kind)
		}
		want, err := RunRows(build(), ctx(), 0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Run(build(), ctx(), 0)
		if err != nil {
			t.Fatal(err)
		}
		assertSameRows(t, fmt.Sprintf("large-build kind=%d", kind), got.Rows, want.Rows, true)
	}
}

// testRowsBound mirrors testRows but rebinds nothing — it simply exists so
// big fixtures read clearly at call sites.
func testRowsBound(_ *Schema, n int) []sqltypes.Row { return testRows(n) }

// TestHashJoinBuildPayloadGather pushes NULLs and a mixed-kind payload
// column through the build side of a columnar inner join: the
// vector-to-vector build gather must reproduce the row path exactly across
// the typed, null-tracked, and Any vector representations.
func TestHashJoinBuildPayloadGather(t *testing.T) {
	ls, rs := testSchema("L"), testSchema("R")
	var lrows, rrows []sqltypes.Row
	for i := 0; i < 50; i++ {
		lrows = append(lrows, sqltypes.Row{intv(int64(i % 10)), strv("l"), floatv(float64(i))})
	}
	for i := 0; i < 10; i++ {
		name := strv("r")
		bal := floatv(float64(i))
		switch i % 3 {
		case 0:
			name = sqltypes.Null // NULL in a string payload column
		case 1:
			name = intv(int64(i)) // mixed kinds force the Any representation
		}
		if i%4 == 0 {
			bal = sqltypes.Null // NULL in a float payload column
		}
		rrows = append(rrows, sqltypes.Row{intv(int64(i)), name, bal})
	}
	build := func() Operator {
		return NewHashJoin(NewValues(ls, lrows), NewValues(rs, rrows),
			[]Compiled{compileItem(t, "L.id", ls)},
			[]Compiled{compileItem(t, "R.id", rs)},
			nil, JoinInner)
	}
	want, err := RunRows(build(), ctx(), 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(build(), ctx(), 0)
	if err != nil {
		t.Fatal(err)
	}
	assertSameRows(t, "build-payload gather", got.Rows, want.Rows, true)
}
