package exec

import (
	"relaxedcc/internal/sqltypes"
)

// MergeJoin is a sort-merge equi-join: both inputs must arrive sorted
// ascending on their join keys. Inner joins concatenate matching rows;
// semi/anti joins emit left rows with/without a match (output schema =
// left schema). Equal-key groups on the right are buffered to support
// many-to-many matches.
type MergeJoin struct {
	Left, Right         Operator
	LeftKeys, RightKeys []Compiled
	Residual            Compiled // evaluated over concat(left, right); inner joins only
	Kind                JoinKind

	schema *Schema
	ctx    *EvalContext

	// right-side state: the current buffered group and one lookahead row.
	rightGroup    []sqltypes.Row
	rightGroupKey sqltypes.Row
	rightNext     sqltypes.Row
	rightNextKey  sqltypes.Row
	rightDone     bool

	// left-side state.
	cur      sqltypes.Row
	curKey   sqltypes.Row
	mi       int  // index into rightGroup while emitting inner matches
	emitting bool // the current left row matches rightGroup

	out *sqltypes.Batch // pooled output buffer for the batch path
}

// NewMergeJoin builds a merge join; key lists must be equal length and both
// inputs sorted ascending on them.
func NewMergeJoin(left, right Operator, leftKeys, rightKeys []Compiled, residual Compiled, kind JoinKind) *MergeJoin {
	mj := &MergeJoin{Left: left, Right: right, LeftKeys: leftKeys, RightKeys: rightKeys, Residual: residual, Kind: kind}
	if kind == JoinInner {
		mj.schema = Concat(left.Schema(), right.Schema())
	} else {
		mj.schema = left.Schema()
	}
	return mj
}

// Schema implements Operator.
func (m *MergeJoin) Schema() *Schema { return m.schema }

// Open implements Operator.
func (m *MergeJoin) Open(ctx *EvalContext) error {
	m.ctx = ctx
	m.rightGroup, m.rightGroupKey = nil, nil
	m.rightNext, m.rightNextKey = nil, nil
	m.rightDone = false
	m.cur, m.curKey = nil, nil
	m.mi, m.emitting = 0, false
	if err := m.Left.Open(ctx); err != nil {
		return err
	}
	if err := m.Right.Open(ctx); err != nil {
		return err
	}
	return m.advanceRightRow()
}

// advanceRightRow pulls one row into the lookahead slot.
func (m *MergeJoin) advanceRightRow() error {
	row, ok, err := m.Right.Next()
	if err != nil {
		return err
	}
	if !ok {
		m.rightNext, m.rightNextKey = nil, nil
		m.rightDone = true
		return nil
	}
	key, err := evalKeyVals(m.RightKeys, m.ctx, row)
	if err != nil {
		return err
	}
	m.rightNext, m.rightNextKey = row, key
	return nil
}

// loadRightGroup buffers all right rows equal to the lookahead key.
func (m *MergeJoin) loadRightGroup() error {
	m.rightGroup = m.rightGroup[:0]
	m.rightGroupKey = m.rightNextKey
	for m.rightNext != nil && compareKeys(m.rightNextKey, m.rightGroupKey) == 0 {
		m.rightGroup = append(m.rightGroup, m.rightNext)
		if err := m.advanceRightRow(); err != nil {
			return err
		}
	}
	return nil
}

// Next implements Operator.
func (m *MergeJoin) Next() (sqltypes.Row, bool, error) {
	for {
		// Emit buffered inner matches for the current left row.
		for m.Kind == JoinInner && m.emitting && m.mi < len(m.rightGroup) {
			r := m.rightGroup[m.mi]
			m.mi++
			out := append(append(make(sqltypes.Row, 0, len(m.cur)+len(r)), m.cur...), r...)
			if m.Residual != nil {
				ok, err := PredicateTrue(m.Residual, m.ctx, out)
				if err != nil {
					return nil, false, err
				}
				if !ok {
					continue
				}
			}
			return out, true, nil
		}
		// Advance the left side.
		row, ok, err := m.Left.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		key, err := evalKeyVals(m.LeftKeys, m.ctx, row)
		if err != nil {
			return nil, false, err
		}
		m.cur, m.curKey = row, key
		m.emitting = false // armed below only if the keys match
		if keyHasNull(key) {
			if m.Kind == JoinAnti {
				return row, true, nil // NULL keys never match
			}
			continue
		}
		// Advance the right side until its group key >= left key.
		for !m.rightDone && (m.rightGroupKey == nil || compareKeys(m.rightGroupKey, key) < 0) {
			if m.rightNext == nil {
				m.rightDone = true
				break
			}
			if compareKeys(m.rightNextKey, key) < 0 {
				if err := m.advanceRightRow(); err != nil {
					return nil, false, err
				}
				continue
			}
			if err := m.loadRightGroup(); err != nil {
				return nil, false, err
			}
		}
		matched := m.rightGroupKey != nil && compareKeys(m.rightGroupKey, key) == 0
		switch m.Kind {
		case JoinInner:
			if matched {
				m.mi, m.emitting = 0, true
				continue // emit from the buffered group at loop top
			}
		case JoinSemi:
			if matched && m.semiMatch(row) {
				return row, true, nil
			}
		case JoinAnti:
			if !matched || !m.semiMatch(row) {
				return row, true, nil
			}
		}
	}
}

func (m *MergeJoin) semiMatch(left sqltypes.Row) bool {
	if m.Residual == nil {
		return len(m.rightGroup) > 0
	}
	for _, r := range m.rightGroup {
		joined := append(append(make(sqltypes.Row, 0, len(left)+len(r)), left...), r...)
		ok, err := PredicateTrue(m.Residual, m.ctx, joined)
		if err == nil && ok {
			return true
		}
	}
	return false
}

// NextBatch implements BatchOperator: it fills a pooled buffer from the
// merge loop. The merge itself stays row-at-a-time (it is inherently
// sequential on key order) but downstream operators and the Run drain get
// full batches.
func (m *MergeJoin) NextBatch() (sqltypes.Batch, bool, error) {
	if m.out == nil {
		m.out = getBatchBuf()
	}
	n := batchSizeOf(m.ctx)
	out := (*m.out)[:0]
	for len(out) < n {
		row, ok, err := m.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			break
		}
		out = append(out, row)
	}
	*m.out = out
	if len(out) == 0 {
		return nil, false, nil
	}
	return out, true, nil
}

// Close implements Operator.
func (m *MergeJoin) Close() error {
	putBatchBuf(m.out)
	m.out = nil
	errL := m.Left.Close()
	errR := m.Right.Close()
	if errL != nil {
		return errL
	}
	return errR
}

// evalKeyVals evaluates join keys to a value tuple (not an encoded string,
// so ordering comparisons are cheap).
func evalKeyVals(keys []Compiled, ctx *EvalContext, row sqltypes.Row) (sqltypes.Row, error) {
	out := make(sqltypes.Row, len(keys))
	for i, k := range keys {
		v, err := k(ctx, row)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func compareKeys(a, b sqltypes.Row) int {
	for i := range a {
		if c := a[i].Compare(b[i]); c != 0 {
			return c
		}
	}
	return 0
}

func keyHasNull(k sqltypes.Row) bool {
	for _, v := range k {
		if v.IsNull() {
			return true
		}
	}
	return false
}
