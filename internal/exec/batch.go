package exec

import (
	"sync"

	"relaxedcc/internal/sqltypes"
)

// DefaultBatchSize is the number of rows per batch when the EvalContext does
// not override it. 1024 keeps a batch of row references well inside L2 while
// amortizing per-batch overhead to a fraction of a nanosecond per row.
const DefaultBatchSize = 1024

// BatchOperator is the batch-at-a-time counterpart of Operator. Operators
// that can produce rows in bulk implement both interfaces; Run prefers the
// batch path when the root supports it, and the RowAdapter/BatchAdapter pair
// lets batch and row operators compose freely in one tree.
//
// NextBatch returns a non-empty batch and ok=true, or ok=false at end of
// stream. Batches follow the ownership contract documented on
// sqltypes.Batch: read-only for the consumer and valid only until the next
// NextBatch/Close call on this operator.
type BatchOperator interface {
	Operator
	NextBatch() (sqltypes.Batch, bool, error)
}

// batchSizeOf resolves the tunable batch size from the context.
func batchSizeOf(ctx *EvalContext) int {
	if ctx != nil && ctx.BatchSize > 0 {
		return ctx.BatchSize
	}
	return DefaultBatchSize
}

// batchBufPool recycles output buffers for operators that build batches
// (Filter, Project, HashJoin, MergeJoin, BatchAdapter). Pooled as *Batch so
// Put does not allocate a header box per cycle.
var batchBufPool = sync.Pool{
	New: func() any {
		b := make(sqltypes.Batch, 0, DefaultBatchSize)
		return &b
	},
}

func getBatchBuf() *sqltypes.Batch { return batchBufPool.Get().(*sqltypes.Batch) }

func putBatchBuf(b *sqltypes.Batch) {
	if b == nil {
		return
	}
	*b = (*b)[:0]
	batchBufPool.Put(b)
}

// rowBufPool recycles the row-reference snapshot buffers Scan materializes
// at Open.
var rowBufPool = sync.Pool{
	New: func() any {
		b := make([]sqltypes.Row, 0, DefaultBatchSize)
		return &b
	},
}

func getRowBuf() *[]sqltypes.Row { return rowBufPool.Get().(*[]sqltypes.Row) }

func putRowBuf(b *[]sqltypes.Row) {
	if b == nil {
		return
	}
	*b = (*b)[:0]
	rowBufPool.Put(b)
}

// AsBatch returns op itself when it is batch-capable, else wraps it in a
// BatchAdapter that drains the row interface into batches.
func AsBatch(op Operator) BatchOperator {
	if b, ok := op.(BatchOperator); ok {
		return b
	}
	return &BatchAdapter{Child: op}
}

// AsRow returns a row-at-a-time view of a batch operator. Since every
// BatchOperator also implements Operator this is the operator itself; the
// function exists for symmetry and call-site clarity.
func AsRow(op BatchOperator) Operator { return op }

// BatchAdapter lifts a row-at-a-time operator into the batch interface by
// buffering child rows.
type BatchAdapter struct {
	Child Operator
	buf   *sqltypes.Batch
}

// Schema implements Operator.
func (a *BatchAdapter) Schema() *Schema { return a.Child.Schema() }

// Open implements Operator.
func (a *BatchAdapter) Open(ctx *EvalContext) error { return a.Child.Open(ctx) }

// Next implements Operator.
func (a *BatchAdapter) Next() (sqltypes.Row, bool, error) { return a.Child.Next() }

// NextBatch implements BatchOperator.
func (a *BatchAdapter) NextBatch() (sqltypes.Batch, bool, error) {
	if a.buf == nil {
		a.buf = getBatchBuf()
	}
	out := (*a.buf)[:0]
	n := DefaultBatchSize
	for len(out) < n {
		row, ok, err := a.Child.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			break
		}
		out = append(out, row)
	}
	*a.buf = out
	if len(out) == 0 {
		return nil, false, nil
	}
	return out, true, nil
}

// Close implements Operator.
func (a *BatchAdapter) Close() error {
	putBatchBuf(a.buf)
	a.buf = nil
	return a.Child.Close()
}

// RowAdapter exposes a batch operator row-at-a-time by walking its batches.
// It is the streaming inverse of BatchAdapter; adapters in both directions
// compose without copying rows.
type RowAdapter struct {
	Child BatchOperator

	cur sqltypes.Batch
	pos int
}

// Schema implements Operator.
func (a *RowAdapter) Schema() *Schema { return a.Child.Schema() }

// Open implements Operator.
func (a *RowAdapter) Open(ctx *EvalContext) error {
	a.cur, a.pos = nil, 0
	return a.Child.Open(ctx)
}

// Next implements Operator.
func (a *RowAdapter) Next() (sqltypes.Row, bool, error) {
	for a.pos >= len(a.cur) {
		b, ok, err := a.Child.NextBatch()
		if err != nil || !ok {
			return nil, false, err
		}
		a.cur, a.pos = b, 0
	}
	r := a.cur[a.pos]
	a.pos++
	return r, true, nil
}

// Close implements Operator.
func (a *RowAdapter) Close() error {
	a.cur, a.pos = nil, 0
	return a.Child.Close()
}

// sliceBatch is the shared NextBatch implementation for operators that have
// fully materialized their output: it returns read-only subslices of the
// materialized rows, advancing *pos. Zero-copy — the fast path that makes
// batch execution cheap for Scan, Sort, Aggregate, Values and Remote.
func sliceBatch(rows []sqltypes.Row, pos *int, n int) (sqltypes.Batch, bool, error) {
	if *pos >= len(rows) {
		return nil, false, nil
	}
	end := *pos + n
	if end > len(rows) {
		end = len(rows)
	}
	b := sqltypes.Batch(rows[*pos:end])
	*pos = end
	return b, true, nil
}
