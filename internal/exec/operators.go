package exec

import (
	"fmt"
	"sort"

	"relaxedcc/internal/sqltypes"
	"relaxedcc/internal/storage"
)

// Operator is a physical operator in the open/next/close iterator model.
type Operator interface {
	// Schema describes the operator's output columns.
	Schema() *Schema
	// Open prepares the operator for iteration.
	Open(ctx *EvalContext) error
	// Next returns the next row, or ok=false at end of stream.
	Next() (row sqltypes.Row, ok bool, err error)
	// Close releases resources. It must be safe to call after errors.
	Close() error
}

// ---- Values ----

// Values produces a fixed list of rows (used for SELECT without FROM and in
// tests).
type Values struct {
	Rows   []sqltypes.Row
	schema *Schema
	pos    int
}

// NewValues builds a Values operator.
func NewValues(schema *Schema, rows []sqltypes.Row) *Values {
	return &Values{Rows: rows, schema: schema}
}

// Schema implements Operator.
func (v *Values) Schema() *Schema { return v.schema }

// Open implements Operator.
func (v *Values) Open(*EvalContext) error { v.pos = 0; return nil }

// Next implements Operator.
func (v *Values) Next() (sqltypes.Row, bool, error) {
	if v.pos >= len(v.Rows) {
		return nil, false, nil
	}
	r := v.Rows[v.pos]
	v.pos++
	return r, true, nil
}

// NextBatch implements BatchOperator: zero-copy subslices of the row list.
func (v *Values) NextBatch() (sqltypes.Batch, bool, error) {
	return sliceBatch(v.Rows, &v.pos, DefaultBatchSize)
}

// Close implements Operator.
func (v *Values) Close() error { return nil }

// ---- Scan ----

// Scan reads a stored table (base table or materialized view) through one
// of its indexes, optionally within a key range and with a pushed-down
// residual predicate.
//
// Clustered scans (Index == "") stream chunk-at-a-time straight from the
// B+-tree: each chunk is read under one short read latch, so the scan never
// materializes the table and interleaves with writers at chunk granularity —
// the same read-committed view ScanMorsel gives parallel workers. Index
// scans snapshot the matching row references at Open as before.
type Scan struct {
	Table  *storage.Table
	Index  string // index to drive the scan; "" = clustered order
	Lo, Hi storage.Bound
	Filter Compiled // residual predicate, may be nil
	// FilterKernel, when non-nil, is the vectorized form of Filter: the
	// columnar path evaluates it column-at-a-time over each chunk and
	// carries survivors in the batch's selection vector, and the batch path
	// compacts the survivors by reference. Planners set both so every
	// execution mode keeps the same semantics.
	FilterKernel BoolKernel

	schema *Schema
	ctx    *EvalContext
	// Index-scan snapshot state.
	rows []sqltypes.Row
	pos  int
	buf  *[]sqltypes.Row // pooled backing store for the snapshot
	// Clustered-scan streaming state: cursor is the encoded resume key, curb
	// the in-flight chunk for row-mode iteration. streaming flips on once the
	// batch path starts pulling chunks, committing the scan to the streaming
	// read-committed view; row-mode clustered scans instead materialize the
	// seed's snapshot lazily on first Next.
	cursor    string
	streamEnd bool
	streaming bool
	curb      sqltypes.Batch
	fout      *sqltypes.Batch // pooled output buffer for built batches
	// Columnar-path state: the reusable output container, its selection
	// buffer, and a pooled buffer for batch-path compaction of kernel
	// survivors.
	vout   sqltypes.ColBatch
	selbuf []int32
	cout   *sqltypes.Batch

	// RowsScanned counts rows read from storage (before the residual
	// filter); used by tests and cost-model validation.
	RowsScanned int
}

// NewScan builds a scan. The schema's column order must match the stored
// row layout.
func NewScan(table *storage.Table, schema *Schema) *Scan {
	return &Scan{Table: table, schema: schema}
}

// Schema implements Operator.
func (s *Scan) Schema() *Schema { return s.schema }

// Open implements Operator. Index scans capture a snapshot of matching row
// references under the table's read latch; clustered scans prepare the
// streaming cursor and read nothing yet.
func (s *Scan) Open(ctx *EvalContext) error {
	s.ctx = ctx
	s.pos = 0
	s.RowsScanned = 0
	s.cursor, s.streamEnd, s.streaming, s.curb = "", false, false, nil
	s.rows = nil
	if s.Index == "" {
		return nil
	}
	if s.buf == nil {
		s.buf = getRowBuf()
	}
	rows := (*s.buf)[:0]
	err := s.Table.ScanIndex(s.Index, s.Lo, s.Hi, func(r sqltypes.Row) bool {
		rows = append(rows, r)
		return true
	})
	*s.buf = rows
	s.rows = rows
	return err
}

// snapshot materializes the clustered table into the pooled row buffer; the
// row path uses it so clustered row-mode iteration keeps the original
// snapshot-at-first-read semantics.
func (s *Scan) snapshot() {
	if s.buf == nil {
		s.buf = getRowBuf()
	}
	rows := (*s.buf)[:0]
	s.Table.Scan(func(r sqltypes.Row) bool {
		rows = append(rows, r)
		return true
	})
	*s.buf = rows
	s.rows = rows
}

// nextChunk streams the next batch of a clustered scan from the B+-tree.
// Without a residual filter it bulk-copies whole leaves via ChunkRows; with
// one, ScanChunk's limit applies to rows read, so the loop keeps pulling
// chunks until a batch has content or input runs out — bounding latch hold
// time per chunk without ever returning a spurious end-of-stream.
func (s *Scan) nextChunk() (sqltypes.Batch, bool, error) {
	s.streaming = true
	if s.fout == nil {
		s.fout = getBatchBuf()
	}
	n := batchSizeOf(s.ctx)
	out := (*s.fout)[:0]
	if s.Filter == nil {
		if s.streamEnd {
			return nil, false, nil
		}
		var more bool
		out, s.cursor, more = s.Table.ChunkRows(s.cursor, "", n, out)
		s.streamEnd = !more
		s.RowsScanned += len(out)
		*s.fout = out
		if len(out) == 0 {
			return nil, false, nil
		}
		return out, true, nil
	}
	var evalErr error
	for len(out) == 0 && !s.streamEnd {
		next, more := s.Table.ScanChunk(s.cursor, "", n, func(r sqltypes.Row) bool {
			s.RowsScanned++
			ok, err := PredicateTrue(s.Filter, s.ctx, r)
			if err != nil {
				evalErr = err
				return false
			}
			if ok {
				out = append(out, r)
			}
			return true
		})
		if evalErr != nil {
			*s.fout = out
			return nil, false, evalErr
		}
		if !more {
			s.streamEnd = true
		}
		s.cursor = next
	}
	*s.fout = out
	if len(out) == 0 {
		return nil, false, nil
	}
	return out, true, nil
}

// Next implements Operator. A clustered scan that already streamed batches
// keeps pulling chunks through the same cursor (adapters may mix modes);
// otherwise it materializes the snapshot on first call, preserving the
// original row-at-a-time semantics.
func (s *Scan) Next() (sqltypes.Row, bool, error) {
	if s.Index == "" {
		if s.streaming {
			for s.pos >= len(s.curb) {
				b, ok, err := s.nextChunk()
				if err != nil || !ok {
					return nil, false, err
				}
				s.curb, s.pos = b, 0
			}
			r := s.curb[s.pos]
			s.pos++
			return r, true, nil
		}
		if s.rows == nil {
			s.snapshot()
		}
	}
	for s.pos < len(s.rows) {
		r := s.rows[s.pos]
		s.pos++
		s.RowsScanned++
		if s.Filter != nil {
			ok, err := PredicateTrue(s.Filter, s.ctx, r)
			if err != nil {
				return nil, false, err
			}
			if !ok {
				continue
			}
		}
		return r, true, nil
	}
	return nil, false, nil
}

// NextBatch implements BatchOperator. Without a residual filter it returns
// zero-copy subslices of the snapshot; with one it compacts qualifying rows
// into a pooled output buffer, scanning as much input as it takes to fill a
// batch (or reach the end). Clustered scans stream chunks from the tree
// instead (see nextChunk).
func (s *Scan) NextBatch() (sqltypes.Batch, bool, error) {
	if s.FilterKernel != nil {
		// Vectorized predicate: evaluate column-at-a-time via the columnar
		// path, then compact the surviving row references into a pooled
		// buffer (or hand back the chunk unchanged when nothing filtered).
		cb, ok, err := s.NextVec()
		if err != nil || !ok {
			return nil, false, err
		}
		if cb.Sel == nil && cb.Rows != nil {
			return cb.Rows, true, nil
		}
		if s.cout == nil {
			s.cout = getBatchBuf()
		}
		out := cb.AppendRows((*s.cout)[:0])
		*s.cout = out
		return out, true, nil
	}
	if s.Index == "" && s.rows == nil {
		return s.nextChunk()
	}
	n := batchSizeOf(s.ctx)
	if s.Filter == nil {
		b, ok, err := sliceBatch(s.rows, &s.pos, n)
		s.RowsScanned += len(b)
		return b, ok, err
	}
	if s.fout == nil {
		s.fout = getBatchBuf()
	}
	out := (*s.fout)[:0]
	for len(out) < n && s.pos < len(s.rows) {
		r := s.rows[s.pos]
		s.pos++
		s.RowsScanned++
		ok, err := PredicateTrue(s.Filter, s.ctx, r)
		if err != nil {
			return nil, false, err
		}
		if ok {
			out = append(out, r)
		}
	}
	*s.fout = out
	if len(out) == 0 {
		return nil, false, nil
	}
	return out, true, nil
}

// Close implements Operator. It returns the pooled buffers.
func (s *Scan) Close() error {
	s.rows = nil
	s.curb = nil
	putRowBuf(s.buf)
	s.buf = nil
	putBatchBuf(s.fout)
	s.fout = nil
	putBatchBuf(s.cout)
	s.cout = nil
	return nil
}

// ---- Filter ----

// Filter passes through rows satisfying a predicate.
type Filter struct {
	Child Operator
	Pred  Compiled
	// Kernel, when non-nil, is the vectorized form of Pred used by the
	// columnar path; the row and batch paths keep evaluating Pred.
	Kernel BoolKernel
	ctx    *EvalContext

	bchild BatchOperator
	out    *sqltypes.Batch // pooled output buffer for the batch path
	// Columnar-path state.
	vchild   VecOperator
	fallback BoolKernel
	selbuf   []int32
}

// Schema implements Operator.
func (f *Filter) Schema() *Schema { return f.Child.Schema() }

// Open implements Operator.
func (f *Filter) Open(ctx *EvalContext) error { f.ctx = ctx; return f.Child.Open(ctx) }

// Next implements Operator.
func (f *Filter) Next() (sqltypes.Row, bool, error) {
	for {
		row, ok, err := f.Child.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		keep, err := PredicateTrue(f.Pred, f.ctx, row)
		if err != nil {
			return nil, false, err
		}
		if keep {
			return row, true, nil
		}
	}
}

// NextBatch implements BatchOperator: it pulls child batches and compacts
// qualifying rows into a pooled output buffer, pulling as many input batches
// as it takes to produce at least one row (or reach the end).
func (f *Filter) NextBatch() (sqltypes.Batch, bool, error) {
	if f.bchild == nil {
		f.bchild = AsBatch(f.Child)
	}
	if f.out == nil {
		f.out = getBatchBuf()
	}
	out := (*f.out)[:0]
	for len(out) == 0 {
		in, ok, err := f.bchild.NextBatch()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			break
		}
		for _, row := range in {
			keep, err := PredicateTrue(f.Pred, f.ctx, row)
			if err != nil {
				return nil, false, err
			}
			if keep {
				out = append(out, row)
			}
		}
	}
	*f.out = out
	if len(out) == 0 {
		return nil, false, nil
	}
	return out, true, nil
}

// Close implements Operator. Whichever adapters were instantiated are
// closed; closing the child more than once is safe per the Operator
// contract.
func (f *Filter) Close() error {
	putBatchBuf(f.out)
	f.out = nil
	return closeAdapted(f.Child, f.vchild, f.bchild, func() { f.vchild, f.bchild = nil, nil })
}

// ---- Project ----

// Project computes output expressions over child rows.
type Project struct {
	Child Operator
	Exprs []Compiled
	// Cols, when non-nil, marks the projection as a pure column gather:
	// output column j is input column Cols[j]. The columnar path then
	// forwards the child's vectors without evaluating closures or
	// materializing rows.
	Cols []int
	Out  *Schema
	ctx  *EvalContext

	bchild BatchOperator
	out    *sqltypes.Batch // pooled output buffer for the batch path
	// Columnar-path state.
	vchild VecOperator
	vout   sqltypes.ColBatch
}

// Schema implements Operator.
func (p *Project) Schema() *Schema { return p.Out }

// Open implements Operator.
func (p *Project) Open(ctx *EvalContext) error { p.ctx = ctx; return p.Child.Open(ctx) }

// Next implements Operator.
func (p *Project) Next() (sqltypes.Row, bool, error) {
	row, ok, err := p.Child.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	out := make(sqltypes.Row, len(p.Exprs))
	for i, e := range p.Exprs {
		out[i], err = e(p.ctx, row)
		if err != nil {
			return nil, false, err
		}
	}
	return out, true, nil
}

// NextBatch implements BatchOperator: it computes output rows for one child
// batch at a time into a pooled buffer.
func (p *Project) NextBatch() (sqltypes.Batch, bool, error) {
	if p.bchild == nil {
		p.bchild = AsBatch(p.Child)
	}
	in, ok, err := p.bchild.NextBatch()
	if err != nil || !ok {
		return nil, false, err
	}
	if p.out == nil {
		p.out = getBatchBuf()
	}
	out := (*p.out)[:0]
	for _, row := range in {
		res := make(sqltypes.Row, len(p.Exprs))
		for i, e := range p.Exprs {
			res[i], err = e(p.ctx, row)
			if err != nil {
				return nil, false, err
			}
		}
		out = append(out, res)
	}
	*p.out = out
	return out, true, nil
}

// Close implements Operator.
func (p *Project) Close() error {
	putBatchBuf(p.out)
	p.out = nil
	return closeAdapted(p.Child, p.vchild, p.bchild, func() { p.vchild, p.bchild = nil, nil })
}

// ---- Joins ----

// JoinKind selects inner, semi (EXISTS) or anti (NOT EXISTS) join behavior.
type JoinKind int

// Join kinds.
const (
	JoinInner JoinKind = iota
	JoinSemi
	JoinAnti
)

// IndexLoopJoin is an index nested-loop join: for each outer row it seeks
// the inner table's index on equality keys computed from the outer row.
type IndexLoopJoin struct {
	Outer    Operator
	Inner    *storage.Table
	Index    string
	InnerSch *Schema    // schema of inner rows (stored layout)
	OuterKey []Compiled // one per leading index column
	Residual Compiled   // evaluated over concat(outer, inner)
	Kind     JoinKind

	schema  *Schema
	ctx     *EvalContext
	cur     sqltypes.Row
	matches []sqltypes.Row
	mi      int
	// InnerLookups counts index seeks, for cost validation.
	InnerLookups int
}

// NewIndexLoopJoin builds an index nested-loop join.
func NewIndexLoopJoin(outer Operator, inner *storage.Table, index string, innerSch *Schema, outerKey []Compiled, residual Compiled, kind JoinKind) *IndexLoopJoin {
	j := &IndexLoopJoin{Outer: outer, Inner: inner, Index: index, InnerSch: innerSch, OuterKey: outerKey, Residual: residual, Kind: kind}
	if kind == JoinInner {
		j.schema = Concat(outer.Schema(), innerSch)
	} else {
		j.schema = outer.Schema()
	}
	return j
}

// Schema implements Operator.
func (j *IndexLoopJoin) Schema() *Schema { return j.schema }

// Open implements Operator.
func (j *IndexLoopJoin) Open(ctx *EvalContext) error {
	j.ctx = ctx
	j.cur, j.matches, j.mi = nil, nil, 0
	j.InnerLookups = 0
	return j.Outer.Open(ctx)
}

// Next implements Operator.
func (j *IndexLoopJoin) Next() (sqltypes.Row, bool, error) {
	for {
		for j.mi < len(j.matches) {
			m := j.matches[j.mi]
			j.mi++
			out := append(append(make(sqltypes.Row, 0, len(j.cur)+len(m)), j.cur...), m...)
			if j.Residual != nil {
				ok, err := PredicateTrue(j.Residual, j.ctx, out)
				if err != nil {
					return nil, false, err
				}
				if !ok {
					continue
				}
			}
			return out, true, nil
		}
		row, ok, err := j.Outer.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		matches, err := j.lookup(row)
		if err != nil {
			return nil, false, err
		}
		switch j.Kind {
		case JoinInner:
			j.cur, j.matches, j.mi = row, matches, 0
		case JoinSemi, JoinAnti:
			found := false
			for _, m := range matches {
				if j.Residual == nil {
					found = true
					break
				}
				joined := append(append(make(sqltypes.Row, 0, len(row)+len(m)), row...), m...)
				ok, err := PredicateTrue(j.Residual, j.ctx, joined)
				if err != nil {
					return nil, false, err
				}
				if ok {
					found = true
					break
				}
			}
			if found == (j.Kind == JoinSemi) {
				return row, true, nil
			}
		}
	}
}

func (j *IndexLoopJoin) lookup(outer sqltypes.Row) ([]sqltypes.Row, error) {
	j.InnerLookups++
	keyVals := make(sqltypes.Row, len(j.OuterKey))
	for i, k := range j.OuterKey {
		v, err := k(j.ctx, outer)
		if err != nil {
			return nil, err
		}
		if v.IsNull() {
			return nil, nil
		}
		keyVals[i] = v
	}
	var out []sqltypes.Row
	b := storage.Bound{Vals: keyVals, Inclusive: true}
	err := j.Inner.ScanIndex(j.Index, b, b, func(r sqltypes.Row) bool {
		out = append(out, r)
		return true
	})
	return out, err
}

// Close implements Operator.
func (j *IndexLoopJoin) Close() error { return j.Outer.Close() }

// ---- Sort / Limit / Distinct ----

// Sort materializes and orders child output.
type Sort struct {
	Child Operator
	Keys  []Compiled
	Desc  []bool

	rows []sqltypes.Row
	pos  int
}

// Schema implements Operator.
func (s *Sort) Schema() *Schema { return s.Child.Schema() }

// Open implements Operator: it drains and sorts the child.
func (s *Sort) Open(ctx *EvalContext) error {
	s.rows = nil
	s.pos = 0
	if err := s.Child.Open(ctx); err != nil {
		return err
	}
	type keyed struct {
		row  sqltypes.Row
		keys sqltypes.Row
	}
	var all []keyed
	for {
		row, ok, err := s.Child.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		ks := make(sqltypes.Row, len(s.Keys))
		for i, k := range s.Keys {
			v, err := k(ctx, row)
			if err != nil {
				return err
			}
			ks[i] = v
		}
		all = append(all, keyed{row: row, keys: ks})
	}
	sort.SliceStable(all, func(i, j int) bool {
		for k := range s.Keys {
			c := all[i].keys[k].Compare(all[j].keys[k])
			if c == 0 {
				continue
			}
			if s.Desc[k] {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	s.rows = make([]sqltypes.Row, len(all))
	for i, kr := range all {
		s.rows[i] = kr.row
	}
	return nil
}

// Next implements Operator.
func (s *Sort) Next() (sqltypes.Row, bool, error) {
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	r := s.rows[s.pos]
	s.pos++
	return r, true, nil
}

// NextBatch implements BatchOperator: zero-copy subslices of the sorted
// output.
func (s *Sort) NextBatch() (sqltypes.Batch, bool, error) {
	return sliceBatch(s.rows, &s.pos, DefaultBatchSize)
}

// Close implements Operator.
func (s *Sort) Close() error { s.rows = nil; return s.Child.Close() }

// Limit passes through at most N rows.
type Limit struct {
	Child Operator
	N     int64
	seen  int64

	bchild BatchOperator
}

// Schema implements Operator.
func (l *Limit) Schema() *Schema { return l.Child.Schema() }

// Open implements Operator.
func (l *Limit) Open(ctx *EvalContext) error { l.seen = 0; return l.Child.Open(ctx) }

// Next implements Operator.
func (l *Limit) Next() (sqltypes.Row, bool, error) {
	if l.seen >= l.N {
		return nil, false, nil
	}
	row, ok, err := l.Child.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	l.seen++
	return row, true, nil
}

// NextBatch implements BatchOperator: child batches pass through, truncated
// at the limit.
func (l *Limit) NextBatch() (sqltypes.Batch, bool, error) {
	if l.bchild == nil {
		l.bchild = AsBatch(l.Child)
	}
	if l.seen >= l.N {
		return nil, false, nil
	}
	b, ok, err := l.bchild.NextBatch()
	if err != nil || !ok {
		return nil, false, err
	}
	if rem := l.N - l.seen; int64(len(b)) > rem {
		b = b[:rem]
	}
	l.seen += int64(len(b))
	return b, true, nil
}

// Close implements Operator.
func (l *Limit) Close() error {
	if c := l.bchild; c != nil {
		l.bchild = nil
		return c.Close()
	}
	return l.Child.Close()
}

// Distinct removes duplicate rows.
type Distinct struct {
	Child Operator
	seen  map[string]bool
}

// Schema implements Operator.
func (d *Distinct) Schema() *Schema { return d.Child.Schema() }

// Open implements Operator.
func (d *Distinct) Open(ctx *EvalContext) error {
	d.seen = map[string]bool{}
	return d.Child.Open(ctx)
}

// Next implements Operator.
func (d *Distinct) Next() (sqltypes.Row, bool, error) {
	for {
		row, ok, err := d.Child.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		key := sqltypes.RowKey(row)
		if d.seen[key] {
			continue
		}
		d.seen[key] = true
		return row, true, nil
	}
}

// Close implements Operator.
func (d *Distinct) Close() error { d.seen = nil; return d.Child.Close() }

// ---- Aggregate ----

// AggSpec describes one aggregate computation.
type AggSpec struct {
	Func string   // COUNT, SUM, AVG, MIN, MAX
	Arg  Compiled // nil for COUNT(*)
	Star bool
}

// Aggregate is a hash group-by: output rows are group-key values followed by
// aggregate results. With no group keys it produces exactly one row.
type Aggregate struct {
	Child   Operator
	GroupBy []Compiled
	Aggs    []AggSpec
	Out     *Schema

	rows []sqltypes.Row
	pos  int
}

// Schema implements Operator.
func (a *Aggregate) Schema() *Schema { return a.Out }

type aggState struct {
	groupVals sqltypes.Row
	count     []int64
	sum       []float64
	sumIsInt  []bool
	sumInt    []int64
	min, max  []sqltypes.Value
	seen      []bool
}

// Open implements Operator: it drains the child and computes all groups.
func (a *Aggregate) Open(ctx *EvalContext) error {
	a.rows = nil
	a.pos = 0
	if err := a.Child.Open(ctx); err != nil {
		return err
	}
	groups := map[string]*aggState{}
	var order []string
	for {
		row, ok, err := a.Child.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		gvals := make(sqltypes.Row, len(a.GroupBy))
		for i, g := range a.GroupBy {
			gvals[i], err = g(ctx, row)
			if err != nil {
				return err
			}
		}
		key := sqltypes.RowKey(gvals)
		st, okG := groups[key]
		if !okG {
			st = &aggState{
				groupVals: gvals,
				count:     make([]int64, len(a.Aggs)),
				sum:       make([]float64, len(a.Aggs)),
				sumIsInt:  make([]bool, len(a.Aggs)),
				sumInt:    make([]int64, len(a.Aggs)),
				min:       make([]sqltypes.Value, len(a.Aggs)),
				max:       make([]sqltypes.Value, len(a.Aggs)),
				seen:      make([]bool, len(a.Aggs)),
			}
			for i := range st.sumIsInt {
				st.sumIsInt[i] = true
			}
			groups[key] = st
			order = append(order, key)
		}
		for i, spec := range a.Aggs {
			if spec.Star {
				st.count[i]++
				continue
			}
			v, err := spec.Arg(ctx, row)
			if err != nil {
				return err
			}
			if v.IsNull() {
				continue // SQL aggregates skip NULLs
			}
			st.count[i]++
			switch spec.Func {
			case "SUM", "AVG":
				if !v.IsNumeric() {
					return fmt.Errorf("exec: %s of %s", spec.Func, v.Kind())
				}
				if v.Kind() == sqltypes.KindInt && st.sumIsInt[i] {
					st.sumInt[i] += v.Int()
				} else {
					if st.sumIsInt[i] {
						st.sum[i] = float64(st.sumInt[i])
						st.sumIsInt[i] = false
					}
					st.sum[i] += v.Float()
				}
			case "MIN":
				if !st.seen[i] || v.Compare(st.min[i]) < 0 {
					st.min[i] = v
				}
			case "MAX":
				if !st.seen[i] || v.Compare(st.max[i]) > 0 {
					st.max[i] = v
				}
			}
			st.seen[i] = true
		}
	}
	// Empty input with no GROUP BY still yields one row of "empty"
	// aggregates (COUNT=0, others NULL).
	if len(groups) == 0 && len(a.GroupBy) == 0 {
		st := &aggState{
			groupVals: nil,
			count:     make([]int64, len(a.Aggs)),
			min:       make([]sqltypes.Value, len(a.Aggs)),
			max:       make([]sqltypes.Value, len(a.Aggs)),
			seen:      make([]bool, len(a.Aggs)),
			sumIsInt:  make([]bool, len(a.Aggs)),
			sumInt:    make([]int64, len(a.Aggs)),
			sum:       make([]float64, len(a.Aggs)),
		}
		groups[""] = st
		order = append(order, "")
	}
	for _, key := range order {
		st := groups[key]
		out := append(sqltypes.Row{}, st.groupVals...)
		for i, spec := range a.Aggs {
			out = append(out, finishAgg(spec, st, i))
		}
		a.rows = append(a.rows, out)
	}
	return nil
}

func finishAgg(spec AggSpec, st *aggState, i int) sqltypes.Value {
	switch spec.Func {
	case "COUNT":
		return sqltypes.NewInt(st.count[i])
	case "SUM":
		if st.count[i] == 0 {
			return sqltypes.Null
		}
		if st.sumIsInt[i] {
			return sqltypes.NewInt(st.sumInt[i])
		}
		return sqltypes.NewFloat(st.sum[i])
	case "AVG":
		if st.count[i] == 0 {
			return sqltypes.Null
		}
		total := st.sum[i]
		if st.sumIsInt[i] {
			total = float64(st.sumInt[i])
		}
		return sqltypes.NewFloat(total / float64(st.count[i]))
	case "MIN":
		if !st.seen[i] {
			return sqltypes.Null
		}
		return st.min[i]
	case "MAX":
		if !st.seen[i] {
			return sqltypes.Null
		}
		return st.max[i]
	default:
		return sqltypes.Null
	}
}

// Next implements Operator.
func (a *Aggregate) Next() (sqltypes.Row, bool, error) {
	if a.pos >= len(a.rows) {
		return nil, false, nil
	}
	r := a.rows[a.pos]
	a.pos++
	return r, true, nil
}

// NextBatch implements BatchOperator: zero-copy subslices of the computed
// groups.
func (a *Aggregate) NextBatch() (sqltypes.Batch, bool, error) {
	return sliceBatch(a.rows, &a.pos, DefaultBatchSize)
}

// Close implements Operator.
func (a *Aggregate) Close() error { a.rows = nil; return a.Child.Close() }
