package exec

import (
	"relaxedcc/internal/sqltypes"
)

// VecOperator is the columnar counterpart of BatchOperator: NextVec returns
// a batch in the columnar layout, with qualifying rows carried in the
// selection vector instead of compacted into a fresh row slice. Run prefers
// this path at the root; AsVec lets any batch-capable subtree feed a
// vectorized consumer.
//
// The returned *ColBatch follows the ownership contract documented on
// sqltypes.ColBatch: read-only for the consumer and valid only until the
// consumer's next NextVec/Close call on this operator. A NextVec result has
// NumActive() > 0 when ok; batches whose selection filtered every row are
// skipped inside the operator.
type VecOperator interface {
	Operator
	NextVec() (*sqltypes.ColBatch, bool, error)
}

// AsVec returns op itself when it is vector-capable, else wraps it in an
// adapter that lifts its batch (or row) interface into columnar batches
// without copying rows.
func AsVec(op Operator) VecOperator {
	if v, ok := op.(VecOperator); ok {
		return v
	}
	return &VecAdapter{Child: AsBatch(op)}
}

// VecAdapter lifts a batch operator into the columnar interface: each child
// batch becomes a row-backed ColBatch with a full selection. The container
// is reused across calls; the rows are the child's (shared, immutable).
type VecAdapter struct {
	Child BatchOperator
	out   sqltypes.ColBatch
}

// Schema implements Operator.
func (a *VecAdapter) Schema() *Schema { return a.Child.Schema() }

// Open implements Operator.
func (a *VecAdapter) Open(ctx *EvalContext) error { return a.Child.Open(ctx) }

// Next implements Operator.
func (a *VecAdapter) Next() (sqltypes.Row, bool, error) { return a.Child.Next() }

// NextBatch implements BatchOperator.
func (a *VecAdapter) NextBatch() (sqltypes.Batch, bool, error) { return a.Child.NextBatch() }

// NextVec implements VecOperator.
func (a *VecAdapter) NextVec() (*sqltypes.ColBatch, bool, error) {
	b, ok, err := a.Child.NextBatch()
	if err != nil || !ok {
		return nil, false, err
	}
	a.out.ResetRows(b, len(a.Child.Schema().Cols))
	return &a.out, true, nil
}

// Close implements Operator.
func (a *VecAdapter) Close() error { return a.Child.Close() }
