package exec

import (
	"fmt"

	"relaxedcc/internal/sqlparser"
	"relaxedcc/internal/sqltypes"
)

// BoolKernel is a predicate compiled to run column-at-a-time: it evaluates
// over the candidate rows of a columnar batch and writes the indexes of the
// surviving rows (those where the predicate is TRUE — NULL and FALSE both
// reject, per SQL WHERE semantics) into dst, returning the filled slice.
//
// cand lists the candidate row indexes in ascending order; nil means all
// cb.Len() rows. dst may alias cand's backing array: kernels compact left
// to right, so the write position never passes the read position. Chained
// kernels (AND) exploit this to refine a selection in place.
type BoolKernel func(ctx *EvalContext, cb *sqltypes.ColBatch, cand, dst []int32) ([]int32, error)

// CompileKernel compiles an AST predicate to a column-at-a-time kernel.
// It handles the shapes that dominate pushed-down scan predicates —
// comparisons between a column and a literal (either side), column-column
// comparisons, BETWEEN over literals, and AND chains of those — and reports
// ok=false for anything else, leaving the caller on the row-at-a-time
// Compiled path. Kernels mirror the row evaluator's semantics exactly
// (NULL rejects, numeric kinds compare across INT/FLOAT, mixed-kind
// comparisons outside the numeric tower are errors).
func CompileKernel(e sqlparser.Expr, schema *Schema) (BoolKernel, bool) {
	switch e := e.(type) {
	case *sqlparser.BinaryExpr:
		switch e.Op {
		case sqlparser.OpAnd:
			l, okL := CompileKernel(e.Left, schema)
			r, okR := CompileKernel(e.Right, schema)
			if !okL || !okR {
				return nil, false
			}
			return andKernel(l, r), true
		case sqlparser.OpEQ, sqlparser.OpNE, sqlparser.OpLT, sqlparser.OpLE, sqlparser.OpGT, sqlparser.OpGE:
			if col, lit, op, ok := colLitCmp(e, schema); ok {
				return cmpLitKernel(col, op, lit), true
			}
			if lc, rc, ok := colColCmp(e, schema); ok {
				return cmpColKernel(lc, rc, e.Op), true
			}
			return nil, false
		default:
			return nil, false
		}
	case *sqlparser.BetweenExpr:
		if e.Not {
			return nil, false
		}
		col, ok := colOrdinal(e.Expr, schema)
		if !ok {
			return nil, false
		}
		lo, okLo := litValue(e.Lo)
		hi, okHi := litValue(e.Hi)
		if !okLo || !okHi {
			return nil, false
		}
		return andKernel(cmpLitKernel(col, sqlparser.OpGE, lo), cmpLitKernel(col, sqlparser.OpLE, hi)), true
	default:
		return nil, false
	}
}

// KernelFromPredicate lifts a row-at-a-time compiled predicate into the
// kernel interface: it tests each candidate row via the batch's row view
// (zero-copy for row-backed batches). The fallback that keeps selection
// vectors flowing when a predicate has no columnar form.
func KernelFromPredicate(p Compiled) BoolKernel {
	return func(ctx *EvalContext, cb *sqltypes.ColBatch, cand, dst []int32) ([]int32, error) {
		dst = resetSel(dst)
		var evalErr error
		forCand(cb, cand, func(i int32) bool {
			keep, err := PredicateTrue(p, ctx, cb.Row(int(i)))
			if err != nil {
				evalErr = err
				return false
			}
			if keep {
				dst = append(dst, i)
			}
			return true
		})
		if evalErr != nil {
			return nil, evalErr
		}
		return dst, nil
	}
}

// emptySel is the canonical non-nil empty selection. Kernels must never
// return a nil slice for "no survivors": a nil candidate list means "all
// rows", so a nil result fed back into a kernel chain would re-widen the
// selection instead of keeping it empty.
var emptySel = make([]int32, 0)

// resetSel truncates a reusable selection buffer for refilling. A nil dst
// is replaced by emptySel rather than resliced: dst[:0] of nil is still
// nil, which a zero-match kernel would then return as "all rows".
func resetSel(dst []int32) []int32 {
	if dst == nil {
		return emptySel
	}
	return dst[:0]
}

// andKernel chains two kernels: the second refines the first's survivors in
// place (safe because kernels compact left to right).
func andKernel(a, b BoolKernel) BoolKernel {
	return func(ctx *EvalContext, cb *sqltypes.ColBatch, cand, dst []int32) ([]int32, error) {
		s, err := a(ctx, cb, cand, dst)
		if err != nil {
			return nil, err
		}
		if len(s) == 0 {
			// Short-circuit: b must not see an empty selection as nil
			// (= all rows). When a was handed a nil dst and matched
			// nothing, s itself is nil — substitute the canonical empty
			// selection so callers can't misread it either.
			if s == nil {
				s = emptySel
			}
			return s, nil
		}
		return b(ctx, cb, s, s[:0])
	}
}

// colLitCmp matches `col OP literal` or `literal OP col` (flipping the
// operator for the reversed form).
func colLitCmp(e *sqlparser.BinaryExpr, schema *Schema) (col int, lit sqltypes.Value, op sqlparser.BinOp, ok bool) {
	if c, okC := colOrdinal(e.Left, schema); okC {
		if v, okL := litValue(e.Right); okL {
			return c, v, e.Op, true
		}
	}
	if c, okC := colOrdinal(e.Right, schema); okC {
		if v, okL := litValue(e.Left); okL {
			return c, v, flipCmp(e.Op), true
		}
	}
	return 0, sqltypes.Null, e.Op, false
}

func colColCmp(e *sqlparser.BinaryExpr, schema *Schema) (l, r int, ok bool) {
	lc, okL := colOrdinal(e.Left, schema)
	rc, okR := colOrdinal(e.Right, schema)
	if !okL || !okR {
		return 0, 0, false
	}
	return lc, rc, true
}

func colOrdinal(e sqlparser.Expr, schema *Schema) (int, bool) {
	ref, ok := e.(*sqlparser.ColumnRef)
	if !ok {
		return 0, false
	}
	idx := schema.Lookup(ref.Table, ref.Column)
	if idx < 0 {
		return 0, false
	}
	return idx, true
}

func litValue(e sqlparser.Expr) (sqltypes.Value, bool) {
	lit, ok := e.(*sqlparser.Literal)
	if !ok {
		return sqltypes.Null, false
	}
	return lit.Val, true
}

// flipCmp mirrors a comparison operator for swapped operands.
func flipCmp(op sqlparser.BinOp) sqlparser.BinOp {
	switch op {
	case sqlparser.OpLT:
		return sqlparser.OpGT
	case sqlparser.OpLE:
		return sqlparser.OpGE
	case sqlparser.OpGT:
		return sqlparser.OpLT
	case sqlparser.OpGE:
		return sqlparser.OpLE
	default:
		return op // EQ and NE are symmetric
	}
}

// cmpTrue converts a three-way comparison to the operator's truth value.
func cmpTrue(op sqlparser.BinOp, c int) bool {
	switch op {
	case sqlparser.OpEQ:
		return c == 0
	case sqlparser.OpNE:
		return c != 0
	case sqlparser.OpLT:
		return c < 0
	case sqlparser.OpLE:
		return c <= 0
	case sqlparser.OpGT:
		return c > 0
	default:
		return c >= 0 // OpGE
	}
}

// cmpLitKernel compares one column against a constant. The hot shapes —
// numeric column vs numeric literal, string column vs string literal — run
// as tight typed loops over the transposed vector; everything else falls
// back to generic Value comparison with the row evaluator's type checking.
func cmpLitKernel(col int, op sqlparser.BinOp, lit sqltypes.Value) BoolKernel {
	return func(ctx *EvalContext, cb *sqltypes.ColBatch, cand, dst []int32) ([]int32, error) {
		v := cb.Col(col)
		dst = resetSel(dst)
		if lit.IsNull() {
			return dst, nil // NULL comparison is never TRUE
		}
		switch {
		case v.Kind == sqltypes.KindInt && lit.Kind() == sqltypes.KindInt:
			li := lit.Int()
			forCand(cb, cand, func(i int32) bool {
				if v.IsNull(int(i)) {
					return true
				}
				if cmpTrue(op, cmpI64(v.I64[i], li)) {
					dst = append(dst, i)
				}
				return true
			})
		case (v.Kind == sqltypes.KindInt || v.Kind == sqltypes.KindFloat) && lit.IsNumeric():
			// Mixed INT/FLOAT comparisons go through float64, matching
			// Value.Compare.
			lf := lit.Float()
			isInt := v.Kind == sqltypes.KindInt
			forCand(cb, cand, func(i int32) bool {
				if v.IsNull(int(i)) {
					return true
				}
				var f float64
				if isInt {
					f = float64(v.I64[i])
				} else {
					f = v.F64[i]
				}
				if cmpTrue(op, cmpF64(f, lf)) {
					dst = append(dst, i)
				}
				return true
			})
		case v.Kind == sqltypes.KindString && lit.Kind() == sqltypes.KindString:
			ls := lit.Str()
			forCand(cb, cand, func(i int32) bool {
				if v.IsNull(int(i)) {
					return true
				}
				if cmpTrue(op, cmpStr(v.Str[i], ls)) {
					dst = append(dst, i)
				}
				return true
			})
		default:
			var evalErr error
			forCand(cb, cand, func(i int32) bool {
				val := v.Value(int(i))
				if val.IsNull() {
					return true
				}
				if err := comparableValues(val, lit); err != nil {
					evalErr = err
					return false
				}
				if cmpTrue(op, val.Compare(lit)) {
					dst = append(dst, i)
				}
				return true
			})
			if evalErr != nil {
				return nil, evalErr
			}
		}
		return dst, nil
	}
}

// cmpColKernel compares two columns of the same batch. Typed loops cover
// same-kind numeric columns; the generic path handles the rest with the row
// evaluator's type checking.
func cmpColKernel(lc, rc int, op sqlparser.BinOp) BoolKernel {
	return func(ctx *EvalContext, cb *sqltypes.ColBatch, cand, dst []int32) ([]int32, error) {
		l, r := cb.Col(lc), cb.Col(rc)
		dst = resetSel(dst)
		switch {
		case l.Kind == sqltypes.KindInt && r.Kind == sqltypes.KindInt:
			forCand(cb, cand, func(i int32) bool {
				if l.IsNull(int(i)) || r.IsNull(int(i)) {
					return true
				}
				if cmpTrue(op, cmpI64(l.I64[i], r.I64[i])) {
					dst = append(dst, i)
				}
				return true
			})
		case l.Kind == sqltypes.KindFloat && r.Kind == sqltypes.KindFloat:
			forCand(cb, cand, func(i int32) bool {
				if l.IsNull(int(i)) || r.IsNull(int(i)) {
					return true
				}
				if cmpTrue(op, cmpF64(l.F64[i], r.F64[i])) {
					dst = append(dst, i)
				}
				return true
			})
		default:
			var evalErr error
			forCand(cb, cand, func(i int32) bool {
				lv, rv := l.Value(int(i)), r.Value(int(i))
				if lv.IsNull() || rv.IsNull() {
					return true
				}
				if err := comparableValues(lv, rv); err != nil {
					evalErr = err
					return false
				}
				if cmpTrue(op, lv.Compare(rv)) {
					dst = append(dst, i)
				}
				return true
			})
			if evalErr != nil {
				return nil, evalErr
			}
		}
		return dst, nil
	}
}

// forCand iterates the candidate indexes (all rows when cand is nil),
// stopping early when fn returns false.
func forCand(cb *sqltypes.ColBatch, cand []int32, fn func(int32) bool) {
	if cand == nil {
		n := int32(cb.Len())
		for i := int32(0); i < n; i++ {
			if !fn(i) {
				return
			}
		}
		return
	}
	for _, i := range cand {
		if !fn(i) {
			return
		}
	}
}

func cmpI64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpF64(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpStr(a, b string) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// comparableValues mirrors the row evaluator's type check for comparisons.
func comparableValues(a, b sqltypes.Value) error {
	if a.Kind() == b.Kind() || (a.IsNumeric() && b.IsNumeric()) {
		return nil
	}
	return fmt.Errorf("exec: cannot compare %s with %s", a.Kind(), b.Kind())
}
