package exec

import (
	"testing"
	"time"

	"relaxedcc/internal/sqltypes"
)

func TestValuesSchemaAccessor(t *testing.T) {
	s := testSchema("t")
	v := NewValues(s, nil)
	if v.Schema() != s {
		t.Fatal("Values.Schema")
	}
}

func TestTruthyKinds(t *testing.T) {
	cases := []struct {
		v    sqltypes.Value
		want bool
	}{
		{sqltypes.NewBool(true), true},
		{sqltypes.NewBool(false), false},
		{sqltypes.NewInt(0), false},
		{sqltypes.NewInt(5), true},
		{sqltypes.NewFloat(0), false},
		{sqltypes.NewFloat(0.1), true},
		{sqltypes.NewString("x"), false},
		{sqltypes.Null, false},
	}
	for _, c := range cases {
		if got := truthy(c.v); got != c.want {
			t.Errorf("truthy(%v) = %v", c.v, got)
		}
	}
}

func TestHashJoinSemiWithResidual(t *testing.T) {
	// Semi/anti joins with residual predicates exercise anyMatch fully.
	left := NewValues(testSchema("L"), testRows(4))
	right := NewValues(testSchema("R"), testRows(4))
	semi := NewHashJoin(left, right,
		[]Compiled{compileItem(t, "L.id", left.Schema())},
		[]Compiled{compileItem(t, "R.id", right.Schema())},
		nil, JoinSemi)
	semi.Residual = compile(t, "L.bal + R.bal > 5", Concat(left.Schema(), right.Schema()))
	rows := drain(t, semi)
	// bal doubles per match: 2*bal > 5 -> bal >= 3: ids 3, 4.
	if len(rows) != 2 || rows[0][0].Int() != 3 {
		t.Fatalf("semi residual = %v", rows)
	}
	left2 := NewValues(testSchema("L"), testRows(4))
	right2 := NewValues(testSchema("R"), testRows(4))
	anti := NewHashJoin(left2, right2,
		[]Compiled{compileItem(t, "L.id", left2.Schema())},
		[]Compiled{compileItem(t, "R.id", right2.Schema())},
		nil, JoinAnti)
	anti.Residual = compile(t, "L.bal + R.bal > 5", Concat(left2.Schema(), right2.Schema()))
	rows = drain(t, anti)
	if len(rows) != 2 || rows[1][0].Int() != 2 {
		t.Fatalf("anti residual = %v", rows)
	}
}

func TestMergeJoinSemiResidual(t *testing.T) {
	left := sortedRows([]int64{1, 2, 3}, 1)
	right := sortedRows([]int64{1, 2, 3}, 2)
	l := NewValues(testSchema("L"), left)
	r := NewValues(testSchema("R"), right)
	mj := NewMergeJoin(l, r,
		[]Compiled{compileItem(t, "L.id", l.Schema())},
		[]Compiled{compileItem(t, "R.id", r.Schema())},
		nil, JoinSemi)
	mj.Residual = compile(t, "L.bal + R.bal > 4", Concat(testSchema("L"), testSchema("R")))
	rows := drain(t, mj)
	// 2*bal > 4 -> bal >= 3: only id 3.
	if len(rows) != 1 || rows[0][0].Int() != 3 {
		t.Fatalf("merge semi residual = %v", rows)
	}
}

func TestCollectSwitchUnionsDeep(t *testing.T) {
	s := testSchema("t")
	mkSU := func() *SwitchUnion {
		return &SwitchUnion{
			Children: []Operator{NewValues(s, nil), NewValues(s, nil)},
			Selector: func(*EvalContext) (int, error) { return 0, nil },
		}
	}
	inner := mkSU()
	nested := &SwitchUnion{
		Children: []Operator{inner, NewValues(s, nil)},
		Selector: func(*EvalContext) (int, error) { return 0, nil },
	}
	root := &Limit{N: 1, Child: &Sort{
		Child: &Distinct{Child: &Aggregate{
			Child: &HashJoin{Left: nested, Right: NewValues(s, nil)},
			Out:   s,
		}},
	}}
	// IndexLoopJoin outer also walked.
	ilj := &IndexLoopJoin{Outer: mkSU()}
	if got := len(CollectSwitchUnions(root)); got != 2 {
		t.Fatalf("nested collect = %d", got)
	}
	if got := len(CollectSwitchUnions(ilj)); got != 1 {
		t.Fatalf("ilj collect = %d", got)
	}
}

func TestPhaseTimesScaleZero(t *testing.T) {
	p := PhaseTimes{Setup: time.Second}
	if p.Scale(0) != p {
		t.Fatal("Scale(0) should be identity")
	}
}

func TestSchemaErrors(t *testing.T) {
	if ErrAmbiguous("x").Error() == "" {
		t.Fatal("ErrAmbiguous")
	}
	if ErrNoColumn("", "x").Error() == "" || ErrNoColumn("t", "x").Error() == "" {
		t.Fatal("ErrNoColumn")
	}
}

func TestLimitAfterEnd(t *testing.T) {
	s := testSchema("t")
	l := &Limit{Child: NewValues(s, testRows(2)), N: 5}
	rows := drain(t, l)
	if len(rows) != 2 {
		t.Fatalf("limit above input size = %d", len(rows))
	}
	// Next after exhaustion stays exhausted.
	if _, ok, _ := l.Next(); ok {
		t.Fatal("Next after end")
	}
}

func TestCompileComparisonOnBooleans(t *testing.T) {
	s := testSchema("t")
	row := sqltypes.Row{intv(1), strv("x"), floatv(1)}
	// OR short circuit with error suppressed until needed.
	ok, err := PredicateTrue(compile(t, "id = 1 OR name = 'zzz'", s), ctx(), row)
	if err != nil || !ok {
		t.Fatal("OR short circuit")
	}
	// FALSE OR FALSE.
	ok, _ = PredicateTrue(compile(t, "id = 2 OR name = 'zzz'", s), ctx(), row)
	if ok {
		t.Fatal("false or false")
	}
}

func TestAggregateMinMaxStrings(t *testing.T) {
	s := testSchema("t")
	agg := &Aggregate{
		Child: NewValues(s, testRows(5)),
		Aggs: []AggSpec{
			{Func: "MIN", Arg: compileItem(t, "name", s)},
			{Func: "MAX", Arg: compileItem(t, "name", s)},
		},
		Out: NewSchema(Col{Name: "mn"}, Col{Name: "mx"}),
	}
	rows := drain(t, agg)
	if rows[0][0].Str() != "0" || rows[0][1].Str() != "2" {
		t.Fatalf("string min/max = %v", rows[0])
	}
}

func TestSumOverflowsToFloat(t *testing.T) {
	s := testSchema("t")
	rows := []sqltypes.Row{
		{intv(1), strv("a"), floatv(1)},
		{sqltypes.NewInt(2), strv("a"), sqltypes.NewFloat(2.5)},
	}
	agg := &Aggregate{
		Child: NewValues(s, rows),
		Aggs:  []AggSpec{{Func: "SUM", Arg: compileItem(t, "bal", s)}},
		Out:   NewSchema(Col{Name: "s"}),
	}
	out := drain(t, agg)
	if out[0][0].Kind() != sqltypes.KindFloat || out[0][0].Float() != 3.5 {
		t.Fatalf("mixed sum = %v", out[0][0])
	}
}
