package exec

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"relaxedcc/internal/sqlparser"
	"relaxedcc/internal/sqltypes"
)

// sortedRows builds rows (id, name, bal) sorted by id, with dupFactor rows
// per key.
func sortedRows(keys []int64, dupFactor int) []sqltypes.Row {
	sorted := append([]int64(nil), keys...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var out []sqltypes.Row
	for _, k := range sorted {
		for d := 0; d < dupFactor; d++ {
			out = append(out, sqltypes.Row{intv(k), strv(fmt.Sprint(d)), floatv(float64(k))})
		}
	}
	return out
}

func mergeJoinOf(t *testing.T, left, right []sqltypes.Row, kind JoinKind) *MergeJoin {
	t.Helper()
	l := NewValues(testSchema("L"), left)
	r := NewValues(testSchema("R"), right)
	return NewMergeJoin(l, r,
		[]Compiled{compileItem(t, "L.id", l.Schema())},
		[]Compiled{compileItem(t, "R.id", r.Schema())},
		nil, kind)
}

func TestMergeJoinInnerOneToOne(t *testing.T) {
	mj := mergeJoinOf(t, sortedRows([]int64{1, 2, 3, 5}, 1), sortedRows([]int64{2, 3, 4, 5}, 1), JoinInner)
	rows := drain(t, mj)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0][0].Int() != 2 || rows[2][0].Int() != 5 {
		t.Fatalf("rows = %v", rows)
	}
	if len(rows[0]) != 6 {
		t.Fatal("output width")
	}
}

func TestMergeJoinManyToMany(t *testing.T) {
	// 2 left dups x 3 right dups per key -> 6 outputs per matching key.
	mj := mergeJoinOf(t, sortedRows([]int64{1, 2}, 2), sortedRows([]int64{2, 3}, 3), JoinInner)
	rows := drain(t, mj)
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
}

func TestMergeJoinSemiAnti(t *testing.T) {
	left := sortedRows([]int64{1, 2, 3, 4}, 1)
	right := sortedRows([]int64{2, 4, 6}, 2)
	semi := mergeJoinOf(t, left, right, JoinSemi)
	rows := drain(t, semi)
	if len(rows) != 2 || rows[0][0].Int() != 2 || rows[1][0].Int() != 4 {
		t.Fatalf("semi = %v", rows)
	}
	anti := mergeJoinOf(t, left, right, JoinAnti)
	rows = drain(t, anti)
	if len(rows) != 2 || rows[0][0].Int() != 1 || rows[1][0].Int() != 3 {
		t.Fatalf("anti = %v", rows)
	}
}

func TestMergeJoinEmptyInputs(t *testing.T) {
	if rows := drain(t, mergeJoinOf(t, nil, sortedRows([]int64{1}, 1), JoinInner)); len(rows) != 0 {
		t.Fatal("empty left")
	}
	if rows := drain(t, mergeJoinOf(t, sortedRows([]int64{1}, 1), nil, JoinInner)); len(rows) != 0 {
		t.Fatal("empty right")
	}
	if rows := drain(t, mergeJoinOf(t, sortedRows([]int64{1, 2}, 1), nil, JoinAnti)); len(rows) != 2 {
		t.Fatal("anti with empty right keeps all")
	}
}

func TestMergeJoinNullKeys(t *testing.T) {
	left := sortedRows([]int64{1, 2}, 1)
	left[0][0] = sqltypes.Null // NULL sorts first, preserving order
	right := sortedRows([]int64{2}, 1)
	if rows := drain(t, mergeJoinOf(t, left, right, JoinInner)); len(rows) != 1 {
		t.Fatalf("inner with null = %d", len(rows))
	}
	if rows := drain(t, mergeJoinOf(t, left, right, JoinAnti)); len(rows) != 1 {
		t.Fatalf("anti with null = %d rows", len(rows))
	}
}

func TestMergeJoinResidual(t *testing.T) {
	l := NewValues(testSchema("L"), sortedRows([]int64{1, 2}, 2))
	r := NewValues(testSchema("R"), sortedRows([]int64{1, 2}, 2))
	mj := NewMergeJoin(l, r,
		[]Compiled{compileItem(t, "L.id", l.Schema())},
		[]Compiled{compileItem(t, "R.id", r.Schema())},
		nil, JoinInner)
	mj.Residual = compile(t, "L.name = R.name", mj.Schema())
	rows := drain(t, mj)
	// Per key: 2x2 pairs, residual keeps name-equal -> 2; two keys -> 4.
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
}

// TestQuickMergeEqualsHash property-tests merge join against hash join on
// random sorted multisets.
func TestQuickMergeEqualsHash(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		randKeys := func() []int64 {
			n := rng.Intn(30)
			out := make([]int64, n)
			for i := range out {
				out[i] = int64(rng.Intn(12))
			}
			return out
		}
		lrows := sortedRows(randKeys(), 1+rng.Intn(2))
		rrows := sortedRows(randKeys(), 1+rng.Intn(2))
		for _, kind := range []JoinKind{JoinInner, JoinSemi, JoinAnti} {
			var mjRows, hjRows []sqltypes.Row
			{
				mj := mergeJoinOf(t, lrows, rrows, kind)
				res, err := Run(mj, ctx(), 0)
				if err != nil {
					return false
				}
				mjRows = res.Rows
			}
			{
				l := NewValues(testSchema("L"), lrows)
				r := NewValues(testSchema("R"), rrows)
				hj := NewHashJoin(l, r,
					[]Compiled{compileItem(t, "L.id", l.Schema())},
					[]Compiled{compileItem(t, "R.id", r.Schema())},
					nil, kind)
				res, err := Run(hj, ctx(), 0)
				if err != nil {
					return false
				}
				hjRows = res.Rows
			}
			if !sameMultiset(mjRows, hjRows) {
				t.Logf("seed %d kind %d: merge %d rows, hash %d rows", seed, kind, len(mjRows), len(hjRows))
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// parseHelperSelect parses a single expression for benchmark key setup.
func parseHelperSelect(expr string) (sqlparserExpr, error) {
	sel, err := sqlparser.ParseSelect("SELECT " + expr)
	if err != nil {
		return nil, err
	}
	return sel.Items[0].Expr, nil
}

type sqlparserExpr = sqlparser.Expr

func sameMultiset(a, b []sqltypes.Row) bool {
	if len(a) != len(b) {
		return false
	}
	count := map[string]int{}
	for _, r := range a {
		count[sqltypes.RowKey(r)]++
	}
	for _, r := range b {
		count[sqltypes.RowKey(r)]--
	}
	for _, c := range count {
		if c != 0 {
			return false
		}
	}
	return true
}

func BenchmarkMergeVsHashJoin(b *testing.B) {
	keys := make([]int64, 20000)
	for i := range keys {
		keys[i] = int64(i)
	}
	lrows := sortedRows(keys, 1)
	rrows := sortedRows(keys, 1)
	lSchema, rSchema := testSchema("L"), testSchema("R")
	mkKeys := func(t *testing.B, binding string, s *Schema) []Compiled {
		e, err := parseHelperSelect(binding + ".id")
		if err != nil {
			t.Fatal(err)
		}
		c, err := Compile(e, s)
		if err != nil {
			t.Fatal(err)
		}
		return []Compiled{c}
	}
	b.Run("merge", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mj := NewMergeJoin(NewValues(lSchema, lrows), NewValues(rSchema, rrows),
				mkKeys(b, "L", lSchema), mkKeys(b, "R", rSchema), nil, JoinInner)
			if _, err := Run(mj, &EvalContext{}, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hash", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			hj := NewHashJoin(NewValues(lSchema, lrows), NewValues(rSchema, rrows),
				mkKeys(b, "L", lSchema), mkKeys(b, "R", rSchema), nil, JoinInner)
			if _, err := Run(hj, &EvalContext{}, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}
