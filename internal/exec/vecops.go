package exec

import (
	"relaxedcc/internal/sqltypes"
)

// This file holds the columnar (NextVec) paths of the core relational
// operators. The fusion rules:
//
//   - Scan fuses the pushed-down predicate: chunks come off the B+-tree as
//     bulk leaf windows, the kernel narrows them to a selection vector, and
//     no row is copied on either outcome.
//   - Filter refines the child batch's selection vector in place — the
//     sanctioned mutation of a flowing batch — and forwards the same
//     container.
//   - Project with a pure column gather (Cols) forwards the child's
//     vectors under reordered ordinals without materializing anything.
//
// Operators without a columnar advantage (sorts, aggregates, joins'
// row-shaped outputs) surface through AsVec/row-backed batches instead.

// closeAdapted closes whichever child adapters an operator instantiated,
// falling back to the raw child when none were. Closing the underlying
// child through more than one adapter is safe: Close is idempotent per the
// Operator contract.
func closeAdapted(child Operator, vchild VecOperator, bchild BatchOperator, clear func()) error {
	clear()
	var firstErr error
	closed := false
	if vchild != nil {
		closed = true
		if err := vchild.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if bchild != nil && any(vchild) != any(bchild) {
		closed = true
		if err := bchild.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if !closed {
		return child.Close()
	}
	return firstErr
}

// ---- Scan ----

// NextVec implements VecOperator: clustered scans stream bulk leaf windows
// straight into a row-backed columnar batch; index scans window the Open
// snapshot. The pushed-down predicate — the kernel when compiled, the
// row-at-a-time Compiled otherwise — narrows each batch to a selection
// vector; fully filtered batches are skipped.
func (s *Scan) NextVec() (*sqltypes.ColBatch, bool, error) {
	width := len(s.schema.Cols)
	n := batchSizeOf(s.ctx)
	for {
		var rows sqltypes.Batch
		if s.Index == "" && s.rows == nil {
			// Streaming clustered path: bulk leaf walk, one short latch per
			// chunk.
			s.streaming = true
			if s.streamEnd {
				return nil, false, nil
			}
			if s.fout == nil {
				s.fout = getBatchBuf()
			}
			out := (*s.fout)[:0]
			var more bool
			out, s.cursor, more = s.Table.ChunkRows(s.cursor, "", n, out)
			s.streamEnd = !more
			s.RowsScanned += len(out)
			*s.fout = out
			if len(out) == 0 {
				return nil, false, nil
			}
			rows = out
		} else {
			// Snapshot path (index scans, or a clustered snapshot already
			// materialized by the row path).
			if s.pos >= len(s.rows) {
				return nil, false, nil
			}
			end := s.pos + n
			if end > len(s.rows) {
				end = len(s.rows)
			}
			rows = sqltypes.Batch(s.rows[s.pos:end])
			s.RowsScanned += end - s.pos
			s.pos = end
		}
		s.vout.ResetRows(rows, width)
		if err := s.applyScanFilter(); err != nil {
			return nil, false, err
		}
		if s.vout.NumActive() > 0 {
			return &s.vout, true, nil
		}
	}
}

// applyScanFilter narrows the current output batch by the pushed-down
// predicate, preferring the columnar kernel.
func (s *Scan) applyScanFilter() error {
	if s.selbuf == nil && (s.FilterKernel != nil || s.Filter != nil) {
		// A nil Sel means "all rows active"; an empty selection must be a
		// non-nil empty slice, so the buffer exists before the first batch.
		s.selbuf = make([]int32, 0, 16)
	}
	if s.FilterKernel != nil {
		sel, err := s.FilterKernel(s.ctx, &s.vout, nil, s.selbuf[:0])
		if err != nil {
			return err
		}
		s.selbuf = sel
		s.vout.Sel = sel
		return nil
	}
	if s.Filter == nil {
		return nil
	}
	sel := s.selbuf[:0]
	for i, r := range s.vout.Rows {
		ok, err := PredicateTrue(s.Filter, s.ctx, r)
		if err != nil {
			return err
		}
		if ok {
			sel = append(sel, int32(i))
		}
	}
	s.selbuf = sel
	s.vout.Sel = sel
	return nil
}

// ---- Filter ----

// NextVec implements VecOperator: it pulls columnar child batches and
// refines their selection vectors — no rows move. The kernel runs when the
// planner compiled one; otherwise the row predicate evaluates per active
// row through the batch's zero-copy row view.
func (f *Filter) NextVec() (*sqltypes.ColBatch, bool, error) {
	if f.vchild == nil {
		f.vchild = AsVec(f.Child)
	}
	k := f.Kernel
	if k == nil {
		if f.fallback == nil {
			f.fallback = KernelFromPredicate(f.Pred)
		}
		k = f.fallback
	}
	if f.selbuf == nil {
		// A nil Sel means "all rows active"; an empty selection must be a
		// non-nil empty slice, so the buffer exists before the first batch.
		f.selbuf = make([]int32, 0, 16)
	}
	for {
		cb, ok, err := f.vchild.NextVec()
		if err != nil || !ok {
			return nil, false, err
		}
		sel, err := k(f.ctx, cb, cb.Sel, f.selbuf[:0])
		if err != nil {
			return nil, false, err
		}
		f.selbuf = sel
		if len(sel) == 0 {
			continue
		}
		cb.Sel = sel
		return cb, true, nil
	}
}

// ---- Project ----

// NextVec implements VecOperator. A pure column gather (Cols) forwards the
// child's vectors — reordered, selection intact, nothing materialized.
// General expression lists fall back to the batch path's row building and
// wrap the result.
func (p *Project) NextVec() (*sqltypes.ColBatch, bool, error) {
	if p.Cols == nil {
		b, ok, err := p.NextBatch()
		if err != nil || !ok {
			return nil, false, err
		}
		p.vout.ResetRows(b, len(p.Out.Cols))
		return &p.vout, true, nil
	}
	if p.vchild == nil {
		p.vchild = AsVec(p.Child)
	}
	in, ok, err := p.vchild.NextVec()
	if err != nil || !ok {
		return nil, false, err
	}
	p.vout.ResetCols(len(p.Cols), in.Len())
	for j, ord := range p.Cols {
		p.vout.SetCol(j, in.Col(ord))
	}
	p.vout.Sel = in.Sel
	return &p.vout, true, nil
}
