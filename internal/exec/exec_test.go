package exec

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"relaxedcc/internal/catalog"
	"relaxedcc/internal/sqlparser"
	"relaxedcc/internal/sqltypes"
	"relaxedcc/internal/storage"
)

var testNow = time.Date(2004, 6, 13, 12, 0, 0, 0, time.UTC)

func ctx() *EvalContext { return &EvalContext{Now: testNow} }

func intv(i int64) sqltypes.Value     { return sqltypes.NewInt(i) }
func strv(s string) sqltypes.Value    { return sqltypes.NewString(s) }
func floatv(f float64) sqltypes.Value { return sqltypes.NewFloat(f) }

// testSchema: t(id INT, name STRING, bal FLOAT)
func testSchema(binding string) *Schema {
	return NewSchema(
		Col{Binding: binding, Name: "id", Kind: sqltypes.KindInt},
		Col{Binding: binding, Name: "name", Kind: sqltypes.KindString},
		Col{Binding: binding, Name: "bal", Kind: sqltypes.KindFloat},
	)
}

func testRows(n int) []sqltypes.Row {
	rows := make([]sqltypes.Row, n)
	for i := range rows {
		rows[i] = sqltypes.Row{intv(int64(i + 1)), strv(fmt.Sprint((i + 1) % 3)), floatv(float64(i + 1))}
	}
	return rows
}

func compile(t *testing.T, sql string, schema *Schema) Compiled {
	t.Helper()
	sel, err := sqlparser.ParseSelect("SELECT 1 FROM x WHERE " + sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	c, err := Compile(sel.Where, schema)
	if err != nil {
		t.Fatalf("compile %q: %v", sql, err)
	}
	return c
}

func compileItem(t *testing.T, sql string, schema *Schema) Compiled {
	t.Helper()
	sel, err := sqlparser.ParseSelect("SELECT " + sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	c, err := Compile(sel.Items[0].Expr, schema)
	if err != nil {
		t.Fatalf("compile %q: %v", sql, err)
	}
	return c
}

func drain(t *testing.T, op Operator) []sqltypes.Row {
	t.Helper()
	res, err := Run(op, ctx(), 0)
	if err != nil {
		t.Fatal(err)
	}
	return res.Rows
}

func TestSchemaLookup(t *testing.T) {
	s := Concat(testSchema("A"), testSchema("B"))
	if s.Lookup("A", "id") != 0 || s.Lookup("B", "id") != 3 {
		t.Fatal("qualified lookup")
	}
	if s.Lookup("", "id") != -2 {
		t.Fatal("ambiguous lookup should return -2")
	}
	if s.Lookup("", "nope") != -1 {
		t.Fatal("missing lookup")
	}
	if s.Lookup("A", "ID") != 0 {
		t.Fatal("case-insensitive column names")
	}
	r := testSchema("A").Rebind("X")
	if r.Cols[0].Binding != "X" {
		t.Fatal("rebind")
	}
	if got := testSchema("T").String(); got != "(T.id, T.name, T.bal)" {
		t.Fatalf("String = %q", got)
	}
	if names := testSchema("T").ColumnNames(); names[2] != "bal" {
		t.Fatal("ColumnNames")
	}
}

func TestExprArithmeticAndComparison(t *testing.T) {
	s := testSchema("t")
	row := sqltypes.Row{intv(10), strv("x"), floatv(2.5)}
	cases := []struct {
		sql  string
		want sqltypes.Value
	}{
		{"id + 5", intv(15)},
		{"id - 5", intv(5)},
		{"id * 2", intv(20)},
		{"id / 4", floatv(2.5)},
		{"bal * 2", floatv(5)},
		{"id + bal", floatv(12.5)},
		{"-id", intv(-10)},
	}
	for _, c := range cases {
		got, err := compileItem(t, c.sql, s)(ctx(), row)
		if err != nil {
			t.Fatalf("%s: %v", c.sql, err)
		}
		if !got.Equal(c.want) {
			t.Errorf("%s = %v, want %v", c.sql, got, c.want)
		}
	}
	preds := []struct {
		sql  string
		want bool
	}{
		{"id = 10", true}, {"id <> 10", false}, {"id < 11", true},
		{"id <= 10", true}, {"id > 10", false}, {"id >= 11", false},
		{"name = 'x'", true}, {"name = 'y'", false},
		{"id BETWEEN 5 AND 15", true}, {"id NOT BETWEEN 5 AND 15", false},
		{"id IN (1, 10)", true}, {"id NOT IN (1, 10)", false},
		{"id IN (1, 2)", false},
		{"name IS NULL", false}, {"name IS NOT NULL", true},
		{"id = 10 AND name = 'x'", true},
		{"id = 9 OR name = 'x'", true},
		{"NOT (id = 10)", false},
		{"bal > 2 AND bal < 3", true},
	}
	for _, c := range preds {
		got, err := PredicateTrue(compile(t, c.sql, s), ctx(), row)
		if err != nil {
			t.Fatalf("%s: %v", c.sql, err)
		}
		if got != c.want {
			t.Errorf("%s = %v, want %v", c.sql, got, c.want)
		}
	}
}

func TestExprNullSemantics(t *testing.T) {
	s := testSchema("t")
	row := sqltypes.Row{sqltypes.Null, sqltypes.Null, floatv(1)}
	// NULL comparisons are not TRUE.
	for _, sql := range []string{"id = 1", "id <> 1", "id < 1", "id IN (1)", "id BETWEEN 0 AND 2"} {
		got, err := PredicateTrue(compile(t, sql, s), ctx(), row)
		if err != nil {
			t.Fatal(err)
		}
		if got {
			t.Errorf("%s on NULL should not be TRUE", sql)
		}
	}
	ok, _ := PredicateTrue(compile(t, "id IS NULL", s), ctx(), row)
	if !ok {
		t.Fatal("IS NULL")
	}
	// FALSE AND NULL = FALSE (short circuit); TRUE OR NULL = TRUE.
	ok, _ = PredicateTrue(compile(t, "bal = 2 AND id = 1", s), ctx(), row)
	if ok {
		t.Fatal("FALSE AND NULL")
	}
	ok, _ = PredicateTrue(compile(t, "bal = 1 OR id = 1", s), ctx(), row)
	if !ok {
		t.Fatal("TRUE OR NULL")
	}
	// x IN (1, NULL) with x=2 is NULL, not FALSE -> NOT IN also not TRUE.
	row2 := sqltypes.Row{intv(2), strv(""), floatv(0)}
	ok, _ = PredicateTrue(compile(t, "id IN (1, NULL)", s), ctx(), row2)
	if ok {
		t.Fatal("IN with NULL member")
	}
	ok, _ = PredicateTrue(compile(t, "id NOT IN (1, NULL)", s), ctx(), row2)
	if ok {
		t.Fatal("NOT IN with NULL member must be unknown")
	}
}

func TestExprErrors(t *testing.T) {
	s := testSchema("t")
	row := sqltypes.Row{intv(1), strv("x"), floatv(1)}
	// Type errors.
	if _, err := compileItem(t, "name + 1", s)(ctx(), row); err == nil {
		t.Fatal("string arithmetic should fail")
	}
	if _, err := compile(t, "name = 1", s)(ctx(), row); err == nil {
		t.Fatal("cross-kind comparison should fail")
	}
	if _, err := compileItem(t, "id / 0", s)(ctx(), row); err == nil {
		t.Fatal("division by zero should fail")
	}
	// Compile-time errors.
	sel, _ := sqlparser.ParseSelect("SELECT nope FROM t")
	if _, err := Compile(sel.Items[0].Expr, s); err == nil {
		t.Fatal("unknown column should fail at compile")
	}
	sel, _ = sqlparser.ParseSelect("SELECT SUM(id) FROM t")
	if _, err := Compile(sel.Items[0].Expr, s); err == nil {
		t.Fatal("aggregate outside Aggregate operator")
	}
	sel, _ = sqlparser.ParseSelect("SELECT $p FROM t")
	if _, err := Compile(sel.Items[0].Expr, s); err == nil {
		t.Fatal("unbound parameter")
	}
	sel, _ = sqlparser.ParseSelect("SELECT 1 FROM t WHERE EXISTS (SELECT 1 FROM u)")
	if _, err := Compile(sel.Where, s); err == nil {
		t.Fatal("EXISTS must be rejected by Compile")
	}
}

func TestGetdate(t *testing.T) {
	s := testSchema("t")
	got, err := compileItem(t, "GETDATE()", s)(ctx(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Time().Equal(testNow) {
		t.Fatal("GETDATE")
	}
	// Timestamp arithmetic: GETDATE() - 10 subtracts seconds.
	got, err = compileItem(t, "GETDATE() - 10", s)(ctx(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Time().Equal(testNow.Add(-10 * time.Second)) {
		t.Fatalf("GETDATE()-10 = %v", got)
	}
}

func TestValuesFilterProject(t *testing.T) {
	s := testSchema("t")
	src := NewValues(s, testRows(10))
	f := &Filter{Child: src, Pred: compile(t, "id > 7", s)}
	outSchema := NewSchema(Col{Name: "double", Kind: sqltypes.KindInt})
	p := &Project{Child: f, Exprs: []Compiled{compileItem(t, "id * 2", s)}, Out: outSchema}
	rows := drain(t, p)
	if len(rows) != 3 || rows[0][0].Int() != 16 || rows[2][0].Int() != 20 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestHashJoinInner(t *testing.T) {
	left := NewValues(testSchema("L"), testRows(5))
	right := NewValues(testSchema("R"), testRows(3))
	ls, rs := left.Schema(), right.Schema()
	join := NewHashJoin(left, right,
		[]Compiled{compileItem(t, "L.id", ls)},
		[]Compiled{compileItem(t, "R.id", rs)},
		nil, JoinInner)
	rows := drain(t, join)
	if len(rows) != 3 {
		t.Fatalf("inner join rows = %d", len(rows))
	}
	if len(rows[0]) != 6 {
		t.Fatal("join output width")
	}
}

func TestHashJoinSemiAnti(t *testing.T) {
	mk := func() (Operator, Operator) {
		return NewValues(testSchema("L"), testRows(5)), NewValues(testSchema("R"), testRows(3))
	}
	left, right := mk()
	semi := NewHashJoin(left, right,
		[]Compiled{compileItem(t, "L.id", left.Schema())},
		[]Compiled{compileItem(t, "R.id", right.Schema())},
		nil, JoinSemi)
	if rows := drain(t, semi); len(rows) != 3 || len(rows[0]) != 3 {
		t.Fatalf("semi join rows = %v", rows)
	}
	left, right = mk()
	anti := NewHashJoin(left, right,
		[]Compiled{compileItem(t, "L.id", left.Schema())},
		[]Compiled{compileItem(t, "R.id", right.Schema())},
		nil, JoinAnti)
	rows := drain(t, anti)
	if len(rows) != 2 || rows[0][0].Int() != 4 {
		t.Fatalf("anti join rows = %v", rows)
	}
}

func TestHashJoinResidualAndNullKeys(t *testing.T) {
	lrows := testRows(4)
	lrows[2][0] = sqltypes.Null // NULL key must not join
	left := NewValues(testSchema("L"), lrows)
	right := NewValues(testSchema("R"), testRows(4))
	j := NewHashJoin(left, right,
		[]Compiled{compileItem(t, "L.id", left.Schema())},
		[]Compiled{compileItem(t, "R.id", right.Schema())},
		nil, JoinInner)
	resSchema := j.Schema()
	j.Residual = compile(t, "L.bal + R.bal > 3", resSchema)
	rows := drain(t, j)
	// id 1 (1+1=2 no), id 2 (4 yes), id 3 NULL key, id 4 (8 yes).
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
}

func storageTable(t *testing.T) *storage.Table {
	t.Helper()
	c := catalog.New()
	def := &catalog.Table{
		Name: "t",
		Columns: []catalog.Column{
			{Name: "id", Type: sqltypes.KindInt, NotNull: true},
			{Name: "name", Type: sqltypes.KindString},
			{Name: "bal", Type: sqltypes.KindFloat},
		},
		PrimaryKey: []string{"id"},
	}
	if err := c.AddTable(def); err != nil {
		t.Fatal(err)
	}
	if err := c.AddIndex(&catalog.Index{Name: "ix_bal", Table: "t", Columns: []string{"bal"}}); err != nil {
		t.Fatal(err)
	}
	tbl := storage.NewTable(c.Table("t"))
	for _, r := range testRows(100) {
		if err := tbl.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestScanFullAndRange(t *testing.T) {
	tbl := storageTable(t)
	s := NewScan(tbl, testSchema("t"))
	rows := drain(t, s)
	if len(rows) != 100 || s.RowsScanned != 100 {
		t.Fatalf("full scan = %d rows, scanned %d", len(rows), s.RowsScanned)
	}
	// Index range scan on secondary index.
	s2 := NewScan(tbl, testSchema("t"))
	s2.Index = "ix_bal"
	s2.Lo = storage.Bound{Vals: sqltypes.Row{floatv(10)}, Inclusive: true}
	s2.Hi = storage.Bound{Vals: sqltypes.Row{floatv(20)}, Inclusive: true}
	rows = drain(t, s2)
	if len(rows) != 11 {
		t.Fatalf("range scan = %d rows", len(rows))
	}
	// Residual filter counts scanned vs returned.
	s3 := NewScan(tbl, testSchema("t"))
	s3.Filter = compile(t, "name = '0'", testSchema("t"))
	rows = drain(t, s3)
	if len(rows) != 33 || s3.RowsScanned != 100 {
		t.Fatalf("filtered scan = %d rows, scanned %d", len(rows), s3.RowsScanned)
	}
}

func TestIndexLoopJoin(t *testing.T) {
	tbl := storageTable(t)
	outer := NewValues(testSchema("L"), testRows(5))
	inner := testSchema("R")
	j := NewIndexLoopJoin(outer, tbl, "pk_t", inner,
		[]Compiled{compileItem(t, "L.id", outer.Schema())}, nil, JoinInner)
	rows := drain(t, j)
	if len(rows) != 5 || j.InnerLookups != 5 {
		t.Fatalf("rows = %d lookups = %d", len(rows), j.InnerLookups)
	}
	if len(rows[0]) != 6 {
		t.Fatal("output width")
	}
	// Semi variant.
	outer2 := NewValues(testSchema("L"), testRows(5))
	j2 := NewIndexLoopJoin(outer2, tbl, "pk_t", inner,
		[]Compiled{compileItem(t, "L.id * 1000", outer2.Schema())}, nil, JoinSemi)
	if rows := drain(t, j2); len(rows) != 0 {
		t.Fatalf("semi with no matches = %v", rows)
	}
}

func TestSortLimitDistinct(t *testing.T) {
	s := testSchema("t")
	src := NewValues(s, testRows(10))
	sorted := &Sort{Child: src, Keys: []Compiled{compileItem(t, "bal", s)}, Desc: []bool{true}}
	top := &Limit{Child: sorted, N: 3}
	rows := drain(t, top)
	if len(rows) != 3 || rows[0][2].Float() != 10 || rows[2][2].Float() != 8 {
		t.Fatalf("top3 = %v", rows)
	}
	// Distinct on name (3 distinct values among 10 rows).
	proj := &Project{
		Child: NewValues(s, testRows(10)),
		Exprs: []Compiled{compileItem(t, "name", s)},
		Out:   NewSchema(Col{Name: "name", Kind: sqltypes.KindString}),
	}
	d := &Distinct{Child: proj}
	if rows := drain(t, d); len(rows) != 3 {
		t.Fatalf("distinct = %v", rows)
	}
}

func TestSortStableMultiKey(t *testing.T) {
	s := testSchema("t")
	rows := []sqltypes.Row{
		{intv(1), strv("b"), floatv(2)},
		{intv(2), strv("a"), floatv(2)},
		{intv(3), strv("a"), floatv(1)},
	}
	sorted := &Sort{
		Child: NewValues(s, rows),
		Keys:  []Compiled{compileItem(t, "bal", s), compileItem(t, "name", s)},
		Desc:  []bool{false, false},
	}
	got := drain(t, sorted)
	if got[0][0].Int() != 3 || got[1][0].Int() != 2 || got[2][0].Int() != 1 {
		t.Fatalf("order = %v", got)
	}
}

func TestAggregate(t *testing.T) {
	s := testSchema("t")
	agg := &Aggregate{
		Child:   NewValues(s, testRows(10)),
		GroupBy: []Compiled{compileItem(t, "name", s)},
		Aggs: []AggSpec{
			{Func: "COUNT", Star: true},
			{Func: "SUM", Arg: compileItem(t, "bal", s)},
			{Func: "AVG", Arg: compileItem(t, "bal", s)},
			{Func: "MIN", Arg: compileItem(t, "id", s)},
			{Func: "MAX", Arg: compileItem(t, "id", s)},
		},
		Out: NewSchema(
			Col{Name: "name", Kind: sqltypes.KindString},
			Col{Name: "cnt", Kind: sqltypes.KindInt},
			Col{Name: "total", Kind: sqltypes.KindFloat},
			Col{Name: "avg", Kind: sqltypes.KindFloat},
			Col{Name: "mn", Kind: sqltypes.KindInt},
			Col{Name: "mx", Kind: sqltypes.KindInt},
		),
	}
	rows := drain(t, agg)
	if len(rows) != 3 {
		t.Fatalf("groups = %d", len(rows))
	}
	// Group "1": ids 1,4,7,10 -> count 4, sum bal 22, min 1, max 10.
	var g1 sqltypes.Row
	for _, r := range rows {
		if r[0].Str() == "1" {
			g1 = r
		}
	}
	if g1[1].Int() != 4 || g1[2].Float() != 22 || g1[4].Int() != 1 || g1[5].Int() != 10 {
		t.Fatalf("group 1 = %v", g1)
	}
	if g1[3].Float() != 5.5 {
		t.Fatalf("avg = %v", g1[3])
	}
}

func TestAggregateEmptyInput(t *testing.T) {
	s := testSchema("t")
	agg := &Aggregate{
		Child: NewValues(s, nil),
		Aggs: []AggSpec{
			{Func: "COUNT", Star: true},
			{Func: "SUM", Arg: compileItem(t, "bal", s)},
		},
		Out: NewSchema(Col{Name: "cnt", Kind: sqltypes.KindInt}, Col{Name: "sum", Kind: sqltypes.KindFloat}),
	}
	rows := drain(t, agg)
	if len(rows) != 1 || rows[0][0].Int() != 0 || !rows[0][1].IsNull() {
		t.Fatalf("empty agg = %v", rows)
	}
	// With GROUP BY, empty input yields no rows.
	agg2 := &Aggregate{
		Child:   NewValues(s, nil),
		GroupBy: []Compiled{compileItem(t, "name", s)},
		Aggs:    []AggSpec{{Func: "COUNT", Star: true}},
		Out:     NewSchema(Col{Name: "name"}, Col{Name: "cnt"}),
	}
	if rows := drain(t, agg2); len(rows) != 0 {
		t.Fatalf("grouped empty agg = %v", rows)
	}
}

func TestAggregateIntSums(t *testing.T) {
	s := testSchema("t")
	agg := &Aggregate{
		Child: NewValues(s, testRows(3)),
		Aggs:  []AggSpec{{Func: "SUM", Arg: compileItem(t, "id", s)}},
		Out:   NewSchema(Col{Name: "s", Kind: sqltypes.KindInt}),
	}
	rows := drain(t, agg)
	if rows[0][0].Kind() != sqltypes.KindInt || rows[0][0].Int() != 6 {
		t.Fatalf("int sum = %v", rows[0][0])
	}
}

func TestSwitchUnionSelectsOneBranch(t *testing.T) {
	s := testSchema("t")
	localOpened, remoteOpened := 0, 0
	local := &probeOp{Values: NewValues(s, testRows(2)), opened: &localOpened}
	remote := &probeOp{Values: NewValues(s, testRows(5)), opened: &remoteOpened}
	su := &SwitchUnion{
		Children: []Operator{local, remote},
		Selector: func(*EvalContext) (int, error) { return 0, nil },
	}
	rows := drain(t, su)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if localOpened != 1 || remoteOpened != 0 {
		t.Fatalf("opened local=%d remote=%d; unchosen branch must stay untouched", localOpened, remoteOpened)
	}
	if su.ChosenIndex() != 0 {
		t.Fatal("ChosenIndex")
	}
	// Switch to branch 1.
	su2 := &SwitchUnion{
		Children: []Operator{local, remote},
		Selector: func(*EvalContext) (int, error) { return 1, nil },
	}
	if rows := drain(t, su2); len(rows) != 5 {
		t.Fatalf("branch 1 rows = %d", len(rows))
	}
}

func TestSwitchUnionErrors(t *testing.T) {
	s := testSchema("t")
	su := &SwitchUnion{
		Children: []Operator{NewValues(s, nil)},
		Selector: func(*EvalContext) (int, error) { return 7, nil },
	}
	if err := su.Open(ctx()); err == nil {
		t.Fatal("out-of-range selector accepted")
	}
	su2 := &SwitchUnion{
		Children: []Operator{NewValues(s, nil)},
		Selector: func(*EvalContext) (int, error) { return 0, errors.New("guard failed") },
	}
	if err := su2.Open(ctx()); err == nil || !strings.Contains(err.Error(), "guard failed") {
		t.Fatal("selector error not propagated")
	}
	if err := su2.Close(); err != nil {
		t.Fatal("Close after failed Open must be safe")
	}
}

type probeOp struct {
	*Values
	opened *int
}

func (p *probeOp) Open(ctx *EvalContext) error {
	*p.opened++
	return p.Values.Open(ctx)
}

func TestRemoteOperator(t *testing.T) {
	s := testSchema("t")
	calls := 0
	r := &Remote{
		SQL: "SELECT ...",
		Out: s,
		Fetch: func(*EvalContext) ([]sqltypes.Row, error) {
			calls++
			return testRows(4), nil
		},
	}
	if rows := drain(t, r); len(rows) != 4 || calls != 1 {
		t.Fatalf("remote rows=%d calls=%d", len(rows), calls)
	}
	rErr := &Remote{Out: s, Fetch: func(*EvalContext) ([]sqltypes.Row, error) {
		return nil, errors.New("link down")
	}}
	if _, err := Run(rErr, ctx(), 0); err == nil {
		t.Fatal("remote error not propagated")
	}
}

func TestRunPhases(t *testing.T) {
	s := testSchema("t")
	res, err := Run(NewValues(s, testRows(3)), ctx(), 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Phases.Setup != 5*time.Millisecond {
		t.Fatal("setup passthrough")
	}
	if res.Phases.Total() < res.Phases.Setup {
		t.Fatal("total")
	}
	var p PhaseTimes
	p.Add(res.Phases)
	p.Add(res.Phases)
	if p.Setup != 10*time.Millisecond {
		t.Fatal("Add")
	}
	if p.Scale(2).Setup != 5*time.Millisecond {
		t.Fatal("Scale")
	}
}

func TestCollectSwitchUnions(t *testing.T) {
	s := testSchema("t")
	su := &SwitchUnion{
		Children: []Operator{NewValues(s, nil), NewValues(s, nil)},
		Selector: func(*EvalContext) (int, error) { return 0, nil },
	}
	root := &Filter{Child: su, Pred: compile(t, "id > 0", s)}
	if got := CollectSwitchUnions(root); len(got) != 1 || got[0] != su {
		t.Fatal("CollectSwitchUnions")
	}
}
