package exec

import (
	"time"

	"relaxedcc/internal/sqltypes"
)

// PhaseTimes breaks a query execution into the three phases profiled by the
// paper's Table 4.5: setup (instantiating the executable tree), run (open +
// producing all rows) and shutdown (close).
type PhaseTimes struct {
	Setup    time.Duration
	Run      time.Duration
	Shutdown time.Duration
}

// Total returns the summed elapsed time.
func (p PhaseTimes) Total() time.Duration { return p.Setup + p.Run + p.Shutdown }

// Add accumulates another execution's phases (used for averaging).
func (p *PhaseTimes) Add(q PhaseTimes) {
	p.Setup += q.Setup
	p.Run += q.Run
	p.Shutdown += q.Shutdown
}

// Scale divides all phases by n.
func (p PhaseTimes) Scale(n int) PhaseTimes {
	if n <= 0 {
		return p
	}
	return PhaseTimes{
		Setup:    p.Setup / time.Duration(n),
		Run:      p.Run / time.Duration(n),
		Shutdown: p.Shutdown / time.Duration(n),
	}
}

// Result is a fully materialized query result with phase timings.
type Result struct {
	Schema *Schema
	Rows   []sqltypes.Row
	Phases PhaseTimes
}

// Run opens the operator tree, drains it and closes it, recording run and
// shutdown phase times. Setup time (plan instantiation) is recorded by the
// caller that built the tree and passed here for inclusion in the result.
// When the root is batch-capable the drain pulls whole batches — the default
// execution path for every query; RunRows keeps the row-at-a-time drain for
// comparison.
func Run(root Operator, ctx *EvalContext, setup time.Duration) (*Result, error) {
	res := &Result{Schema: root.Schema()}
	res.Phases.Setup = setup

	clk := ctx.clock()
	start := clk.Now()
	if err := root.Open(ctx); err != nil {
		root.Close()
		return nil, err
	}
	if v, ok := root.(VecOperator); ok {
		// Columnar drain: selection vectors resolve here, row-backed
		// batches contribute shared row references.
		for {
			cb, ok, err := v.NextVec()
			if err != nil {
				root.Close()
				return nil, err
			}
			if !ok {
				break
			}
			res.Rows = cb.AppendRows(res.Rows)
		}
	} else if b, ok := root.(BatchOperator); ok {
		for {
			batch, ok, err := b.NextBatch()
			if err != nil {
				root.Close()
				return nil, err
			}
			if !ok {
				break
			}
			res.Rows = append(res.Rows, batch...)
		}
	} else {
		for {
			row, ok, err := root.Next()
			if err != nil {
				root.Close()
				return nil, err
			}
			if !ok {
				break
			}
			res.Rows = append(res.Rows, row)
		}
	}
	res.Phases.Run = clk.Now().Sub(start)

	start = clk.Now()
	if err := root.Close(); err != nil {
		return nil, err
	}
	res.Phases.Shutdown = clk.Now().Sub(start)
	return res, nil
}

// RunRows drains the tree strictly row-at-a-time through Operator.Next, even
// when the root is batch-capable. It exists for benchmarks and equivalence
// tests comparing the two execution paths.
func RunRows(root Operator, ctx *EvalContext, setup time.Duration) (*Result, error) {
	res := &Result{Schema: root.Schema()}
	res.Phases.Setup = setup

	clk := ctx.clock()
	start := clk.Now()
	if err := root.Open(ctx); err != nil {
		root.Close()
		return nil, err
	}
	for {
		row, ok, err := root.Next()
		if err != nil {
			root.Close()
			return nil, err
		}
		if !ok {
			break
		}
		res.Rows = append(res.Rows, row)
	}
	res.Phases.Run = clk.Now().Sub(start)

	start = clk.Now()
	if err := root.Close(); err != nil {
		return nil, err
	}
	res.Phases.Shutdown = clk.Now().Sub(start)
	return res, nil
}

// CollectSwitchUnions walks an operator tree and returns every SwitchUnion
// in it, so callers can inspect guard decisions after a run.
func CollectSwitchUnions(root Operator) []*SwitchUnion {
	var out []*SwitchUnion
	var walk func(op Operator)
	walk = func(op Operator) {
		switch op := op.(type) {
		case *SwitchUnion:
			out = append(out, op)
			for _, c := range op.Children {
				walk(c)
			}
		case *Filter:
			walk(op.Child)
		case *Project:
			walk(op.Child)
		case *HashJoin:
			walk(op.Left)
			walk(op.Right)
		case *MergeJoin:
			walk(op.Left)
			walk(op.Right)
		case *IndexLoopJoin:
			walk(op.Outer)
		case *BatchAdapter:
			walk(op.Child)
		case *RowAdapter:
			walk(op.Child)
		case *VecAdapter:
			walk(op.Child)
		case *Sort:
			walk(op.Child)
		case *Limit:
			walk(op.Child)
		case *Distinct:
			walk(op.Child)
		case *Aggregate:
			walk(op.Child)
		case *Traced:
			walk(op.child)
		}
	}
	walk(root)
	return out
}
