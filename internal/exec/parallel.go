package exec

import (
	"context"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"

	"relaxedcc/internal/sqltypes"
	"relaxedcc/internal/storage"
)

// workerLabels tags parallel-scan worker goroutines so CPU profiles
// attribute samples to the query phase that spawned them.
var workerLabels = pprof.Labels("rcc_op", "parallel_scan", "rcc_phase", "exec")

// morselsPerWorker oversubscribes morsels relative to workers so stragglers
// (skewed key ranges, scheduling hiccups) rebalance: workers claim morsels
// from a shared counter instead of being assigned fixed ranges.
const morselsPerWorker = 4

// parMsg is one message on the exchange channel: a batch or a worker error.
type parMsg struct {
	batch sqltypes.Batch
	err   error
}

// ParallelScan is the morsel-driven parallel table scan: Open partitions the
// clustered key range into morsels, fans DOP worker goroutines over them,
// and merges their batches through a bounded channel (the exchange). Output
// order is nondeterministic, so the optimizer only chooses it when no sort
// order is required — ordered plans (merge-join inputs) fall back to the
// serial Scan.
//
// Unlike Scan, which snapshots the whole table under one read latch, workers
// latch per morsel: a long parallel scan interleaves with writers at morsel
// granularity (each morsel sees a committed state).
type ParallelScan struct {
	Table  *storage.Table
	Lo, Hi storage.Bound
	Filter Compiled // residual predicate, may be nil
	// DOP is the worker count; 0 defers to EvalContext.MaxDOP, then
	// GOMAXPROCS.
	DOP int

	schema *Schema
	ctx    *EvalContext
	out    chan parMsg
	stop   chan struct{}
	closed bool
	// row-mode cursor over the last received batch.
	cur sqltypes.Batch
	pos int

	rowsScanned atomic.Int64
}

// NewParallelScan builds a parallel scan over the table's clustered index.
// The schema's column order must match the stored row layout.
func NewParallelScan(table *storage.Table, schema *Schema) *ParallelScan {
	return &ParallelScan{Table: table, schema: schema}
}

// Schema implements Operator.
func (p *ParallelScan) Schema() *Schema { return p.schema }

// RowsScanned returns the number of rows read from storage so far (before
// the residual filter); used by tests and cost-model validation.
func (p *ParallelScan) RowsScanned() int64 { return p.rowsScanned.Load() }

func (p *ParallelScan) dop() int {
	d := p.DOP
	if d <= 0 && p.ctx != nil {
		d = p.ctx.MaxDOP
	}
	if d <= 0 {
		d = runtime.GOMAXPROCS(0)
	}
	if d < 1 {
		d = 1
	}
	return d
}

// Open implements Operator: it partitions the key range and starts the
// workers. Workers exit when all morsels are claimed, when the exchange
// consumer closes the stop channel, or after sending an error.
func (p *ParallelScan) Open(ctx *EvalContext) error {
	p.ctx = ctx
	p.cur, p.pos = nil, 0
	p.closed = false
	p.rowsScanned.Store(0)
	dop := p.dop()
	morsels := p.Table.Morsels(p.Lo, p.Hi, dop*morselsPerWorker)
	p.stop = make(chan struct{})
	p.out = make(chan parMsg, dop*2)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < dop; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pprof.Do(context.Background(), workerLabels, func(context.Context) {
				p.worker(&next, morsels)
			})
		}()
	}
	go func() {
		wg.Wait()
		close(p.out)
	}()
	return nil
}

// worker claims morsels from the shared counter until none remain, sending
// full batches into the exchange.
func (p *ParallelScan) worker(next *atomic.Int64, morsels []storage.Morsel) {
	n := batchSizeOf(p.ctx)
	buf := make(sqltypes.Batch, 0, n)
	var scanned int64
	for {
		idx := int(next.Add(1)) - 1
		if idx >= len(morsels) {
			break
		}
		var scanErr error
		aborted := false
		p.Table.ScanMorsel(morsels[idx], func(r sqltypes.Row) bool {
			scanned++
			if p.Filter != nil {
				ok, err := PredicateTrue(p.Filter, p.ctx, r)
				if err != nil {
					scanErr = err
					return false
				}
				if !ok {
					return true
				}
			}
			buf = append(buf, r)
			if len(buf) >= n {
				if !p.send(parMsg{batch: buf}) {
					aborted = true
					return false
				}
				buf = make(sqltypes.Batch, 0, n)
			}
			return true
		})
		if scanErr != nil {
			p.send(parMsg{err: scanErr})
			aborted = true
		}
		if aborted {
			break
		}
	}
	if len(buf) > 0 {
		p.send(parMsg{batch: buf})
	}
	p.rowsScanned.Add(scanned)
}

// send delivers a message unless the consumer has already stopped.
func (p *ParallelScan) send(m parMsg) bool {
	select {
	case p.out <- m:
		return true
	case <-p.stop:
		return false
	}
}

// NextBatch implements BatchOperator: it receives the next merged batch from
// the exchange. Worker batches are freshly allocated, so unlike pooled
// batches they stay valid across calls — but consumers should not rely on
// that beyond the documented contract.
func (p *ParallelScan) NextBatch() (sqltypes.Batch, bool, error) {
	msg, ok := <-p.out
	if !ok {
		return nil, false, nil
	}
	if msg.err != nil {
		return nil, false, msg.err
	}
	return msg.batch, true, nil
}

// Next implements Operator: row-at-a-time iteration over received batches.
func (p *ParallelScan) Next() (sqltypes.Row, bool, error) {
	for p.pos >= len(p.cur) {
		b, ok, err := p.NextBatch()
		if err != nil || !ok {
			return nil, false, err
		}
		p.cur, p.pos = b, 0
	}
	r := p.cur[p.pos]
	p.pos++
	return r, true, nil
}

// Close implements Operator: it signals the workers to stop and drains the
// exchange so every worker unblocks and exits before Close returns.
func (p *ParallelScan) Close() error {
	if p.stop == nil || p.closed {
		return nil
	}
	p.closed = true
	close(p.stop)
	for range p.out {
	}
	p.cur, p.pos = nil, 0
	return nil
}
