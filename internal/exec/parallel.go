package exec

import (
	"context"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"

	"relaxedcc/internal/sqltypes"
	"relaxedcc/internal/storage"
)

// workerLabels tags parallel-scan worker goroutines so CPU profiles
// attribute samples to the query phase that spawned them.
var workerLabels = pprof.Labels("rcc_op", "parallel_scan", "rcc_phase", "exec")

// morselsPerWorker oversubscribes morsels relative to workers so stragglers
// (skewed key ranges, scheduling hiccups) rebalance through stealing instead
// of serializing on the slowest fixed assignment.
const morselsPerWorker = 4

// minMorselRows is the granularity floor: a morsel smaller than this costs
// more in claim/latch overhead than it buys in balance, so small tables get
// proportionally fewer morsels (and, through the DOP clamp, fewer workers).
const minMorselRows = 2048

// packRange packs a half-open morsel-index interval [lo, hi) into one word
// so pop (lo+1) and steal (hi-1) race through a single CAS.
func packRange(lo, hi uint32) uint64 { return uint64(lo)<<32 | uint64(hi) }

func unpackRange(r uint64) (lo, hi uint32) { return uint32(r >> 32), uint32(r) }

// parMsg is one message on the exchange channel: a batch or a worker error.
type parMsg struct {
	batch sqltypes.Batch
	err   error
}

// scanFilterScratch is the per-worker state for vectorized residual
// filtering: a reusable columnar view over each storage chunk plus its
// selection buffer. Workers own their scratch exclusively, so kernels run
// without synchronization.
type scanFilterScratch struct {
	vout   sqltypes.ColBatch
	selbuf []int32
}

// init arms the scratch for kernel filtering: the selection buffer must be
// non-nil before the first batch, because kernels receive it as dst and a
// nil selection means "all rows" rather than "no rows".
func (st *scanFilterScratch) init() {
	if st.selbuf == nil {
		st.selbuf = make([]int32, 0, 16)
	}
}

// ParallelScan is the morsel-driven parallel table scan: Open partitions the
// clustered key range into morsels sized by table cardinality, splits them
// into per-worker queues, and fans effective-DOP workers over them. Workers
// pop their own queue front and steal from victims' backs via single-word
// CAS ranges, so skew rebalances without a shared counter in the hot path.
// Batches merge through a bounded channel (the exchange); output order is
// nondeterministic, so the optimizer only chooses it when no sort order is
// required — ordered plans (merge-join inputs) fall back to the serial Scan.
//
// Effective DOP is min(requested DOP, GOMAXPROCS, morsel count): parallelism
// never exceeds what the machine or the input can use, which keeps
// throughput monotone in the requested worker count. At effective DOP 1 the
// scan runs inline — no goroutines, no exchange — on the same bulk leaf
// walks as the serial Scan.
//
// Unlike Scan, which snapshots the whole table under one read latch, workers
// latch per chunk: a long parallel scan interleaves with writers at chunk
// granularity (each chunk sees a committed state).
type ParallelScan struct {
	Table  *storage.Table
	Lo, Hi storage.Bound
	Filter Compiled // residual predicate, may be nil
	// FilterKernel is the vectorized form of Filter when the planner could
	// compile one; workers prefer it and fall back to Filter otherwise.
	FilterKernel BoolKernel
	// DOP is the worker count; 0 defers to EvalContext.MaxDOP, then
	// GOMAXPROCS. The effective count is additionally clamped to GOMAXPROCS
	// and to the number of morsels.
	DOP int

	schema  *Schema
	ctx     *EvalContext
	morsels []storage.Morsel
	queues  []atomic.Uint64 // per-worker packed [lo, hi) morsel-index ranges
	effDOP  int
	out     chan parMsg
	stop    chan struct{}
	closed  bool

	// inline (effective DOP 1) streaming state.
	serial    bool
	cursor    string
	end       string
	streamEnd bool
	fout      *sqltypes.Batch // raw chunk buffer
	cout      *sqltypes.Batch // filtered output buffer
	scratch   scanFilterScratch

	// row-mode cursor over the last received batch.
	cur sqltypes.Batch
	pos int

	rowsScanned atomic.Int64
}

// NewParallelScan builds a parallel scan over the table's clustered index.
// The schema's column order must match the stored row layout.
func NewParallelScan(table *storage.Table, schema *Schema) *ParallelScan {
	return &ParallelScan{Table: table, schema: schema}
}

// Schema implements Operator.
func (p *ParallelScan) Schema() *Schema { return p.schema }

// RowsScanned returns the number of rows read from storage so far (before
// the residual filter); used by tests and cost-model validation.
func (p *ParallelScan) RowsScanned() int64 { return p.rowsScanned.Load() }

// EffectiveDOP reports the worker count the last Open actually used, after
// clamping to GOMAXPROCS and the morsel count. Zero before Open.
func (p *ParallelScan) EffectiveDOP() int { return p.effDOP }

func (p *ParallelScan) dop() int {
	d := p.DOP
	if d <= 0 && p.ctx != nil {
		d = p.ctx.MaxDOP
	}
	if g := runtime.GOMAXPROCS(0); d <= 0 || d > g {
		d = g
	}
	if d < 1 {
		d = 1
	}
	return d
}

// Open implements Operator: it partitions the key range into
// cardinality-bounded morsels, clamps the worker count to the available
// work, and either starts the workers or arms the inline serial path.
func (p *ParallelScan) Open(ctx *EvalContext) error {
	p.ctx = ctx
	p.cur, p.pos = nil, 0
	p.closed = false
	p.serial = false
	p.out, p.stop = nil, nil
	p.rowsScanned.Store(0)

	dop := p.dop()
	parts := dop * morselsPerWorker
	if ceil := (p.Table.Len() + minMorselRows - 1) / minMorselRows; parts > ceil {
		parts = ceil
	}
	if parts < 1 {
		parts = 1
	}
	p.morsels = p.Table.Morsels(p.Lo, p.Hi, parts)
	if dop > len(p.morsels) {
		dop = len(p.morsels)
	}
	p.effDOP = dop

	if dop == 1 {
		// Inline serial path: same bulk leaf walks, no exchange.
		p.serial = true
		p.cursor = p.morsels[0].Start
		p.end = p.morsels[len(p.morsels)-1].End
		p.streamEnd = false
		if p.fout == nil {
			p.fout = getBatchBuf()
		}
		if p.cout == nil && (p.Filter != nil || p.FilterKernel != nil) {
			p.cout = getBatchBuf()
		}
		p.scratch.init()
		return nil
	}

	// Contiguous morsel-index queues, one per worker; stealing keeps them
	// balanced when ranges skew.
	p.queues = make([]atomic.Uint64, dop)
	lo, per, rem := 0, len(p.morsels)/dop, len(p.morsels)%dop
	for w := range p.queues {
		hi := lo + per
		if w < rem {
			hi++
		}
		p.queues[w].Store(packRange(uint32(lo), uint32(hi)))
		lo = hi
	}

	p.stop = make(chan struct{})
	p.out = make(chan parMsg, dop*2)
	var wg sync.WaitGroup
	for w := 0; w < dop; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pprof.Do(context.Background(), workerLabels, func(context.Context) {
				p.worker(w)
			})
		}(w)
	}
	go func() {
		wg.Wait()
		close(p.out)
	}()
	return nil
}

// claim returns the next morsel index for worker w: first a pop from the
// front of its own queue, then — once that drains — a steal from the back of
// another worker's queue. All morsels exist before any worker starts, so one
// full sweep finding every queue empty proves there is no work left.
func (p *ParallelScan) claim(w int) (int, bool) {
	q := &p.queues[w]
	for {
		r := q.Load()
		lo, hi := unpackRange(r)
		if lo >= hi {
			break
		}
		if q.CompareAndSwap(r, packRange(lo+1, hi)) {
			return int(lo), true
		}
	}
	for off := 1; off < len(p.queues); off++ {
		v := &p.queues[(w+off)%len(p.queues)]
		for {
			r := v.Load()
			lo, hi := unpackRange(r)
			if lo >= hi {
				break
			}
			if v.CompareAndSwap(r, packRange(lo, hi-1)) {
				return int(hi - 1), true
			}
		}
	}
	return 0, false
}

// filterInto appends the rows of chunk that survive the residual predicate
// onto out, using the vectorized kernel when available. Only row headers
// move; the stored rows are shared and immutable.
func (p *ParallelScan) filterInto(st *scanFilterScratch, chunk, out sqltypes.Batch) (sqltypes.Batch, error) {
	switch {
	case p.FilterKernel != nil:
		st.vout.ResetRows(chunk, len(p.schema.Cols))
		sel, err := p.FilterKernel(p.ctx, &st.vout, nil, st.selbuf[:0])
		if err != nil {
			return out, err
		}
		st.selbuf = sel
		for _, i := range sel {
			out = append(out, chunk[i])
		}
	case p.Filter != nil:
		for _, r := range chunk {
			ok, err := PredicateTrue(p.Filter, p.ctx, r)
			if err != nil {
				return out, err
			}
			if ok {
				out = append(out, r)
			}
		}
	default:
		out = append(out, chunk...)
	}
	return out, nil
}

// worker drains morsels via claim, reading each as bulk leaf chunks and
// sending filtered batches into the exchange.
func (p *ParallelScan) worker(w int) {
	n := batchSizeOf(p.ctx)
	chunk := make(sqltypes.Batch, 0, n)
	out := make(sqltypes.Batch, 0, n)
	var st scanFilterScratch
	st.init()
	var scanned int64
	defer func() { p.rowsScanned.Add(scanned) }()
	for {
		idx, ok := p.claim(w)
		if !ok {
			break
		}
		cursor := p.morsels[idx].Start
		for {
			var more bool
			chunk, cursor, more = p.Table.ChunkRows(cursor, p.morsels[idx].End, n, chunk[:0])
			scanned += int64(len(chunk))
			var err error
			out, err = p.filterInto(&st, chunk, out)
			if err != nil {
				p.send(parMsg{err: err})
				return
			}
			if len(out) >= n {
				if !p.send(parMsg{batch: out}) {
					return
				}
				out = make(sqltypes.Batch, 0, n)
			}
			if !more {
				break
			}
		}
	}
	if len(out) > 0 {
		p.send(parMsg{batch: out})
	}
}

// send delivers a message unless the consumer has already stopped.
func (p *ParallelScan) send(m parMsg) bool {
	select {
	case p.out <- m:
		return true
	case <-p.stop:
		return false
	}
}

// NextBatch implements BatchOperator. At effective DOP 1 it streams bulk
// leaf chunks inline; otherwise it receives the next merged batch from the
// exchange. Batches are valid until the following NextBatch call.
func (p *ParallelScan) NextBatch() (sqltypes.Batch, bool, error) {
	if p.serial {
		return p.nextSerial()
	}
	msg, ok := <-p.out
	if !ok {
		return nil, false, nil
	}
	if msg.err != nil {
		return nil, false, msg.err
	}
	return msg.batch, true, nil
}

// nextSerial is the inline DOP-1 drain: one bulk leaf walk per batch, the
// residual applied through the same kernel path the workers use.
func (p *ParallelScan) nextSerial() (sqltypes.Batch, bool, error) {
	n := batchSizeOf(p.ctx)
	for {
		if p.streamEnd {
			return nil, false, nil
		}
		chunk := (*p.fout)[:0]
		var more bool
		chunk, p.cursor, more = p.Table.ChunkRows(p.cursor, p.end, n, chunk)
		p.streamEnd = !more
		p.rowsScanned.Add(int64(len(chunk)))
		*p.fout = chunk
		if len(chunk) == 0 {
			continue
		}
		if p.Filter == nil && p.FilterKernel == nil {
			return chunk, true, nil
		}
		out, err := p.filterInto(&p.scratch, chunk, (*p.cout)[:0])
		*p.cout = out
		if err != nil {
			return nil, false, err
		}
		if len(out) > 0 {
			return out, true, nil
		}
	}
}

// Next implements Operator: row-at-a-time iteration over received batches.
func (p *ParallelScan) Next() (sqltypes.Row, bool, error) {
	for p.pos >= len(p.cur) {
		b, ok, err := p.NextBatch()
		if err != nil || !ok {
			return nil, false, err
		}
		p.cur, p.pos = b, 0
	}
	r := p.cur[p.pos]
	p.pos++
	return r, true, nil
}

// Close implements Operator: it signals the workers to stop and drains the
// exchange so every worker unblocks and exits before Close returns. The
// inline path just releases its buffers.
func (p *ParallelScan) Close() error {
	if p.closed {
		return nil
	}
	p.closed = true
	if p.stop != nil {
		close(p.stop)
		for range p.out {
		}
	}
	if p.fout != nil {
		putBatchBuf(p.fout)
		p.fout = nil
	}
	if p.cout != nil {
		putBatchBuf(p.cout)
		p.cout = nil
	}
	p.cur, p.pos = nil, 0
	p.morsels, p.queues = nil, nil
	return nil
}
