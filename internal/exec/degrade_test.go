package exec

import (
	"errors"
	"testing"
)

var errLinkDownTest = errors.New("remote: link lost")

// degradeCtx builds an EvalContext in the given mode that classifies
// errLinkDownTest as unavailability and collects violations.
func degradeCtx(mode DegradeMode, got *[]Violation) *EvalContext {
	c := ctx()
	c.Degrade = mode
	c.Unavailable = func(err error) bool { return errors.Is(err, errLinkDownTest) }
	c.OnViolation = func(v Violation) { *got = append(*got, v) }
	return c
}

// TestDegradeServeLocalFallsBack: the guard picks the remote branch, its
// Open reports unavailability, and serve-local mode answers from the local
// branch with a recorded violation and a degraded decision.
func TestDegradeServeLocalFallsBack(t *testing.T) {
	s := testSchema("t")
	local := &closeProbe{Values: NewValues(s, testRows(2))}
	remote := &closeProbe{Values: NewValues(s, nil), failOpen: true}
	remote.openErr = errLinkDownTest
	su := &SwitchUnion{
		Children: []Operator{local, remote},
		Region:   7,
		Selector: func(*EvalContext) (int, error) { return 1, nil },
	}
	var violations []Violation
	var decisions []GuardDecision
	c := degradeCtx(DegradeServeLocal, &violations)
	c.OnGuard = func(d GuardDecision) { decisions = append(decisions, d) }

	if err := su.Open(c); err != nil {
		t.Fatalf("serve-local Open failed: %v", err)
	}
	rows := 0
	for {
		_, ok, err := su.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		rows++
	}
	if rows != 2 {
		t.Errorf("served %d rows, want the local branch's 2", rows)
	}
	d, ok := su.LastDecision()
	if !ok || d.Chosen != 0 || !d.Degraded {
		t.Errorf("decision = %+v, want degraded local", d)
	}
	if len(decisions) != 1 || !decisions[0].Degraded {
		t.Errorf("OnGuard calls = %+v, want exactly one degraded decision", decisions)
	}
	if len(violations) != 1 || violations[0].Action != "serve-local" ||
		violations[0].Region != 7 || !errors.Is(violations[0].Err, errLinkDownTest) {
		t.Errorf("violations = %+v, want one serve-local on region 7", violations)
	}
	if err := su.Close(); err != nil {
		t.Fatal(err)
	}
	if local.closes != 1 || remote.closes != 1 {
		t.Errorf("closes = (%d, %d), want both opened branches closed", local.closes, remote.closes)
	}
}

// TestDegradeServeLocalBothBranchesFail: when the local fall-back also
// fails, the original remote failure is reported.
func TestDegradeServeLocalBothBranchesFail(t *testing.T) {
	s := testSchema("t")
	local := &closeProbe{Values: NewValues(s, nil), failOpen: true}
	remote := &closeProbe{Values: NewValues(s, nil), failOpen: true}
	remote.openErr = errLinkDownTest
	su := &SwitchUnion{
		Children: []Operator{local, remote},
		Selector: func(*EvalContext) (int, error) { return 1, nil },
	}
	var violations []Violation
	err := su.Open(degradeCtx(DegradeServeLocal, &violations))
	if !errors.Is(err, errLinkDownTest) {
		t.Fatalf("error = %v, want the original remote failure", err)
	}
	if err := su.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDegradeFailRecordsViolation: the default mode propagates the failure
// but still records a "fail" violation for observability.
func TestDegradeFailRecordsViolation(t *testing.T) {
	s := testSchema("t")
	remote := &closeProbe{Values: NewValues(s, nil), failOpen: true}
	remote.openErr = errLinkDownTest
	su := &SwitchUnion{
		Children: []Operator{NewValues(s, testRows(1)), remote},
		Selector: func(*EvalContext) (int, error) { return 1, nil },
	}
	var violations []Violation
	err := su.Open(degradeCtx(DegradeFail, &violations))
	if !errors.Is(err, errLinkDownTest) {
		t.Fatalf("error = %v, want the remote failure", err)
	}
	if len(violations) != 1 || violations[0].Action != "fail" {
		t.Errorf("violations = %+v, want one fail record", violations)
	}
}

// TestDegradeIgnoresSQLErrors: an error the classifier does not call
// unavailability (a genuine SQL error) must not degrade.
func TestDegradeIgnoresSQLErrors(t *testing.T) {
	s := testSchema("t")
	sqlErr := errors.New("backend: no such column")
	remote := &closeProbe{Values: NewValues(s, nil), failOpen: true}
	remote.openErr = sqlErr
	su := &SwitchUnion{
		Children: []Operator{NewValues(s, testRows(1)), remote},
		Selector: func(*EvalContext) (int, error) { return 1, nil },
	}
	var violations []Violation
	err := su.Open(degradeCtx(DegradeServeLocal, &violations))
	if !errors.Is(err, sqlErr) {
		t.Fatalf("error = %v, want the SQL error propagated", err)
	}
	if len(violations) != 0 {
		t.Errorf("violations = %+v, want none for a SQL error", violations)
	}
}

// TestDegradeBlockWaitsForGuard: block mode re-evaluates the selector on
// the GuardRetry pacing until it passes, recording the wait count.
func TestDegradeBlockWaitsForGuard(t *testing.T) {
	s := testSchema("t")
	evals := 0
	su := &SwitchUnion{
		Children: []Operator{NewValues(s, testRows(1)), NewValues(s, nil)},
		Selector: func(*EvalContext) (int, error) {
			evals++
			if evals >= 3 { // passes on the third evaluation
				return 0, nil
			}
			return 1, nil
		},
	}
	var violations []Violation
	c := degradeCtx(DegradeBlock, &violations)
	retries := 0
	c.GuardRetry = func(region, attempt int) bool { retries++; return true }

	if err := su.Open(c); err != nil {
		t.Fatal(err)
	}
	d, _ := su.LastDecision()
	if d.Chosen != 0 || d.BlockWaits != 2 {
		t.Errorf("decision = %+v, want local after 2 waits", d)
	}
	if retries != 2 {
		t.Errorf("GuardRetry called %d times, want 2", retries)
	}
	if len(violations) != 1 || violations[0].Action != "block" || violations[0].Waits != 2 {
		t.Errorf("violations = %+v, want one block record with 2 waits", violations)
	}
	if err := su.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDegradeBlockBudgetExhausted: when GuardRetry cuts off before the
// guard passes, the remote branch executes as chosen.
func TestDegradeBlockBudgetExhausted(t *testing.T) {
	s := testSchema("t")
	su := &SwitchUnion{
		Children: []Operator{NewValues(s, testRows(1)), NewValues(s, testRows(5))},
		Selector: func(*EvalContext) (int, error) { return 1, nil },
	}
	var violations []Violation
	c := degradeCtx(DegradeBlock, &violations)
	c.GuardRetry = func(region, attempt int) bool { return attempt <= 2 }

	if err := su.Open(c); err != nil {
		t.Fatal(err)
	}
	d, _ := su.LastDecision()
	if d.Chosen != 1 || d.BlockWaits != 2 {
		t.Errorf("decision = %+v, want remote after exhausting 2 waits", d)
	}
	if err := su.Close(); err != nil {
		t.Fatal(err)
	}
}
