package exec

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestInstrumentRowsAndShape runs a small instrumented tree and checks the
// trace mirrors the plan with correct row counts.
func TestInstrumentRowsAndShape(t *testing.T) {
	s := testSchema("t")
	inner := NewValues(s, testRows(10))
	f := &Filter{Child: inner, Pred: compile(t, "id <= 4", s)}
	root, node := Instrument(f)
	res, err := Run(root, ctx(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if node.Name != "Filter" || node.Rows != 4 || node.Opens != 1 {
		t.Fatalf("root node = %+v", node)
	}
	if len(node.Children) != 1 || node.Children[0].Name != "Values" {
		t.Fatalf("children = %+v", node.Children)
	}
	if node.Children[0].Rows != 10 {
		t.Fatalf("child rows = %d, want 10 (pre-filter)", node.Children[0].Rows)
	}
}

// TestInstrumentPreservesBatchPath checks the shim implements BatchOperator
// and counts batches when driven down the batch path.
func TestInstrumentPreservesBatchPath(t *testing.T) {
	s := testSchema("t")
	root, node := Instrument(NewValues(s, testRows(5)))
	bop, ok := root.(BatchOperator)
	if !ok {
		t.Fatal("instrumented root must implement BatchOperator")
	}
	if err := root.Open(ctx()); err != nil {
		t.Fatal(err)
	}
	rows := 0
	for {
		batch, more, err := bop.NextBatch()
		if err != nil {
			t.Fatal(err)
		}
		if !more {
			break
		}
		rows += len(batch)
	}
	if err := root.Close(); err != nil {
		t.Fatal(err)
	}
	if rows != 5 || node.Rows != 5 || node.Batches == 0 {
		t.Fatalf("rows=%d node.Rows=%d node.Batches=%d", rows, node.Rows, node.Batches)
	}
}

// TestInstrumentSwitchUnionGuard checks the guard decision lands in the
// trace and the rejected branch shows as not executed.
func TestInstrumentSwitchUnionGuard(t *testing.T) {
	s := testSchema("t")
	su := &SwitchUnion{
		Label:    "Customer",
		Region:   1,
		Children: []Operator{NewValues(s, testRows(2)), NewValues(s, testRows(5))},
		Selector: func(*EvalContext) (int, error) { return 0, nil },
		Staleness: func(*EvalContext) (time.Duration, bool) {
			return 5 * time.Second, true
		},
	}
	root, node := Instrument(su)
	res, err := Run(root, ctx(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	g := node.Guard
	if g == nil {
		t.Fatal("guard decision not captured")
	}
	if g.Chosen != 0 || g.Branch() != "local" || g.Region != 1 {
		t.Fatalf("guard = %+v", g)
	}
	if !g.Known || g.Staleness != 5*time.Second {
		t.Fatalf("staleness = %+v", g)
	}
	if len(node.Children) != 2 {
		t.Fatalf("children = %d", len(node.Children))
	}
	if node.Children[0].Opens != 1 || node.Children[1].Opens != 0 {
		t.Fatalf("branch opens = %d/%d", node.Children[0].Opens, node.Children[1].Opens)
	}
	if shape := node.ShapeString(); !strings.Contains(shape, "(not executed)") {
		t.Fatalf("rejected branch must render as not executed:\n%s", shape)
	}
}

// TestInstrumentUnwrap checks tree walkers still find the SwitchUnion
// through the shim.
func TestInstrumentUnwrap(t *testing.T) {
	s := testSchema("t")
	su := &SwitchUnion{
		Children: []Operator{NewValues(s, testRows(1)), NewValues(s, testRows(1))},
		Selector: func(*EvalContext) (int, error) { return 0, nil },
	}
	root, _ := Instrument(&Limit{Child: su, N: 1})
	sus := CollectSwitchUnions(root)
	if len(sus) != 1 || sus[0] != su {
		t.Fatalf("CollectSwitchUnions through Traced = %v", sus)
	}
}

// TestSwitchUnionDecisionRace re-opens a shared SwitchUnion while another
// goroutine reads its last decision; under -race this verifies the atomic
// publication that replaced the old mutable GuardTime/ChosenIndex fields.
func TestSwitchUnionDecisionRace(t *testing.T) {
	s := testSchema("t")
	su := &SwitchUnion{
		Children: []Operator{NewValues(s, testRows(1)), NewValues(s, testRows(1))},
		Selector: func(*EvalContext) (int, error) { return 0, nil },
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = su.ChosenIndex()
				_ = su.GuardTime()
				if d, ok := su.LastDecision(); ok && d.Chosen != 0 {
					t.Error("unexpected branch")
					return
				}
			}
		}
	}()
	for i := 0; i < 200; i++ {
		if _, err := Run(su, ctx(), 0); err != nil {
			close(stop)
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestOnGuardHook checks the per-execution hook fires with the decision.
func TestOnGuardHook(t *testing.T) {
	s := testSchema("t")
	su := &SwitchUnion{
		Label:    "Orders",
		Region:   2,
		Children: []Operator{NewValues(s, testRows(1)), NewValues(s, testRows(3))},
		Selector: func(*EvalContext) (int, error) { return 1, nil },
	}
	var got []GuardDecision
	c := ctx()
	c.OnGuard = func(d GuardDecision) { got = append(got, d) }
	if _, err := Run(su, c, 0); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("hook fired %d times", len(got))
	}
	if got[0].Label != "Orders" || got[0].Region != 2 || got[0].Chosen != 1 {
		t.Fatalf("decision = %+v", got[0])
	}
	if got[0].StalenessKnown {
		t.Fatal("staleness must be unknown without a probe")
	}
}
