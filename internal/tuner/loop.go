package tuner

import (
	"sort"
	"strconv"
	"sync"
	"time"

	"relaxedcc/internal/obs"
)

// Observer supplies the loop's input: windowed per-region workload
// profiles. obs.WorkloadObserver satisfies it; Cut both snapshots and
// resets the window so every loop tick sees exactly one window of traffic.
type Observer interface {
	Cut(now time.Time) []obs.WorkloadProfile
}

// RegionActuator is the loop's handle on one currency region's replication
// knobs. core.System adapts repl.Agent to it; the indirection keeps the
// tuner importable from tests without a full system.
type RegionActuator interface {
	// Region returns the currency region id.
	Region() int
	// Delay returns the region's propagation delay (the paper's d).
	Delay() time.Duration
	// Interval returns the current effective refresh interval (the paper's
	// f); SetInterval retunes it live.
	Interval() time.Duration
	SetInterval(time.Duration)
	// HeartbeatInterval returns the current effective heartbeat cadence;
	// SetHeartbeatInterval retunes it live.
	HeartbeatInterval() time.Duration
	SetHeartbeatInterval(time.Duration)
}

// LoopConfig parameterizes the closed-loop autotuner. The zero value of
// every field selects the default noted on it.
type LoopConfig struct {
	// Cadence is the virtual time between loop ticks (default 10s). Each
	// tick cuts one observation window and makes at most one decision per
	// region.
	Cadence time.Duration
	// Costs parameterizes the Section 6 objective (default RefreshCost 1,
	// RemotePenalty 10: answering remotely is expensive relative to one
	// propagation cycle, so bounded workloads pull the interval down).
	Costs Costs
	// MinSamples is the fewest observed queries in a window that justify a
	// decision (default 8); thinner windows hold.
	MinSamples int64
	// DeadBand is the relative interval change below which the loop holds
	// (default 0.15): re-solving on every tick would chase noise.
	DeadBand float64
	// MaxStep caps the per-round interval change factor (default 4): a
	// retune moves at most MaxStep times shorter or longer per tick, so one
	// aberrant window cannot slam the fabric.
	MaxStep float64
	// MinInterval / MaxInterval clamp applied intervals (defaults 100ms and
	// 10min).
	MinInterval time.Duration
	MaxInterval time.Duration
	// TargetSlack shrinks observed bounds before solving (default 0.25):
	// the analytic optimum sits exactly at f = B - d, where heartbeat
	// granularity would leave served staleness grazing the bound; solving
	// for B*(1-TargetSlack) buys the margin that keeps serves within bound.
	TargetSlack float64
	// HeartbeatFraction sets the heartbeat cadence as a fraction of the
	// applied interval (default 0.1), clamped to [MinHeartbeat,
	// MaxHeartbeat] (defaults 100ms and 5s): staleness is only observable
	// at heartbeat granularity, so the heartbeat follows the interval down.
	HeartbeatFraction float64
	MinHeartbeat      time.Duration
	MaxHeartbeat      time.Duration
	// RingSize caps the retained decision timeline (default 256).
	RingSize int
}

// withDefaults resolves zero fields to their defaults.
func (c LoopConfig) withDefaults() LoopConfig {
	if c.Cadence <= 0 {
		c.Cadence = 10 * time.Second
	}
	if c.Costs == (Costs{}) {
		c.Costs = Costs{RefreshCost: 1, RemotePenalty: 10}
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 8
	}
	if c.DeadBand <= 0 {
		c.DeadBand = 0.15
	}
	if c.MaxStep <= 1 {
		c.MaxStep = 4
	}
	if c.MinInterval <= 0 {
		c.MinInterval = 100 * time.Millisecond
	}
	if c.MaxInterval <= 0 {
		c.MaxInterval = 10 * time.Minute
	}
	if c.TargetSlack <= 0 || c.TargetSlack >= 1 {
		c.TargetSlack = 0.25
	}
	if c.HeartbeatFraction <= 0 || c.HeartbeatFraction >= 1 {
		c.HeartbeatFraction = 0.1
	}
	if c.MinHeartbeat <= 0 {
		c.MinHeartbeat = 100 * time.Millisecond
	}
	if c.MaxHeartbeat <= 0 {
		c.MaxHeartbeat = 5 * time.Second
	}
	if c.RingSize <= 0 {
		c.RingSize = 256
	}
	return c
}

// Decision records one per-region loop decision: the observed inputs, the
// solved interval, what was applied (or held) and why. Durations are
// nanoseconds for stable JSON.
type Decision struct {
	Seq    int64 `json:"seq"`
	AtNS   int64 `json:"at_unix_ns"`
	Region int   `json:"region"`

	// Observed inputs.
	Queries          int64            `json:"queries"`
	QueriesPerSecond float64          `json:"queries_per_second"`
	LocalRatio       float64          `json:"local_ratio"`
	Unbounded        int64            `json:"unbounded"`
	Bounds           []obs.BoundCount `json:"bounds"`

	// Solver output and actuation.
	PrevIntervalNS    int64   `json:"prev_interval_ns"`
	SolvedIntervalNS  int64   `json:"solved_interval_ns"`
	AppliedIntervalNS int64   `json:"applied_interval_ns"`
	HeartbeatNS       int64   `json:"heartbeat_ns"`
	PredictedLocal    float64 `json:"predicted_local"`
	CostRate          float64 `json:"cost_rate"`

	Applied bool `json:"applied"`
	// Reason is "applied", "applied:max-step", or one of the hold reasons
	// "held:min-samples", "held:no-bounds", "held:dead-band",
	// "held:solver-error".
	Reason string `json:"reason"`
}

// regionState is the loop's per-actuator bookkeeping.
type regionState struct {
	act     RegionActuator
	retunes int64
	held    int64

	label   string
	mTarget *obs.Gauge
}

// Loop is the closed-loop autotuner: each Tick cuts one observation window
// from the Observer, re-solves the Section 6 optimization per region, and
// retunes replication intervals through the registered actuators — with
// hysteresis (dead-band plus max step per round) so the loop is stable.
// Every decision lands in a bounded ring served on /tuner and in the
// tuner_* metrics.
type Loop struct {
	cfg      LoopConfig
	observer Observer

	mRetunes *obs.CounterVec // tuner_retunes_total{region}
	mHeld    *obs.CounterVec // tuner_held_total{region}
	mTarget  *obs.GaugeVec   // tuner_target_interval_ns{region}

	mu        sync.Mutex
	regions   map[int]*regionState
	decisions []Decision
	nextSeq   int64
}

// NewLoop builds a loop over the observer with zero registered regions.
// reg, when non-nil, receives the loop's metrics. Zero config fields select
// the defaults documented on LoopConfig.
func NewLoop(cfg LoopConfig, observer Observer, reg *obs.Registry) *Loop {
	l := &Loop{
		cfg:      cfg.withDefaults(),
		observer: observer,
		regions:  map[int]*regionState{},
	}
	if reg != nil {
		l.mRetunes = reg.CounterVec("tuner_retunes_total", "region")
		l.mHeld = reg.CounterVec("tuner_held_total", "region")
		l.mTarget = reg.GaugeVec("tuner_target_interval_ns", "region")
	}
	return l
}

// Cadence returns the loop's tick interval.
func (l *Loop) Cadence() time.Duration { return l.cfg.Cadence }

// AddRegion registers an actuator; idempotent per region id. The target
// gauge starts at the region's current interval.
func (l *Loop) AddRegion(act RegionActuator) {
	l.mu.Lock()
	defer l.mu.Unlock()
	id := act.Region()
	if _, ok := l.regions[id]; ok {
		return
	}
	rs := &regionState{act: act, label: strconv.Itoa(id)}
	if l.mTarget != nil {
		rs.mTarget = l.mTarget.With(rs.label)
		rs.mTarget.SetDuration(act.Interval())
	}
	l.regions[id] = rs
}

// Tick is one loop round at virtual time now: cut the observation window,
// decide per profiled region, actuate. Schedule it with
// Coordinator.AddPeriodic(loop.Cadence(), loop.Tick). It never fails — a
// region the solver cannot price is held with a recorded reason — so the
// coordinator drain is never aborted by the tuner.
func (l *Loop) Tick(now time.Time) error {
	profiles := l.observer.Cut(now)
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, p := range profiles {
		rs := l.regions[p.Region]
		if rs == nil || p.Queries == 0 {
			// An unregistered or idle region yields no decision: there is
			// nothing to actuate, or no evidence to act on.
			continue
		}
		l.decideLocked(now, rs, p)
	}
	return nil
}

// decideLocked makes and records one region's decision.
func (l *Loop) decideLocked(now time.Time, rs *regionState, p obs.WorkloadProfile) {
	prev := rs.act.Interval()
	d := Decision{
		AtNS:             now.UnixNano(),
		Region:           p.Region,
		Queries:          p.Queries,
		QueriesPerSecond: p.QueriesPerSecond,
		Unbounded:        p.Unbounded,
		Bounds:           p.Bounds,
		PrevIntervalNS:   int64(prev),
	}
	if p.Queries > 0 {
		d.LocalRatio = float64(p.Local) / float64(p.Queries)
	}

	hold := func(reason string) {
		d.Reason = reason
		d.AppliedIntervalNS = int64(prev)
		d.HeartbeatNS = int64(rs.act.HeartbeatInterval())
		rs.held++
		if l.mHeld != nil {
			l.mHeld.With(rs.label).Inc()
		}
		if rs.mTarget != nil {
			rs.mTarget.SetDuration(prev)
		}
		l.recordLocked(d)
	}

	if p.Queries < l.cfg.MinSamples {
		hold("held:min-samples")
		return
	}
	if len(p.Bounds) == 0 {
		// An all-unbounded window exerts no currency pressure; leave the
		// configured interval alone.
		hold("held:no-bounds")
		return
	}

	// Solve the Section 6 objective on the observed bound mix. Bounds are
	// shrunk by the target slack, and the arrival rate scaled to the
	// bounded fraction (unbounded queries never fall back remote). The
	// solve runs twice: the first pass picks an interval assuming perfect
	// staleness observation, the second folds in the heartbeat cadence that
	// interval implies — guards only see staleness at heartbeat
	// granularity, so the effective delay is d + heartbeat.
	var bounded int64
	w := Workload{}
	for _, bc := range p.Bounds {
		bounded += bc.Count
		scaled := time.Duration(float64(bc.BoundNS) * (1 - l.cfg.TargetSlack))
		w.Bounds = append(w.Bounds, BoundShare{Bound: scaled, Weight: float64(bc.Count)})
	}
	w.QueriesPerSecond = p.QueriesPerSecond * float64(bounded) / float64(p.Queries)
	delay := rs.act.Delay()
	first, err := Tune(w, l.cfg.Costs, delay)
	if err != nil {
		hold("held:solver-error")
		return
	}
	hb := l.clampHeartbeat(first.Interval)
	res, err := Tune(w, l.cfg.Costs, delay+hb)
	if err != nil {
		hold("held:solver-error")
		return
	}
	solved := clampDur(res.Interval, l.cfg.MinInterval, l.cfg.MaxInterval)
	d.SolvedIntervalNS = int64(solved)
	d.PredictedLocal = res.LocalFraction
	d.CostRate = res.CostRate

	// Hysteresis: hold inside the dead-band, cap the per-round step.
	if relDiff(solved, prev) <= l.cfg.DeadBand {
		hold("held:dead-band")
		return
	}
	applied, reason := solved, "applied"
	if lo := time.Duration(float64(prev) / l.cfg.MaxStep); applied < lo {
		applied, reason = lo, "applied:max-step"
	}
	if hi := time.Duration(float64(prev) * l.cfg.MaxStep); applied > hi {
		applied, reason = hi, "applied:max-step"
	}
	applied = clampDur(applied, l.cfg.MinInterval, l.cfg.MaxInterval)
	hb = l.clampHeartbeat(applied)

	rs.act.SetInterval(applied)
	rs.act.SetHeartbeatInterval(hb)
	d.Applied = true
	d.Reason = reason
	d.AppliedIntervalNS = int64(applied)
	d.HeartbeatNS = int64(hb)
	rs.retunes++
	if l.mRetunes != nil {
		l.mRetunes.With(rs.label).Inc()
	}
	if rs.mTarget != nil {
		rs.mTarget.SetDuration(applied)
	}
	l.recordLocked(d)
}

// clampHeartbeat derives the heartbeat cadence for an interval: a fraction
// of it, clamped to the configured band and never slower than the interval
// itself.
func (l *Loop) clampHeartbeat(interval time.Duration) time.Duration {
	hb := time.Duration(float64(interval) * l.cfg.HeartbeatFraction)
	hb = clampDur(hb, l.cfg.MinHeartbeat, l.cfg.MaxHeartbeat)
	if hb > interval {
		hb = interval
	}
	return hb
}

func clampDur(d, lo, hi time.Duration) time.Duration {
	if d < lo {
		return lo
	}
	if d > hi {
		return hi
	}
	return d
}

// relDiff is |a-b| relative to b (0 when b is 0 and a is 0).
func relDiff(a, b time.Duration) float64 {
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	if b <= 0 {
		if diff == 0 {
			return 0
		}
		return 1
	}
	return float64(diff) / float64(b)
}

// recordLocked stamps the decision's sequence number and appends it to the
// bounded ring.
func (l *Loop) recordLocked(d Decision) {
	l.nextSeq++
	d.Seq = l.nextSeq
	if d.Bounds == nil {
		d.Bounds = []obs.BoundCount{}
	}
	l.decisions = append(l.decisions, d)
	if over := len(l.decisions) - l.cfg.RingSize; over > 0 {
		l.decisions = append(l.decisions[:0], l.decisions[over:]...)
	}
}

// RegionTunerState is one region's row in a loop snapshot.
type RegionTunerState struct {
	Region      int   `json:"region"`
	IntervalNS  int64 `json:"interval_ns"`
	HeartbeatNS int64 `json:"heartbeat_ns"`
	DelayNS     int64 `json:"delay_ns"`
	Retunes     int64 `json:"retunes"`
	Held        int64 `json:"held"`
}

// Snapshot is the /tuner payload: the loop's hysteresis configuration, the
// per-region effective state, and the retained decision timeline, oldest
// first. Fully deterministic under the virtual clock (counts and virtual
// timestamps only, regions sorted by id).
type Snapshot struct {
	CadenceNS   int64              `json:"cadence_ns"`
	DeadBand    float64            `json:"dead_band"`
	MaxStep     float64            `json:"max_step"`
	MinSamples  int64              `json:"min_samples"`
	TargetSlack float64            `json:"target_slack"`
	Regions     []RegionTunerState `json:"regions"`
	Decisions   []Decision         `json:"decisions"`
}

// Snapshot returns the loop's current state for the ops surface.
func (l *Loop) Snapshot() Snapshot {
	l.mu.Lock()
	defer l.mu.Unlock()
	snap := Snapshot{
		CadenceNS:   int64(l.cfg.Cadence),
		DeadBand:    l.cfg.DeadBand,
		MaxStep:     l.cfg.MaxStep,
		MinSamples:  l.cfg.MinSamples,
		TargetSlack: l.cfg.TargetSlack,
		Regions:     []RegionTunerState{},
		Decisions:   append([]Decision{}, l.decisions...),
	}
	ids := make([]int, 0, len(l.regions))
	for id := range l.regions {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		rs := l.regions[id]
		snap.Regions = append(snap.Regions, RegionTunerState{
			Region:      id,
			IntervalNS:  int64(rs.act.Interval()),
			HeartbeatNS: int64(rs.act.HeartbeatInterval()),
			DelayNS:     int64(rs.act.Delay()),
			Retunes:     rs.retunes,
			Held:        rs.held,
		})
	}
	return snap
}
