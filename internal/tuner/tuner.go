// Package tuner implements a concrete instance of the cache-management
// policies the paper's Section 6 calls for: "C&C constraints add more
// dimensions to this problem: even in the case of a cache hit, the local
// data might not be used simply because it does not satisfy consistency or
// currency constraints."
//
// Given the workload's distribution of currency bounds for the queries
// hitting a region, the tuner picks the region's refresh interval f to
// minimize the expected cost rate
//
//	cost(f) = RefreshCost/f + QueryRate * RemotePenalty * (1 - E_B[p(B, d, f)])
//
// where p is the paper's local-probability formula (Section 3.2.4). Longer
// intervals save refresh work but push more queries to the back end; the
// optimum balances the two. The expectation is analytic per bound, so the
// objective is cheap to evaluate and (piecewise) smooth; a golden-section
// search over log-f finds the minimum.
package tuner

import (
	"fmt"
	"math"
	"sort"
	"time"

	"relaxedcc/internal/cc"
)

// BoundShare is one slice of the workload: the fraction of queries
// (Weight) that declare the given currency bound.
type BoundShare struct {
	Bound  time.Duration
	Weight float64
}

// Workload describes the query traffic aimed at one currency region.
type Workload struct {
	// Bounds is the distribution of currency bounds; weights are
	// normalized internally.
	Bounds []BoundShare
	// QueriesPerSecond is the aggregate arrival rate.
	QueriesPerSecond float64
}

// normalized returns the bound shares with weights summing to 1.
func (w Workload) normalized() ([]BoundShare, error) {
	if len(w.Bounds) == 0 {
		return nil, fmt.Errorf("tuner: workload has no bound distribution")
	}
	total := 0.0
	for _, b := range w.Bounds {
		if b.Weight < 0 {
			return nil, fmt.Errorf("tuner: negative weight")
		}
		total += b.Weight
	}
	if total <= 0 {
		return nil, fmt.Errorf("tuner: weights sum to zero")
	}
	out := make([]BoundShare, len(w.Bounds))
	for i, b := range w.Bounds {
		out[i] = BoundShare{Bound: b.Bound, Weight: b.Weight / total}
	}
	return out, nil
}

// Costs parameterizes the trade-off.
type Costs struct {
	// RefreshCost is the cost of one propagation cycle (agent work plus
	// back-end log reading), in abstract cost units.
	RefreshCost float64
	// RemotePenalty is the extra cost of answering one query remotely
	// instead of locally.
	RemotePenalty float64
}

// Result is the tuner's recommendation.
type Result struct {
	Interval time.Duration
	// LocalFraction is the expected fraction of queries answered locally
	// at the chosen interval.
	LocalFraction float64
	// CostRate is the expected cost per second at the chosen interval.
	CostRate float64
}

// ExpectedLocalFraction computes E_B[p(B, d, f)] over the workload's bound
// distribution.
func ExpectedLocalFraction(w Workload, d, f time.Duration) (float64, error) {
	bounds, err := w.normalized()
	if err != nil {
		return 0, err
	}
	p := 0.0
	for _, b := range bounds {
		p += b.Weight * cc.LocalProbability(b.Bound, d, f)
	}
	return p, nil
}

// CostRate evaluates the objective at interval f.
func CostRate(w Workload, c Costs, d, f time.Duration) (float64, error) {
	if f <= 0 {
		return 0, fmt.Errorf("tuner: interval must be positive")
	}
	local, err := ExpectedLocalFraction(w, d, f)
	if err != nil {
		return 0, err
	}
	refreshRate := 1.0 / f.Seconds()
	return c.RefreshCost*refreshRate + w.QueriesPerSecond*c.RemotePenalty*(1-local), nil
}

// searchBounds for the interval, in seconds.
const (
	minIntervalSec = 0.1
	maxIntervalSec = 24 * 3600
)

// Tune picks the refresh interval minimizing the cost rate for a region
// with propagation delay d. It golden-section-searches over log-interval
// (the objective is unimodal in practice: refresh cost falls, remote
// penalty rises) and also probes the workload's bound breakpoints, where
// the piecewise formula kinks.
func Tune(w Workload, c Costs, d time.Duration) (Result, error) {
	bounds, err := w.normalized()
	if err != nil {
		return Result{}, err
	}
	if w.QueriesPerSecond < 0 || c.RefreshCost < 0 || c.RemotePenalty < 0 {
		return Result{}, fmt.Errorf("tuner: negative rates or costs")
	}
	eval := func(fSec float64) float64 {
		rate, err := CostRate(w, c, d, time.Duration(fSec*float64(time.Second)))
		if err != nil {
			return math.Inf(1)
		}
		return rate
	}
	// Golden-section search on log f.
	lo, hi := math.Log(minIntervalSec), math.Log(maxIntervalSec)
	const phi = 0.6180339887498949
	a, b := lo, hi
	x1 := b - phi*(b-a)
	x2 := a + phi*(b-a)
	f1, f2 := eval(math.Exp(x1)), eval(math.Exp(x2))
	for i := 0; i < 100; i++ {
		if f1 < f2 {
			b, x2, f2 = x2, x1, f1
			x1 = b - phi*(b-a)
			f1 = eval(math.Exp(x1))
		} else {
			a, x1, f1 = x1, x2, f2
			x2 = a + phi*(b-a)
			f2 = eval(math.Exp(x2))
		}
	}
	bestF := math.Exp((a + b) / 2)
	bestRate := eval(bestF)
	// Probe the kinks: f = B - d for each workload bound (the point where
	// that slice flips between always-local and partially-local), plus the
	// search extremes.
	candidates := []float64{minIntervalSec, maxIntervalSec}
	for _, bs := range bounds {
		if k := (bs.Bound - d).Seconds(); k > minIntervalSec && k < maxIntervalSec {
			candidates = append(candidates, k)
		}
	}
	sort.Float64s(candidates)
	for _, cand := range candidates {
		if rate := eval(cand); rate < bestRate {
			bestF, bestRate = cand, rate
		}
	}
	interval := time.Duration(bestF * float64(time.Second)).Round(time.Millisecond)
	local, err := ExpectedLocalFraction(w, d, interval)
	if err != nil {
		return Result{}, err
	}
	return Result{Interval: interval, LocalFraction: local, CostRate: bestRate}, nil
}
