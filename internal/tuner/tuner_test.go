package tuner

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func uniform(bounds ...time.Duration) Workload {
	w := Workload{QueriesPerSecond: 10}
	for _, b := range bounds {
		w.Bounds = append(w.Bounds, BoundShare{Bound: b, Weight: 1})
	}
	return w
}

func TestExpectedLocalFraction(t *testing.T) {
	d := 5 * time.Second
	f := 100 * time.Second
	// Single bound: matches the formula directly.
	w := uniform(55 * time.Second)
	got, err := ExpectedLocalFraction(w, d, f)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("p = %v", got)
	}
	// Mixture: average of the two slices.
	w = uniform(55*time.Second, 105*time.Second) // 0.5 and 1.0
	got, _ = ExpectedLocalFraction(w, d, f)
	if math.Abs(got-0.75) > 1e-9 {
		t.Fatalf("mixture p = %v", got)
	}
}

func TestCostRateComponents(t *testing.T) {
	w := uniform(105 * time.Second) // always local at f=100,d=5
	c := Costs{RefreshCost: 50, RemotePenalty: 3}
	rate, err := CostRate(w, c, 5*time.Second, 100*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Pure refresh cost: 50/100 per second.
	if math.Abs(rate-0.5) > 1e-9 {
		t.Fatalf("rate = %v", rate)
	}
	// Tight bound: never local -> refresh + full remote penalty.
	w = uniform(1 * time.Second)
	rate, _ = CostRate(w, c, 5*time.Second, 100*time.Second)
	if math.Abs(rate-(0.5+10*3)) > 1e-9 {
		t.Fatalf("rate = %v", rate)
	}
	if _, err := CostRate(w, c, time.Second, 0); err == nil {
		t.Fatal("zero interval accepted")
	}
}

func TestTunePrefersFastRefreshForTightBounds(t *testing.T) {
	d := 1 * time.Second
	// Everyone demands 10s currency; remote queries are expensive.
	w := uniform(10 * time.Second)
	w.QueriesPerSecond = 100
	res, err := Tune(w, Costs{RefreshCost: 1, RemotePenalty: 1}, d)
	if err != nil {
		t.Fatal(err)
	}
	// With f <= B-d = 9s everyone stays local; refreshing faster than
	// needed only adds cost, so the optimum is at (or just below) 9s.
	if res.Interval > 9*time.Second || res.Interval < 4*time.Second {
		t.Fatalf("interval = %v", res.Interval)
	}
	if res.LocalFraction < 0.999 {
		t.Fatalf("local fraction = %v", res.LocalFraction)
	}
}

func TestTunePrefersSlowRefreshForLooseWorkload(t *testing.T) {
	d := 1 * time.Second
	// Queries tolerate an hour of staleness; refresh is expensive.
	w := uniform(time.Hour)
	w.QueriesPerSecond = 1
	res, err := Tune(w, Costs{RefreshCost: 1000, RemotePenalty: 0.1}, d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Interval < 30*time.Minute {
		t.Fatalf("interval = %v (should exploit the loose bounds)", res.Interval)
	}
}

func TestTuneMixedWorkloadLandsBetween(t *testing.T) {
	d := 1 * time.Second
	w := Workload{
		QueriesPerSecond: 50,
		Bounds: []BoundShare{
			{Bound: 5 * time.Second, Weight: 0.5},
			{Bound: 10 * time.Minute, Weight: 0.5},
		},
	}
	res, err := Tune(w, Costs{RefreshCost: 10, RemotePenalty: 1}, d)
	if err != nil {
		t.Fatal(err)
	}
	// Serving the tight half requires f <= 4s; the tuner should find it
	// worthwhile given the heavy remote penalty.
	if res.Interval > 4*time.Second {
		t.Fatalf("interval = %v", res.Interval)
	}
	if res.LocalFraction < 0.99 {
		t.Fatalf("local = %v", res.LocalFraction)
	}
}

func TestTuneIgnoresUnservableBounds(t *testing.T) {
	d := 10 * time.Second
	// Bounds below the delay can never be served locally; the tuner must
	// not waste refreshes chasing them.
	w := Workload{
		QueriesPerSecond: 10,
		Bounds: []BoundShare{
			{Bound: 2 * time.Second, Weight: 0.9}, // unservable (d=10s)
			{Bound: time.Hour, Weight: 0.1},
		},
	}
	res, err := Tune(w, Costs{RefreshCost: 100, RemotePenalty: 1}, d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Interval < time.Minute {
		t.Fatalf("interval = %v: refreshing fast cannot help this workload", res.Interval)
	}
}

func TestTuneErrors(t *testing.T) {
	if _, err := Tune(Workload{}, Costs{}, time.Second); err == nil {
		t.Fatal("empty workload accepted")
	}
	if _, err := Tune(uniform(time.Second), Costs{RefreshCost: -1}, time.Second); err == nil {
		t.Fatal("negative cost accepted")
	}
	w := Workload{Bounds: []BoundShare{{Bound: time.Second, Weight: -1}}}
	if _, err := Tune(w, Costs{}, time.Second); err == nil {
		t.Fatal("negative weight accepted")
	}
	w = Workload{Bounds: []BoundShare{{Bound: time.Second, Weight: 0}}}
	if _, err := Tune(w, Costs{}, time.Second); err == nil {
		t.Fatal("zero-weight workload accepted")
	}
}

// TestQuickTuneIsNoWorseThanFixedIntervals property-tests optimality: the
// tuned interval's cost rate must not exceed the cost rate of a grid of
// fixed intervals (within numeric tolerance).
func TestQuickTuneIsNoWorseThanFixedIntervals(t *testing.T) {
	check := func(seedB1, seedB2 uint16, refTenths, penTenths uint8) bool {
		w := Workload{
			QueriesPerSecond: 10,
			Bounds: []BoundShare{
				{Bound: time.Duration(1+int(seedB1)%600) * time.Second, Weight: 0.5},
				{Bound: time.Duration(1+int(seedB2)%600) * time.Second, Weight: 0.5},
			},
		}
		c := Costs{
			RefreshCost:   float64(1+refTenths) / 2,
			RemotePenalty: float64(1+penTenths) / 10,
		}
		d := 2 * time.Second
		res, err := Tune(w, c, d)
		if err != nil {
			return false
		}
		for fSec := 0.5; fSec < 4000; fSec *= 1.7 {
			rate, err := CostRate(w, c, d, time.Duration(fSec*float64(time.Second)))
			if err != nil {
				return false
			}
			if rate < res.CostRate-1e-6 {
				t.Logf("fixed f=%.1fs beats tuned %v: %.6f < %.6f", fSec, res.Interval, rate, res.CostRate)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
