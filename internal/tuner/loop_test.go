package tuner

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"relaxedcc/internal/obs"
)

// fakeObserver feeds Tick one preset window per Cut.
type fakeObserver struct {
	windows [][]obs.WorkloadProfile
}

func (f *fakeObserver) Cut(time.Time) []obs.WorkloadProfile {
	if len(f.windows) == 0 {
		return nil
	}
	w := f.windows[0]
	f.windows = f.windows[1:]
	return w
}

// fakeActuator is an in-memory RegionActuator.
type fakeActuator struct {
	region   int
	delay    time.Duration
	interval time.Duration
	hb       time.Duration
}

func (a *fakeActuator) Region() int                          { return a.region }
func (a *fakeActuator) Delay() time.Duration                 { return a.delay }
func (a *fakeActuator) Interval() time.Duration              { return a.interval }
func (a *fakeActuator) SetInterval(d time.Duration)          { a.interval = d }
func (a *fakeActuator) HeartbeatInterval() time.Duration     { return a.hb }
func (a *fakeActuator) SetHeartbeatInterval(d time.Duration) { a.hb = d }

// tightProfile is a busy window whose bound mix prices well below the 60s
// starting interval: bound 4s at high arrival rate.
func tightProfile(region int) obs.WorkloadProfile {
	return obs.WorkloadProfile{
		Region: region, WindowNS: int64(10 * time.Second),
		Queries: 40, QueriesPerSecond: 4, Local: 40,
		Bounds: []obs.BoundCount{{BoundNS: int64(4 * time.Second), Count: 40}},
	}
}

func loopAt(t *testing.T) time.Time {
	t.Helper()
	return time.Date(2004, 6, 13, 0, 0, 0, 0, time.UTC)
}

// TestLoopMaxStepThenConverge drives the same tight window through several
// ticks: the interval descends by at most MaxStep per round, lands on the
// solved value, then the dead-band holds it there.
func TestLoopMaxStepThenConverge(t *testing.T) {
	ob := &fakeObserver{}
	for i := 0; i < 5; i++ {
		ob.windows = append(ob.windows, []obs.WorkloadProfile{tightProfile(1)})
	}
	l := NewLoop(LoopConfig{}, ob, nil)
	act := &fakeActuator{region: 1, delay: 500 * time.Millisecond,
		interval: 60 * time.Second, hb: time.Second}
	l.AddRegion(act)

	now := loopAt(t)
	for i := 0; i < 5; i++ {
		now = now.Add(10 * time.Second)
		if err := l.Tick(now); err != nil {
			t.Fatal(err)
		}
	}
	snap := l.Snapshot()
	if len(snap.Decisions) != 5 {
		t.Fatalf("got %d decisions, want 5", len(snap.Decisions))
	}

	// Round 1: solver wants ~2-3s but max-step caps the move at 60s/4.
	d0 := snap.Decisions[0]
	if d0.Reason != "applied:max-step" || !d0.Applied {
		t.Fatalf("round 1 = %q applied=%v, want applied:max-step", d0.Reason, d0.Applied)
	}
	if d0.AppliedIntervalNS != int64(15*time.Second) {
		t.Fatalf("round 1 applied %s, want 15s (60s / MaxStep)",
			time.Duration(d0.AppliedIntervalNS))
	}
	if d0.PrevIntervalNS != int64(60*time.Second) {
		t.Fatalf("round 1 prev %s, want 60s", time.Duration(d0.PrevIntervalNS))
	}
	if solved := time.Duration(d0.SolvedIntervalNS); solved <= 0 || solved > 4*time.Second {
		t.Fatalf("round 1 solved %s, want within the 4s bound", solved)
	}

	// Steps never exceed MaxStep in either direction, and every decision on
	// this steady workload solves to the same interval.
	for i, d := range snap.Decisions {
		if d.Applied {
			lo := float64(d.PrevIntervalNS) / 4
			hi := float64(d.PrevIntervalNS) * 4
			if f := float64(d.AppliedIntervalNS); f < lo || f > hi {
				t.Errorf("decision %d applied %s breaches the 4x step cap from %s",
					i, time.Duration(d.AppliedIntervalNS), time.Duration(d.PrevIntervalNS))
			}
		}
		if d.SolvedIntervalNS != d0.SolvedIntervalNS {
			t.Errorf("decision %d solved %s, want steady %s",
				i, time.Duration(d.SolvedIntervalNS), time.Duration(d0.SolvedIntervalNS))
		}
	}

	// The staircase bottoms out on the solved interval, then holds.
	last := snap.Decisions[4]
	if last.Reason != "held:dead-band" || last.Applied {
		t.Fatalf("round 5 = %q applied=%v, want held:dead-band", last.Reason, last.Applied)
	}
	if act.Interval() != time.Duration(d0.SolvedIntervalNS) {
		t.Fatalf("converged interval %s, want solved %s",
			act.Interval(), time.Duration(d0.SolvedIntervalNS))
	}
	if act.HeartbeatInterval() > act.Interval() || act.HeartbeatInterval() < 100*time.Millisecond {
		t.Fatalf("heartbeat %s out of band for interval %s", act.HeartbeatInterval(), act.Interval())
	}
	if snap.Regions[0].Retunes+snap.Regions[0].Held != 5 {
		t.Fatalf("retunes %d + held %d != 5 ticks",
			snap.Regions[0].Retunes, snap.Regions[0].Held)
	}
}

// TestLoopMaxStepUpward: a workload that prices far above the current
// interval lengthens it by at most MaxStep per round too.
func TestLoopMaxStepUpward(t *testing.T) {
	loose := obs.WorkloadProfile{
		Region: 1, WindowNS: int64(10 * time.Second),
		Queries: 40, QueriesPerSecond: 0.1, Local: 40,
		Bounds: []obs.BoundCount{{BoundNS: int64(30 * time.Minute), Count: 40}},
	}
	ob := &fakeObserver{windows: [][]obs.WorkloadProfile{{loose}}}
	l := NewLoop(LoopConfig{}, ob, nil)
	act := &fakeActuator{region: 1, delay: 500 * time.Millisecond,
		interval: time.Second, hb: 100 * time.Millisecond}
	l.AddRegion(act)
	if err := l.Tick(loopAt(t)); err != nil {
		t.Fatal(err)
	}
	d := l.Snapshot().Decisions[0]
	if d.Reason != "applied:max-step" {
		t.Fatalf("reason = %q, want applied:max-step", d.Reason)
	}
	if act.Interval() != 4*time.Second {
		t.Fatalf("interval %s, want 4s (1s * MaxStep)", act.Interval())
	}
}

// TestLoopHolds covers the evidence-based hold reasons and that held
// decisions never move the actuator.
func TestLoopHolds(t *testing.T) {
	thin := obs.WorkloadProfile{Region: 1, Queries: 3, Local: 3,
		Bounds: []obs.BoundCount{{BoundNS: int64(time.Second), Count: 3}}}
	unbounded := obs.WorkloadProfile{Region: 1, Queries: 20, Local: 20,
		Unbounded: 20, Bounds: []obs.BoundCount{}}
	idle := obs.WorkloadProfile{Region: 1}
	unknown := tightProfile(9) // region never registered

	ob := &fakeObserver{windows: [][]obs.WorkloadProfile{
		{thin}, {unbounded}, {idle}, {unknown},
	}}
	l := NewLoop(LoopConfig{}, ob, nil)
	act := &fakeActuator{region: 1, delay: 500 * time.Millisecond,
		interval: 60 * time.Second, hb: time.Second}
	l.AddRegion(act)

	now := loopAt(t)
	for i := 0; i < 4; i++ {
		now = now.Add(10 * time.Second)
		if err := l.Tick(now); err != nil {
			t.Fatal(err)
		}
	}
	snap := l.Snapshot()
	// Idle windows and unregistered regions yield no decision at all.
	if len(snap.Decisions) != 2 {
		t.Fatalf("got %d decisions, want 2 (idle/unknown regions are silent)", len(snap.Decisions))
	}
	if snap.Decisions[0].Reason != "held:min-samples" {
		t.Errorf("thin window reason = %q", snap.Decisions[0].Reason)
	}
	if snap.Decisions[1].Reason != "held:no-bounds" {
		t.Errorf("unbounded window reason = %q", snap.Decisions[1].Reason)
	}
	for i, d := range snap.Decisions {
		if d.Applied || d.AppliedIntervalNS != int64(60*time.Second) {
			t.Errorf("held decision %d moved the interval: %+v", i, d)
		}
	}
	if act.Interval() != 60*time.Second || act.HeartbeatInterval() != time.Second {
		t.Fatalf("actuator moved on holds: %s/%s", act.Interval(), act.HeartbeatInterval())
	}
	if snap.Regions[0].Held != 2 || snap.Regions[0].Retunes != 0 {
		t.Fatalf("held=%d retunes=%d, want 2/0", snap.Regions[0].Held, snap.Regions[0].Retunes)
	}
}

// TestLoopDeadBandHold: a solved interval within DeadBand of the current one
// is not applied even though it differs.
func TestLoopDeadBandHold(t *testing.T) {
	ob := &fakeObserver{windows: [][]obs.WorkloadProfile{{tightProfile(1)}}}
	l := NewLoop(LoopConfig{}, ob, nil)
	// Pre-seed the actuator 10% away from where the solver will land: within
	// the 15% dead-band.
	probe := NewLoop(LoopConfig{}, &fakeObserver{windows: [][]obs.WorkloadProfile{{tightProfile(1)}}}, nil)
	pact := &fakeActuator{region: 1, delay: 500 * time.Millisecond,
		interval: 3 * time.Second, hb: 300 * time.Millisecond}
	probe.AddRegion(pact)
	if err := probe.Tick(loopAt(t)); err != nil {
		t.Fatal(err)
	}
	solved := time.Duration(probe.Snapshot().Decisions[0].SolvedIntervalNS)

	act := &fakeActuator{region: 1, delay: 500 * time.Millisecond,
		interval: time.Duration(float64(solved) * 1.10), hb: 300 * time.Millisecond}
	l.AddRegion(act)
	if err := l.Tick(loopAt(t)); err != nil {
		t.Fatal(err)
	}
	d := l.Snapshot().Decisions[0]
	if d.Reason != "held:dead-band" || d.Applied {
		t.Fatalf("reason = %q applied=%v, want held:dead-band", d.Reason, d.Applied)
	}
	if act.Interval() != time.Duration(float64(solved)*1.10) {
		t.Fatalf("dead-band hold moved the interval to %s", act.Interval())
	}
}

// TestLoopRingCap: the decision timeline is bounded and keeps the newest
// entries with monotonic sequence numbers.
func TestLoopRingCap(t *testing.T) {
	ob := &fakeObserver{}
	for i := 0; i < 7; i++ {
		ob.windows = append(ob.windows, []obs.WorkloadProfile{tightProfile(1)})
	}
	l := NewLoop(LoopConfig{RingSize: 4}, ob, nil)
	act := &fakeActuator{region: 1, delay: 500 * time.Millisecond,
		interval: 60 * time.Second, hb: time.Second}
	l.AddRegion(act)
	now := loopAt(t)
	for i := 0; i < 7; i++ {
		now = now.Add(10 * time.Second)
		if err := l.Tick(now); err != nil {
			t.Fatal(err)
		}
	}
	ds := l.Snapshot().Decisions
	if len(ds) != 4 {
		t.Fatalf("ring holds %d decisions, want 4", len(ds))
	}
	for i, d := range ds {
		if want := int64(4 + i); d.Seq != want {
			t.Fatalf("ring kept seq %d at slot %d, want %d (newest retained)", d.Seq, i, want)
		}
	}
}

// TestLoopMetrics: decisions move the tuner_* instruments on the registry.
func TestLoopMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	ob := &fakeObserver{windows: [][]obs.WorkloadProfile{
		{tightProfile(1)},
		{{Region: 1, Queries: 2, Local: 2,
			Bounds: []obs.BoundCount{{BoundNS: int64(time.Second), Count: 2}}}},
	}}
	l := NewLoop(LoopConfig{}, ob, reg)
	act := &fakeActuator{region: 1, delay: 500 * time.Millisecond,
		interval: 60 * time.Second, hb: time.Second}
	l.AddRegion(act)
	now := loopAt(t)
	for i := 0; i < 2; i++ {
		now = now.Add(10 * time.Second)
		if err := l.Tick(now); err != nil {
			t.Fatal(err)
		}
	}
	snap := reg.Snapshot()
	if got := snap.Counters[`tuner_retunes_total{region="1"}`]; got != 1 {
		t.Errorf("tuner_retunes_total = %d, want 1", got)
	}
	if got := snap.Counters[`tuner_held_total{region="1"}`]; got != 1 {
		t.Errorf("tuner_held_total = %d, want 1", got)
	}
	if got := snap.Gauges[`tuner_target_interval_ns{region="1"}`]; got != int64(act.Interval()) {
		t.Errorf("tuner_target_interval_ns = %d, want %d", got, act.Interval())
	}
}

// --- /tuner golden JSON schema ---

func requireKeys(t *testing.T, obj map[string]any, want ...string) {
	t.Helper()
	if len(obj) != len(want) {
		keys := make([]string, 0, len(obj))
		for k := range obj {
			keys = append(keys, k)
		}
		t.Fatalf("object has %d keys %v, want %v", len(obj), keys, want)
	}
	for _, k := range want {
		if _, ok := obj[k]; !ok {
			t.Fatalf("missing key %q", k)
		}
	}
}

// TestTunerEndpointSchema pins the exact /tuner payload shape: top level,
// region rows, and decision records — the golden schema the ops tooling and
// bench snapshotters scrape.
func TestTunerEndpointSchema(t *testing.T) {
	ob := &fakeObserver{windows: [][]obs.WorkloadProfile{{tightProfile(1)}}}
	l := NewLoop(LoopConfig{}, ob, nil)
	act := &fakeActuator{region: 1, delay: 500 * time.Millisecond,
		interval: 60 * time.Second, hb: time.Second}
	l.AddRegion(act)
	if err := l.Tick(loopAt(t)); err != nil {
		t.Fatal(err)
	}

	h := obs.NewHandler(obs.Ops{Registry: obs.NewRegistry(),
		Tuner: func() any { return l.Snapshot() }})
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/tuner", nil))
	if rr.Code != 200 {
		t.Fatalf("GET /tuner = %d: %s", rr.Code, rr.Body.String())
	}
	if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	var v map[string]any
	if err := json.Unmarshal(rr.Body.Bytes(), &v); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rr.Body.String())
	}
	requireKeys(t, v, "cadence_ns", "dead_band", "max_step", "min_samples",
		"target_slack", "regions", "decisions")
	if v["cadence_ns"].(float64) != float64(10*time.Second) {
		t.Fatalf("cadence_ns = %v", v["cadence_ns"])
	}
	if v["dead_band"].(float64) != 0.15 || v["max_step"].(float64) != 4 {
		t.Fatalf("hysteresis config = %v/%v", v["dead_band"], v["max_step"])
	}

	regions := v["regions"].([]any)
	if len(regions) != 1 {
		t.Fatalf("regions = %v", regions)
	}
	r := regions[0].(map[string]any)
	requireKeys(t, r, "region", "interval_ns", "heartbeat_ns", "delay_ns",
		"retunes", "held")
	if r["region"].(float64) != 1 || r["retunes"].(float64) != 1 {
		t.Fatalf("region row wrong: %v", r)
	}
	if r["interval_ns"].(float64) != float64(act.Interval()) {
		t.Fatalf("interval_ns = %v, want %d", r["interval_ns"], act.Interval())
	}

	decisions := v["decisions"].([]any)
	if len(decisions) != 1 {
		t.Fatalf("decisions = %v", decisions)
	}
	d := decisions[0].(map[string]any)
	requireKeys(t, d, "seq", "at_unix_ns", "region", "queries",
		"queries_per_second", "local_ratio", "unbounded", "bounds",
		"prev_interval_ns", "solved_interval_ns", "applied_interval_ns",
		"heartbeat_ns", "predicted_local", "cost_rate", "applied", "reason")
	if d["reason"] != "applied:max-step" || d["applied"] != true {
		t.Fatalf("decision wrong: %v", d)
	}
	bounds := d["bounds"].([]any)
	if len(bounds) != 1 {
		t.Fatalf("bounds = %v", bounds)
	}
	requireKeys(t, bounds[0].(map[string]any), "bound_ns", "count")
}
