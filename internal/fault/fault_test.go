package fault

import (
	"errors"
	"testing"
	"time"

	"relaxedcc/internal/vclock"
)

func TestSameSeedSameFaults(t *testing.T) {
	a, b := New(7), New(7)
	for _, i := range []*Injector{a, b} {
		i.SetLatency(time.Millisecond, 10*time.Millisecond)
		i.SetErrorRate(0.3)
	}
	now := vclock.Epoch
	for k := 0; k < 200; k++ {
		latA, errA := a.Inject(now)
		latB, errB := b.Inject(now)
		if latA != latB || (errA == nil) != (errB == nil) {
			t.Fatalf("draw %d diverged: (%v,%v) vs (%v,%v)", k, latA, errA, latB, errB)
		}
	}
	sa, sb := a.Stats(), b.Stats()
	if sa != sb {
		t.Fatalf("stats diverged: %+v vs %+v", sa, sb)
	}
	if sa.Transients == 0 || sa.Transients == 200 {
		t.Fatalf("error rate 0.3 gave %d/200 transients", sa.Transients)
	}
}

func TestPartitionWindowHealsOnClock(t *testing.T) {
	i := New(1)
	heal := vclock.Epoch.Add(time.Minute)
	i.PartitionUntil(heal)
	if _, err := i.Inject(vclock.Epoch); !errors.Is(err, ErrPartition) {
		t.Fatalf("inside window: err = %v", err)
	}
	if !i.Partitioned(heal.Add(-time.Nanosecond)) {
		t.Fatal("healed early")
	}
	if _, err := i.Inject(heal); err != nil {
		t.Fatalf("at heal time: err = %v", err)
	}
	if i.Partitioned(vclock.Epoch) {
		t.Fatal("partition did not clear")
	}
}

func TestInjectedErrorsShareBaseClass(t *testing.T) {
	i := New(1)
	i.SetErrorRate(1)
	if _, err := i.Inject(vclock.Epoch); !errors.Is(err, ErrInjected) || !errors.Is(err, ErrTransient) {
		t.Fatalf("err = %v", err)
	}
	i.SetErrorRate(0)
	i.SetPartitioned(true)
	if _, err := i.Inject(vclock.Epoch); !errors.Is(err, ErrInjected) || !errors.Is(err, ErrPartition) {
		t.Fatalf("err = %v", err)
	}
}

func TestStallClearsOnRestartByDefault(t *testing.T) {
	i := New(1)
	i.StallAgent(3, true)
	if !i.AgentStalled(3) {
		t.Fatal("not stalled")
	}
	if i.AgentStalled(4) {
		t.Fatal("wrong region stalled")
	}
	i.AgentRestarted(3)
	if i.AgentStalled(3) {
		t.Fatal("soft stall survived restart")
	}
	if got := i.Stats().Stalls; got != 1 {
		t.Fatalf("stalls = %d", got)
	}
}

func TestHardStallSurvivesRestart(t *testing.T) {
	i := New(1)
	i.SetStallSurvivesRestart(true)
	i.StallAgent(3, true)
	i.AgentRestarted(3)
	if !i.AgentStalled(3) {
		t.Fatal("hard stall cleared by restart")
	}
	i.StallAgent(3, false)
	if i.AgentStalled(3) {
		t.Fatal("explicit clear ignored")
	}
}

func TestZeroValueInjectsNothing(t *testing.T) {
	var i Injector
	lat, err := i.Inject(time.Time{})
	if lat != 0 || err != nil {
		t.Fatalf("zero injector imposed (%v, %v)", lat, err)
	}
}

func TestLatencyOnlyInjection(t *testing.T) {
	i := New(9)
	i.SetLatency(5*time.Millisecond, 0)
	lat, err := i.Inject(vclock.Epoch)
	if err != nil || lat != 5*time.Millisecond {
		t.Fatalf("lat=%v err=%v", lat, err)
	}
	if got := i.Stats().Latency; got != 5*time.Millisecond {
		t.Fatalf("latency total = %v", got)
	}
}
