// Package fault is a deterministic fault injector for the cache↔back-end
// link and the replication fabric. It models the failures a mid-tier cache
// must survive — added link latency, transient request errors, hard
// partitions, and wedged distribution agents — so the violation-action
// machinery (serve stale, block, fail fast) can be exercised exactly.
//
// Determinism is the design constraint: every random draw comes from one
// seeded generator, and every time-dependent decision (partition windows,
// latency budgets) is driven by the caller-supplied clock reading, never by
// the wall clock. A chaos run with the same seed and the same virtual-clock
// schedule replays the same faults, which is what makes the chaos tests
// runnable under -race in CI without flaking.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// ErrInjected is the base class of every injector-produced failure;
// errors.Is(err, ErrInjected) identifies synthetic faults in tests.
var ErrInjected = errors.New("fault: injected failure")

// ErrPartition is returned while a hard partition is in force. It wraps
// ErrInjected.
var ErrPartition = fmt.Errorf("%w: link partitioned", ErrInjected)

// ErrTransient is a one-shot request failure (dropped packet, throttled
// connection). It wraps ErrInjected.
var ErrTransient = fmt.Errorf("%w: transient link error", ErrInjected)

// Stats counts what the injector has done.
type Stats struct {
	// Transients is how many transient errors were injected.
	Transients int64
	// PartitionDenials is how many calls were refused by a partition.
	PartitionDenials int64
	// Latency is the total synthetic latency imposed.
	Latency time.Duration
	// Stalls is how many agent wake-ups were swallowed by a stall.
	Stalls int64
}

// Injector imposes faults on demand. The zero value injects nothing; it is
// safe for concurrent use.
type Injector struct {
	mu  sync.Mutex
	rng *rand.Rand

	latencyBase   time.Duration
	latencyJitter time.Duration
	errorRate     float64

	partitioned    bool
	partitionUntil time.Time

	stalled        map[int]bool
	stallSurvives  bool // a stall that survives agent restarts (hard wedge)
	stats          Stats
}

// New creates an injector whose random draws are fully determined by seed.
func New(seed int64) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed)), stalled: map[int]bool{}}
}

// SetLatency makes every injected call cost base plus a uniform draw in
// [0, jitter) of synthetic latency.
func (i *Injector) SetLatency(base, jitter time.Duration) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.latencyBase, i.latencyJitter = base, jitter
}

// SetErrorRate makes each call fail with ErrTransient with probability p
// (clamped to [0, 1]).
func (i *Injector) SetErrorRate(p float64) {
	i.mu.Lock()
	defer i.mu.Unlock()
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	i.errorRate = p
}

// SetPartitioned opens (or heals) a hard partition: every call fails with
// ErrPartition until cleared.
func (i *Injector) SetPartitioned(down bool) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.partitioned = down
	i.partitionUntil = time.Time{}
}

// PartitionUntil opens a partition that heals itself once the caller's
// clock reaches t — a deterministic outage window on a virtual timeline.
func (i *Injector) PartitionUntil(t time.Time) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.partitioned = true
	i.partitionUntil = t
}

// Partitioned reports whether a partition is in force at time now.
func (i *Injector) Partitioned(now time.Time) bool {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.partitionedLocked(now)
}

func (i *Injector) partitionedLocked(now time.Time) bool {
	if !i.partitioned {
		return false
	}
	if !i.partitionUntil.IsZero() && !now.Before(i.partitionUntil) {
		i.partitioned = false
		i.partitionUntil = time.Time{}
		return false
	}
	return true
}

// Inject decides the fate of one link call at time now: the synthetic
// latency the call must pay (even failed calls pay it — the network does
// not refund round trips) and the injected error, if any. It implements
// remote.Fault.
func (i *Injector) Inject(now time.Time) (time.Duration, error) {
	i.mu.Lock()
	defer i.mu.Unlock()
	lat := i.latencyBase
	if i.latencyJitter > 0 && i.rng != nil {
		lat += time.Duration(i.rng.Int63n(int64(i.latencyJitter)))
	}
	i.stats.Latency += lat
	if i.partitionedLocked(now) {
		i.stats.PartitionDenials++
		return lat, ErrPartition
	}
	if i.errorRate > 0 && i.rng != nil && i.rng.Float64() < i.errorRate {
		i.stats.Transients++
		return lat, ErrTransient
	}
	return lat, nil
}

// StallAgent wedges (or unwedges) the distribution agent of one region:
// its wake-ups run but make no progress, so region staleness grows. By
// default a restart clears the wedge (the fault models a stuck process);
// see SetStallSurvivesRestart.
func (i *Injector) StallAgent(regionID int, stalled bool) {
	i.mu.Lock()
	defer i.mu.Unlock()
	if stalled {
		if i.stalled == nil {
			i.stalled = map[int]bool{}
		}
		i.stalled[regionID] = true
	} else {
		delete(i.stalled, regionID)
	}
}

// SetStallSurvivesRestart makes injected stalls persist across agent
// restarts (a hard wedge, e.g. corrupted state rather than a stuck
// process).
func (i *Injector) SetStallSurvivesRestart(hard bool) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.stallSurvives = hard
}

// AgentStalled reports whether the region's agent is wedged; each stalled
// wake-up is counted. It implements repl.StallProbe.
func (i *Injector) AgentStalled(regionID int) bool {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.stalled[regionID] {
		i.stats.Stalls++
		return true
	}
	return false
}

// AgentRestarted tells the injector a supervisor restarted the region's
// agent; soft stalls are cleared by the fresh process. It implements
// repl.StallProbe.
func (i *Injector) AgentRestarted(regionID int) {
	i.mu.Lock()
	defer i.mu.Unlock()
	if !i.stallSurvives {
		delete(i.stalled, regionID)
	}
}

// Stats returns a snapshot of injection counters.
func (i *Injector) Stats() Stats {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.stats
}
