package qcache

import (
	"fmt"
	"testing"
	"time"

	"relaxedcc/internal/catalog"
	"relaxedcc/internal/core"
)

func newSystem(t *testing.T) *core.System {
	t.Helper()
	sys := core.NewSystem()
	sys.MustExec("CREATE TABLE t (id BIGINT NOT NULL PRIMARY KEY, v BIGINT NOT NULL)")
	for i := 1; i <= 20; i++ {
		sys.MustExec(fmt.Sprintf("INSERT INTO t VALUES (%d, %d)", i, i*10))
	}
	sys.Analyze()
	if err := sys.AddRegion(&catalog.Region{
		ID: 1, Name: "R", UpdateInterval: 10 * time.Second, UpdateDelay: time.Second,
		HeartbeatInterval: time.Second,
	}); err != nil {
		t.Fatal(err)
	}
	if err := sys.CreateView(&catalog.View{
		Name: "t_prj", BaseTable: "t", Columns: []string{"id", "v"}, RegionID: 1,
	}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(12 * time.Second); err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestMissThenHit(t *testing.T) {
	sys := newSystem(t)
	rc := New(sys.Clock, sys.Cache.NewSession(), 10)
	q := "SELECT v FROM t WHERE id = 3 CURRENCY 60 ON (t)"
	res, outcome, err := rc.Query(q)
	if err != nil || outcome != Miss {
		t.Fatalf("first = %v, %v", outcome, err)
	}
	if res.Rows[0][0].Int() != 30 {
		t.Fatalf("rows = %v", res.Rows)
	}
	res, outcome, err = rc.Query(q)
	if err != nil || outcome != Hit {
		t.Fatalf("second = %v, %v", outcome, err)
	}
	if res.Rows[0][0].Int() != 30 {
		t.Fatal("cached rows")
	}
	st := rc.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBoundsShareOneEntry(t *testing.T) {
	sys := newSystem(t)
	rc := New(sys.Clock, sys.Cache.NewSession(), 10)
	if _, outcome, _ := rc.Query("SELECT v FROM t WHERE id = 3 CURRENCY 60 ON (t)"); outcome != Miss {
		t.Fatal("first should miss")
	}
	// A different bound over the same underlying query hits the same entry.
	if _, outcome, _ := rc.Query("SELECT v FROM t WHERE id = 3 CURRENCY 120 ON (t)"); outcome != Hit {
		t.Fatal("relaxed caller should hit")
	}
	if rc.Len() != 1 {
		t.Fatalf("entries = %d", rc.Len())
	}
}

func TestStaleEntryRefreshes(t *testing.T) {
	sys := newSystem(t)
	rc := New(sys.Clock, sys.Cache.NewSession(), 10)
	q := "SELECT v FROM t WHERE id = 3 CURRENCY 20 ON (t)"
	if _, outcome, _ := rc.Query(q); outcome != Miss {
		t.Fatal("miss expected")
	}
	asOf1, ok := rc.AsOf(q)
	if !ok {
		t.Fatal("AsOf missing")
	}
	// Age the entry beyond the bound; update the base meanwhile.
	if _, err := sys.Exec("UPDATE t SET v = 999 WHERE id = 3"); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	res, outcome, err := rc.Query(q)
	if err != nil || outcome != Refresh {
		t.Fatalf("aged lookup = %v, %v", outcome, err)
	}
	if res.Rows[0][0].Int() != 999 {
		t.Fatalf("refreshed rows = %v", res.Rows)
	}
	asOf2, _ := rc.AsOf(q)
	if !asOf2.After(asOf1) {
		t.Fatal("AsOf did not advance")
	}
}

func TestNoClauseAlwaysRecomputes(t *testing.T) {
	sys := newSystem(t)
	rc := New(sys.Clock, sys.Cache.NewSession(), 10)
	q := "SELECT v FROM t WHERE id = 3"
	if _, outcome, _ := rc.Query(q); outcome != Miss {
		t.Fatal("miss expected")
	}
	// Immediately again: still a recompute (Refresh), never a hit.
	if _, outcome, _ := rc.Query(q); outcome != Refresh {
		t.Fatal("no-clause queries must not be served from cache")
	}
}

func TestAsOfReflectsReplicaAge(t *testing.T) {
	sys := newSystem(t)
	rc := New(sys.Clock, sys.Cache.NewSession(), 10)
	q := "SELECT v FROM t WHERE id = 3 CURRENCY 60 ON (t)"
	if _, _, err := rc.Query(q); err != nil {
		t.Fatal(err)
	}
	asOf, _ := rc.AsOf(q)
	// The answer came from the local view, so AsOf must be the region's
	// sync point — strictly before "now".
	if !asOf.Before(sys.Clock.Now()) {
		t.Fatalf("asOf = %v, now = %v", asOf, sys.Clock.Now())
	}
	sync, _ := sys.Cache.LastSync(1)
	if !asOf.Equal(sync) {
		t.Fatalf("asOf = %v, region sync = %v", asOf, sync)
	}
}

func TestLRUEviction(t *testing.T) {
	sys := newSystem(t)
	rc := New(sys.Clock, sys.Cache.NewSession(), 3)
	for i := 1; i <= 5; i++ {
		q := fmt.Sprintf("SELECT v FROM t WHERE id = %d CURRENCY 60 ON (t)", i)
		if _, _, err := rc.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	if rc.Len() != 3 {
		t.Fatalf("entries = %d", rc.Len())
	}
	if rc.Stats().Evictions != 2 {
		t.Fatalf("evictions = %d", rc.Stats().Evictions)
	}
	// Oldest (id=1) evicted; newest (id=5) cached.
	if _, outcome, _ := rc.Query("SELECT v FROM t WHERE id = 5 CURRENCY 60 ON (t)"); outcome != Hit {
		t.Fatal("id=5 should be cached")
	}
	if _, outcome, _ := rc.Query("SELECT v FROM t WHERE id = 1 CURRENCY 60 ON (t)"); outcome != Miss {
		t.Fatal("id=1 should have been evicted")
	}
}

func TestClearAndErrors(t *testing.T) {
	sys := newSystem(t)
	rc := New(sys.Clock, sys.Cache.NewSession(), 10)
	rc.Query("SELECT v FROM t WHERE id = 1 CURRENCY 60 ON (t)")
	rc.Clear()
	if rc.Len() != 0 {
		t.Fatal("Clear")
	}
	if _, _, err := rc.Query("not sql"); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, ok := rc.AsOf("also not sql"); ok {
		t.Fatal("AsOf on garbage")
	}
	if _, _, err := rc.Query("SELECT nope FROM t CURRENCY 60 ON (t)"); err == nil {
		t.Fatal("bad column accepted")
	}
}

func TestOutcomeString(t *testing.T) {
	if Hit.String() != "hit" || Miss.String() != "miss" || Refresh.String() != "refresh" {
		t.Fatal("Outcome strings")
	}
}
