// Package qcache implements the paper's third motivating scenario
// (Section 1, "Caching of query results"): an application-level cache of
// materialized SELECT results that tracks the staleness of each cached
// result and transparently recomputes results that do not satisfy a query's
// currency requirement.
//
// The cache key is the query text with its currency clause stripped, so the
// same result entry serves requests with different bounds: a cached result
// computed for one caller is reused by any later caller whose bound admits
// its age. Entries record the conservative snapshot time (AsOf) reported by
// the DBMS, so results computed from replicas are aged correctly.
package qcache

import (
	"container/list"
	"sync"
	"time"

	"relaxedcc/internal/exec"
	"relaxedcc/internal/mtcache"
	"relaxedcc/internal/obs"
	"relaxedcc/internal/sqlparser"
	"relaxedcc/internal/sqltypes"
	"relaxedcc/internal/vclock"
)

// Outcome classifies how a lookup was served.
type Outcome int

// Lookup outcomes.
const (
	// Hit: a cached result satisfied the currency bound.
	Hit Outcome = iota
	// Miss: no cached result existed; computed and cached.
	Miss
	// Refresh: a cached result existed but was too stale for the bound;
	// recomputed and cached.
	Refresh
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case Miss:
		return "miss"
	case Refresh:
		return "refresh"
	default:
		return "Outcome(?)"
	}
}

// Stats counts cache activity.
type Stats struct {
	Hits, Misses, Refreshes int64
	Evictions               int64
}

// ResultCache caches query results in front of a cache DBMS session.
type ResultCache struct {
	clock    vclock.Clock
	session  *mtcache.Session
	capacity int

	mu      sync.Mutex
	entries map[string]*list.Element
	lru     *list.List // front = most recently used
	stats   Stats

	// Built-in instrumentation on the session's cache registry (qcache_*
	// counters). Multiple result caches over the same DBMS cache share
	// counters — they aggregate.
	mHits, mMisses, mRefreshes, mEvictions *obs.Counter
}

type entry struct {
	key    string
	schema *exec.Schema
	rows   []sqltypes.Row
	asOf   time.Time
}

// New creates a result cache holding up to capacity results, executing
// misses through the given session.
func New(clock vclock.Clock, session *mtcache.Session, capacity int) *ResultCache {
	if capacity < 1 {
		capacity = 1
	}
	reg := session.Obs()
	return &ResultCache{
		clock:      clock,
		session:    session,
		capacity:   capacity,
		entries:    map[string]*list.Element{},
		lru:        list.New(),
		mHits:      reg.Counter("qcache_hits_total"),
		mMisses:    reg.Counter("qcache_misses_total"),
		mRefreshes: reg.Counter("qcache_refreshes_total"),
		mEvictions: reg.Counter("qcache_evictions_total"),
	}
}

// Query serves a SELECT, from cache when a stored result is fresh enough
// for the query's currency bound. A query without a currency clause demands
// completely current data (the paper's default), so it always recomputes.
func (c *ResultCache) Query(sql string) (*exec.Result, Outcome, error) {
	sel, err := sqlparser.ParseSelect(sql)
	if err != nil {
		return nil, Miss, err
	}
	bound, hasBound := minBound(sel.Currency)
	key := cacheKey(sel)

	now := c.clock.Now()
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*entry)
		if hasBound && !e.asOf.Before(now.Add(-bound)) {
			c.lru.MoveToFront(el)
			c.stats.Hits++
			c.mHits.Inc()
			res := &exec.Result{Schema: e.schema, Rows: e.rows}
			c.mu.Unlock()
			return res, Hit, nil
		}
		// Present but too stale for this caller.
		c.mu.Unlock()
		res, err := c.recompute(sql, key)
		if err != nil {
			return nil, Refresh, err
		}
		c.mu.Lock()
		c.stats.Refreshes++
		c.mRefreshes.Inc()
		c.mu.Unlock()
		return res, Refresh, nil
	}
	c.mu.Unlock()
	res, err := c.recompute(sql, key)
	if err != nil {
		return nil, Miss, err
	}
	c.mu.Lock()
	c.stats.Misses++
	c.mMisses.Inc()
	c.mu.Unlock()
	return res, Miss, nil
}

// recompute executes through the session (which itself may answer from
// replicas within the query's bound) and stores the result with its
// conservative snapshot time.
func (c *ResultCache) recompute(sql, key string) (*exec.Result, error) {
	qr, err := c.session.Query(sql)
	if err != nil {
		return nil, err
	}
	asOf := qr.AsOf
	if asOf.IsZero() {
		asOf = c.clock.Now()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*entry)
		e.schema, e.rows, e.asOf = qr.Schema, qr.Rows, asOf
		c.lru.MoveToFront(el)
	} else {
		el := c.lru.PushFront(&entry{key: key, schema: qr.Schema, rows: qr.Rows, asOf: asOf})
		c.entries[key] = el
		for c.lru.Len() > c.capacity {
			oldest := c.lru.Back()
			c.lru.Remove(oldest)
			delete(c.entries, oldest.Value.(*entry).key)
			c.stats.Evictions++
			c.mEvictions.Inc()
		}
	}
	return qr.Result, nil
}

// Stats returns a snapshot of the counters.
func (c *ResultCache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Len returns the number of cached results.
func (c *ResultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Clear drops all cached results.
func (c *ResultCache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = map[string]*list.Element{}
	c.lru.Init()
}

// AsOf reports the snapshot time of the cached result for sql, if present.
func (c *ResultCache) AsOf(sql string) (time.Time, bool) {
	sel, err := sqlparser.ParseSelect(sql)
	if err != nil {
		return time.Time{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[cacheKey(sel)]; ok {
		return el.Value.(*entry).asOf, true
	}
	return time.Time{}, false
}

// cacheKey canonicalizes the statement minus its currency clause.
func cacheKey(sel *sqlparser.SelectStmt) string {
	cp := *sel
	cp.Currency = nil
	return sqlparser.SelectSQL(&cp)
}

// minBound extracts the tightest bound from a currency clause; ok=false for
// queries without a clause (which demand current data).
func minBound(cc *sqlparser.CurrencyClause) (time.Duration, bool) {
	if cc == nil || len(cc.Triples) == 0 {
		return 0, false
	}
	min := cc.Triples[0].Bound
	for _, tr := range cc.Triples[1:] {
		if tr.Bound < min {
			min = tr.Bound
		}
	}
	return min, true
}
