package core_test

import (
	"runtime"
	"sync"
	"testing"

	"relaxedcc/internal/core"
	"relaxedcc/internal/exec"
	"relaxedcc/internal/harness"
	"relaxedcc/internal/opt"
	"relaxedcc/internal/sqlparser"
	"relaxedcc/internal/tpcd"
)

// diffRunBoth plans one statement and executes it through both drains —
// exec.Run (columnar/batch preferred, the production path) and exec.RunRows
// (strict row-at-a-time) — on fresh operator trees built from the same
// physical plan, and requires identical result multisets. Returns the plan
// so callers can assert on its shape.
func diffRunBoth(t *testing.T, sys *core.System, name, sql string, opts opt.Options) *opt.Plan {
	t.Helper()
	sel, err := sqlparser.ParseSelect(sql)
	if err != nil {
		t.Fatalf("%s: parse: %v", name, err)
	}
	plan, _, err := sys.Cache.Plan(sel, opts)
	if err != nil {
		t.Fatalf("%s: plan: %v", name, err)
	}
	vec, err := exec.Run(plan.Root, &exec.EvalContext{Now: sys.Clock.Now()}, 0)
	if err != nil {
		t.Fatalf("%s: columnar run: %v", name, err)
	}
	rowRoot, err := plan.Build()
	if err != nil {
		t.Fatalf("%s: rebuild: %v", name, err)
	}
	rows, err := exec.RunRows(rowRoot, &exec.EvalContext{Now: sys.Clock.Now()}, 0)
	if err != nil {
		t.Fatalf("%s: row run: %v", name, err)
	}
	got := sortedRowStrings(vec.Rows)
	want := sortedRowStrings(rows.Rows)
	if len(got) != len(want) {
		t.Fatalf("%s: columnar path returned %d rows, row path %d\nplan: %s",
			name, len(got), len(want), plan.Shape)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: result divergence at sorted row %d:\ncolumnar: %s\nrow:      %s\nplan: %s",
				name, i, got[i], want[i], plan.Shape)
		}
	}
	return plan
}

// TestColumnarRowDifferentialMix pushes the full Table 4.2/4.3 TPC-D query
// mix (joins, currency guards, index ranges, plus the single-customer join)
// through the columnar executor and the row-at-a-time executor and requires
// byte-identical result multisets. This is the end-to-end contract behind
// the vectorized operators: whatever kernels, selection vectors, or gather
// paths a plan picks up, the rows that come out must not change.
func TestColumnarRowDifferentialMix(t *testing.T) {
	sys, err := tpcd.NewLoadedSystem(tpcd.Config{ScaleFactor: 0.005, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range harness.PlanChoiceCases() {
		diffRunBoth(t, sys, c.Name, c.SQL, opt.Options{})
	}
	diffRunBoth(t, sys, "Q2-single", tpcd.CustomerOrdersQuery(17, ""), opt.Options{})
}

// TestColumnarRowDifferentialParallel is the work-stealing variant: a
// larger load, MaxDOP 4, and GOMAXPROCS raised so morsel-parallel scans run
// real workers with stealing enabled. The mix must contain at least one
// genuinely parallel plan (otherwise the test is vacuously serial and the
// scale needs retuning), and the whole differential runs from several
// goroutines at once so -race sweeps the stealing deque and the shared
// storage snapshots under contention.
func TestColumnarRowDifferentialParallel(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	sys, err := tpcd.NewLoadedSystem(tpcd.Config{ScaleFactor: 0.1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	opts := opt.Options{MaxDOP: 4}
	// Relaxed currency bounds make the local views legal plan inputs; at
	// this scale the Orders view is large enough that its clustered full
	// scan beats serial access under MaxDOP 4.
	queries := []struct{ name, sql string }{
		{"join-relaxed", tpcd.JoinQuery("C.c_acctbal >= 0", "CURRENCY 30 ON (C), 30 ON (O)")},
		{"join-full", tpcd.JoinQuery("", "CURRENCY 30 ON (C), 30 ON (O)")},
		{"range-wide", tpcd.RangeQuery(0, 1000, "CURRENCY 30 ON (Customer)")},
	}

	parallel := 0
	for _, q := range queries {
		plan := diffRunBoth(t, sys, q.name, q.sql, opts)
		if plan.DOP > 1 {
			parallel++
		}
	}
	if parallel == 0 {
		t.Fatalf("no query in the mix planned parallel at MaxDOP=4; raise the scale factor")
	}

	// One staggered pass per goroutine is enough: all three queries overlap
	// in time, and the serial pass above already checked every answer.
	const goroutines = 3
	const iterations = 1
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iterations; it++ {
				q := queries[(g+it)%len(queries)]
				diffRunBoth(t, sys, q.name, q.sql, opts)
			}
		}(g)
	}
	wg.Wait()
}
