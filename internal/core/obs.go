package core

import (
	"net/http"

	"relaxedcc/internal/obs"
)

// ObsHandler returns the fully wired ops HTTP surface for the system's
// primary cache: /metrics, /trace/last, /queries/recent, /queries/slow,
// /slo, /regions and — once EnableAutotune has run — /tuner. Every endpoint
// refreshes the staleness gauges first so snapshots reflect current
// replication state even between queries. The tuner closure re-reads
// s.tuner per request, so enabling autotuning after the handler is built
// still lights up /tuner.
func (s *System) ObsHandler() http.Handler {
	return obs.NewHandler(obs.Ops{
		Registry: s.Cache.Obs(),
		Traces:   s.Cache.Traces(),
		Tracer:   s.Cache.Tracer(),
		SLO:      s.Cache.SLO(),
		Refresh:  s.Cache.RefreshStalenessGauges,
		Regions:  s.Cache.RegionStatuses,
		Tuner: func() any {
			if l := s.tuner; l != nil {
				return l.Snapshot()
			}
			return nil
		},
		// Same late-binding contract as Tuner: EnableAudit after the handler
		// is built still lights up /audit.
		Audit: func() any {
			if a := s.audit; a != nil {
				return a.Summary()
			}
			return nil
		},
	})
}
