package core_test

import (
	"testing"
	"time"

	"relaxedcc/internal/catalog"
	"relaxedcc/internal/core"
)

// TestMultipleCachesShareOneBackEnd exercises the paper's scale-out
// deployment: two mid-tier caches over one master, each with its own
// regions, views and refresh schedule, both enforcing C&C independently.
func TestMultipleCachesShareOneBackEnd(t *testing.T) {
	sys := core.NewSystem()
	sys.MustExec("CREATE TABLE p (id BIGINT NOT NULL PRIMARY KEY, v BIGINT NOT NULL)")
	sys.MustExec("INSERT INTO p VALUES (1, 10), (2, 20)")
	sys.Analyze()

	// Cache A (the built-in one): fast refresh.
	if err := sys.AddRegion(&catalog.Region{
		ID: 1, Name: "fast", UpdateInterval: 5 * time.Second, UpdateDelay: time.Second,
		HeartbeatInterval: time.Second,
	}); err != nil {
		t.Fatal(err)
	}
	if err := sys.CreateView(&catalog.View{
		Name: "p_fast", BaseTable: "p", Columns: []string{"id", "v"}, RegionID: 1,
	}); err != nil {
		t.Fatal(err)
	}

	// Cache B: slow refresh, distinct region id.
	cacheB := sys.AddCache()
	if err := sys.AddCacheRegion(cacheB, &catalog.Region{
		ID: 2, Name: "slow", UpdateInterval: 60 * time.Second, UpdateDelay: time.Second,
		HeartbeatInterval: time.Second,
	}); err != nil {
		t.Fatal(err)
	}
	if err := cacheB.CreateView(&catalog.View{
		Name: "p_slow", BaseTable: "p", Columns: []string{"id", "v"}, RegionID: 2,
	}); err != nil {
		t.Fatal(err)
	}

	// Let both regions propagate at least once (the slow one fires at 60s).
	if err := sys.Run(70 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Commit an update; advance far enough for the fast cache only.
	if _, err := sys.Exec("UPDATE p SET v = 99 WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	q := "SELECT v FROM p WHERE id = 1 CURRENCY 3600 ON (p)"
	resA, err := sys.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	resB, err := cacheB.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(resA.LocalViews) != 1 || len(resB.LocalViews) != 1 {
		t.Fatalf("both caches should answer locally: A=%v B=%v", resA.LocalViews, resB.LocalViews)
	}
	if got := resA.Rows[0][0].Int(); got != 99 {
		t.Fatalf("fast cache = %d, want 99", got)
	}
	if got := resB.Rows[0][0].Int(); got != 10 {
		t.Fatalf("slow cache = %d, want stale 10", got)
	}
	// A tight bound at the slow cache falls back to the master.
	resB, err = cacheB.Query("SELECT v FROM p WHERE id = 1 CURRENCY 5 ON (p)")
	if err != nil {
		t.Fatal(err)
	}
	if len(resB.LocalViews) != 0 || resB.Rows[0][0].Int() != 99 {
		t.Fatalf("tight bound at slow cache: local=%v v=%v", resB.LocalViews, resB.Rows[0][0])
	}
	// Eventually the slow cache converges too.
	if err := sys.Run(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	resB, _ = cacheB.Query(q)
	if resB.Rows[0][0].Int() != 99 {
		t.Fatal("slow cache never converged")
	}
}

// TestDistinctRegionIDsEnforcedAcrossCaches documents that region ids are
// global (they key the back end's heartbeat table).
func TestDistinctRegionIDsEnforcedAcrossCaches(t *testing.T) {
	sys := core.NewSystem()
	sys.MustExec("CREATE TABLE p (id BIGINT NOT NULL PRIMARY KEY)")
	if err := sys.AddRegion(&catalog.Region{ID: 1, Name: "a"}); err != nil {
		t.Fatal(err)
	}
	cacheB := sys.AddCache()
	if err := sys.AddCacheRegion(cacheB, &catalog.Region{ID: 1, Name: "b"}); err == nil {
		t.Fatal("duplicate region id across caches accepted")
	}
}
