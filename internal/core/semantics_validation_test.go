package core_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"relaxedcc/internal/catalog"
	"relaxedcc/internal/core"
	"relaxedcc/internal/semantics"
	"relaxedcc/internal/sqltypes"
)

// TestSystemSatisfiesFormalSemantics checks the running system against the
// paper's formal model (Appendix 8), implemented independently in
// internal/semantics:
//
//  1. build the formal master history H_n from the back end's commit log;
//  2. view every cached row as a formal Copy synchronized at the agent's
//     applied snapshot;
//  3. assert the region's cache is *snapshot consistent* (Appendix 8.5) and
//     has Θ-consistency bound 0 — the property the paper derives from
//     agents applying transactions one at a time in commit order;
//  4. assert each copy's formal currency is within the region's staleness
//     bound now - LastSync (what the heartbeat guard relies on).
func TestSystemSatisfiesFormalSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(2004))
	sys := core.NewSystem()
	sys.MustExec("CREATE TABLE obj (id BIGINT NOT NULL PRIMARY KEY, val VARCHAR(20) NOT NULL)")
	const keys = 10
	for k := 1; k <= keys; k++ {
		sys.MustExec(fmt.Sprintf("INSERT INTO obj VALUES (%d, 'v0')", k))
	}
	sys.Analyze()
	if err := sys.AddRegion(&catalog.Region{
		ID: 1, Name: "R", UpdateInterval: 7 * time.Second, UpdateDelay: 2 * time.Second,
		HeartbeatInterval: time.Second,
	}); err != nil {
		t.Fatal(err)
	}
	if err := sys.CreateView(&catalog.View{
		Name: "obj_all", BaseTable: "obj", Columns: []string{"id", "val"}, RegionID: 1,
	}); err != nil {
		t.Fatal(err)
	}
	// A random update stream across 2 minutes of virtual time.
	for i := 0; i < 100; i++ {
		if err := sys.Run(time.Duration(200+rng.Intn(1500)) * time.Millisecond); err != nil {
			t.Fatal(err)
		}
		k := 1 + rng.Intn(keys)
		if _, err := sys.Exec(fmt.Sprintf("UPDATE obj SET val = 'v%d' WHERE id = %d", i+1, k)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Run(3 * time.Second); err != nil {
		t.Fatal(err)
	}

	// 1. Formal history from the commit log (updates to obj only).
	h := semantics.NewHistory()
	for _, rec := range sys.Backend.Log().Since(0) {
		writes := map[semantics.ObjectID]string{}
		for _, ch := range rec.Changes {
			if ch.Table != "obj" || ch.New == nil {
				continue
			}
			writes[objectID(ch.New[0].Int())] = ch.New[1].Str()
		}
		if len(writes) > 0 {
			if err := h.Commit(rec.TS.Seq, rec.TS.At, writes); err != nil {
				t.Fatal(err)
			}
		} else {
			// Heartbeat or other-table transaction: advance the history's
			// timeline with an empty commit so xtimes stay aligned with
			// log sequence numbers.
			if err := h.Commit(rec.TS.Seq, rec.TS.At, nil); err != nil {
				t.Fatal(err)
			}
		}
	}

	// 2. The region's applied snapshot.
	agent := sys.Cache.Agent(1)
	applied := agent.LastSeq()
	if applied == 0 {
		t.Fatal("agent never applied anything")
	}
	var copies []semantics.Copy
	sys.Cache.ViewData("obj_all").Scan(func(r sqltypes.Row) bool {
		copies = append(copies, semantics.Copy{
			ID:        objectID(r[0].Int()),
			SyncXTime: applied,
			Value:     r[1].Str(),
			Present:   true,
		})
		return true
	})
	if len(copies) != keys {
		t.Fatalf("copies = %d", len(copies))
	}

	// 3. Snapshot consistency at exactly the applied snapshot, and a
	// Θ-consistency bound of zero.
	for _, c := range copies {
		if !h.SnapshotConsistentAt(c, applied) {
			want, _ := h.Return(c.ID, applied)
			t.Fatalf("copy %s=%q not snapshot consistent at %d (master has %q)",
				c.ID, c.Value, applied, want)
		}
	}
	if m, ok := h.SnapshotConsistent(copies, h.LastXTime()); !ok {
		t.Fatal("cache is not snapshot consistent w.r.t. any snapshot")
	} else if m < applied {
		t.Fatalf("witness snapshot %d older than applied %d", m, applied)
	}
	if bound := h.ConsistencyBound(copies, h.LastXTime()); bound != 0 {
		t.Fatalf("Θ-consistency bound = %v, want 0 within one region", bound)
	}

	// 4. Formal currency of each copy is within the heartbeat staleness the
	// guard uses.
	sync, ok := sys.Cache.LastSync(1)
	if !ok {
		t.Fatal("no heartbeat")
	}
	staleness := sys.Clock.Now().Sub(sync)
	for _, c := range copies {
		if cur := h.Currency(c, h.LastXTime()); cur > staleness {
			t.Fatalf("copy %s formal currency %v exceeds heartbeat staleness %v",
				c.ID, cur, staleness)
		}
	}
}

func objectID(id int64) semantics.ObjectID {
	return semantics.ObjectID(fmt.Sprintf("obj/%d", id))
}
