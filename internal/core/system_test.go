package core_test

import (
	"sort"
	"strings"
	"testing"
	"time"

	"relaxedcc/internal/core"
	"relaxedcc/internal/sqltypes"
	"relaxedcc/internal/tpcd"
)

// newSystem builds a small loaded system (300 customers, 3000 orders).
func newSystem(t *testing.T) *core.System {
	t.Helper()
	sys, err := tpcd.NewLoadedSystem(tpcd.Config{ScaleFactor: 0.002, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func sortedKeys(rows []sqltypes.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = sqltypes.RowKey(r)
	}
	sort.Strings(out)
	return out
}

func sameRows(t *testing.T, a, b []sqltypes.Row) {
	t.Helper()
	ka, kb := sortedKeys(a), sortedKeys(b)
	if len(ka) != len(kb) {
		t.Fatalf("row counts differ: %d vs %d", len(ka), len(kb))
	}
	for i := range ka {
		if ka[i] != kb[i] {
			t.Fatalf("row %d differs", i)
		}
	}
}

func TestPointQueryNoCurrencyGoesRemote(t *testing.T) {
	sys := newSystem(t)
	q := tpcd.PointQuery(42, "")
	res, err := sys.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.UsesLocal {
		t.Fatalf("no-currency query used local plan: %s", res.Plan.Shape)
	}
	if res.RemoteQueries == 0 {
		t.Fatal("expected remote execution")
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 42 {
		t.Fatalf("rows = %v", res.Rows)
	}
	back, err := sys.QueryBackend(q)
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, res.Rows, back.Rows)
}

func TestRelaxedCurrencyUsesLocalView(t *testing.T) {
	sys := newSystem(t)
	// Bound 60s >> max staleness (delay 5 + interval 15): always local.
	q := tpcd.PointQuery(42, "CURRENCY 60 ON (Customer)")
	res, err := sys.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Plan.UsesLocal || res.Plan.Guards != 1 {
		t.Fatalf("plan = %s (guards=%d)", res.Plan.Shape, res.Plan.Guards)
	}
	if len(res.LocalViews) != 1 {
		t.Fatalf("guard chose remote: %+v (local views %v)", res.Plan.Shape, res.LocalViews)
	}
	if res.RemoteQueries != 0 {
		t.Fatal("local plan still sent remote queries")
	}
	back, _ := sys.QueryBackend(tpcd.PointQuery(42, ""))
	sameRows(t, res.Rows, back.Rows)
}

func TestTightBoundFallsBackRemoteAtRuntime(t *testing.T) {
	sys := newSystem(t)
	// Bound 6s: above min delay 5s (so the local plan is kept) but the
	// region's data right before a propagation is ~20s stale; at the
	// current instant it may or may not qualify. Make it definitely stale:
	// advance to just before the next CR1 propagation (t=44.5s; CR1
	// propagated at t=30s, so its data reflects t=25s → 19.5s stale).
	if err := sys.Run(13500 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	q := tpcd.PointQuery(7, "CURRENCY 6 ON (Customer)")
	res, err := sys.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Plan.UsesLocal {
		t.Fatalf("expected guarded plan, got %s", res.Plan.Shape)
	}
	if len(res.LocalViews) != 0 || res.RemoteQueries == 0 {
		t.Fatalf("guard should have chosen remote; local=%v remotes=%d",
			res.LocalViews, res.RemoteQueries)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

func TestBoundBelowDelayPrunedAtCompileTime(t *testing.T) {
	sys := newSystem(t)
	// Bound 3s < delay 5s: the local view can never qualify; the plan must
	// not contain a guard at all.
	res, err := sys.Query(tpcd.PointQuery(7, "CURRENCY 3 ON (Customer)"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.UsesLocal || res.Plan.Guards != 0 {
		t.Fatalf("plan should be purely remote, got %s", res.Plan.Shape)
	}
}

func TestConsistencyClassForcesRemote(t *testing.T) {
	sys := newSystem(t)
	// One consistency class across both tables: views are in different
	// regions, so no local combination satisfies it.
	q := tpcd.JoinQuery("C.c_custkey = 5", "CURRENCY 60 ON (C, O)")
	res, err := sys.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.UsesLocal {
		t.Fatalf("consistency class should force remote data, got %s", res.Plan.Shape)
	}
	back, _ := sys.QueryBackend(tpcd.JoinQuery("C.c_custkey = 5", ""))
	sameRows(t, res.Rows, back.Rows)
}

func TestSeparateClassesAllowLocalJoin(t *testing.T) {
	sys := newSystem(t)
	q := tpcd.JoinQuery("C.c_custkey = 5", "CURRENCY 60 ON (C), 60 ON (O)")
	res, err := sys.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Plan.UsesLocal {
		t.Fatalf("separate classes should allow local views, got %s", res.Plan.Shape)
	}
	back, _ := sys.QueryBackend(tpcd.JoinQuery("C.c_custkey = 5", ""))
	sameRows(t, res.Rows, back.Rows)
}

func TestMixedPlanWhenOneBoundTooTight(t *testing.T) {
	sys := newSystem(t)
	// Customer bound below its delay, Orders bound relaxed: plan 4 shape.
	// The predicate is wide enough that joining locally (saving the
	// shipping of the 10x-wider join result) beats the all-remote plan.
	q := tpcd.JoinQuery("C.c_custkey <= 250", "CURRENCY 3 ON (C), 60 ON (O)")
	res, err := sys.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Plan.UsesLocal {
		t.Fatalf("expected mixed plan, got %s", res.Plan.Shape)
	}
	if !strings.Contains(res.Plan.Shape, "Remote(Customer)") {
		t.Fatalf("customer access should be remote: %s", res.Plan.Shape)
	}
	back, _ := sys.QueryBackend(tpcd.JoinQuery("C.c_custkey <= 250", ""))
	sameRows(t, res.Rows, back.Rows)
}

func TestUpdatesPropagateThroughReplication(t *testing.T) {
	sys := newSystem(t)
	// Update through the cache (transparent forwarding).
	if _, err := sys.Exec("UPDATE Customer SET c_acctbal = 7777.0 WHERE c_custkey = 10"); err != nil {
		t.Fatal(err)
	}
	// Immediately, a relaxed query may still see the old value locally; the
	// view must converge after delay + interval.
	if err := sys.Run(25 * time.Second); err != nil {
		t.Fatal(err)
	}
	res, err := sys.Query(tpcd.PointQuery(10, "CURRENCY 60 ON (Customer)"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LocalViews) != 1 {
		t.Fatalf("expected local answer, got %v", res.Plan.Shape)
	}
	if got := res.Rows[0][2].Float(); got != 7777.0 {
		t.Fatalf("replicated balance = %v", got)
	}
}

func TestGroupByAggregateThroughCache(t *testing.T) {
	sys := newSystem(t)
	q := `SELECT O.o_custkey, COUNT(*) AS cnt, SUM(O.o_totalprice) AS total
		FROM Orders O WHERE O.o_custkey <= 5 GROUP BY O.o_custkey
		ORDER BY O.o_custkey CURRENCY 60 ON (O)`
	res, err := sys.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("groups = %d", len(res.Rows))
	}
	for i, r := range res.Rows {
		if r[0].Int() != int64(i+1) || r[1].Int() != 10 {
			t.Fatalf("group row %d = %v", i, r)
		}
	}
	// Must match the back end's answer.
	back, err := sys.QueryBackend(`SELECT O.o_custkey, COUNT(*) AS cnt, SUM(O.o_totalprice) AS total
		FROM Orders O WHERE O.o_custkey <= 5 GROUP BY O.o_custkey ORDER BY O.o_custkey`)
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, res.Rows, back.Rows)
}

func TestExistsSubqueryWithCurrency(t *testing.T) {
	sys := newSystem(t)
	// The paper's Q3 shape: customers having at least one expensive order.
	q := `SELECT C.c_custkey, C.c_name FROM Customer C
		WHERE C.c_custkey <= 20 AND EXISTS (
			SELECT 1 FROM Orders O WHERE O.o_custkey = C.c_custkey AND O.o_totalprice > 400000
			CURRENCY 60 ON (O))
		CURRENCY 60 ON (C)`
	res, err := sys.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	back, err := sys.QueryBackend(`SELECT C.c_custkey, C.c_name FROM Customer C
		WHERE C.c_custkey <= 20 AND EXISTS (
			SELECT 1 FROM Orders O WHERE O.o_custkey = C.c_custkey AND O.o_totalprice > 400000)`)
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, res.Rows, back.Rows)
	if len(res.Rows) == 0 {
		t.Fatal("expected at least one qualifying customer")
	}
}

func TestTimelineConsistency(t *testing.T) {
	sys := newSystem(t)
	sess := sys.Cache.NewSession()
	if _, err := sess.Execute("BEGIN TIMEORDERED"); err != nil {
		t.Fatal(err)
	}
	// First query goes remote (tight default): floor rises to "now".
	if _, err := sess.Execute(tpcd.PointQuery(3, "")); err != nil {
		t.Fatal(err)
	}
	floor := sess.Floor()
	if floor.IsZero() {
		t.Fatal("floor not raised by remote read")
	}
	// Second query with a huge bound would normally use the local view, but
	// the region last synced before the floor, so the guard must go remote.
	res, err := sess.Execute(tpcd.PointQuery(3, "CURRENCY 3600 ON (Customer)"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LocalViews) != 0 {
		t.Fatal("timeline consistency violated: used older local data")
	}
	// After replication catches up past the floor, local reads return.
	if err := sys.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	res, err = sess.Execute(tpcd.PointQuery(3, "CURRENCY 3600 ON (Customer)"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LocalViews) != 1 {
		t.Fatalf("expected local read after catch-up, got %s", res.Plan.Shape)
	}
	if _, err := sess.Execute("END TIMEORDERED"); err != nil {
		t.Fatal(err)
	}
	if sess.TimeOrdered() {
		t.Fatal("bracket not closed")
	}
}

func TestServeStaleViolationAction(t *testing.T) {
	sys := newSystem(t)
	sys.Cache.Link().SetDown(true)
	defer sys.Cache.Link().SetDown(false)

	// Default action: error.
	if _, err := sys.Query(tpcd.PointQuery(4, "")); err == nil {
		t.Fatal("expected error with link down")
	}
	// ServeStale: answer from the local view regardless of currency.
	sess := sys.Cache.NewSession()
	sess.Action = 1 // mtcache.ActionServeStale
	res, err := sess.Query(tpcd.PointQuery(4, ""))
	if err != nil {
		t.Fatal(err)
	}
	if !res.ServedStale {
		t.Fatal("result not flagged stale")
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 4 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestDerivedTableFlattening(t *testing.T) {
	sys := newSystem(t)
	// The paper's Q2 shape: a derived table joined with another table, and
	// a currency clause naming the derived alias.
	q := `SELECT T.c_name, O.o_totalprice
		FROM (SELECT c_custkey, c_name FROM Customer CURRENCY 60 ON (Customer)) T
		JOIN Orders O ON T.c_custkey = O.o_custkey
		WHERE T.c_custkey = 9
		CURRENCY 60 ON (O)`
	res, err := sys.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("rows = %d, want 10 orders", len(res.Rows))
	}
	back, err := sys.QueryBackend(`SELECT C.c_name, O.o_totalprice
		FROM Customer C JOIN Orders O ON C.c_custkey = O.o_custkey WHERE C.c_custkey = 9`)
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, res.Rows, back.Rows)
}

// TestByGroupingColumnsAccepted pins the extension behavior for E3/E4-style
// clauses (the paper's prototype rejected them): grouping columns parse,
// normalize, and are satisfied at table granularity — replication applies
// whole transactions, so per-group consistency is subsumed by whole-class
// consistency.
func TestByGroupingColumnsAccepted(t *testing.T) {
	sys := newSystem(t)
	q := `SELECT C.c_name, O.o_totalprice
		FROM Customer C JOIN Orders O ON C.c_custkey = O.o_custkey
		WHERE C.c_custkey = 3
		CURRENCY 60 ON (C), 60 ON (O) BY O.o_custkey`
	res, err := sys.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Plan.UsesLocal {
		t.Fatalf("BY-grouped query should still use local views: %s", res.Plan.Shape)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// E4 shape: one class with grouping relaxation. The class spans
	// regions, but grouping does not relax *cross-table* region membership
	// in our model (empty-BY merge semantics), so it still forces remote.
	q = `SELECT C.c_name, O.o_totalprice
		FROM Customer C JOIN Orders O ON C.c_custkey = O.o_custkey
		WHERE C.c_custkey = 3
		CURRENCY 60 ON (C, O) BY C.c_custkey`
	res, err = sys.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.UsesLocal {
		t.Fatalf("single class across regions must stay remote: %s", res.Plan.Shape)
	}
}
