package core_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"relaxedcc/internal/catalog"
	"relaxedcc/internal/core"
	"relaxedcc/internal/sqltypes"
)

// snapshot is one committed master state in the test's own history.
type snapshot struct {
	at    time.Time
	state map[int64]float64 // id -> val
}

// TestCurrencyGuaranteeEndToEnd is the system's central correctness
// property, checked end to end: whenever a query with bound B is answered
// from a local view, the answer equals the master database's state at some
// single instant t with now-B <= t <= now — i.e. the result is both fresh
// enough (currency) and snapshot-consistent (consistency). The test drives
// a random update stream through replication in virtual time and
// cross-checks every local answer against its own replay of the history.
func TestCurrencyGuaranteeEndToEnd(t *testing.T) {
	const (
		keys     = 20
		rounds   = 120
		interval = 10 * time.Second
		delay    = 2 * time.Second
	)
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			sys := core.NewSystem()
			sys.MustExec("CREATE TABLE kv (id BIGINT NOT NULL PRIMARY KEY, val DOUBLE NOT NULL)")
			state := map[int64]float64{}
			var rows []sqltypes.Row
			for k := int64(1); k <= keys; k++ {
				state[k] = float64(k)
				rows = append(rows, sqltypes.Row{sqltypes.NewInt(k), sqltypes.NewFloat(float64(k))})
			}
			if err := sys.Backend.LoadRows("kv", rows); err != nil {
				t.Fatal(err)
			}
			sys.Analyze()
			if err := sys.AddRegion(&catalog.Region{
				ID: 1, Name: "R", UpdateInterval: interval, UpdateDelay: delay,
				HeartbeatInterval: 500 * time.Millisecond,
			}); err != nil {
				t.Fatal(err)
			}
			if err := sys.CreateView(&catalog.View{
				Name: "kv_prj", BaseTable: "kv", Columns: []string{"id", "val"}, RegionID: 1,
			}); err != nil {
				t.Fatal(err)
			}

			// The test's own history of committed master states.
			history := []snapshot{{at: sys.Clock.Now(), state: cloneState(state)}}
			localAnswers := 0

			for round := 0; round < rounds; round++ {
				// Advance a random amount; agents/heartbeats fire inside.
				if err := sys.Run(time.Duration(100+rng.Intn(4000)) * time.Millisecond); err != nil {
					t.Fatal(err)
				}
				// Random update through the cache (forwarded to the master).
				if rng.Intn(2) == 0 {
					k := int64(1 + rng.Intn(keys))
					v := float64(round*1000) + float64(k)
					if _, err := sys.Exec(fmt.Sprintf("UPDATE kv SET val = %v WHERE id = %d", v, k)); err != nil {
						t.Fatal(err)
					}
					state[k] = v
					history = append(history, snapshot{at: sys.Clock.Now(), state: cloneState(state)})
				}
				// Random relaxed query over a key range.
				bound := time.Duration(rng.Intn(20000)) * time.Millisecond
				lo := int64(1 + rng.Intn(keys))
				hi := lo + int64(rng.Intn(5))
				q := fmt.Sprintf(
					"SELECT id, val FROM kv WHERE id >= %d AND id <= %d CURRENCY %v MS ON (kv)",
					lo, hi, bound.Milliseconds())
				res, err := sys.Query(q)
				if err != nil {
					t.Fatal(err)
				}
				now := sys.Clock.Now()
				if len(res.LocalViews) == 0 {
					continue // remote answers are trivially current
				}
				localAnswers++
				got := map[int64]float64{}
				for _, r := range res.Rows {
					got[r[0].Int()] = r[1].Float()
				}
				if !answerWithinWindow(history, got, lo, hi, now.Add(-bound), now) {
					t.Fatalf("round %d: local answer %v for [%d,%d] matches no master snapshot in [%v, %v] (bound %v)",
						round, got, lo, hi, now.Add(-bound), now, bound)
				}
			}
			if localAnswers == 0 {
				t.Fatal("test never exercised a local answer; adjust parameters")
			}
		})
	}
}

func cloneState(m map[int64]float64) map[int64]float64 {
	out := make(map[int64]float64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// answerWithinWindow reports whether got equals the restriction of some
// snapshot whose validity interval intersects [from, to].
func answerWithinWindow(history []snapshot, got map[int64]float64, lo, hi int64, from, to time.Time) bool {
	for i, snap := range history {
		// Validity: [snap.at, next.at); the last snapshot is valid to +inf.
		validFrom := snap.at
		validTo := to.Add(time.Hour)
		if i+1 < len(history) {
			validTo = history[i+1].at
		}
		if validTo.Before(from) || validFrom.After(to) {
			continue
		}
		if snapshotMatches(snap.state, got, lo, hi) {
			return true
		}
	}
	return false
}

func snapshotMatches(state map[int64]float64, got map[int64]float64, lo, hi int64) bool {
	n := 0
	for k := lo; k <= hi; k++ {
		want, exists := state[k]
		gotV, has := got[k]
		if exists != has {
			return false
		}
		if exists {
			if want != gotV {
				return false
			}
			n++
		}
	}
	return n == len(got)
}

// TestTimelineMonotonicityEndToEnd drives a TIMEORDERED session through a
// random mix of reads with varying bounds while updates replicate, checking
// that the observed value of a single counter never goes backwards.
func TestTimelineMonotonicityEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	sys := core.NewSystem()
	sys.MustExec("CREATE TABLE c (id BIGINT NOT NULL PRIMARY KEY, n BIGINT NOT NULL)")
	sys.MustExec("INSERT INTO c VALUES (1, 0)")
	sys.Analyze()
	if err := sys.AddRegion(&catalog.Region{
		ID: 1, Name: "R", UpdateInterval: 5 * time.Second, UpdateDelay: time.Second,
		HeartbeatInterval: 500 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	if err := sys.CreateView(&catalog.View{
		Name: "c_prj", BaseTable: "c", Columns: []string{"id", "n"}, RegionID: 1,
	}); err != nil {
		t.Fatal(err)
	}
	sess := sys.Cache.NewSession()
	if _, err := sess.Execute("BEGIN TIMEORDERED"); err != nil {
		t.Fatal(err)
	}
	counter := 0
	last := int64(-1)
	for i := 0; i < 150; i++ {
		if err := sys.Run(time.Duration(200+rng.Intn(1500)) * time.Millisecond); err != nil {
			t.Fatal(err)
		}
		if rng.Intn(2) == 0 {
			counter++
			if _, err := sys.Exec(fmt.Sprintf("UPDATE c SET n = %d WHERE id = 1", counter)); err != nil {
				t.Fatal(err)
			}
		}
		// Alternate between strict reads (which raise the floor) and very
		// relaxed reads (which would happily read stale data if allowed).
		q := "SELECT n FROM c WHERE id = 1"
		if rng.Intn(2) == 0 {
			q += fmt.Sprintf(" CURRENCY %d MS ON (c)", 1000+rng.Intn(20000))
		}
		res, err := sess.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		got := res.Rows[0][0].Int()
		if got < last {
			t.Fatalf("iteration %d: time went backwards: read %d after %d (query %q)",
				i, got, last, q)
		}
		last = got
	}
}

// TestTimelineWithoutBracketCanGoBackwards documents the paper's point that
// without TIMEORDERED, perceived time may move backwards across queries
// with different bounds.
func TestTimelineWithoutBracketCanGoBackwards(t *testing.T) {
	sys := core.NewSystem()
	sys.MustExec("CREATE TABLE c (id BIGINT NOT NULL PRIMARY KEY, n BIGINT NOT NULL)")
	sys.MustExec("INSERT INTO c VALUES (1, 0)")
	sys.Analyze()
	if err := sys.AddRegion(&catalog.Region{
		ID: 1, Name: "R", UpdateInterval: 30 * time.Second, UpdateDelay: time.Second,
		HeartbeatInterval: time.Second,
	}); err != nil {
		t.Fatal(err)
	}
	if err := sys.CreateView(&catalog.View{
		Name: "c_prj", BaseTable: "c", Columns: []string{"id", "n"}, RegionID: 1,
	}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(35 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Commit an update that has not replicated yet.
	if _, err := sys.Exec("UPDATE c SET n = 1 WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	sess := sys.Cache.NewSession()
	strict, err := sess.Query("SELECT n FROM c WHERE id = 1")
	if err != nil {
		t.Fatal(err)
	}
	relaxed, err := sess.Query("SELECT n FROM c WHERE id = 1 CURRENCY 3600 ON (c)")
	if err != nil {
		t.Fatal(err)
	}
	if strict.Rows[0][0].Int() != 1 {
		t.Fatal("strict read must see the committed update")
	}
	if relaxed.Rows[0][0].Int() != 0 {
		t.Skip("replica already caught up; scenario not triggered")
	}
	// Without the bracket, the session read 1 and then 0: time went
	// backwards — exactly what TIMEORDERED prevents (verified above).
}
