package core

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"relaxedcc/internal/audit"
	"relaxedcc/internal/catalog"
	"relaxedcc/internal/fault"
	"relaxedcc/internal/mtcache"
	"relaxedcc/internal/remote"
	"relaxedcc/internal/sqltypes"
)

// auditSystem builds the chaos fixture with the auditor enabled.
func auditSystem(t *testing.T) (*System, *fault.Injector) {
	t.Helper()
	sys := NewSystem()
	sys.MustExec("CREATE TABLE T (id BIGINT NOT NULL PRIMARY KEY, v BIGINT)")
	if err := sys.AddRegion(&catalog.Region{
		ID: 1, Name: "R",
		UpdateInterval:    10 * time.Second,
		UpdateDelay:       2 * time.Second,
		HeartbeatInterval: 1 * time.Second,
	}); err != nil {
		t.Fatal(err)
	}
	if err := sys.CreateView(&catalog.View{
		Name: "t_prj", BaseTable: "T", Columns: []string{"id", "v"}, RegionID: 1,
	}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Backend.LoadRows("T", []sqltypes.Row{{sqltypes.NewInt(1), sqltypes.NewInt(1)}}); err != nil {
		t.Fatal(err)
	}
	sys.Analyze()
	inj := fault.New(7)
	sys.InjectFaults(inj)
	sys.EnableResilience(remote.Policy{})
	if a := sys.EnableAudit(); a != sys.EnableAudit() {
		t.Fatal("EnableAudit not idempotent")
	}
	if err := sys.Run(14 * time.Second); err != nil {
		t.Fatal(err)
	}
	return sys, inj
}

// TestAuditEndToEndHonestRun: an honestly operated system audits clean —
// local and remote serves both classify OK, nothing silent is flagged, and
// the offline replay of the recorded rings reproduces the online ledger.
func TestAuditEndToEndHonestRun(t *testing.T) {
	sys, _ := auditSystem(t)
	// Local serve: a 1-hour bound is looser than any replication staleness.
	res, err := sys.Query("SELECT v FROM T WHERE id = 1 CURRENCY 3600 S ON (T)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LocalViews) == 0 {
		t.Fatalf("loose bound went remote: %s", res.Plan.Shape)
	}
	// A 5s bound keeps the runtime guard in the plan; whichever branch it
	// picks, the decision is a checked read.
	if _, err := sys.Query(guardedQuery); err != nil {
		t.Fatal(err)
	}
	// A query with no currency clause (or a bound the optimizer decides
	// statically, like 1ms < the 2s apply delay) plans without a runtime
	// guard — no guard fires, so nothing reaches the auditor.
	if _, err := sys.Query("SELECT v FROM T WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Query("SELECT v FROM T WHERE id = 1 CURRENCY 1 MS ON (T)"); err != nil {
		t.Fatal(err)
	}

	s := sys.Audit().Summary()
	if !s.Enabled {
		t.Fatal("auditor disabled")
	}
	if s.ReadsChecked != 2 || s.OK != 2 {
		t.Fatalf("tally = %+v", s.Tally)
	}
	if s.ViolationsTotal != 0 || len(s.RecentViolations) != 0 {
		t.Fatalf("honest run flagged: %+v", s.RecentViolations)
	}
	if s.Commits == 0 {
		t.Fatal("no commit history recorded (setup replay missing)")
	}
	replay := sys.Audit().Replay()
	if replay.Tally != s.Tally {
		t.Fatalf("offline replay %+v != online %+v", replay.Tally, s.Tally)
	}
}

// TestAuditCatchesGuardLie: wedge replication while forging the heartbeat
// fresh — the guard keeps approving local serves, and the auditor must flag
// them with evidence from the real history.
func TestAuditCatchesGuardLie(t *testing.T) {
	sys, inj := auditSystem(t)
	agent := sys.Cache.Agent(1)
	syncedThrough := agent.LastSeq()

	// Hard-wedge the agent (the stall survives watchdog restarts), then write
	// fresh master data the region will never see.
	inj.SetStallSurvivesRestart(true)
	inj.StallAgent(1, true)
	for i := 0; i < 3; i++ {
		sys.MustExec("UPDATE T SET v = 99 WHERE id = 1")
		if err := sys.Run(10 * time.Second); err != nil {
			t.Fatal(err)
		}
	}
	// Forge the heartbeat so a 5s bound sees staleness ~0 and serves local.
	sys.Cache.SetLastSync(1, sys.Clock.Now())
	res, err := sys.Query("SELECT v FROM T WHERE id = 1 CURRENCY 5 S ON (T)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LocalViews) == 0 {
		t.Fatal("lie did not take: query went remote")
	}

	s := sys.Audit().Summary()
	if s.CurrencyViolations == 0 || len(s.RecentViolations) == 0 {
		t.Fatalf("lie not caught: %+v", s.Tally)
	}
	v := s.RecentViolations[len(s.RecentViolations)-1]
	if v.Class != audit.ClassViolationCurrency || v.Object != "T" || v.Region != 1 {
		t.Fatalf("evidence = %+v", v)
	}
	if v.BoundNS != int64(5*time.Second) || v.DeliveredNS <= v.BoundNS ||
		v.ExcessNS != v.DeliveredNS-v.BoundNS {
		t.Fatalf("bound/delivered/excess = %d/%d/%d", v.BoundNS, v.DeliveredNS, v.ExcessNS)
	}
	if v.SyncSeq != syncedThrough || v.StaleSeq <= syncedThrough {
		t.Fatalf("sync/stale seq = %d/%d (synced through %d)", v.SyncSeq, v.StaleSeq, syncedThrough)
	}
	// The guard believed the forged ~0 staleness; the gap is the lie.
	if v.GuardStalenessNS >= v.DeliveredNS {
		t.Fatalf("guard staleness %d not smaller than delivered %d", v.GuardStalenessNS, v.DeliveredNS)
	}
}

// TestAuditDisclosedServesAreNotViolations: a degraded serve-local answer
// breaks the promise but tells the client, so it ledgers as disclosed.
func TestAuditDisclosedServesAreNotViolations(t *testing.T) {
	sys, inj := auditSystem(t)
	driftPastBound(t, sys, 5*time.Second)
	// Honest staleness now exceeds the 5s bound; the remote fall-back is
	// partitioned away, so ActionServeLocal degrades with a warning.
	inj.SetPartitioned(true)
	sess := sys.Cache.NewSession()
	sess.Action = mtcache.ActionServeLocal
	res, err := sess.Query("SELECT v FROM T WHERE id = 1 CURRENCY 5 S ON (T)")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Fatal("expected a degraded serve")
	}
	s := sys.Audit().Summary()
	if s.Disclosed == 0 || s.ViolationsTotal != 0 {
		t.Fatalf("degraded serve misclassified: %+v", s.Tally)
	}
}

// auditSummaryKeys is the golden /audit schema; adding or renaming payload
// fields must update this list consciously.
var auditSummaryKeys = []string{
	"enabled", "reads_checked", "ok", "currency_violations",
	"consistency_violations", "disclosed", "unbounded", "unchecked",
	"violations_total", "recent_violations",
	"commits", "applies", "dropped_commits", "dropped_reads", "dropped_applies",
}

var auditViolationKeys = []string{
	"query", "class", "region", "object", "label", "bound_ns", "delivered_ns",
	"excess_ns", "sync_seq", "stale_seq", "stale_at_ns", "serve_ts_ns",
	"guard_staleness_ns", "repl_lag_ns",
}

// TestAuditHTTPGoldenSchema pins the /audit payload shape end to end,
// violations included.
func TestAuditHTTPGoldenSchema(t *testing.T) {
	sys, inj := auditSystem(t)
	// Manufacture one violation so recent_violations is non-empty.
	inj.SetStallSurvivesRestart(true)
	inj.StallAgent(1, true)
	sys.MustExec("UPDATE T SET v = 2 WHERE id = 1")
	if err := sys.Run(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	sys.Cache.SetLastSync(1, sys.Clock.Now())
	if _, err := sys.Query("SELECT v FROM T WHERE id = 1 CURRENCY 5 S ON (T)"); err != nil {
		t.Fatal(err)
	}

	rr := httptest.NewRecorder()
	sys.ObsHandler().ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/audit", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("GET /audit = %d: %s", rr.Code, rr.Body.String())
	}
	var v map[string]any
	if err := json.Unmarshal(rr.Body.Bytes(), &v); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rr.Body.String())
	}
	if len(v) != len(auditSummaryKeys) {
		t.Fatalf("payload has %d keys, want %d: %v", len(v), len(auditSummaryKeys), v)
	}
	for _, k := range auditSummaryKeys {
		if _, ok := v[k]; !ok {
			t.Fatalf("missing key %q", k)
		}
	}
	viols := v["recent_violations"].([]any)
	if len(viols) == 0 {
		t.Fatal("no violation in payload")
	}
	violation := viols[0].(map[string]any)
	for _, k := range auditViolationKeys {
		if _, ok := violation[k]; !ok {
			t.Fatalf("violation missing key %q in %v", k, violation)
		}
	}
	if violation["class"] != "currency" || violation["object"] != "T" {
		t.Fatalf("violation evidence = %v", violation)
	}
}

// TestAuditWithoutEnableIs404: the surface stays wired but dark before
// EnableAudit.
func TestAuditWithoutEnableIs404(t *testing.T) {
	sys := NewSystem()
	sys.MustExec("CREATE TABLE T (id BIGINT NOT NULL PRIMARY KEY, v BIGINT)")
	rr := httptest.NewRecorder()
	sys.ObsHandler().ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/audit", nil))
	if rr.Code != http.StatusNotFound {
		t.Fatalf("GET /audit before EnableAudit = %d, want 404", rr.Code)
	}
	if sys.Audit() != nil {
		t.Fatal("Audit() non-nil before EnableAudit")
	}
}
