package core_test

import (
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"relaxedcc/internal/catalog"
	"relaxedcc/internal/core"
)

// TestTraceEndpointsUnderQueryMix hammers the ops HTTP surface — above all
// /trace/last, whose published trees used to alias live operator trees —
// while sessions run an EXPLAIN ANALYZE / query mix and replication
// advances. Run under -race this pins the copy-on-finish publication
// contract: readers must never observe a trace node the executor is still
// mutating.
func TestTraceEndpointsUnderQueryMix(t *testing.T) {
	sys := core.NewSystem()
	sys.MustExec("CREATE TABLE acct (id BIGINT NOT NULL PRIMARY KEY, bal BIGINT NOT NULL)")
	for i := 1; i <= 40; i++ {
		sys.MustExec(fmt.Sprintf("INSERT INTO acct VALUES (%d, %d)", i, i))
	}
	sys.Analyze()
	if err := sys.AddRegion(&catalog.Region{
		ID: 1, Name: "R", UpdateInterval: time.Second, UpdateDelay: 200 * time.Millisecond,
		HeartbeatInterval: 500 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	if err := sys.CreateView(&catalog.View{
		Name: "acct_prj", BaseTable: "acct", Columns: []string{"id", "bal"}, RegionID: 1,
	}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}

	handler := sys.ObsHandler()
	urls := []string{
		"/trace/last", "/metrics", "/queries/recent",
		"/queries/slow?threshold=1ms", "/slo", "/regions",
	}

	const queriers = 3
	const scrapers = 3
	const opsPerWorker = 60
	var qwg, swg sync.WaitGroup
	stop := make(chan struct{})

	for q := 0; q < queriers; q++ {
		qwg.Add(1)
		go func(worker int) {
			defer qwg.Done()
			sess := sys.Cache.NewSession()
			for i := 0; i < opsPerWorker; i++ {
				id := 1 + (worker*opsPerWorker+i)%40
				sql := fmt.Sprintf("SELECT bal FROM acct WHERE id = %d CURRENCY 30000 MS ON (acct)", id)
				var err error
				if i%2 == 0 {
					_, err = sess.ExplainAnalyze(sql)
				} else {
					_, err = sess.Query(sql)
				}
				if err != nil {
					t.Errorf("querier %d: %v", worker, err)
					return
				}
			}
		}(q)
	}
	for s := 0; s < scrapers; s++ {
		swg.Add(1)
		go func(worker int) {
			defer swg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				url := urls[(worker+i)%len(urls)]
				rr := httptest.NewRecorder()
				handler.ServeHTTP(rr, httptest.NewRequest("GET", url, nil))
				if rr.Code != 200 {
					t.Errorf("GET %s = %d: %s", url, rr.Code, rr.Body.String())
					return
				}
			}
		}(s)
	}
	// Replication driver alongside the mix.
	swg.Add(1)
	go func() {
		defer swg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := sys.Run(50 * time.Millisecond); err != nil {
				return
			}
		}
	}()

	qwg.Wait()
	close(stop)
	swg.Wait()
}
