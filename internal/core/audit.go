package core

import (
	"relaxedcc/internal/audit"
	"relaxedcc/internal/repl"
)

// EnableAudit installs the delivered-guarantee auditor across the system:
// the back-end commit log streams master history into it, every region's
// distribution agent reports replication progress, and the primary cache
// records each executed query's guard decisions as read events. The
// auditor's online checker classifies every serve against the formal
// semantics; /audit (see ObsHandler) and the audit_* metrics expose the
// ledger. Idempotent; regions and views added later are adopted
// automatically. Call during quiesced setup (before traffic), like the
// other Enable* hooks.
func (s *System) EnableAudit() *audit.Auditor {
	if s.audit != nil {
		return s.audit
	}
	a := audit.New(s.Cache.Obs(), audit.DefaultConfig())
	a.Enable()
	// Replay the history that predates enabling (schema setup, data loads)
	// so the checker's oracle starts from the true H_n, then tap new
	// commits. Setup is quiesced, so no commit can fall in between.
	for _, rec := range s.Backend.Log().Since(0) {
		a.ObserveCommit(rec)
	}
	s.Backend.Log().SetObserver(a.ObserveCommit)
	s.Cache.EnableAudit(a) // registers existing views' objects + read tap
	for _, agent := range s.Cache.Agents() {
		s.wireAuditAgent(a, agent)
	}
	s.audit = a
	return a
}

// Audit returns the installed auditor, or nil before EnableAudit.
func (s *System) Audit() *audit.Auditor { return s.audit }

func (s *System) wireAuditAgent(a *audit.Auditor, agent *repl.Agent) {
	agent.SetApplySink(a.ObserveApply)
}
