package core

import (
	"time"

	"relaxedcc/internal/repl"
	"relaxedcc/internal/tuner"
)

// agentActuator adapts a distribution agent to the tuner loop's actuator
// interface: the tuner retunes the agent's effective cadence, never the
// catalog's configured baseline.
type agentActuator struct{ a *repl.Agent }

func (t agentActuator) Region() int                          { return t.a.Region.ID }
func (t agentActuator) Delay() time.Duration                 { return t.a.Region.UpdateDelay }
func (t agentActuator) Interval() time.Duration              { return t.a.Interval() }
func (t agentActuator) SetInterval(d time.Duration)          { t.a.SetInterval(d) }
func (t agentActuator) HeartbeatInterval() time.Duration     { return t.a.HeartbeatInterval() }
func (t agentActuator) SetHeartbeatInterval(d time.Duration) { t.a.SetHeartbeatInterval(d) }

// EnableAutotune closes the loop between the primary cache's workload
// observer and its replication fabric: a tuner.Loop ticks on the
// coordinator's schedule, cuts the observer's window, re-solves the
// Section 6 optimization per region, and retunes each agent's propagation
// interval and heartbeat cadence with hysteresis. Decisions are recorded on
// the loop's ring (served on /tuner) and in the tuner_* metrics of the
// cache's registry.
//
// Call it after regions are registered; regions added later are adopted
// automatically. Idempotent: a second call returns the existing loop.
func (s *System) EnableAutotune(cfg tuner.LoopConfig) *tuner.Loop {
	if s.tuner != nil {
		return s.tuner
	}
	loop := tuner.NewLoop(cfg, s.Cache.Workload(), s.Cache.Obs())
	for _, a := range s.Cache.Agents() {
		loop.AddRegion(agentActuator{a})
	}
	s.tuner = loop
	s.Coord.AddPeriodic(loop.Cadence(), loop.Tick)
	return loop
}

// Tuner returns the autotuning loop installed by EnableAutotune, or nil.
func (s *System) Tuner() *tuner.Loop { return s.tuner }
