package core

import (
	"time"

	"relaxedcc/internal/fault"
	"relaxedcc/internal/remote"
	"relaxedcc/internal/repl"
)

// EnableResilience hardens the system's cache↔back-end link and replication
// fabric against the failures the chaos harness injects:
//
//   - the remote link gets the retry/backoff/deadline/circuit-breaker policy
//     (the zero Policy selects remote.DefaultPolicy, with the breaker
//     cooldown defaulted to the slowest region's heartbeat cadence so a
//     half-open probe lines up with the next freshness signal);
//   - link backoff and blocking-session guard waits drive the replication
//     coordinator, so heartbeats and agents keep firing while a query waits;
//   - every distribution agent gets a watchdog that restarts it on stall,
//     scheduled on the agent's own propagation cadence.
//
// Call it after regions are registered; regions added later are adopted
// automatically.
func (s *System) EnableResilience(p remote.Policy) {
	if p == (remote.Policy{}) {
		p = remote.DefaultPolicy()
	}
	if p.BreakerCooldown == 0 {
		p.BreakerCooldown = s.heartbeatCadence()
	}
	link := s.Cache.Link()
	link.Configure(s.Clock, p)
	link.SetWait(func(d time.Duration) { _ = s.Coord.Advance(d) })
	s.Cache.SetWait(func(d time.Duration) { _ = s.Coord.Advance(d) })
	s.resilient = true
	for _, a := range s.Cache.Agents() {
		s.watch(a)
	}
}

// InjectFaults points the link and every distribution agent at the fault
// injector: the link consults it per attempt (latency, transient errors,
// partitions) and agents consult it per propagation step (stalls). Call it
// after regions are registered; regions added later are adopted
// automatically.
func (s *System) InjectFaults(f *fault.Injector) {
	s.faults = f
	s.Cache.Link().SetFault(f)
	for _, a := range s.Cache.Agents() {
		a.SetStallProbe(f)
	}
}

// Faults returns the injector installed by InjectFaults, or nil.
func (s *System) Faults() *fault.Injector { return s.faults }

// watch puts one agent under watchdog supervision (idempotent per region).
func (s *System) watch(a *repl.Agent) {
	if s.watched == nil {
		s.watched = map[int]bool{}
	}
	if s.watched[a.Region.ID] {
		return
	}
	s.watched[a.Region.ID] = true
	wd := repl.NewWatchdog(a, 0)
	wd.Instrument(s.Cache.Obs())
	s.Watchdogs = append(s.Watchdogs, wd)
	// Check on the agent's own cadence — re-read every due-time computation
	// so the watchdog follows autotuner retunes: the default stall threshold
	// is three (effective) update intervals, so a wedged agent is caught on
	// the third missed propagation at whatever cadence it runs.
	s.Coord.AddPeriodicFn(func() time.Duration {
		if iv := a.Interval(); iv > 0 {
			return iv
		}
		return time.Second
	}, wd.Check)
}

// heartbeatCadence is the slowest heartbeat interval across the cache's
// regions — the natural pace for breaker half-open probes, since no fresher
// currency signal arrives sooner.
func (s *System) heartbeatCadence() time.Duration {
	cadence := time.Second
	for _, r := range s.Cache.Catalog().Regions() {
		if r.HeartbeatInterval > cadence {
			cadence = r.HeartbeatInterval
		}
	}
	return cadence
}
