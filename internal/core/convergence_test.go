package core_test

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"relaxedcc/internal/catalog"
	"relaxedcc/internal/core"
	"relaxedcc/internal/sqltypes"
)

// TestReplicationConvergence property-tests the replication fabric: after a
// random stream of inserts, updates and deletes through the cache and
// enough quiet time for the agent to drain the log, every materialized view
// must equal the corresponding selection/projection of the master table.
func TestReplicationConvergence(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sys := core.NewSystem()
		sys.MustExec("CREATE TABLE kv (id BIGINT NOT NULL PRIMARY KEY, grp BIGINT NOT NULL, val DOUBLE NOT NULL)")
		sys.Analyze()
		if err := sys.AddRegion(&catalog.Region{
			ID: 1, Name: "R", UpdateInterval: 5 * time.Second, UpdateDelay: time.Second,
			HeartbeatInterval: time.Second,
		}); err != nil {
			t.Fatal(err)
		}
		// Two views in one region: a full projection and a selection.
		if err := sys.CreateView(&catalog.View{
			Name: "kv_all", BaseTable: "kv", Columns: []string{"id", "val"}, RegionID: 1,
		}); err != nil {
			t.Fatal(err)
		}
		if err := sys.CreateView(&catalog.View{
			Name: "kv_high", BaseTable: "kv", Columns: []string{"id", "grp", "val"},
			Preds:    []catalog.SimplePred{{Column: "grp", Op: catalog.OpGE, Value: sqltypes.NewInt(5)}},
			RegionID: 1,
		}); err != nil {
			t.Fatal(err)
		}
		live := map[int64]bool{}
		for op := 0; op < 200; op++ {
			if err := sys.Run(time.Duration(rng.Intn(800)) * time.Millisecond); err != nil {
				t.Fatal(err)
			}
			id := int64(rng.Intn(30))
			switch rng.Intn(3) {
			case 0:
				if !live[id] {
					sys.Exec(fmt.Sprintf("INSERT INTO kv VALUES (%d, %d, %d.5)", id, rng.Intn(10), rng.Intn(100)))
					live[id] = true
				}
			case 1:
				if live[id] {
					sys.Exec(fmt.Sprintf("UPDATE kv SET grp = %d, val = %d.25 WHERE id = %d", rng.Intn(10), rng.Intn(100), id))
				}
			case 2:
				if live[id] {
					sys.Exec(fmt.Sprintf("DELETE FROM kv WHERE id = %d", id))
					delete(live, id)
				}
			}
		}
		// Quiesce: no more writes; let the agent catch up past the delay.
		if err := sys.Run(10 * time.Second); err != nil {
			t.Fatal(err)
		}
		base := sys.Backend.Table("kv")
		all := sys.Cache.ViewData("kv_all")
		high := sys.Cache.ViewData("kv_high")
		// kv_all = project(base); kv_high = project(select grp>=5).
		wantAll := map[string]bool{}
		wantHigh := map[string]bool{}
		nBase := 0
		base.Scan(func(r sqltypes.Row) bool {
			nBase++
			wantAll[sqltypes.Key(r[0], r[2])] = true
			if !r[1].IsNull() && r[1].Int() >= 5 {
				wantHigh[sqltypes.Key(r[0], r[1], r[2])] = true
			}
			return true
		})
		if all.Len() != nBase || high.Len() != len(wantHigh) {
			return false
		}
		ok := true
		all.Scan(func(r sqltypes.Row) bool {
			if !wantAll[sqltypes.RowKey(r)] {
				ok = false
			}
			return ok
		})
		high.Scan(func(r sqltypes.Row) bool {
			if !wantHigh[sqltypes.RowKey(r)] {
				ok = false
			}
			return ok
		})
		if all.CheckIndexConsistency() != "" || high.CheckIndexConsistency() != "" {
			return false
		}
		return ok
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
